// Package flexos is a library operating system whose isolation
// strategy is a build-time knob — a Go reproduction of "FlexOS: Making
// OS Isolation Flexible" (Lefeuvre et al., HotOS '21).
//
// Traditional OSes commit to one protection mechanism at design time.
// FlexOS postpones that choice: micro-libraries carry metadata
// describing their memory/call behaviour and what they require of
// cohabitants; pairwise compatibility plus graph coloring derives a
// minimal compartmentalization; software-hardening transformations
// (CFI, DFI/ASAN) rewrite a library's metadata to enlarge the feasible
// space; and interchangeable gates (function call, MPK shared-stack,
// MPK switched-stack, VM RPC) instantiate the crossings at build time.
//
// The typical workflow:
//
//	libs, _ := flexos.ParseLibraries(src)      // metadata language
//	plan, _ := flexos.PlanCompartments(libs)   // compat + coloring
//	cands, _ := flexos.Explore(libs, flexos.MPKShared) // design space
//	world, _ := flexos.NewWorld(flexos.Config{ // runnable image
//	    Compartments: flexos.NWOnly(),
//	    Backend:      flexos.MPKShared,
//	})
//
// Everything below is a thin facade over the internal packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package flexos

import (
	"io"

	"flexos/internal/core/build"
	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/explore"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
	"flexos/internal/harness"
	"flexos/internal/mem"
	"flexos/internal/metrics"
	"flexos/internal/net"
	"flexos/internal/sh"
	"flexos/internal/trace"
)

// Metadata language (internal/core/spec).
type (
	// Library is one micro-library: metadata, analysis ground truth
	// and applied hardening.
	Library = spec.Library
	// Spec is a library's metadata: memory access, calls, API and
	// Requires clauses.
	Spec = spec.Spec
	// Requirement is one *(Verb,Object) clause.
	Requirement = spec.Requirement
)

// ParseLibraries parses metadata source with one or more library
// blocks.
func ParseLibraries(src string) ([]*Library, error) { return spec.Parse(src) }

// ParseSpec parses a bare metadata block, as printed in the paper.
func ParseSpec(src string) (*Spec, error) { return spec.ParseSpec(src) }

// DefaultImage returns the canonical six-library FlexOS image
// metadata (verified scheduler, memory manager, libc, netstack, app,
// rest).
func DefaultImage() []*Library { return spec.DefaultImage() }

// Harden applies every applicable SH transformation (CFI narrows
// Call(*), DFI narrows Write(*)) and returns the hardened variant.
func Harden(l *Library) (*Library, error) { return spec.Harden(l) }

// Compatibility and compartmentalization (compat + coloring).
type (
	// Conflict explains why two libraries cannot share a compartment.
	Conflict = compat.Conflict
	// Plan is a compartmentalization: libraries per compartment.
	Plan = coloring.Plan
)

// Compatible reports whether two libraries may share a compartment.
func Compatible(a, b *Library) bool { return compat.Compatible(a, b) }

// ExplainConflicts reports every violated requirement between the two
// libraries, in both directions.
func ExplainConflicts(a, b *Library) []Conflict { return compat.Explain(a, b) }

// PlanCompartments derives a minimal compartmentalization for the
// library set: pairwise compatibility, then exact graph coloring
// (DSATUR for graphs beyond the exact solver's limit — the returned
// plan's Heuristic field reports when that fallback fired and the
// compartment count is therefore only an upper bound).
func PlanCompartments(libs []*Library) (*Plan, error) {
	m := compat.BuildMatrix(libs)
	g := coloring.FromMatrix(m)
	heuristic := false
	asg, err := coloring.Exact(g)
	if err != nil {
		asg = coloring.DSATUR(g)
		heuristic = true
	}
	plan := coloring.PlanFromAssignment(m, asg)
	plan.Heuristic = heuristic
	return plan, nil
}

// Isolation backends (internal/core/gate).
type Backend = gate.Backend

// Backend values.
const (
	FuncCall    = gate.FuncCall
	MPKShared   = gate.MPKShared
	MPKSwitched = gate.MPKSwitched
	VMRPC       = gate.VMRPC
	CHERI       = gate.CHERI
)

// ParseBackend converts a string ("mpk", "hodor", "vm", ...) to a
// Backend.
func ParseBackend(s string) (Backend, error) { return gate.ParseBackend(s) }

// Software hardening profiles (internal/sh).
type HardeningProfile = sh.Profile

// FullHardening enables every supported technique (ASAN, CFI, stack
// protector, UBSan).
var FullHardening = sh.Full

// Design-space exploration (internal/core/explore).
type (
	// Candidate is one point of the design space with security and
	// cost scores.
	Candidate = explore.Candidate
	// Workload profiles the application for cost estimation.
	Workload = explore.Workload
)

// DefaultWorkload approximates the paper's Redis workload.
func DefaultWorkload() Workload { return explore.DefaultWorkload() }

// Explore enumerates every SH-variant combination with its minimal
// coloring and scores.
func Explore(libs []*Library, b Backend) ([]*Candidate, error) {
	return explore.Explore(libs, b, explore.DefaultWorkload())
}

// MaxSecurityWithinBudget picks the most secure candidate whose
// estimated slowdown stays within budget (1.5 = at most 50% slower).
func MaxSecurityWithinBudget(cands []*Candidate, budget float64) *Candidate {
	return explore.MaxSecurityWithinBudget(cands, explore.DefaultWorkload(), budget)
}

// ParetoFront returns the non-dominated candidates, cheapest first.
func ParetoFront(cands []*Candidate) []*Candidate { return explore.ParetoFront(cands) }

// Image building and the runnable world (internal/core/build).
type (
	// Config describes one machine image: compartments, backend,
	// hardening, allocator policy, scheduler kind, platform.
	Config = build.Config
	// Compartment names a compartment and its libraries.
	Compartment = build.Compartment
	// Machine is an instantiated image.
	Machine = build.Machine
	// World is a server machine wired to a load-generator client.
	World = build.World
)

// Allocator policies and scheduler kinds.
const (
	AllocGlobal         = build.AllocGlobal
	AllocPerCompartment = build.AllocPerCompartment
	AllocPerLibrary     = build.AllocPerLibrary
	SchedC              = build.SchedC
	SchedVerified       = build.SchedVerified
)

// Compartmentalization models from the paper's evaluation.
var (
	SingleCompartment = build.SingleCompartment
	NWOnly            = build.NWOnly
	NWSchedRest       = build.NWSchedRest
	NWPlusSched       = build.NWPlusSched
)

// DataPath selects how socket payloads move between compartments
// (internal/net): shared-window descriptors or per-boundary copies.
type DataPath = net.DataPath

// Data paths.
const (
	DataPathShared = net.DataPathShared
	DataPathCopy   = net.DataPathCopy
)

// Zero-copy buffer plumbing (internal/mem).
type (
	// BufRef is a ref-counted descriptor over a shared-window buffer.
	BufRef = mem.BufRef
	// SharedPool is the slab pool behind the zero-copy data path, with
	// leak accounting.
	SharedPool = mem.SharedPool
)

// NewWorld builds a server from cfg plus a default client, connected
// by a virtual wire and sharing one deterministic event loop.
func NewWorld(cfg Config) (*World, error) { return build.NewWorld(cfg) }

// Experiment harness (internal/harness): regenerates the paper's
// evaluation.
type (
	IperfResult = harness.IperfResult
	RedisResult = harness.RedisResult
	RedisOp     = harness.RedisOp
	SmpRun      = harness.SmpRun
)

// Redis operations.
const (
	OpSET = harness.OpSET
	OpGET = harness.OpGET
)

// RunIperf measures server-side iperf throughput for a configuration.
func RunIperf(cfg Config, totalBytes, recvBuf int) (*IperfResult, error) {
	return harness.RunIperf(cfg, totalBytes, recvBuf)
}

// TraceRing holds recorded domain-crossing events.
type TraceRing = trace.Ring

// RunIperfTraced is RunIperf with a server-side crossing trace of up
// to traceCap events (0 disables tracing).
func RunIperfTraced(cfg Config, totalBytes, recvBuf, traceCap int) (*IperfResult, *TraceRing, error) {
	return harness.RunIperfTraced(cfg, totalBytes, recvBuf, traceCap)
}

// RunIperfParallel runs a multi-stream iperf transfer (iperf -P) on an
// SMP machine (cfg.Smp vCPUs) and measures makespan throughput.
func RunIperfParallel(cfg Config, streams, totalBytes, recvBuf int) (*SmpRun, error) {
	return harness.RunIperfParallel(cfg, streams, totalBytes, recvBuf)
}

// RunIperfParallelTraced is RunIperfParallel with a server-side
// crossing trace of up to traceCap events (0 disables tracing); each
// event records the vCPU it ran on.
func RunIperfParallelTraced(cfg Config, streams, totalBytes, recvBuf, traceCap int) (*SmpRun, *TraceRing, error) {
	return harness.RunIperfParallelTraced(cfg, streams, totalBytes, recvBuf, traceCap)
}

// RunRedis measures Redis request throughput for a configuration.
func RunRedis(cfg Config, op RedisOp, payloadBytes, ops int) (*RedisResult, error) {
	return harness.RunRedis(cfg, op, payloadBytes, ops)
}

// Observability layer: cycle attribution and timeline export.
type (
	// Attribution is a complete cycle-attribution breakdown of one
	// machine's run; Check() enforces that every cycle of capacity
	// (makespan × vCPUs) is accounted for. IperfResult.Attr and
	// SmpRun.Attr carry one per measured run.
	Attribution = metrics.Attribution
	// AttributionSummary is the compact crossing/compute/stall split.
	AttributionSummary = metrics.Summary
	// MetricsSnapshot is a deterministic copy of a machine's live
	// counters and histograms (gate crossings, NIC queues, pool,
	// supervisor).
	MetricsSnapshot = metrics.Snapshot
	// Observation bundles one instrumented run's attribution, metrics
	// snapshot and crossing trace.
	Observation = harness.Observation
)

// ObserveFor runs one instrumented measurement per image of the named
// experiment ("smp" or any other) and returns the observability
// bundles, each conservation-checked.
func ObserveFor(exp string, quick bool) ([]Observation, error) {
	return harness.ObserveFor(exp, quick)
}

// ExportChrome writes events as a Chrome trace-event JSON document
// (load in chrome://tracing or Perfetto); one timeline row per vCPU.
func ExportChrome(w io.Writer, events []TraceEvent, ncpu int) error {
	return trace.ExportChrome(w, events, ncpu)
}

// TraceEvent is one recorded simulator event.
type TraceEvent = trace.Event
