package flexos_test

import (
	"testing"

	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/harness"
	flexnet "flexos/internal/net"
)

// --- SMP: N-vCPU scaling of the parallel iperf workload ---------------

// BenchmarkSmp runs the SMP scaling sweep (quick: vcpus 1, 2, 4) and
// reports the headline simulated metrics the CI gate pins: 4-vCPU
// throughput and speedup per backend, and the VM-RPC serialization
// share.
func BenchmarkSmp(b *testing.B) {
	var res *harness.SmpResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Smp(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1]
		switch s.Backend {
		case gate.FuncCall:
			b.ReportMetric(last.Mbps, "sim-direct-Mbps")
			b.ReportMetric(last.SpeedupX, "sim-direct-x4")
		case gate.MPKShared:
			b.ReportMetric(last.Mbps, "sim-mpksha-Mbps")
			b.ReportMetric(last.SpeedupX, "sim-mpksha-x4")
		case gate.VMRPC:
			b.ReportMetric(last.Mbps, "sim-vmrpc-Mbps")
			b.ReportMetric(last.SpeedupX, "sim-vmrpc-x4")
			b.ReportMetric(last.StallPct, "sim-vmrpc-stall-%")
		}
	}
}

// TestSmpScaling pins the tentpole acceptance bars: on the 8-stream
// parallel iperf workload, the direct and MPK-shared images scale
// near-linearly — at least 1.7x at 2 vCPUs and 3x at 4 vCPUs over the
// 1-vCPU run — and the VM-RPC image shows measurable serialization
// behind its single VMM endpoint. Pool-leak accounting is enforced
// inside every RunIperfParallel the sweep performs.
func TestSmpScaling(t *testing.T) {
	res, err := harness.Smp(true)
	if err != nil {
		t.Fatal(err)
	}
	at := func(s harness.SmpSeries, vcpus int) harness.SmpPoint {
		for _, p := range s.Points {
			if p.VCPUs == vcpus {
				return p
			}
		}
		t.Fatalf("%s: no %d-vCPU point in sweep %v", s.Label, vcpus, res.VCPUs)
		return harness.SmpPoint{}
	}
	for _, s := range res.Series {
		p2, p4 := at(s, 2), at(s, 4)
		if s.Backend == gate.FuncCall || s.Backend == gate.MPKShared {
			if p2.SpeedupX < 1.7 {
				t.Errorf("%s: only %.2fx at 2 vCPUs, want >= 1.7x", s.Label, p2.SpeedupX)
			}
			if p4.SpeedupX < 3.0 {
				t.Errorf("%s: only %.2fx at 4 vCPUs, want >= 3x", s.Label, p4.SpeedupX)
			}
			if p4.StallPct != 0 {
				t.Errorf("%s: %.1f%% gate stall on a per-vCPU backend", s.Label, p4.StallPct)
			}
		}
		if s.Backend == gate.VMRPC {
			if p4.StallPct <= 0 {
				t.Errorf("%s: no measured VMM serialization at 4 vCPUs", s.Label)
			}
		}
		t.Logf("%s: %.2fx @2, %.2fx @4 (stall %.1f%%)",
			s.Label, p2.SpeedupX, p4.SpeedupX, p4.StallPct)
	}
	// The serialized VM-RPC gate must scale no better than the free
	// gate — that gap is what the experiment exists to show.
	var direct, vmrpc harness.SmpSeries
	for _, s := range res.Series {
		switch s.Backend {
		case gate.FuncCall:
			direct = s
		case gate.VMRPC:
			vmrpc = s
		}
	}
	if d, v := at(direct, 4), at(vmrpc, 4); v.SpeedupX > d.SpeedupX+0.01 {
		t.Errorf("vm-rpc scaled %.2fx at 4 vCPUs, above direct's %.2fx", v.SpeedupX, d.SpeedupX)
	}
}

// TestSmpDeterminism replays the same 4-vCPU parallel transfer twice
// and requires bit-identical results: makespan, every vCPU's cycle
// counter, per-stream byte totals, scheduler steal/IPI counts, and the
// full crossing-trace event stream. The interleaver is conservative
// discrete-event simulation — no Go-level concurrency — so any drift
// here is a real ordering bug.
func TestSmpDeterminism(t *testing.T) {
	cfg := build.Config{Name: "smp-det", Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment, Smp: 4}
	run := func() (*harness.SmpRun, []string) {
		r, ring, err := harness.RunIperfParallelTraced(cfg, 8, 2<<20, 16<<10, 4096)
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		for _, e := range ring.Events() {
			events = append(events, e.String())
		}
		return r, events
	}
	a, ea := run()
	b, eb := run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespan drifted: %d vs %d", a.Makespan, b.Makespan)
	}
	for i := range a.PerCPU {
		if a.PerCPU[i] != b.PerCPU[i] {
			t.Errorf("cpu%d cycles drifted: %d vs %d", i, a.PerCPU[i], b.PerCPU[i])
		}
	}
	for i := range a.StreamBytes {
		if a.StreamBytes[i] != b.StreamBytes[i] {
			t.Errorf("stream %d bytes drifted: %d vs %d", i, a.StreamBytes[i], b.StreamBytes[i])
		}
	}
	if a.Steals != b.Steals || a.IPIs != b.IPIs {
		t.Errorf("scheduler events drifted: steals %d vs %d, ipis %d vs %d",
			a.Steals, b.Steals, a.IPIs, b.IPIs)
	}
	if len(ea) != len(eb) {
		t.Fatalf("trace length drifted: %d vs %d events", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("trace event %d drifted:\n  %s\n  %s", i, ea[i], eb[i])
		}
	}
}

// TestSmpRSSSpread checks the multi-queue NIC's steering: with 8
// streams on a 4-vCPU machine, the RSS hash must land work on every
// vCPU — no vCPU may sit idle while another drains everything.
func TestSmpRSSSpread(t *testing.T) {
	cfg := build.Config{Name: "smp-rss", Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment, Smp: 4}
	r, err := harness.RunIperfParallel(cfg, 8, 2<<20, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64
	for i, c := range r.PerCPU {
		if i == 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a vCPU did no work: per-CPU cycles %v", r.PerCPU)
	}
	if float64(max) > 1.5*float64(min) {
		t.Errorf("unbalanced RSS spread: per-CPU cycles %v (max > 1.5x min)", r.PerCPU)
	}
}

// TestSmpConfigfileRun drives the SMP directives end to end: a
// configfile with smp and affinity lines builds a world whose machine,
// NIC queues and pinned tcpip thread all follow the directives.
func TestSmpConfigfileRun(t *testing.T) {
	cfg, err := build.ParseConfig("backend mpk-shared\ncompartment nw netstack\n" +
		"compartment core sched alloc libc app rest\nsmp 2\naffinity queue1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Smp != 2 {
		t.Fatalf("smp directive parsed to %d", cfg.Smp)
	}
	r, err := harness.RunIperfParallel(cfg, 4, 1<<20, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r.VCPUs != 2 {
		t.Fatalf("smp directive ignored: %d vCPUs", r.VCPUs)
	}
	if r.Bytes != 1<<20 {
		t.Fatalf("transferred %d of %d bytes", r.Bytes, 1<<20)
	}
}

// TestSmpSingleQueueUnchanged pins the n=1 compatibility story at the
// workload level: a 1-vCPU parallel run and the classic single-stream
// path coexist, and the multi-queue NIC with one queue behaves as the
// old single-ring device (all traffic on queue 0).
func TestSmpSingleQueueUnchanged(t *testing.T) {
	cfg := build.Config{Name: "smp-n1", Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment}
	cfg.Net.SocketMode = flexnet.DirectMode
	r, err := harness.RunIperfParallel(cfg, 4, 1<<20, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r.VCPUs != 1 {
		t.Fatalf("default config built %d vCPUs", r.VCPUs)
	}
	if r.Steals != 0 || r.IPIs != 0 {
		t.Fatalf("single-core run recorded %d steals, %d IPIs", r.Steals, r.IPIs)
	}
	if len(r.PerCPU) != 1 || r.PerCPU[0] != r.Makespan {
		t.Fatalf("1-vCPU makespan %d != cpu0 cycles %v", r.Makespan, r.PerCPU)
	}
}

// TestSmpRedisParallel shards 8 redis connections across a 4-vCPU
// machine's RSS queues: each connection's serve worker executes
// commands on its queue's vCPU against the shared store, and the
// spread-out machine finishes faster than one core doing the same
// work.
func TestSmpRedisParallel(t *testing.T) {
	const (
		conns      = 8
		opsPerConn = 64
		payload    = 256
	)
	base := build.Config{
		Compartments: build.NWOnly(),
		Backend:      gate.MPKShared,
		Alloc:        build.AllocPerCompartment,
	}
	uni, err := harness.RunRedisParallel(base, conns, opsPerConn, payload)
	if err != nil {
		t.Fatal(err)
	}
	smp := base
	smp.Smp = 4
	par, err := harness.RunRedisParallel(smp, conns, opsPerConn, payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*harness.SmpRedisRun{uni, par} {
		if want := uint64(conns * opsPerConn); r.Ops != want {
			t.Fatalf("%d vCPUs: executed %d commands, want %d", r.VCPUs, r.Ops, want)
		}
	}
	if uni.VCPUs != 1 || par.VCPUs != 4 {
		t.Fatalf("vCPU counts = %d/%d, want 1/4", uni.VCPUs, par.VCPUs)
	}
	for i, c := range par.PerCPU {
		if c == 0 {
			t.Fatalf("vCPU %d idle: RSS left a queue's core unused (per-cpu %v)", i, par.PerCPU)
		}
	}
	speedup := float64(uni.Makespan) / float64(par.Makespan)
	if speedup < 1.7 {
		t.Fatalf("4-vCPU redis speedup = %.2fx (makespan %d -> %d), want >= 1.7x",
			speedup, uni.Makespan, par.Makespan)
	}
}
