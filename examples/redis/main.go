// Redis reproduces the paper's Fig. 4/Fig. 5 scenarios interactively:
// a Redis-style key-value server over the simulated stack, measured
// under a chosen compartmentalization, hardening and allocator policy.
//
//	go run ./examples/redis -model nw-sched-rest -backend hodor -payload 50
package main

import (
	"flag"
	"fmt"
	"log"

	"flexos"
)

func main() {
	backendName := flag.String("backend", "mpk", "isolation backend: none, mpk, hodor, vm")
	model := flag.String("model", "nw-only", "compartments: single, nw-only, nw-sched-rest, nw+sched")
	payload := flag.Int("payload", 50, "value size in bytes")
	ops := flag.Int("ops", 400, "requests per measurement")
	op := flag.String("op", "GET", "operation: GET or SET")
	shNet := flag.Bool("sh-netstack", false, "harden the network stack")
	globalAlloc := flag.Bool("global-alloc", false, "use one global allocator")
	verified := flag.Bool("verified-sched", false, "use the verified scheduler")
	flag.Parse()

	backend, err := flexos.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flexos.Config{Backend: backend, Alloc: flexos.AllocPerCompartment}
	switch *model {
	case "single":
		cfg.Compartments = flexos.SingleCompartment()
	case "nw-only":
		cfg.Compartments = flexos.NWOnly()
	case "nw-sched-rest":
		cfg.Compartments = flexos.NWSchedRest()
	case "nw+sched":
		cfg.Compartments = flexos.NWPlusSched()
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if backend == flexos.FuncCall {
		cfg.Compartments = flexos.SingleCompartment()
	}
	if *shNet {
		cfg.SH = map[string]flexos.HardeningProfile{
			"netstack": {ASAN: true, StackProtector: true, UBSan: true},
		}
		cfg.Alloc = flexos.AllocPerLibrary
	}
	if *globalAlloc {
		cfg.Alloc = flexos.AllocGlobal
		cfg.Compartments = flexos.SingleCompartment() // global alloc needs one domain
	}
	if *verified {
		cfg.Sched = flexos.SchedVerified
	}

	kind := flexos.OpGET
	if *op == "SET" {
		kind = flexos.OpSET
	}
	res, err := flexos.RunRedis(cfg, kind, *payload, *ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redis: %d x %s, %dB values, backend %v, model %s\n",
		res.Ops, res.Op, res.PayloadBytes, backend, *model)
	fmt.Printf("  throughput: %.1f kreq/s\n", res.KReqPerSec)
	fmt.Printf("  domain crossings during measurement: %d (%.2f per request)\n",
		res.Crossings, float64(res.Crossings)/float64(res.Ops))
}
