// Verified-sched demonstrates the paper's formally verified scheduler
// integration: the Dafny pre/post-conditions run as executable
// contracts at every API entry, so corruption from a co-resident
// untrusted component is caught instead of silently propagating — at
// the documented cost of ~3x slower context switches.
package main

import (
	"errors"
	"fmt"
	"log"

	"flexos/internal/clock"
	"flexos/internal/sched"
)

func main() {
	fmt.Println("== context-switch latency ==")
	c := measure(sched.NewCScheduler())
	v := measure(sched.NewVerifiedScheduler())
	fmt.Printf("  C scheduler:        %6.1f ns/switch\n", c)
	fmt.Printf("  verified scheduler: %6.1f ns/switch (%.2fx)\n", v, v/c)

	fmt.Println("\n== contract checking ==")
	fmt.Println("simulating a stray write corrupting the run queue...")
	s := sched.NewVerifiedScheduler()
	cpu := clock.New()
	var victim *sched.Thread
	victim = s.Spawn("victim", cpu, func(th *sched.Thread) {
		// An untrusted cohabitant scribbles over scheduler state: a
		// duplicate entry of the running thread appears in the queue.
		s.CorruptQueueForDemo(victim)
		th.Yield() // the next scheduler entry checks its invariants
	})
	err := s.Run()
	var ce *sched.ContractError
	if errors.As(err, &ce) {
		fmt.Printf("caught: %v\n", ce)
	} else {
		log.Fatalf("contract violation not caught: %v", err)
	}
}

func measure(s sched.Scheduler) float64 {
	cpu := clock.New()
	body := func(th *sched.Thread) {
		for i := 0; i < 1000; i++ {
			th.Yield()
		}
	}
	s.Spawn("a", cpu, body)
	s.Spawn("b", cpu, body)
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return clock.Nanoseconds(s.ContextSwitches()*s.SwitchCost()) / float64(s.ContextSwitches())
}
