// Httpd serves a few routes over the FlexOS stack under a chosen
// isolation configuration and fetches them — a third application
// (beyond the paper's iperf and Redis) on the same porting surface.
//
//	go run ./examples/httpd -backend mpk -model nw-only
package main

import (
	"flag"
	"fmt"
	"log"

	"flexos"
	"flexos/internal/app/httpd"
	"flexos/internal/sched"
)

func main() {
	backendName := flag.String("backend", "mpk", "isolation backend: none, mpk, hodor, vm, cheri")
	model := flag.String("model", "nw-only", "compartments: single, nw-only, nw-sched-rest")
	requests := flag.Int("n", 5, "requests to issue")
	flag.Parse()

	backend, err := flexos.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flexos.Config{Backend: backend, Alloc: flexos.AllocPerCompartment}
	switch *model {
	case "single":
		cfg.Compartments = flexos.SingleCompartment()
	case "nw-only":
		cfg.Compartments = flexos.NWOnly()
	case "nw-sched-rest":
		cfg.Compartments = flexos.NWSchedRest()
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if backend == flexos.FuncCall {
		cfg.Compartments = flexos.SingleCompartment()
	}

	w, err := flexos.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := httpd.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 80)
	srv.HandleStatic("/", "text/plain", []byte("FlexOS httpd: isolation is a build-time knob.\n"))
	srv.Handle("/config", func(string) (int, []byte) {
		return 200, []byte(fmt.Sprintf("backend=%v model=%s\n", backend, *model))
	})

	w.Sched.Spawn("httpd", w.Server.CPU, func(th *sched.Thread) {
		if err := srv.Serve(th, *requests); err != nil {
			log.Printf("server: %v", err)
		}
	})
	w.Sched.Spawn("client", w.Client.CPU, func(th *sched.Thread) {
		c := httpd.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 80)
		for i := 0; i < *requests; i++ {
			path := "/"
			if i%2 == 1 {
				path = "/config"
			}
			status, body, err := c.Get(th, path)
			if err != nil {
				log.Printf("GET %s: %v", path, err)
				return
			}
			fmt.Printf("GET %-8s -> %d %q\n", path, status, body)
		}
	})
	if err := w.Sched.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d requests, %d domain crossings on the server\n",
		srv.Requests, w.Server.Registry.TotalCrossings())
}
