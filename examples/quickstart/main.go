// Quickstart walks the core FlexOS workflow from the paper's §2:
// describe two libraries in the metadata language, discover they
// cannot share a compartment, harden the unsafe one so they can,
// derive a compartment plan for the full image, and run a measurement
// on a built image.
package main

import (
	"fmt"
	"log"

	"flexos"
)

const paperExample = `
# The formally verified scheduler from the paper.
library sched {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] alloc::malloc, alloc::free
  [API] thread_add(...); thread_rm(...); yield(...)
  [Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add), *(Call,thread_rm), *(Call,yield)
}

# A component written in an unsafe language whose control/data flow
# may be hijacked.
library unsafec {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(sched::yield); writes(Own,Shared); reads(Own,Shared)
}
`

func main() {
	// 1. Parse the metadata language.
	libs, err := flexos.ParseLibraries(paperExample)
	if err != nil {
		log.Fatal(err)
	}
	sched, unsafec := libs[0], libs[1]
	fmt.Println("== metadata ==")
	fmt.Print(sched.Spec.String())

	// 2. Pairwise compatibility: the scheduler expects others not to
	// write its memory; the C component might write anywhere.
	fmt.Println("\n== compatibility ==")
	fmt.Printf("sched + unsafec in one compartment? %v\n", flexos.Compatible(sched, unsafec))
	for _, c := range flexos.ExplainConflicts(sched, unsafec) {
		fmt.Printf("  %s\n", c)
	}

	// 3. Software hardening rewrites the metadata: DFI narrows
	// Write(*), CFI narrows Call(*).
	hardened, err := flexos.Harden(unsafec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter SH (%s): compatible? %v\n",
		hardened.VariantName(), flexos.Compatible(sched, hardened))

	// 4. Compartmentalization of the full default image by graph
	// coloring.
	image := flexos.DefaultImage()
	plan, err := flexos.PlanCompartments(image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== plan for the default image: %d compartments ==\n", plan.NumCompartments())
	for i, comp := range plan.Compartments {
		fmt.Printf("  compartment %d: %v\n", i, comp)
	}

	// 5. Build a runnable image matching the plan and measure it.
	fmt.Println("\n== measurement: iperf, netstack isolated via MPK ==")
	for _, backend := range []flexos.Backend{flexos.FuncCall, flexos.MPKShared, flexos.MPKSwitched} {
		cfg := flexos.Config{
			Compartments: flexos.NWOnly(),
			Backend:      backend,
			Alloc:        flexos.AllocPerCompartment,
		}
		if backend == flexos.FuncCall {
			cfg.Compartments = flexos.SingleCompartment()
		}
		res, err := flexos.RunIperf(cfg, 1<<20, 4096)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14v %8.2f Gb/s  (%d domain crossings)\n",
			backend, res.Gbps, res.Crossings)
	}
}
