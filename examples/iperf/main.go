// Iperf reproduces a slice of the paper's Fig. 3 interactively: an
// iperf-style bulk transfer over the simulated TCP stack, with the
// isolation backend, compartment model and recv-buffer size chosen on
// the command line.
//
//	go run ./examples/iperf -backend mpk -model nw-only -buf 1024
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"flexos"
	"flexos/internal/clock"
)

func main() {
	backendName := flag.String("backend", "none", "isolation backend: none, mpk, hodor, vm")
	model := flag.String("model", "nw-only", "compartments: single, nw-only, nw-sched-rest, nw+sched")
	buf := flag.Int("buf", 4096, "recv buffer size in bytes")
	total := flag.Int("total", 4<<20, "bytes to transfer")
	xen := flag.Bool("xen", false, "run on the Xen platform cost model")
	shNet := flag.Bool("sh-netstack", false, "apply software hardening to the network stack")
	traceN := flag.Int("trace", 0, "print the last N domain crossings (each line shows the vCPU it ran on)")
	smp := flag.Int("smp", 1, "number of vCPUs (SMP machine with one RSS NIC queue per vCPU)")
	streams := flag.Int("streams", 1, "parallel connections (iperf -P); forces the multi-stream path when > 1 or -smp > 1")
	profile := flag.String("profile", "", "write the run's timeline as Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
	flag.Parse()

	// -profile needs the event stream; keep a deep ring even when the
	// user didn't ask to print one.
	traceCap := *traceN
	if *profile != "" && traceCap < 8192 {
		traceCap = 8192
	}

	backend, err := flexos.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flexos.Config{
		Backend: backend,
		Alloc:   flexos.AllocPerCompartment,
	}
	switch *model {
	case "single":
		cfg.Compartments = flexos.SingleCompartment()
	case "nw-only":
		cfg.Compartments = flexos.NWOnly()
	case "nw-sched-rest":
		cfg.Compartments = flexos.NWSchedRest()
	case "nw+sched":
		cfg.Compartments = flexos.NWPlusSched()
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if backend == flexos.FuncCall {
		cfg.Compartments = flexos.SingleCompartment()
	}
	if *xen {
		cfg.Platform = 1
	}
	if *shNet {
		cfg.SH = map[string]flexos.HardeningProfile{"netstack": flexos.FullHardening}
		cfg.SH["netstack"] = flexos.HardeningProfile{ASAN: true, StackProtector: true, UBSan: true}
		cfg.Alloc = flexos.AllocPerLibrary
	}

	if *smp > 1 || *streams > 1 {
		cfg.Smp = *smp
		r, ring, err := flexos.RunIperfParallelTraced(cfg, *streams, *total, *buf, traceCap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iperf -P %d: %d bytes, recv buffer %d, backend %v, model %s, %d vCPUs\n",
			r.Streams, r.Bytes, *buf, backend, *model, r.VCPUs)
		fmt.Printf("  throughput: %.2f Gb/s (makespan %.2f ms)\n",
			r.Mbps/1000, clock.Nanoseconds(r.Makespan)/1e6)
		for i, c := range r.PerCPU {
			fmt.Printf("  cpu%d: %12d cycles\n", i, c)
		}
		fmt.Printf("  steals: %d  ipis: %d", r.Steals, r.IPIs)
		if r.RPCStalled > 0 {
			fmt.Printf("  vmm-stall: %d cycles", r.RPCStalled)
		}
		fmt.Println()
		if *traceN > 0 {
			printRing(ring)
		}
		writeProfile(*profile, ring, r.VCPUs)
		return
	}

	res, ring, err := flexos.RunIperfTraced(cfg, *total, *buf, traceCap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iperf: %d bytes, recv buffer %d, backend %v, model %s\n",
		res.Bytes, res.RecvBuf, backend, *model)
	fmt.Printf("  throughput: %.2f Gb/s (simulated server time %.2f ms)\n",
		res.Gbps, clock.Nanoseconds(res.ServerCycles)/1e6)
	fmt.Printf("  domain crossings: %d\n", res.Crossings)
	fmt.Println("  server cycles by component:")
	for comp, cyc := range res.ByComponent {
		fmt.Printf("    %-10s %12d (%5.1f%%)\n", comp, cyc,
			100*float64(cyc)/float64(res.ServerCycles))
	}
	if *traceN > 0 {
		printRing(ring)
	}
	writeProfile(*profile, ring, 1)
}

// writeProfile exports the ring's events as a Chrome trace-event
// timeline (no-op without -profile).
func writeProfile(path string, ring *flexos.TraceRing, ncpu int) {
	if path == "" || ring == nil {
		return
	}
	var buf bytes.Buffer
	if err := flexos.ExportChrome(&buf, ring.Events(), ncpu); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  profile: %d events written to %s (load in chrome://tracing)\n", ring.Len(), path)
	if d := ring.Dropped(); d > 0 {
		fmt.Printf("  profile: %d older events dropped from the timeline (bounded ring)\n", d)
	}
}

// printRing dumps a crossing trace (each line shows the vCPU the event
// ran on) with its per-kind drop accounting.
func printRing(ring *flexos.TraceRing) {
	if ring == nil {
		return
	}
	fmt.Printf("  last %d of %d events:\n", ring.Len(), ring.Total())
	for _, e := range ring.Events() {
		fmt.Printf("    %s\n", e)
	}
	if d := ring.Dropped(); d > 0 {
		fmt.Printf("  (%d older events overwritten; raise -trace to keep more)\n", d)
		by := ring.DroppedByKind()
		kinds := make([]string, 0, len(by))
		for kind := range by {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			fmt.Printf("    dropped %-12s %d\n", kind, by[kind])
		}
	}
}
