// Design-space renders the paper's Figure 1 idea concretely: the
// security/performance trade-off area of one image, enumerated,
// scored, measured, and drawn as an ASCII scatter. Each point is a
// deployable configuration (an SH-variant combination with its minimal
// coloring); the estimator ranks them and the measured column is the
// actual Redis throughput of the built image.
//
//	go run ./examples/design-space [-backend mpk] [-measure]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"flexos"
	"flexos/internal/harness"
)

func main() {
	backendName := flag.String("backend", "mpk", "isolation backend: none, mpk, hodor, vm, cheri")
	measure := flag.Bool("measure", true, "run each candidate's image (slower)")
	flag.Parse()

	backend, err := flexos.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	libs := flexos.DefaultImage()
	cands, err := flexos.Explore(libs, backend)
	if err != nil {
		log.Fatal(err)
	}
	w := flexos.DefaultWorkload()

	sorted := append([]*flexos.Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].EstCycles < sorted[j].EstCycles })

	var measured map[*flexos.Candidate]float64
	if *measure {
		measured = make(map[*flexos.Candidate]float64)
		ms, err := harness.MeasureCandidates(sorted, harness.OpGET, 50, 160)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range ms {
			measured[m.Candidate] = m.KReqPerSec
		}
	}

	fmt.Printf("design space of the default image under %v (%d candidates)\n\n", backend, len(cands))
	fmt.Printf("%-9s %-9s %-10s %s\n", "est-slow", "security", "measured", "configuration")
	for _, c := range sorted {
		m := "-"
		if v, ok := measured[c]; ok {
			m = fmt.Sprintf("%.0f kreq/s", v)
		}
		fmt.Printf("%8.2fx %9.1f %-10s %d comps, %d hardened\n",
			c.Slowdown(w), c.Security, m, c.Plan.NumCompartments(), c.HardenedLibs)
	}

	// ASCII scatter: security (rows, high on top) vs estimated cost
	// (columns) — the Figure 1 trade-off area.
	fmt.Println("\nsecurity ^")
	minC, maxC := sorted[0].EstCycles, sorted[len(sorted)-1].EstCycles
	var maxS float64
	for _, c := range cands {
		if c.Security > maxS {
			maxS = c.Security
		}
	}
	const rows, cols = 10, 48
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, c := range cands {
		x := 0
		if maxC > minC {
			x = int(float64(cols-1) * (c.EstCycles - minC) / (maxC - minC))
		}
		y := 0
		if maxS > 0 {
			y = int(float64(rows-1) * c.Security / maxS)
		}
		grid[rows-1-y][x] = '*'
	}
	front := map[*flexos.Candidate]bool{}
	for _, c := range flexos.ParetoFront(cands) {
		front[c] = true
	}
	for _, c := range cands {
		if !front[c] {
			continue
		}
		x := 0
		if maxC > minC {
			x = int(float64(cols-1) * (c.EstCycles - minC) / (maxC - minC))
		}
		y := 0
		if maxS > 0 {
			y = int(float64(rows-1) * c.Security / maxS)
		}
		grid[rows-1-y][x] = 'P' // Pareto-optimal
	}
	for _, row := range grid {
		fmt.Printf("  |%s\n", row)
	}
	fmt.Printf("  +%s> est. cost/op\n", strings.Repeat("-", cols))
	fmt.Println("  P = Pareto-optimal configuration, * = dominated")
}
