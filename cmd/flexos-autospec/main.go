// Command flexos-autospec generates draft library metadata from
// observed behaviour: it runs the Redis workload on a baseline image
// with the gate registry's observer tapped, then renders the recorded
// call graph in the metadata language for developer review — the
// paper's §5 "methods for (semi-)automatically generating [metadata]
// should be explored", implemented.
//
// Usage:
//
//	flexos-autospec [-payload 50] [-ops 400] [-lint]
package main

import (
	"flag"
	"fmt"
	"os"

	"flexos/internal/core/spec"
	"flexos/internal/harness"
)

func main() {
	payload := flag.Int("payload", 50, "redis value size driving the observation")
	ops := flag.Int("ops", 400, "requests to observe")
	lint := flag.Bool("lint", false, "lint the generated drafts")
	flag.Parse()

	rec, rendered, err := harness.RecordRedisMetadata(*payload, *ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexos-autospec: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# Observed %d distinct call edges across %d libraries.\n",
		len(rec.Edges()), len(rec.Libraries()))
	fmt.Print(rendered)

	if *lint {
		libs, err := spec.Parse(rendered)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexos-autospec: generated metadata does not parse: %v\n", err)
			os.Exit(1)
		}
		problems := spec.LintAll(libs)
		for _, p := range problems {
			fmt.Printf("# lint %s\n", p)
		}
		if spec.HasErrors(problems) {
			os.Exit(1)
		}
	}
}
