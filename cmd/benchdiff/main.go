// Command benchdiff is the CI bench-regression gate: it runs the
// repo's headline benchmarks (design-space exploration and the
// zero-copy data path), takes the median of -count runs per metric,
// and fails if any metric regresses beyond its baseline tolerance.
//
// Usage:
//
//	benchdiff [-baseline BENCH_gate.json] [-input saved-bench.txt] [-json benchdiff.json]
//
// -json writes the per-entry comparison (baseline, median, delta,
// tolerance, status) as machine-readable JSON — the CI artifact other
// tooling diffs across runs. When $GITHUB_STEP_SUMMARY is set the same
// comparison is appended there as a markdown table, so every PR shows
// the bench gate's verdict inline.
//
// Without -input it runs
//
//	go test -run=NONE -bench='^(BenchmarkExplore|BenchmarkFig3DataPath|BenchmarkOverload|BenchmarkGateCall|BenchmarkGateCallBatch|BenchmarkBatching|BenchmarkSmp|BenchmarkChaosnet|BenchmarkAutotune)$' -benchtime=1x -count=3 .
//
// in the current directory. With -input it checks a saved `go test
// -bench` output instead — which is also how the gate itself is
// tested: feeding it a synthetic 2x slowdown must make it exit 1.
//
// Baselines carry per-entry tolerances: simulator metrics (sim-Mbps,
// cache-hit-%) are deterministic and get the tight default, while
// wall-clock ns/op entries get a wide one because single-iteration
// wall time on shared CI runners is noisy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// check is one baseline assertion on one benchmark metric.
type check struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// Direction is "lower" (lower is better: ns/op) or "higher"
	// (higher is better: sim-Mbps, cache-hit-%).
	Direction string `json:"direction"`
	// TolerancePct overrides the file-level threshold for this check.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
}

// baseline is the committed gate file.
type baseline struct {
	Protocol     string             `json:"protocol"`
	ThresholdPct float64            `json:"threshold_pct"`
	Entries      map[string][]check `json:"entries"`
}

// result is one metric's comparison outcome, exported via -json and
// the GitHub step summary.
type result struct {
	Benchmark    string  `json:"benchmark"`
	Metric       string  `json:"metric"`
	Baseline     float64 `json:"baseline"`
	Median       float64 `json:"median"`
	DeltaPct     float64 `json:"delta_pct"`
	TolerancePct float64 `json:"tolerance_pct"`
	Direction    string  `json:"direction"`
	// Status is "ok", "fail" or "missing".
	Status string `json:"status"`
}

// report is the -json document.
type report struct {
	BaselineFile string   `json:"baseline_file"`
	Protocol     string   `json:"protocol"`
	ThresholdPct float64  `json:"threshold_pct"`
	Results      []result `json:"results"`
	Failures     int      `json:"failures"`
}

func main() {
	baseFile := flag.String("baseline", "BENCH_gate.json", "baseline file")
	input := flag.String("input", "", "check a saved go test -bench output instead of running")
	count := flag.Int("count", 3, "bench -count when running")
	jsonOut := flag.String("json", "", "write the per-entry comparison as JSON to this file")
	flag.Parse()

	base, err := loadBaseline(*baseFile)
	if err != nil {
		fatal(err)
	}
	var out string
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		out = string(b)
	} else {
		out, err = runBenches(*count)
		if err != nil {
			fatal(err)
		}
	}
	medians := parseBenchOutput(out)
	rep := report{BaselineFile: *baseFile, Protocol: base.Protocol, ThresholdPct: base.ThresholdPct}
	fmt.Printf("%-44s %-12s %12s %12s %8s %s\n",
		"benchmark", "metric", "baseline", "median", "delta", "status")
	names := make([]string, 0, len(base.Entries))
	for name := range base.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, c := range base.Entries[name] {
			tol := c.TolerancePct
			if tol == 0 {
				tol = base.ThresholdPct
			}
			r := result{
				Benchmark: name, Metric: c.Metric, Baseline: c.Value,
				TolerancePct: tol, Direction: c.Direction, Status: "ok",
			}
			med, ok := medians[name][c.Metric]
			if !ok {
				fmt.Printf("%-44s %-12s %12.1f %12s %8s MISSING\n",
					name, c.Metric, c.Value, "-", "-")
				r.Status = "missing"
				rep.Failures++
				rep.Results = append(rep.Results, r)
				continue
			}
			r.Median = med
			var delta float64
			var regressed bool
			if c.Value == 0 {
				// A zero baseline (e.g. copy-cycles on the shared data
				// path) must stay zero.
				regressed = med != 0
			} else {
				delta = 100 * (med - c.Value) / c.Value
				regressed = delta > tol // lower-is-better: growth is regression
				if c.Direction == "higher" {
					regressed = delta < -tol
				}
			}
			r.DeltaPct = delta
			status := "ok"
			if regressed {
				status = fmt.Sprintf("FAIL (>%g%%)", tol)
				r.Status = "fail"
				rep.Failures++
			}
			fmt.Printf("%-44s %-12s %12.1f %12.1f %+7.1f%% %s\n",
				name, c.Metric, c.Value, med, delta, status)
			rep.Results = append(rep.Results, r)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, &rep); err != nil {
			fatal(err)
		}
	}
	if err := writeStepSummary(&rep); err != nil {
		fatal(err)
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond tolerance\n", rep.Failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: all metrics within tolerance")
}

// writeJSON writes the machine-readable comparison.
func writeJSON(path string, rep *report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeStepSummary appends a markdown table of the comparison to
// $GITHUB_STEP_SUMMARY when set (no-op elsewhere), so the gate's
// verdict renders on the PR's checks page.
func writeStepSummary(rep *report) error {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	verdict := "all metrics within tolerance ✅"
	if rep.Failures > 0 {
		verdict = fmt.Sprintf("%d metric(s) regressed beyond tolerance ❌", rep.Failures)
	}
	fmt.Fprintf(&b, "### Bench regression gate (%s)\n\n%s\n\n", rep.BaselineFile, verdict)
	b.WriteString("| benchmark | metric | baseline | median | delta | tolerance | status |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
	for _, r := range rep.Results {
		med, delta := "-", "-"
		if r.Status != "missing" {
			med = fmt.Sprintf("%.1f", r.Median)
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
		}
		status := r.Status
		if r.Status != "ok" {
			status = "**" + r.Status + "**"
		}
		fmt.Fprintf(&b, "| %s | %s | %.1f | %s | %s | %g%% | %s |\n",
			r.Benchmark, r.Metric, r.Baseline, med, delta, r.TolerancePct, status)
	}
	b.WriteString("\n")
	_, err = f.WriteString(b.String())
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

func loadBaseline(path string) (*baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.ThresholdPct <= 0 {
		base.ThresholdPct = 25
	}
	return &base, nil
}

func runBenches(count int) (string, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench=^(BenchmarkExplore|BenchmarkFig3DataPath|BenchmarkOverload|BenchmarkGateCall|BenchmarkGateCallBatch|BenchmarkBatching|BenchmarkSmp|BenchmarkChaosnet|BenchmarkAutotune)$",
		"-benchtime=1x", fmt.Sprintf("-count=%d", count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("bench run failed: %w\n%s", err, out)
	}
	return string(out), nil
}

// parseBenchOutput collects every sample per (benchmark, metric) from
// standard `go test -bench` output and reduces each to its median.
// Benchmark names are normalized by stripping the -GOMAXPROCS suffix.
func parseBenchOutput(out string) map[string]map[string]float64 {
	samples := map[string]map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if samples[name] == nil {
				samples[name] = map[string][]float64{}
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	medians := map[string]map[string]float64{}
	for name, metrics := range samples {
		medians[name] = map[string]float64{}
		for unit, vs := range metrics {
			sort.Float64s(vs)
			medians[name][unit] = vs[len(vs)/2]
		}
	}
	return medians
}
