// Command benchdiff is the CI bench-regression gate: it runs the
// repo's headline benchmarks (design-space exploration and the
// zero-copy data path), takes the median of -count runs per metric,
// and fails if any metric regresses beyond its baseline tolerance.
//
// Usage:
//
//	benchdiff [-baseline BENCH_gate.json] [-input saved-bench.txt]
//
// Without -input it runs
//
//	go test -run=NONE -bench='^(BenchmarkExplore|BenchmarkFig3DataPath|BenchmarkOverload|BenchmarkGateCall|BenchmarkGateCallBatch|BenchmarkBatching|BenchmarkSmp)$' -benchtime=1x -count=3 .
//
// in the current directory. With -input it checks a saved `go test
// -bench` output instead — which is also how the gate itself is
// tested: feeding it a synthetic 2x slowdown must make it exit 1.
//
// Baselines carry per-entry tolerances: simulator metrics (sim-Mbps,
// cache-hit-%) are deterministic and get the tight default, while
// wall-clock ns/op entries get a wide one because single-iteration
// wall time on shared CI runners is noisy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// check is one baseline assertion on one benchmark metric.
type check struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// Direction is "lower" (lower is better: ns/op) or "higher"
	// (higher is better: sim-Mbps, cache-hit-%).
	Direction string `json:"direction"`
	// TolerancePct overrides the file-level threshold for this check.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
}

// baseline is the committed gate file.
type baseline struct {
	Protocol     string             `json:"protocol"`
	ThresholdPct float64            `json:"threshold_pct"`
	Entries      map[string][]check `json:"entries"`
}

func main() {
	baseFile := flag.String("baseline", "BENCH_gate.json", "baseline file")
	input := flag.String("input", "", "check a saved go test -bench output instead of running")
	count := flag.Int("count", 3, "bench -count when running")
	flag.Parse()

	base, err := loadBaseline(*baseFile)
	if err != nil {
		fatal(err)
	}
	var out string
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		out = string(b)
	} else {
		out, err = runBenches(*count)
		if err != nil {
			fatal(err)
		}
	}
	medians := parseBenchOutput(out)
	failures := 0
	fmt.Printf("%-44s %-12s %12s %12s %8s %s\n",
		"benchmark", "metric", "baseline", "median", "delta", "status")
	names := make([]string, 0, len(base.Entries))
	for name := range base.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, c := range base.Entries[name] {
			med, ok := medians[name][c.Metric]
			if !ok {
				fmt.Printf("%-44s %-12s %12.1f %12s %8s MISSING\n",
					name, c.Metric, c.Value, "-", "-")
				failures++
				continue
			}
			tol := c.TolerancePct
			if tol == 0 {
				tol = base.ThresholdPct
			}
			var delta float64
			var regressed bool
			if c.Value == 0 {
				// A zero baseline (e.g. copy-cycles on the shared data
				// path) must stay zero.
				regressed = med != 0
			} else {
				delta = 100 * (med - c.Value) / c.Value
				regressed = delta > tol // lower-is-better: growth is regression
				if c.Direction == "higher" {
					regressed = delta < -tol
				}
			}
			status := "ok"
			if regressed {
				status = fmt.Sprintf("FAIL (>%g%%)", tol)
				failures++
			}
			fmt.Printf("%-44s %-12s %12.1f %12.1f %+7.1f%% %s\n",
				name, c.Metric, c.Value, med, delta, status)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond tolerance\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: all metrics within tolerance")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

func loadBaseline(path string) (*baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.ThresholdPct <= 0 {
		base.ThresholdPct = 25
	}
	return &base, nil
}

func runBenches(count int) (string, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench=^(BenchmarkExplore|BenchmarkFig3DataPath|BenchmarkOverload|BenchmarkGateCall|BenchmarkGateCallBatch|BenchmarkBatching|BenchmarkSmp)$",
		"-benchtime=1x", fmt.Sprintf("-count=%d", count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("bench run failed: %w\n%s", err, out)
	}
	return string(out), nil
}

// parseBenchOutput collects every sample per (benchmark, metric) from
// standard `go test -bench` output and reduces each to its median.
// Benchmark names are normalized by stripping the -GOMAXPROCS suffix.
func parseBenchOutput(out string) map[string]map[string]float64 {
	samples := map[string]map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if samples[name] == nil {
				samples[name] = map[string][]float64{}
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	medians := map[string]map[string]float64{}
	for name, metrics := range samples {
		medians[name] = map[string]float64{}
		for unit, vs := range metrics {
			sort.Float64s(vs)
			medians[name][unit] = vs[len(vs)/2]
		}
	}
	return medians
}
