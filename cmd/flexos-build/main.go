// Command flexos-build derives a compartmentalization plan from
// library metadata: pairwise compatibility checking, graph coloring,
// and an explanation of every conflict.
//
// Usage:
//
//	flexos-build [-spec file.flexos] [-algo exact|dsatur|greedy] [-harden lib1,lib2] [-v]
//
// Without -spec, the built-in default FlexOS image metadata is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/spec"
)

func main() {
	specPath := flag.String("spec", "", "metadata file (default: built-in image)")
	algo := flag.String("algo", "exact", "coloring algorithm: exact, dsatur, greedy")
	harden := flag.String("harden", "", "comma-separated libraries to harden (SH variants)")
	verbose := flag.Bool("v", false, "print metadata and all conflicts")
	flag.Parse()

	if err := run(*specPath, *algo, *harden, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "flexos-build: %v\n", err)
		os.Exit(1)
	}
}

func run(specPath, algo, harden string, verbose bool) error {
	var libs []*spec.Library
	if specPath == "" {
		libs = spec.DefaultImage()
		fmt.Println("using built-in default image metadata")
	} else {
		src, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		libs, err = spec.Parse(string(src))
		if err != nil {
			return err
		}
	}

	// Metadata is error prone (§5 of the paper): lint before planning.
	problems := spec.LintAll(libs)
	for _, p := range problems {
		fmt.Printf("lint %s\n", p)
	}
	if spec.HasErrors(problems) {
		return fmt.Errorf("metadata has lint errors; refusing to plan")
	}

	if harden != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(harden, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for i, l := range libs {
			if !want[l.Name] {
				continue
			}
			h, err := spec.Harden(l)
			if err != nil {
				return fmt.Errorf("harden %s: %w", l.Name, err)
			}
			libs[i] = h
			delete(want, l.Name)
		}
		for name := range want {
			return fmt.Errorf("unknown library %q in -harden", name)
		}
	}

	if verbose {
		for _, l := range libs {
			fmt.Printf("library %s", l.VariantName())
			if l.Trusted {
				fmt.Print(" (trusted)")
			}
			fmt.Printf(":\n%s\n", indent(l.Spec.String()))
		}
	}

	m := compat.BuildMatrix(libs)
	fmt.Printf("%d libraries, %d conflicting pairs\n", m.Len(), m.EdgeCount())
	if verbose {
		for _, e := range m.Edges() {
			for _, c := range m.Conflicts(e[0], e[1]) {
				fmt.Printf("  conflict: %s\n", c)
			}
		}
	}

	g := coloring.FromMatrix(m)
	var asg coloring.Assignment
	switch algo {
	case "greedy":
		asg = coloring.Greedy(g)
	case "dsatur":
		asg = coloring.DSATUR(g)
	case "exact":
		var err error
		asg, err = coloring.Exact(g)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err := coloring.Validate(g, asg); err != nil {
		return err
	}
	plan := coloring.PlanFromAssignment(m, asg)
	fmt.Printf("plan (%s): %d compartment(s)\n", algo, plan.NumCompartments())
	for i, comp := range plan.Compartments {
		fmt.Printf("  compartment %d: %s\n", i, strings.Join(comp, ", "))
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ")
}
