// Command flexos-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	flexos-bench -exp fig3|table1|fig4|fig5|ctxswitch|datapath|blastradius|overload|batching|smp|all [-quick] [-ops N]
package main

import (
	"flag"
	"fmt"
	"os"

	"flexos/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3, table1, fig4, fig5, ctxswitch, datapath, blastradius, overload, batching, smp, all")
	quick := flag.Bool("quick", false, "thin sweeps for a faster run")
	ops := flag.Int("ops", 300, "redis requests per measurement")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "fig3":
			r, err := harness.Fig3(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig3(r))
		case "table1":
			r, err := harness.Table1()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatTable1(r))
		case "fig4":
			r, err := harness.Fig4(*ops)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig4(r))
		case "fig5":
			r, err := harness.Fig5(*ops)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig5(r))
		case "ctxswitch":
			r, err := harness.CtxSwitch()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatCtxSwitch(r))
		case "datapath":
			r, err := harness.DataPath(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatDataPath(r))
		case "blastradius":
			r, err := harness.BlastRadius()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatBlastRadius(r))
		case "overload":
			r, err := harness.Overload()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatOverload(r))
		case "batching":
			r, err := harness.Batching(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatBatching(r))
		case "smp":
			r, err := harness.Smp(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatSmp(r))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig3", "table1", "fig4", "fig5", "ctxswitch", "datapath", "blastradius", "overload", "batching", "smp"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "flexos-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
