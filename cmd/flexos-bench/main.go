// Command flexos-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	flexos-bench -exp fig3|table1|fig4|fig5|ctxswitch|datapath|blastradius|overload|batching|smp|chaosnet|autotune|all [-quick] [-ops N]
//	            [-metrics] [-profile trace.json] [-metrics-out attribution.json] [-autotune-out report.json]
//
// -metrics prints a per-compartment cycle-attribution table for each
// image of the selected experiment, reconciled against the machine's
// elapsed time (the conservation line). -profile writes a Chrome
// trace-event timeline (chrome://tracing, Perfetto) of the first
// observed image; -metrics-out writes the attribution and live-counter
// snapshots of every observed image as JSON.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flexos/internal/harness"
	"flexos/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3, table1, fig4, fig5, ctxswitch, datapath, blastradius, overload, batching, smp, chaosnet, autotune, all")
	quick := flag.Bool("quick", false, "thin sweeps for a faster run")
	ops := flag.Int("ops", 300, "redis requests per measurement")
	metricsFlag := flag.Bool("metrics", false, "print per-compartment cycle-attribution tables for the selected experiment")
	profile := flag.String("profile", "", "write a Chrome trace-event timeline of the first observed image to this file")
	metricsOut := flag.String("metrics-out", "", "write attribution + metrics snapshots of the observed images as JSON to this file")
	autotuneOut := flag.String("autotune-out", "", "write the autotune model-validation report as JSON to this file")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "fig3":
			r, err := harness.Fig3(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig3(r))
		case "table1":
			r, err := harness.Table1()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatTable1(r))
		case "fig4":
			r, err := harness.Fig4(*ops)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig4(r))
		case "fig5":
			r, err := harness.Fig5(*ops)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatFig5(r))
		case "ctxswitch":
			r, err := harness.CtxSwitch()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatCtxSwitch(r))
		case "datapath":
			r, err := harness.DataPath(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatDataPath(r))
		case "blastradius":
			r, err := harness.BlastRadius()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatBlastRadius(r))
		case "overload":
			r, err := harness.Overload()
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatOverload(r))
		case "batching":
			r, err := harness.Batching(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatBatching(r))
		case "smp":
			r, err := harness.Smp(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatSmp(r))
		case "chaosnet":
			r, err := harness.Chaosnet(*quick)
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatChaosnet(r))
		case "autotune":
			r, err := harness.Autotune(harness.DefaultAutotuneOpts(*quick))
			if err != nil {
				return err
			}
			fmt.Print(harness.FormatAutotune(r))
			if *autotuneOut != "" {
				b, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return err
				}
				b = append(b, '\n')
				if err := os.WriteFile(*autotuneOut, b, 0o644); err != nil {
					return err
				}
				fmt.Printf("autotune: wrote model-validation report to %s\n", *autotuneOut)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig3", "table1", "fig4", "fig5", "ctxswitch", "datapath", "blastradius", "overload", "batching", "smp", "chaosnet", "autotune"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "flexos-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsFlag || *profile != "" || *metricsOut != "" {
		if err := observe(*exp, *quick, *metricsFlag, *profile, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "flexos-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// observe runs the instrumented observability pass over the selected
// experiment's images and emits the requested outputs. Every
// attribution is conservation-checked (ObserveFor fails otherwise), so
// a table that prints is a table that reconciles with clock elapsed
// time; the written Chrome trace is schema-validated before the file
// lands.
func observe(exp string, quick, printTables bool, profile, metricsOut string) error {
	obs, err := harness.ObserveFor(exp, quick)
	if err != nil {
		return err
	}
	if printTables {
		for _, o := range obs {
			fmt.Printf("=== %s (backend %s) ===\n", o.Label, o.Backend)
			fmt.Print(o.Attr.Format())
			if o.DroppedEvents > 0 {
				fmt.Printf("  trace ring: %d of %d events retained (attribution reads live counters, unaffected)\n",
					uint64(len(o.Events)), o.TotalEvents)
			}
			fmt.Println()
		}
	}
	if profile != "" {
		o := obs[0]
		var buf bytes.Buffer
		if err := trace.ExportChrome(&buf, o.Events, o.VCPUs); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		n, err := trace.ValidateChrome(buf.Bytes())
		if err != nil {
			return fmt.Errorf("profile: generated trace failed validation: %w", err)
		}
		if err := os.WriteFile(profile, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("profile: wrote %d events (%s) to %s\n", n, o.Label, profile)
	}
	if metricsOut != "" {
		b, err := json.MarshalIndent(obs, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(metricsOut, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics: wrote %d image snapshot(s) to %s\n", len(obs), metricsOut)
	}
	return nil
}
