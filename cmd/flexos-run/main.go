// Command flexos-run builds an image from a configuration file and
// runs a workload on it — the end-to-end flow of the paper's build
// system: edit a few options, recompile, measure.
//
// Usage:
//
//	flexos-run -config image.cfg [-workload iperf|redis] [-payload 50]
//	           [-ops 400] [-buf 4096] [-total 4194304] [-print-config]
//
// Without -config, the no-isolation baseline image runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/harness"
)

func main() {
	configPath := flag.String("config", "", "image configuration file")
	workload := flag.String("workload", "redis", "workload: iperf or redis")
	payload := flag.Int("payload", 50, "redis value size")
	ops := flag.Int("ops", 400, "redis requests")
	buf := flag.Int("buf", 4096, "iperf recv buffer")
	total := flag.Int("total", 4<<20, "iperf bytes to transfer")
	printCfg := flag.Bool("print-config", false, "echo the normalized configuration and exit")
	flag.Parse()

	if err := run(*configPath, *workload, *payload, *ops, *buf, *total, *printCfg); err != nil {
		fmt.Fprintf(os.Stderr, "flexos-run: %v\n", err)
		os.Exit(1)
	}
}

func run(configPath, workload string, payload, ops, buf, total int, printCfg bool) error {
	var cfg build.Config
	if configPath != "" {
		src, err := os.ReadFile(configPath)
		if err != nil {
			return err
		}
		cfg, err = build.ParseConfig(string(src))
		if err != nil {
			return err
		}
	}
	if printCfg {
		fmt.Print(build.FormatConfig(cfg))
		return nil
	}
	switch workload {
	case "iperf":
		r, err := harness.RunIperf(cfg, total, buf)
		if err != nil {
			return err
		}
		fmt.Printf("iperf: %.2f Gb/s over %d bytes (recv buffer %d)\n", r.Gbps, r.Bytes, r.RecvBuf)
		fmt.Printf("  simulated server time: %.2f ms, %d domain crossings\n",
			clock.Nanoseconds(r.ServerCycles)/1e6, r.Crossings)
	case "redis":
		for _, op := range []harness.RedisOp{harness.OpSET, harness.OpGET} {
			r, err := harness.RunRedis(cfg, op, payload, ops)
			if err != nil {
				return err
			}
			fmt.Printf("redis %s: %.1f kreq/s (%dB values, %d requests, %.2f crossings/req)\n",
				op, r.KReqPerSec, r.PayloadBytes, r.Ops, float64(r.Crossings)/float64(r.Ops))
		}
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	return nil
}
