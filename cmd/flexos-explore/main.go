// Command flexos-explore enumerates the security/performance design
// space of a FlexOS image: every software-hardening variant
// combination, each minimally colored, scored against a workload
// profile, with the two searches from the paper:
//
//   - -budget X: maximize security within a performance budget
//     (X = max slowdown over baseline, e.g. 1.5).
//   - -require no-wildcard-writes | separated:<a>:<b> | hardened:<lib>
//     (repeatable, comma-separated): best performance meeting safety
//     requirements.
//
// Usage:
//
//	flexos-explore [-spec file] [-backend mpk|hodor|vm] [-budget 1.5]
//	               [-require no-wildcard-writes,separated:netstack:sched]
//	               [-pareto] [-parallel=false] [-workers N]
//
// Exploration fans the variant combinations over a worker pool
// (-workers, default GOMAXPROCS; -parallel=false forces one worker)
// and memoizes graph colorings across isomorphic conflict structures;
// the run's statistics — combinations, workers, coloring cache hit
// rate, DSATUR fallbacks — are printed after the candidate list.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flexos/internal/core/explore"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
	"flexos/internal/harness"
)

func main() {
	specPath := flag.String("spec", "", "metadata file (default: built-in image)")
	backendName := flag.String("backend", "mpk", "isolation backend: mpk, hodor, vm, none")
	budget := flag.Float64("budget", 0, "max slowdown for the max-security search (0 = skip)")
	require := flag.String("require", "", "comma-separated requirements for the best-perf search")
	pareto := flag.Bool("pareto", false, "print only the Pareto front")
	measure := flag.Bool("measure", false, "run the Redis workload on every candidate (built-in image only)")
	measuredWorkload := flag.Bool("measured-workload", false, "derive call rates and base cost from an observed run")
	parallel := flag.Bool("parallel", true, "explore combinations over a worker pool")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; implies -parallel)")
	flag.Parse()

	poolSize := *workers
	if !*parallel && poolSize <= 0 {
		poolSize = 1
	}
	if err := run(*specPath, *backendName, *budget, *require, *pareto, *measure, *measuredWorkload, poolSize); err != nil {
		fmt.Fprintf(os.Stderr, "flexos-explore: %v\n", err)
		os.Exit(1)
	}
}

func run(specPath, backendName string, budget float64, require string, pareto, measure, measuredWorkload bool, workers int) error {
	var libs []*spec.Library
	if specPath == "" {
		libs = spec.DefaultImage()
	} else {
		src, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		libs, err = spec.Parse(string(src))
		if err != nil {
			return err
		}
	}
	backend, err := gate.ParseBackend(backendName)
	if err != nil {
		return err
	}
	w := explore.DefaultWorkload()
	if measuredWorkload {
		var err error
		if w, err = harness.MeasureWorkload(50, 240); err != nil {
			return err
		}
		fmt.Printf("measured workload: %.0f cycles/op baseline, %d call-rate pairs\n",
			w.BaseCycles, len(w.CallRates))
	}
	cands, stats, err := explore.ExploreOpts(libs, backend, w, explore.Options{Workers: workers})
	if err != nil {
		return err
	}

	show := cands
	if pareto {
		show = explore.ParetoFront(cands)
		fmt.Printf("Pareto front (%d of %d candidates):\n", len(show), len(cands))
	} else {
		sorted := append([]*explore.Candidate(nil), cands...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].EstCycles < sorted[j].EstCycles })
		show = sorted
		fmt.Printf("%d candidates (backend %v), cheapest first:\n", len(cands), backend)
	}
	measured := map[*explore.Candidate]harness.MeasuredCandidate{}
	if measure {
		ms, err := harness.MeasureCandidates(show, harness.OpGET, 50, 240)
		if err != nil {
			return err
		}
		for _, m := range ms {
			measured[m.Candidate] = m
		}
	}
	for _, c := range show {
		if m, ok := measured[c]; ok {
			fmt.Printf("  est %6.2fx  measured %6.2fx (%7.1f kreq/s)  %s\n",
				c.Slowdown(w), m.Slowdown, m.KReqPerSec, c.Describe())
			continue
		}
		fmt.Printf("  %6.2fx  %s\n", c.Slowdown(w), c.Describe())
	}
	hitRate := 0.0
	if stats.Combinations > 0 {
		hitRate = 100 * float64(stats.CacheHits) / float64(stats.Combinations)
	}
	fmt.Printf("explored %d combinations on %d workers; coloring cache %d hits / %d misses (%.0f%% hit rate)\n",
		stats.Combinations, stats.Workers, stats.CacheHits, stats.CacheMisses, hitRate)
	if stats.ExactFallbacks > 0 {
		fmt.Printf("warning: %d candidate(s) colored by the DSATUR heuristic (exact solver declined); their compartment counts may be non-minimal\n",
			stats.ExactFallbacks)
	}

	if budget > 0 {
		best := explore.MaxSecurityWithinBudget(cands, w, budget)
		if best == nil {
			fmt.Printf("\nno candidate within budget %.2fx\n", budget)
		} else {
			fmt.Printf("\nmax security within %.2fx budget:\n  %s\n", budget, best.Describe())
			printPlan(best)
		}
	}

	if require != "" {
		var reqs []explore.Requirement
		for _, r := range strings.Split(require, ",") {
			r = strings.TrimSpace(r)
			switch {
			case r == "no-wildcard-writes":
				reqs = append(reqs, explore.NoWildcardWrites())
			case strings.HasPrefix(r, "separated:"):
				parts := strings.Split(r, ":")
				if len(parts) != 3 {
					return fmt.Errorf("bad requirement %q (want separated:<a>:<b>)", r)
				}
				reqs = append(reqs, explore.SeparatedFrom(parts[1], parts[2]))
			case strings.HasPrefix(r, "hardened:"):
				reqs = append(reqs, explore.Hardened(strings.TrimPrefix(r, "hardened:")))
			default:
				return fmt.Errorf("unknown requirement %q", r)
			}
		}
		best := explore.BestPerfMeetingRequirements(cands, reqs...)
		if best == nil {
			fmt.Println("\nno candidate meets the requirements")
		} else {
			fmt.Printf("\nbest performance meeting requirements:\n  %s\n", best.Describe())
			printPlan(best)
		}
	}
	return nil
}

func printPlan(c *explore.Candidate) {
	for i, comp := range c.Plan.Compartments {
		fmt.Printf("    compartment %d: %s\n", i, strings.Join(comp, ", "))
	}
}
