// Package vmm implements the VM-based isolation backend's substrate:
// inter-VM event channels and the shared memory window.
//
// Under the VM (EPT) backend each compartment becomes its own VM image
// containing the minimum micro-libraries needed to run independently
// (platform code, memory allocator, scheduler) plus a thin RPC layer
// based on inter-VM notifications and a shared area of memory mapped
// in all compartments at an identical address, so pointers into shared
// structures stay valid. Compartments no longer share an address
// space: isolation holds by construction, and each VM needs its own
// allocator and scheduler — which therefore must be trusted. The
// builder enforces both requirements.
package vmm

import (
	"fmt"

	"flexos/internal/core/gate"
	"flexos/internal/mem"
)

// Event is one inter-VM notification.
type Event struct {
	From, To string
}

// Bus carries event-channel notifications between compartment VMs.
// The RPC gate invokes Notify on every crossing; the bus keeps
// per-channel statistics the harness uses to validate crossing counts.
type Bus struct {
	counts map[Event]uint64
	total  uint64
}

// NewBus returns an empty event-channel bus.
func NewBus() *Bus { return &Bus{counts: make(map[Event]uint64)} }

// Notify records a notification from one VM to another. Its signature
// matches the gate.NewVMRPC hook.
func (b *Bus) Notify(from, to *gate.Domain) {
	b.counts[Event{From: from.Name, To: to.Name}]++
	b.total++
}

// Total reports all notifications.
func (b *Bus) Total() uint64 { return b.total }

// Count reports the notifications from one VM to another.
func (b *Bus) Count(from, to string) uint64 {
	return b.counts[Event{From: from, To: to}]
}

// Window is the shared memory area mapped into every compartment VM at
// an identical address. It is carved from the machine arena with the
// shared key, and hands out allocations for shared heap/static data —
// the place the builder puts data annotated as shared in the porting
// process.
type Window struct {
	heap *mem.Heap
	base mem.Addr
}

// NewWindow builds the shared window over a page-aligned arena range,
// tagging it with the shared key so every MPK domain (and every VM)
// can reach it.
func NewWindow(a *mem.Arena, base mem.Addr, size int) (*Window, error) {
	h, err := mem.NewHeap(a, base, size, mem.KeyShared)
	if err != nil {
		return nil, fmt.Errorf("vmm: shared window: %w", err)
	}
	return &Window{heap: h, base: base}, nil
}

// Base reports the window's identical-in-all-VMs base address.
func (w *Window) Base() mem.Addr { return w.base }

// Alloc reserves shared memory.
func (w *Window) Alloc(n int) (mem.Addr, error) { return w.heap.Alloc(n) }

// Free releases a shared allocation.
func (w *Window) Free(addr mem.Addr) error { return w.heap.Free(addr) }

// SizeOf reports a shared allocation's size.
func (w *Window) SizeOf(addr mem.Addr) uint64 { return w.heap.SizeOf(addr) }

var _ mem.Allocator = (*Window)(nil)
