package vmm

import (
	"testing"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
)

func TestBusCountsNotifications(t *testing.T) {
	b := NewBus()
	nw, rest := gate.NewDomain("nw"), gate.NewDomain("rest")
	b.Notify(nw, rest)
	b.Notify(nw, rest)
	b.Notify(rest, nw)
	if b.Total() != 3 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Count("nw", "rest") != 2 || b.Count("rest", "nw") != 1 {
		t.Fatal("per-channel counts wrong")
	}
	if b.Count("rest", "ghost") != 0 {
		t.Fatal("unknown channel non-zero")
	}
}

func TestBusAsGateHook(t *testing.T) {
	b := NewBus()
	cpu := clock.New()
	g := gate.NewVMRPC(cpu, b.Notify)
	a, c := gate.NewDomain("a"), gate.NewDomain("b")
	if err := g.Call(a, c, gate.CallFrame{ArgWords: 1, RetWords: 1}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.Total() != 2 { // request + response notifications
		t.Fatalf("Total = %d, want 2", b.Total())
	}
}

func TestWindowAllocations(t *testing.T) {
	a := mem.NewArena(8 * mem.PageSize)
	w, err := NewWindow(a, mem.PageSize, 4*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if w.Base() != mem.PageSize {
		t.Fatalf("Base = %#x", w.Base())
	}
	p, err := w.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if w.SizeOf(p) == 0 {
		t.Fatal("SizeOf = 0")
	}
	// Shared-window pages carry the shared key so every domain can
	// reach them.
	if !a.CheckKey(p, 100, mem.KeyShared) {
		t.Fatal("window pages not tagged shared")
	}
	if err := w.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestWindowRejectsBadRange(t *testing.T) {
	a := mem.NewArena(8 * mem.PageSize)
	if _, err := NewWindow(a, mem.PageSize+1, mem.PageSize); err == nil {
		t.Fatal("unaligned window accepted")
	}
}
