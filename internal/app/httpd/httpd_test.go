package httpd_test

import (
	"bytes"
	"testing"

	"flexos/internal/app/httpd"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/sched"
)

func serve(t *testing.T, cfg build.Config, conns int, client func(th *sched.Thread, c *httpd.Client)) (*build.World, *httpd.Server) {
	t.Helper()
	w, err := build.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httpd.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 80)
	srv.HandleStatic("/", "text/plain", []byte("hello from flexos\n"))
	srv.HandleStatic("/big", "text/plain", bytes.Repeat([]byte("x"), 8000))
	srv.Handle("/echo", func(path string) (int, []byte) { return 200, []byte(path) })
	w.Sched.Spawn("httpd", w.Server.CPU, func(th *sched.Thread) {
		if err := srv.Serve(th, conns); err != nil {
			t.Errorf("server: %v", err)
		}
	})
	w.Sched.Spawn("client", w.Client.CPU, func(th *sched.Thread) {
		c := httpd.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 80)
		client(th, c)
	})
	if err := w.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	return w, srv
}

func TestGetRoot(t *testing.T) {
	_, srv := serve(t, build.Config{}, 1, func(th *sched.Thread, c *httpd.Client) {
		status, body, err := c.Get(th, "/")
		if err != nil {
			t.Error(err)
			return
		}
		if status != 200 || string(body) != "hello from flexos\n" {
			t.Errorf("GET / = %d %q", status, body)
		}
	})
	if srv.Requests != 1 {
		t.Fatalf("Requests = %d", srv.Requests)
	}
}

func TestStatusCodes(t *testing.T) {
	serve(t, build.Config{}, 2, func(th *sched.Thread, c *httpd.Client) {
		status, _, err := c.Get(th, "/missing")
		if err != nil || status != 404 {
			t.Errorf("GET /missing = %d, %v", status, err)
		}
		status, body, err := c.Get(th, "/echo")
		if err != nil || status != 200 || string(body) != "/echo" {
			t.Errorf("GET /echo = %d %q, %v", status, body, err)
		}
	})
}

func TestLargeBody(t *testing.T) {
	serve(t, build.Config{}, 1, func(th *sched.Thread, c *httpd.Client) {
		status, body, err := c.Get(th, "/big")
		if err != nil || status != 200 || len(body) != 8000 {
			t.Errorf("GET /big = %d, %d bytes, %v", status, len(body), err)
		}
	})
}

func TestOverMPKIsolation(t *testing.T) {
	cfg := build.Config{
		Compartments: build.NWOnly(),
		Backend:      gate.MPKShared,
		Alloc:        build.AllocPerCompartment,
	}
	w, _ := serve(t, cfg, 3, func(th *sched.Thread, c *httpd.Client) {
		for i := 0; i < 3; i++ {
			status, _, err := c.Get(th, "/")
			if err != nil || status != 200 {
				t.Errorf("request %d: %d, %v", i, status, err)
			}
		}
	})
	if w.Server.Registry.TotalCrossings() == 0 {
		t.Fatal("no crossings under isolation")
	}
}

func TestManySequentialConnections(t *testing.T) {
	const n = 10
	_, srv := serve(t, build.Config{}, n, func(th *sched.Thread, c *httpd.Client) {
		for i := 0; i < n; i++ {
			status, _, err := c.Get(th, "/echo")
			if err != nil || status != 200 {
				t.Errorf("conn %d: %d, %v", i, status, err)
				return
			}
		}
	})
	if srv.Requests != n {
		t.Fatalf("Requests = %d, want %d", srv.Requests, n)
	}
}
