// Package httpd is a minimal HTTP/1.0 server over the FlexOS stack —
// a third application beyond the paper's two workloads, showing the
// porting surface generalizes: the same gate placeholders, shared
// buffers and LibC shims carry a different protocol.
package httpd

import (
	"errors"
	"fmt"
	"strings"

	"flexos/internal/clock"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// bufSize is the request/response buffer size.
const bufSize = 16 << 10

// Handler produces a response body for a path.
type Handler func(path string) (status int, body []byte)

// Server answers one request per connection (HTTP/1.0 semantics,
// Connection: close).
type Server struct {
	env   *rt.Env
	lc    *libc.LibC
	stack *net.Stack

	Port   uint16
	routes map[string]Handler

	// Requests counts served requests.
	Requests uint64
}

// NewServer builds an HTTP server for the app environment.
func NewServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16) *Server {
	return &Server{env: env, lc: lc, stack: st, Port: port, routes: make(map[string]Handler)}
}

// Handle registers a handler for an exact path.
func (s *Server) Handle(path string, h Handler) { s.routes[path] = h }

// HandleStatic registers a fixed body.
func (s *Server) HandleStatic(path, contentType string, body []byte) {
	_ = contentType // single content type in this mini server
	s.Handle(path, func(string) (int, []byte) { return 200, body })
}

func (s *Server) call(fnName string, words int, fn func() error) error {
	return s.env.CallFn("libc", fnName, words, fn)
}

// Serve accepts and answers connections until maxConns have been
// served (0 = a single connection).
func (s *Server) Serve(t *sched.Thread, maxConns int) error {
	if maxConns <= 0 {
		maxConns = 1
	}
	var listener *net.Socket
	if err := s.call("listen", 2, func() error {
		var err error
		listener, err = s.lc.Listen(s.stack, s.Port, 8)
		return err
	}); err != nil {
		return fmt.Errorf("httpd: %w", err)
	}
	for i := 0; i < maxConns; i++ {
		var conn *net.Socket
		if err := s.call("accept", 1, func() error {
			var err error
			conn, err = s.lc.Accept(t, listener)
			return err
		}); err != nil {
			return fmt.Errorf("httpd accept: %w", err)
		}
		if err := s.serveConn(t, conn); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) serveConn(t *sched.Thread, conn *net.Socket) error {
	var rxBuf, txBuf mem.BufRef
	if err := s.call("malloc", 1, func() error {
		var err error
		if rxBuf, err = s.lc.BufAlloc(bufSize); err != nil {
			return err
		}
		txBuf, err = s.lc.BufAlloc(bufSize)
		return err
	}); err != nil {
		return err
	}
	rx, tx := rxBuf.Addr, txBuf.Addr
	defer func() {
		_ = s.call("free", 1, func() error {
			_ = s.lc.BufFree(rxBuf)
			return s.lc.BufFree(txBuf)
		})
	}()

	// Read until the header terminator.
	rxLen := 0
	for {
		view, err := s.env.Bytes(rx, rxLen)
		if err != nil {
			return err
		}
		if idx := strings.Index(string(view), "\r\n\r\n"); idx >= 0 {
			break
		}
		if rxLen == bufSize {
			return errors.New("httpd: request too large")
		}
		var n int
		err = s.call("recv", 3, func() error {
			var err error
			n, err = s.lc.Recv(t, conn, rx+mem.Addr(rxLen), bufSize-rxLen)
			return err
		})
		if err != nil {
			return fmt.Errorf("httpd recv: %w", err)
		}
		rxLen += n
	}
	view, err := s.env.Bytes(rx, rxLen)
	if err != nil {
		return err
	}
	s.env.Charge(clock.RESPParseCycles(rxLen))
	s.env.Hard.OnFrame()
	s.env.Hard.OnTouch(rxLen)
	method, path, ok := parseRequestLine(string(view))

	var status int
	var body []byte
	switch {
	case !ok:
		status, body = 400, []byte("bad request\n")
	case method != "GET":
		status, body = 405, []byte("method not allowed\n")
	default:
		h, found := s.routes[path]
		if !found {
			status, body = 404, []byte("not found\n")
		} else {
			status, body = h(path)
		}
	}
	s.Requests++

	head := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		status, statusText(status), len(body))
	if len(head)+len(body) > bufSize {
		return errors.New("httpd: response too large")
	}
	dst, err := s.env.Bytes(tx, len(head)+len(body))
	if err != nil {
		return err
	}
	s.env.Charge(clock.RESPParseCycles(len(head)))
	copy(dst, head)
	copy(dst[len(head):], body)
	if err := s.call("send", 3, func() error {
		_, err := s.lc.Send(t, conn, tx, len(head)+len(body))
		return err
	}); err != nil {
		return fmt.Errorf("httpd send: %w", err)
	}
	return s.call("close", 1, func() error { return s.lc.Close(t, conn) })
}

// parseRequestLine extracts "GET /path HTTP/1.x".
func parseRequestLine(req string) (method, path string, ok bool) {
	line, _, found := strings.Cut(req, "\r\n")
	if !found {
		return "", "", false
	}
	parts := strings.Split(line, " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") || !strings.HasPrefix(parts[1], "/") {
		return "", "", false
	}
	return parts[0], parts[1], true
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	default:
		return "Status"
	}
}

// Client issues one GET per connection (HTTP/1.0).
type Client struct {
	env   *rt.Env
	lc    *libc.LibC
	stack *net.Stack

	ServerIP   net.IPAddr
	ServerPort uint16
}

// NewClient builds the fetcher.
func NewClient(env *rt.Env, lc *libc.LibC, st *net.Stack, ip net.IPAddr, port uint16) *Client {
	return &Client{env: env, lc: lc, stack: st, ServerIP: ip, ServerPort: port}
}

// Get fetches a path and returns the status code and body.
func (c *Client) Get(t *sched.Thread, path string) (int, []byte, error) {
	var conn *net.Socket
	if err := c.env.CallFn("libc", "connect", 3, func() error {
		var err error
		conn, err = c.lc.Connect(t, c.stack, c.ServerIP, c.ServerPort)
		return err
	}); err != nil {
		return 0, nil, err
	}
	var bufRef mem.BufRef
	if err := c.env.CallFn("libc", "malloc", 1, func() error {
		var err error
		bufRef, err = c.lc.BufAlloc(bufSize)
		return err
	}); err != nil {
		return 0, nil, err
	}
	buf := bufRef.Addr
	defer func() {
		_ = c.env.CallFn("libc", "free", 1, func() error { return c.lc.BufFree(bufRef) })
	}()

	req := fmt.Sprintf("GET %s HTTP/1.0\r\nHost: flexos\r\n\r\n", path)
	dst, err := c.env.Bytes(buf, len(req))
	if err != nil {
		return 0, nil, err
	}
	copy(dst, req)
	if err := c.env.CallFn("libc", "send", 3, func() error {
		_, err := c.lc.Send(t, conn, buf, len(req))
		return err
	}); err != nil {
		return 0, nil, err
	}
	// Read until EOF (Connection: close).
	var resp []byte
	off := 0
	for {
		var n int
		err := c.env.CallFn("libc", "recv", 3, func() error {
			var err error
			n, err = c.lc.Recv(t, conn, buf, bufSize)
			return err
		})
		if err != nil {
			break // io.EOF ends the response
		}
		view, verr := c.env.Bytes(buf, n)
		if verr != nil {
			return 0, nil, verr
		}
		resp = append(resp, view...)
		off += n
		if off > 1<<20 {
			return 0, nil, errors.New("httpd client: response too large")
		}
	}
	_ = c.env.CallFn("libc", "close", 1, func() error { return c.lc.Close(t, conn) })

	head, body, found := strings.Cut(string(resp), "\r\n\r\n")
	if !found {
		return 0, nil, errors.New("httpd client: malformed response")
	}
	var status int
	if _, err := fmt.Sscanf(head, "HTTP/1.0 %d", &status); err != nil {
		return 0, nil, fmt.Errorf("httpd client: bad status line: %q", head)
	}
	return status, []byte(body), nil
}
