// Package iperf implements the iperf-style TCP throughput workload of
// the paper's Fig. 3 and Table 1: a server that drains a connection
// with a configurable receive-buffer size, and a client that blasts
// bulk data at it. Throughput is measured in virtual time on the
// server machine, which is the bottleneck (as in the paper, where the
// iperf client measures what the server-side configuration sustains).
package iperf

import (
	"fmt"
	"io"

	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// appWorkPerRecv is the (tiny) per-recv bookkeeping iperf itself does.
const appWorkPerRecv = 12

// Server drains one connection.
type Server struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	// Port is the listening port.
	Port uint16
	// RecvBuf is the size of the buffer passed to recv — the x-axis
	// of Fig. 3.
	RecvBuf int

	// BytesReceived is the payload total after Run.
	BytesReceived uint64
	// Recvs counts recv() calls.
	Recvs uint64
}

// NewServer builds an iperf server for the app library environment.
func NewServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16, recvBuf int) *Server {
	return &Server{env: env, libc: lc, stack: st, Port: port, RecvBuf: recvBuf}
}

// call routes a named app -> libc gate crossing.
func (s *Server) call(fnName string, words int, fn func() error) error {
	return s.env.CallFn("libc", fnName, words, fn)
}

// Run accepts one connection and drains it to EOF.
func (s *Server) Run(t *sched.Thread) error {
	var listener *net.Socket
	err := s.call("listen", 2, func() error {
		var err error
		listener, err = s.libc.Listen(s.stack, s.Port, 4)
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf server: %w", err)
	}
	var conn *net.Socket
	if err := s.call("accept", 1, func() error {
		var err error
		conn, err = s.libc.Accept(t, listener)
		return err
	}); err != nil {
		return fmt.Errorf("iperf server accept: %w", err)
	}
	// The recv buffer crosses the app/libc/netstack boundary: a
	// ref-counted descriptor over the shared window, handed down the
	// stack by reference on the zero-copy data path.
	var buf mem.BufRef
	if err := s.call("malloc", 1, func() error {
		var err error
		buf, err = s.libc.BufAlloc(s.RecvBuf)
		return err
	}); err != nil {
		return err
	}
	for {
		var n int
		err := s.call("recv", 3, func() error {
			var err error
			n, err = s.libc.RecvBuf(t, conn, buf)
			return err
		})
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("iperf server recv: %w", err)
		}
		s.env.Charge(appWorkPerRecv)
		s.BytesReceived += uint64(n)
		s.Recvs++
	}
	return s.call("free", 1, func() error { return s.libc.BufFree(buf) })
}

// Client sends Total bytes in WriteSize chunks and closes.
type Client struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	ServerIP   net.IPAddr
	ServerPort uint16
	Total      int
	WriteSize  int

	BytesSent uint64
}

// NewClient builds the load generator.
func NewClient(env *rt.Env, lc *libc.LibC, st *net.Stack, ip net.IPAddr, port uint16, total, writeSize int) *Client {
	if writeSize <= 0 {
		writeSize = 64 << 10
	}
	return &Client{env: env, libc: lc, stack: st, ServerIP: ip, ServerPort: port, Total: total, WriteSize: writeSize}
}

// Run connects, sends Total bytes, and closes the connection.
func (c *Client) Run(t *sched.Thread) error {
	var conn *net.Socket
	err := c.env.CallFn("libc", "connect", 3, func() error {
		var err error
		conn, err = c.libc.Connect(t, c.stack, c.ServerIP, c.ServerPort)
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf client connect: %w", err)
	}
	var buf mem.BufRef
	if err := c.env.CallFn("libc", "malloc", 1, func() error {
		var err error
		buf, err = c.libc.BufAlloc(c.WriteSize)
		return err
	}); err != nil {
		return err
	}
	// Fill the payload pattern once.
	if err := c.env.CallFn("libc", "memset", 3, func() error {
		return c.libc.Memset(buf.Addr, 'x', c.WriteSize)
	}); err != nil {
		return err
	}
	remaining := c.Total
	for remaining > 0 {
		chunk := c.WriteSize
		if chunk > remaining {
			chunk = remaining
		}
		var n int
		err := c.env.CallFn("libc", "send", 3, func() error {
			var err error
			n, err = c.libc.SendBuf(t, conn, buf, chunk)
			return err
		})
		if err != nil {
			return fmt.Errorf("iperf client send: %w", err)
		}
		remaining -= n
		c.BytesSent += uint64(n)
	}
	if err := c.env.CallFn("libc", "free", 1, func() error { return c.libc.BufFree(buf) }); err != nil {
		return err
	}
	return c.env.CallFn("libc", "close", 1, func() error { return c.libc.Close(t, conn) })
}
