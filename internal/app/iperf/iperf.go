// Package iperf implements the iperf-style TCP throughput workload of
// the paper's Fig. 3 and Table 1: a server that drains a connection
// with a configurable receive-buffer size, and a client that blasts
// bulk data at it. Throughput is measured in virtual time on the
// server machine, which is the bottleneck (as in the paper, where the
// iperf client measures what the server-side configuration sustains).
package iperf

import (
	"fmt"
	"io"

	"flexos/internal/app/retry"
	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// appWorkPerRecv is the (tiny) per-recv bookkeeping iperf itself does.
const appWorkPerRecv = 12

// Server drains one connection.
type Server struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	// Port is the listening port.
	Port uint16
	// RecvBuf is the size of the buffer passed to recv — the x-axis
	// of Fig. 3.
	RecvBuf int

	// BytesReceived is the payload total after Run.
	BytesReceived uint64
	// Recvs counts recv() calls.
	Recvs uint64

	// Overload-aware mode (RunOverload). Budget is the per-drain service
	// budget in cycles, measured from the head segment's wire arrival:
	// data drained within Budget of hitting the machine is "good", data
	// drained later is "late". 0 disables the accounting.
	Budget uint64
	// Enforce stamps arrival+Budget as the thread deadline around each
	// drain, so the overload-control plane (admission queues, gate
	// deadline checks, breaker) can refuse work that is already late.
	// Without Enforce the server processes everything — the collapse
	// baseline.
	Enforce bool
	// ProcFactor scales the per-byte application processing charged for
	// data served in time (multiples of the drain's copy cost). This is
	// the work worth protecting: an enforcing server skips it for late
	// data, a non-enforcing server burns it regardless.
	ProcFactor int

	// GoodBytes is payload drained within Budget of arrival (goodput).
	GoodBytes uint64
	// LateBytes is payload drained past its budget (or dropped unread).
	LateBytes uint64
	// Sheds counts drains refused by the overload-control plane
	// (admission shed, gate deadline trap, or open breaker).
	Sheds uint64
}

// NewServer builds an iperf server for the app library environment.
func NewServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16, recvBuf int) *Server {
	return &Server{env: env, libc: lc, stack: st, Port: port, RecvBuf: recvBuf}
}

// call routes a named app -> libc gate crossing.
func (s *Server) call(fnName string, words int, fn func() error) error {
	return s.env.CallFn("libc", fnName, words, fn)
}

// setup listens, accepts one connection, and allocates the recv
// buffer: a ref-counted descriptor over the shared window, handed down
// the stack by reference on the zero-copy data path.
func (s *Server) setup(t *sched.Thread) (*net.Socket, mem.BufRef, error) {
	var listener *net.Socket
	err := s.call("listen", 2, func() error {
		var err error
		listener, err = s.libc.Listen(s.stack, s.Port, 4)
		return err
	})
	if err != nil {
		return nil, mem.BufRef{}, fmt.Errorf("iperf server: %w", err)
	}
	var conn *net.Socket
	if err := s.call("accept", 1, func() error {
		var err error
		conn, err = s.libc.Accept(t, listener)
		return err
	}); err != nil {
		return nil, mem.BufRef{}, fmt.Errorf("iperf server accept: %w", err)
	}
	var buf mem.BufRef
	if err := s.call("malloc", 1, func() error {
		var err error
		buf, err = s.libc.BufAlloc(s.RecvBuf)
		return err
	}); err != nil {
		return nil, mem.BufRef{}, err
	}
	return conn, buf, nil
}

// recv drains up to len(buf) bytes through the app -> libc gate.
func (s *Server) recv(t *sched.Thread, conn *net.Socket, buf mem.BufRef) (int, error) {
	var n int
	err := s.call("recv", 3, func() error {
		var err error
		n, err = s.libc.RecvBuf(t, conn, buf)
		return err
	})
	return n, err
}

// Run accepts one connection and drains it to EOF. When the netstack
// compartment has a batch depth configured, the drain loop switches to
// vectored receives: one recvmmsg-style crossing drains up to depth
// buffers of the same rx burst.
func (s *Server) Run(t *sched.Thread) error {
	conn, buf, err := s.setup(t)
	if err != nil {
		return err
	}
	drainErr := s.drainConn(t, conn, buf)
	// The buffer goes back even when the drain dies: a net-dead
	// connection must not leak the receive buffer.
	freeErr := s.call("free", 1, func() error { return s.libc.BufFree(buf) })
	if drainErr != nil {
		return drainErr
	}
	return freeErr
}

// drainConn drains one established connection to EOF into buf, using
// the vectored path when the netstack compartment has a batch depth.
func (s *Server) drainConn(t *sched.Thread, conn *net.Socket, buf mem.BufRef) error {
	if depth := s.env.BatchDepth("netstack"); depth > 1 {
		return s.runBatched(t, conn, buf, depth)
	}
	for {
		n, err := s.recv(t, conn, buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("iperf server recv: %w", err)
		}
		s.env.Charge(appWorkPerRecv)
		s.BytesReceived += uint64(n)
		s.Recvs++
	}
}

// ServeConn drains one already-accepted connection to EOF with a fresh
// recv buffer. Multi-stream servers accept centrally and hand each
// connection to a worker running this on its own thread.
func (s *Server) ServeConn(t *sched.Thread, conn *net.Socket) error {
	var buf mem.BufRef
	if err := s.call("malloc", 1, func() error {
		var err error
		buf, err = s.libc.BufAlloc(s.RecvBuf)
		return err
	}); err != nil {
		return err
	}
	drainErr := s.drainConn(t, conn, buf)
	freeErr := s.call("free", 1, func() error { return s.libc.BufFree(buf) })
	if drainErr != nil {
		return drainErr
	}
	return freeErr
}

// runBatched is the pipelined drain loop: each round hands depth
// receive buffers to one vectored recv, which blocks for the first and
// drains the rest of the burst non-blocking through a single batched
// libc -> netstack crossing. bufs[0] is the caller's buffer (freed by
// the caller); the extras are freed here after EOF.
func (s *Server) runBatched(t *sched.Thread, conn *net.Socket, buf mem.BufRef, depth int) error {
	// The vector is capped well above what one burst can deliver (the
	// flow-control window) so deep configured depths don't tie up the
	// shared window in idle receive buffers.
	if depth > 16 {
		depth = 16
	}
	bufs := make([]mem.BufRef, depth)
	bufs[0] = buf
	for i := 1; i < depth; i++ {
		if err := s.call("malloc", 1, func() error {
			var err error
			bufs[i], err = s.libc.BufAlloc(s.RecvBuf)
			return err
		}); err != nil {
			return err
		}
	}
	msgs := make([]libc.Msg, depth)
	done := false
	for !done {
		for i := range msgs {
			msgs[i] = libc.Msg{Buf: bufs[i]}
		}
		if err := s.call("recvmmsg", 3, func() error {
			s.libc.RecvMsgBatch(t, conn, msgs)
			return nil
		}); err != nil {
			return fmt.Errorf("iperf server recvmmsg: %w", err)
		}
		for i := range msgs {
			m := &msgs[i]
			if m.Err == io.EOF {
				done = true
				break
			}
			if m.Err != nil {
				return fmt.Errorf("iperf server recv: %w", m.Err)
			}
			if m.N == 0 && i > 0 {
				break // the non-blocking drain emptied the queue
			}
			s.env.Charge(appWorkPerRecv)
			s.BytesReceived += uint64(m.N)
			s.Recvs++
		}
	}
	for i := 1; i < depth; i++ {
		if err := s.call("free", 1, func() error { return s.libc.BufFree(bufs[i]) }); err != nil {
			return err
		}
	}
	return nil
}

// account books one drain: good data pays the application processing
// cost and counts toward goodput; late data is dropped unprocessed by
// an enforcing server (shedding's payoff) but burns the full processing
// cost on an oblivious one — which is why its goodput collapses as
// offered load grows.
func (s *Server) account(n int, good bool) {
	s.env.Charge(appWorkPerRecv)
	s.BytesReceived += uint64(n)
	s.Recvs++
	proc := clock.CopyCycles(n) * uint64(s.ProcFactor)
	switch {
	case good:
		s.env.Charge(proc)
		s.GoodBytes += uint64(n)
	case s.Enforce:
		s.LateBytes += uint64(n)
	default:
		s.env.Charge(proc)
		s.LateBytes += uint64(n)
	}
}

// RunOverload accepts one connection and drains it to EOF under the
// per-drain budget, classifying payload as good or late by its wire
// arrival stamp. In enforce mode each drain of a non-empty queue runs
// under the thread deadline arrival+Budget, so the overload-control
// plane — admission queues, gate deadline checks, the circuit breaker —
// refuses drains whose data is already stale. A refusal flips the
// server into a recovery drain: the late backlog is consumed *without*
// a deadline (flow control must keep moving, and when a breaker is open
// the undeadlined drain doubles as the half-open probe that lets it
// re-close) and without the processing cost.
func (s *Server) RunOverload(t *sched.Thread) error {
	conn, buf, err := s.setup(t)
	if err != nil {
		return err
	}
	draining := false
	for {
		if draining {
			n, err := s.recv(t, conn, buf)
			switch {
			case err == io.EOF:
				return s.call("free", 1, func() error { return s.libc.BufFree(buf) })
			case fault.IsOverload(err):
				// An open breaker fails the drain fast, at almost no
				// cost; charge an explicit retry backoff so the virtual
				// clock moves through the cooldown toward the probe.
				if n > 0 {
					s.account(n, false)
				}
				s.env.Charge(clock.CostFaultBackoff)
				continue
			case err != nil:
				return fmt.Errorf("iperf overload server drain: %w", err)
			}
			// The cheap drain catches up: the moment the data coming off
			// the queue is fresh again (within budget of its arrival), it
			// is worth its processing cost and normal deadlined service
			// resumes. Without this, one shed under sustained load would
			// pin the server in recovery forever — the queue never fully
			// empties while clients keep sending.
			arrival := conn.LastRxArrival()
			fresh := arrival != 0 && s.env.CPU.Cycles() <= arrival+s.Budget
			s.account(n, fresh)
			if fresh || conn.HeadArrival() == 0 {
				draining = false
			}
			continue
		}
		arrival := conn.HeadArrival()
		var n int
		var rerr error
		doRecv := func() error {
			var err error
			n, err = s.recv(t, conn, buf)
			return err
		}
		if s.Enforce && arrival != 0 {
			rerr = s.env.WithDeadline(t, arrival+s.Budget, doRecv)
		} else {
			rerr = doRecv()
		}
		switch {
		case rerr == io.EOF:
			return s.call("free", 1, func() error { return s.libc.BufFree(buf) })
		case fault.IsOverload(rerr):
			// Bytes drained before a mid-drain trap are late by
			// definition; the rest of the backlog goes to recovery.
			s.Sheds++
			if n > 0 {
				s.account(n, false)
			}
			draining = true
			continue
		case rerr != nil:
			return fmt.Errorf("iperf overload server recv: %w", rerr)
		}
		if arrival == 0 {
			// The queue was empty and the drain parked: the data's age
			// starts at its actual wire arrival, not at the park.
			arrival = conn.LastRxArrival()
		}
		good := s.Budget == 0 || arrival == 0 ||
			s.env.CPU.Cycles() <= arrival+s.Budget
		s.account(n, good)
	}
}

// Client sends Total bytes in WriteSize chunks and closes.
type Client struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	ServerIP   net.IPAddr
	ServerPort uint16
	Total      int
	WriteSize  int

	// Retry bounds the connect loop on lossy links (the zero value is
	// a single attempt, the lossless-baseline behaviour).
	Retry retry.Policy

	BytesSent uint64
	// ConnectRetries counts failed connect attempts that were retried.
	ConnectRetries uint64
}

// NewClient builds the load generator.
func NewClient(env *rt.Env, lc *libc.LibC, st *net.Stack, ip net.IPAddr, port uint16, total, writeSize int) *Client {
	if writeSize <= 0 {
		writeSize = 64 << 10
	}
	return &Client{env: env, libc: lc, stack: st, ServerIP: ip, ServerPort: port, Total: total, WriteSize: writeSize}
}

// Run connects, sends Total bytes, and closes the connection. With a
// batch depth on the netstack compartment the send loop pipelines:
// each round queues up to depth WriteSize chunks into one vectored
// sendmmsg-style crossing.
func (c *Client) Run(t *sched.Thread) error {
	var conn *net.Socket
	err := c.Retry.Do(c.env, func() error {
		err := c.env.CallFn("libc", "connect", 3, func() error {
			var err error
			conn, err = c.libc.Connect(t, c.stack, c.ServerIP, c.ServerPort)
			return err
		})
		if err != nil {
			c.ConnectRetries++
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf client connect: %w", err)
	}
	depth := c.env.BatchDepth("netstack")
	if depth < 1 {
		depth = 1
	}
	// A vectored send's frames run in order and SendRef consumes its
	// buffer before returning (the payload is serialized into segments,
	// parking on the window if needed), so deep pipelines can cycle a
	// small buffer ring instead of tying down depth x WriteSize of the
	// shared window.
	nbufs := depth
	if nbufs > 8 {
		nbufs = 8
	}
	bufs := make([]mem.BufRef, nbufs)
	for i := range bufs {
		if err := c.env.CallFn("libc", "malloc", 1, func() error {
			var err error
			bufs[i], err = c.libc.BufAlloc(c.WriteSize)
			return err
		}); err != nil {
			return err
		}
		// Fill the payload pattern once per buffer.
		if err := c.env.CallFn("libc", "memset", 3, func() error {
			return c.libc.Memset(bufs[i].Addr, 'x', c.WriteSize)
		}); err != nil {
			return err
		}
	}
	remaining := c.Total
	if depth > 1 {
		msgs := make([]libc.Msg, 0, depth)
		for remaining > 0 {
			msgs = msgs[:0]
			budget := remaining
			for i := 0; i < depth && budget > 0; i++ {
				chunk := c.WriteSize
				if chunk > budget {
					chunk = budget
				}
				msgs = append(msgs, libc.Msg{Buf: bufs[i%nbufs], N: chunk})
				budget -= chunk
			}
			if err := c.env.CallFn("libc", "sendmmsg", 3, func() error {
				c.libc.SendMsgBatch(t, conn, msgs)
				return nil
			}); err != nil {
				return fmt.Errorf("iperf client sendmmsg: %w", err)
			}
			sent := 0
			for i := range msgs {
				if msgs[i].Err != nil {
					return fmt.Errorf("iperf client send: %w", msgs[i].Err)
				}
				sent += msgs[i].N
			}
			if sent == 0 {
				return fmt.Errorf("iperf client: vectored send made no progress")
			}
			remaining -= sent
			c.BytesSent += uint64(sent)
		}
	} else {
		for remaining > 0 {
			chunk := c.WriteSize
			if chunk > remaining {
				chunk = remaining
			}
			var n int
			err := c.env.CallFn("libc", "send", 3, func() error {
				var err error
				n, err = c.libc.SendBuf(t, conn, bufs[0], chunk)
				return err
			})
			if err != nil {
				return fmt.Errorf("iperf client send: %w", err)
			}
			remaining -= n
			c.BytesSent += uint64(n)
		}
	}
	for i := range bufs {
		if err := c.env.CallFn("libc", "free", 1, func() error { return c.libc.BufFree(bufs[i]) }); err != nil {
			return err
		}
	}
	return c.env.CallFn("libc", "close", 1, func() error { return c.libc.Close(t, conn) })
}
