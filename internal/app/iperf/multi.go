package iperf

import (
	"fmt"

	"flexos/internal/libc"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// MultiServer is the iperf -P server: it accepts Streams parallel
// connections on one listening socket and drains each on its own
// worker thread. Each worker is spawned on the vCPU that serves the
// connection's RSS queue, so the drain work lands on the core the NIC
// steers the flow's interrupts to — the classic multi-queue layout.
type MultiServer struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	// Port is the listening port.
	Port uint16
	// RecvBuf is the per-connection recv buffer size.
	RecvBuf int
	// Streams is the number of parallel connections (iperf -P).
	Streams int

	// workers holds one drain worker per accepted connection, in accept
	// order; inspect after the scheduler run completes.
	workers []*Server
	errs    []error
}

// NewMultiServer builds a Streams-way parallel iperf server.
func NewMultiServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16, recvBuf, streams int) *MultiServer {
	if streams < 1 {
		streams = 1
	}
	return &MultiServer{env: env, libc: lc, stack: st, Port: port, RecvBuf: recvBuf, Streams: streams}
}

// Run listens, accepts Streams connections, and spawns one drain
// worker per connection. It returns once every connection has been
// accepted and handed off; the workers finish under the scheduler run,
// and Finish gathers their results.
func (ms *MultiServer) Run(s sched.Scheduler, t *sched.Thread) error {
	proto := NewServer(ms.env, ms.libc, ms.stack, ms.Port, ms.RecvBuf)
	var listener *net.Socket
	// The backlog must hold every stream: the clients all connect
	// before the accept loop has drained the first handshake.
	err := proto.call("listen", 2, func() error {
		var err error
		listener, err = ms.libc.Listen(ms.stack, ms.Port, ms.Streams)
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf multi-server: %w", err)
	}
	ms.workers = make([]*Server, ms.Streams)
	ms.errs = make([]error, ms.Streams)
	for i := 0; i < ms.Streams; i++ {
		var conn *net.Socket
		if err := proto.call("accept", 1, func() error {
			var err error
			conn, err = ms.libc.Accept(t, listener)
			return err
		}); err != nil {
			return fmt.Errorf("iperf multi-server accept %d: %w", i, err)
		}
		w := NewServer(ms.env, ms.libc, ms.stack, ms.Port, ms.RecvBuf)
		ms.workers[i] = w
		i, conn := i, conn
		s.Spawn(fmt.Sprintf("iperf-server-%d", i), ms.stack.SpawnCPU(ms.stack.QueueCPUOf(conn)),
			func(th *sched.Thread) {
				ms.errs[i] = w.ServeConn(th, conn)
			})
	}
	return nil
}

// Finish reports the total bytes and recv calls across all workers,
// or the first worker error. Call it after the scheduler run returns.
func (ms *MultiServer) Finish() (bytes, recvs uint64, err error) {
	for i, w := range ms.workers {
		if ms.errs[i] != nil {
			return 0, 0, fmt.Errorf("iperf stream %d: %w", i, ms.errs[i])
		}
		bytes += w.BytesReceived
		recvs += w.Recvs
	}
	return bytes, recvs, nil
}

// StreamBytes reports each connection's byte total in accept order
// (tests use it to check RSS spread the streams across queues).
func (ms *MultiServer) StreamBytes() []uint64 {
	out := make([]uint64, len(ms.workers))
	for i, w := range ms.workers {
		out[i] = w.BytesReceived
	}
	return out
}
