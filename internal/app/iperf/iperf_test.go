package iperf_test

import (
	"testing"

	"flexos/internal/app/iperf"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/sched"
)

func runPair(t *testing.T, cfg build.Config, total, recvBuf, writeSize int) (*build.World, *iperf.Server, *iperf.Client) {
	t.Helper()
	w, err := build.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf)
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, total, writeSize)
	w.Sched.Spawn("server", w.Server.CPU, func(th *sched.Thread) {
		if err := srv.Run(th); err != nil {
			t.Errorf("server: %v", err)
		}
	})
	w.Sched.Spawn("client", w.Client.CPU, func(th *sched.Thread) {
		if err := cli.Run(th); err != nil {
			t.Errorf("client: %v", err)
		}
	})
	if err := w.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	return w, srv, cli
}

func TestTransferCompletes(t *testing.T) {
	const total = 300_000
	_, srv, cli := runPair(t, build.Config{}, total, 4096, 16<<10)
	if srv.BytesReceived != total || cli.BytesSent != total {
		t.Fatalf("rx %d tx %d, want %d", srv.BytesReceived, cli.BytesSent, total)
	}
	if srv.Recvs == 0 {
		t.Fatal("no recv calls counted")
	}
}

func TestDefaultWriteSize(t *testing.T) {
	w, err := build.NewWorld(build.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, 1000, 0)
	if cli.WriteSize != 64<<10 {
		t.Fatalf("WriteSize = %d", cli.WriteSize)
	}
}

func TestSmallBufferManyRecvs(t *testing.T) {
	const total = 100_000
	_, srv, _ := runPair(t, build.Config{}, total, 128, 8<<10)
	if srv.Recvs < total/1500 {
		t.Fatalf("Recvs = %d, expected many with a 128B buffer", srv.Recvs)
	}
}

func TestUDPTransfer(t *testing.T) {
	w, err := build.NewWorld(build.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 100_000
	srv := iperf.NewUDPServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5002, 0)
	cli := iperf.NewUDPClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5002, total, 1400)
	w.Sched.Spawn("server", w.Server.CPU, func(th *sched.Thread) {
		if err := srv.Run(th); err != nil {
			t.Errorf("server: %v", err)
		}
	})
	w.Sched.Spawn("client", w.Client.CPU, func(th *sched.Thread) {
		if err := cli.Run(th); err != nil {
			t.Errorf("client: %v", err)
		}
	})
	if err := w.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.BytesReceived != total || cli.BytesSent != total {
		t.Fatalf("rx %d tx %d, want %d", srv.BytesReceived, cli.BytesSent, total)
	}
	if srv.Datagrams != (total+1399)/1400 {
		t.Fatalf("Datagrams = %d", srv.Datagrams)
	}
}

func TestThroughputScalesWithBuffer(t *testing.T) {
	gbps := func(buf int) float64 {
		w, srv, _ := runPair(t, build.Config{}, 400_000, buf, 16<<10)
		return clock.GbpsFor(srv.BytesReceived, w.Server.CPU.Cycles())
	}
	small, large := gbps(64), gbps(32<<10)
	if small >= large {
		t.Fatalf("throughput did not scale: %f vs %f", small, large)
	}
}
