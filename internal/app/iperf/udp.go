package iperf

import (
	"fmt"

	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// UDPServer counts datagram payload until an empty datagram (the
// client's end-of-stream marker) arrives — iperf's UDP mode.
type UDPServer struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	Port    uint16
	RecvBuf int

	BytesReceived uint64
	Datagrams     uint64
}

// NewUDPServer builds the UDP sink.
func NewUDPServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16, recvBuf int) *UDPServer {
	if recvBuf <= 0 || recvBuf > net.MaxDatagram {
		recvBuf = net.MaxDatagram
	}
	return &UDPServer{env: env, libc: lc, stack: st, Port: port, RecvBuf: recvBuf}
}

// Run binds and drains datagrams until the end marker.
func (s *UDPServer) Run(t *sched.Thread) error {
	var sock *net.UDPSocket
	err := s.env.CallFn("libc", "udp_bind", 2, func() error {
		var err error
		sock, err = s.libc.UDPBind(s.stack, s.Port)
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf udp server: %w", err)
	}
	var buf mem.BufRef
	if err := s.env.CallFn("libc", "malloc", 1, func() error {
		var err error
		buf, err = s.libc.BufAlloc(s.RecvBuf)
		return err
	}); err != nil {
		return err
	}
	for {
		var n int
		err := s.env.CallFn("libc", "recvfrom", 3, func() error {
			var err error
			n, _, _, err = s.libc.RecvFrom(t, sock, buf.Addr, s.RecvBuf)
			return err
		})
		if err != nil {
			return fmt.Errorf("iperf udp server recv: %w", err)
		}
		if n == 0 {
			break // end-of-stream marker
		}
		s.env.Charge(appWorkPerRecv)
		s.BytesReceived += uint64(n)
		s.Datagrams++
	}
	_ = s.env.CallFn("libc", "free", 1, func() error { return s.libc.BufFree(buf) })
	return s.env.CallFn("libc", "udp_close", 1, func() error { return s.libc.UDPClose(sock) })
}

// UDPClient blasts Total bytes in Datagram-sized chunks, then an empty
// end marker. UDP has no flow control: with a fast sender and a slow
// receiver, datagrams drop (visible in the socket's Dropped counter).
type UDPClient struct {
	env   *rt.Env
	libc  *libc.LibC
	stack *net.Stack

	ServerIP   net.IPAddr
	ServerPort uint16
	Total      int
	Datagram   int
	// PacingYield makes the client yield between datagrams so the
	// receiver keeps up on the lossless wire.
	PacingYield bool

	BytesSent uint64
}

// NewUDPClient builds the load generator.
func NewUDPClient(env *rt.Env, lc *libc.LibC, st *net.Stack, ip net.IPAddr, port uint16, total, datagram int) *UDPClient {
	if datagram <= 0 || datagram > net.MaxDatagram {
		datagram = net.MaxDatagram
	}
	return &UDPClient{env: env, libc: lc, stack: st, ServerIP: ip, ServerPort: port,
		Total: total, Datagram: datagram, PacingYield: true}
}

// Run sends the stream and the end marker.
func (c *UDPClient) Run(t *sched.Thread) error {
	var sock *net.UDPSocket
	err := c.env.CallFn("libc", "udp_bind", 2, func() error {
		var err error
		sock, err = c.libc.UDPBind(c.stack, 0)
		return err
	})
	if err != nil {
		return fmt.Errorf("iperf udp client: %w", err)
	}
	var buf mem.BufRef
	if err := c.env.CallFn("libc", "malloc", 1, func() error {
		var err error
		if buf, err = c.libc.BufAlloc(c.Datagram); err != nil {
			return err
		}
		return c.libc.Memset(buf.Addr, 'u', c.Datagram)
	}); err != nil {
		return err
	}
	remaining := c.Total
	for remaining > 0 {
		chunk := c.Datagram
		if chunk > remaining {
			chunk = remaining
		}
		if err := c.env.CallFn("libc", "sendto", 4, func() error {
			return c.libc.SendTo(t, sock, c.ServerIP, c.ServerPort, buf.Addr, chunk)
		}); err != nil {
			return fmt.Errorf("iperf udp client send: %w", err)
		}
		remaining -= chunk
		c.BytesSent += uint64(chunk)
		if c.PacingYield {
			t.Yield()
		}
	}
	// End marker.
	if err := c.env.CallFn("libc", "sendto", 4, func() error {
		return c.libc.SendTo(t, sock, c.ServerIP, c.ServerPort, buf.Addr, 0)
	}); err != nil {
		return err
	}
	if err := c.env.CallFn("libc", "free", 1, func() error { return c.libc.BufFree(buf) }); err != nil {
		return err
	}
	return c.env.CallFn("libc", "udp_close", 1, func() error { return c.libc.UDPClose(sock) })
}
