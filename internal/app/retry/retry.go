// Package retry implements deterministic jittered exponential backoff
// for application-level reconnects. Under the chaosnet fault model a
// connect can die for real — SYN retransmission exhausts and the stack
// surfaces a typed net-timeout — and a robust client's answer is the
// classic one: back off with jitter, try again, give up after a bounded
// number of attempts. The backoff burns *virtual* cycles through the
// environment's charge hook and draws jitter from a seeded xorshift
// PRNG, so a retrying run replays bit-identically like everything else
// in the simulation.
package retry

import "flexos/internal/rt"

// Defaults applied by Policy.Do when a field is zero (attempts greater
// than one enable retrying; the zero Policy is a single try).
const (
	// DefaultBase is the first backoff delay in virtual cycles —
	// roughly one RTO of the transport underneath.
	DefaultBase = 200_000
	// DefaultCap bounds the exponential growth.
	DefaultCap = 3_200_000
)

// Policy bounds an application's reconnect loop.
type Policy struct {
	// Attempts is the total number of tries (not retries); 0 and 1
	// both mean a single attempt with no backoff — the default, so
	// existing workloads are untouched unless a harness opts in.
	Attempts int
	// Base is the first backoff delay in virtual cycles (DefaultBase
	// when 0).
	Base uint64
	// Cap bounds the doubled delay (DefaultCap when 0).
	Cap uint64
	// Seed drives the jitter PRNG; 0 seeds from 1 so the zero value
	// stays deterministic.
	Seed uint64
}

// Do runs attempt until it succeeds or Attempts tries have failed,
// charging a jittered exponential backoff to env between tries. The
// delay for try k is drawn uniformly from [base<<k/2, base<<k] (full
// jitter halved at the floor), capped at Cap. It returns the last
// attempt's error.
func (p Policy) Do(env *rt.Env, attempt func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	base, cap := p.Base, p.Cap
	if base == 0 {
		base = DefaultBase
	}
	if cap == 0 {
		cap = DefaultCap
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	// splitmix64 scrambles the seed, xorshift64* generates; the same
	// generator the wire's fault model uses, so jitter quality matches.
	x := seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545f4914f6cdd1d
	}
	var err error
	// Cap bounds every delay drawn, including the first: a Base above
	// Cap used to slip through uncapped (the cap was only applied after
	// doubling) and the doubling itself could overflow uint64 for large
	// bases, wrapping the delay to near zero.
	delay := base
	if delay > cap {
		delay = cap
	}
	for i := 0; i < attempts; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		d := delay/2 + next()%(delay/2+1)
		env.Charge(d)
		if delay > cap/2 {
			delay = cap
		} else {
			delay *= 2
		}
	}
	return err
}
