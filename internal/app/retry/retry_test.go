package retry

import (
	"errors"
	"math"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/rt"
)

func testEnv() *rt.Env {
	return &rt.Env{Lib: "app", Comp: clock.CompApp, CPU: clock.New()}
}

var errFail = errors.New("boom")

// delays runs a Policy through n failing attempts and returns the
// cycles charged between consecutive tries.
func delays(p Policy) []uint64 {
	env := testEnv()
	var out []uint64
	last := uint64(0)
	tries := 0
	_ = p.Do(env, func() error {
		if tries > 0 {
			now := env.CPU.Cycles()
			out = append(out, now-last)
			last = now
		}
		tries++
		return errFail
	})
	return out
}

// TestDoCapBounds is the regression for the two backoff bugs: a Base
// above Cap drew its first delays uncapped (the cap was applied only
// after doubling), and `delay *= 2` overflowed uint64 for large bases,
// wrapping the backoff to near zero. Every drawn delay must lie in
// [cap/2, cap] once the exponential ramp has saturated, and never
// exceed the cap at any point.
func TestDoCapBounds(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
	}{
		{"base equals cap", Policy{Attempts: 5, Base: 1000, Cap: 1000, Seed: 7}},
		{"base above cap", Policy{Attempts: 5, Base: 1 << 20, Cap: 1000, Seed: 7}},
		{"huge base overflow", Policy{Attempts: 6, Base: math.MaxUint64 - 3, Cap: 1 << 30, Seed: 7}},
		{"huge cap no overflow", Policy{Attempts: 8, Base: 1 << 62, Cap: math.MaxUint64, Seed: 7}},
		{"defaults", Policy{Attempts: 6, Seed: 7}},
		{"tiny", Policy{Attempts: 4, Base: 1, Cap: 2, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cap := tc.p.Cap
			if cap == 0 {
				cap = DefaultCap
			}
			ds := delays(tc.p)
			if len(ds) == 0 {
				t.Fatal("no delays drawn")
			}
			for i, d := range ds {
				if d > cap {
					t.Errorf("delay %d = %d exceeds cap %d", i, d, cap)
				}
			}
			// Once saturated the draw is uniform in [cap/2, cap]; the
			// last delay of every ramp must already be there when base
			// >= cap from the start.
			if tc.p.Base >= cap {
				for i, d := range ds {
					if d < cap/2 {
						t.Errorf("saturated delay %d = %d below cap/2 = %d", i, d, cap/2)
					}
				}
			}
		})
	}
}

// TestDoExponentialRamp checks the intended growth is intact below the
// cap: expected (pre-jitter) delays for try k are min(base<<k, cap),
// and the drawn delay lies in [expected/2, expected].
func TestDoExponentialRamp(t *testing.T) {
	p := Policy{Attempts: 6, Base: 1000, Cap: 16_000, Seed: 3}
	ds := delays(p)
	want := []uint64{1000, 2000, 4000, 8000, 16000}
	if len(ds) != len(want) {
		t.Fatalf("got %d delays, want %d", len(ds), len(want))
	}
	for i, w := range want {
		if ds[i] < w/2 || ds[i] > w {
			t.Errorf("delay %d = %d outside [%d, %d]", i, ds[i], w/2, w)
		}
	}
}

// TestDoDeterministic checks two runs with one seed charge identical
// cycles, and a different seed diverges.
func TestDoDeterministic(t *testing.T) {
	p := Policy{Attempts: 5, Base: 1000, Cap: 64_000, Seed: 42}
	a, b := delays(p), delays(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at delay %d: %d vs %d", i, a[i], b[i])
		}
	}
	p.Seed = 43
	c := delays(p)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds drew identical jitter")
	}
}

// TestDoStopsOnSuccess checks success short-circuits with no backoff
// charge, and the attempt budget is honored.
func TestDoStopsOnSuccess(t *testing.T) {
	env := testEnv()
	tries := 0
	err := Policy{Attempts: 5, Seed: 1}.Do(env, func() error {
		tries++
		if tries == 2 {
			return nil
		}
		return errFail
	})
	if err != nil || tries != 2 {
		t.Fatalf("err=%v tries=%d", err, tries)
	}

	env = testEnv()
	tries = 0
	if err := (Policy{Attempts: 3, Seed: 1}).Do(env, func() error {
		tries++
		return errFail
	}); !errors.Is(err, errFail) || tries != 3 {
		t.Fatalf("err=%v tries=%d", err, tries)
	}

	// Zero policy: one try, no charge.
	env = testEnv()
	tries = 0
	_ = Policy{}.Do(env, func() error { tries++; return errFail })
	if tries != 1 || env.CPU.Cycles() != 0 {
		t.Fatalf("zero policy: tries=%d cycles=%d", tries, env.CPU.Cycles())
	}
}
