package redis

import (
	"errors"
	"fmt"
	"io"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// defaultBufSize is the request/reply buffer size.
const defaultBufSize = 16 << 10

// Server is the RESP server: one connection at a time, loop until EOF.
type Server struct {
	env   *rt.Env
	lc    *libc.LibC
	stack *net.Stack

	Port  uint16
	store *Store

	bufSize int

	// Commands counts executed commands.
	Commands uint64

	// Overload-aware mode. Budget is the per-command service budget in
	// cycles, measured from the wire arrival of the recv that carried
	// the request: a command answered within Budget is good, later is
	// late. 0 disables the accounting.
	Budget uint64
	// Enforce stamps arrival+Budget as the thread deadline around each
	// command's execution, so the overload-control plane can shed the
	// command's store/reply crossings; a shed command is answered with
	// -BUSY (written without a crossing) instead of being served.
	Enforce bool

	// Good counts commands answered within Budget of arrival.
	Good uint64
	// Late counts commands answered past their budget.
	Late uint64
	// Shed counts commands refused by the overload-control plane and
	// answered -BUSY.
	Shed uint64
	// MaxAge records the largest observed command age (completion cycle
	// minus request arrival). Calibration probes run with Budget 0 and
	// read this back to derive budgets from measured ages rather than
	// guessed cost models.
	MaxAge uint64
}

// NewServer builds a Redis server for the app environment.
func NewServer(env *rt.Env, lc *libc.LibC, st *net.Stack, port uint16) *Server {
	s := &Server{env: env, lc: lc, stack: st, Port: port, bufSize: defaultBufSize}
	s.store = NewStore(env, lc)
	return s
}

// Store exposes the dictionary (tests and examples).
func (s *Server) Store() *Store { return s.store }

// call routes a named app -> libc gate crossing.
func (s *Server) call(fnName string, words int, fn func() error) error {
	return s.env.CallFn("libc", fnName, words, fn)
}

// Listen binds the server's listening socket.
func (s *Server) Listen() (*net.Socket, error) {
	var listener *net.Socket
	err := s.call("listen", 2, func() error {
		var err error
		listener, err = s.lc.Listen(s.stack, s.Port, 4)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("redis server: %w", err)
	}
	return listener, nil
}

// Accept blocks for the next client connection.
func (s *Server) Accept(t *sched.Thread, listener *net.Socket) (*net.Socket, error) {
	var conn *net.Socket
	err := s.call("accept", 1, func() error {
		var err error
		conn, err = s.lc.Accept(t, listener)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("redis server accept: %w", err)
	}
	return conn, nil
}

// Run serves one connection to EOF (listen + accept + serve), the
// single-client convenience used by the benchmarks.
func (s *Server) Run(t *sched.Thread) error {
	listener, err := s.Listen()
	if err != nil {
		return err
	}
	conn, err := s.Accept(t, listener)
	if err != nil {
		return err
	}
	return s.ServeConn(t, conn)
}

// ServeConn serves one established connection until EOF. Connections
// share the server's store but use per-connection buffers, so multiple
// ServeConn threads may run concurrently.
func (s *Server) ServeConn(t *sched.Thread, conn *net.Socket) error {
	c := &connState{srv: s, depth: 1}
	// Pipelined mode: with a batch depth on the compartment holding
	// libc, bulk-reply payload copies defer and ride one batched
	// crossing per pipeline instead of one crossing per reply. Enforce
	// keeps per-command copies so the deadline covers each reply.
	if d := s.env.BatchDepth("libc"); d > 1 && !s.Enforce {
		c.depth = d
	}
	if err := c.allocBuffers(); err != nil {
		return err
	}
	defer c.freeBuffers()
	return c.serve(t, conn)
}

// connState is one connection's buffers and parser state.
type connState struct {
	srv    *Server
	rx, tx mem.Addr
	// rxBuf/txBuf are the pool descriptors behind rx/tx.
	rxBuf, txBuf mem.BufRef
	rxLen        int
	// arrival is the wire-arrival stamp of the most recent recv — the
	// moment the commands now sitting in the rx buffer hit the machine.
	arrival uint64
	// depth is the reply-copy batch depth (1 = copy per reply).
	depth int
	// pending are deferred bulk-reply payload copies, flushed through
	// one batched app -> libc crossing before anything invalidates
	// their sources (rx compaction, store mutation) or reads their
	// destination (the tx send).
	pending []pendingCopy
}

// pendingCopy is one deferred bulk-reply payload copy.
type pendingCopy struct {
	dst mem.Addr
	src mem.Addr
	n   int
	// off is dst's tx-buffer offset, for overload rollback.
	off int
}

// flushCopies materializes the deferred reply copies, depth at a time,
// each chunk riding a single batched app -> libc crossing.
func (c *connState) flushCopies() error {
	s := c.srv
	if len(c.pending) == 0 {
		return nil
	}
	pend := c.pending
	c.pending = c.pending[:0]
	for start := 0; start < len(pend); start += c.depth {
		end := start + c.depth
		if end > len(pend) {
			end = len(pend)
		}
		chunk := pend[start:end]
		if len(chunk) == 1 {
			p := chunk[0]
			if err := s.call("memcpy", 3, func() error {
				return s.lc.Memcpy(p.dst, p.src, p.n)
			}); err != nil {
				return err
			}
			continue
		}
		calls := make([]rt.BatchCall, len(chunk))
		for i, p := range chunk {
			calls[i] = rt.BatchCall{
				Frame: gate.CallFrame{ArgWords: 3},
				Fn:    func() error { return s.lc.Memcpy(p.dst, p.src, p.n) },
			}
		}
		for _, err := range s.env.CallBatch("libc", "memcpy", calls) {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// dropCopies discards deferred copies at or past tx offset off — the
// rollback companion of the -BUSY reply path.
func (c *connState) dropCopies(off int) {
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.off < off {
			kept = append(kept, p)
		}
	}
	c.pending = kept
}

func (c *connState) serve(t *sched.Thread, conn *net.Socket) error {
	s := c.srv
	// Replies accumulate in the tx buffer and flush once per event-loop
	// iteration (when the input drains or the buffer fills), like the
	// real Redis output buffer — essential under pipelined clients.
	txOff := 0
	flush := func() error {
		if err := c.flushCopies(); err != nil {
			return err
		}
		if txOff == 0 {
			return nil
		}
		n := txOff
		txOff = 0
		return s.call("send", 3, func() error {
			_, err := s.lc.Send(t, conn, c.tx, n)
			return err
		})
	}
	for {
		view, err := s.env.Bytes(c.rx, c.rxLen)
		if err != nil {
			return err
		}
		// Drain every complete command already buffered before touching
		// the socket again — the pipelined fast path. base tracks the
		// consumed prefix; compaction happens once per burst, after the
		// deferred reply copies (which read the rx buffer in place) have
		// been flushed.
		base := 0
		for {
			spans, consumed, perr := parseCommandSpans(view[base:c.rxLen])
			if errors.Is(perr, errIncomplete) {
				break
			}
			// Protocol parse work is application code.
			s.env.Charge(clock.RESPParseCycles(max(consumed, 1)))
			s.env.Hard.OnFrame()
			s.env.Hard.OnTouch(max(consumed, 1))
			if perr != nil {
				n, werr := c.writeError(txOff, fmt.Sprintf("ERR protocol error: %v", perr))
				if werr != nil {
					return werr
				}
				txOff = n
				if err := flush(); err != nil {
					return fmt.Errorf("redis server send: %w", err)
				}
				return fmt.Errorf("redis server: %v", perr)
			}
			preOff := txOff
			exec := func() error {
				var err error
				txOff, err = c.execute(spans, view[base:c.rxLen], base, txOff)
				return err
			}
			var xerr error
			if s.Enforce && s.Budget != 0 && c.arrival != 0 {
				// Everything the command does past this point — store
				// crossings, the reply's libc memcpy — runs under the
				// request's deadline, so the control plane sheds work whose
				// answer would be worthless anyway.
				xerr = s.env.WithDeadline(t, c.arrival+s.Budget, exec)
			} else {
				xerr = exec()
			}
			switch {
			case fault.IsOverload(xerr):
				// Roll back any partial reply (bulkReply writes its "$n"
				// header before the payload crossing that shed) and answer
				// -BUSY like real Redis under overload. The error reply is
				// protocol scaffolding: written in app code, no crossing, so
				// it cannot itself be shed.
				c.dropCopies(preOff)
				txOff = preOff
				if txOff, err = c.writeGo(preOff, appendError(nil, "BUSY overload shed")); err != nil {
					return err
				}
				s.Shed++
			case xerr != nil:
				return xerr
			default:
				s.Commands++
				if c.arrival != 0 {
					if age := s.env.CPU.Cycles() - c.arrival; age > s.MaxAge {
						s.MaxAge = age
					}
				}
				if s.Budget != 0 && c.arrival != 0 && s.env.CPU.Cycles() > c.arrival+s.Budget {
					s.Late++
				} else if s.Budget != 0 {
					s.Good++
				}
			}
			base += consumed
			// Flush early if the next reply might not fit.
			if txOff > s.bufSize/2 {
				if err := flush(); err != nil {
					return fmt.Errorf("redis server send: %w", err)
				}
			}
		}
		// Deferred copies read the rx buffer in place: materialize them
		// before the consumed prefix is compacted away.
		if err := c.flushCopies(); err != nil {
			return err
		}
		if base > 0 {
			if remain := c.rxLen - base; remain > 0 {
				s.env.Charge(clock.CopyCycles(remain))
				copy(view, view[base:c.rxLen])
			}
			c.rxLen -= base
		}
		if err := flush(); err != nil {
			return fmt.Errorf("redis server send: %w", err)
		}
		if c.rxLen == s.bufSize {
			return fmt.Errorf("redis server: request exceeds %d bytes", s.bufSize)
		}
		var n int
		rerr := s.call("recv", 3, func() error {
			var err error
			n, err = s.lc.Recv(t, conn, c.rx+mem.Addr(c.rxLen), s.bufSize-c.rxLen)
			return err
		})
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("redis server recv: %w", rerr)
		}
		c.rxLen += n
		c.arrival = conn.LastRxArrival()
	}
}

func (c *connState) allocBuffers() error {
	s := c.srv
	return s.call("malloc", 1, func() error {
		var err error
		if c.rxBuf, err = s.lc.BufAlloc(s.bufSize); err != nil {
			return err
		}
		if c.txBuf, err = s.lc.BufAlloc(s.bufSize); err != nil {
			return err
		}
		c.rx, c.tx = c.rxBuf.Addr, c.txBuf.Addr
		return nil
	})
}

func (c *connState) freeBuffers() {
	s := c.srv
	_ = s.call("free", 1, func() error {
		if c.rx != mem.NilAddr {
			_ = s.lc.BufFree(c.rxBuf)
		}
		if c.tx != mem.NilAddr {
			_ = s.lc.BufFree(c.txBuf)
		}
		c.rx, c.tx = mem.NilAddr, mem.NilAddr
		return nil
	})
}

// writeGo copies protocol scaffolding (a Go scratch slice) into the tx
// buffer at off, charging the app.
func (c *connState) writeGo(off int, b []byte) (int, error) {
	s := c.srv
	if off+len(b) > s.bufSize {
		return 0, fmt.Errorf("redis server: reply exceeds %d bytes", s.bufSize)
	}
	dst, err := s.env.Bytes(c.tx+mem.Addr(off), len(b))
	if err != nil {
		return 0, err
	}
	s.env.Charge(clock.RESPParseCycles(len(b)))
	s.env.Hard.OnTouch(len(b))
	copy(dst, b)
	return off + len(b), nil
}

// writeVal moves stored payload into the reply through LibC. In
// pipelined mode the copy defers: the reply slot is reserved now and
// materialized by the next flushCopies, so a whole pipeline's payload
// copies share batched crossings.
func (c *connState) writeVal(off int, addr mem.Addr, n int) (int, error) {
	s := c.srv
	if off+n > s.bufSize {
		return 0, fmt.Errorf("redis server: reply exceeds %d bytes", s.bufSize)
	}
	if n == 0 {
		return off, nil
	}
	if c.depth > 1 {
		c.pending = append(c.pending, pendingCopy{dst: c.tx + mem.Addr(off), src: addr, n: n, off: off})
		return off + n, nil
	}
	err := s.call("memcpy", 3, func() error {
		return s.lc.Memcpy(c.tx+mem.Addr(off), addr, n)
	})
	return off + n, err
}

func (c *connState) writeError(off int, msg string) (int, error) {
	return c.writeGo(off, appendError(nil, msg))
}

// execute runs one parsed command, appending the reply to the tx
// buffer at off and returning the new offset. view is the unparsed
// rx-buffer suffix the spans index into; rxOff is its offset within
// the rx buffer.
func (c *connState) execute(spans [][2]int, view []byte, rxOff int, off int) (int, error) {
	s := c.srv
	arg := func(i int) []byte { return view[spans[i][0] : spans[i][0]+spans[i][1]] }
	argAddr := func(i int) mem.Addr { return c.rx + mem.Addr(rxOff+spans[i][0]) }
	nargs := len(spans)
	name := asciiUpper(arg(0))
	// Deferred reply copies may reference store memory a mutation is
	// about to free or overwrite: materialize them first.
	switch name {
	case "SET", "DEL", "INCR", "DECR", "INCRBY", "APPEND", "FLUSHALL":
		if err := c.flushCopies(); err != nil {
			return 0, err
		}
	}

	wrongArgs := func() (int, error) {
		return c.writeError(off, fmt.Sprintf("ERR wrong number of arguments for '%s' command", name))
	}

	switch name {
	case "PING":
		if nargs == 2 {
			return c.bulkReply(off, argAddr(1), spans[1][1])
		}
		return c.writeGo(off, appendSimple(nil, "PONG"))
	case "ECHO":
		if nargs != 2 {
			return wrongArgs()
		}
		return c.bulkReply(off, argAddr(1), spans[1][1])
	case "SET":
		if nargs != 3 {
			return wrongArgs()
		}
		if err := s.store.Set(arg(1), argAddr(2), spans[2][1]); err != nil {
			return 0, err
		}
		return c.writeGo(off, appendSimple(nil, "OK"))
	case "GET":
		if nargs != 2 {
			return wrongArgs()
		}
		addr, n, ok := s.store.Get(arg(1))
		if !ok {
			return c.writeGo(off, appendNull(nil))
		}
		return c.bulkReply(off, addr, n)
	case "DEL":
		if nargs < 2 {
			return wrongArgs()
		}
		keys := make([][]byte, 0, nargs-1)
		for i := 1; i < nargs; i++ {
			keys = append(keys, arg(i))
		}
		removed, err := s.store.Del(keys...)
		if err != nil {
			return 0, err
		}
		return c.writeGo(off, appendInt(nil, int64(removed)))
	case "EXISTS":
		if nargs != 2 {
			return wrongArgs()
		}
		v := int64(0)
		if s.store.Exists(arg(1)) {
			v = 1
		}
		return c.writeGo(off, appendInt(nil, v))
	case "INCR", "DECR", "INCRBY":
		delta := int64(1)
		switch name {
		case "DECR":
			delta = -1
		case "INCRBY":
			if nargs != 3 {
				return wrongArgs()
			}
			var err error
			delta, _, err = parseInt(append(append([]byte(nil), arg(2)...), '\r', '\n'), 0)
			if err != nil {
				return c.writeError(off, "ERR value is not an integer or out of range")
			}
		}
		if (name != "INCRBY" && nargs != 2) || (name == "INCRBY" && nargs != 3) {
			return wrongArgs()
		}
		v, err := s.store.IncrBy(arg(1), delta)
		if err != nil {
			return c.writeError(off, "ERR value is not an integer or out of range")
		}
		return c.writeGo(off, appendInt(nil, v))
	case "APPEND":
		if nargs != 3 {
			return wrongArgs()
		}
		n, err := s.store.Append(arg(1), argAddr(2), spans[2][1])
		if err != nil {
			return 0, err
		}
		return c.writeGo(off, appendInt(nil, int64(n)))
	case "STRLEN":
		if nargs != 2 {
			return wrongArgs()
		}
		return c.writeGo(off, appendInt(nil, int64(s.store.Strlen(arg(1)))))
	case "DBSIZE":
		return c.writeGo(off, appendInt(nil, int64(s.store.Len())))
	case "FLUSHALL":
		if err := s.store.FlushAll(); err != nil {
			return 0, err
		}
		return c.writeGo(off, appendSimple(nil, "OK"))
	default:
		return c.writeError(off, fmt.Sprintf("ERR unknown command '%s'", name))
	}
}

// bulkReply appends "$<n>\r\n<payload>\r\n" at off with the payload
// moved in LibC.
func (c *connState) bulkReply(off int, addr mem.Addr, n int) (int, error) {
	off, err := c.writeGo(off, appendBulkHeader(nil, n))
	if err != nil {
		return 0, err
	}
	if off, err = c.writeVal(off, addr, n); err != nil {
		return 0, err
	}
	return c.writeGo(off, []byte("\r\n"))
}

// asciiUpper uppercases a short command name.
func asciiUpper(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
