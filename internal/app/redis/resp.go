// Package redis implements the Redis-style key-value workload of the
// paper's Fig. 4 and Fig. 5: a RESP protocol server backed by an
// in-arena string dictionary, and a benchmarking client issuing
// SET/GET with configurable payload sizes.
//
// Protocol scaffolding (parsing, reply framing) is application code;
// bulk value movement goes through LibC's memcpy via call gates, so
// the hardening and isolation costs land exactly where the paper
// attributes them.
package redis

import (
	"errors"
	"fmt"
	"strconv"
)

// errIncomplete signals that more bytes are needed to finish parsing.
var errIncomplete = errors.New("redis: incomplete input")

// maxArgs bounds a command's argument count (sanity against garbage).
const maxArgs = 64

// maxBulk bounds one bulk string (1 MiB, like a conservative
// proto-max-bulk-len).
const maxBulk = 1 << 20

// parseCommandSpans parses one RESP array-of-bulk-strings command from
// b, returning each argument as an (offset, length) span into b plus
// the bytes consumed, or errIncomplete when the buffer does not yet
// hold a full command. Spans (rather than views) let the server turn
// an argument back into its arena address.
func parseCommandSpans(b []byte) ([][2]int, int, error) {
	if len(b) == 0 {
		return nil, 0, errIncomplete
	}
	if b[0] != '*' {
		return nil, 0, fmt.Errorf("redis: expected '*', got %q", b[0])
	}
	n, pos, err := parseInt(b, 1)
	if err != nil {
		return nil, 0, err
	}
	if n <= 0 || n > maxArgs {
		return nil, 0, fmt.Errorf("redis: bad argument count %d", n)
	}
	spans := make([][2]int, 0, n)
	for i := int64(0); i < n; i++ {
		if pos >= len(b) {
			return nil, 0, errIncomplete
		}
		if b[pos] != '$' {
			return nil, 0, fmt.Errorf("redis: expected '$', got %q", b[pos])
		}
		sz, next, err := parseInt(b, pos+1)
		if err != nil {
			return nil, 0, err
		}
		if sz < 0 || sz > maxBulk {
			return nil, 0, fmt.Errorf("redis: bad bulk length %d", sz)
		}
		end := next + int(sz)
		if end+2 > len(b) {
			return nil, 0, errIncomplete
		}
		if b[end] != '\r' || b[end+1] != '\n' {
			return nil, 0, fmt.Errorf("redis: bulk string not CRLF terminated")
		}
		spans = append(spans, [2]int{next, int(sz)})
		pos = end + 2
	}
	return spans, pos, nil
}

// parseCommand is the view-returning variant of parseCommandSpans.
func parseCommand(b []byte) ([][]byte, int, error) {
	spans, consumed, err := parseCommandSpans(b)
	if err != nil {
		return nil, 0, err
	}
	args := make([][]byte, len(spans))
	for i, s := range spans {
		args[i] = b[s[0] : s[0]+s[1]]
	}
	return args, consumed, nil
}

// parseInt reads a signed decimal terminated by CRLF starting at pos.
// It returns the value and the position after the CRLF.
func parseInt(b []byte, pos int) (int64, int, error) {
	i := pos
	for i < len(b) && b[i] != '\r' {
		i++
	}
	if i+1 >= len(b) {
		return 0, 0, errIncomplete
	}
	if b[i+1] != '\n' {
		return 0, 0, fmt.Errorf("redis: bare CR in length")
	}
	v, err := strconv.ParseInt(string(b[pos:i]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("redis: bad integer: %w", err)
	}
	return v, i + 2, nil
}

// replyLen reports the length of one complete RESP reply at the start
// of b, or errIncomplete.
func replyLen(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errIncomplete
	}
	switch b[0] {
	case '+', '-', ':':
		for i := 1; i+1 < len(b); i++ {
			if b[i] == '\r' && b[i+1] == '\n' {
				return i + 2, nil
			}
		}
		return 0, errIncomplete
	case '$':
		sz, pos, err := parseInt(b, 1)
		if err != nil {
			return 0, err
		}
		if sz < 0 { // null bulk
			return pos, nil
		}
		if sz > maxBulk {
			return 0, fmt.Errorf("redis: bad bulk length %d", sz)
		}
		if pos+int(sz)+2 > len(b) {
			return 0, errIncomplete
		}
		return pos + int(sz) + 2, nil
	case '*':
		n, pos, err := parseInt(b, 1)
		if err != nil {
			return 0, err
		}
		if n > maxArgs {
			return 0, fmt.Errorf("redis: bad argument count %d", n)
		}
		total := pos
		for i := int64(0); i < n; i++ {
			l, err := replyLen(b[total:])
			if err != nil {
				return 0, err
			}
			total += l
		}
		return total, nil
	default:
		return 0, fmt.Errorf("redis: bad reply type %q", b[0])
	}
}

// Reply builders append RESP into dst and return the extended slice.

func appendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

func appendError(dst []byte, s string) []byte {
	dst = append(dst, '-')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

func appendInt(dst []byte, v int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\r', '\n')
}

func appendNull(dst []byte) []byte {
	return append(dst, '$', '-', '1', '\r', '\n')
}

// appendBulkHeader writes "$<n>\r\n"; the caller appends payload + CRLF.
func appendBulkHeader(dst []byte, n int) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}

// appendBulk writes a complete bulk string from a Go slice.
func appendBulk(dst, payload []byte) []byte {
	dst = appendBulkHeader(dst, len(payload))
	dst = append(dst, payload...)
	return append(dst, '\r', '\n')
}

// encodeCommand renders a command as RESP into dst.
func encodeCommand(dst []byte, args ...[]byte) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = appendBulk(dst, a)
	}
	return dst
}
