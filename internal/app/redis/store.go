package redis

import (
	"fmt"
	"strconv"

	"flexos/internal/clock"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/rt"
)

// valueRef locates a stored value in the arena.
type valueRef struct {
	addr mem.Addr
	n    int
}

// Store is the in-memory string dictionary. Values live in arena
// allocations owned by the store; all bulk movement goes through
// LibC's memcpy so hardening and allocator policies apply exactly as
// they would to a ported Redis.
type Store struct {
	env *rt.Env
	lc  *libc.LibC
	m   map[string]valueRef
}

// NewStore builds an empty dictionary for the app environment.
func NewStore(env *rt.Env, lc *libc.LibC) *Store {
	return &Store{env: env, lc: lc, m: make(map[string]valueRef)}
}

// chargeOp accounts one dict operation on a key.
func (s *Store) chargeOp(key []byte) {
	s.env.Charge(clock.CostDictOpFixed + clock.RESPParseCycles(len(key)))
	s.env.Hard.OnFrame()
	s.env.Hard.OnTouch(len(key))
}

// Len reports the number of keys.
func (s *Store) Len() int { return len(s.m) }

// Set stores n bytes from the arena at src under key, replacing any
// previous value.
func (s *Store) Set(key []byte, src mem.Addr, n int) error {
	s.chargeOp(key)
	buf, err := s.env.Malloc(max(n, 1))
	if err != nil {
		return err
	}
	if n > 0 {
		if err := s.memcpy(buf, src, n); err != nil {
			_ = s.env.Free(buf)
			return err
		}
	}
	k := string(key)
	if old, ok := s.m[k]; ok {
		if err := s.env.Free(old.addr); err != nil {
			return err
		}
	}
	s.m[k] = valueRef{addr: buf, n: n}
	return nil
}

// setRaw stores a Go byte slice (used by INCR and tests).
func (s *Store) setRaw(key []byte, val []byte) error {
	s.chargeOp(key)
	buf, err := s.env.Malloc(max(len(val), 1))
	if err != nil {
		return err
	}
	dst, err := s.env.Bytes(buf, len(val))
	if err != nil {
		return err
	}
	s.env.Charge(clock.CopyCycles(len(val)))
	copy(dst, val)
	k := string(key)
	if old, ok := s.m[k]; ok {
		if err := s.env.Free(old.addr); err != nil {
			return err
		}
	}
	s.m[k] = valueRef{addr: buf, n: len(val)}
	return nil
}

// Get returns the value location for key.
func (s *Store) Get(key []byte) (mem.Addr, int, bool) {
	s.chargeOp(key)
	v, ok := s.m[string(key)]
	return v.addr, v.n, ok
}

// Del removes keys, returning how many existed.
func (s *Store) Del(keys ...[]byte) (int, error) {
	removed := 0
	for _, key := range keys {
		s.chargeOp(key)
		k := string(key)
		if v, ok := s.m[k]; ok {
			if err := s.env.Free(v.addr); err != nil {
				return removed, err
			}
			delete(s.m, k)
			removed++
		}
	}
	return removed, nil
}

// Exists reports whether key is present.
func (s *Store) Exists(key []byte) bool {
	s.chargeOp(key)
	_, ok := s.m[string(key)]
	return ok
}

// IncrBy adds delta to the integer value at key (0 if absent).
func (s *Store) IncrBy(key []byte, delta int64) (int64, error) {
	s.chargeOp(key)
	var cur int64
	if v, ok := s.m[string(key)]; ok {
		b, err := s.env.Bytes(v.addr, v.n)
		if err != nil {
			return 0, err
		}
		cur, err = strconv.ParseInt(string(b), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("redis: value is not an integer")
		}
	}
	cur += delta
	if err := s.setRaw(key, []byte(strconv.FormatInt(cur, 10))); err != nil {
		return 0, err
	}
	return cur, nil
}

// Append appends n bytes from src to key's value, returning the new
// length.
func (s *Store) Append(key []byte, src mem.Addr, n int) (int, error) {
	s.chargeOp(key)
	k := string(key)
	old, ok := s.m[k]
	newLen := old.n + n
	if !ok {
		newLen = n
	}
	buf, err := s.env.Malloc(max(newLen, 1))
	if err != nil {
		return 0, err
	}
	if ok && old.n > 0 {
		if err := s.memcpy(buf, old.addr, old.n); err != nil {
			return 0, err
		}
	}
	off := 0
	if ok {
		off = old.n
	}
	if n > 0 {
		if err := s.memcpy(buf+mem.Addr(off), src, n); err != nil {
			return 0, err
		}
	}
	if ok {
		if err := s.env.Free(old.addr); err != nil {
			return 0, err
		}
	}
	s.m[k] = valueRef{addr: buf, n: newLen}
	return newLen, nil
}

// Strlen reports the value length (0 if absent).
func (s *Store) Strlen(key []byte) int {
	s.chargeOp(key)
	return s.m[string(key)].n
}

// FlushAll drops every key.
func (s *Store) FlushAll() error {
	for k, v := range s.m {
		if err := s.env.Free(v.addr); err != nil {
			return err
		}
		delete(s.m, k)
	}
	return nil
}

// memcpy routes the bulk copy through the app -> libc gate.
func (s *Store) memcpy(dst, src mem.Addr, n int) error {
	return s.env.CallFn("libc", "memcpy", 3, func() error {
		return s.lc.Memcpy(dst, src, n)
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
