package redis

import (
	"errors"
	"fmt"

	"flexos/internal/app/retry"
	"flexos/internal/clock"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// Client is a benchmarking RESP client (one outstanding request, like
// redis-benchmark with pipeline=1).
type Client struct {
	env   *rt.Env
	lc    *libc.LibC
	stack *net.Stack

	ServerIP   net.IPAddr
	ServerPort uint16

	// Retry bounds the connect loop on lossy links (the zero value is
	// a single attempt, the lossless-baseline behaviour).
	Retry retry.Policy
	// ConnectRetries counts failed connect attempts that were retried.
	ConnectRetries uint64

	conn         *net.Socket
	rx, tx       mem.Addr
	rxBuf, txBuf mem.BufRef
	rxLen        int
	bufSize      int
}

// NewClient builds a client for the app environment of the client
// machine.
func NewClient(env *rt.Env, lc *libc.LibC, st *net.Stack, ip net.IPAddr, port uint16) *Client {
	return &Client{env: env, lc: lc, stack: st, ServerIP: ip, ServerPort: port, bufSize: defaultBufSize}
}

// Connect opens the connection and allocates buffers, retrying with
// jittered exponential backoff when a Retry policy is set.
func (c *Client) Connect(t *sched.Thread) error {
	err := c.Retry.Do(c.env, func() error {
		err := c.env.CallFn("libc", "connect", 3, func() error {
			var err error
			c.conn, err = c.lc.Connect(t, c.stack, c.ServerIP, c.ServerPort)
			return err
		})
		if err != nil {
			c.ConnectRetries++
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("redis client: %w", err)
	}
	return c.env.CallFn("libc", "malloc", 1, func() error {
		if c.rxBuf, err = c.lc.BufAlloc(c.bufSize); err != nil {
			return err
		}
		if c.txBuf, err = c.lc.BufAlloc(c.bufSize); err != nil {
			return err
		}
		c.rx, c.tx = c.rxBuf.Addr, c.txBuf.Addr
		return nil
	})
}

// Close releases the buffers and shuts the connection down.
func (c *Client) Close(t *sched.Thread) error {
	if c.conn == nil {
		return nil
	}
	if c.rx != mem.NilAddr {
		_ = c.env.CallFn("libc", "free", 1, func() error {
			_ = c.lc.BufFree(c.rxBuf)
			_ = c.lc.BufFree(c.txBuf)
			c.rx, c.tx = mem.NilAddr, mem.NilAddr
			return nil
		})
	}
	return c.env.CallFn("libc", "close", 1, func() error { return c.lc.Close(t, c.conn) })
}

// Do issues one command and returns a copy of the raw RESP reply.
func (c *Client) Do(t *sched.Thread, args ...[]byte) ([]byte, error) {
	if c.conn == nil {
		return nil, errors.New("redis client: not connected")
	}
	req := encodeCommand(nil, args...)
	if len(req) > c.bufSize {
		return nil, fmt.Errorf("redis client: request exceeds %d bytes", c.bufSize)
	}
	dst, err := c.env.Bytes(c.tx, len(req))
	if err != nil {
		return nil, err
	}
	c.env.Charge(clock.RESPParseCycles(len(req)))
	c.env.Hard.OnTouch(len(req))
	copy(dst, req)
	if err := c.env.CallFn("libc", "send", 3, func() error {
		_, err := c.lc.Send(t, c.conn, c.tx, len(req))
		return err
	}); err != nil {
		return nil, fmt.Errorf("redis client send: %w", err)
	}
	for {
		view, err := c.env.Bytes(c.rx, c.rxLen)
		if err != nil {
			return nil, err
		}
		l, perr := replyLen(view)
		if perr == nil {
			reply := append([]byte(nil), view[:l]...)
			if remain := c.rxLen - l; remain > 0 {
				copy(view, view[l:c.rxLen])
			}
			c.rxLen -= l
			return reply, nil
		}
		if !errors.Is(perr, errIncomplete) {
			return nil, perr
		}
		var n int
		err = c.env.CallFn("libc", "recv", 3, func() error {
			var err error
			n, err = c.lc.Recv(t, c.conn, c.rx+mem.Addr(c.rxLen), c.bufSize-c.rxLen)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("redis client recv: %w", err)
		}
		c.rxLen += n
	}
}

// DoPipelined issues all commands back to back and then collects one
// reply per command — redis-benchmark's -P mode. The combined request
// and reply streams must each fit the client buffer.
func (c *Client) DoPipelined(t *sched.Thread, cmds [][][]byte) ([][]byte, error) {
	if c.conn == nil {
		return nil, errors.New("redis client: not connected")
	}
	var req []byte
	for _, cmd := range cmds {
		req = encodeCommand(req, cmd...)
	}
	if len(req) > c.bufSize {
		return nil, fmt.Errorf("redis client: pipelined request exceeds %d bytes", c.bufSize)
	}
	dst, err := c.env.Bytes(c.tx, len(req))
	if err != nil {
		return nil, err
	}
	c.env.Charge(clock.RESPParseCycles(len(req)))
	c.env.Hard.OnTouch(len(req))
	copy(dst, req)
	if err := c.env.CallFn("libc", "send", 3, func() error {
		_, err := c.lc.Send(t, c.conn, c.tx, len(req))
		return err
	}); err != nil {
		return nil, fmt.Errorf("redis client send: %w", err)
	}
	replies := make([][]byte, 0, len(cmds))
	for len(replies) < len(cmds) {
		view, err := c.env.Bytes(c.rx, c.rxLen)
		if err != nil {
			return nil, err
		}
		consumed := 0
		for len(replies) < len(cmds) {
			l, perr := replyLen(view[consumed:c.rxLen])
			if errors.Is(perr, errIncomplete) {
				break
			}
			if perr != nil {
				return nil, perr
			}
			replies = append(replies, append([]byte(nil), view[consumed:consumed+l]...))
			consumed += l
		}
		if consumed > 0 {
			if remain := c.rxLen - consumed; remain > 0 {
				copy(view, view[consumed:c.rxLen])
			}
			c.rxLen -= consumed
		}
		if len(replies) == len(cmds) {
			break
		}
		var n int
		err = c.env.CallFn("libc", "recv", 3, func() error {
			var err error
			n, err = c.lc.Recv(t, c.conn, c.rx+mem.Addr(c.rxLen), c.bufSize-c.rxLen)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("redis client recv: %w", err)
		}
		c.rxLen += n
	}
	return replies, nil
}

// Set issues SET key value.
func (c *Client) Set(t *sched.Thread, key string, value []byte) error {
	reply, err := c.Do(t, []byte("SET"), []byte(key), value)
	if err != nil {
		return err
	}
	if string(reply) != "+OK\r\n" {
		return fmt.Errorf("redis client: SET reply %q", reply)
	}
	return nil
}

// Get issues GET key; missing keys return (nil, false, nil).
func (c *Client) Get(t *sched.Thread, key string) ([]byte, bool, error) {
	reply, err := c.Do(t, []byte("GET"), []byte(key))
	if err != nil {
		return nil, false, err
	}
	if string(reply) == "$-1\r\n" {
		return nil, false, nil
	}
	if len(reply) == 0 || reply[0] != '$' {
		return nil, false, fmt.Errorf("redis client: GET reply %q", reply)
	}
	sz, pos, err := parseInt(reply, 1)
	if err != nil {
		return nil, false, err
	}
	return reply[pos : pos+int(sz)], true, nil
}
