package redis

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/sched"
)

// --- RESP unit tests -------------------------------------------------

func TestParseCommandSimple(t *testing.T) {
	in := []byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	args, consumed, err := parseCommand(in)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(in) {
		t.Fatalf("consumed %d, want %d", consumed, len(in))
	}
	if len(args) != 3 || string(args[0]) != "SET" || string(args[2]) != "hello" {
		t.Fatalf("args = %q", args)
	}
}

func TestParseCommandIncremental(t *testing.T) {
	full := []byte("*2\r\n$4\r\nECHO\r\n$3\r\nabc\r\n")
	for i := 0; i < len(full); i++ {
		if _, _, err := parseCommand(full[:i]); !errors.Is(err, errIncomplete) {
			t.Fatalf("prefix %d: err = %v, want incomplete", i, err)
		}
	}
	if _, _, err := parseCommand(full); err != nil {
		t.Fatal(err)
	}
}

func TestParseCommandRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		[]byte("PING\r\n"),             // inline commands unsupported
		[]byte("*0\r\n"),               // zero args
		[]byte("*-1\r\n"),              // negative count
		[]byte("*1\r\nX3\r\nabc\r\n"),  // not a bulk
		[]byte("*1\r\n$-5\r\n"),        // negative bulk
		[]byte("*1\r\n$3\r\nabcX\r\n"), // missing CRLF
		[]byte("*1\r\n$x\r\n"),         // non-numeric
		[]byte("*999999\r\n"),          // absurd arg count
	}
	for _, in := range bad {
		if _, _, err := parseCommand(in); err == nil || errors.Is(err, errIncomplete) {
			t.Errorf("parse(%q) err = %v, want hard error", in, err)
		}
	}
}

func TestEncodeParseRoundTripProperty(t *testing.T) {
	f := func(a, b, c []byte) bool {
		if len(a) == 0 {
			a = []byte("X")
		}
		if len(a) > maxBulk || len(b) > maxBulk || len(c) > maxBulk {
			return true
		}
		enc := encodeCommand(nil, a, b, c)
		args, consumed, err := parseCommand(enc)
		if err != nil || consumed != len(enc) || len(args) != 3 {
			return false
		}
		return bytes.Equal(args[0], a) && bytes.Equal(args[1], b) && bytes.Equal(args[2], c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyLen(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"+OK\r\n", 5},
		{"-ERR boom\r\n", 11},
		{":42\r\n", 5},
		{"$3\r\nabc\r\n", 9},
		{"$-1\r\n", 5},
		{"*2\r\n:1\r\n:2\r\n", 12},
	}
	for _, tc := range cases {
		got, err := replyLen([]byte(tc.in))
		if err != nil || got != tc.want {
			t.Errorf("replyLen(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, in := range []string{"", "+OK", "$5\r\nab", "*2\r\n:1\r\n"} {
		if _, err := replyLen([]byte(in)); !errors.Is(err, errIncomplete) {
			t.Errorf("replyLen(%q) err = %v, want incomplete", in, err)
		}
	}
	if _, err := replyLen([]byte("?what\r\n")); err == nil {
		t.Error("bad reply type accepted")
	}
}

// --- end-to-end server tests ------------------------------------------

// world spins up a redis server and runs clientBody against it.
func world(t *testing.T, cfg build.Config, clientBody func(th *sched.Thread, c *Client)) (*build.World, *Server) {
	t.Helper()
	w, err := build.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	w.Sched.Spawn("redis-server", w.Server.CPU, func(th *sched.Thread) {
		if err := srv.Run(th); err != nil {
			t.Errorf("server: %v", err)
		}
	})
	w.Sched.Spawn("redis-client", w.Client.CPU, func(th *sched.Thread) {
		c := NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 6379)
		if err := c.Connect(th); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		clientBody(th, c)
		if err := c.Close(th); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if err := w.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	return w, srv
}

func TestSetGetRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("v"), 500)
	_, srv := world(t, build.Config{}, func(th *sched.Thread, c *Client) {
		if err := c.Set(th, "key:1", payload); err != nil {
			t.Error(err)
			return
		}
		got, ok, err := c.Get(th, "key:1")
		if err != nil || !ok {
			t.Errorf("GET = %v, %v", ok, err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("GET returned %d bytes, want %d", len(got), len(payload))
		}
		if _, ok, _ := c.Get(th, "missing"); ok {
			t.Error("missing key found")
		}
	})
	if srv.Commands != 3 {
		t.Fatalf("Commands = %d, want 3", srv.Commands)
	}
	if srv.Store().Len() != 1 {
		t.Fatalf("store len = %d", srv.Store().Len())
	}
}

func TestCommandSuite(t *testing.T) {
	do := func(th *sched.Thread, c *Client, want string, args ...string) {
		t.Helper()
		bs := make([][]byte, len(args))
		for i, a := range args {
			bs[i] = []byte(a)
		}
		reply, err := c.Do(th, bs...)
		if err != nil {
			t.Errorf("%v: %v", args, err)
			return
		}
		if string(reply) != want {
			t.Errorf("%v = %q, want %q", args, reply, want)
		}
	}
	world(t, build.Config{}, func(th *sched.Thread, c *Client) {
		do(th, c, "+PONG\r\n", "PING")
		do(th, c, "$5\r\nhello\r\n", "ECHO", "hello")
		do(th, c, "+OK\r\n", "set", "k", "v1") // case-insensitive
		do(th, c, ":1\r\n", "EXISTS", "k")
		do(th, c, ":0\r\n", "EXISTS", "nope")
		do(th, c, ":3\r\n", "APPEND", "k", "x") // "v1" (2 bytes) + "x" = 3
		do(th, c, ":3\r\n", "STRLEN", "k")
		do(th, c, ":1\r\n", "DEL", "k")
		do(th, c, ":0\r\n", "DEL", "k")
		do(th, c, ":1\r\n", "INCR", "ctr")
		do(th, c, ":2\r\n", "INCR", "ctr")
		do(th, c, ":1\r\n", "DECR", "ctr")
		do(th, c, ":11\r\n", "INCRBY", "ctr", "10")
		do(th, c, ":1\r\n", "DBSIZE")
		do(th, c, "+OK\r\n", "FLUSHALL")
		do(th, c, ":0\r\n", "DBSIZE")
		// Errors.
		do(th, c, "-ERR unknown command 'BOGUS'\r\n", "BOGUS")
		do(th, c, "-ERR wrong number of arguments for 'GET' command\r\n", "GET")
		do(th, c, "+OK\r\n", "SET", "s", "notanumber")
		do(th, c, "-ERR value is not an integer or out of range\r\n", "INCR", "s")
	})
}

func TestAppendSemantics(t *testing.T) {
	world(t, build.Config{}, func(th *sched.Thread, c *Client) {
		r, err := c.Do(th, []byte("APPEND"), []byte("a"), []byte("12345"))
		if err != nil || string(r) != ":5\r\n" {
			t.Errorf("APPEND new = %q, %v", r, err)
		}
		r, err = c.Do(th, []byte("APPEND"), []byte("a"), []byte("678"))
		if err != nil || string(r) != ":8\r\n" {
			t.Errorf("APPEND existing = %q, %v", r, err)
		}
		got, ok, err := c.Get(th, "a")
		if err != nil || !ok || string(got) != "12345678" {
			t.Errorf("GET after APPEND = %q, %v, %v", got, ok, err)
		}
	})
}

func TestManySmallRequests(t *testing.T) {
	// Exercise buffering/compaction across many sequential commands.
	const n = 200
	_, srv := world(t, build.Config{}, func(th *sched.Thread, c *Client) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key:%d", i%10)
			if err := c.Set(th, key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
				t.Error(err)
				return
			}
			got, ok, err := c.Get(th, key)
			if err != nil || !ok {
				t.Errorf("get %d: %v %v", i, ok, err)
				return
			}
			if string(got) != fmt.Sprintf("value-%d", i) {
				t.Errorf("get %d = %q", i, got)
			}
		}
	})
	if srv.Commands != 2*n {
		t.Fatalf("Commands = %d, want %d", srv.Commands, 2*n)
	}
}

func TestLargeValue(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 1000) // 8 KB
	world(t, build.Config{}, func(th *sched.Thread, c *Client) {
		if err := c.Set(th, "big", payload); err != nil {
			t.Error(err)
			return
		}
		got, ok, err := c.Get(th, "big")
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Errorf("big value mismatch: %d bytes, ok=%v, err=%v", len(got), ok, err)
		}
	})
}

func TestMultipleConcurrentClients(t *testing.T) {
	// Two clients served by two server threads share one store.
	w, err := build.NewWorld(build.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	listener, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	const clients = 3
	for i := 0; i < clients; i++ {
		w.Sched.Spawn(fmt.Sprintf("server-worker-%d", i), w.Server.CPU, func(th *sched.Thread) {
			conn, err := srv.Accept(th, listener)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			if err := srv.ServeConn(th, conn); err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	for i := 0; i < clients; i++ {
		i := i
		w.Sched.Spawn(fmt.Sprintf("client-%d", i), w.Client.CPU, func(th *sched.Thread) {
			c := NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
				w.Server.Stack.IP(), 6379)
			if err := c.Connect(th); err != nil {
				t.Errorf("client %d connect: %v", i, err)
				return
			}
			key := fmt.Sprintf("client:%d", i)
			for round := 0; round < 10; round++ {
				val := []byte(fmt.Sprintf("v-%d-%d", i, round))
				if err := c.Set(th, key, val); err != nil {
					t.Errorf("client %d set: %v", i, err)
					return
				}
				got, ok, err := c.Get(th, key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					t.Errorf("client %d get = %q, %v, %v", i, got, ok, err)
					return
				}
				th.Yield() // interleave with the other clients
			}
			_ = c.Close(th)
		})
	}
	if err := w.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	// One key per client, all in the shared store.
	if srv.Store().Len() != clients {
		t.Fatalf("store len = %d, want %d", srv.Store().Len(), clients)
	}
	if srv.Commands != clients*20 {
		t.Fatalf("Commands = %d, want %d", srv.Commands, clients*20)
	}
}

func TestRedisOverMPKIsolation(t *testing.T) {
	cfg := build.Config{
		Compartments: build.NWSchedRest(),
		Backend:      gate.MPKShared,
		Alloc:        build.AllocPerCompartment,
	}
	w, srv := world(t, cfg, func(th *sched.Thread, c *Client) {
		if err := c.Set(th, "k", []byte("v")); err != nil {
			t.Error(err)
		}
		if _, _, err := c.Get(th, "k"); err != nil {
			t.Error(err)
		}
	})
	if srv.Commands != 2 {
		t.Fatalf("Commands = %d", srv.Commands)
	}
	if w.Server.Registry.TotalCrossings() == 0 {
		t.Fatal("no crossings under MPK isolation")
	}
}
