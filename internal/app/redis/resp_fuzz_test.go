package redis

import (
	"bytes"
	"testing"
)

// FuzzRESP throws arbitrary bytes at the RESP command parser and the
// reply framer, checking the structural invariants the server and
// client rely on: parses never panic, consume within bounds, return
// in-bounds argument views, and canonical re-encodings of parsed
// commands round-trip exactly.
func FuzzRESP(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$5\r\nkey:1\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$5\r\nkey:1\r\n$4\r\nabcd\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR unknown command\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("$3\r\nfoo\r\n"))
	f.Add([]byte("*2\r\n+a\r\n:1\r\n"))
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("$9223372036854775800\r\nx"))
	f.Add([]byte("*9223372036854775800\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		args, consumed, err := parseCommand(data)
		if err == nil {
			if consumed <= 0 || consumed > len(data) {
				t.Fatalf("parseCommand consumed %d of %d bytes", consumed, len(data))
			}
			for i, a := range args {
				if len(a) > maxBulk {
					t.Fatalf("arg %d longer than maxBulk: %d", i, len(a))
				}
			}
			// A canonical re-encoding of the parsed command must parse
			// back to the identical argument vector, consuming exactly
			// the encoded bytes.
			enc := encodeCommand(nil, args...)
			args2, consumed2, err2 := parseCommand(enc)
			if err2 != nil {
				t.Fatalf("re-encoded command failed to parse: %v", err2)
			}
			if consumed2 != len(enc) {
				t.Fatalf("re-encoded command: consumed %d of %d", consumed2, len(enc))
			}
			if len(args2) != len(args) {
				t.Fatalf("round-trip arg count %d != %d", len(args2), len(args))
			}
			for i := range args {
				if !bytes.Equal(args[i], args2[i]) {
					t.Fatalf("round-trip arg %d mismatch", i)
				}
			}
		}
		if n, err := replyLen(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("replyLen = %d for %d input bytes", n, len(data))
			}
		}
	})
}
