package sched

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/fault"
)

// A thread dying on an uncontained protection fault must surface the
// fault from Run — not the secondary deadlock of its blocked joiners,
// and without leaking their goroutines.
func TestCrashedThreadUnblocksJoiner(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	tr := &fault.Trap{Comp: "nw", Kind: fault.KindInjected, PC: "netstack:recv"}
	s.Spawn("victim", cpu, func(th *Thread) {
		th.Yield()
		panic(tr)
	})
	joiner := s.Spawn("joiner", cpu, func(th *Thread) {
		th.Park() // waits for a wake the victim can never deliver
	})
	err := s.Run()
	var crash *ThreadCrash
	if !errors.As(err, &crash) || crash.Thread != "victim" {
		t.Fatalf("err = %v, want victim's ThreadCrash", err)
	}
	if got, ok := fault.As(err); !ok || got != tr {
		t.Fatalf("trap lost from chain: %v", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Fatalf("fault misreported as deadlock: %v", err)
	}
	if joiner.State() != Exited {
		t.Fatalf("joiner not unwound: %v", joiner.State())
	}
}

// A contract violation with a parked bystander: the fault must win
// over the deadlock the unwound thread leaves behind.
func TestContractViolationBeatsDeadlock(t *testing.T) {
	s := NewVerifiedScheduler()
	cpu := clock.New()
	var bad *Thread
	bad = s.Spawn("bad", cpu, func(th *Thread) {
		s.CorruptQueueForDemo(bad)
		th.Yield() // precondition check trips here
	})
	waiter := s.Spawn("waiter", cpu, func(th *Thread) { th.Park() })
	err := s.Run()
	var ce *ContractError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ContractError in chain", err)
	}
	// Contract violations are typed as scheduler traps so supervisors
	// and experiments classify them like any protection fault.
	if tr, ok := fault.As(err); !ok || tr.Kind != fault.KindSched {
		t.Fatalf("err = %v, want KindSched trap", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Fatalf("contract violation misreported as deadlock: %v", err)
	}
	if waiter.State() != Exited {
		t.Fatalf("waiter not unwound: %v", waiter.State())
	}
}

// Timer callbacks run on the scheduler's own goroutine; a panic there
// must come back as an error from Run, not crash the caller.
func TestTimerCallbackPanicReturnsError(t *testing.T) {
	s := NewCScheduler()
	tr := &fault.Trap{Comp: "nw", Kind: fault.KindInjected}
	s.Timers().After(10, func() { panic(tr) })
	err := s.Run()
	var crash *ThreadCrash
	if !errors.As(err, &crash) || crash.Thread != "timer" {
		t.Fatalf("err = %v, want timer ThreadCrash", err)
	}
	if got, ok := fault.As(err); !ok || got != tr {
		t.Fatalf("trap lost from chain: %v", err)
	}
}

// A timer callback that corrupts scheduler state trips the verified
// scheduler's invariants on the run goroutine; Run must return the
// contract error and unwind the remaining threads.
func TestTimerCallbackContractViolation(t *testing.T) {
	s := NewVerifiedScheduler()
	cpu := clock.New()
	var sleeper *Thread
	sleeper = s.Spawn("sleeper", cpu, func(th *Thread) { th.Park() })
	s.Timers().After(10, func() {
		s.CorruptQueueForDemo(sleeper) // queues a Blocked thread
		sleeper.Wake()                 // wake(post) invariant check fires
	})
	err := s.Run()
	var ce *ContractError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ContractError in chain", err)
	}
	if sleeper.State() != Exited {
		t.Fatalf("sleeper not unwound: %v", sleeper.State())
	}
}

func TestCauseFromPanicTyping(t *testing.T) {
	tr := &fault.Trap{Comp: "lc"}
	if causeFromPanic(tr) != error(tr) {
		t.Fatal("trap panic not passed through")
	}
	ce := &ContractError{Op: "yield", Detail: "duplicate thread in run queue"}
	got := causeFromPanic(ce)
	if tr2, ok := fault.As(got); !ok || tr2.Kind != fault.KindSched || tr2.Comp != "sched" {
		t.Fatalf("contract error typed as %v", got)
	}
	if !errors.Is(got, error(ce)) {
		t.Fatal("contract error lost from chain")
	}
	plain := errors.New("boom")
	if causeFromPanic(plain) != plain {
		t.Fatal("error panic not passed through")
	}
	if causeFromPanic("boom") == nil {
		t.Fatal("string panic dropped")
	}
}
