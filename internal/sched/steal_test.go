package sched

import (
	"testing"

	"flexos/internal/clock"
)

// TestWorkStealFairness spawns a pile of CPU-bound threads all on
// vCPU 0 of a 4-vCPU machine and checks that bounded work stealing
// spreads them: the idle vCPUs steal from the loaded queue, every vCPU
// ends up doing work, and no vCPU finishes wildly ahead of another.
func TestWorkStealFairness(t *testing.T) {
	s := NewCScheduler()
	m := clock.NewMachine(4)
	const (
		threads = 8
		rounds  = 200
		work    = 1000
	)
	body := func(th *Thread) {
		for i := 0; i < rounds; i++ {
			th.CPU.Charge(clock.CompApp, work)
			th.Yield()
		}
	}
	for i := 0; i < threads; i++ {
		s.Spawn("worker", m.CPU(0), body)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Steals() == 0 {
		t.Fatal("no steals: idle vCPUs never relieved the loaded queue")
	}
	var min, max uint64
	for i, cpu := range m.CPUs() {
		c := cpu.Cycles()
		t.Logf("cpu%d: %d cycles", i, c)
		if i == 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a vCPU did no work despite %d ready threads", threads)
	}
	if float64(max) > 2*float64(min) {
		t.Errorf("unfair spread: fastest vCPU at %d cycles, slowest at %d", max, min)
	}
}

// TestWorkStealPinned checks that pinned threads never migrate: with
// only pinned work on vCPU 0, the other vCPUs stay empty and no steal
// happens.
func TestWorkStealPinned(t *testing.T) {
	s := NewCScheduler()
	m := clock.NewMachine(2)
	body := func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.CPU.Charge(clock.CompApp, 100)
			th.Yield()
		}
	}
	for i := 0; i < 4; i++ {
		th := s.Spawn("pinned", m.CPU(0), body)
		th.Pinned = true
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Steals() != 0 {
		t.Fatalf("stole %d pinned threads", s.Steals())
	}
	if c := m.CPU(1).Cycles(); c != 0 {
		t.Fatalf("vCPU 1 ran %d cycles of pinned-elsewhere work", c)
	}
}

// TestWorkStealDeterminism runs the same steal-heavy workload twice
// and requires identical steal counts and per-vCPU cycle counters.
func TestWorkStealDeterminism(t *testing.T) {
	run := func() (uint64, []uint64) {
		s := NewCScheduler()
		m := clock.NewMachine(4)
		body := func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.CPU.Charge(clock.CompApp, 500)
				th.Yield()
			}
		}
		for i := 0; i < 6; i++ {
			s.Spawn("worker", m.CPU(0), body)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var cycles []uint64
		for _, cpu := range m.CPUs() {
			cycles = append(cycles, cpu.Cycles())
		}
		return s.Steals(), cycles
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 {
		t.Errorf("steal count drifted: %d vs %d", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("cpu%d cycles drifted: %d vs %d", i, c1[i], c2[i])
		}
	}
}
