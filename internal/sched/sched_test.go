package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flexos/internal/clock"
)

func TestRunToCompletion(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewCScheduler() },
		func() Scheduler { return NewVerifiedScheduler() },
	} {
		s := mk()
		cpu := clock.New()
		var order []string
		s.Spawn("a", cpu, func(th *Thread) { order = append(order, "a") })
		s.Spawn("b", cpu, func(th *Thread) { order = append(order, "b") })
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 || order[0] != "a" || order[1] != "b" {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestYieldInterleaves(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	var order []string
	body := func(name string) func(*Thread) {
		return func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				th.Yield()
			}
		}
	}
	s.Spawn("a", cpu, body("a"))
	s.Spawn("b", cpu, body("b"))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkWake(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	var events []string
	var sleeper *Thread
	sleeper = s.Spawn("sleeper", cpu, func(th *Thread) {
		events = append(events, "sleep")
		th.Park()
		events = append(events, "woken")
	})
	s.Spawn("waker", cpu, func(th *Thread) {
		events = append(events, "wake")
		sleeper.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"sleep", "wake", "woken"}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v", events)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	s.Spawn("stuck", cpu, func(th *Thread) { th.Park() })
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestWakeNonBlockedIsNoop(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	var th1 *Thread
	th1 = s.Spawn("a", cpu, func(th *Thread) {
		th1.Wake() // waking the running thread must not requeue it
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if th1.State() != Exited {
		t.Fatalf("state = %v", th1.State())
	}
}

func TestThreadPanicCaptured(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	ran := false
	s.Spawn("bad", cpu, func(th *Thread) { panic("boom") })
	s.Spawn("good", cpu, func(th *Thread) { ran = true })
	err := s.Run()
	if err == nil {
		t.Fatal("panic not reported")
	}
	if !ran {
		t.Fatal("panicking thread blocked others")
	}
}

func TestContextSwitchCost(t *testing.T) {
	// Reproduces the paper's context-switch microbenchmark: two
	// threads yielding back and forth. C scheduler: 76.6ns/switch;
	// verified: 218.6ns/switch.
	measure := func(s Scheduler) float64 {
		cpu := clock.New()
		const rounds = 1000
		body := func(th *Thread) {
			for i := 0; i < rounds; i++ {
				th.Yield()
			}
		}
		s.Spawn("a", cpu, body)
		s.Spawn("b", cpu, body)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		switches := s.ContextSwitches()
		// Subtract the per-yield API-op cost to isolate the switch.
		return clock.Nanoseconds(switches*s.SwitchCost()) / float64(switches)
	}
	c := measure(NewCScheduler())
	v := measure(NewVerifiedScheduler())
	if math.Abs(c-76.6) > 2 {
		t.Errorf("C switch = %.1fns, want ~76.6", c)
	}
	if math.Abs(v-218.6) > 2 {
		t.Errorf("verified switch = %.1fns, want ~218.6", v)
	}
}

func TestVerifiedContractViolation(t *testing.T) {
	s := NewVerifiedScheduler()
	cpu := clock.New()
	var a *Thread
	a = s.Spawn("a", cpu, func(th *Thread) {
		// Corrupt the run queue the way a stray write from an
		// untrusted compartment would, then call into the scheduler:
		// the executable contract must catch it.
		s.CorruptQueueForDemo(a) // duplicate of a running thread
		th.Yield()
	})
	err := s.Run()
	var ce *ContractError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ContractError", err)
	}
}

func TestVerifiedRunsCleanWorkloads(t *testing.T) {
	s := NewVerifiedScheduler()
	cpu := clock.New()
	sum := 0
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("w", cpu, func(th *Thread) {
			sum += i
			th.Yield()
			sum += i
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 20 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestSchedulerChargesPerMachine(t *testing.T) {
	s := NewCScheduler()
	cpuA, cpuB := clock.New(), clock.New()
	s.Spawn("a", cpuA, func(th *Thread) { th.Yield() })
	s.Spawn("b", cpuB, func(th *Thread) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cpuA.Component(clock.CompSched) == 0 || cpuB.Component(clock.CompSched) == 0 {
		t.Fatal("per-machine scheduler charges missing")
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	var q WaitQueue
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, cpu, func(th *Thread) {
			q.Wait(th)
			order = append(order, name)
		})
	}
	s.Spawn("signaler", cpu, func(th *Thread) {
		if q.Len() != 3 {
			t.Errorf("Len = %d, want 3", q.Len())
		}
		q.Signal()
		q.Signal()
		th.Yield()
		if n := q.Broadcast(); n != 1 {
			t.Errorf("Broadcast woke %d, want 1", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if q.Signal() {
		t.Fatal("Signal on empty queue reported a wake")
	}
}

func TestTimersFireInOrder(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	var fired []uint64
	s.Spawn("main", cpu, func(th *Thread) {
		s.Timers().After(30, func() { fired = append(fired, 30) })
		s.Timers().After(10, func() { fired = append(fired, 10) })
		s.Timers().After(20, func() { fired = append(fired, 20) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 30 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Timers().Now() != 30 {
		t.Fatalf("Now = %d", s.Timers().Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	fired := false
	s.Spawn("main", cpu, func(th *Thread) {
		tm := s.Timers().After(5, func() { fired = true })
		tm.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Timers().Pending() != 0 {
		t.Fatal("stopped timer still pending")
	}
}

func TestTimerWakesParkedThread(t *testing.T) {
	s := NewCScheduler()
	cpu := clock.New()
	woke := false
	var sleeper *Thread
	sleeper = s.Spawn("sleeper", cpu, func(th *Thread) {
		s.Timers().After(100, func() { sleeper.Wake() })
		th.Park()
		woke = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("timer did not wake thread")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Ready: "ready", Running: "running", Blocked: "blocked", Exited: "exited"} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
}

// Model-based property: random yield/park/wake programs executed on
// the scheduler always terminate with every thread run to completion,
// matching a simple reference model of total work.
func TestSchedulerModelProperty(t *testing.T) {
	f := func(seed int64, nRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%4
		steps := 1 + int(opsRaw)%20
		s := NewCScheduler()
		cpu := clock.New()
		executed := make([]int, n)
		threads := make([]*Thread, n)
		for i := 0; i < n; i++ {
			i := i
			threads[i] = s.Spawn("w", cpu, func(th *Thread) {
				for j := 0; j < steps; j++ {
					executed[i]++
					switch rng.Intn(3) {
					case 0:
						th.Yield()
					case 1:
						// Wake a random peer (possibly not blocked).
						threads[rng.Intn(n)].Wake()
					case 2:
						// Park only if someone else can wake us later:
						// wake a peer first so progress is guaranteed,
						// then yield instead of parking to stay safe.
						th.Yield()
					}
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if executed[i] != steps {
				return false
			}
			if threads[i].State() != Exited {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
