// Package sched implements FlexOS's cooperative schedulers.
//
// Two interchangeable implementations are provided, mirroring the
// paper's evaluation:
//
//   - CScheduler: the fast, unverified scheduler (76.6 ns context
//     switch on the paper's testbed).
//   - VerifiedScheduler: a port of the paper's Dafny-verified
//     cooperative scheduler. Dafny proves its pre/post-conditions
//     statically; embedding the generated code next to untrusted C
//     requires checking the preconditions at every call, which the
//     prototype does in glue code with interrupts disabled. Here the
//     contracts are executable Go checks run at each API entry, which
//     reproduces both the trust argument (violations are caught, not
//     silently corrupting) and the measured 218.6 ns switch cost.
//
// Threads are goroutines, but scheduling is strictly cooperative and
// deterministic: exactly one thread runs at a time, handed control
// through an unbuffered channel. Each thread is bound to a vCPU and
// waits on that vCPU's FIFO run queue. The dispatcher is a conservative
// discrete-event interleaver: among the vCPUs of one machine it always
// resumes the runnable vCPU with the lowest cycle count (ties broken by
// ascending vCPU id), which is what makes an N-vCPU run bit-reproducible
// with no Go-level concurrency; across independent time domains
// (standalone CPUs, or the server and client machines of a world) it
// dispatches the earliest-enqueued runnable head, which on single-vCPU
// machines is exactly the historical global FIFO order. Cross-CPU
// wakes on one machine charge the waking vCPU an IPI, and an idle vCPU
// may steal waiting work from a loaded sibling (bounded, unpinned
// threads only).
package sched

import (
	"errors"
	"fmt"

	"flexos/internal/clock"
)

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	Ready State = iota
	Running
	Blocked
	Exited
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thread is one cooperative thread of execution.
type Thread struct {
	Name string
	CPU  *clock.CPU // the vCPU this thread runs on
	// Daemon marks service threads (e.g. the tcpip thread) that never
	// exit: they do not keep the scheduler alive and a daemon parked
	// at shutdown is not a deadlock.
	Daemon bool
	// Pinned excludes the thread from work stealing: it only ever runs
	// on the vCPU it was spawned on (or last migrated to). Service
	// threads with per-CPU state — the tcpip thread, NIC queue
	// processing — set it; plain workload threads may migrate.
	Pinned bool
	// Deadline is the thread's current absolute virtual-clock deadline
	// (0 = none). The runtime stamps it onto every gate CallFrame the
	// thread issues, which is how a budget set at the top of a request
	// propagates through nested cross-compartment calls — and why it
	// is carried per-thread: a deadline must survive the thread
	// parking while an unrelated thread (with its own deadline) runs.
	// Managed by rt.Env.WithDeadline; tightest deadline wins.
	Deadline uint64

	state  State
	sched  Scheduler
	resume chan struct{}
	killed bool
	fault  error  // panic captured from the thread body
	seq    uint64 // enqueue stamp: FIFO order within and across queues
}

// State reports the thread's current state.
func (t *Thread) State() State { return t.state }

// Fault reports the error a thread body panicked with, if any.
func (t *Thread) Fault() error { return t.fault }

// Yield gives up the CPU; the thread stays runnable.
func (t *Thread) Yield() { t.sched.yield(t) }

// Park blocks the thread until another thread (or a timer) wakes it.
func (t *Thread) Park() { t.sched.park(t) }

// Wake makes a parked thread runnable again. Waking a thread that is
// not blocked is a no-op (like a spurious wakeup).
func (t *Thread) Wake() { t.sched.wake(t) }

// Scheduler is the API surface every FlexOS scheduler exposes — the
// [API] clause of its library metadata: thread_add, thread_rm, yield.
type Scheduler interface {
	// Spawn creates a thread bound to cpu and adds it to that vCPU's
	// run queue (thread_add).
	Spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread
	// Run dispatches threads until all have exited. It returns
	// ErrDeadlock if every live thread is blocked with no pending
	// timer, and the first thread fault otherwise captured.
	Run() error
	// Timers gives access to the virtual-time timer wheel.
	Timers() *Timers
	// ContextSwitches reports the number of dispatches so far.
	ContextSwitches() uint64
	// SwitchCost reports the per-context-switch cycle cost.
	SwitchCost() uint64
	// Current reports the thread running right now (nil between
	// dispatches, e.g. from a timer callback). The runtime uses it to
	// find the deadline a gate call should inherit and to park callers
	// under the block admission policy.
	Current() *Thread
	// Steals reports how many threads were migrated by work stealing.
	Steals() uint64
	// IPIs reports how many cross-CPU wake interrupts were sent.
	IPIs() uint64

	yield(*Thread)
	park(*Thread)
	wake(*Thread)
}

// ErrDeadlock is returned by Run when no thread can make progress.
var ErrDeadlock = errors.New("sched: all threads blocked (deadlock)")

// errThreadKilled unwinds a daemon thread at scheduler shutdown; it is
// never surfaced as a fault.
var errThreadKilled = errors.New("sched: thread killed at shutdown")

// ContractError reports a violated pre/post-condition or invariant in
// the verified scheduler.
type ContractError struct {
	Op     string
	Detail string
}

func (e *ContractError) Error() string {
	return fmt.Sprintf("sched: contract violation in %s: %s", e.Op, e.Detail)
}

// cpuRun is one vCPU's FIFO run queue. Queues are registered in
// first-seen order, which (with the vCPU id) is the deterministic
// tie-break of the interleaver.
type cpuRun struct {
	cpu *clock.CPU
	q   []*Thread
}

// coop is the shared mechanics of both schedulers: spawn/run/dispatch
// plumbing, the per-CPU run queues and the interleaver live here once,
// so the SMP logic is not duplicated across the C and verified
// schedulers.
type coop struct {
	self       Scheduler // the outer scheduler (for Thread.sched)
	runqs      []*cpuRun // first-seen order (deterministic iteration)
	byCPU      map[*clock.CPU]*cpuRun
	threads    []*Thread
	current    *Thread
	last       *Thread
	yielded    chan struct{}
	timers     *Timers
	switches   uint64
	steals     uint64
	ipis       uint64
	switchCost uint64
	opCost     uint64
	opExtra    uint64 // verified-scheduler contract-check surcharge
	verify     bool
	firstFault error
	enqSeq     uint64
}

func newCoop(switchCost, opExtra uint64, verify bool) *coop {
	return &coop{
		byCPU:      make(map[*clock.CPU]*cpuRun),
		yielded:    make(chan struct{}),
		timers:     newTimers(),
		switchCost: switchCost,
		opCost:     clock.CostSchedOp,
		opExtra:    opExtra,
		verify:     verify,
	}
}

// chargeOp charges a scheduler API entry to the calling machine.
func (s *coop) chargeOp(cpu *clock.CPU) {
	if cpu == nil {
		return
	}
	cpu.Charge(clock.CompSched, s.opCost+s.opExtra)
}

// runq returns (creating on first sight) the run queue of a vCPU. A
// nil CPU (threads spawned without a clock in tests) shares one queue
// keyed by nil.
func (s *coop) runq(cpu *clock.CPU) *cpuRun {
	if rq, ok := s.byCPU[cpu]; ok {
		return rq
	}
	// Seeing any vCPU of a machine registers the whole machine, in id
	// order: idle siblings need run queues of their own to be steal
	// targets, and registration order must not depend on enqueue order.
	if cpu != nil && cpu.Machine() != nil {
		m := cpu.Machine()
		for _, sib := range m.CPUs() {
			if _, ok := s.byCPU[sib]; ok {
				continue
			}
			rq := &cpuRun{cpu: sib}
			s.byCPU[sib] = rq
			s.runqs = append(s.runqs, rq)
		}
		return s.byCPU[cpu]
	}
	rq := &cpuRun{cpu: cpu}
	s.byCPU[cpu] = rq
	s.runqs = append(s.runqs, rq)
	return rq
}

// enqueue stamps FIFO order and appends t to its vCPU's run queue.
func (s *coop) enqueue(t *Thread) {
	t.seq = s.enqSeq
	s.enqSeq++
	rq := s.runq(t.CPU)
	rq.q = append(rq.q, t)
}

// Spawn implements Scheduler for both schedulers.
func (s *coop) Spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread {
	t := &Thread{Name: name, CPU: cpu, sched: s.self, state: Ready, resume: make(chan struct{})}
	s.chargeOp(cpu)
	if s.verify {
		// thread_add precondition: the thread must not already be
		// added. Spawn constructs a fresh thread so the check is on
		// the queue invariant instead.
		s.checkInvariants("thread_add")
	}
	s.threads = append(s.threads, t)
	s.enqueue(t)
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil && r != error(errThreadKilled) {
				t.fault = &ThreadCrash{Thread: t.Name, Cause: causeFromPanic(r)}
				if s.firstFault == nil {
					s.firstFault = t.fault
				}
			}
			t.state = Exited
			s.yielded <- struct{}{}
		}()
		body(t)
	}()
	if s.verify {
		s.checkInvariants("thread_add(post)")
	}
	return t
}

// Run implements Scheduler for both schedulers.
func (s *coop) Run() error {
	for {
		t := s.pick()
		if t == nil {
			// No runnable thread: fire the earliest timer if any. A
			// timer callback runs on this goroutine, so a contract
			// violation it trips must be caught here, not crash Run.
			if s.timers != nil {
				fired, err := s.fireTimer(s.timers)
				if err != nil {
					if s.firstFault == nil {
						s.firstFault = err
					}
					break
				}
				if fired {
					continue
				}
			}
			break
		}
		s.dispatch(t)
	}
	if s.firstFault != nil {
		// A crashed thread can never wake its joiners: unwind every
		// remaining thread and surface the fault itself, not the
		// secondary deadlock it caused.
		s.killAll()
		return s.firstFault
	}
	// Unwind service threads so their goroutines do not outlive the
	// scheduler.
	s.killDaemons()
	// All queues drained: report deadlock if live non-daemon threads
	// remain blocked.
	for _, t := range s.threads {
		if t.state == Blocked && !t.Daemon {
			return fmt.Errorf("%w: %s still blocked", ErrDeadlock, t.Name)
		}
	}
	return nil
}

// pick selects and dequeues the next thread under the interleaver's
// rule, or returns nil when every queue is empty. Stale entries
// (exited threads, daemons once only daemons remain) are pruned from
// the queue heads first — dropping them has no cycle cost, so pruning
// order cannot affect the measured run.
func (s *coop) pick() *Thread {
	daemonsOnly := s.onlyDaemonsLeft()
	for _, rq := range s.runqs {
		for len(rq.q) > 0 {
			h := rq.q[0]
			if h.state != Ready || (h.Daemon && daemonsOnly) {
				rq.q = rq.q[1:]
				continue
			}
			break
		}
	}
	s.maybeSteal()
	rq := s.chooseQueue()
	if rq == nil {
		return nil
	}
	t := rq.q[0]
	rq.q = rq.q[1:]
	return t
}

// chooseQueue applies the interleaver rule to the pruned queues:
// within one machine, the runnable vCPU with the lowest cycle count
// (ties by vCPU id); across time domains, the domain holding the
// earliest-enqueued runnable head — which, on machines of one vCPU, is
// exactly a global FIFO.
func (s *coop) chooseQueue() *cpuRun {
	type domain struct {
		best *cpuRun // min (cycles, id) runnable vCPU of the domain
		seq  uint64  // earliest head enqueue stamp in the domain
	}
	doms := make(map[interface{}]*domain)
	var order []interface{} // deterministic iteration
	for _, rq := range s.runqs {
		if len(rq.q) == 0 {
			continue
		}
		var key interface{} = rq // standalone CPU (or nil): its own domain
		if rq.cpu != nil && rq.cpu.Machine() != nil {
			key = rq.cpu.Machine()
		}
		d, ok := doms[key]
		if !ok {
			doms[key] = &domain{best: rq, seq: rq.q[0].seq}
			order = append(order, key)
			continue
		}
		if less(rq.cpu, d.best.cpu) {
			d.best = rq
		}
		if rq.q[0].seq < d.seq {
			d.seq = rq.q[0].seq
		}
	}
	var chosen *domain
	for _, key := range order {
		d := doms[key]
		if chosen == nil || d.seq < chosen.seq {
			chosen = d
		}
	}
	if chosen == nil {
		return nil
	}
	return chosen.best
}

// less orders two vCPUs of one machine: lowest cycle count first, ties
// by ascending id.
func less(a, b *clock.CPU) bool {
	if a.Cycles() != b.Cycles() {
		return a.Cycles() < b.Cycles()
	}
	return a.ID() < b.ID()
}

// maybeSteal migrates at most one waiting thread per dispatch from the
// most loaded vCPU of a machine to an idle sibling whose clock is
// behind: the idle vCPU would otherwise sit parked while runnable work
// queues elsewhere. Only unpinned threads beyond the victim's head are
// taken (never the thread about to run), from the queue tail, and the
// thief pays the steal cost.
func (s *coop) maybeSteal() {
	for _, thief := range s.runqs {
		if len(thief.q) != 0 || thief.cpu == nil || thief.cpu.Machine() == nil {
			continue
		}
		m := thief.cpu.Machine()
		var victim *cpuRun
		for _, rq := range s.runqs {
			if rq == thief || rq.cpu == nil || rq.cpu.Machine() != m || len(rq.q) < 2 {
				continue
			}
			// The thief must actually be behind: stealing onto a vCPU
			// that is ahead of the victim would delay the work.
			if !less(thief.cpu, rq.cpu) {
				continue
			}
			if victim == nil || len(rq.q) > len(victim.q) {
				victim = rq
			}
		}
		if victim == nil {
			continue
		}
		// Take the youngest unpinned waiter from the tail.
		for i := len(victim.q) - 1; i >= 1; i-- {
			t := victim.q[i]
			if t.Pinned || t.state != Ready {
				continue
			}
			victim.q = append(victim.q[:i], victim.q[i+1:]...)
			thief.cpu.Charge(clock.CompSched, clock.CostSteal)
			// The migration happens at the thief's "now": its clock
			// must not lag the queue it joined the thread to.
			t.CPU = thief.cpu
			thief.q = append(thief.q, t)
			s.steals++
			break
		}
	}
}

// Timers implements Scheduler for both schedulers.
func (s *coop) Timers() *Timers { return s.timers }

// Current implements Scheduler for both schedulers.
func (s *coop) Current() *Thread { return s.current }

// ContextSwitches implements Scheduler for both schedulers.
func (s *coop) ContextSwitches() uint64 { return s.switches }

// SwitchCost implements Scheduler for both schedulers.
func (s *coop) SwitchCost() uint64 { return s.switchCost }

// Steals implements Scheduler for both schedulers.
func (s *coop) Steals() uint64 { return s.steals }

// IPIs implements Scheduler for both schedulers.
func (s *coop) IPIs() uint64 { return s.ipis }

// fireTimer runs the earliest timer under a recover: timer callbacks
// execute on the scheduler's own goroutine, where a panic would
// otherwise escape Run entirely.
func (s *coop) fireTimer(timers *Timers) (fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ThreadCrash{Thread: "timer", Cause: causeFromPanic(r)}
		}
	}()
	return timers.fireEarliest(), nil
}

// killDaemons resumes every live daemon with the kill flag set; its
// next blocking call unwinds the goroutine cleanly.
func (s *coop) killDaemons() {
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, t := range s.threads {
			if !t.Daemon || t.state == Exited {
				continue
			}
			t.killed = true
			t.state = Ready
			s.dispatch(t)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// killAll unwinds every live thread, daemon or not — the post-fault
// teardown path, where blocked joiners would otherwise leak goroutines.
func (s *coop) killAll() {
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, t := range s.threads {
			if t.state == Exited {
				continue
			}
			t.killed = true
			t.state = Ready
			s.dispatch(t)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// onlyDaemonsLeft reports whether every non-exited thread is a daemon.
func (s *coop) onlyDaemonsLeft() bool {
	for _, t := range s.threads {
		if !t.Daemon && t.state != Exited {
			return false
		}
	}
	return true
}

// dispatch hands the vCPU to t and waits until it yields, parks or
// exits. The thread's vCPU becomes its machine's current one, so every
// cycle the thread charges lands on the right counter.
func (s *coop) dispatch(t *Thread) {
	s.switches++
	cost := s.switchCost
	if t == s.last {
		// Re-dispatching the thread that just ran is a queue
		// operation, not a full register/stack switch.
		cost = s.opCost
	}
	if t.CPU != nil {
		t.CPU.Charge(clock.CompSched, cost)
		t.CPU.MakeCurrent()
	}
	t.state = Running
	s.current = t
	t.resume <- struct{}{}
	<-s.yielded
	s.last = t
	s.current = nil
}

func (s *coop) yield(t *Thread) {
	if t.killed {
		panic(errThreadKilled)
	}
	s.chargeOp(t.CPU)
	if s.verify {
		s.precondition(t, "yield")
	}
	t.state = Ready
	s.enqueue(t)
	s.yielded <- struct{}{}
	<-t.resume
	if t.killed {
		panic(errThreadKilled)
	}
}

func (s *coop) park(t *Thread) {
	if t.killed {
		panic(errThreadKilled)
	}
	s.chargeOp(t.CPU)
	if s.verify {
		s.precondition(t, "block")
	}
	t.state = Blocked
	s.yielded <- struct{}{}
	<-t.resume
	if t.killed {
		panic(errThreadKilled)
	}
}

func (s *coop) wake(t *Thread) {
	s.chargeOp(t.CPU)
	if t.state != Blocked {
		return
	}
	s.chargeIPI(t)
	t.state = Ready
	s.enqueue(t)
	if s.verify {
		s.checkInvariants("wake(post)")
	}
}

// chargeIPI models the hardware cost of a cross-CPU wake: when the
// waking code executes on a different vCPU of the woken thread's own
// machine (the machine's currently-charging vCPU, which interrupt
// steering may have set), that vCPU pays an IPI send; and if the woken
// thread's vCPU sits idle with a lagging clock, it fast-forwards to
// the IPI's send time — the thread cannot run before the interrupt
// that made it runnable. Wakes on one vCPU, and every wake on a
// single-vCPU machine, charge nothing, so single-core runs are
// untouched. Cross-machine wakes carry no IPI either: machines only
// interact through the NIC, whose per-packet cost already models the
// notification.
func (s *coop) chargeIPI(t *Thread) {
	if t.CPU == nil {
		return
	}
	m := t.CPU.Machine()
	if m == nil {
		return
	}
	src := m.Cur()
	if src == t.CPU {
		return
	}
	src.Charge(clock.CompSched, clock.CostIPI)
	s.ipis++
	if rq := s.byCPU[t.CPU]; rq == nil || len(rq.q) == 0 {
		t.CPU.AdvanceTo(src.Cycles())
	}
}

// precondition checks that the calling thread is the one running.
func (s *coop) precondition(t *Thread, op string) {
	if s.current != t {
		panic(&ContractError{Op: op, Detail: "caller is not the running thread"})
	}
	if t.state != Running {
		panic(&ContractError{Op: op, Detail: "caller state is " + t.state.String()})
	}
	s.checkInvariants(op)
}

// checkInvariants validates the run-queue invariants the Dafny proof
// maintains, now per vCPU: no thread queued twice (on any queue),
// every queued thread Ready, at most one Running thread machine-wide.
func (s *coop) checkInvariants(op string) {
	seen := make(map[*Thread]bool)
	for _, rq := range s.runqs {
		for _, q := range rq.q {
			if seen[q] {
				panic(&ContractError{Op: op, Detail: "duplicate thread in run queue"})
			}
			seen[q] = true
			if q.state != Ready {
				panic(&ContractError{Op: op, Detail: "queued thread is " + q.state.String()})
			}
		}
	}
	running := 0
	for _, t := range s.threads {
		if t.state == Running {
			running++
		}
	}
	if running > 1 {
		panic(&ContractError{Op: op, Detail: "more than one running thread"})
	}
}

// CScheduler is the fast unverified cooperative scheduler.
type CScheduler struct {
	*coop
}

// NewCScheduler returns the unverified scheduler.
func NewCScheduler() *CScheduler {
	s := &CScheduler{coop: newCoop(clock.CostCtxSwitch, 0, false)}
	s.coop.self = s
	return s
}

// VerifiedScheduler is the contract-checked port of the Dafny
// scheduler.
type VerifiedScheduler struct {
	*coop
}

// NewVerifiedScheduler returns the verified scheduler.
func NewVerifiedScheduler() *VerifiedScheduler {
	s := &VerifiedScheduler{coop: newCoop(clock.CostVerifiedCtxSwitch, clock.CostVerifiedSchedOpExtra, true)}
	s.coop.self = s
	return s
}

// CorruptQueueForDemo injects a duplicate run-queue entry, simulating
// a stray cross-compartment write into scheduler state. The next
// contract check catches it. For demos and tests only.
func (s *VerifiedScheduler) CorruptQueueForDemo(t *Thread) {
	rq := s.runq(t.CPU)
	rq.q = append(rq.q, t)
}

var (
	_ Scheduler = (*CScheduler)(nil)
	_ Scheduler = (*VerifiedScheduler)(nil)
)
