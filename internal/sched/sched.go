// Package sched implements FlexOS's cooperative schedulers.
//
// Two interchangeable implementations are provided, mirroring the
// paper's evaluation:
//
//   - CScheduler: the fast, unverified scheduler (76.6 ns context
//     switch on the paper's testbed).
//   - VerifiedScheduler: a port of the paper's Dafny-verified
//     cooperative scheduler. Dafny proves its pre/post-conditions
//     statically; embedding the generated code next to untrusted C
//     requires checking the preconditions at every call, which the
//     prototype does in glue code with interrupts disabled. Here the
//     contracts are executable Go checks run at each API entry, which
//     reproduces both the trust argument (violations are caught, not
//     silently corrupting) and the measured 218.6 ns switch cost.
//
// Threads are goroutines, but scheduling is strictly cooperative and
// deterministic: exactly one thread runs at a time, handed control
// through an unbuffered channel, and the run queue is FIFO. Each thread
// is bound to a virtual CPU (a machine) to which its context switches
// are charged.
package sched

import (
	"errors"
	"fmt"

	"flexos/internal/clock"
)

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	Ready State = iota
	Running
	Blocked
	Exited
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thread is one cooperative thread of execution.
type Thread struct {
	Name string
	CPU  *clock.CPU // the machine this thread runs on
	// Daemon marks service threads (e.g. the tcpip thread) that never
	// exit: they do not keep the scheduler alive and a daemon parked
	// at shutdown is not a deadlock.
	Daemon bool
	// Deadline is the thread's current absolute virtual-clock deadline
	// (0 = none). The runtime stamps it onto every gate CallFrame the
	// thread issues, which is how a budget set at the top of a request
	// propagates through nested cross-compartment calls — and why it
	// is carried per-thread: a deadline must survive the thread
	// parking while an unrelated thread (with its own deadline) runs.
	// Managed by rt.Env.WithDeadline; tightest deadline wins.
	Deadline uint64

	state  State
	sched  Scheduler
	resume chan struct{}
	killed bool
	fault  error // panic captured from the thread body
}

// State reports the thread's current state.
func (t *Thread) State() State { return t.state }

// Fault reports the error a thread body panicked with, if any.
func (t *Thread) Fault() error { return t.fault }

// Yield gives up the CPU; the thread stays runnable.
func (t *Thread) Yield() { t.sched.yield(t) }

// Park blocks the thread until another thread (or a timer) wakes it.
func (t *Thread) Park() { t.sched.park(t) }

// Wake makes a parked thread runnable again. Waking a thread that is
// not blocked is a no-op (like a spurious wakeup).
func (t *Thread) Wake() { t.sched.wake(t) }

// Scheduler is the API surface every FlexOS scheduler exposes — the
// [API] clause of its library metadata: thread_add, thread_rm, yield.
type Scheduler interface {
	// Spawn creates a thread bound to cpu and adds it to the run
	// queue (thread_add).
	Spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread
	// Run dispatches threads until all have exited. It returns
	// ErrDeadlock if every live thread is blocked with no pending
	// timer, and the first thread fault otherwise captured.
	Run() error
	// Timers gives access to the virtual-time timer wheel.
	Timers() *Timers
	// ContextSwitches reports the number of dispatches so far.
	ContextSwitches() uint64
	// SwitchCost reports the per-context-switch cycle cost.
	SwitchCost() uint64
	// Current reports the thread running right now (nil between
	// dispatches, e.g. from a timer callback). The runtime uses it to
	// find the deadline a gate call should inherit and to park callers
	// under the block admission policy.
	Current() *Thread

	yield(*Thread)
	park(*Thread)
	wake(*Thread)
}

// ErrDeadlock is returned by Run when no thread can make progress.
var ErrDeadlock = errors.New("sched: all threads blocked (deadlock)")

// errThreadKilled unwinds a daemon thread at scheduler shutdown; it is
// never surfaced as a fault.
var errThreadKilled = errors.New("sched: thread killed at shutdown")

// ContractError reports a violated pre/post-condition or invariant in
// the verified scheduler.
type ContractError struct {
	Op     string
	Detail string
}

func (e *ContractError) Error() string {
	return fmt.Sprintf("sched: contract violation in %s: %s", e.Op, e.Detail)
}

// coop is the shared mechanics of both schedulers.
type coop struct {
	self       Scheduler // the outer scheduler (for Thread.sched)
	queue      []*Thread
	threads    []*Thread
	current    *Thread
	last       *Thread
	yielded    chan struct{}
	switches   uint64
	switchCost uint64
	opCost     uint64
	opExtra    uint64 // verified-scheduler contract-check surcharge
	verify     bool
	firstFault error
}

func newCoop(switchCost, opExtra uint64, verify bool) *coop {
	return &coop{
		yielded:    make(chan struct{}),
		switchCost: switchCost,
		opCost:     clock.CostSchedOp,
		opExtra:    opExtra,
		verify:     verify,
	}
}

// chargeOp charges a scheduler API entry to the calling machine.
func (s *coop) chargeOp(cpu *clock.CPU) {
	if cpu == nil {
		return
	}
	cpu.Charge(clock.CompSched, s.opCost+s.opExtra)
}

func (s *coop) spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread {
	t := &Thread{Name: name, CPU: cpu, sched: s.self, state: Ready, resume: make(chan struct{})}
	s.chargeOp(cpu)
	if s.verify {
		// thread_add precondition: the thread must not already be
		// added. Spawn constructs a fresh thread so the check is on
		// the queue invariant instead.
		s.checkInvariants("thread_add")
	}
	s.threads = append(s.threads, t)
	s.queue = append(s.queue, t)
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil && r != error(errThreadKilled) {
				t.fault = &ThreadCrash{Thread: t.Name, Cause: causeFromPanic(r)}
				if s.firstFault == nil {
					s.firstFault = t.fault
				}
			}
			t.state = Exited
			s.yielded <- struct{}{}
		}()
		body(t)
	}()
	if s.verify {
		s.checkInvariants("thread_add(post)")
	}
	return t
}

func (s *coop) run(timers *Timers) error {
	for {
		if len(s.queue) == 0 {
			// No runnable thread: fire the earliest timer if any. A
			// timer callback runs on this goroutine, so a contract
			// violation it trips must be caught here, not crash Run.
			if timers != nil {
				fired, err := s.fireTimer(timers)
				if err != nil {
					if s.firstFault == nil {
						s.firstFault = err
					}
					break
				}
				if fired {
					continue
				}
			}
			break
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		if t.state != Ready {
			// A stale entry (e.g. the thread exited after a contract
			// violation, or a corrupted queue under test) must not be
			// dispatched: its goroutine is gone.
			continue
		}
		if t.Daemon && s.onlyDaemonsLeft() {
			// The workload is done; do not keep dispatching service
			// threads among themselves.
			continue
		}
		s.dispatch(t)
	}
	if s.firstFault != nil {
		// A crashed thread can never wake its joiners: unwind every
		// remaining thread and surface the fault itself, not the
		// secondary deadlock it caused.
		s.killAll()
		return s.firstFault
	}
	// Unwind service threads so their goroutines do not outlive the
	// scheduler.
	s.killDaemons()
	// All queues drained: report deadlock if live non-daemon threads
	// remain blocked.
	for _, t := range s.threads {
		if t.state == Blocked && !t.Daemon {
			return fmt.Errorf("%w: %s still blocked", ErrDeadlock, t.Name)
		}
	}
	return nil
}

// fireTimer runs the earliest timer under a recover: timer callbacks
// execute on the scheduler's own goroutine, where a panic would
// otherwise escape Run entirely.
func (s *coop) fireTimer(timers *Timers) (fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ThreadCrash{Thread: "timer", Cause: causeFromPanic(r)}
		}
	}()
	return timers.fireEarliest(), nil
}

// killDaemons resumes every live daemon with the kill flag set; its
// next blocking call unwinds the goroutine cleanly.
func (s *coop) killDaemons() {
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, t := range s.threads {
			if !t.Daemon || t.state == Exited {
				continue
			}
			t.killed = true
			t.state = Ready
			s.dispatch(t)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// killAll unwinds every live thread, daemon or not — the post-fault
// teardown path, where blocked joiners would otherwise leak goroutines.
func (s *coop) killAll() {
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, t := range s.threads {
			if t.state == Exited {
				continue
			}
			t.killed = true
			t.state = Ready
			s.dispatch(t)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// onlyDaemonsLeft reports whether every non-exited thread is a daemon.
func (s *coop) onlyDaemonsLeft() bool {
	for _, t := range s.threads {
		if !t.Daemon && t.state != Exited {
			return false
		}
	}
	return true
}

// dispatch hands the CPU to t and waits until it yields, parks or exits.
func (s *coop) dispatch(t *Thread) {
	s.switches++
	cost := s.switchCost
	if t == s.last {
		// Re-dispatching the thread that just ran is a queue
		// operation, not a full register/stack switch.
		cost = s.opCost
	}
	if t.CPU != nil {
		t.CPU.Charge(clock.CompSched, cost)
	}
	t.state = Running
	s.current = t
	t.resume <- struct{}{}
	<-s.yielded
	s.last = t
	s.current = nil
}

func (s *coop) yield(t *Thread) {
	if t.killed {
		panic(errThreadKilled)
	}
	s.chargeOp(t.CPU)
	if s.verify {
		s.precondition(t, "yield")
	}
	t.state = Ready
	s.queue = append(s.queue, t)
	s.yielded <- struct{}{}
	<-t.resume
	if t.killed {
		panic(errThreadKilled)
	}
}

func (s *coop) park(t *Thread) {
	if t.killed {
		panic(errThreadKilled)
	}
	s.chargeOp(t.CPU)
	if s.verify {
		s.precondition(t, "block")
	}
	t.state = Blocked
	s.yielded <- struct{}{}
	<-t.resume
	if t.killed {
		panic(errThreadKilled)
	}
}

func (s *coop) wake(t *Thread) {
	s.chargeOp(t.CPU)
	if t.state != Blocked {
		return
	}
	t.state = Ready
	s.queue = append(s.queue, t)
	if s.verify {
		s.checkInvariants("wake(post)")
	}
}

// precondition checks that the calling thread is the one running.
func (s *coop) precondition(t *Thread, op string) {
	if s.current != t {
		panic(&ContractError{Op: op, Detail: "caller is not the running thread"})
	}
	if t.state != Running {
		panic(&ContractError{Op: op, Detail: "caller state is " + t.state.String()})
	}
	s.checkInvariants(op)
}

// checkInvariants validates the run-queue invariants the Dafny proof
// maintains: no duplicates, every queued thread Ready, at most one
// Running thread.
func (s *coop) checkInvariants(op string) {
	seen := make(map[*Thread]bool, len(s.queue))
	for _, q := range s.queue {
		if seen[q] {
			panic(&ContractError{Op: op, Detail: "duplicate thread in run queue"})
		}
		seen[q] = true
		if q.state != Ready {
			panic(&ContractError{Op: op, Detail: "queued thread is " + q.state.String()})
		}
	}
	running := 0
	for _, t := range s.threads {
		if t.state == Running {
			running++
		}
	}
	if running > 1 {
		panic(&ContractError{Op: op, Detail: "more than one running thread"})
	}
}

// CScheduler is the fast unverified cooperative scheduler.
type CScheduler struct {
	*coop
	timers *Timers
}

// NewCScheduler returns the unverified scheduler.
func NewCScheduler() *CScheduler {
	s := &CScheduler{coop: newCoop(clock.CostCtxSwitch, 0, false)}
	s.coop.self = s
	s.timers = newTimers()
	return s
}

// Spawn implements Scheduler.
func (s *CScheduler) Spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread {
	return s.spawn(name, cpu, body)
}

// Run implements Scheduler.
func (s *CScheduler) Run() error { return s.run(s.timers) }

// Timers implements Scheduler.
func (s *CScheduler) Timers() *Timers { return s.timers }

// Current implements Scheduler.
func (s *CScheduler) Current() *Thread { return s.current }

// ContextSwitches implements Scheduler.
func (s *CScheduler) ContextSwitches() uint64 { return s.switches }

// SwitchCost implements Scheduler.
func (s *CScheduler) SwitchCost() uint64 { return s.switchCost }

// VerifiedScheduler is the contract-checked port of the Dafny
// scheduler.
type VerifiedScheduler struct {
	*coop
	timers *Timers
}

// NewVerifiedScheduler returns the verified scheduler.
func NewVerifiedScheduler() *VerifiedScheduler {
	s := &VerifiedScheduler{coop: newCoop(clock.CostVerifiedCtxSwitch, clock.CostVerifiedSchedOpExtra, true)}
	s.coop.self = s
	s.timers = newTimers()
	return s
}

// Spawn implements Scheduler.
func (s *VerifiedScheduler) Spawn(name string, cpu *clock.CPU, body func(*Thread)) *Thread {
	return s.spawn(name, cpu, body)
}

// Run implements Scheduler.
func (s *VerifiedScheduler) Run() error { return s.run(s.timers) }

// Timers implements Scheduler.
func (s *VerifiedScheduler) Timers() *Timers { return s.timers }

// Current implements Scheduler.
func (s *VerifiedScheduler) Current() *Thread { return s.current }

// CorruptQueueForDemo injects a duplicate run-queue entry, simulating
// a stray cross-compartment write into scheduler state. The next
// contract check catches it. For demos and tests only.
func (s *VerifiedScheduler) CorruptQueueForDemo(t *Thread) {
	s.queue = append(s.queue, t)
}

// ContextSwitches implements Scheduler.
func (s *VerifiedScheduler) ContextSwitches() uint64 { return s.switches }

// SwitchCost implements Scheduler.
func (s *VerifiedScheduler) SwitchCost() uint64 { return s.switchCost }

var (
	_ Scheduler = (*CScheduler)(nil)
	_ Scheduler = (*VerifiedScheduler)(nil)
)
