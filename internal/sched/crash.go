package sched

import (
	"fmt"

	"flexos/internal/fault"
)

// ThreadCrash reports that a thread body (or a timer callback) died on
// an uncontained panic. On a compartmentalized image protection faults
// are converted to fault.Trap errors at the gate and never reach the
// scheduler; a ThreadCrash surfacing from Run therefore means the image
// had no isolation boundary between the fault and the thread — the
// blast radius of the uncompartmentalized baseline.
type ThreadCrash struct {
	Thread string
	Cause  error
}

// Error implements error.
func (c *ThreadCrash) Error() string {
	return fmt.Sprintf("sched: thread %s crashed: %v", c.Thread, c.Cause)
}

// Unwrap exposes the panic cause to errors.Is/As.
func (c *ThreadCrash) Unwrap() error { return c.Cause }

// causeFromPanic types a recovered panic value. Protection-fault traps
// pass through as themselves; contract violations become KindSched
// traps (scheduler state was corrupted — the verified scheduler's
// executable contracts caught a stray write); anything else is kept as
// a plain error.
func causeFromPanic(r any) error {
	switch v := r.(type) {
	case *fault.Trap:
		return v
	case *ContractError:
		return &fault.Trap{Comp: "sched", Kind: fault.KindSched, PC: v.Op, Cause: v}
	case error:
		return v
	default:
		return fmt.Errorf("panic: %v", r)
	}
}
