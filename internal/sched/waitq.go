package sched

// WaitQueue is a FIFO queue of parked threads. It is the scheduler-side
// half of blocking synchronization: LibC's semaphores (and through
// them the network stack's socket buffers) park and wake threads here.
// The paper's Fig. 5 analysis hinges on exactly this call chain —
// netstack -> semaphore (LibC) -> wait queue (scheduler) — crossing
// compartment boundaries on every blocking operation.
type WaitQueue struct {
	waiters []*Thread
}

// Len reports how many threads are waiting.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks the calling thread until a Signal reaches it.
func (q *WaitQueue) Wait(t *Thread) {
	q.waiters = append(q.waiters, t)
	t.Park()
}

// Signal wakes the oldest waiter, if any, and reports whether one was
// woken.
func (q *WaitQueue) Signal() bool {
	if len(q.waiters) == 0 {
		return false
	}
	t := q.waiters[0]
	q.waiters = q.waiters[1:]
	t.Wake()
	return true
}

// Broadcast wakes every waiter and reports how many were woken.
func (q *WaitQueue) Broadcast() int {
	n := len(q.waiters)
	for _, t := range q.waiters {
		t.Wake()
	}
	q.waiters = nil
	return n
}
