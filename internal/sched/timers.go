package sched

import "sort"

// Timers is a virtual-time timer wheel. Deadlines are expressed in
// scheduler ticks — an abstract monotonic counter advanced when the
// run queue drains and the earliest timer fires (the classic
// discrete-event-simulation "advance to next event" rule). The network
// stack uses it for retransmission and delayed delivery.
type Timers struct {
	now     uint64
	pending []*Timer
	seq     uint64
}

// Timer is one pending callback.
type Timer struct {
	At      uint64
	fn      func()
	seq     uint64
	stopped bool
}

// Stop cancels the timer; firing a stopped timer is a no-op.
func (t *Timer) Stop() { t.stopped = true }

func newTimers() *Timers { return &Timers{} }

// Now reports the current virtual tick.
func (ts *Timers) Now() uint64 { return ts.now }

// After schedules fn to run delay ticks from now.
func (ts *Timers) After(delay uint64, fn func()) *Timer {
	t := &Timer{At: ts.now + delay, fn: fn, seq: ts.seq}
	ts.seq++
	ts.pending = append(ts.pending, t)
	return t
}

// Pending reports the number of live pending timers.
func (ts *Timers) Pending() int {
	n := 0
	for _, t := range ts.pending {
		if !t.stopped {
			n++
		}
	}
	return n
}

// fireEarliest advances virtual time to the earliest live timer and
// runs it. It reports whether a timer fired.
func (ts *Timers) fireEarliest() bool {
	live := ts.pending[:0]
	for _, t := range ts.pending {
		if !t.stopped {
			live = append(live, t)
		}
	}
	ts.pending = live
	if len(ts.pending) == 0 {
		return false
	}
	sort.Slice(ts.pending, func(i, j int) bool {
		if ts.pending[i].At != ts.pending[j].At {
			return ts.pending[i].At < ts.pending[j].At
		}
		return ts.pending[i].seq < ts.pending[j].seq
	})
	t := ts.pending[0]
	ts.pending = ts.pending[1:]
	if t.At > ts.now {
		ts.now = t.At
	}
	t.fn()
	return true
}
