package metrics

import (
	"fmt"
	"sort"
	"strings"

	"flexos/internal/clock"
)

// Class buckets a clock component for the crossing/compute/stall view:
// where a cycle went, independent of which micro-library spent it.
type Class string

// Attribution classes.
const (
	// ClassCrossing is isolation-boundary work: gate entry/exit, VMM
	// notifications and stalls, cross-compartment boundary copies.
	ClassCrossing Class = "crossing"
	// ClassCompute is the libraries' own work (including hardening
	// instrumentation and fault containment, which run inside a
	// compartment).
	ClassCompute Class = "compute"
	// ClassStall is time a vCPU spent not working: idle fast-forwards
	// from cross-CPU wakes plus the trailing gap to the makespan.
	ClassStall Class = "stall"
)

// ClassOf classifies a clock component.
func ClassOf(c clock.Component) Class {
	switch c {
	case clock.CompGate, clock.CompVMM, clock.CompCopy:
		return ClassCrossing
	case clock.CompIdle:
		return ClassStall
	default:
		return ClassCompute
	}
}

// Row is one (vCPU, component) cell of an attribution: Cycles spent on
// CPU in Component, which lives in Compartment ("" for infrastructure
// that belongs to no single compartment — gates, the VMM, idle time).
type Row struct {
	CPU         int             `json:"cpu"`
	Component   clock.Component `json:"component"`
	Compartment string          `json:"compartment,omitempty"`
	Class       Class           `json:"class"`
	Cycles      uint64          `json:"cycles"`
}

// Attribution is a complete cycle-attribution breakdown of one
// machine's run: every cycle of capacity (makespan × vCPUs) assigned
// to a (vCPU, component) row, including the trailing idle gap of each
// vCPU that finished before the makespan. Conservation — Attributed()
// == Capacity() — is an invariant, enforced by Check and pinned by
// TestAttributionConservation.
type Attribution struct {
	VCPUs    int    `json:"vcpus"`
	Makespan uint64 `json:"makespan_cycles"`
	// PerCPUCycles is each vCPU's final counter (before the trailing
	// idle row tops it up to the makespan).
	PerCPUCycles []uint64 `json:"per_cpu_cycles"`
	Rows         []Row    `json:"rows"`
}

// Attribute computes the attribution of a machine's run. compOf maps a
// clock component to the compartment it was built into ("" for
// infrastructure components); nil leaves compartments blank.
func Attribute(m *clock.Machine, compOf func(clock.Component) string) *Attribution {
	a := &Attribution{VCPUs: m.NCPU(), Makespan: m.Makespan()}
	for _, cpu := range m.CPUs() {
		a.PerCPUCycles = append(a.PerCPUCycles, cpu.Cycles())
		ledger := cpu.ByComponent()
		comps := make([]clock.Component, 0, len(ledger))
		for c := range ledger {
			comps = append(comps, c)
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
		var idleExtra uint64
		if cpu.Cycles() < a.Makespan {
			// The vCPU finished early: the gap to the machine's
			// makespan is stall time, attributed like a final idle
			// fast-forward so capacity is conserved.
			idleExtra = a.Makespan - cpu.Cycles()
		}
		seenIdle := false
		for _, c := range comps {
			cyc := ledger[c]
			if c == clock.CompIdle {
				cyc += idleExtra
				seenIdle = true
			}
			row := Row{CPU: cpu.ID(), Component: c, Class: ClassOf(c), Cycles: cyc}
			if compOf != nil {
				row.Compartment = compOf(c)
			}
			a.Rows = append(a.Rows, row)
		}
		if !seenIdle && idleExtra > 0 {
			a.Rows = append(a.Rows, Row{
				CPU: cpu.ID(), Component: clock.CompIdle,
				Class: ClassStall, Cycles: idleExtra,
			})
		}
	}
	return a
}

// Attributed sums every row's cycles.
func (a *Attribution) Attributed() uint64 {
	var sum uint64
	for _, r := range a.Rows {
		sum += r.Cycles
	}
	return sum
}

// Capacity is the machine's total cycle capacity over the run:
// makespan × vCPUs.
func (a *Attribution) Capacity() uint64 {
	return a.Makespan * uint64(a.VCPUs)
}

// Check verifies conservation: per vCPU, the attributed rows must sum
// exactly to the makespan, and in total to Capacity().
func (a *Attribution) Check() error {
	perCPU := make(map[int]uint64)
	for _, r := range a.Rows {
		perCPU[r.CPU] += r.Cycles
	}
	for cpu := 0; cpu < a.VCPUs; cpu++ {
		if got := perCPU[cpu]; got != a.Makespan {
			return fmt.Errorf("metrics: vCPU %d attribution %d != makespan %d (off by %d)",
				cpu, got, a.Makespan, int64(got)-int64(a.Makespan))
		}
	}
	if got, want := a.Attributed(), a.Capacity(); got != want {
		return fmt.Errorf("metrics: attributed %d != capacity %d", got, want)
	}
	return nil
}

// ByComponent aggregates rows across vCPUs.
func (a *Attribution) ByComponent() map[clock.Component]uint64 {
	out := make(map[clock.Component]uint64)
	for _, r := range a.Rows {
		out[r.Component] += r.Cycles
	}
	return out
}

// ByClass aggregates rows into the crossing/compute/stall split.
func (a *Attribution) ByClass() map[Class]uint64 {
	out := make(map[Class]uint64)
	for _, r := range a.Rows {
		out[r.Class] += r.Cycles
	}
	return out
}

// Summary is the compact share-of-capacity view embedded in experiment
// results (and the BENCH_*.json sweeps): what fraction of the
// machine's capacity went to crossings, compute and stalls.
type Summary struct {
	CrossingPct float64 `json:"crossing_pct"`
	ComputePct  float64 `json:"compute_pct"`
	StallPct    float64 `json:"stall_pct"`
}

// Summary reduces the attribution to class shares of capacity.
func (a *Attribution) Summary() Summary {
	cap := a.Capacity()
	if cap == 0 {
		return Summary{}
	}
	by := a.ByClass()
	pct := func(c Class) float64 { return 100 * float64(by[c]) / float64(cap) }
	return Summary{
		CrossingPct: pct(ClassCrossing),
		ComputePct:  pct(ClassCompute),
		StallPct:    pct(ClassStall),
	}
}

// Format renders the attribution table: per-component rows (largest
// first, compartment and class alongside, share of capacity), the
// class split, per-vCPU counters, and the conservation line that
// reconciles attributed cycles against the machine's elapsed time.
func (a *Attribution) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle attribution: %d vCPU(s), makespan %d cy (%v), capacity %d cy\n",
		a.VCPUs, a.Makespan, clock.CyclesToDuration(a.Makespan), a.Capacity())
	byComp := a.ByComponent()
	type agg struct {
		comp        clock.Component
		compartment string
		class       Class
		cyc         uint64
	}
	rows := make([]agg, 0, len(byComp))
	for _, r := range a.Rows {
		found := false
		for i := range rows {
			if rows[i].comp == r.Component {
				found = true
				break
			}
		}
		if !found {
			rows = append(rows, agg{r.Component, r.Compartment, r.Class, byComp[r.Component]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cyc != rows[j].cyc {
			return rows[i].cyc > rows[j].cyc
		}
		return rows[i].comp < rows[j].comp
	})
	cap := a.Capacity()
	if cap == 0 {
		cap = 1
	}
	fmt.Fprintf(&b, "  %-12s %-14s %-9s %14s %8s\n", "component", "compartment", "class", "cycles", "share")
	for _, r := range rows {
		compartment := r.compartment
		if compartment == "" {
			compartment = "-"
		}
		fmt.Fprintf(&b, "  %-12s %-14s %-9s %14d %7.1f%%\n",
			r.comp, compartment, r.class, r.cyc, 100*float64(r.cyc)/float64(cap))
	}
	by := a.ByClass()
	fmt.Fprintf(&b, "  classes: crossing %.1f%%  compute %.1f%%  stall %.1f%%\n",
		100*float64(by[ClassCrossing])/float64(cap),
		100*float64(by[ClassCompute])/float64(cap),
		100*float64(by[ClassStall])/float64(cap))
	for i, cyc := range a.PerCPUCycles {
		fmt.Fprintf(&b, "  cpu%-2d %14d cy busy, %14d cy trailing idle\n", i, cyc, a.Makespan-cyc)
	}
	if err := a.Check(); err != nil {
		fmt.Fprintf(&b, "  CONSERVATION VIOLATED: %v\n", err)
	} else {
		fmt.Fprintf(&b, "  conserved: attributed %d cy == makespan %d cy x %d vCPU(s)\n",
			a.Attributed(), a.Makespan, a.VCPUs)
	}
	return b.String()
}
