// Package metrics is the simulator's always-on observability layer: a
// registry of counters and fixed-bucket cycle histograms keyed by
// (compartment, backend, vCPU), fed from the existing charge points —
// gate crossings, per-vCPU clock ledgers, NIC queue activity, runtime
// shed/breaker/restart events, shared-pool lifecycle — so a completed
// run yields a full cycle-attribution breakdown instead of a flat
// trace dump.
//
// The hot path allocates nothing: instruments are resolved once (a map
// lookup at first sight of a label) and callers hold the returned
// *Counter / *Histogram, whose Add/Observe are plain arithmetic on
// fixed storage. Snapshots are taken off the hot path and read the
// live counters directly, so they stay exact even when the bounded
// trace ring has dropped events.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
)

// Label keys one instrument: the compartment (or pseudo-compartment,
// e.g. a crossing pair "comp0->comp1" or a NIC queue "queue2"), the
// isolation backend of the image, and the vCPU the activity ran on.
// CPU -1 means "machine-wide" (not attributable to one vCPU).
type Label struct {
	Comp    string `json:"comp"`
	Backend string `json:"backend"`
	CPU     int    `json:"cpu"`
}

// Counter is a monotonically increasing event/cycle count. Not safe
// for concurrent use — the simulator is single-goroutine by design.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v }

// NumBuckets is the fixed histogram bucket count: log2 buckets
// [0,1), [1,2), [2,4), ... with the last bucket absorbing overflow.
// 2^30 cycles is ~0.5 s of simulated time, far past any single call.
const NumBuckets = 32

// Histogram is a fixed-bucket cycle histogram: bucket i counts
// observations whose value has bit length i (so bucket boundaries are
// powers of two), plus an exact sum and count. Observe is
// allocation-free.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one cycle measurement.
func (h *Histogram) Observe(cycles uint64) {
	b := bits.Len64(cycles)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += cycles
}

// Count reports how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the exact sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean reports the exact mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() [NumBuckets]uint64 { return h.buckets }

// Quantile reports an upper bound (the bucket's exclusive power-of-two
// boundary) for the q-quantile, q in [0,1].
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return 1 << (NumBuckets - 1)
}

// key identifies one instrument in the registry.
type key struct {
	name string
	l    Label
}

// Registry holds the instruments of one machine. Resolution
// (Counter/Histogram) is setup-path: hot paths resolve once and hold
// the pointer.
type Registry struct {
	counters map[key]*Counter
	hists    map[key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[key]*Counter),
		hists:    make(map[key]*Histogram),
	}
}

// Counter returns the counter for (name, l), creating it on first use.
func (r *Registry) Counter(name string, l Label) *Counter {
	k := key{name, l}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Histogram returns the histogram for (name, l), creating it on first
// use.
func (r *Registry) Histogram(name string, l Label) *Histogram {
	k := key{name, l}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// CounterSample is one counter's value at snapshot time.
type CounterSample struct {
	Name string `json:"name"`
	Label
	Value uint64 `json:"value"`
}

// HistogramSample is one histogram's state at snapshot time.
type HistogramSample struct {
	Name string `json:"name"`
	Label
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50_le"`
	P99   uint64  `json:"p99_le"`
}

// Snapshot is a deterministic, export-ready copy of a registry (plus
// any snapshot-time counters merged in by the caller).
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Histograms []HistogramSample `json:"histograms"`
}

// less orders labels deterministically.
func (l Label) less(o Label) bool {
	if l.Comp != o.Comp {
		return l.Comp < o.Comp
	}
	if l.Backend != o.Backend {
		return l.Backend < o.Backend
	}
	return l.CPU < o.CPU
}

// String implements fmt.Stringer.
func (l Label) String() string {
	if l.CPU < 0 {
		return fmt.Sprintf("%s[%s]", l.Comp, l.Backend)
	}
	return fmt.Sprintf("%s[%s,cpu%d]", l.Comp, l.Backend, l.CPU)
}

// Snapshot copies every instrument into sorted sample slices.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: k.name, Label: k.l, Value: c.Value()})
	}
	for k, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSample{
			Name: k.name, Label: k.l,
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		})
	}
	s.Sort()
	return s
}

// Sort orders the samples deterministically (name, then label).
func (s *Snapshot) Sort() {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Label.less(s.Counters[j].Label)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].Label.less(s.Histograms[j].Label)
	})
}

// Counter reports the summed value of every counter with the given
// name across all labels.
func (s *Snapshot) Counter(name string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

// Add appends a snapshot-time counter sample (for values kept as plain
// fields on their component — NIC queue counters, pool stats,
// supervisor stats — which are copied in when the snapshot is taken).
func (s *Snapshot) Add(name string, l Label, v uint64) {
	s.Counters = append(s.Counters, CounterSample{Name: name, Label: l, Value: v})
}
