package metrics

import (
	"strings"
	"testing"

	"flexos/internal/clock"
)

func TestCounterAndRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	l := Label{Comp: "comp0->comp1", Backend: "mpk-shared", CPU: 0}
	c1 := r.Counter("gate_crossings", l)
	c1.Inc()
	c1.Add(4)
	// Resolving the same (name, label) must return the same instrument:
	// that identity is what lets hot paths resolve once and hold the
	// pointer.
	c2 := r.Counter("gate_crossings", l)
	if c1 != c2 {
		t.Fatal("same (name,label) resolved to different counters")
	}
	if got := c2.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	other := r.Counter("gate_crossings", Label{Comp: "comp0->comp1", Backend: "mpk-shared", CPU: 1})
	if other == c1 {
		t.Fatal("different CPU label shared an instrument")
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 100 + 1<<20); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	b := h.Buckets()
	// bit lengths: 0->0, 1->1, 2,3->2, 4->3, 100->7, 1<<20->21
	if b[0] != 1 || b[1] != 1 || b[2] != 2 || b[3] != 1 || b[7] != 1 || b[21] != 1 {
		t.Fatalf("unexpected bucket layout: %v", b)
	}
	var total uint64
	for _, n := range b {
		total += n
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
	if q := h.Quantile(1.0); q < 1<<20 {
		t.Fatalf("p100 bound %d < max observation", q)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	c := &Counter{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(137)
		c.Add(3)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.1f times per op, want 0", allocs)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", Label{Comp: "z", Backend: "x", CPU: 1}).Add(1)
	r.Counter("a", Label{Comp: "m", Backend: "x", CPU: 0}).Add(2)
	r.Counter("a", Label{Comp: "m", Backend: "x", CPU: 2}).Add(3)
	r.Histogram("h", Label{Comp: "q", Backend: "x", CPU: 0}).Observe(10)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1.Counters) != 3 || len(s1.Histograms) != 1 {
		t.Fatalf("snapshot sizes: %d counters, %d histograms", len(s1.Counters), len(s1.Histograms))
	}
	for i := range s1.Counters {
		if s1.Counters[i] != s2.Counters[i] {
			t.Fatalf("snapshot order not deterministic at %d: %v vs %v", i, s1.Counters[i], s2.Counters[i])
		}
	}
	if s1.Counters[0].Name != "a" || s1.Counters[0].CPU != 0 {
		t.Fatalf("unexpected first sample: %+v", s1.Counters[0])
	}
	if got := s1.Counter("a"); got != 5 {
		t.Fatalf("summed counter a = %d, want 5", got)
	}
}

func TestAttributeConservesCapacity(t *testing.T) {
	m := clock.NewMachine(3)
	m.CPU(0).Charge(clock.CompApp, 1000)
	m.CPU(0).Charge(clock.CompGate, 50)
	m.CPU(1).Charge(clock.CompNet, 400)
	m.CPU(1).Charge(clock.CompIdle, 100)
	// vCPU 2 stays idle the whole run.
	a := Attribute(m, nil)
	if a.Makespan != 1050 {
		t.Fatalf("makespan = %d, want 1050", a.Makespan)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Attributed(), uint64(3*1050); got != want {
		t.Fatalf("attributed = %d, want %d", got, want)
	}
	by := a.ByComponent()
	// vCPU 1's idle: 100 charged + 550 trailing; vCPU 2: 1050 trailing.
	if by[clock.CompIdle] != 100+550+1050 {
		t.Fatalf("idle = %d, want 1700", by[clock.CompIdle])
	}
	if by[clock.CompGate] != 50 || by[clock.CompApp] != 1000 || by[clock.CompNet] != 400 {
		t.Fatalf("unexpected component split: %v", by)
	}
	cls := a.ByClass()
	if cls[ClassCrossing] != 50 || cls[ClassCompute] != 1400 || cls[ClassStall] != 1700 {
		t.Fatalf("unexpected class split: %v", cls)
	}
}

func TestAttributeSingleCPUMatchesLedger(t *testing.T) {
	m := clock.NewMachine(1)
	m.CPU(0).Charge(clock.CompApp, 123)
	m.CPU(0).Charge(clock.CompVMM, 7)
	a := Attribute(m, func(c clock.Component) string {
		if c == clock.CompApp {
			return "comp0"
		}
		return ""
	})
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.Attributed() != 130 || a.Makespan != 130 {
		t.Fatalf("attributed %d makespan %d, want 130/130", a.Attributed(), a.Makespan)
	}
	var appRow *Row
	for i := range a.Rows {
		if a.Rows[i].Component == clock.CompApp {
			appRow = &a.Rows[i]
		}
	}
	if appRow == nil || appRow.Compartment != "comp0" {
		t.Fatalf("app row missing or unmapped: %+v", appRow)
	}
	s := a.Summary()
	if s.CrossingPct == 0 || s.ComputePct == 0 || s.StallPct != 0 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	// Format must include the conservation line, not the violation one.
	out := a.Format()
	if !strings.Contains(out, "conserved:") || strings.Contains(out, "VIOLATED") {
		t.Fatalf("format output missing conservation line:\n%s", out)
	}
}
