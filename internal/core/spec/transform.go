package spec

import "fmt"

// Software-hardening technique names used in Library.Hardened.
const (
	// TechCFI is control-flow integrity: forward edges are restricted
	// to targets found by control-flow analysis.
	TechCFI = "cfi"
	// TechDFI is data-flow integrity (ASAN-style in the prototype):
	// writes are restricted to what data-flow analysis observes.
	TechDFI = "dfi"
)

// ErrNotApplicable reports an SH transformation that would not change
// the library's metadata.
var ErrNotApplicable = fmt.Errorf("spec: hardening not applicable")

// ApplyCFI returns a copy of l with control-flow integrity enabled:
// a library that previously declared Call(*) is transformed into
// Call(func list) where the list is populated by a standard
// control-flow analysis (carried in l.Analysis.Calls).
func ApplyCFI(l *Library) (*Library, error) {
	if !l.Spec.Calls.All {
		return nil, fmt.Errorf("%w: %s does not declare Call(*)", ErrNotApplicable, l.Name)
	}
	out := l.Clone()
	out.Spec.Calls = NewCallSet(l.Analysis.Calls...)
	out.Hardened = append(out.Hardened, TechCFI)
	return out, nil
}

// ApplyDFI returns a copy of l with data-flow integrity (DFI/ASAN)
// enabled: if the data-flow graph shows all the library's writes go to
// its own (and shared) data, Write(*) is narrowed accordingly; reads
// are narrowed the same way.
func ApplyDFI(l *Library) (*Library, error) {
	if !l.Spec.Writes.All && !l.Spec.Reads.All {
		return nil, fmt.Errorf("%w: %s declares no wildcard accesses", ErrNotApplicable, l.Name)
	}
	out := l.Clone()
	if l.Spec.Writes.All {
		w := l.Analysis.Writes
		if w.Empty() {
			// Without analysis results, the instrumentation still
			// confines writes to own+shared data (out-of-bounds and
			// cross-object writes trap).
			w = NewRegionSet(RegionOwn, RegionShared)
		}
		out.Spec.Writes = w
	}
	if l.Spec.Reads.All {
		r := l.Analysis.Reads
		if r.Empty() {
			r = NewRegionSet(RegionOwn, RegionShared)
		}
		out.Spec.Reads = r
	}
	out.Hardened = append(out.Hardened, TechDFI)
	return out, nil
}

// ApplicableTechniques reports which SH techniques would change l's
// metadata, following the paper's enumeration rule: for each library
// that writes to all memory, enable DFI/ASAN; for each library that
// can execute arbitrary code, enable CFI.
func ApplicableTechniques(l *Library) []string {
	var out []string
	if l.Spec.Writes.All || l.Spec.Reads.All {
		out = append(out, TechDFI)
	}
	if l.Spec.Calls.All {
		out = append(out, TechCFI)
	}
	return out
}

// Harden applies every applicable technique and returns the fully
// hardened variant, or ErrNotApplicable if none applies.
func Harden(l *Library) (*Library, error) {
	techs := ApplicableTechniques(l)
	if len(techs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotApplicable, l.Name)
	}
	out := l
	for _, t := range techs {
		var err error
		switch t {
		case TechDFI:
			out, err = ApplyDFI(out)
		case TechCFI:
			out, err = ApplyCFI(out)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Variants returns the deployable versions of a library: the original,
// plus — when hardening changes its metadata — the SH variant. This is
// the "list of libraries that have two versions: one with SH, and one
// without" of the paper.
func Variants(l *Library) []*Library {
	out := []*Library{l}
	if h, err := Harden(l); err == nil {
		out = append(out, h)
	}
	return out
}

// MaxCombinations bounds Combinations' output to keep the design-space
// enumeration tractable.
const MaxCombinations = 1 << 16

// Combinations iterates through all combinations of library versions:
// for each library with an SH variant, both choices are explored. The
// result is a list of candidate image compositions, each a slice with
// one variant per input library (input order preserved).
func Combinations(libs []*Library) ([][]*Library, error) {
	variants := make([][]*Library, len(libs))
	total := 1
	for i, l := range libs {
		variants[i] = Variants(l)
		total *= len(variants[i])
		if total > MaxCombinations {
			return nil, fmt.Errorf("spec: %d libraries yield more than %d combinations", len(libs), MaxCombinations)
		}
	}
	combos := make([][]*Library, 0, total)
	cur := make([]*Library, len(libs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(libs) {
			combos = append(combos, append([]*Library(nil), cur...))
			return
		}
		for _, v := range variants[i] {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return combos, nil
}
