package spec

import (
	"fmt"
	"strings"
)

// The paper's §5 asks: "who verifies the specification/metadata? The
// process of writing metadata is error prone". Lint is the first line
// of defense: it cross-checks each library's declarations against each
// other and against the static-analysis ground truth, catching the
// inconsistencies that would otherwise silently produce an unsound
// compartmentalization.

// Severity grades a lint finding.
type Severity int

// Severities.
const (
	// Warning marks metadata that is suspicious but not unsound.
	Warning Severity = iota
	// Error marks metadata that would make derived plans unsound.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Problem is one lint finding.
type Problem struct {
	Lib      string
	Severity Severity
	Msg      string
}

// String implements fmt.Stringer.
func (p Problem) String() string {
	return fmt.Sprintf("%s: %s: %s", p.Severity, p.Lib, p.Msg)
}

// Lint checks one library's metadata for internal consistency.
func Lint(l *Library) []Problem {
	var out []Problem
	add := func(sev Severity, format string, args ...any) {
		out = append(out, Problem{Lib: l.Name, Severity: sev, Msg: fmt.Sprintf(format, args...)})
	}

	apiSet := make(map[string]bool, len(l.Spec.API))
	for _, fn := range l.Spec.API {
		apiSet[fn] = true
	}

	// Requires Call grants must reference exported entry points (or
	// the wildcard): granting calls to a function you do not export is
	// meaningless and usually a typo.
	for _, r := range l.Spec.Requires {
		if r.Verb != VerbCall || r.Object == "*" {
			continue
		}
		if !apiSet[r.Object] {
			add(Error, "Requires grants *(Call,%s) but %q is not in [API]", r.Object, r.Object)
		}
	}

	// Preconditions must attach to exported entry points.
	for fn := range l.Spec.Preconditions {
		if !apiSet[fn] {
			add(Error, "[Preconditions] names %q which is not in [API]", fn)
		}
	}

	// Under-declared calls: the analysis observed calls the metadata
	// does not admit. A compatibility decision based on the narrower
	// declaration would be unsound.
	if !l.Spec.Calls.All {
		for _, fn := range l.Analysis.Calls {
			if !l.Spec.Calls.Contains(fn) {
				add(Error, "[Analysis] observes a call to %s that [Call] does not declare", fn)
			}
		}
	}

	// Under-declared writes/reads: analysis saw wildcard behaviour the
	// metadata narrows without an SH variant — unsound the other way.
	if l.Analysis.Writes.All && !l.Spec.Writes.All {
		add(Error, "[Analysis] observes wildcard writes but [Memory access] declares Write%s", l.Spec.Writes)
	}
	if l.Analysis.Reads.All && !l.Spec.Reads.All {
		add(Error, "[Analysis] observes wildcard reads but [Memory access] declares Read%s", l.Spec.Reads)
	}

	// A wildcard library without analysis ground truth cannot be
	// hardened (no call list / data-flow result to narrow to) — legal,
	// but it forecloses half the design space.
	if l.Spec.Calls.All && len(l.Analysis.Calls) == 0 {
		add(Warning, "Call(*) with no [Analysis] calls: CFI hardening cannot narrow this library")
	}
	if (l.Spec.Writes.All || l.Spec.Reads.All) && l.Analysis.Writes.Empty() && l.Analysis.Reads.Empty() {
		add(Warning, "wildcard memory access with no [Analysis] data flow: DFI hardening cannot narrow this library")
	}

	// A library with Requires but an empty API cannot be called at
	// all by constrained cohabitants.
	hasCallGrant := false
	for _, r := range l.Spec.Requires {
		if r.Verb == VerbCall {
			hasCallGrant = true
		}
	}
	if l.Spec.HasRequirements() && !hasCallGrant && len(l.Spec.API) > 0 {
		add(Warning, "[Requires] grants no *(Call,...) although [API] exports %s: cohabitants cannot call it",
			strings.Join(l.Spec.API, ", "))
	}

	return out
}

// LintAll lints every library and the set as a whole (duplicate names,
// dangling cross-library call targets).
func LintAll(libs []*Library) []Problem {
	var out []Problem
	byName := make(map[string]*Library, len(libs))
	for _, l := range libs {
		if _, dup := byName[l.Name]; dup {
			out = append(out, Problem{Lib: l.Name, Severity: Error, Msg: "duplicate library name"})
			continue
		}
		byName[l.Name] = l
	}
	for _, l := range libs {
		out = append(out, Lint(l)...)
		// Cross-library: declared calls should target known libraries'
		// exported functions.
		for _, fn := range l.Spec.Calls.Funcs {
			lib, name, ok := splitQualifiedFn(fn)
			if !ok {
				out = append(out, Problem{Lib: l.Name, Severity: Warning,
					Msg: fmt.Sprintf("[Call] entry %q is not lib::fn qualified", fn)})
				continue
			}
			target, known := byName[lib]
			if !known {
				out = append(out, Problem{Lib: l.Name, Severity: Warning,
					Msg: fmt.Sprintf("[Call] targets unknown library %q", lib)})
				continue
			}
			if len(target.Spec.API) > 0 && !target.Spec.ExportsAPI(name) {
				out = append(out, Problem{Lib: l.Name, Severity: Error,
					Msg: fmt.Sprintf("[Call] targets %s which %s does not export", fn, lib)})
			}
		}
	}
	return out
}

// HasErrors reports whether any problem is an Error.
func HasErrors(problems []Problem) bool {
	for _, p := range problems {
		if p.Severity == Error {
			return true
		}
	}
	return false
}

func splitQualifiedFn(fn string) (lib, name string, ok bool) {
	i := strings.Index(fn, "::")
	if i <= 0 || i+2 >= len(fn) {
		return "", "", false
	}
	return fn[:i], fn[i+2:], true
}
