package spec

import (
	"fmt"
	"strings"
)

// Parse reads a metadata file containing one or more library blocks:
//
//	# FlexOS library metadata
//	library scheduler {
//	    [Memory access] Read(Own,Shared); Write(Own,Shared)
//	    [Call] alloc::malloc, alloc::free
//	    [API] thread_add(...); thread_rm(...); yield(...)
//	    [Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add)
//	    [Analysis] calls(alloc::malloc); writes(Own); reads(Own,Shared)
//	    trusted
//	}
//
// Lines starting with '#' are comments. The [Analysis] section and the
// 'trusted' marker are FlexOS-build extensions: the former records
// static-analysis ground truth consumed by the SH transformations, the
// latter marks TCB components (scheduler/memory manager under MPK).
func Parse(src string) ([]*Library, error) {
	var libs []*Library
	var cur *Library
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "library "):
			if cur != nil {
				return nil, fmt.Errorf("spec: line %d: nested library block", lineNo)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "library "))
			name = strings.TrimSpace(strings.TrimSuffix(name, "{"))
			if name == "" {
				return nil, fmt.Errorf("spec: line %d: library block without name", lineNo)
			}
			cur = &Library{Name: name}
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("spec: line %d: '}' outside library block", lineNo)
			}
			libs = append(libs, cur)
			cur = nil
		case line == "trusted":
			if cur == nil {
				return nil, fmt.Errorf("spec: line %d: 'trusted' outside library block", lineNo)
			}
			cur.Trusted = true
		default:
			if cur == nil {
				return nil, fmt.Errorf("spec: line %d: %q outside library block", lineNo, line)
			}
			if err := parseSection(cur, line); err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", lineNo, err)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("spec: unterminated library block %q", cur.Name)
	}
	return libs, nil
}

// ParseSpec parses a bare metadata block (sections only, no library
// wrapper), as the paper prints them.
func ParseSpec(src string) (*Spec, error) {
	lib := &Library{}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseSection(lib, line); err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", i+1, err)
		}
	}
	return &lib.Spec, nil
}

func parseSection(lib *Library, line string) error {
	if !strings.HasPrefix(line, "[") {
		return fmt.Errorf("expected a [Section], got %q", line)
	}
	end := strings.Index(line, "]")
	if end < 0 {
		return fmt.Errorf("unterminated section header in %q", line)
	}
	section := strings.TrimSpace(line[1:end])
	body := strings.TrimSpace(line[end+1:])
	switch strings.ToLower(section) {
	case "memory access":
		return parseMemoryAccess(&lib.Spec, body)
	case "call":
		cs, err := parseCallList(body)
		if err != nil {
			return err
		}
		lib.Spec.Calls = cs
		return nil
	case "api":
		lib.Spec.API = parseAPIList(body)
		return nil
	case "requires":
		reqs, err := parseRequires(body)
		if err != nil {
			return err
		}
		lib.Spec.Requires = reqs
		return nil
	case "preconditions":
		return parsePreconditions(&lib.Spec, body)
	case "analysis":
		return parseAnalysis(&lib.Analysis, body)
	default:
		return fmt.Errorf("unknown section %q", section)
	}
}

// parseMemoryAccess handles "Read(Own,Shared); Write(*)".
func parseMemoryAccess(s *Spec, body string) error {
	for _, item := range splitTop(body, ';') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		verb, args, err := splitVerbArgs(item)
		if err != nil {
			return err
		}
		set, err := parseRegions(args)
		if err != nil {
			return err
		}
		switch strings.ToLower(verb) {
		case "read":
			s.Reads = set
		case "write":
			s.Writes = set
		default:
			return fmt.Errorf("unknown memory-access verb %q", verb)
		}
	}
	return nil
}

func parseRegions(args []string) (RegionSet, error) {
	var set RegionSet
	for _, a := range args {
		r, err := ParseRegion(a)
		if err != nil {
			return set, err
		}
		set = set.With(r)
	}
	return set, nil
}

// parseCallList handles "*" or "alloc::malloc, alloc::free".
func parseCallList(body string) (CallSet, error) {
	body = strings.TrimSpace(body)
	if body == "*" {
		return WildcardCalls, nil
	}
	if body == "" || body == "-" {
		return CallSet{}, nil
	}
	var funcs []string
	for _, f := range strings.Split(body, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if f == "*" {
			return WildcardCalls, nil
		}
		funcs = append(funcs, f)
	}
	return NewCallSet(funcs...), nil
}

// parseAPIList handles "thread_add(...); thread_rm (. . . ); yield".
func parseAPIList(body string) []string {
	var api []string
	for _, item := range splitTop(body, ';') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if p := strings.Index(item, "("); p >= 0 {
			item = item[:p]
		}
		item = strings.TrimSpace(item)
		if item != "" {
			api = append(api, item)
		}
	}
	return api
}

// parseRequires handles "*(Read,Own), *(Write,Shared), *(Call,thread_add), *...".
func parseRequires(body string) ([]Requirement, error) {
	var reqs []Requirement
	for _, item := range splitTop(body, ',') {
		item = strings.TrimSpace(item)
		if item == "" || item == "*..." || item == "*. . ." {
			continue // the paper elides trailing clauses with "*..."
		}
		if !strings.HasPrefix(item, "*(") || !strings.HasSuffix(item, ")") {
			return nil, fmt.Errorf("malformed Requires clause %q", item)
		}
		inner := item[2 : len(item)-1]
		parts := strings.SplitN(inner, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed Requires clause %q", item)
		}
		verb, err := ParseVerb(parts[0])
		if err != nil {
			return nil, err
		}
		obj := strings.TrimSpace(parts[1])
		if obj == "" {
			return nil, fmt.Errorf("empty object in Requires clause %q", item)
		}
		if verb != VerbCall {
			if _, err := ParseRegion(obj); err != nil {
				return nil, fmt.Errorf("requires %s: %w", item, err)
			}
			// Normalize region spelling.
			r, _ := ParseRegion(obj)
			obj = r.String()
		}
		reqs = append(reqs, Requirement{Verb: verb, Object: obj})
	}
	return reqs, nil
}

// parsePreconditions handles "thread_add: not_added, valid_thread; yield: is_running".
func parsePreconditions(s *Spec, body string) error {
	for _, item := range splitTop(body, ';') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("malformed precondition %q (want fn: pred, ...)", item)
		}
		fn := strings.TrimSpace(parts[0])
		if fn == "" {
			return fmt.Errorf("precondition without a function name in %q", item)
		}
		var preds []string
		for _, p := range strings.Split(parts[1], ",") {
			if p = strings.TrimSpace(p); p != "" {
				preds = append(preds, p)
			}
		}
		if len(preds) == 0 {
			return fmt.Errorf("precondition %q lists no predicates", item)
		}
		if s.Preconditions == nil {
			s.Preconditions = make(map[string][]string)
		}
		s.Preconditions[fn] = append(s.Preconditions[fn], preds...)
	}
	return nil
}

// parseAnalysis handles "calls(a::b, c::d); writes(Own); reads(Own,Shared)".
func parseAnalysis(a *Analysis, body string) error {
	for _, item := range splitTop(body, ';') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		verb, args, err := splitVerbArgs(item)
		if err != nil {
			return err
		}
		switch strings.ToLower(verb) {
		case "calls":
			for _, f := range args {
				if f = strings.TrimSpace(f); f != "" {
					a.Calls = append(a.Calls, f)
				}
			}
		case "writes":
			set, err := parseRegions(args)
			if err != nil {
				return err
			}
			a.Writes = set
		case "reads":
			set, err := parseRegions(args)
			if err != nil {
				return err
			}
			a.Reads = set
		default:
			return fmt.Errorf("unknown analysis item %q", verb)
		}
	}
	return nil
}

// splitVerbArgs turns "Read(Own, Shared)" into ("Read", ["Own","Shared"]).
func splitVerbArgs(item string) (string, []string, error) {
	open := strings.Index(item, "(")
	if open < 0 || !strings.HasSuffix(item, ")") {
		return "", nil, fmt.Errorf("expected Verb(args) in %q", item)
	}
	verb := strings.TrimSpace(item[:open])
	inner := item[open+1 : len(item)-1]
	var args []string
	for _, a := range strings.Split(inner, ",") {
		if a = strings.TrimSpace(a); a != "" {
			args = append(args, a)
		}
	}
	return verb, args, nil
}

// splitTop splits on sep outside parentheses.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
