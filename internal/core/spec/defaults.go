package spec

// DefaultImageSource is the metadata of the canonical FlexOS image
// used throughout the evaluation: the formally verified scheduler, the
// memory manager, and four C micro-libraries whose control/data flow
// may be hijacked (so their conservative metadata declares wildcard
// behaviour, narrowed by the [Analysis] ground truth when SH is
// enabled). It doubles as the reference example of the metadata
// language.
const DefaultImageSource = `
# FlexOS default image metadata.

# The formally verified cooperative scheduler (Dafny): others may read
# its memory but never write it, and must enter through the API.
library sched {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] alloc::malloc, alloc::free
  [API] thread_add(...); thread_rm(...); yield(...); wait(...); wake(...)
  [Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add), *(Call,thread_rm), *(Call,yield), *(Call,wait), *(Call,wake)
  [Preconditions] thread_add: not_already_added; thread_rm: is_added
  trusted
}

# The memory manager: owns the page table, trusted under MPK.
library alloc {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] -
  [API] malloc(...); free(...)
  [Requires] *(Read,Own), *(Write,Shared), *(Call,malloc), *(Call,free)
  trusted
}

# The standard C library: unsafe language, variable-length writes that
# cannot be proven safe statically.
library libc {
  [Memory access] Read(*); Write(*)
  [Call] *
  [API] memcpy(...); memset(...); sem_up(...); sem_down(...); recv(...); send(...)
  [Analysis] calls(sched::wait, sched::wake, alloc::malloc, alloc::free, netstack::recv, netstack::send); writes(Own,Shared); reads(Own,Shared)
}

# The network stack: parses attacker-controlled input.
library netstack {
  [Memory access] Read(*); Write(*)
  [Call] *
  [API] listen(...); accept(...); connect(...); recv(...); send(...)
  [Analysis] calls(libc::memcpy, libc::sem_up, libc::sem_down, alloc::malloc, alloc::free); writes(Own,Shared); reads(Own,Shared)
}

# The application.
library app {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(libc::memcpy, libc::recv, libc::send, alloc::malloc, alloc::free); writes(Own,Shared); reads(Own,Shared)
}

# Everything else in the kernel (platform code, drivers, boot).
library rest {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(libc::memcpy, sched::yield, alloc::malloc, alloc::free); writes(Own,Shared); reads(Own,Shared)
}
`

// DefaultImage parses DefaultImageSource. It panics only if the
// built-in source is corrupted, which the test suite guards.
func DefaultImage() []*Library {
	libs, err := Parse(DefaultImageSource)
	if err != nil {
		panic("spec: built-in image metadata broken: " + err.Error())
	}
	return libs
}
