package spec

import (
	"strings"
	"testing"
)

func lintOne(t *testing.T, src string) []Problem {
	t.Helper()
	libs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(libs[0])
}

func TestLintCleanLibrary(t *testing.T) {
	for _, l := range DefaultImage() {
		for _, p := range Lint(l) {
			if p.Severity == Error {
				t.Errorf("default image %s: %v", l.Name, p)
			}
		}
	}
	if HasErrors(LintAll(DefaultImage())) {
		t.Fatal("default image has lint errors")
	}
}

func TestLintUngrantedCallRequirement(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] open(...)
  [Requires] *(Call,clse)
}
`)
	if !HasErrors(ps) || !strings.Contains(ps[0].Msg, `"clse" is not in [API]`) {
		t.Fatalf("problems = %v", ps)
	}
}

func TestLintPreconditionWithoutAPI(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] open(...)
  [Preconditions] close: is_open
}
`)
	if !HasErrors(ps) {
		t.Fatalf("problems = %v", ps)
	}
}

func TestLintUnderDeclaredCalls(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] b::x
  [Analysis] calls(b::x, c::hidden)
}
`)
	if !HasErrors(ps) {
		t.Fatalf("under-declared call not caught: %v", ps)
	}
}

func TestLintUnderDeclaredMemory(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [Analysis] writes(*)
}
`)
	if !HasErrors(ps) {
		t.Fatalf("under-declared writes not caught: %v", ps)
	}
}

func TestLintUnhardenableWildcard(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(*); Write(*)
  [Call] *
}
`)
	if HasErrors(ps) {
		t.Fatalf("warnings escalated to errors: %v", ps)
	}
	if len(ps) < 2 {
		t.Fatalf("missing unhardenable warnings: %v", ps)
	}
}

func TestLintNoCallGrantWarning(t *testing.T) {
	ps := lintOne(t, `
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] open(...)
  [Requires] *(Read,Own)
}
`)
	found := false
	for _, p := range ps {
		if p.Severity == Warning && strings.Contains(p.Msg, "cohabitants cannot call") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing no-call-grant warning: %v", ps)
	}
}

func TestLintAllCrossLibrary(t *testing.T) {
	libs, err := Parse(`
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] b::open, b::hidden, unqualified, ghost::x
}
library b {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] open(...)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ps := LintAll(libs)
	var sawHidden, sawUnqualified, sawGhost bool
	for _, p := range ps {
		switch {
		case strings.Contains(p.Msg, "b::hidden"):
			sawHidden = p.Severity == Error
		case strings.Contains(p.Msg, "unqualified"):
			sawUnqualified = true
		case strings.Contains(p.Msg, `unknown library "ghost"`):
			sawGhost = true
		}
	}
	if !sawHidden || !sawUnqualified || !sawGhost {
		t.Fatalf("cross-library findings missing: %v", ps)
	}
}

func TestLintAllDuplicateNames(t *testing.T) {
	libs, err := Parse(`
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
}
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] -
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ps := LintAll(libs)
	if !HasErrors(ps) {
		t.Fatalf("duplicate name not caught: %v", ps)
	}
}

func TestProblemString(t *testing.T) {
	p := Problem{Lib: "x", Severity: Error, Msg: "boom"}
	if p.String() != "error: x: boom" {
		t.Fatal(p.String())
	}
}
