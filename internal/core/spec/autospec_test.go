package spec

import (
	"strings"
	"testing"
)

func recordedFixture() *Recorder {
	r := NewRecorder()
	r.Observe("app", "libc", "recv")
	r.Observe("app", "libc", "recv")
	r.Observe("libc", "netstack", "recv")
	r.Observe("netstack", "libc", "sem_up")
	r.Observe("libc", "sched", "wake")
	return r
}

func TestRecorderEdges(t *testing.T) {
	r := recordedFixture()
	if r.Count("app", "libc", "recv") != 2 {
		t.Fatalf("Count = %d", r.Count("app", "libc", "recv"))
	}
	edges := r.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	// Sorted: app < libc < netstack.
	if edges[0].From != "app" || edges[len(edges)-1].From != "netstack" {
		t.Fatalf("edges not sorted: %v", edges)
	}
	libs := r.Libraries()
	if len(libs) != 4 || libs[0] != "app" || libs[3] != "sched" {
		t.Fatalf("Libraries = %v", libs)
	}
}

func TestGenerateDrafts(t *testing.T) {
	r := recordedFixture()
	drafts := r.GenerateDrafts()
	byName := map[string]*Library{}
	for _, l := range drafts {
		byName[l.Name] = l
	}
	libc := byName["libc"]
	if libc == nil {
		t.Fatal("no libc draft")
	}
	// Incoming edges become API.
	if !libc.Spec.ExportsAPI("recv") || !libc.Spec.ExportsAPI("sem_up") {
		t.Fatalf("libc API = %v", libc.Spec.API)
	}
	// Outgoing edges become analysis calls.
	found := false
	for _, c := range libc.Analysis.Calls {
		if c == "netstack::recv" {
			found = true
		}
	}
	if !found {
		t.Fatalf("libc analysis calls = %v", libc.Analysis.Calls)
	}
	// Memory behaviour stays conservative.
	if !libc.Spec.Writes.All || !libc.Spec.Calls.All {
		t.Fatal("draft narrowed memory/call behaviour without proof")
	}
	// Drafts are hardenable: CFI narrows to the observed call list.
	h, err := Harden(libc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec.Calls.All || !h.Spec.Calls.Contains("netstack::recv") {
		t.Fatalf("hardened draft calls = %v", h.Spec.Calls)
	}
}

func TestRenderedMetadataRoundTrips(t *testing.T) {
	r := recordedFixture()
	rendered := r.RenderMetadata()
	libs, err := Parse(rendered)
	if err != nil {
		t.Fatalf("generated metadata does not parse: %v\n%s", err, rendered)
	}
	if len(libs) != 4 {
		t.Fatalf("parsed %d libraries", len(libs))
	}
	if HasErrors(LintAll(libs)) {
		t.Fatalf("generated metadata has lint errors: %v", LintAll(libs))
	}
	if !strings.Contains(rendered, "generated from observed behaviour") {
		t.Fatal("missing review banner")
	}
}
