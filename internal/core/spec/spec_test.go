package spec

import (
	"strings"
	"testing"
	"testing/quick"
)

// schedulerMeta is the paper's verified-scheduler example, verbatim in
// structure.
const schedulerMeta = `
[Memory access] Read(Own,Shared); Write(Own,Shared)
[Call] alloc::malloc, alloc::free
[API] thread_add(...); thread_rm(...); yield(...)
[Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add), *(Call,thread_rm), *(Call,yield)
`

// unsafeCMeta is the paper's potentially-hijackable C component.
const unsafeCMeta = `
[Memory access] Read(*); Write(*)
[Call] *
`

func TestParsePaperSchedulerExample(t *testing.T) {
	s, err := ParseSpec(schedulerMeta)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Reads.Own || !s.Reads.Shared || s.Reads.All {
		t.Fatalf("Reads = %v", s.Reads)
	}
	if !s.Writes.Own || !s.Writes.Shared || s.Writes.All {
		t.Fatalf("Writes = %v", s.Writes)
	}
	if s.Calls.All || len(s.Calls.Funcs) != 2 || !s.Calls.Contains("alloc::malloc") {
		t.Fatalf("Calls = %v", s.Calls)
	}
	if len(s.API) != 3 || s.API[0] != "thread_add" || s.API[2] != "yield" {
		t.Fatalf("API = %v", s.API)
	}
	if len(s.Requires) != 5 {
		t.Fatalf("Requires = %v", s.Requires)
	}
	// The semantics the paper spells out: others may read Own but not
	// write it; may write Shared; may call the listed API.
	if !s.Permits(VerbRead, "Own") {
		t.Fatal("Read(Own) should be permitted")
	}
	if s.Permits(VerbWrite, "Own") {
		t.Fatal("Write(Own) must not be permitted")
	}
	if !s.Permits(VerbWrite, "Shared") {
		t.Fatal("Write(Shared) should be permitted")
	}
	if !s.Permits(VerbCall, "thread_add") || s.Permits(VerbCall, "secret_fn") {
		t.Fatal("Call permissions wrong")
	}
}

func TestParseUnsafeCExample(t *testing.T) {
	s, err := ParseSpec(unsafeCMeta)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Reads.All || !s.Writes.All || !s.Calls.All {
		t.Fatalf("spec = %+v", s)
	}
	if s.HasRequirements() {
		t.Fatal("unsafe C component has no Requires clause")
	}
	// "Since there is no Requires clause, other libraries should not
	// be prevented from writing to memory owned by this library."
	if !s.Permits(VerbWrite, "Own") {
		t.Fatal("no-Requires spec must permit everything")
	}
}

func TestParseLibraryBlocks(t *testing.T) {
	src := `
# two libraries
library scheduler {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] alloc::malloc, alloc::free
  [API] thread_add(...); yield(...)
  [Requires] *(Read,Own), *(Write,Shared)
  [Analysis] calls(alloc::malloc); writes(Own,Shared); reads(Own,Shared)
  trusted
}

library wildc {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(sched::yield); writes(Own,Shared)
}
`
	libs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(libs) != 2 {
		t.Fatalf("len = %d", len(libs))
	}
	sched := libs[0]
	if sched.Name != "scheduler" || !sched.Trusted {
		t.Fatalf("scheduler = %+v", sched)
	}
	if len(sched.Analysis.Calls) != 1 || sched.Analysis.Calls[0] != "alloc::malloc" {
		t.Fatalf("analysis = %+v", sched.Analysis)
	}
	if libs[1].Trusted {
		t.Fatal("wildc must not be trusted")
	}
	if !libs[1].Spec.Writes.All {
		t.Fatal("wildc writes wildcard lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"library a {",                    // unterminated
		"}",                              // stray close
		"[Call] *",                       // section outside block
		"trusted",                        // marker outside block
		"library a {\nlibrary b {\n}\n}", // nested
		"library {\n}",                   // missing name
		"library a {\n[Bogus] x\n}",      // unknown section
		"library a {\nnot-a-section\n}",  // junk line
		"library a {\n[Memory access] Explode(Own)\n}", // bad verb
		"library a {\n[Memory access] Read(Mars)\n}",   // bad region
		"library a {\n[Requires] Read,Own\n}",          // malformed clause
		"library a {\n[Requires] *(Jump,Own)\n}",       // bad req verb
		"library a {\n[Requires] *(Read,Mars)\n}",      // bad req region
		"library a {\n[Requires] *(Read,)\n}",          // empty object
		"library a {\n[Memory access] Read(Own\n}",     // unterminated args
		"library a {\n[Analysis] explode(Own)\n}",      // bad analysis key
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRoundTripThroughString(t *testing.T) {
	s1, err := ParseSpec(schedulerMeta)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(s1.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s1.String(), err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("round trip changed spec:\n%s\nvs\n%s", s1, s2)
	}
}

func TestRequiresElision(t *testing.T) {
	// The paper writes "*(Call, thread_add), *. . ." — the elision
	// marker must be tolerated.
	s, err := ParseSpec("[Requires] *(Read,Own), *...")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Requires) != 1 {
		t.Fatalf("Requires = %v", s.Requires)
	}
}

func TestRegionSet(t *testing.T) {
	s := NewRegionSet(RegionOwn)
	if !s.Contains(RegionOwn) || s.Contains(RegionShared) {
		t.Fatal("Contains wrong")
	}
	all := NewRegionSet(RegionAll)
	if !all.Contains(RegionOwn) || !all.Contains(RegionShared) {
		t.Fatal("wildcard must cover concrete regions")
	}
	if all.Contains(RegionAll) != false && !all.All {
		t.Fatal("unexpected")
	}
	if !NewRegionSet().Empty() || s.Empty() {
		t.Fatal("Empty wrong")
	}
	if all.String() != "(*)" || s.String() != "(Own)" {
		t.Fatalf("String: %q %q", all.String(), s.String())
	}
}

func TestCallSet(t *testing.T) {
	c := NewCallSet("b::y", "a::x", "b::y")
	if len(c.Funcs) != 2 || c.Funcs[0] != "a::x" {
		t.Fatalf("dedup/sort failed: %v", c.Funcs)
	}
	if !c.Contains("a::x") || c.Contains("z::z") {
		t.Fatal("Contains wrong")
	}
	if !WildcardCalls.Contains("anything") {
		t.Fatal("wildcard Contains wrong")
	}
	if !(CallSet{}).Empty() || c.Empty() || WildcardCalls.Empty() {
		t.Fatal("Empty wrong")
	}
}

func TestApplyCFI(t *testing.T) {
	libs, err := Parse(`
library wildc {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(sched::yield, alloc::malloc)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	l := libs[0]
	h, err := ApplyCFI(l)
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec.Calls.All {
		t.Fatal("CFI did not narrow Call(*)")
	}
	if !h.Spec.Calls.Contains("sched::yield") || !h.Spec.Calls.Contains("alloc::malloc") {
		t.Fatalf("call list = %v", h.Spec.Calls)
	}
	if h.VariantName() != "wildc+cfi" {
		t.Fatalf("variant name = %q", h.VariantName())
	}
	// Original untouched.
	if !l.Spec.Calls.All {
		t.Fatal("ApplyCFI mutated the original")
	}
	// Not applicable twice.
	if _, err := ApplyCFI(h); err == nil {
		t.Fatal("CFI applied to non-wildcard library")
	}
}

func TestApplyDFI(t *testing.T) {
	libs, err := Parse(`
library wildc {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] writes(Own); reads(Own,Shared)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ApplyDFI(libs[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec.Writes.All || !h.Spec.Writes.Own || h.Spec.Writes.Shared {
		t.Fatalf("Writes = %v", h.Spec.Writes)
	}
	if h.Spec.Reads.All || !h.Spec.Reads.Shared {
		t.Fatalf("Reads = %v", h.Spec.Reads)
	}

	// Without analysis, DFI defaults to Own+Shared confinement.
	libs2, _ := Parse("library w2 {\n[Memory access] Read(*); Write(*)\n[Call] *\n}")
	h2, err := ApplyDFI(libs2[0])
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Spec.Writes.Own || !h2.Spec.Writes.Shared || h2.Spec.Writes.All {
		t.Fatalf("default DFI writes = %v", h2.Spec.Writes)
	}

	// Not applicable to already-narrow libraries.
	safe, _ := ParseSpec(schedulerMeta)
	if _, err := ApplyDFI(&Library{Name: "s", Spec: *safe}); err == nil {
		t.Fatal("DFI applied to narrow library")
	}
}

func TestHardenAndVariants(t *testing.T) {
	libs, _ := Parse(`
library wildc {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(a::b); writes(Own,Shared); reads(Own,Shared)
}
library safe {
  [Memory access] Read(Own); Write(Own)
  [Call] a::b
}
`)
	wild, safe := libs[0], libs[1]

	h, err := Harden(wild)
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec.Writes.All || h.Spec.Calls.All {
		t.Fatal("Harden left wildcards")
	}
	if len(h.Hardened) != 2 {
		t.Fatalf("Hardened = %v", h.Hardened)
	}

	if _, err := Harden(safe); err == nil {
		t.Fatal("Harden of safe library should be not-applicable")
	}

	if v := Variants(wild); len(v) != 2 {
		t.Fatalf("wild variants = %d, want 2", len(v))
	}
	if v := Variants(safe); len(v) != 1 {
		t.Fatalf("safe variants = %d, want 1", len(v))
	}
}

func TestCombinations(t *testing.T) {
	libs, _ := Parse(`
library w1 {
  [Memory access] Read(*); Write(*)
  [Call] *
}
library w2 {
  [Memory access] Read(*); Write(*)
  [Call] *
}
library safe {
  [Memory access] Read(Own); Write(Own)
  [Call] -
}
`)
	combos, err := Combinations(libs)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 4 { // 2 * 2 * 1
		t.Fatalf("combos = %d, want 4", len(combos))
	}
	for _, c := range combos {
		if len(c) != 3 {
			t.Fatalf("combo width = %d", len(c))
		}
		if c[2].Name != "safe" {
			t.Fatal("order not preserved")
		}
	}
	// First combo is all-original, last is all-hardened.
	if len(combos[0][0].Hardened) != 0 || len(combos[3][1].Hardened) == 0 {
		t.Fatal("combination ordering unexpected")
	}
}

func TestSpecStringContainsSections(t *testing.T) {
	s, _ := ParseSpec(schedulerMeta)
	out := s.String()
	for _, want := range []string{"[Memory access]", "[Call]", "[API]", "[Requires]", "*(Read,Own)"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestVerbRegionStrings(t *testing.T) {
	if VerbRead.String() != "Read" || VerbWrite.String() != "Write" || VerbCall.String() != "Call" {
		t.Fatal("verb strings wrong")
	}
	if RegionOwn.String() != "Own" || RegionAll.String() != "*" {
		t.Fatal("region strings wrong")
	}
	if _, err := ParseVerb("nope"); err == nil {
		t.Fatal("bad verb parsed")
	}
}

func TestParsePreconditions(t *testing.T) {
	libs, err := Parse(`
library sched {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] thread_add(...); thread_rm(...)
  [Preconditions] thread_add: not_already_added, valid_thread; thread_rm: is_added
}
`)
	if err != nil {
		t.Fatal(err)
	}
	pc := libs[0].Spec.Preconditions
	if len(pc["thread_add"]) != 2 || pc["thread_add"][0] != "not_already_added" {
		t.Fatalf("thread_add preds = %v", pc["thread_add"])
	}
	if len(pc["thread_rm"]) != 1 || pc["thread_rm"][0] != "is_added" {
		t.Fatalf("thread_rm preds = %v", pc["thread_rm"])
	}
	// Round trip through String.
	s2, err := ParseSpec(libs[0].Spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Preconditions["thread_add"]) != 2 {
		t.Fatalf("round trip lost preconditions: %v", s2.Preconditions)
	}
	// Clone is deep.
	c := libs[0].Clone()
	c.Spec.Preconditions["thread_add"][0] = "mutated"
	if pc["thread_add"][0] != "not_already_added" {
		t.Fatal("Clone shares precondition slices")
	}
}

func TestParsePreconditionErrors(t *testing.T) {
	bad := []string{
		"library a {\n[Preconditions] justafunction\n}",
		"library a {\n[Preconditions] : pred\n}",
		"library a {\n[Preconditions] fn:\n}",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	libs, _ := Parse(`
library a {
  [Memory access] Read(Own); Write(Own)
  [Call] x::y
  [API] f(...)
  [Requires] *(Read,Own)
  [Analysis] calls(x::y)
}
`)
	l := libs[0]
	c := l.Clone()
	c.Spec.API[0] = "mutated"
	c.Spec.Requires[0].Object = "Shared"
	c.Spec.Calls.Funcs[0] = "mutated"
	c.Analysis.Calls[0] = "mutated"
	if l.Spec.API[0] != "f" || l.Spec.Requires[0].Object != "Own" ||
		l.Spec.Calls.Funcs[0] != "x::y" || l.Analysis.Calls[0] != "x::y" {
		t.Fatal("Clone shares backing arrays")
	}
}

// Property: the parser never panics on arbitrary input and either
// returns libraries or an error.
func TestParserNoPanicProperty(t *testing.T) {
	f := func(raw []byte) bool {
		libs, err := Parse(string(raw))
		if err == nil {
			// Whatever parsed must survive linting and printing.
			_ = LintAll(libs)
			for _, l := range libs {
				_ = l.Spec.String()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Structured-ish garbage too.
	seeds := []string{
		"library x {\n[Memory access] Read(",
		"library x {\n[[[[",
		"library {}{}{}",
		"[Requires] *(((((",
		"library a {\n[Call] " + strings.Repeat("x,", 500) + "\n}",
	}
	for _, s := range seeds {
		_, _ = Parse(s)
	}
}
