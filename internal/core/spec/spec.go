// Package spec implements FlexOS's library metadata language.
//
// Each micro-library's API is complemented with metadata specifying
// (1) the memory access behaviour the library itself exhibits — in
// normal but also adversarial operation, e.g. if its execution flow is
// hijacked; (2) the functions it calls in other libraries; (3) the API
// it exposes; and (4) what it *requires* of other libraries sharing
// its compartment for its own safety properties to hold.
//
// The paper's verified-scheduler example is written:
//
//	[Memory access] Read(Own,Shared); Write(Own,Shared)
//	[Call] alloc::malloc, alloc::free
//	[API] thread_add(...); thread_rm(...); yield(...)
//	[Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add)
//
// and a potentially-hijackable C component:
//
//	[Memory access] Read(*); Write(*)
//	[Call] *
//
// From two such descriptions the compat package decides automatically
// whether the libraries may share a compartment, and the transform
// half of this package rewrites a library's metadata to reflect a
// software-hardening technique being enabled (CFI narrows Call(*),
// DFI/ASAN narrows Write(*)).
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Region identifies a class of memory in a library's metadata.
type Region int

// Memory regions of the metadata language.
const (
	// RegionOwn is the library's private memory.
	RegionOwn Region = iota
	// RegionShared is memory explicitly shared between libraries
	// (shared heap/static segments).
	RegionShared
	// RegionAll is the wildcard: all memory reachable in the
	// compartment, including other libraries' private memory.
	RegionAll
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionOwn:
		return "Own"
	case RegionShared:
		return "Shared"
	case RegionAll:
		return "*"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// ParseRegion converts a metadata token to a Region.
func ParseRegion(s string) (Region, error) {
	switch strings.TrimSpace(s) {
	case "Own", "own":
		return RegionOwn, nil
	case "Shared", "shared":
		return RegionShared, nil
	case "*", "All", "all":
		return RegionAll, nil
	default:
		return 0, fmt.Errorf("spec: unknown region %q", s)
	}
}

// RegionSet is a set of regions. The wildcard subsumes the others.
type RegionSet struct {
	Own    bool
	Shared bool
	All    bool
}

// NewRegionSet builds a set from regions.
func NewRegionSet(rs ...Region) RegionSet {
	var s RegionSet
	for _, r := range rs {
		s = s.With(r)
	}
	return s
}

// With returns the set plus r.
func (s RegionSet) With(r Region) RegionSet {
	switch r {
	case RegionOwn:
		s.Own = true
	case RegionShared:
		s.Shared = true
	case RegionAll:
		s.All = true
	}
	return s
}

// Contains reports whether the set covers r (the wildcard covers all).
func (s RegionSet) Contains(r Region) bool {
	if s.All {
		return true
	}
	switch r {
	case RegionOwn:
		return s.Own
	case RegionShared:
		return s.Shared
	case RegionAll:
		return false
	}
	return false
}

// Empty reports whether no region is in the set.
func (s RegionSet) Empty() bool { return !s.Own && !s.Shared && !s.All }

// String renders the set in metadata syntax, e.g. "(Own,Shared)".
func (s RegionSet) String() string {
	if s.All {
		return "(*)"
	}
	var parts []string
	if s.Own {
		parts = append(parts, "Own")
	}
	if s.Shared {
		parts = append(parts, "Shared")
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// CallSet describes which foreign functions a library may call:
// either the wildcard (arbitrary code execution is possible) or an
// explicit list of lib::function names.
type CallSet struct {
	All   bool
	Funcs []string // sorted, each "lib::fn"
}

// NewCallSet builds an explicit call set.
func NewCallSet(funcs ...string) CallSet {
	fs := append([]string(nil), funcs...)
	sort.Strings(fs)
	return CallSet{Funcs: dedup(fs)}
}

// WildcardCalls is the Call(*) set.
var WildcardCalls = CallSet{All: true}

// Contains reports whether the set permits calling fn.
func (c CallSet) Contains(fn string) bool {
	if c.All {
		return true
	}
	for _, f := range c.Funcs {
		if f == fn {
			return true
		}
	}
	return false
}

// Empty reports whether the library calls nothing.
func (c CallSet) Empty() bool { return !c.All && len(c.Funcs) == 0 }

// String renders the call set in metadata syntax.
func (c CallSet) String() string {
	if c.All {
		return "*"
	}
	if len(c.Funcs) == 0 {
		return "-"
	}
	return strings.Join(c.Funcs, ", ")
}

// Verb is the action a Requires clause constrains.
type Verb int

// Requirement verbs.
const (
	VerbRead Verb = iota
	VerbWrite
	VerbCall
)

// String implements fmt.Stringer.
func (v Verb) String() string {
	switch v {
	case VerbRead:
		return "Read"
	case VerbWrite:
		return "Write"
	case VerbCall:
		return "Call"
	default:
		return fmt.Sprintf("Verb(%d)", int(v))
	}
}

// ParseVerb converts a metadata token to a Verb.
func ParseVerb(s string) (Verb, error) {
	switch strings.TrimSpace(s) {
	case "Read", "read":
		return VerbRead, nil
	case "Write", "write":
		return VerbWrite, nil
	case "Call", "call":
		return VerbCall, nil
	default:
		return 0, fmt.Errorf("spec: unknown verb %q", s)
	}
}

// Requirement is one `*(Verb,Object)` clause: a permission the library
// grants to every other library in its compartment. A library with at
// least one Requires clause grants *only* what its clauses list; a
// library with none places no constraints on cohabitants.
type Requirement struct {
	Verb Verb
	// Object is "Own", "Shared" or "*" for memory verbs, and a
	// function name (or "*") for Call.
	Object string
}

// String renders the clause in metadata syntax.
func (r Requirement) String() string {
	return fmt.Sprintf("*(%s,%s)", r.Verb, r.Object)
}

// Spec is one library's complete metadata.
type Spec struct {
	// Reads and Writes describe the library's memory behaviour,
	// including adversarial behaviour if it can be hijacked.
	Reads  RegionSet
	Writes RegionSet
	// Calls lists the foreign functions the library may call.
	Calls CallSet
	// API lists the entry points the library exposes.
	API []string
	// Requires lists what cohabitant libraries are permitted to do to
	// this library. Empty means unconstrained.
	Requires []Requirement
	// Preconditions names, per API function, the predicates that must
	// hold on call (e.g. the scheduler's thread_add must not be given
	// an already-added thread). The build system generates wrappers
	// that evaluate these only for callers outside the library's
	// trust domain — checks are elided for same-compartment callers.
	Preconditions map[string][]string
}

// HasRequirements reports whether the library constrains cohabitants.
func (s *Spec) HasRequirements() bool { return len(s.Requires) > 0 }

// Permits reports whether the spec's Requires clauses allow another
// library to perform verb on object. With no clauses everything is
// permitted.
func (s *Spec) Permits(v Verb, object string) bool {
	if !s.HasRequirements() {
		return true
	}
	for _, r := range s.Requires {
		if r.Verb != v {
			continue
		}
		if r.Object == "*" || r.Object == object {
			return true
		}
	}
	return false
}

// ExportsAPI reports whether fn (unqualified) is an exported entry
// point.
func (s *Spec) ExportsAPI(fn string) bool {
	for _, a := range s.API {
		if a == fn {
			return true
		}
	}
	return false
}

// String renders the spec in the paper's metadata syntax.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[Memory access] Read%s; Write%s\n", s.Reads, s.Writes)
	fmt.Fprintf(&b, "[Call] %s\n", s.Calls)
	if len(s.API) > 0 {
		apis := make([]string, len(s.API))
		for i, a := range s.API {
			apis[i] = a + "(...)"
		}
		fmt.Fprintf(&b, "[API] %s\n", strings.Join(apis, "; "))
	}
	if len(s.Requires) > 0 {
		reqs := make([]string, len(s.Requires))
		for i, r := range s.Requires {
			reqs[i] = r.String()
		}
		fmt.Fprintf(&b, "[Requires] %s\n", strings.Join(reqs, ", "))
	}
	if len(s.Preconditions) > 0 {
		fns := make([]string, 0, len(s.Preconditions))
		for fn := range s.Preconditions {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		items := make([]string, 0, len(fns))
		for _, fn := range fns {
			items = append(items, fmt.Sprintf("%s: %s", fn, strings.Join(s.Preconditions[fn], ", ")))
		}
		fmt.Fprintf(&b, "[Preconditions] %s\n", strings.Join(items, "; "))
	}
	return b.String()
}

// Analysis is the static-analysis ground truth about a library that
// the SH transformations consult: what the library *actually* does, as
// a control-flow/data-flow analysis would establish, as opposed to
// what its conservative metadata admits it might do under hijack.
type Analysis struct {
	// Calls is the real call-target list (control-flow analysis).
	Calls []string
	// Writes and Reads are the real memory behaviour (data-flow
	// analysis).
	Writes RegionSet
	Reads  RegionSet
}

// Library couples a name with its metadata and analysis results, plus
// the hardening techniques already applied to this variant.
type Library struct {
	Name     string
	Spec     Spec
	Analysis Analysis
	// Hardened lists SH techniques applied to produce this variant
	// (empty for the original library).
	Hardened []string
	// Trusted marks libraries that are part of the TCB regardless of
	// metadata (e.g. the scheduler and memory manager under the MPK
	// backend, which hold PKRU values and the page table).
	Trusted bool
}

// VariantName renders "name" or "name+cfi+dfi" for hardened variants.
func (l *Library) VariantName() string {
	if len(l.Hardened) == 0 {
		return l.Name
	}
	return l.Name + "+" + strings.Join(l.Hardened, "+")
}

// Clone returns a deep copy of the library.
func (l *Library) Clone() *Library {
	out := *l
	out.Spec.API = append([]string(nil), l.Spec.API...)
	out.Spec.Requires = append([]Requirement(nil), l.Spec.Requires...)
	out.Spec.Calls.Funcs = append([]string(nil), l.Spec.Calls.Funcs...)
	out.Analysis.Calls = append([]string(nil), l.Analysis.Calls...)
	out.Hardened = append([]string(nil), l.Hardened...)
	if l.Spec.Preconditions != nil {
		out.Spec.Preconditions = make(map[string][]string, len(l.Spec.Preconditions))
		for fn, preds := range l.Spec.Preconditions {
			out.Spec.Preconditions[fn] = append([]string(nil), preds...)
		}
	}
	return &out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
