package spec

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's §5: "The process of writing metadata is error prone, and
// methods for (semi-)automatically generating them should be
// explored." This file is that method: a Recorder taps the gate
// registry's observer hook while a representative workload runs, and
// GenerateDrafts turns the observed call edges into draft library
// metadata — [Call] lists from outgoing edges, [API] from incoming
// ones — for the developer to review. Dynamic analysis can only show
// what code *did*, not what hijacked code *could* do, so the drafts
// deliberately keep conservative wildcard memory behaviour unless the
// developer overrides it; the observed behaviour lands in [Analysis],
// where the SH transformations can use it.

// Observation is one recorded call edge.
type Observation struct {
	From, To, Fn string
}

// Recorder accumulates call edges. Wire its Observe method to
// gate.Registry.SetObserver and run a workload.
type Recorder struct {
	edges map[Observation]uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{edges: make(map[Observation]uint64)} }

// Observe records one call edge. Its signature matches the registry's
// observer hook.
func (r *Recorder) Observe(from, to, fn string) {
	r.edges[Observation{From: from, To: to, Fn: fn}]++
}

// Count reports how often an edge was observed.
func (r *Recorder) Count(from, to, fn string) uint64 {
	return r.edges[Observation{From: from, To: to, Fn: fn}]
}

// Edges returns all distinct observed edges, sorted.
func (r *Recorder) Edges() []Observation {
	out := make([]Observation, 0, len(r.edges))
	for e := range r.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// Libraries returns the names of every library that appeared on either
// side of an edge, sorted.
func (r *Recorder) Libraries() []string {
	set := map[string]bool{}
	for e := range r.edges {
		set[e.From] = true
		set[e.To] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GenerateDrafts builds draft metadata for every observed library.
// Outgoing edges become the [Analysis] call ground truth (and, for the
// draft, an explicit [Call] list); incoming functions become [API].
// Memory behaviour stays conservative (wildcard) because dynamic
// observation cannot bound what hijacked code could do — the developer
// narrows it after review, or leaves it to the DFI transformation.
func (r *Recorder) GenerateDrafts() []*Library {
	edges := r.Edges()
	calls := map[string]map[string]bool{} // lib -> "to::fn"
	api := map[string]map[string]bool{}   // lib -> fn
	for _, e := range edges {
		if calls[e.From] == nil {
			calls[e.From] = map[string]bool{}
		}
		calls[e.From][e.To+"::"+e.Fn] = true
		if api[e.To] == nil {
			api[e.To] = map[string]bool{}
		}
		api[e.To][e.Fn] = true
	}
	var out []*Library
	for _, name := range r.Libraries() {
		l := &Library{Name: name}
		l.Spec.Reads = NewRegionSet(RegionAll)
		l.Spec.Writes = NewRegionSet(RegionAll)
		l.Spec.Calls = WildcardCalls
		var observed []string
		for fn := range calls[name] {
			observed = append(observed, fn)
		}
		sort.Strings(observed)
		l.Analysis.Calls = observed
		l.Analysis.Reads = NewRegionSet(RegionOwn, RegionShared)
		l.Analysis.Writes = NewRegionSet(RegionOwn, RegionShared)
		var apiFns []string
		for fn := range api[name] {
			apiFns = append(apiFns, fn)
		}
		sort.Strings(apiFns)
		l.Spec.API = apiFns
		out = append(out, l)
	}
	return out
}

// RenderMetadata renders the drafts in the metadata language, ready
// for developer review (and for Parse — the output round-trips).
func (r *Recorder) RenderMetadata() string {
	var b strings.Builder
	b.WriteString("# Draft metadata generated from observed behaviour.\n")
	b.WriteString("# Review before use: memory access is conservatively wildcard;\n")
	b.WriteString("# add [Requires] clauses for components with safety properties.\n")
	for _, l := range r.GenerateDrafts() {
		fmt.Fprintf(&b, "\nlibrary %s {\n", l.Name)
		for _, line := range strings.Split(strings.TrimRight(l.Spec.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		if len(l.Analysis.Calls) > 0 {
			fmt.Fprintf(&b, "  [Analysis] calls(%s); writes(Own,Shared); reads(Own,Shared)\n",
				strings.Join(l.Analysis.Calls, ", "))
		} else {
			b.WriteString("  [Analysis] writes(Own,Shared); reads(Own,Shared)\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}
