package explore

import (
	"fmt"
	"strings"
	"testing"

	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// renderCandidates serializes every observable field of a candidate
// list so two explorations can be compared byte for byte (floats at
// full precision — any ranking flicker must show up here).
func renderCandidates(cands []*Candidate) string {
	var b strings.Builder
	for i, c := range cands {
		names := make([]string, len(c.Libs))
		for j, l := range c.Libs {
			names[j] = l.VariantName()
		}
		fmt.Fprintf(&b, "%d: libs=%v colors=%v plan=%v backend=%v hardened=%d separated=%d sec=%.17g est=%.17g heur=%v\n",
			i, names, c.Assignment.Colors, c.Plan.Compartments, c.Backend,
			c.HardenedLibs, c.SeparatedPairs, c.Security, c.EstCycles, c.Heuristic)
	}
	return b.String()
}

// TestExploreDeterministicAcrossWorkers pins the tentpole guarantee:
// the parallel explorer returns byte-identical candidates in the same
// order as the serial path, for every worker count.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	libs := spec.DefaultImage()
	w := DefaultWorkload()
	serial, sstats, err := ExploreOpts(libs, gate.MPKShared, w, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Workers != 1 {
		t.Fatalf("serial run used %d workers", sstats.Workers)
	}
	want := renderCandidates(serial)
	for _, workers := range []int{2, 8} {
		got, stats, err := ExploreOpts(libs, gate.MPKShared, w, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rendered := renderCandidates(got); rendered != want {
			t.Errorf("workers=%d output differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, want, rendered)
		}
		if stats.Combinations != sstats.Combinations {
			t.Errorf("workers=%d saw %d combinations, serial saw %d",
				workers, stats.Combinations, sstats.Combinations)
		}
	}
}

// TestExploreStats checks the coloring cache's bookkeeping: hits and
// misses partition the combinations, and the shared conflict
// structure of the default image actually produces hits.
func TestExploreStats(t *testing.T) {
	_, stats, err := ExploreOpts(spec.DefaultImage(), gate.MPKShared, DefaultWorkload(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Combinations != 16 {
		t.Fatalf("got %d combinations, want 16", stats.Combinations)
	}
	if stats.CacheHits+stats.CacheMisses != stats.Combinations {
		t.Errorf("hits %d + misses %d != combinations %d",
			stats.CacheHits, stats.CacheMisses, stats.Combinations)
	}
	if stats.CacheMisses < 1 {
		t.Error("no coloring was ever computed")
	}
	if stats.CacheHits < 1 {
		t.Errorf("expected shared conflict structure to produce cache hits, got %d misses for %d combos",
			stats.CacheMisses, stats.Combinations)
	}
	if stats.ExactFallbacks != 0 {
		t.Errorf("default image should color exactly, got %d DSATUR fallbacks", stats.ExactFallbacks)
	}
}

// TestExploreSurfacesExactFallback drives the explorer past the exact
// solver's vertex limit and checks the DSATUR fallback is counted and
// marked on the candidate instead of being swallowed.
func TestExploreSurfacesExactFallback(t *testing.T) {
	n := 45 // beyond coloring.ExactLimit
	libs := make([]*spec.Library, n)
	for i := range libs {
		libs[i] = &spec.Library{Name: fmt.Sprintf("lib%02d", i)}
	}
	cands, stats, err := ExploreOpts(libs, gate.MPKShared, DefaultWorkload(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	if !cands[0].Heuristic {
		t.Error("candidate not marked Heuristic after DSATUR fallback")
	}
	if !cands[0].Plan.Heuristic {
		t.Error("plan not marked Heuristic after DSATUR fallback")
	}
	if stats.ExactFallbacks != 1 {
		t.Errorf("got %d fallbacks, want 1", stats.ExactFallbacks)
	}
}

// TestParetoFrontMatchesQuadratic cross-checks the skyline sweep
// against the definitional O(n²) dominance filter on a mixed input
// with ties and duplicates.
func TestParetoFrontMatchesQuadratic(t *testing.T) {
	mk := func(cost, sec float64) *Candidate {
		return &Candidate{EstCycles: cost, Security: sec}
	}
	cands := []*Candidate{
		mk(4000, 0), mk(4500, 3), mk(4500, 3), // duplicate skyline point
		mk(4500, 2),              // same cost, dominated
		mk(5000, 3),              // dominated by cheaper equal-security
		mk(5200, 5), mk(6000, 4), // one on, one off the front
		mk(6100, 7), mk(6100, 7), mk(6100, 6),
	}
	want := map[*Candidate]bool{}
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if o == c {
				continue
			}
			if o.Security >= c.Security && o.EstCycles <= c.EstCycles &&
				(o.Security > c.Security || o.EstCycles < c.EstCycles) {
				dominated = true
				break
			}
		}
		if !dominated {
			want[c] = true
		}
	}
	front := ParetoFront(cands)
	if len(front) != len(want) {
		t.Fatalf("skyline kept %d candidates, quadratic keeps %d", len(front), len(want))
	}
	for _, c := range front {
		if !want[c] {
			t.Errorf("skyline kept dominated candidate (%.0f, %.1f)", c.EstCycles, c.Security)
		}
	}
	for i := 1; i < len(front); i++ {
		if front[i].EstCycles < front[i-1].EstCycles {
			t.Error("front not sorted by cost")
		}
	}
}
