// Package explore automates FlexOS's design-space exploration.
//
// The paper frames two search strategies over the space of isolation
// and hardening choices:
//
//  1. Given a performance target and predefined compartments, find the
//     combination of isolation primitives that maximizes security
//     within the budget.
//  2. Given a set of safety requirements, find a compliant
//     instantiation that yields the best performance.
//
// Both need the same machinery, built here: enumerate the SH-variant
// combinations of every library (spec.Combinations), run graph
// coloring on each combination's conflict matrix (compat + coloring),
// estimate each candidate's cost from a workload profile (cross-
// compartment call rates x gate crossing costs + hardening taxes), and
// rank. The result is the full list of deployable configurations with
// security and performance scores — the paper's Figure 1 trade-off
// area, made enumerable.
package explore

import (
	"fmt"
	"sort"

	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// Workload profiles the application driving the image: how often each
// library pair calls across, per application-level operation, and the
// baseline cycles one operation costs. The harness can measure these
// from a live image; DefaultWorkload approximates the Redis workload.
type Workload struct {
	// CallRates is calls per operation between ordered library pairs.
	CallRates map[[2]string]float64
	// SHTax is the extra cycles per operation a library costs when
	// hardened (its memory-op density times the check cost).
	SHTax map[string]float64
	// BaseCycles is the uncompartmentalized, unhardened cost of one
	// operation.
	BaseCycles float64
}

// DefaultWorkload approximates the paper's Redis SET/GET workload, the
// rates mirroring the crossing pattern measured by the harness:
// several app<->libc<->netstack crossings plus semaphore traffic into
// the scheduler per request.
func DefaultWorkload() Workload {
	return Workload{
		CallRates: map[[2]string]float64{
			{"app", "libc"}:       8,
			{"libc", "netstack"}:  4,
			{"netstack", "libc"}:  6,
			{"libc", "sched"}:     3,
			{"netstack", "alloc"}: 3,
			{"app", "alloc"}:      1,
			{"rest", "libc"}:      1,
		},
		SHTax: map[string]float64{
			"libc":     5200,
			"netstack": 260,
			"sched":    40,
			"alloc":    700,
			"app":      900,
			"rest":     650,
		},
		BaseCycles: 4000,
	}
}

// Candidate is one point of the design space: a variant combination, a
// minimal coloring for it, and its scores.
type Candidate struct {
	// Libs is the chosen variant of each library.
	Libs []*spec.Library
	// Plan is the compartmentalization derived by coloring.
	Plan *coloring.Plan
	// Assignment is the underlying coloring.
	Assignment coloring.Assignment
	// Backend is the crossing mechanism the scores assume.
	Backend gate.Backend
	// HardenedLibs counts SH variants in the combination.
	HardenedLibs int
	// SeparatedPairs counts library pairs placed in different
	// compartments.
	SeparatedPairs int
	// Security is the candidate's security score (higher is better).
	Security float64
	// EstCycles is the estimated per-operation cost.
	EstCycles float64
}

// Slowdown reports estimated cost relative to the workload baseline.
func (c *Candidate) Slowdown(w Workload) float64 {
	if w.BaseCycles == 0 {
		return 0
	}
	return c.EstCycles / w.BaseCycles
}

// Describe renders a one-line summary.
func (c *Candidate) Describe() string {
	names := make([]string, len(c.Libs))
	for i, l := range c.Libs {
		names[i] = l.VariantName()
	}
	return fmt.Sprintf("%d compartments, %d hardened, security %.1f, est %.0f cycles/op (%v)",
		c.Plan.NumCompartments(), c.HardenedLibs, c.Security, c.EstCycles, names)
}

// score fills the derived fields of a candidate.
func (c *Candidate) score(w Workload) {
	n := len(c.Libs)
	c.HardenedLibs = 0
	for _, l := range c.Libs {
		if len(l.Hardened) > 0 {
			c.HardenedLibs++
		}
	}
	c.SeparatedPairs = 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.Assignment.Colors[i] != c.Assignment.Colors[j] {
				c.SeparatedPairs++
			}
		}
	}
	// Security: every separated pair is a hardware boundary an exploit
	// must cross; every hardened library resists hijack in place.
	// Wildcard libraries co-resident with others drag the score down.
	c.Security = float64(c.SeparatedPairs) + 0.5*float64(c.HardenedLibs)
	for i, l := range c.Libs {
		if !l.Spec.Writes.All && !l.Spec.Calls.All {
			continue
		}
		// A still-wild library sharing a compartment weakens it.
		for j := range c.Libs {
			if j != i && c.Assignment.Colors[i] == c.Assignment.Colors[j] {
				c.Security -= 0.25
			}
		}
	}

	// Cost: base + crossings x gate cost + hardening taxes.
	cost := w.BaseCycles
	idx := make(map[string]int, n)
	for i, l := range c.Libs {
		idx[l.Name] = i
	}
	for pair, rate := range w.CallRates {
		i, okA := idx[pair[0]]
		j, okB := idx[pair[1]]
		if !okA || !okB {
			continue
		}
		if c.Assignment.Colors[i] != c.Assignment.Colors[j] {
			cost += rate * float64(gate.CrossingCost(c.Backend))
		}
	}
	for _, l := range c.Libs {
		if len(l.Hardened) > 0 {
			cost += w.SHTax[l.Name]
		}
	}
	c.EstCycles = cost
}

// Explore enumerates every SH-variant combination, colors each one
// minimally (exactly for small graphs, DSATUR otherwise), and scores
// the candidates against the workload.
func Explore(libs []*spec.Library, backend gate.Backend, w Workload) ([]*Candidate, error) {
	combos, err := spec.Combinations(libs)
	if err != nil {
		return nil, err
	}
	out := make([]*Candidate, 0, len(combos))
	for _, combo := range combos {
		m := compat.BuildMatrix(combo)
		g := coloring.FromMatrix(m)
		asg, err := coloring.Exact(g)
		if err != nil {
			asg = coloring.DSATUR(g)
		}
		c := &Candidate{
			Libs:       combo,
			Assignment: asg,
			Plan:       coloring.PlanFromAssignment(m, asg),
			Backend:    backend,
		}
		c.score(w)
		out = append(out, c)
	}
	return out, nil
}

// MaxSecurityWithinBudget returns the most secure candidate whose
// estimated slowdown stays within budget (e.g. 1.5 = at most 50%
// slower than baseline). It returns nil if none qualifies.
func MaxSecurityWithinBudget(cands []*Candidate, w Workload, budget float64) *Candidate {
	var best *Candidate
	for _, c := range cands {
		if c.Slowdown(w) > budget {
			continue
		}
		if best == nil || c.Security > best.Security ||
			(c.Security == best.Security && c.EstCycles < best.EstCycles) {
			best = c
		}
	}
	return best
}

// Requirement is a predicate a deployment must satisfy (e.g. "the
// scheduler shares no compartment with a wildcard writer").
type Requirement func(*Candidate) bool

// SeparatedFrom requires two libraries to live in different
// compartments.
func SeparatedFrom(a, b string) Requirement {
	return func(c *Candidate) bool {
		return c.Plan.CompartmentOf(variantOf(c, a)) != c.Plan.CompartmentOf(variantOf(c, b))
	}
}

// NoWildcardWrites requires every library's (possibly hardened)
// metadata to be free of Write(*) — the "no buffer overflows reach
// others' memory" safety requirement of the paper's example.
func NoWildcardWrites() Requirement {
	return func(c *Candidate) bool {
		for _, l := range c.Libs {
			if l.Spec.Writes.All {
				return false
			}
		}
		return true
	}
}

// Hardened requires a specific library to run with SH.
func Hardened(lib string) Requirement {
	return func(c *Candidate) bool {
		for _, l := range c.Libs {
			if l.Name == lib {
				return len(l.Hardened) > 0
			}
		}
		return false
	}
}

// variantOf resolves a base library name to its variant name inside a
// candidate.
func variantOf(c *Candidate, name string) string {
	for _, l := range c.Libs {
		if l.Name == name {
			return l.VariantName()
		}
	}
	return name
}

// BestPerfMeetingRequirements returns the cheapest candidate
// satisfying every requirement, or nil.
func BestPerfMeetingRequirements(cands []*Candidate, reqs ...Requirement) *Candidate {
	var best *Candidate
next:
	for _, c := range cands {
		for _, r := range reqs {
			if !r(c) {
				continue next
			}
		}
		if best == nil || c.EstCycles < best.EstCycles ||
			(c.EstCycles == best.EstCycles && c.Security > best.Security) {
			best = c
		}
	}
	return best
}

// ParetoFront returns the candidates not dominated in
// (security, -cost), sorted by cost.
func ParetoFront(cands []*Candidate) []*Candidate {
	var front []*Candidate
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if o == c {
				continue
			}
			if o.Security >= c.Security && o.EstCycles <= c.EstCycles &&
				(o.Security > c.Security || o.EstCycles < c.EstCycles) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].EstCycles != front[j].EstCycles {
			return front[i].EstCycles < front[j].EstCycles
		}
		return front[i].Security > front[j].Security
	})
	return front
}
