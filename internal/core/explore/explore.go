// Package explore automates FlexOS's design-space exploration.
//
// The paper frames two search strategies over the space of isolation
// and hardening choices:
//
//  1. Given a performance target and predefined compartments, find the
//     combination of isolation primitives that maximizes security
//     within the budget.
//  2. Given a set of safety requirements, find a compliant
//     instantiation that yields the best performance.
//
// Both need the same machinery, built here: enumerate the SH-variant
// combinations of every library (spec.Combinations), run graph
// coloring on each combination's conflict matrix (compat + coloring),
// estimate each candidate's cost from a workload profile (cross-
// compartment call rates x gate crossing costs + hardening taxes), and
// rank. The result is the full list of deployable configurations with
// security and performance scores — the paper's Figure 1 trade-off
// area, made enumerable.
package explore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// Workload profiles the application driving the image: how often each
// library pair calls across, per application-level operation, and the
// baseline cycles one operation costs. The harness can measure these
// from a live image; DefaultWorkload approximates the Redis workload.
type Workload struct {
	// CallRates is calls per operation between ordered library pairs.
	CallRates map[[2]string]float64
	// SHTax is the extra cycles per operation a library costs when
	// hardened (its memory-op density times the check cost).
	SHTax map[string]float64
	// BaseCycles is the uncompartmentalized, unhardened cost of one
	// operation.
	BaseCycles float64
}

// DefaultWorkload approximates the paper's Redis SET/GET workload, the
// rates mirroring the crossing pattern measured by the harness:
// several app<->libc<->netstack crossings plus semaphore traffic into
// the scheduler per request.
func DefaultWorkload() Workload {
	return Workload{
		CallRates: map[[2]string]float64{
			{"app", "libc"}:       8,
			{"libc", "netstack"}:  4,
			{"netstack", "libc"}:  6,
			{"libc", "sched"}:     3,
			{"netstack", "alloc"}: 3,
			{"app", "alloc"}:      1,
			{"rest", "libc"}:      1,
		},
		SHTax: map[string]float64{
			"libc":     5200,
			"netstack": 260,
			"sched":    40,
			"alloc":    700,
			"app":      900,
			"rest":     650,
		},
		BaseCycles: 4000,
	}
}

// Candidate is one point of the design space: a variant combination, a
// minimal coloring for it, and its scores.
type Candidate struct {
	// Libs is the chosen variant of each library.
	Libs []*spec.Library
	// Plan is the compartmentalization derived by coloring.
	Plan *coloring.Plan
	// Assignment is the underlying coloring.
	Assignment coloring.Assignment
	// Backend is the crossing mechanism the scores assume.
	Backend gate.Backend
	// HardenedLibs counts SH variants in the combination.
	HardenedLibs int
	// SeparatedPairs counts library pairs placed in different
	// compartments.
	SeparatedPairs int
	// Security is the candidate's security score (higher is better).
	Security float64
	// EstCycles is the estimated per-operation cost.
	EstCycles float64
	// Heuristic marks a candidate whose coloring came from the DSATUR
	// fallback instead of the exact solver (see Stats.ExactFallbacks).
	Heuristic bool
}

// Slowdown reports estimated cost relative to the workload baseline.
func (c *Candidate) Slowdown(w Workload) float64 {
	if w.BaseCycles == 0 {
		return 0
	}
	return c.EstCycles / w.BaseCycles
}

// Describe renders a one-line summary.
func (c *Candidate) Describe() string {
	names := make([]string, len(c.Libs))
	for i, l := range c.Libs {
		names[i] = l.VariantName()
	}
	return fmt.Sprintf("%d compartments, %d hardened, security %.1f, est %.0f cycles/op (%v)",
		c.Plan.NumCompartments(), c.HardenedLibs, c.Security, c.EstCycles, names)
}

// scoreCtx is the scoring state shared by every candidate of one
// exploration. Variant combinations permute hardening, never library
// identity or order, so the name index, the call-rate list and the
// hardening taxes can be resolved to integer indices once instead of
// being rebuilt per candidate. The call rates are flattened into a
// sorted slice so the cost sum runs in a fixed order — map iteration
// would make the float total (and thus candidate ranking) flicker
// between runs.
type scoreCtx struct {
	base  float64   // Workload.BaseCycles
	cross float64   // crossing cost of the chosen backend
	shTax []float64 // per library index
	rates []indexedRate
}

// indexedRate is one Workload.CallRates entry resolved to indices.
type indexedRate struct {
	i, j int
	rate float64
}

// newScoreCtx resolves a workload against the library order of libs.
func newScoreCtx(libs []*spec.Library, backend gate.Backend, w Workload) *scoreCtx {
	idx := make(map[string]int, len(libs))
	for i, l := range libs {
		idx[l.Name] = i
	}
	sc := &scoreCtx{
		base:  w.BaseCycles,
		cross: float64(gate.CrossingCost(backend)),
		shTax: make([]float64, len(libs)),
	}
	for i, l := range libs {
		sc.shTax[i] = w.SHTax[l.Name]
	}
	for pair, rate := range w.CallRates {
		i, okA := idx[pair[0]]
		j, okB := idx[pair[1]]
		if !okA || !okB {
			continue
		}
		sc.rates = append(sc.rates, indexedRate{i: i, j: j, rate: rate})
	}
	sort.Slice(sc.rates, func(a, b int) bool {
		if sc.rates[a].i != sc.rates[b].i {
			return sc.rates[a].i < sc.rates[b].i
		}
		return sc.rates[a].j < sc.rates[b].j
	})
	return sc
}

// score fills the derived fields of a candidate.
func (c *Candidate) score(sc *scoreCtx) {
	n := len(c.Libs)
	c.HardenedLibs = 0
	for _, l := range c.Libs {
		if len(l.Hardened) > 0 {
			c.HardenedLibs++
		}
	}
	c.SeparatedPairs = 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.Assignment.Colors[i] != c.Assignment.Colors[j] {
				c.SeparatedPairs++
			}
		}
	}
	// Security: every separated pair is a hardware boundary an exploit
	// must cross; every hardened library resists hijack in place.
	// Wildcard libraries co-resident with others drag the score down.
	c.Security = float64(c.SeparatedPairs) + 0.5*float64(c.HardenedLibs)
	for i, l := range c.Libs {
		if !l.Spec.Writes.All && !l.Spec.Calls.All {
			continue
		}
		// A still-wild library sharing a compartment weakens it.
		for j := range c.Libs {
			if j != i && c.Assignment.Colors[i] == c.Assignment.Colors[j] {
				c.Security -= 0.25
			}
		}
	}

	// Cost: base + crossings x gate cost + hardening taxes.
	cost := sc.base
	for _, r := range sc.rates {
		if c.Assignment.Colors[r.i] != c.Assignment.Colors[r.j] {
			cost += r.rate * sc.cross
		}
	}
	for i, l := range c.Libs {
		if len(l.Hardened) > 0 {
			cost += sc.shTax[i]
		}
	}
	c.EstCycles = cost
}

// Options tunes Explore's execution; the zero value means "parallel
// across GOMAXPROCS workers".
type Options struct {
	// Workers is the worker-pool size; 0 or negative selects
	// GOMAXPROCS. Results are identical for every worker count.
	Workers int
}

// Stats reports what one exploration did: how much of the coloring
// work the conflict-fingerprint cache absorbed, and how often the
// exact solver declined and DSATUR answered instead (those candidates
// carry a possibly non-minimal compartment count and are marked
// Heuristic).
type Stats struct {
	// Combinations is the number of enumerated variant combinations.
	Combinations int
	// Workers is the effective worker-pool size used.
	Workers int
	// CacheHits counts combinations whose coloring was served from the
	// conflict-fingerprint cache; CacheMisses counts colorings actually
	// computed. Hits+Misses == Combinations.
	CacheHits, CacheMisses int
	// ExactFallbacks counts candidates colored by the DSATUR heuristic
	// after coloring.Exact declined the graph.
	ExactFallbacks int
}

// colorEntry is one memoized coloring; once.Do computes it exactly
// once however many workers race to the same fingerprint.
type colorEntry struct {
	once      sync.Once
	asg       coloring.Assignment
	heuristic bool
}

// colorCache memoizes colorings by conflict-graph fingerprint. Many
// variant combinations produce isomorphic conflict structure —
// hardening any one wildcard library detaches it from the same two
// trusted hubs, so the default image's 16 combinations collapse to 5
// graph shapes — and the exact solver's exponential work is shared
// across each class.
type colorCache struct {
	mu      sync.Mutex
	entries map[string]*colorEntry
	misses  atomic.Int64
}

// mix64 is the splitmix64 finalizer — enough scrambling that summing
// neighbor signatures (commutative, so no per-vertex sort) still
// separates structurally different vertices.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// canonicalize computes an isomorphism-invariant key for a conflict
// graph: vertices are ordered by two rounds of Weisfeiler-Leman-style
// color refinement (ties broken by index), and the key is the edge
// list rewritten in that order. Equal keys guarantee isomorphic
// graphs — the permuted edge lists match exactly — while isomorphic
// graphs that refine differently merely miss the cache, which is
// safe (refinement quality only affects the hit rate, never
// correctness). It returns the key, the vertex -> canonical position
// map, and the canonical edge list.
func canonicalize(n int, edges [][2]int) (string, []int, [][2]int) {
	sig := make([]uint64, n)
	for _, e := range edges {
		sig[e[0]]++
		sig[e[1]]++
	}
	acc := make([]uint64, n)
	for round := 0; round < 2; round++ {
		for i := range acc {
			acc[i] = 0
		}
		for _, e := range edges {
			acc[e[0]] += mix64(sig[e[1]])
			acc[e[1]] += mix64(sig[e[0]])
		}
		for i := 0; i < n; i++ {
			sig[i] = mix64(sig[i]) + acc[i]
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sig[order[a]] != sig[order[b]] {
			return sig[order[a]] < sig[order[b]]
		}
		return order[a] < order[b]
	})
	perm := make([]int, n)
	for pos, v := range order {
		perm[v] = pos
	}
	canon := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := perm[e[0]], perm[e[1]]
		if a > b {
			a, b = b, a
		}
		canon[i] = [2]int{a, b}
	}
	sort.Slice(canon, func(a, b int) bool {
		if canon[a][0] != canon[b][0] {
			return canon[a][0] < canon[b][0]
		}
		return canon[a][1] < canon[b][1]
	})
	key := make([]byte, 0, 1+2*len(canon))
	key = append(key, byte(n))
	for _, e := range canon {
		key = append(key, byte(e[0]), byte(e[1]))
	}
	return string(key), perm, canon
}

// color returns the memoized minimal coloring for the matrix and
// whether it came from the DSATUR fallback. The cached coloring is
// computed on the canonical graph — a pure function of the cache key,
// so the result is identical no matter which worker fills the entry —
// and translated back through the combination's own vertex order.
func (cc *colorCache) color(m *compat.Matrix) (coloring.Assignment, bool) {
	n := m.Len()
	key, perm, canon := canonicalize(n, m.Edges())
	cc.mu.Lock()
	e, ok := cc.entries[key]
	if !ok {
		e = &colorEntry{}
		cc.entries[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() {
		cc.misses.Add(1)
		g := coloring.NewGraph(n)
		for _, edge := range canon {
			g.AddEdge(edge[0], edge[1])
		}
		asg, err := coloring.Exact(g)
		if err != nil {
			asg = coloring.DSATUR(g)
			e.heuristic = true
		}
		e.asg = asg
	})
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = e.asg.Colors[perm[v]]
	}
	return coloring.Assignment{Colors: colors, NumColors: e.asg.NumColors}, e.heuristic
}

// Explore enumerates every SH-variant combination, colors each one
// minimally (exactly for small graphs, DSATUR otherwise), and scores
// the candidates against the workload. It runs the combinations over
// a GOMAXPROCS-sized worker pool; use ExploreOpts to control the pool
// or to read the exploration stats.
func Explore(libs []*spec.Library, backend gate.Backend, w Workload) ([]*Candidate, error) {
	cands, _, err := ExploreOpts(libs, backend, w, Options{})
	return cands, err
}

// ExploreOpts is Explore with explicit execution options and stats.
// The candidate list is deterministic: identical for every worker
// count, in combination-enumeration order.
func ExploreOpts(libs []*spec.Library, backend gate.Backend, w Workload, opt Options) ([]*Candidate, Stats, error) {
	combos, err := spec.Combinations(libs)
	if err != nil {
		return nil, Stats{}, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(combos) {
		workers = len(combos)
	}
	if workers < 1 {
		workers = 1
	}

	sc := newScoreCtx(libs, backend, w)
	cache := &colorCache{entries: make(map[string]*colorEntry)}
	out := make([]*Candidate, len(combos))

	// Workers pull combination indices from a shared counter and write
	// each candidate to its own slot, so the output order is the
	// enumeration order no matter how the work interleaves.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(combos) {
					return
				}
				combo := combos[i]
				m := compat.BuildMatrix(combo)
				asg, heuristic := cache.color(m)
				c := &Candidate{
					Libs:       combo,
					Assignment: asg,
					Plan:       coloring.PlanFromAssignment(m, asg),
					Backend:    backend,
					Heuristic:  heuristic,
				}
				c.Plan.Heuristic = heuristic
				c.score(sc)
				out[i] = c
			}
		}()
	}
	wg.Wait()

	stats := Stats{
		Combinations: len(combos),
		Workers:      workers,
		CacheMisses:  int(cache.misses.Load()),
	}
	stats.CacheHits = stats.Combinations - stats.CacheMisses
	for _, c := range out {
		if c.Heuristic {
			stats.ExactFallbacks++
		}
	}
	return out, stats, nil
}

// MaxSecurityWithinBudget returns the most secure candidate whose
// estimated slowdown stays within budget (e.g. 1.5 = at most 50%
// slower than baseline). It returns nil if none qualifies.
func MaxSecurityWithinBudget(cands []*Candidate, w Workload, budget float64) *Candidate {
	var best *Candidate
	for _, c := range cands {
		if c.Slowdown(w) > budget {
			continue
		}
		if best == nil || c.Security > best.Security ||
			(c.Security == best.Security && c.EstCycles < best.EstCycles) {
			best = c
		}
	}
	return best
}

// Requirement is a predicate a deployment must satisfy (e.g. "the
// scheduler shares no compartment with a wildcard writer").
type Requirement func(*Candidate) bool

// SeparatedFrom requires two libraries to live in different
// compartments.
func SeparatedFrom(a, b string) Requirement {
	return func(c *Candidate) bool {
		return c.Plan.CompartmentOf(variantOf(c, a)) != c.Plan.CompartmentOf(variantOf(c, b))
	}
}

// NoWildcardWrites requires every library's (possibly hardened)
// metadata to be free of Write(*) — the "no buffer overflows reach
// others' memory" safety requirement of the paper's example.
func NoWildcardWrites() Requirement {
	return func(c *Candidate) bool {
		for _, l := range c.Libs {
			if l.Spec.Writes.All {
				return false
			}
		}
		return true
	}
}

// Hardened requires a specific library to run with SH.
func Hardened(lib string) Requirement {
	return func(c *Candidate) bool {
		for _, l := range c.Libs {
			if l.Name == lib {
				return len(l.Hardened) > 0
			}
		}
		return false
	}
}

// variantOf resolves a base library name to its variant name inside a
// candidate.
func variantOf(c *Candidate, name string) string {
	for _, l := range c.Libs {
		if l.Name == name {
			return l.VariantName()
		}
	}
	return name
}

// BestPerfMeetingRequirements returns the cheapest candidate
// satisfying every requirement, or nil.
func BestPerfMeetingRequirements(cands []*Candidate, reqs ...Requirement) *Candidate {
	var best *Candidate
next:
	for _, c := range cands {
		for _, r := range reqs {
			if !r(c) {
				continue next
			}
		}
		if best == nil || c.EstCycles < best.EstCycles ||
			(c.EstCycles == best.EstCycles && c.Security > best.Security) {
			best = c
		}
	}
	return best
}

// ParetoFront returns the candidates not dominated in
// (security, -cost), sorted by cost. It is an O(n log n) skyline
// sweep: with candidates ordered by (cost asc, security desc), a
// candidate survives iff it strictly beats the best security seen so
// far — or exactly ties the current skyline point, since a tie
// dominates in neither coordinate.
func ParetoFront(cands []*Candidate) []*Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := append([]*Candidate(nil), cands...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].EstCycles != sorted[j].EstCycles {
			return sorted[i].EstCycles < sorted[j].EstCycles
		}
		return sorted[i].Security > sorted[j].Security
	})
	var front []*Candidate
	bestSec, bestSecCost := 0.0, 0.0
	for _, c := range sorted {
		switch {
		case len(front) == 0 || c.Security > bestSec:
			bestSec, bestSecCost = c.Security, c.EstCycles
			front = append(front, c)
		case c.Security == bestSec && c.EstCycles == bestSecCost:
			// Exact duplicate of the current skyline point: neither
			// dominates the other, both are on the front.
			front = append(front, c)
		}
	}
	return front
}
