package explore

import (
	"testing"

	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

func defaultCandidates(t *testing.T, backend gate.Backend) []*Candidate {
	t.Helper()
	cands, err := Explore(spec.DefaultImage(), backend, DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

func TestDefaultImageParses(t *testing.T) {
	libs := spec.DefaultImage()
	if len(libs) != 6 {
		t.Fatalf("libs = %d", len(libs))
	}
	if !libs[0].Trusted || libs[0].Name != "sched" {
		t.Fatal("sched must be first and trusted")
	}
}

func TestExploreEnumeratesCombinations(t *testing.T) {
	cands := defaultCandidates(t, gate.MPKShared)
	// Four libraries have SH variants (libc, netstack, app, rest):
	// 2^4 combinations.
	if len(cands) != 16 {
		t.Fatalf("candidates = %d, want 16", len(cands))
	}
	for _, c := range cands {
		if err := coloring.Validate(coloring.FromMatrix(compat.BuildMatrix(c.Libs)), c.Assignment); err != nil {
			t.Fatalf("invalid coloring for %s: %v", c.Describe(), err)
		}
		if c.Describe() == "" {
			t.Fatal("empty description")
		}
	}
}

func TestAllOriginalNeedsTwoCompartments(t *testing.T) {
	// The verified scheduler and the MM cannot share a compartment
	// with wildcard writers; everything else can pile together.
	cands := defaultCandidates(t, gate.MPKShared)
	var allOriginal *Candidate
	for _, c := range cands {
		if c.HardenedLibs == 0 {
			allOriginal = c
		}
	}
	if allOriginal == nil {
		t.Fatal("no unhardened candidate")
	}
	if got := allOriginal.Plan.NumCompartments(); got != 2 {
		t.Fatalf("unhardened image needs %d compartments, want 2", got)
	}
}

func TestAllHardenedCollapsesToOneCompartment(t *testing.T) {
	// With every wildcard library hardened (DFI narrows writes, CFI
	// narrows calls), everything may cohabit: SH substitutes for
	// hardware isolation — the paper's central trade.
	cands := defaultCandidates(t, gate.MPKShared)
	var allHardened *Candidate
	for _, c := range cands {
		if c.HardenedLibs == 4 {
			allHardened = c
		}
	}
	if allHardened == nil {
		t.Fatal("no fully hardened candidate")
	}
	if got := allHardened.Plan.NumCompartments(); got != 1 {
		t.Fatalf("fully hardened image uses %d compartments, want 1", got)
	}
}

func TestMaxSecurityWithinBudget(t *testing.T) {
	w := DefaultWorkload()
	cands := defaultCandidates(t, gate.MPKShared)
	// A generous budget admits the most secure candidate; a budget of
	// 1.0 admits only the baseline-cost ones.
	best := MaxSecurityWithinBudget(cands, w, 10.0)
	if best == nil {
		t.Fatal("no candidate within generous budget")
	}
	tight := MaxSecurityWithinBudget(cands, w, 1.0)
	if tight != nil && tight.Slowdown(w) > 1.0 {
		t.Fatalf("budget violated: %.2f", tight.Slowdown(w))
	}
	if best.Security == 0 {
		t.Fatal("best candidate has zero security")
	}
	// Tightening the budget cannot raise security.
	mid := MaxSecurityWithinBudget(cands, w, 1.5)
	if mid != nil && mid.Security > best.Security {
		t.Fatal("tighter budget found more security")
	}
	if none := MaxSecurityWithinBudget(cands, w, 0.01); none != nil {
		t.Fatal("impossible budget satisfied")
	}
}

func TestBestPerfMeetingRequirements(t *testing.T) {
	cands := defaultCandidates(t, gate.MPKShared)
	// "No buffer overflows" (no wildcard writes) — the paper's example
	// safety requirement. Cheapest compliant instantiation hardens
	// writes everywhere instead of isolating everything.
	best := BestPerfMeetingRequirements(cands, NoWildcardWrites())
	if best == nil {
		t.Fatal("no compliant candidate")
	}
	for _, l := range best.Libs {
		if l.Spec.Writes.All {
			t.Fatalf("requirement violated by %s", l.VariantName())
		}
	}
	// Requiring netstack isolated from sched.
	sep := BestPerfMeetingRequirements(cands, SeparatedFrom("netstack", "sched"))
	if sep == nil {
		t.Fatal("no separated candidate")
	}
	if sep.Plan.CompartmentOf(variantOf(sep, "netstack")) == sep.Plan.CompartmentOf(variantOf(sep, "sched")) {
		t.Fatal("separation requirement violated")
	}
	// Requiring libc hardened.
	h := BestPerfMeetingRequirements(cands, Hardened("libc"))
	if h == nil {
		t.Fatal("no hardened-libc candidate")
	}
	found := false
	for _, l := range h.Libs {
		if l.Name == "libc" && len(l.Hardened) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("libc not hardened in result")
	}
	// Unsatisfiable requirement.
	if BestPerfMeetingRequirements(cands, Hardened("sched")) != nil {
		t.Fatal("impossible requirement satisfied (sched has no SH variant)")
	}
}

func TestParetoFront(t *testing.T) {
	w := DefaultWorkload()
	cands := defaultCandidates(t, gate.MPKShared)
	front := ParetoFront(cands)
	if len(front) == 0 || len(front) > len(cands) {
		t.Fatalf("front size = %d", len(front))
	}
	// Sorted by cost, and no member dominated by another member.
	for i := 1; i < len(front); i++ {
		if front[i].EstCycles < front[i-1].EstCycles {
			t.Fatal("front not sorted by cost")
		}
		if front[i].Security <= front[i-1].Security {
			t.Fatal("front not strictly improving in security")
		}
	}
	_ = w
}

func TestBackendChangesCost(t *testing.T) {
	w := DefaultWorkload()
	mpkCands := defaultCandidates(t, gate.MPKShared)
	vmCands := defaultCandidates(t, gate.VMRPC)
	// Compare the unhardened (2-compartment) candidate across
	// backends: VM crossings are far more expensive.
	pick := func(cands []*Candidate) *Candidate {
		for _, c := range cands {
			if c.HardenedLibs == 0 {
				return c
			}
		}
		return nil
	}
	m, v := pick(mpkCands), pick(vmCands)
	if m == nil || v == nil {
		t.Fatal("missing candidates")
	}
	if v.EstCycles <= m.EstCycles {
		t.Fatalf("VM (%f) should cost more than MPK (%f)", v.EstCycles, m.EstCycles)
	}
	_ = w
}

func TestSlowdownZeroBase(t *testing.T) {
	c := &Candidate{EstCycles: 100}
	if c.Slowdown(Workload{}) != 0 {
		t.Fatal("zero-base slowdown should be 0")
	}
}
