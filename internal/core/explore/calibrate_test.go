package explore

import (
	"math"
	"testing"

	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// TestBreakdownSumsToEstCycles pins the decomposition against the
// scorer: Base+Crossing+SHTax must reproduce EstCycles exactly for
// every explored candidate on every backend.
func TestBreakdownSumsToEstCycles(t *testing.T) {
	w := DefaultWorkload()
	for _, be := range []gate.Backend{gate.MPKShared, gate.MPKSwitched, gate.VMRPC} {
		cands, err := Explore(spec.DefaultImage(), be, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			b := Breakdown(c, w)
			if got := b.Predicted(); math.Abs(got-c.EstCycles) > 1e-6 {
				t.Errorf("%v %s: breakdown %.6f != EstCycles %.6f",
					be, c.Describe(), got, c.EstCycles)
			}
		}
	}
}

// TestCalibrateRecoversExactModel feeds Calibrate synthetic points
// generated from known constants; the least-squares fit must recover
// them (the system is exactly determined, no noise).
func TestCalibrateRecoversExactModel(t *testing.T) {
	const b0, s1, s2 = 7000.0, 1.5, 0.25
	var pts []CalPoint
	for _, term := range [][2]float64{{0, 0}, {1000, 0}, {2000, 500}, {4000, 3000}, {500, 9000}} {
		b := CostBreakdown{Base: 4000, Crossing: term[0], SHTax: term[1]}
		pts = append(pts, CalPoint{Breakdown: b, Measured: b0 + s1*term[0] + s2*term[1]})
	}
	cal := Calibrate(pts)
	if cal.Scalar {
		t.Fatal("full-rank system fell back to scalar fit")
	}
	if math.Abs(cal.Base-b0) > 1e-6 || math.Abs(cal.CrossScale-s1) > 1e-9 || math.Abs(cal.SHScale-s2) > 1e-9 {
		t.Fatalf("fit = %+v, want base %.0f scales %.2f/%.2f", cal, b0, s1, s2)
	}
}

// TestCalibrateDegenerate checks rank-deficient point sets fall back
// to a single proportional scale instead of producing garbage.
func TestCalibrateDegenerate(t *testing.T) {
	// Too few points.
	cal := Calibrate([]CalPoint{{Breakdown: CostBreakdown{Base: 100}, Measured: 200}})
	if !cal.Scalar {
		t.Error("1-point fit should be scalar")
	}
	if math.Abs(cal.CrossScale-2) > 1e-9 {
		t.Errorf("scalar fit = %+v, want scale 2", cal)
	}
	// No variance in either varying column: identical breakdowns.
	b := CostBreakdown{Base: 100, Crossing: 50, SHTax: 10}
	cal = Calibrate([]CalPoint{{b, 320}, {b, 320}, {b, 320}, {b, 320}})
	if !cal.Scalar {
		t.Error("no-variance fit should be scalar")
	}
	if math.Abs(cal.CrossScale-2) > 1e-9 {
		t.Errorf("scalar fit scale = %v, want 2 (320/160)", cal.CrossScale)
	}
	// Empty input: identity.
	cal = Calibrate(nil)
	if !cal.Scalar || cal.CrossScale != 1 || cal.SHScale != 1 || cal.Base != 0 {
		t.Errorf("empty fit = %+v, want identity", cal)
	}
}

// TestCalibrateClampsNegative checks fitted scales never go negative —
// they multiply call rates and taxes downstream.
func TestCalibrateClampsNegative(t *testing.T) {
	// Measured shrinks as crossing grows: the unconstrained fit wants a
	// negative crossing scale.
	var pts []CalPoint
	for i, m := range []float64{5000, 4000, 3000, 2000} {
		pts = append(pts, CalPoint{
			Breakdown: CostBreakdown{Base: 1000, Crossing: float64(i) * 1000, SHTax: float64(i%2) * 100},
			Measured:  m,
		})
	}
	cal := Calibrate(pts)
	if cal.CrossScale < 0 || cal.SHScale < 0 || cal.Base < 0 {
		t.Fatalf("negative coefficient survived: %+v", cal)
	}
}

// TestApplyAndRescore checks the calibrated workload reproduces the
// fitted model through the regular scorer: rescoring a candidate under
// cal.Apply(w) must equal Base + CrossScale·Crossing + SHScale·SHTax
// of its original breakdown.
func TestApplyAndRescore(t *testing.T) {
	w := DefaultWorkload()
	cands, err := Explore(spec.DefaultImage(), gate.MPKSwitched, w)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]CostBreakdown, len(cands))
	for i, c := range cands {
		before[i] = Breakdown(c, w)
	}
	cal := Calibration{Base: 9000, CrossScale: 1.25, SHScale: 0.5}
	cw := cal.Apply(w)
	if w.BaseCycles == cw.BaseCycles {
		t.Fatal("Apply mutated nothing")
	}
	if cw.CallRates[[2]string{"app", "libc"}] != w.CallRates[[2]string{"app", "libc"}]*1.25 {
		t.Fatal("call rate not scaled")
	}
	Rescore(cands, cw)
	for i, c := range cands {
		want := cal.Base + cal.CrossScale*before[i].Crossing + cal.SHScale*before[i].SHTax
		if math.Abs(c.EstCycles-want) > 1e-6 {
			t.Fatalf("candidate %d: rescored %.3f, want %.3f", i, c.EstCycles, want)
		}
	}
	// The original workload must be untouched.
	if w.BaseCycles != DefaultWorkload().BaseCycles {
		t.Fatal("Apply mutated the input workload")
	}
}
