// Calibration closes the exploration loop: the static cost model
// (score) predicts cycles per operation from three terms — baseline,
// crossing traffic, hardening tax — and the autotune harness measures
// the same configurations for real. Fitting the measured cycles
// against the per-candidate term breakdown yields corrected model
// constants, returned as a rescaled Workload so the explorer's next
// ranking starts from ground truth instead of hand-tuned rates.

package explore

import "flexos/internal/core/gate"

// CostBreakdown decomposes one candidate's static prediction into the
// model's terms, in cycles per operation:
//
//	EstCycles = Base + Crossing + SHTax
//
// Base is the workload's uncompartmentalized baseline, Crossing the
// gate traffic of every separated pair, SHTax the hardening taxes.
type CostBreakdown struct {
	Base     float64
	Crossing float64
	SHTax    float64
}

// Predicted is the model's total for this breakdown.
func (b CostBreakdown) Predicted() float64 { return b.Base + b.Crossing + b.SHTax }

// Breakdown recomputes the candidate's cost term by term under w. The
// sum equals the candidate's EstCycles when w is the workload it was
// explored with.
func Breakdown(c *Candidate, w Workload) CostBreakdown {
	sc := newScoreCtx(c.Libs, c.Backend, w)
	b := CostBreakdown{Base: sc.base}
	for _, r := range sc.rates {
		if c.Assignment.Colors[r.i] != c.Assignment.Colors[r.j] {
			b.Crossing += r.rate * sc.cross
		}
	}
	for i, l := range c.Libs {
		if len(l.Hardened) > 0 {
			b.SHTax += sc.shTax[i]
		}
	}
	return b
}

// CalPoint pairs one candidate's predicted cost terms with the cycles
// the simulator actually measured for that configuration.
type CalPoint struct {
	Breakdown CostBreakdown
	Measured  float64
}

// Calibration is a fitted correction of the cost model:
//
//	measured ≈ Base + CrossScale·Crossing + SHScale·SHTax
//
// Base replaces the workload baseline outright; the two scales
// multiply the crossing and hardening terms.
type Calibration struct {
	Base       float64
	CrossScale float64
	SHScale    float64
	// Scalar marks a degenerate fit (too few points, or no variance in
	// a term) that fell back to one proportional factor for all terms.
	Scalar bool
}

// Calibrate fits the three model constants to the measured points by
// least squares on the normal equations. The design matrix needs
// variance in both the crossing and hardening columns — a point set
// from a single Pareto front usually has it — and falls back to a
// single proportional scale when it is rank-deficient (then Scalar is
// set). Fitted scales are clamped to be non-negative: the downstream
// workload rewrite multiplies call rates and taxes, which must not
// turn negative. With no points the identity calibration is returned.
func Calibrate(points []CalPoint) Calibration {
	if len(points) == 0 {
		return Calibration{Base: 0, CrossScale: 1, SHScale: 1, Scalar: true}
	}
	if cal, ok := solve3(points); ok {
		if cal.Base < 0 {
			cal.Base = 0
		}
		if cal.CrossScale < 0 {
			cal.CrossScale = 0
		}
		if cal.SHScale < 0 {
			cal.SHScale = 0
		}
		return cal
	}
	// Rank-deficient: fit measured ≈ s·predicted through the origin.
	var num, den float64
	for _, p := range points {
		pred := p.Breakdown.Predicted()
		num += p.Measured * pred
		den += pred * pred
	}
	s := 1.0
	if den > 0 {
		s = num / den
	}
	if s < 0 {
		s = 0
	}
	return Calibration{Base: s * points[0].Breakdown.Base, CrossScale: s, SHScale: s, Scalar: true}
}

// solve3 solves the 3-parameter normal equations XᵀX·β = Xᵀy with
// X rows (1, crossing, shtax). It reports ok=false when the system is
// singular (no variance in a column, or fewer than 3 points).
func solve3(points []CalPoint) (Calibration, bool) {
	if len(points) < 3 {
		return Calibration{}, false
	}
	var a [3][3]float64
	var b [3]float64
	for _, p := range points {
		x := [3]float64{1, p.Breakdown.Crossing, p.Breakdown.SHTax}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * p.Measured
		}
	}
	// Gaussian elimination with partial pivoting. The pivot threshold
	// is scaled to the matrix magnitude so "no variance" is detected at
	// any cycle scale.
	scale := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v := a[i][j]; v > scale {
				scale = v
			} else if -v > scale {
				scale = -v
			}
		}
	}
	const relEps = 1e-9
	eps := scale * relEps
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) <= eps {
			return Calibration{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for j := col; j < 3; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return Calibration{
		Base:       b[0] / a[0][0],
		CrossScale: b[1] / a[1][1],
		SHScale:    b[2] / a[2][2],
	}, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Apply rewrites a workload with the fitted constants: BaseCycles is
// replaced by the fitted intercept, every call rate is scaled by
// CrossScale and every hardening tax by SHScale. The input workload is
// not modified — callers keep the uncalibrated model for comparison.
func (cal Calibration) Apply(w Workload) Workload {
	out := Workload{
		BaseCycles: cal.Base,
		CallRates:  make(map[[2]string]float64, len(w.CallRates)),
		SHTax:      make(map[string]float64, len(w.SHTax)),
	}
	for pair, rate := range w.CallRates {
		out.CallRates[pair] = rate * cal.CrossScale
	}
	for lib, tax := range w.SHTax {
		out.SHTax[lib] = tax * cal.SHScale
	}
	return out
}

// Rescore recomputes every candidate's scores under a new workload —
// after a calibration pass, the explorer's ranking can be refreshed in
// place without re-running the coloring. Candidates keep their plans;
// only EstCycles (and the security score, which is workload-free but
// recomputed for symmetry) change.
func Rescore(cands []*Candidate, w Workload) {
	ctxs := make(map[gate.Backend]*scoreCtx)
	for _, c := range cands {
		sc, ok := ctxs[c.Backend]
		if !ok {
			sc = newScoreCtx(c.Libs, c.Backend, w)
			ctxs[c.Backend] = sc
		}
		c.score(sc)
	}
}
