// Package compat decides whether two libraries can share a compartment.
//
// Given two libraries and their metadata there is enough information
// to decide co-residency automatically: if both libraries have no
// Requires clause the answer is yes; otherwise each clause is checked
// against the other library's declared (possibly adversarial)
// behaviour. The paper's running example: the verified scheduler
// expects others to only read, not write, its own memory, while a
// hijackable C component may write to all memory it can reach — so the
// two cannot share a compartment (until the C component is hardened
// with DFI, which narrows its writes).
//
// The pairwise results feed the coloring package, which turns the
// conflict graph into a minimal compartmentalization.
package compat

import (
	"fmt"
	"strings"

	"flexos/internal/core/spec"
)

// Conflict explains one violated requirement: Holder requires
// something Offender's behaviour exceeds.
type Conflict struct {
	Holder   string // library whose Requires clause is violated
	Offender string // library whose behaviour violates it
	Verb     spec.Verb
	Object   string
	Detail   string
}

// String implements fmt.Stringer.
func (c Conflict) String() string {
	return fmt.Sprintf("%s vs %s: %s", c.Holder, c.Offender, c.Detail)
}

// Violations reports every requirement of holder that offender's
// declared behaviour could violate if they shared a compartment.
func Violations(holder, offender *spec.Library) []Conflict {
	if !holder.Spec.HasRequirements() {
		return nil
	}
	var out []Conflict
	addMem := func(v spec.Verb, set spec.RegionSet) {
		if !set.All {
			// Accesses confined to the offender's own memory and the
			// shared region never touch the holder's private memory.
			// The shared region is jointly owned by definition, so
			// grants like *(Write,Shared) are explicit but implicit.
			return
		}
		// Wildcard behaviour reaches the holder's own memory.
		if !holder.Spec.Permits(v, "Own") {
			out = append(out, Conflict{
				Holder: holder.Name, Offender: offender.Name,
				Verb: v, Object: "Own",
				Detail: fmt.Sprintf("%s may %s all memory (including %s's own) but %s grants no *(%s,Own)",
					offender.Name, strings.ToLower(v.String()), holder.Name, holder.Name, v),
			})
		}
	}
	addMem(spec.VerbWrite, offender.Spec.Writes)
	addMem(spec.VerbRead, offender.Spec.Reads)

	// Call behaviour.
	if offender.Spec.Calls.All {
		if !holder.Spec.Permits(spec.VerbCall, "*") {
			out = append(out, Conflict{
				Holder: holder.Name, Offender: offender.Name,
				Verb: spec.VerbCall, Object: "*",
				Detail: fmt.Sprintf("%s may execute arbitrary code but %s restricts entry points",
					offender.Name, holder.Name),
			})
		}
		return out
	}
	for _, fn := range offender.Spec.Calls.Funcs {
		lib, name, ok := splitQualified(fn)
		if !ok || lib != holder.Name {
			continue
		}
		switch {
		case !holder.Spec.ExportsAPI(name):
			out = append(out, Conflict{
				Holder: holder.Name, Offender: offender.Name,
				Verb: spec.VerbCall, Object: name,
				Detail: fmt.Sprintf("%s calls %s which is not an exported entry point of %s",
					offender.Name, fn, holder.Name),
			})
		case !holder.Spec.Permits(spec.VerbCall, name):
			out = append(out, Conflict{
				Holder: holder.Name, Offender: offender.Name,
				Verb: spec.VerbCall, Object: name,
				Detail: fmt.Sprintf("%s grants no *(Call,%s) to %s", holder.Name, name, offender.Name),
			})
		}
	}
	return out
}

// Explain reports the conflicts in both directions.
func Explain(a, b *spec.Library) []Conflict {
	return append(Violations(a, b), Violations(b, a)...)
}

// Compatible reports whether the two libraries may share a compartment.
func Compatible(a, b *spec.Library) bool { return len(Explain(a, b)) == 0 }

func splitQualified(fn string) (lib, name string, ok bool) {
	i := strings.Index(fn, "::")
	if i < 0 {
		return "", fn, false
	}
	return fn[:i], fn[i+2:], true
}

// Matrix is the pairwise incompatibility of a library set: the
// conflict graph handed to the coloring package.
type Matrix struct {
	Libs      []*spec.Library
	conflicts map[[2]int][]Conflict
}

// BuildMatrix computes all pairwise conflicts.
func BuildMatrix(libs []*spec.Library) *Matrix {
	m := &Matrix{Libs: libs, conflicts: make(map[[2]int][]Conflict)}
	for i := 0; i < len(libs); i++ {
		for j := i + 1; j < len(libs); j++ {
			if cs := Explain(libs[i], libs[j]); len(cs) > 0 {
				m.conflicts[[2]int{i, j}] = cs
			}
		}
	}
	return m
}

// Len reports the number of libraries.
func (m *Matrix) Len() int { return len(m.Libs) }

// Conflicting reports whether libraries i and j conflict.
func (m *Matrix) Conflicting(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	_, ok := m.conflicts[[2]int{i, j}]
	return ok
}

// Conflicts returns the conflict explanations for pair (i, j).
func (m *Matrix) Conflicts(i, j int) []Conflict {
	if i > j {
		i, j = j, i
	}
	return m.conflicts[[2]int{i, j}]
}

// Edges lists all conflicting pairs (i < j).
func (m *Matrix) Edges() [][2]int {
	out := make([][2]int, 0, len(m.conflicts))
	for i := 0; i < len(m.Libs); i++ {
		for j := i + 1; j < len(m.Libs); j++ {
			if m.Conflicting(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// EdgeCount reports the number of conflicting pairs.
func (m *Matrix) EdgeCount() int { return len(m.conflicts) }
