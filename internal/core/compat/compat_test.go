package compat

import (
	"strings"
	"testing"

	"flexos/internal/core/spec"
)

func parseLibs(t *testing.T, src string) []*spec.Library {
	t.Helper()
	libs, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return libs
}

// The paper's running example: a verified scheduler and a hijackable C
// component.
const paperPair = `
library sched {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] alloc::malloc, alloc::free
  [API] thread_add(...); thread_rm(...); yield(...)
  [Requires] *(Read,Own), *(Write,Shared), *(Call,thread_add), *(Call,thread_rm), *(Call,yield)
}
library unsafec {
  [Memory access] Read(*); Write(*)
  [Call] *
  [Analysis] calls(sched::yield); writes(Own,Shared); reads(Own,Shared)
}
`

func TestPaperExampleIncompatible(t *testing.T) {
	libs := parseLibs(t, paperPair)
	sched, unsafec := libs[0], libs[1]

	if Compatible(sched, unsafec) {
		t.Fatal("verified scheduler and unsafe C must conflict")
	}
	cs := Explain(sched, unsafec)
	if len(cs) == 0 {
		t.Fatal("no explanation produced")
	}
	// The decisive conflict is the write-to-Own violation.
	found := false
	for _, c := range cs {
		if c.Holder == "sched" && c.Offender == "unsafec" && c.Verb == spec.VerbWrite && c.Object == "Own" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing Write/Own conflict in %v", cs)
	}
}

func TestPaperExampleCompatibleAfterSH(t *testing.T) {
	// "When put together with the scheduler in the same image, the SH
	// version will be able to share a compartment with the scheduler."
	libs := parseLibs(t, paperPair)
	sched, unsafec := libs[0], libs[1]
	hardened, err := spec.Harden(unsafec)
	if err != nil {
		t.Fatal(err)
	}
	if !Compatible(sched, hardened) {
		t.Fatalf("hardened C still conflicts: %v", Explain(sched, hardened))
	}
}

func TestNoRequiresBothWaysCompatible(t *testing.T) {
	// "If both libraries have no Requires clause, the answer is yes."
	libs := parseLibs(t, `
library w1 {
  [Memory access] Read(*); Write(*)
  [Call] *
}
library w2 {
  [Memory access] Read(*); Write(*)
  [Call] *
}
`)
	if !Compatible(libs[0], libs[1]) {
		t.Fatal("two unconstrained libraries must be compatible")
	}
}

func TestReadRestriction(t *testing.T) {
	libs := parseLibs(t, `
library secret {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [Requires] *(Write,Shared)
}
library reader {
  [Memory access] Read(*); Write(Own)
  [Call] -
}
`)
	// secret grants no *(Read,Own): the wildcard reader conflicts.
	cs := Violations(libs[0], libs[1])
	if len(cs) != 1 || cs[0].Verb != spec.VerbRead {
		t.Fatalf("conflicts = %v", cs)
	}
	// And not the other way around.
	if got := Violations(libs[1], libs[0]); len(got) != 0 {
		t.Fatalf("reverse conflicts = %v", got)
	}
}

func TestSharedWriteRequirement(t *testing.T) {
	libs := parseLibs(t, `
library strict {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [Requires] *(Read,Own)
}
library sharer {
  [Memory access] Read(Own); Write(Own,Shared)
  [Call] -
}
`)
	// sharer writes only its own memory and the shared region; the
	// shared region is jointly owned by definition, so even a strict
	// holder is not violated.
	if cs := Violations(libs[0], libs[1]); len(cs) != 0 {
		t.Fatalf("conflicts = %v", cs)
	}
}

func TestCallEntryPointChecks(t *testing.T) {
	libs := parseLibs(t, `
library srv {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] -
  [API] open(...); close(...)
  [Requires] *(Read,Own), *(Call,open)
}
library caller_ok {
  [Memory access] Read(Own,Shared); Write(Own)
  [Call] srv::open
}
library caller_unexported {
  [Memory access] Read(Own,Shared); Write(Own)
  [Call] srv::internal_fn
}
library caller_ungranted {
  [Memory access] Read(Own,Shared); Write(Own)
  [Call] srv::close
}
library caller_other {
  [Memory access] Read(Own,Shared); Write(Own)
  [Call] other::open
}
`)
	srv := libs[0]
	if cs := Violations(srv, libs[1]); len(cs) != 0 {
		t.Fatalf("granted call conflicts: %v", cs)
	}
	if cs := Violations(srv, libs[2]); len(cs) != 1 || !strings.Contains(cs[0].Detail, "not an exported entry point") {
		t.Fatalf("unexported call: %v", cs)
	}
	if cs := Violations(srv, libs[3]); len(cs) != 1 || !strings.Contains(cs[0].Detail, "no *(Call,close)") {
		t.Fatalf("ungranted call: %v", cs)
	}
	if cs := Violations(srv, libs[4]); len(cs) != 0 {
		t.Fatalf("call to unrelated library flagged: %v", cs)
	}
}

func TestWildcardCallAgainstRestrictedHolder(t *testing.T) {
	libs := parseLibs(t, `
library srv {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] open(...)
  [Requires] *(Call,open)
}
library wild {
  [Memory access] Read(Own); Write(Own)
  [Call] *
}
library permissive {
  [Memory access] Read(Own); Write(Own)
  [Call] -
  [API] f(...)
  [Requires] *(Call,*), *(Read,Own), *(Write,Own)
}
`)
	if Compatible(libs[0], libs[1]) {
		t.Fatal("wildcard caller vs restricted holder must conflict")
	}
	if cs := Violations(libs[2], libs[1]); len(cs) != 0 {
		t.Fatalf("permissive holder flagged wildcard caller: %v", cs)
	}
}

func TestMatrix(t *testing.T) {
	libs := parseLibs(t, paperPair+`
library alloc {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] -
  [API] malloc(...); free(...)
}
`)
	m := BuildMatrix(libs)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Conflicting(0, 1) || !m.Conflicting(1, 0) {
		t.Fatal("sched/unsafec edge missing (or asymmetric lookup broken)")
	}
	if m.Conflicting(0, 2) {
		t.Fatal("sched/alloc must not conflict")
	}
	// alloc has no Requires, so even the wild component co-habits.
	if m.Conflicting(1, 2) {
		t.Fatalf("unsafec/alloc conflict: %v", m.Conflicts(1, 2))
	}
	edges := m.Edges()
	if len(edges) != 1 || edges[0] != [2]int{0, 1} {
		t.Fatalf("Edges = %v", edges)
	}
	if m.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", m.EdgeCount())
	}
	if len(m.Conflicts(0, 1)) == 0 {
		t.Fatal("Conflicts(0,1) empty")
	}
	if m.Conflicts(0, 1)[0].String() == "" {
		t.Fatal("empty conflict string")
	}
}

// Property: hardening is compatibility-monotone — narrowing a
// library's metadata can only remove conflicts, never add them.
func TestHardeningMonotoneProperty(t *testing.T) {
	base := spec.DefaultImage()
	for _, a := range base {
		for _, b := range base {
			if a == b {
				continue
			}
			hb, err := spec.Harden(b)
			if err != nil {
				continue // no SH variant
			}
			if Compatible(a, b) && !Compatible(a, hb) {
				t.Errorf("hardening %s broke compatibility with %s: %v",
					b.Name, a.Name, Explain(a, hb))
			}
			// And the count of a's violations never grows.
			if len(Violations(a, hb)) > len(Violations(a, b)) {
				t.Errorf("hardening %s increased %s's violations", b.Name, a.Name)
			}
		}
	}
}
