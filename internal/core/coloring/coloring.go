// Package coloring turns pairwise library incompatibility into a
// compartmentalization.
//
// Selecting the smallest number of compartments reduces to classical
// graph coloring: each library is a vertex, an edge connects two
// incompatible libraries, and graph coloring assigns the smallest
// number of colors such that no two adjacent vertices share one. Each
// color becomes one compartment. In the worst case — all libraries
// conflict — every library lands in its own compartment.
//
// Three algorithms are provided: greedy in Welsh–Powell order (fast,
// no quality guarantee), DSATUR (better in practice), and an exact
// branch-and-bound (optimal, for the small graphs a LibOS image
// actually has). The explore package runs them over every SH-variant
// combination.
package coloring

import (
	"fmt"
	"sort"

	"flexos/internal/core/compat"
)

// Graph is an undirected conflict graph over n vertices.
type Graph struct {
	n   int
	adj [][]bool
}

// NewGraph creates an edgeless graph with n vertices.
func NewGraph(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{n: n, adj: adj}
}

// FromMatrix builds the conflict graph of a compatibility matrix.
func FromMatrix(m *compat.Matrix) *Graph {
	g := NewGraph(m.Len())
	for _, e := range m.Edges() {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge connects vertices i and j. Self-loops are ignored.
func (g *Graph) AddEdge(i, j int) {
	if i == j || i < 0 || j < 0 || i >= g.n || j >= g.n {
		return
	}
	g.adj[i][j] = true
	g.adj[j][i] = true
}

// HasEdge reports whether i and j conflict.
func (g *Graph) HasEdge(i, j int) bool {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return false
	}
	return g.adj[i][j]
}

// Degree reports vertex i's degree.
func (g *Graph) Degree(i int) int {
	d := 0
	for j := 0; j < g.n; j++ {
		if g.adj[i][j] {
			d++
		}
	}
	return d
}

// Edges reports the number of edges.
func (g *Graph) Edges() int {
	e := 0
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.adj[i][j] {
				e++
			}
		}
	}
	return e
}

// Assignment maps each vertex to a color; colors are 0..NumColors-1.
type Assignment struct {
	Colors    []int
	NumColors int
}

// Groups returns the vertices of each color class.
func (a Assignment) Groups() [][]int {
	out := make([][]int, a.NumColors)
	for v, c := range a.Colors {
		out[c] = append(out[c], v)
	}
	return out
}

// Validate checks that the assignment is a proper coloring of g.
func Validate(g *Graph, a Assignment) error {
	if len(a.Colors) != g.n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(a.Colors), g.n)
	}
	for _, c := range a.Colors {
		if c < 0 || c >= a.NumColors {
			return fmt.Errorf("coloring: color %d out of range [0,%d)", c, a.NumColors)
		}
	}
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.adj[i][j] && a.Colors[i] == a.Colors[j] {
				return fmt.Errorf("coloring: adjacent vertices %d and %d share color %d", i, j, a.Colors[i])
			}
		}
	}
	return nil
}

// Greedy colors in Welsh–Powell order (descending degree).
func Greedy(g *Graph) Assignment {
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	return colorInOrder(g, order)
}

// DSATUR colors by descending saturation degree with degree
// tie-breaking.
func DSATUR(g *Graph) Assignment {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	sat := make([]map[int]bool, g.n)
	for i := range sat {
		sat[i] = make(map[int]bool)
	}
	numColors := 0
	for done := 0; done < g.n; done++ {
		// Pick the uncolored vertex with max saturation, then degree,
		// then index (deterministic).
		best := -1
		for v := 0; v < g.n; v++ {
			if colors[v] != -1 {
				continue
			}
			if best == -1 ||
				len(sat[v]) > len(sat[best]) ||
				(len(sat[v]) == len(sat[best]) && g.Degree(v) > g.Degree(best)) {
				best = v
			}
		}
		c := lowestFree(g, colors, best)
		colors[best] = c
		if c+1 > numColors {
			numColors = c + 1
		}
		for u := 0; u < g.n; u++ {
			if g.adj[best][u] && colors[u] == -1 {
				sat[u][c] = true
			}
		}
	}
	return Assignment{Colors: colors, NumColors: numColors}
}

// ExactLimit is the largest graph Exact will attempt.
const ExactLimit = 40

// Exact finds a minimum coloring by iterative-deepening backtracking.
// It errors on graphs larger than ExactLimit vertices.
func Exact(g *Graph) (Assignment, error) {
	if g.n == 0 {
		return Assignment{Colors: []int{}, NumColors: 0}, nil
	}
	if g.n > ExactLimit {
		return Assignment{}, fmt.Errorf("coloring: exact solver limited to %d vertices, got %d", ExactLimit, g.n)
	}
	upper := DSATUR(g)
	if upper.NumColors <= 1 {
		return upper, nil
	}
	// Try progressively smaller k below the DSATUR bound.
	best := upper
	for k := upper.NumColors - 1; k >= 1; k-- {
		colors := make([]int, g.n)
		for i := range colors {
			colors[i] = -1
		}
		// Order vertices by descending degree for effective pruning.
		order := make([]int, g.n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return g.Degree(order[a]) > g.Degree(order[b])
		})
		if tryColor(g, order, colors, 0, k) {
			used := 0
			for _, c := range colors {
				if c+1 > used {
					used = c + 1
				}
			}
			best = Assignment{Colors: append([]int(nil), colors...), NumColors: used}
		} else {
			break
		}
	}
	return best, nil
}

func tryColor(g *Graph, order, colors []int, idx, k int) bool {
	if idx == len(order) {
		return true
	}
	v := order[idx]
	// Symmetry breaking: vertex idx may use at most (max used color)+1.
	maxUsed := -1
	for _, c := range colors {
		if c > maxUsed {
			maxUsed = c
		}
	}
	limit := maxUsed + 1
	if limit >= k {
		limit = k - 1
	}
	for c := 0; c <= limit; c++ {
		ok := true
		for u := 0; u < g.n; u++ {
			if g.adj[v][u] && colors[u] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		colors[v] = c
		if tryColor(g, order, colors, idx+1, k) {
			return true
		}
		colors[v] = -1
	}
	return false
}

func colorInOrder(g *Graph, order []int) Assignment {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	numColors := 0
	for _, v := range order {
		c := lowestFree(g, colors, v)
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return Assignment{Colors: colors, NumColors: numColors}
}

func lowestFree(g *Graph, colors []int, v int) int {
	used := make([]bool, g.n+1)
	for u := 0; u < g.n; u++ {
		if g.adj[v][u] && colors[u] >= 0 {
			used[colors[u]] = true
		}
	}
	for c := 0; ; c++ {
		if !used[c] {
			return c
		}
	}
}

// Plan is a compartmentalization: the libraries of each compartment,
// by name.
type Plan struct {
	Compartments [][]string
	// Heuristic marks a plan whose coloring came from the DSATUR
	// heuristic because the exact solver declined the graph (beyond
	// ExactLimit): the compartment count may be non-minimal.
	Heuristic bool
}

// NumCompartments reports the compartment count.
func (p *Plan) NumCompartments() int { return len(p.Compartments) }

// CompartmentOf reports which compartment holds lib, or -1.
func (p *Plan) CompartmentOf(lib string) int {
	for i, comp := range p.Compartments {
		for _, l := range comp {
			if l == lib {
				return i
			}
		}
	}
	return -1
}

// PlanFromAssignment renders an assignment over a matrix's libraries
// into a named compartment plan, using variant names.
func PlanFromAssignment(m *compat.Matrix, a Assignment) *Plan {
	p := &Plan{Compartments: make([][]string, a.NumColors)}
	for v, c := range a.Colors {
		p.Compartments[c] = append(p.Compartments[c], m.Libs[v].VariantName())
	}
	return p
}
