package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexos/internal/core/compat"
	"flexos/internal/core/spec"
)

func TestEmptyAndSingleton(t *testing.T) {
	g := NewGraph(0)
	for _, algo := range []func(*Graph) Assignment{Greedy, DSATUR} {
		a := algo(g)
		if a.NumColors != 0 {
			t.Fatalf("empty graph colored with %d", a.NumColors)
		}
	}
	a, err := Exact(g)
	if err != nil || a.NumColors != 0 {
		t.Fatalf("Exact empty: %v %v", a, err)
	}

	g1 := NewGraph(1)
	if got := DSATUR(g1); got.NumColors != 1 {
		t.Fatalf("singleton colors = %d", got.NumColors)
	}
}

func TestEdgelessGraphOneColor(t *testing.T) {
	g := NewGraph(6)
	for _, algo := range []func(*Graph) Assignment{Greedy, DSATUR} {
		a := algo(g)
		if a.NumColors != 1 {
			t.Fatalf("edgeless graph colored with %d", a.NumColors)
		}
		if err := Validate(g, a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompleteGraphNColors(t *testing.T) {
	// Worst case of the paper: all libraries conflict, each gets its
	// own compartment.
	const n = 6
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	for _, algo := range []func(*Graph) Assignment{Greedy, DSATUR} {
		a := algo(g)
		if a.NumColors != n {
			t.Fatalf("K%d colored with %d", n, a.NumColors)
		}
		if err := Validate(g, a); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Exact(g)
	if err != nil || a.NumColors != n {
		t.Fatalf("Exact K%d = %d, %v", n, a.NumColors, err)
	}
}

func TestBipartiteTwoColors(t *testing.T) {
	// C6 cycle: 2-colorable; DSATUR and Exact find 2.
	g := NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	if a := DSATUR(g); a.NumColors != 2 {
		t.Fatalf("DSATUR C6 = %d colors", a.NumColors)
	}
	a, err := Exact(g)
	if err != nil || a.NumColors != 2 {
		t.Fatalf("Exact C6 = %d, %v", a.NumColors, err)
	}
}

func TestOddCycleThreeColors(t *testing.T) {
	g := NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	a, err := Exact(g)
	if err != nil || a.NumColors != 3 {
		t.Fatalf("Exact C5 = %d, %v", a.NumColors, err)
	}
	if err := Validate(g, a); err != nil {
		t.Fatal(err)
	}
}

func TestExactBeatsGreedyOnCrown(t *testing.T) {
	// Crown graph S3 (K3,3 minus perfect matching) is 2-chromatic but
	// greedy in unlucky order uses 3. Exact must find 2.
	g := NewGraph(6)
	// Parts {0,1,2} and {3,4,5}; i connected to all j != i+3.
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			if j-3 != i {
				g.AddEdge(i, j)
			}
		}
	}
	a, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumColors != 2 {
		t.Fatalf("Exact crown = %d colors, want 2", a.NumColors)
	}
}

func TestExactLimit(t *testing.T) {
	g := NewGraph(ExactLimit + 1)
	if _, err := Exact(g); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestValidateCatchesBadColorings(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	if err := Validate(g, Assignment{Colors: []int{0, 0}, NumColors: 1}); err == nil {
		t.Fatal("conflicting coloring validated")
	}
	if err := Validate(g, Assignment{Colors: []int{0}, NumColors: 1}); err == nil {
		t.Fatal("short coloring validated")
	}
	if err := Validate(g, Assignment{Colors: []int{0, 5}, NumColors: 2}); err == nil {
		t.Fatal("out-of-range color validated")
	}
}

func TestSelfLoopAndBoundsIgnored(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 1)
	g.AddEdge(-1, 2)
	g.AddEdge(0, 99)
	if g.Edges() != 0 {
		t.Fatalf("Edges = %d, want 0", g.Edges())
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge true")
	}
}

func TestDegreeAndEdges(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.Edges() != 3 {
		t.Fatal("edge count wrong")
	}
}

// Property: on random graphs, all three algorithms produce valid
// colorings and Exact <= DSATUR <= some bound; Exact is minimal among
// the three.
func TestAlgorithmsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		gr, ds := Greedy(g), DSATUR(g)
		ex, err := Exact(g)
		if err != nil {
			return false
		}
		if Validate(g, gr) != nil || Validate(g, ds) != nil || Validate(g, ex) != nil {
			return false
		}
		return ex.NumColors <= ds.NumColors && ex.NumColors <= gr.NumColors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroups(t *testing.T) {
	a := Assignment{Colors: []int{0, 1, 0, 2}, NumColors: 3}
	gs := a.Groups()
	if len(gs) != 3 || len(gs[0]) != 2 || gs[0][1] != 2 {
		t.Fatalf("Groups = %v", gs)
	}
}

func TestPlanFromMatrix(t *testing.T) {
	libs, err := spec.Parse(`
library sched {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] -
  [API] yield(...)
  [Requires] *(Read,Own), *(Call,yield)
}
library unsafec {
  [Memory access] Read(*); Write(*)
  [Call] *
}
library alloc {
  [Memory access] Read(Own,Shared); Write(Own,Shared)
  [Call] -
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m := compat.BuildMatrix(libs)
	g := FromMatrix(m)
	a, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumColors != 2 {
		t.Fatalf("colors = %d, want 2 (sched isolated from unsafec)", a.NumColors)
	}
	p := PlanFromAssignment(m, a)
	if p.NumCompartments() != 2 {
		t.Fatal("plan compartments wrong")
	}
	cs, cu := p.CompartmentOf("sched"), p.CompartmentOf("unsafec")
	if cs == -1 || cu == -1 || cs == cu {
		t.Fatalf("sched in %d, unsafec in %d", cs, cu)
	}
	if p.CompartmentOf("ghost") != -1 {
		t.Fatal("unknown library found")
	}
}
