package build

import (
	"strings"
	"testing"
)

func TestBatchDirectiveRoundTrip(t *testing.T) {
	src := "backend mpk-switched\n" +
		"compartment nw netstack\n" +
		"compartment lc libc\n" +
		"compartment core sched alloc app rest\n" +
		"batch nw 16\n" +
		"batch core 4\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Batch["nw"] != 16 || cfg.Batch["core"] != 4 {
		t.Fatalf("Batch = %v", cfg.Batch)
	}
	out := FormatConfig(cfg)
	// Deterministic output: depths are emitted sorted by compartment.
	coreIdx := strings.Index(out, "batch core 4\n")
	nwIdx := strings.Index(out, "batch nw 16\n")
	if coreIdx < 0 || nwIdx < 0 || coreIdx > nwIdx {
		t.Fatalf("batch lines missing or unsorted:\n%s", out)
	}
	cfg2, err := ParseConfig(out)
	if err != nil {
		t.Fatalf("formatted config failed to reparse: %v\n%s", err, out)
	}
	if len(cfg2.Batch) != 2 || cfg2.Batch["nw"] != 16 || cfg2.Batch["core"] != 4 {
		t.Fatalf("round-trip Batch = %v", cfg2.Batch)
	}
}

func TestBatchDefaultIsElided(t *testing.T) {
	// Depth 1 dispatches one call per crossing — the default, so the
	// entry is dropped (cf. onfault abort, overload depth 0).
	src := "backend mpk-shared\n" +
		"compartment nw netstack\n" +
		"compartment core sched alloc libc app rest\n" +
		"batch nw 16\n" +
		"batch nw 1\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Batch) != 0 {
		t.Fatalf("Batch = %v, want empty", cfg.Batch)
	}
	if out := FormatConfig(cfg); strings.Contains(out, "batch") {
		t.Fatalf("default depth emitted:\n%s", out)
	}
}

func TestBatchValidation(t *testing.T) {
	base := "backend mpk-shared\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n"
	cases := []struct {
		name, directive string
	}{
		{"unknown compartment", "batch ghost 4\n"},
		{"zero depth", "batch nw 0\n"},
		{"negative depth", "batch nw -4\n"},
		{"non-numeric depth", "batch nw lots\n"},
		{"missing args", "batch nw\n"},
		{"extra args", "batch nw 4 shed\n"},
	}
	for _, tc := range cases {
		if _, err := ParseConfig(base + tc.directive); err == nil {
			t.Errorf("%s: %q accepted", tc.name, strings.TrimSpace(tc.directive))
		}
	}
	// The world build re-runs the same validation on hand-built configs
	// that never went through the parser.
	cfg, err := ParseConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = map[string]int{"nw": 1}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("stored depth 1 accepted by NewWorld")
	}
	cfg.Batch = map[string]int{"ghost": 8}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("depth for unknown compartment accepted by NewWorld")
	}
}

func TestBatchWiringReachesNetAndEnv(t *testing.T) {
	// A depth on the compartment holding "rest" batches tx doorbells, a
	// depth on the netstack compartment sets the NAPI rx budget, and
	// every library env resolves depths for its callees.
	src := "backend mpk-switched\n" +
		"compartment nw netstack\n" +
		"compartment core sched alloc libc app rest\n" +
		"batch nw 16\n" +
		"batch core 8\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := w.Server.Env("libc").BatchDepth("netstack"); d != 16 {
		t.Fatalf("BatchDepth(netstack) = %d, want 16", d)
	}
	if d := w.Server.Env("app").BatchDepth("sched"); d != 8 {
		t.Fatalf("BatchDepth(sched) = %d, want 8", d)
	}
	// The client shares the batch plan so pipelined sends batch there too.
	if d := w.Client.Env("libc").BatchDepth("netstack"); d != 16 {
		t.Fatalf("client BatchDepth(netstack) = %d, want 16", d)
	}
}
