package build

import (
	"strings"
	"testing"
)

// TestSmpConfigRoundTrip checks that the smp/affinity directives parse,
// validate, and survive the FormatConfig round trip, including the
// default-elision rules (smp 1 and affinity-to-cpu-0 disappear).
func TestSmpConfigRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantSmp int
		wantAff map[string]int
	}{
		{
			name:    "smp with affinities",
			src:     "backend mpk-shared\nsmp 4\naffinity netstack 1\naffinity queue2 3\n",
			wantSmp: 4,
			wantAff: map[string]int{"netstack": 1, "queue2": 3},
		},
		{
			name:    "smp 1 elides to default",
			src:     "backend funccall\nsmp 1\n",
			wantSmp: 0,
			wantAff: nil,
		},
		{
			name:    "affinity cpu 0 elides to default",
			src:     "backend funccall\nsmp 2\naffinity netstack 1\naffinity netstack 0\n",
			wantSmp: 2,
			wantAff: nil,
		},
		{
			name:    "later affinity wins",
			src:     "backend funccall\nsmp 4\naffinity queue1 2\naffinity queue1 3\n",
			wantSmp: 4,
			wantAff: map[string]int{"queue1": 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseConfig(tc.src)
			if err != nil {
				t.Fatalf("ParseConfig: %v", err)
			}
			if cfg.Smp != tc.wantSmp {
				t.Fatalf("Smp = %d, want %d", cfg.Smp, tc.wantSmp)
			}
			if len(cfg.Affinity) != len(tc.wantAff) {
				t.Fatalf("Affinity = %v, want %v", cfg.Affinity, tc.wantAff)
			}
			for k, v := range tc.wantAff {
				if cfg.Affinity[k] != v {
					t.Fatalf("Affinity[%q] = %d, want %d", k, cfg.Affinity[k], v)
				}
			}
			once := FormatConfig(cfg)
			cfg2, err := ParseConfig(once)
			if err != nil {
				t.Fatalf("reparse of formatted config: %v\n%s", err, once)
			}
			if twice := FormatConfig(cfg2); once != twice {
				t.Fatalf("format not a fixpoint:\n%s\nvs\n%s", once, twice)
			}
		})
	}
}

// TestSmpConfigRejects checks that invalid smp/affinity directives are
// rejected with a diagnostic, not silently accepted.
func TestSmpConfigRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"smp zero", "smp 0\n", "smp"},
		{"smp negative", "smp -3\n", "smp"},
		{"smp non-numeric", "smp lots\n", "smp"},
		{"cpu out of range", "smp 2\naffinity netstack 7\n", "cpu"},
		{"cpu out of range without smp", "affinity netstack 1\n", "cpu"},
		{"negative cpu", "smp 4\naffinity netstack -1\n", "cpu"},
		{"queue out of range", "smp 4\naffinity queue9 1\n", "queue"},
		{"unknown target", "smp 4\naffinity nowhere 1\n", "affinity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.src)
			if err == nil {
				t.Fatalf("ParseConfig accepted %q", tc.src)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}
