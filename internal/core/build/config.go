// Package build is FlexOS's build system: it turns a compartment plan
// plus a handful of knobs — isolation backend, per-library software
// hardening, allocator granularity, scheduler kind, platform — into a
// runnable image. This is the paper's §3 toolchain step: the same
// micro-library code, linked against different gates, allocators and
// hardening at build time.
//
// A Config describes one image. NewWorld instantiates a server image
// and a load-generating client, wires their network stacks together
// and hands both to one deterministic scheduler, which is how every
// measurement in the harness runs.
package build

import (
	"fmt"

	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/mpk"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sh"
)

// AllocPolicy selects the allocator granularity of an image — the
// paper's "an allocator per image, per compartment, or per library"
// build option (Fig. 4 measures its interaction with hardening).
type AllocPolicy int

// Allocator granularities.
const (
	// AllocGlobal links one allocator into the image; every other
	// library reaches it through the "alloc" library's gate, and if
	// any library's hardening instruments the allocator, the whole
	// image pays for it.
	AllocGlobal AllocPolicy = iota
	// AllocPerCompartment gives each compartment its own allocator
	// instance over its own heap.
	AllocPerCompartment
	// AllocPerLibrary gives each library its own allocator instance,
	// so instrumentation stays with the hardened library.
	AllocPerLibrary
)

// String implements fmt.Stringer.
func (p AllocPolicy) String() string {
	switch p {
	case AllocGlobal:
		return "global"
	case AllocPerCompartment:
		return "per-compartment"
	case AllocPerLibrary:
		return "per-library"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// ParseAllocPolicy converts a config string to an AllocPolicy.
func ParseAllocPolicy(s string) (AllocPolicy, error) {
	switch s {
	case "global":
		return AllocGlobal, nil
	case "per-compartment":
		return AllocPerCompartment, nil
	case "per-library":
		return AllocPerLibrary, nil
	default:
		return 0, fmt.Errorf("build: unknown allocator policy %q", s)
	}
}

// SchedKind selects which scheduler the image links: the C one or the
// formally verified port with executable contracts.
type SchedKind int

// Scheduler kinds.
const (
	SchedC SchedKind = iota
	SchedVerified
)

// String implements fmt.Stringer.
func (k SchedKind) String() string {
	switch k {
	case SchedC:
		return "c"
	case SchedVerified:
		return "verified"
	default:
		return fmt.Sprintf("SchedKind(%d)", int(k))
	}
}

// ParseSchedKind converts a config string to a SchedKind.
func ParseSchedKind(s string) (SchedKind, error) {
	switch s {
	case "c":
		return SchedC, nil
	case "verified":
		return SchedVerified, nil
	default:
		return 0, fmt.Errorf("build: unknown scheduler kind %q", s)
	}
}

// Compartment names one compartment and the libraries linked into it.
type Compartment struct {
	Name      string
	Libraries []string
}

// Config describes one machine image — the Kconfig-style options of
// the FlexOS build system.
type Config struct {
	// Name labels the image in results.
	Name string
	// Compartments is the compartmentalization; empty means
	// SingleCompartment (the no-isolation baseline).
	Compartments []Compartment
	// Backend is the isolation mechanism instantiated at every
	// compartment boundary.
	Backend gate.Backend
	// Alloc is the allocator granularity.
	Alloc AllocPolicy
	// SH maps library name -> hardening profile (libraries absent
	// from the map run unhardened).
	SH map[string]sh.Profile
	// Sched selects the C or the verified scheduler.
	Sched SchedKind
	// Seal is the MPK backend's PKRU-integrity policy.
	Seal mpk.SealPolicy
	// Platform selects the per-packet driver cost model (KVM or Xen).
	Platform net.Platform
	// DataPath selects how socket payloads move between compartments:
	// DataPathShared (the default) hands ref-counted shared-window
	// descriptors across gates; DataPathCopy charges a boundary copy at
	// every cross-compartment hop (the pre-pool behaviour).
	DataPath net.DataPath
	// Net tunes the network stack (recv buffer, socket mode, delayed
	// acks, ...). IP, Platform and RestHard are set by the builder.
	Net net.Config
	// OnFault maps compartment name -> fault policy (configfile
	// directive "onfault"). Compartments absent from the map abort:
	// a trap propagates to the caller as a typed error.
	OnFault map[string]fault.Policy
	// Overload maps compartment name -> admission-queue spec
	// (configfile directive "overload <comp> <depth> <policy>").
	// Compartments absent from the map admit every call.
	Overload map[string]rt.OverloadSpec
	// Breaker maps compartment name -> circuit-breaker spec
	// (configfile directive "breaker <comp> <threshold> <window>
	// <cooldown>"). Compartments absent from the map never open.
	Breaker map[string]rt.BreakerSpec
	// Batch maps compartment name -> gate-call batch depth (configfile
	// directive "batch <comp> <depth>"): calls crossing INTO the named
	// compartment may be vectored up to depth frames per crossing.
	// Compartments absent from the map dispatch one call per crossing.
	Batch map[string]int
	// Smp is the vCPU count of each machine (configfile directive
	// "smp <n>"). 0 or 1 builds the classic single-core image; n > 1
	// builds an SMP machine whose NIC exposes n RSS queues (one per
	// vCPU by default).
	Smp int
	// Affinity pins a target to a vCPU (configfile directive
	// "affinity <target> <cpu>"). A target is a library name — pinning
	// that library's service thread, e.g. "netstack" for the tcpip
	// thread — or "queue<k>", steering NIC queue k's interrupts.
	// Unlisted queues default to queue k -> vCPU k mod Smp.
	Affinity map[string]int
	// Link arms adversarial faults on the wire between the two machines
	// (configfile directive "link <drop> <reorder> <corrupt> [seed]").
	// The zero value leaves the wire lossless — the default, and the
	// path every committed benchmark baseline runs on.
	Link LinkSpec
}

// LinkSpec is the wire-fault configuration of an image pair: per-frame
// drop, reorder and bit-corruption probabilities driven by a seeded
// PRNG on the virtual clock, so faulty runs replay bit-identically.
type LinkSpec struct {
	Drop    float64
	Reorder float64
	Corrupt float64
	Seed    uint64
}

// Active reports whether any fault rate is non-zero.
func (l LinkSpec) Active() bool { return l.Drop > 0 || l.Reorder > 0 || l.Corrupt > 0 }

// DefaultLibraries is the library set of the canonical six-library
// image (spec.DefaultImage), in build order.
var DefaultLibraries = []string{"sched", "alloc", "libc", "netstack", "app", "rest"}

// libComponent maps a default library to its cycle-attribution
// component (see clock.Component).

// SingleCompartment is the no-isolation baseline: every library in
// one compartment.
func SingleCompartment() []Compartment {
	return []Compartment{{Name: "all", Libraries: libs("sched", "alloc", "libc", "netstack", "app", "rest")}}
}

// NWOnly isolates the network stack from everything else — the
// paper's {netstack | rest} model (Fig. 3, Fig. 5 "NW-only").
func NWOnly() []Compartment {
	return []Compartment{
		{Name: "nw", Libraries: libs("netstack")},
		{Name: "core", Libraries: libs("sched", "alloc", "libc", "app", "rest")},
	}
}

// NWSchedRest isolates the network stack and the scheduler separately
// from the rest — Fig. 5 "NW/Sched/Rest".
func NWSchedRest() []Compartment {
	return []Compartment{
		{Name: "nw", Libraries: libs("netstack")},
		{Name: "sched", Libraries: libs("sched")},
		{Name: "core", Libraries: libs("alloc", "libc", "app", "rest")},
	}
}

// NWPlusSched merges the network stack and the scheduler into one
// compartment, isolated from the rest — Fig. 5 "NW+Sched/Rest", the
// model the paper shows does NOT recover the two-compartment cost
// because semaphores live in LibC.
func NWPlusSched() []Compartment {
	return []Compartment{
		{Name: "nwsched", Libraries: libs("netstack", "sched")},
		{Name: "core", Libraries: libs("alloc", "libc", "app", "rest")},
	}
}

func libs(names ...string) []string { return names }

// normalize fills defaults and validates a Config; it returns the
// effective compartment list.
func normalize(cfg *Config) ([]Compartment, error) {
	switch cfg.Backend {
	case gate.FuncCall, gate.MPKShared, gate.MPKSwitched, gate.VMRPC, gate.CHERI:
	default:
		return nil, fmt.Errorf("build: unknown backend %v", cfg.Backend)
	}
	switch cfg.Alloc {
	case AllocGlobal, AllocPerCompartment, AllocPerLibrary:
	default:
		return nil, fmt.Errorf("build: unknown allocator policy %v", cfg.Alloc)
	}
	switch cfg.Sched {
	case SchedC, SchedVerified:
	default:
		return nil, fmt.Errorf("build: unknown scheduler kind %v", cfg.Sched)
	}
	switch cfg.DataPath {
	case net.DataPathShared, net.DataPathCopy:
	default:
		return nil, fmt.Errorf("build: unknown data path %v", cfg.DataPath)
	}
	known := make(map[string]bool, len(DefaultLibraries))
	for _, l := range DefaultLibraries {
		known[l] = true
	}
	for l := range cfg.SH {
		if !known[l] {
			return nil, fmt.Errorf("build: SH profile for unknown library %q", l)
		}
	}
	comps := cfg.Compartments
	if len(comps) == 0 {
		comps = SingleCompartment()
	}
	seen := make(map[string]string, len(DefaultLibraries))
	names := make(map[string]bool, len(comps))
	for _, c := range comps {
		if c.Name == "" {
			return nil, fmt.Errorf("build: compartment with empty name")
		}
		if names[c.Name] {
			return nil, fmt.Errorf("build: duplicate compartment %q", c.Name)
		}
		names[c.Name] = true
		if len(c.Libraries) == 0 {
			return nil, fmt.Errorf("build: compartment %q holds no library", c.Name)
		}
		for _, l := range c.Libraries {
			if !known[l] {
				return nil, fmt.Errorf("build: unknown library %q in compartment %q", l, c.Name)
			}
			if prev, dup := seen[l]; dup {
				return nil, fmt.Errorf("build: library %q in both %q and %q", l, prev, c.Name)
			}
			seen[l] = c.Name
		}
	}
	for _, l := range DefaultLibraries {
		if _, ok := seen[l]; !ok {
			return nil, fmt.Errorf("build: library %q assigned to no compartment", l)
		}
	}
	for comp, p := range cfg.OnFault {
		if !names[comp] {
			return nil, fmt.Errorf("build: onfault policy for unknown compartment %q", comp)
		}
		switch p {
		case fault.PolicyAbort, fault.PolicyRestart, fault.PolicyDegrade:
		default:
			return nil, fmt.Errorf("build: unknown fault policy %v for compartment %q", p, comp)
		}
	}
	for comp, spec := range cfg.Overload {
		if !names[comp] {
			return nil, fmt.Errorf("build: overload spec for unknown compartment %q", comp)
		}
		switch spec.Policy {
		case fault.ShedPolicyShed, fault.ShedPolicyBlock, fault.ShedPolicyDeadline:
		default:
			return nil, fmt.Errorf("build: unknown shed policy %v for compartment %q", spec.Policy, comp)
		}
		if spec.Depth < 0 {
			return nil, fmt.Errorf("build: negative overload depth for compartment %q", comp)
		}
		// Depth 0 only bites under the deadline policy (shed on budget
		// expiry alone); with shed/block it would be a no-op entry,
		// which the directive parser already elides.
		if spec.Depth == 0 && spec.Policy != fault.ShedPolicyDeadline {
			return nil, fmt.Errorf("build: overload depth 0 for compartment %q needs the deadline policy", comp)
		}
	}
	for comp, spec := range cfg.Breaker {
		if !names[comp] {
			return nil, fmt.Errorf("build: breaker spec for unknown compartment %q", comp)
		}
		if spec.Threshold <= 0 || spec.Window <= 0 || spec.Threshold > spec.Window {
			return nil, fmt.Errorf("build: breaker for compartment %q wants 0 < threshold <= window, got %d/%d",
				comp, spec.Threshold, spec.Window)
		}
	}
	for comp, depth := range cfg.Batch {
		if !names[comp] {
			return nil, fmt.Errorf("build: batch depth for unknown compartment %q", comp)
		}
		// Depth 1 is the default (one call per crossing); the directive
		// parser elides it, so a stored entry must actually batch.
		if depth < 2 {
			return nil, fmt.Errorf("build: batch depth for compartment %q wants >= 2, got %d", comp, depth)
		}
	}
	if cfg.Smp < 0 {
		return nil, fmt.Errorf("build: smp wants >= 1 vCPU, got %d", cfg.Smp)
	}
	ncpu := cfg.Smp
	if ncpu < 1 {
		ncpu = 1
	}
	for target, cpu := range cfg.Affinity {
		if cpu < 0 || cpu >= ncpu {
			return nil, fmt.Errorf("build: affinity %q -> cpu %d outside 0..%d", target, cpu, ncpu-1)
		}
		if known[target] {
			continue
		}
		var q int
		if n, err := fmt.Sscanf(target, "queue%d", &q); err == nil && n == 1 &&
			target == fmt.Sprintf("queue%d", q) {
			if q < 0 || q >= ncpu {
				return nil, fmt.Errorf("build: affinity for queue %d, but the NIC has queues 0..%d", q, ncpu-1)
			}
			continue
		}
		return nil, fmt.Errorf("build: affinity target %q is neither a library nor queue<k>", target)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", cfg.Link.Drop}, {"reorder", cfg.Link.Reorder}, {"corrupt", cfg.Link.Corrupt}} {
		if r.v < 0 || r.v > 1 {
			return nil, fmt.Errorf("build: link %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if cfg.Link.Active() && cfg.Link.Seed == 0 {
		cfg.Link.Seed = 1 // a deterministic default so runs replay
	}
	// MPK shares the hardware's 16 protection keys; one is the shared
	// window. The VM and CHERI backends have no such limit (a point
	// the paper makes for gate heterogeneity).
	if cfg.Backend == gate.MPKShared || cfg.Backend == gate.MPKSwitched {
		if len(comps) > int(mem.NumKeys)-1 {
			return nil, fmt.Errorf("build: %d compartments exceed the %d MPK protection keys",
				len(comps), mem.NumKeys-1)
		}
	}
	return comps, nil
}
