package build

import (
	"strings"
	"testing"

	"flexos/internal/fault"
)

func TestOnFaultDirectiveRoundTrip(t *testing.T) {
	src := "backend mpk-switched\n" +
		"compartment nw netstack\n" +
		"compartment lc libc\n" +
		"compartment core sched alloc app rest\n" +
		"onfault nw restart\n" +
		"onfault lc degrade\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OnFault["nw"] != fault.PolicyRestart || cfg.OnFault["lc"] != fault.PolicyDegrade {
		t.Fatalf("OnFault = %v", cfg.OnFault)
	}
	out := FormatConfig(cfg)
	// Deterministic output: policies are emitted sorted by compartment.
	lcIdx := strings.Index(out, "onfault lc degrade\n")
	nwIdx := strings.Index(out, "onfault nw restart\n")
	if lcIdx < 0 || nwIdx < 0 || lcIdx > nwIdx {
		t.Fatalf("onfault lines missing or unsorted:\n%s", out)
	}
	cfg2, err := ParseConfig(out)
	if err != nil {
		t.Fatalf("formatted config failed to reparse: %v\n%s", err, out)
	}
	if len(cfg2.OnFault) != 2 ||
		cfg2.OnFault["nw"] != fault.PolicyRestart || cfg2.OnFault["lc"] != fault.PolicyDegrade {
		t.Fatalf("round-trip OnFault = %v", cfg2.OnFault)
	}
}

func TestOnFaultAbortIsDefaultAndElided(t *testing.T) {
	src := "backend mpk-shared\n" +
		"compartment nw netstack\n" +
		"compartment core sched alloc libc app rest\n" +
		"onfault nw restart\n" +
		"onfault nw abort\n" // back to the default: entry dropped
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.OnFault) != 0 {
		t.Fatalf("OnFault = %v, want empty (abort is the default)", cfg.OnFault)
	}
	if strings.Contains(FormatConfig(cfg), "onfault") {
		t.Fatalf("abort policy emitted:\n%s", FormatConfig(cfg))
	}
}

func TestOnFaultValidation(t *testing.T) {
	base := "backend mpk-shared\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n"
	if _, err := ParseConfig(base + "onfault ghost restart\n"); err == nil {
		t.Fatal("onfault for unknown compartment accepted")
	}
	if _, err := ParseConfig(base + "onfault nw explode\n"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := ParseConfig(base + "onfault nw\n"); err == nil {
		t.Fatal("missing policy argument accepted")
	}
}
