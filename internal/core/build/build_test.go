package build

import (
	"strings"
	"testing"

	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
	"flexos/internal/net"
	"flexos/internal/sh"
)

// TestNormalizeRejectsBadConfigs pins the validation surface: every
// malformed image the build system must refuse, with the reason in
// the error.
func TestNormalizeRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "unknown backend",
			cfg:  Config{Backend: gate.Backend(99)},
			want: "unknown backend",
		},
		{
			name: "unknown alloc policy",
			cfg:  Config{Alloc: AllocPolicy(7)},
			want: "allocator policy",
		},
		{
			name: "sh profile for unknown library",
			cfg:  Config{SH: map[string]sh.Profile{"kasan": sh.Full}},
			want: `unknown library "kasan"`,
		},
		{
			name: "empty compartment name",
			cfg:  Config{Compartments: []Compartment{{Libraries: DefaultLibraries}}},
			want: "empty name",
		},
		{
			name: "compartment holds no library",
			cfg: Config{Compartments: []Compartment{
				{Name: "all", Libraries: DefaultLibraries},
				{Name: "empty"},
			}},
			want: "no library",
		},
		{
			name: "duplicate compartment name",
			cfg: Config{Compartments: []Compartment{
				{Name: "a", Libraries: libs("sched", "alloc", "libc")},
				{Name: "a", Libraries: libs("netstack", "app", "rest")},
			}},
			want: "duplicate compartment",
		},
		{
			name: "library in two compartments",
			cfg: Config{Compartments: []Compartment{
				{Name: "a", Libraries: DefaultLibraries},
				{Name: "b", Libraries: libs("sched")},
			}},
			want: `"sched" in both`,
		},
		{
			name: "library assigned nowhere",
			cfg: Config{Compartments: []Compartment{
				{Name: "a", Libraries: libs("sched", "alloc", "libc", "netstack", "app")},
			}},
			want: `"rest" assigned to no compartment`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := normalize(&tc.cfg)
			if err == nil {
				t.Fatalf("normalize accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNormalizeDefaultsToSingleCompartment: an empty compartment list
// is the no-isolation baseline, not an error.
func TestNormalizeDefaultsToSingleCompartment(t *testing.T) {
	comps, err := normalize(&Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || comps[0].Name != "all" || len(comps[0].Libraries) != len(DefaultLibraries) {
		t.Errorf("got %+v, want the single-compartment default", comps)
	}
}

// TestConfigRoundTrip: FormatConfig output parses back to an
// equivalent config, and re-formatting is a fixed point.
func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{
		Name:         "fig5-nw-sched-rest",
		Compartments: NWSchedRest(),
		Backend:      gate.MPKSwitched,
		Alloc:        AllocPerCompartment,
		SH: map[string]sh.Profile{
			"netstack": sh.Full,
			"app":      {ASAN: true, StackProtector: true},
		},
		Sched:    SchedVerified,
		Platform: net.Xen,
		Net:      net.Config{SocketMode: net.TCPIPThreadMode, DelayedAck: true, RecvBuf: 1 << 16},
	}
	text := FormatConfig(cfg)
	parsed, err := ParseConfig(text)
	if err != nil {
		t.Fatalf("ParseConfig failed on FormatConfig output:\n%s\n%v", text, err)
	}
	if again := FormatConfig(parsed); again != text {
		t.Errorf("round-trip not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, again)
	}
	if parsed.Backend != cfg.Backend || parsed.Alloc != cfg.Alloc || parsed.Sched != cfg.Sched {
		t.Errorf("knobs did not survive: %+v", parsed)
	}
	if len(parsed.Compartments) != 3 {
		t.Errorf("got %d compartments, want 3", len(parsed.Compartments))
	}
	if parsed.SH["app"] != (sh.Profile{ASAN: true, StackProtector: true}) {
		t.Errorf("app profile did not survive: %+v", parsed.SH["app"])
	}
}

// TestParseConfigDiagnostics: parse errors carry the line number and
// an sh none directive clears a profile rather than storing a no-op.
func TestParseConfigDiagnostics(t *testing.T) {
	_, err := ParseConfig("backend mpk\n\nbackend-typo x\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("want a line-3 diagnostic, got %v", err)
	}
	cfg, err := ParseConfig("sh netstack full\nsh netstack none\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SH) != 0 {
		t.Errorf("sh none left a profile behind: %+v", cfg.SH)
	}
}

// TestGenerateWrappers checks the §5 precondition-wrapper emission:
// the verified scheduler's contracts get one wrapper per guarded
// function, routed through every foreign compartment, and the
// single-compartment baseline emits nothing.
func TestGenerateWrappers(t *testing.T) {
	image := spec.DefaultImage()

	if ws := GenerateWrappers(image, SingleCompartment()); len(ws) != 0 {
		t.Errorf("single-compartment image emitted wrappers: %v", ws)
	}

	ws := GenerateWrappers(image, NWSchedRest())
	if len(ws) != 2 {
		t.Fatalf("got %d wrappers, want 2 (thread_add, thread_rm): %v", len(ws), ws)
	}
	if ws[0].Fn != "thread_add" || ws[1].Fn != "thread_rm" {
		t.Errorf("wrappers out of order: %v, %v", ws[0], ws[1])
	}
	for _, w := range ws {
		if w.Callee != "sched" {
			t.Errorf("wrapper callee %q, want sched", w.Callee)
		}
		if len(w.Checks) == 0 {
			t.Errorf("wrapper %s.%s carries no checks", w.Callee, w.Fn)
		}
		if len(w.Callers) != 2 {
			t.Errorf("wrapper %s.%s lists callers %v, want the two foreign compartments",
				w.Callee, w.Fn, w.Callers)
		}
		for _, c := range w.Callers {
			if c == "sched" {
				t.Errorf("wrapper lists the callee's own compartment as a caller")
			}
		}
	}
}

// TestNewWorldWiring smoke-tests the builder output: per-library
// environments exist, compartment boundaries separate gate domains,
// and tracing records crossings once enabled.
func TestNewWorldWiring(t *testing.T) {
	w, err := NewWorld(Config{
		Name:         "nw-only",
		Compartments: NWOnly(),
		Backend:      gate.MPKShared,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range DefaultLibraries {
		if w.Server.Env(l) == nil {
			t.Fatalf("no environment for %q", l)
		}
	}
	ring := w.Server.EnableTracing(64)
	nw := w.Server.Env("netstack")
	before := nw.CPU.Cycles()
	// A netstack-side allocation crosses into the core compartment's
	// allocator under the global policy.
	if _, err := nw.Malloc(128); err != nil {
		t.Fatal(err)
	}
	if nw.CPU.Cycles() <= before {
		t.Error("allocation consumed no cycles")
	}
	crossed := false
	for _, e := range ring.Events() {
		if e.Kind == "crossing" {
			crossed = true
		}
	}
	if !crossed {
		t.Error("no crossing traced for a cross-compartment allocation")
	}
}
