package build

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/mpk"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sh"
)

// The configuration-file surface: a line-oriented, Kconfig-flavoured
// format mirroring the paper's "a few lines of configuration" claim.
// Blank lines and '#' comments are ignored. Directives:
//
//	name <label>
//	backend <funccall|mpk-shared|mpk-switched|vm-rpc|cheri|...aliases>
//	alloc <global|per-compartment|per-library>
//	sched <c|verified>
//	seal <static|runtime|pagetable>
//	platform <kvm|xen>
//	datapath <shared|copy>
//	socket-mode <direct|tcpip-thread>
//	delayed-ack <on|off>
//	recv-buf <bytes>
//	sh <library> <none|full|asan[,cfi][,ssp][,ubsan]>
//	compartment <name> <library> [library...]
//	onfault <compartment> <abort|restart|degrade>
//	overload <compartment> <queue-depth> <shed|block|deadline>
//	breaker <compartment> <threshold> <window> <cooldown-cycles>
//	batch <compartment> <depth>
//	smp <n>
//	affinity <library|queue<k>> <cpu>
//	link <drop> <reorder> <corrupt> [seed]

// ParseConfig parses configuration-file source into a Config.
func ParseConfig(src string) (Config, error) {
	var cfg Config
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := applyDirective(&cfg, fields); err != nil {
			return Config{}, fmt.Errorf("build: config line %d: %w", lineno+1, err)
		}
	}
	if _, err := normalize(&cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func applyDirective(cfg *Config, fields []string) error {
	dir, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d argument(s), got %d", dir, n, len(args))
		}
		return nil
	}
	switch dir {
	case "name":
		if err := need(1); err != nil {
			return err
		}
		cfg.Name = args[0]
	case "backend":
		if err := need(1); err != nil {
			return err
		}
		b, err := gate.ParseBackend(args[0])
		if err != nil {
			return err
		}
		cfg.Backend = b
	case "alloc":
		if err := need(1); err != nil {
			return err
		}
		p, err := ParseAllocPolicy(args[0])
		if err != nil {
			return err
		}
		cfg.Alloc = p
	case "sched":
		if err := need(1); err != nil {
			return err
		}
		k, err := ParseSchedKind(args[0])
		if err != nil {
			return err
		}
		cfg.Sched = k
	case "seal":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "static":
			cfg.Seal = mpk.SealStatic
		case "runtime":
			cfg.Seal = mpk.SealRuntime
		case "pagetable":
			cfg.Seal = mpk.SealPageTable
		default:
			return fmt.Errorf("unknown seal policy %q", args[0])
		}
	case "platform":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "kvm":
			cfg.Platform = net.KVM
		case "xen":
			cfg.Platform = net.Xen
		default:
			return fmt.Errorf("unknown platform %q", args[0])
		}
	case "datapath":
		if err := need(1); err != nil {
			return err
		}
		dp, err := net.ParseDataPath(args[0])
		if err != nil {
			return err
		}
		cfg.DataPath = dp
	case "socket-mode":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "direct":
			cfg.Net.SocketMode = net.DirectMode
		case "tcpip-thread":
			cfg.Net.SocketMode = net.TCPIPThreadMode
		default:
			return fmt.Errorf("unknown socket mode %q", args[0])
		}
	case "delayed-ack":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "on":
			cfg.Net.DelayedAck = true
		case "off":
			cfg.Net.DelayedAck = false
		default:
			return fmt.Errorf("delayed-ack wants on or off, got %q", args[0])
		}
	case "recv-buf":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("recv-buf wants a positive byte count, got %q", args[0])
		}
		cfg.Net.RecvBuf = n
	case "sh":
		if err := need(2); err != nil {
			return err
		}
		p, err := parseProfile(args[1])
		if err != nil {
			return err
		}
		if cfg.SH == nil {
			cfg.SH = make(map[string]sh.Profile)
		}
		if p.Enabled() {
			cfg.SH[args[0]] = p
		} else {
			delete(cfg.SH, args[0])
		}
	case "compartment":
		if len(args) < 2 {
			return fmt.Errorf("compartment wants a name and at least one library")
		}
		cfg.Compartments = append(cfg.Compartments, Compartment{
			Name:      args[0],
			Libraries: append([]string(nil), args[1:]...),
		})
	case "onfault":
		if err := need(2); err != nil {
			return err
		}
		p, err := fault.ParsePolicy(args[1])
		if err != nil {
			return err
		}
		if cfg.OnFault == nil {
			cfg.OnFault = make(map[string]fault.Policy)
		}
		if p == fault.PolicyAbort {
			delete(cfg.OnFault, args[0]) // abort is the default
		} else {
			cfg.OnFault[args[0]] = p
		}
	case "overload":
		if err := need(3); err != nil {
			return err
		}
		depth, err := strconv.Atoi(args[1])
		if err != nil || depth < 0 {
			return fmt.Errorf("overload wants a non-negative queue depth, got %q", args[1])
		}
		p, err := fault.ParseShedPolicy(args[2])
		if err != nil {
			return err
		}
		if cfg.Overload == nil {
			cfg.Overload = make(map[string]rt.OverloadSpec)
		}
		if depth == 0 && p != fault.ShedPolicyDeadline {
			// A zero depth with shed/block admits everything: back to
			// the default, entry dropped (cf. onfault abort).
			delete(cfg.Overload, args[0])
		} else {
			cfg.Overload[args[0]] = rt.OverloadSpec{Depth: depth, Policy: p}
		}
	case "breaker":
		if err := need(4); err != nil {
			return err
		}
		threshold, err := strconv.Atoi(args[1])
		if err != nil || threshold < 0 {
			return fmt.Errorf("breaker wants a non-negative threshold, got %q", args[1])
		}
		window, err := strconv.Atoi(args[2])
		if err != nil || window < 0 {
			return fmt.Errorf("breaker wants a non-negative window, got %q", args[2])
		}
		cooldown, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("breaker wants a cooldown in cycles, got %q", args[3])
		}
		if cfg.Breaker == nil {
			cfg.Breaker = make(map[string]rt.BreakerSpec)
		}
		if threshold == 0 {
			// Threshold 0 never opens: back to the default, entry dropped.
			delete(cfg.Breaker, args[0])
		} else {
			cfg.Breaker[args[0]] = rt.BreakerSpec{Threshold: threshold, Window: window, Cooldown: cooldown}
		}
	case "batch":
		if err := need(2); err != nil {
			return err
		}
		depth, err := strconv.Atoi(args[1])
		if err != nil || depth < 1 {
			return fmt.Errorf("batch wants a depth >= 1, got %q", args[1])
		}
		if cfg.Batch == nil {
			cfg.Batch = make(map[string]int)
		}
		if depth == 1 {
			// Depth 1 dispatches one call per crossing: back to the
			// default, entry dropped (cf. onfault abort).
			delete(cfg.Batch, args[0])
		} else {
			cfg.Batch[args[0]] = depth
		}
	case "smp":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("smp wants a vCPU count >= 1, got %q", args[0])
		}
		if n == 1 {
			cfg.Smp = 0 // single-core is the default, entry elided
		} else {
			cfg.Smp = n
		}
	case "link":
		if len(args) != 3 && len(args) != 4 {
			return fmt.Errorf("link takes 3 or 4 arguments (drop reorder corrupt [seed]), got %d", len(args))
		}
		var spec LinkSpec
		for i, dst := range []*float64{&spec.Drop, &spec.Reorder, &spec.Corrupt} {
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 || v > 1 {
				return fmt.Errorf("link wants fault rates in [0,1], got %q", args[i])
			}
			*dst = v
		}
		if len(args) == 4 {
			seed, err := strconv.ParseUint(args[3], 10, 64)
			if err != nil {
				return fmt.Errorf("link wants an unsigned seed, got %q", args[3])
			}
			spec.Seed = seed
		}
		if !spec.Active() {
			cfg.Link = LinkSpec{} // all-zero rates: back to the lossless default
		} else {
			cfg.Link = spec
		}
	case "affinity":
		if err := need(2); err != nil {
			return err
		}
		cpu, err := strconv.Atoi(args[1])
		if err != nil || cpu < 0 {
			return fmt.Errorf("affinity wants a non-negative cpu id, got %q", args[1])
		}
		if cfg.Affinity == nil {
			cfg.Affinity = make(map[string]int)
		}
		if cpu == 0 {
			delete(cfg.Affinity, args[0]) // cpu 0 is the default
		} else {
			cfg.Affinity[args[0]] = cpu
		}
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return nil
}

func parseProfile(s string) (sh.Profile, error) {
	switch s {
	case "none":
		return sh.Profile{}, nil
	case "full":
		return sh.Full, nil
	}
	var p sh.Profile
	for _, t := range strings.Split(s, ",") {
		switch t {
		case "asan":
			p.ASAN = true
		case "cfi":
			p.CFI = true
		case "ssp":
			p.StackProtector = true
		case "ubsan":
			p.UBSan = true
		default:
			return sh.Profile{}, fmt.Errorf("unknown hardening technique %q", t)
		}
	}
	return p, nil
}

// FormatConfig renders a Config in the configuration-file format, with
// defaults spelled out; the output round-trips through ParseConfig.
func FormatConfig(cfg Config) string {
	var b strings.Builder
	if cfg.Name != "" {
		fmt.Fprintf(&b, "name %s\n", cfg.Name)
	}
	fmt.Fprintf(&b, "backend %s\n", cfg.Backend)
	fmt.Fprintf(&b, "alloc %s\n", cfg.Alloc)
	fmt.Fprintf(&b, "sched %s\n", cfg.Sched)
	fmt.Fprintf(&b, "seal %s\n", cfg.Seal)
	if cfg.Platform == net.Xen {
		fmt.Fprintf(&b, "platform xen\n")
	} else {
		fmt.Fprintf(&b, "platform kvm\n")
	}
	fmt.Fprintf(&b, "datapath %s\n", cfg.DataPath)
	if cfg.Net.SocketMode == net.TCPIPThreadMode {
		fmt.Fprintf(&b, "socket-mode tcpip-thread\n")
	} else {
		fmt.Fprintf(&b, "socket-mode direct\n")
	}
	if cfg.Net.DelayedAck {
		fmt.Fprintf(&b, "delayed-ack on\n")
	}
	if cfg.Net.RecvBuf > 0 {
		fmt.Fprintf(&b, "recv-buf %d\n", cfg.Net.RecvBuf)
	}
	hardened := make([]string, 0, len(cfg.SH))
	for l, p := range cfg.SH {
		if p.Enabled() {
			hardened = append(hardened, l)
		}
	}
	sort.Strings(hardened)
	for _, l := range hardened {
		fmt.Fprintf(&b, "sh %s %s\n", l, profileTokens(cfg.SH[l]))
	}
	comps := cfg.Compartments
	if len(comps) == 0 {
		comps = SingleCompartment()
	}
	for _, c := range comps {
		fmt.Fprintf(&b, "compartment %s %s\n", c.Name, strings.Join(c.Libraries, " "))
	}
	faulted := make([]string, 0, len(cfg.OnFault))
	for comp, p := range cfg.OnFault {
		if p != fault.PolicyAbort {
			faulted = append(faulted, comp)
		}
	}
	sort.Strings(faulted)
	for _, comp := range faulted {
		fmt.Fprintf(&b, "onfault %s %s\n", comp, cfg.OnFault[comp])
	}
	overloaded := make([]string, 0, len(cfg.Overload))
	for comp := range cfg.Overload {
		overloaded = append(overloaded, comp)
	}
	sort.Strings(overloaded)
	for _, comp := range overloaded {
		spec := cfg.Overload[comp]
		fmt.Fprintf(&b, "overload %s %d %s\n", comp, spec.Depth, spec.Policy)
	}
	broken := make([]string, 0, len(cfg.Breaker))
	for comp := range cfg.Breaker {
		broken = append(broken, comp)
	}
	sort.Strings(broken)
	for _, comp := range broken {
		spec := cfg.Breaker[comp]
		fmt.Fprintf(&b, "breaker %s %d %d %d\n", comp, spec.Threshold, spec.Window, spec.Cooldown)
	}
	batched := make([]string, 0, len(cfg.Batch))
	for comp := range cfg.Batch {
		batched = append(batched, comp)
	}
	sort.Strings(batched)
	for _, comp := range batched {
		fmt.Fprintf(&b, "batch %s %d\n", comp, cfg.Batch[comp])
	}
	if cfg.Smp > 1 {
		fmt.Fprintf(&b, "smp %d\n", cfg.Smp)
	}
	if cfg.Link.Active() {
		fmt.Fprintf(&b, "link %g %g %g", cfg.Link.Drop, cfg.Link.Reorder, cfg.Link.Corrupt)
		if cfg.Link.Seed != 0 {
			fmt.Fprintf(&b, " %d", cfg.Link.Seed)
		}
		b.WriteByte('\n')
	}
	pinned := make([]string, 0, len(cfg.Affinity))
	for target, cpu := range cfg.Affinity {
		if cpu != 0 {
			pinned = append(pinned, target)
		}
	}
	sort.Strings(pinned)
	for _, target := range pinned {
		fmt.Fprintf(&b, "affinity %s %d\n", target, cfg.Affinity[target])
	}
	return b.String()
}

func profileTokens(p sh.Profile) string {
	if p == sh.Full {
		return "full"
	}
	var ts []string
	if p.ASAN {
		ts = append(ts, "asan")
	}
	if p.CFI {
		ts = append(ts, "cfi")
	}
	if p.StackProtector {
		ts = append(ts, "ssp")
	}
	if p.UBSan {
		ts = append(ts, "ubsan")
	}
	if len(ts) == 0 {
		return "none"
	}
	return strings.Join(ts, ",")
}
