package build

import (
	"strings"
	"testing"

	"flexos/internal/fault"
	"flexos/internal/rt"
)

func TestOverloadDirectiveRoundTrip(t *testing.T) {
	src := "backend mpk-switched\n" +
		"compartment nw netstack\n" +
		"compartment lc libc\n" +
		"compartment core sched alloc app rest\n" +
		"overload nw 8 shed\n" +
		"overload lc 0 deadline\n" +
		"breaker nw 4 256 40000\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Overload["nw"] != (rt.OverloadSpec{Depth: 8, Policy: fault.ShedPolicyShed}) {
		t.Fatalf("Overload[nw] = %+v", cfg.Overload["nw"])
	}
	if cfg.Overload["lc"] != (rt.OverloadSpec{Depth: 0, Policy: fault.ShedPolicyDeadline}) {
		t.Fatalf("Overload[lc] = %+v", cfg.Overload["lc"])
	}
	if cfg.Breaker["nw"] != (rt.BreakerSpec{Threshold: 4, Window: 256, Cooldown: 40000}) {
		t.Fatalf("Breaker[nw] = %+v", cfg.Breaker["nw"])
	}
	out := FormatConfig(cfg)
	// Deterministic output: specs are emitted sorted by compartment.
	lcIdx := strings.Index(out, "overload lc 0 deadline\n")
	nwIdx := strings.Index(out, "overload nw 8 shed\n")
	if lcIdx < 0 || nwIdx < 0 || lcIdx > nwIdx {
		t.Fatalf("overload lines missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "breaker nw 4 256 40000\n") {
		t.Fatalf("breaker line missing:\n%s", out)
	}
	cfg2, err := ParseConfig(out)
	if err != nil {
		t.Fatalf("formatted config failed to reparse: %v\n%s", err, out)
	}
	if len(cfg2.Overload) != 2 || len(cfg2.Breaker) != 1 ||
		cfg2.Overload["nw"] != cfg.Overload["nw"] ||
		cfg2.Overload["lc"] != cfg.Overload["lc"] ||
		cfg2.Breaker["nw"] != cfg.Breaker["nw"] {
		t.Fatalf("round-trip Overload = %v Breaker = %v", cfg2.Overload, cfg2.Breaker)
	}
}

func TestOverloadDefaultsAreElided(t *testing.T) {
	// Depth 0 with shed/block admits everything, and threshold 0 never
	// opens: both are the default, so the entries are dropped (cf.
	// onfault abort).
	src := "backend mpk-shared\n" +
		"compartment nw netstack\n" +
		"compartment core sched alloc libc app rest\n" +
		"overload nw 8 block\n" +
		"overload nw 0 shed\n" +
		"breaker nw 4 128 1000\n" +
		"breaker nw 0 128 1000\n"
	cfg, err := ParseConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Overload) != 0 || len(cfg.Breaker) != 0 {
		t.Fatalf("Overload = %v Breaker = %v, want both empty", cfg.Overload, cfg.Breaker)
	}
	out := FormatConfig(cfg)
	if strings.Contains(out, "overload") || strings.Contains(out, "breaker") {
		t.Fatalf("default specs emitted:\n%s", out)
	}
}

func TestOverloadValidation(t *testing.T) {
	base := "backend mpk-shared\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n"
	cases := []struct {
		name, directive string
	}{
		{"unknown compartment", "overload ghost 4 shed\n"},
		{"unknown policy", "overload nw 4 explode\n"},
		{"negative depth", "overload nw -1 shed\n"},
		{"depth 0 without deadline policy is the block default", ""},
		{"missing args", "overload nw\n"},
		{"breaker unknown compartment", "breaker ghost 4 128 1000\n"},
		{"breaker negative threshold", "breaker nw -4 128 1000\n"},
		{"breaker threshold above window", "breaker nw 200 128 1000\n"},
		{"breaker missing args", "breaker nw 4\n"},
	}
	for _, tc := range cases {
		if tc.directive == "" {
			continue
		}
		if _, err := ParseConfig(base + tc.directive); err == nil {
			t.Errorf("%s: %q accepted", tc.name, strings.TrimSpace(tc.directive))
		}
	}
	// The world build re-runs the same validation on hand-built configs
	// that never went through the parser.
	cfg, err := ParseConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overload = map[string]rt.OverloadSpec{"nw": {Depth: 0, Policy: fault.ShedPolicyBlock}}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("depth 0 with block policy accepted by NewWorld")
	}
}
