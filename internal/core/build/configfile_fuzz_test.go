package build

import "testing"

// FuzzParseConfig checks the configuration-file surface on arbitrary
// input: parsing never panics, and every accepted config reaches the
// FormatConfig fixpoint — format(parse(format(parse(src)))) is
// byte-identical to format(parse(src)), which is the documented
// round-trip guarantee.
func FuzzParseConfig(f *testing.F) {
	f.Add("backend mpk-shared\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n")
	f.Add("name img\nbackend vm-rpc\nalloc per-compartment\nsched verified\nseal runtime\n" +
		"platform xen\ndatapath copy\nsocket-mode tcpip-thread\ndelayed-ack on\nrecv-buf 16384\n" +
		"sh libc asan,cfi\ncompartment lc libc\ncompartment core sched alloc netstack app rest\n" +
		"onfault lc restart\n")
	f.Add("backend cheri\nonfault all degrade\n# comment\n\n")
	f.Add("backend funccall\nsh app full\nsh app none\n")
	f.Add("onfault nowhere abort\nbackend mpk-switched\n")
	f.Add("backend mpk-switched\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n" +
		"overload nw 8 shed\noverload nw 0 deadline\nbreaker nw 4 256 40000\n")
	f.Add("overload nw -1 block\nbreaker nw 999 1 18446744073709551615\n")
	f.Add("backend vm-rpc\ncompartment nw netstack\ncompartment core sched alloc libc app rest\n" +
		"batch nw 16\nbatch core 4\nbatch nw 1\n")
	f.Add("batch nw 0\nbatch nw -7\nbatch nw lots\nbatch nw\n")
	f.Add("backend mpk-shared\nsmp 4\naffinity netstack 1\naffinity queue2 3\naffinity queue0 0\n")
	f.Add("smp 1\nsmp 0\nsmp -2\nsmp lots\nsmp\n")
	f.Add("smp 2\naffinity netstack 7\n")                  // cpu id outside 0..smp-1
	f.Add("smp 4\naffinity queue9 1\n")                    // queue outside the NIC's rings
	f.Add("smp 4\naffinity nowhere 1\n")                   // neither library nor queue<k>
	f.Add("affinity netstack -1\nsmp 8\n")                 // negative cpu id
	f.Add("smp 2\naffinity queue1 1\naffinity queue1 0\n") // override back to default
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := ParseConfig(src)
		if err != nil {
			return
		}
		once := FormatConfig(cfg)
		cfg2, err := ParseConfig(once)
		if err != nil {
			t.Fatalf("formatted config failed to reparse: %v\n%s", err, once)
		}
		twice := FormatConfig(cfg2)
		if once != twice {
			t.Fatalf("format not a fixpoint:\n--- first ---\n%s--- second ---\n%s", once, twice)
		}
	})
}
