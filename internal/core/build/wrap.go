package build

import (
	"fmt"
	"sort"

	"flexos/internal/core/spec"
)

// Wrapper is one generated precondition-check call gate. FlexOS's §5
// flow: when a library declares executable preconditions (the
// verified scheduler's thread_add/thread_rm contracts), the build
// system emits a wrapper at each compartment boundary that re-checks
// them on entry — callers inside the callee's own compartment are
// trusted and call the raw entry point instead. Wrappers are a build
// artifact: the cost estimate for one check is clock.CostPrecondCheck.
type Wrapper struct {
	// Callee is the library owning the guarded function.
	Callee string
	// Fn is the guarded function name.
	Fn string
	// Checks are the precondition predicates compiled into the
	// wrapper, in declaration order.
	Checks []string
	// Callers are the compartments whose calls route through the
	// wrapper (every compartment except the callee's own).
	Callers []string
}

// String renders the wrapper as the generated C-ish stub it stands for.
func (w Wrapper) String() string {
	return fmt.Sprintf("%s.%s: check %v for callers %v", w.Callee, w.Fn, w.Checks, w.Callers)
}

// GenerateWrappers emits the precondition wrappers for an image:
// one per guarded function of each library that declares
// preconditions, listing the foreign compartments whose calls must
// pass through it. Libraries absent from the compartment plan (or
// functions with no preconditions) produce nothing.
func GenerateWrappers(libs []*spec.Library, comps []Compartment) []Wrapper {
	compOf := make(map[string]string, len(comps))
	for _, c := range comps {
		for _, l := range c.Libraries {
			compOf[l] = c.Name
		}
	}
	var out []Wrapper
	for _, l := range libs {
		if len(l.Spec.Preconditions) == 0 {
			continue
		}
		home, placed := compOf[l.Name]
		if !placed {
			continue
		}
		var callers []string
		for _, c := range comps {
			if c.Name != home {
				callers = append(callers, c.Name)
			}
		}
		if len(callers) == 0 {
			// Single-compartment image: every caller is trusted, no
			// wrapper is emitted (the baseline pays nothing).
			continue
		}
		fns := make([]string, 0, len(l.Spec.Preconditions))
		for fn := range l.Spec.Preconditions {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		for _, fn := range fns {
			out = append(out, Wrapper{
				Callee:  l.Name,
				Fn:      fn,
				Checks:  append([]string(nil), l.Spec.Preconditions[fn]...),
				Callers: callers,
			})
		}
	}
	return out
}
