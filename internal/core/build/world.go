package build

import (
	"fmt"

	"flexos/internal/cheri"
	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
	"flexos/internal/fault"
	"flexos/internal/libc"
	"flexos/internal/mem"
	"flexos/internal/metrics"
	"flexos/internal/mpk"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
	"flexos/internal/sh"
	"flexos/internal/trace"
	"flexos/internal/vmm"
)

// Memory layout of one machine's arena. Sizes are generous: the
// harness streams megabytes through the stack, but RX/TX buffers are
// short-lived so heaps never hold more than a window's worth.
const (
	sharedHeapSize = 4 << 20 // shared window: cross-compartment I/O buffers
	privHeapSize   = 2 << 20 // one private heap per allocator instance
)

// Machine is one instantiated image: the arena, gates, libraries and
// per-library runtime environments produced by building a Config.
type Machine struct {
	// Config is the image description the machine was built from.
	Config Config
	// Clock is the machine's time domain: Config.Smp vCPUs sharing one
	// deterministic interleaver. Every component of the image charges
	// it, and charges land on the vCPU the scheduler (or RSS interrupt
	// steering) made current.
	Clock *clock.Machine
	// CPU is vCPU 0 — the boot CPU, where single-threaded setup and
	// main-thread work runs. On a single-core image it is the whole
	// machine.
	CPU *clock.CPU
	// Arena is the machine's physical memory.
	Arena *mem.Arena
	// Registry routes cross-library calls through the right gate.
	Registry *gate.Registry
	// MPK is the protection-key unit (nil unless an MPK backend).
	MPK *mpk.Unit
	// CHERI is the capability machine (nil unless the CHERI backend).
	CHERI *cheri.Machine
	// Bus is the inter-VM notification bus (nil unless VM RPC).
	Bus *vmm.Bus
	// LibC is the machine's C library instance.
	LibC *libc.LibC
	// Stack is the machine's TCP/IP stack instance.
	Stack *net.Stack
	// Pool is the ref-counted shared-window buffer pool behind the
	// zero-copy data path; its leak accounting (Outstanding,
	// OutstandingRefs) must read zero after a clean run.
	Pool *mem.SharedPool
	// Wrappers are the generated precondition-check call gates (§5's
	// static-analysis flow; a build artifact, not a runtime object).
	Wrappers []Wrapper
	// Sup applies per-compartment fault policy (Config.OnFault) to
	// every supervised gate call on this machine.
	Sup *rt.Supervisor
	// Metrics is the machine's always-on observability registry: live
	// crossing counters and per-(pair, vCPU) call-latency histograms
	// fed from the gate meter. Unlike the bounded trace ring these
	// never drop, so attribution stays exact under any event rate.
	Metrics *metrics.Registry

	envs   map[string]*rt.Env
	comps  []Compartment
	compOf map[clock.Component]string // component -> owning compartment
}

// World is a server machine wired to a load-generating client, both
// driven by one deterministic scheduler — the unit every harness
// measurement runs on.
type World struct {
	Server *Machine
	Client *Machine
	// Sched is the shared cooperative scheduler.
	Sched sched.Scheduler
	// Wire is the virtual link between the two stacks.
	Wire *net.Wire
}

// libComponents attributes each default library's cycles.
var libComponents = map[string]clock.Component{
	"sched":    clock.CompSched,
	"alloc":    clock.CompAlloc,
	"libc":     clock.CompLibC,
	"netstack": clock.CompNet,
	"app":      clock.CompApp,
	"rest":     clock.CompRest,
}

// NewWorld builds a server image from cfg plus a structurally
// identical client (whose cycles are never reported), connects their
// network stacks and hands both to one scheduler.
func NewWorld(cfg Config) (*World, error) {
	comps, err := normalize(&cfg)
	if err != nil {
		return nil, err
	}
	var s sched.Scheduler
	switch cfg.Sched {
	case SchedVerified:
		s = sched.NewVerifiedScheduler()
	default:
		s = sched.NewCScheduler()
	}
	server, err := newMachine(cfg, comps, s, net.IP4(10, 0, 0, 1))
	if err != nil {
		return nil, fmt.Errorf("build: server: %w", err)
	}
	// The client is a load generator, not a system under test: its
	// cycles are never reported, and its socket calls run in direct
	// mode so the shared scheduler isn't churned by a second tcpip
	// thread. It also runs without overload control — admission queues
	// and breakers on the load generator would throttle the offered
	// load the experiment is sweeping.
	clientCfg := cfg
	clientCfg.Net.SocketMode = net.DirectMode
	clientCfg.Overload = nil
	clientCfg.Breaker = nil
	client, err := newMachine(clientCfg, comps, s, net.IP4(10, 0, 0, 2))
	if err != nil {
		return nil, fmt.Errorf("build: client: %w", err)
	}
	wire := net.Connect(server.Stack, client.Stack)
	if cfg.Link.Active() {
		seed := cfg.Link.Seed
		if seed == 0 {
			seed = 1
		}
		wire.ArmBoth(net.LinkFaults{
			Seed:    seed,
			Drop:    cfg.Link.Drop,
			Reorder: cfg.Link.Reorder,
			Corrupt: cfg.Link.Corrupt,
		})
	}
	server.Stack.StartTCPIP(s)
	return &World{Server: server, Client: client, Sched: s, Wire: wire}, nil
}

// newMachine instantiates one image: memory layout, protection
// domains, gates, allocators, hardening, libc and the network stack.
func newMachine(cfg Config, comps []Compartment, s sched.Scheduler, ip net.IPAddr) (*Machine, error) {
	m := &Machine{
		Config: cfg,
		Clock:  clock.NewMachine(cfg.Smp),
		envs:   make(map[string]*rt.Env, len(DefaultLibraries)),
		comps:  comps,
	}
	m.CPU = m.Clock.CPU(0)

	// --- memory layout ---------------------------------------------
	// Page 0 stays unmapped (NilAddr), then the shared window, then
	// one private heap per allocator instance.
	heapCount := 1 // AllocGlobal
	switch cfg.Alloc {
	case AllocPerCompartment:
		heapCount = len(comps)
	case AllocPerLibrary:
		heapCount = len(DefaultLibraries)
	}
	arenaSize := mem.PageSize + sharedHeapSize + heapCount*privHeapSize
	m.Arena = mem.NewArena(arenaSize)

	base := mem.Addr(mem.PageSize)
	shared, err := mem.NewHeap(m.Arena, base, sharedHeapSize, mem.KeyShared)
	if err != nil {
		return nil, err
	}
	base += sharedHeapSize
	m.Pool = mem.NewSharedPool(shared)

	m.Sup = rt.NewSupervisor(m.Clock, m.Pool)
	for comp, p := range cfg.OnFault {
		m.Sup.SetPolicy(comp, p)
	}
	for comp, spec := range cfg.Overload {
		m.Sup.SetOverload(comp, spec)
	}
	for comp, spec := range cfg.Breaker {
		m.Sup.SetBreaker(comp, spec)
	}
	// The block admission policy parks callers on the scheduler, and
	// routed frames inherit the running thread's deadline.
	m.Sup.SetThreadSource(s.Current)

	// compKey gives compartment i protection key i+1 (key 0 is the
	// shared window). normalize already bounded the count for MPK.
	compOf := make(map[string]int, len(DefaultLibraries)) // lib -> compartment index
	for i, c := range comps {
		for _, l := range c.Libraries {
			compOf[l] = i
		}
	}
	compKey := func(i int) mem.Key { return mem.Key(i + 1) }

	// Decide whether the image needs an ASAN runtime at all.
	anyASAN := false
	for _, p := range cfg.SH {
		if p.ASAN {
			anyASAN = true
		}
	}
	var asan *sh.ASAN
	if anyASAN {
		asan = sh.NewASAN(m.Arena, m.Clock)
	}

	// instrument wraps a heap with the ASAN allocator when the
	// libraries it serves include a hardened one — the paper's Fig. 4
	// mechanism: sharing an allocator with a hardened library means
	// inheriting its instrumentation.
	instrument := func(h mem.Allocator, served ...string) mem.Allocator {
		if asan == nil {
			return h
		}
		for _, l := range served {
			if cfg.SH[l].ASAN {
				return sh.NewAllocator(h, asan, m.Clock)
			}
		}
		return h
	}

	allocOf := make(map[string]mem.Allocator, len(DefaultLibraries))
	switch cfg.Alloc {
	case AllocGlobal:
		h, err := mem.NewHeap(m.Arena, base, privHeapSize, compKey(compOf["alloc"]))
		if err != nil {
			return nil, err
		}
		a := instrument(h, DefaultLibraries...)
		for _, l := range DefaultLibraries {
			allocOf[l] = a
		}
	case AllocPerCompartment:
		for i, c := range comps {
			h, err := mem.NewHeap(m.Arena, base+mem.Addr(i*privHeapSize), privHeapSize, compKey(i))
			if err != nil {
				return nil, err
			}
			m.Sup.RegisterHeap(c.Name, h)
			a := instrument(h, c.Libraries...)
			for _, l := range c.Libraries {
				allocOf[l] = a
			}
		}
	case AllocPerLibrary:
		for i, l := range DefaultLibraries {
			h, err := mem.NewHeap(m.Arena, base+mem.Addr(i*privHeapSize), privHeapSize, compKey(compOf[l]))
			if err != nil {
				return nil, err
			}
			m.Sup.RegisterHeap(comps[compOf[l]].Name, h)
			allocOf[l] = instrument(h, l)
		}
	}

	// --- protection domains and gates ------------------------------
	domains := make([]*gate.Domain, len(comps))
	for i, c := range comps {
		domains[i] = gate.NewDomain(c.Name, compKey(i))
	}

	direct := gate.NewFuncCall(m.Clock)
	var cross gate.Gate
	switch cfg.Backend {
	case gate.FuncCall:
		cross = gate.NewFuncCall(m.Clock)
	case gate.MPKShared, gate.MPKSwitched:
		m.MPK = mpk.New(m.Arena, m.Clock)
		m.MPK.SetPolicy(cfg.Seal)
		for _, d := range domains {
			m.MPK.RegisterDomain(d.PKRU)
		}
		if cfg.Backend == gate.MPKShared {
			cross = gate.NewMPKShared(m.MPK, m.Clock)
		} else {
			cross = gate.NewMPKSwitched(m.MPK, m.Clock)
		}
	case gate.VMRPC:
		m.Bus = vmm.NewBus()
		cross = gate.NewVMRPC(m.Clock, m.Bus.Notify)
	case gate.CHERI:
		m.CHERI = cheri.New(m.Arena, m.Clock)
		cg := gate.NewCHERI(m.CHERI, m.Clock)
		// Each compartment gets a sealed code/data capability pair
		// over its entry page; CInvoke unseals them on crossing.
		root, err := m.CHERI.Root(mem.PageSize, mem.PageSize, cheri.PermRead|cheri.PermWrite|cheri.PermExecute)
		if err != nil {
			return nil, err
		}
		for _, d := range domains {
			otype := m.CHERI.AllocOType()
			code, err := m.CHERI.Seal(root, otype)
			if err != nil {
				return nil, err
			}
			data, err := m.CHERI.Seal(root, otype)
			if err != nil {
				return nil, err
			}
			if err := cg.RegisterEntry(d.Name, code, data); err != nil {
				return nil, err
			}
		}
		cross = cg
	}

	m.Registry = gate.NewRegistry(direct, cross)
	for _, d := range domains {
		m.Registry.AddCompartment(d)
	}
	for _, c := range comps {
		for _, l := range c.Libraries {
			if err := m.Registry.Assign(l, c.Name); err != nil {
				return nil, err
			}
		}
	}

	// --- always-on metrics -----------------------------------------
	// Live crossing counters and call-latency histograms, per
	// (compartment pair, vCPU). Instruments are resolved once per key
	// and cached; the meter itself is two counter adds and one
	// histogram observe — no allocation after the first crossing of a
	// pair on a vCPU.
	m.Metrics = metrics.NewRegistry()
	m.compOf = make(map[clock.Component]string, len(libComponents))
	for _, c := range comps {
		for _, l := range c.Libraries {
			m.compOf[libComponents[l]] = c.Name
		}
	}
	backend := cfg.Backend.String()
	type meterKey struct {
		from, to string
		cpu      int
	}
	type meterInst struct {
		crossings, frames *metrics.Counter
		cycles            *metrics.Histogram
	}
	insts := make(map[meterKey]*meterInst)
	m.Registry.SetMeter(m.Clock, func(fromComp, toComp string, cpu int, cycles uint64, frames int) {
		k := meterKey{fromComp, toComp, cpu}
		in, ok := insts[k]
		if !ok {
			l := metrics.Label{Comp: fromComp + "->" + toComp, Backend: backend, CPU: cpu}
			in = &meterInst{
				crossings: m.Metrics.Counter("gate_crossings", l),
				frames:    m.Metrics.Counter("gate_frames", l),
				cycles:    m.Metrics.Histogram("gate_call_cycles", l),
			}
			insts[k] = in
		}
		in.crossings.Inc()
		in.frames.Add(uint64(frames))
		in.cycles.Observe(cycles)
	})

	// --- per-library runtime environments --------------------------
	for _, l := range DefaultLibraries {
		var hard *sh.Hardener
		if p, ok := cfg.SH[l]; ok && p.Enabled() {
			hard = sh.NewHardener(libComponents[l], p, asan, nil, m.Clock)
		}
		m.envs[l] = &rt.Env{
			Lib:        l,
			Comp:       libComponents[l],
			CPU:        m.Clock,
			Gates:      m.Registry,
			Arena:      m.Arena,
			Alloc:      allocOf[l],
			Shared:     shared,
			AllocLocal: cfg.Alloc != AllocGlobal || l == "alloc",
			Pool:       m.Pool,
			Hard:       hard,
			Sup:        m.Sup,
			Cur:        s.Current,
			Batching:   cfg.Batch,
		}
	}

	// --- libraries -------------------------------------------------
	m.LibC = libc.New(m.envs["libc"])
	netCfg := cfg.Net
	netCfg.IP = ip
	if cfg.Platform != 0 {
		netCfg.Platform = cfg.Platform
	}
	if cfg.DataPath != 0 {
		netCfg.DataPath = cfg.DataPath
	}
	// The batch directive reaches the NIC model too: a depth on the
	// compartment holding "rest" (the drivers) batches tx doorbells,
	// a depth on the netstack compartment sets the NAPI rx poll budget.
	if d := cfg.Batch[comps[compOf["rest"]].Name]; d > 0 {
		netCfg.TxBatch = d
	}
	if d := cfg.Batch[comps[compOf["netstack"]].Name]; d > 0 {
		netCfg.RxBudget = d
	}
	netCfg.RestHard = m.envs["rest"].Hard
	// Multi-queue NIC: one RSS queue per vCPU, interrupts steered queue
	// k -> vCPU k unless an affinity directive overrides it; the tcpip
	// thread runs on the netstack library's affinity CPU (default 0).
	netCfg.NumQueues = m.Clock.NCPU()
	netCfg.QueueCPU = make([]int, netCfg.NumQueues)
	for q := range netCfg.QueueCPU {
		netCfg.QueueCPU[q] = q % m.Clock.NCPU()
		if cpu, ok := cfg.Affinity[fmt.Sprintf("queue%d", q)]; ok {
			netCfg.QueueCPU[q] = cpu
		}
	}
	netCfg.TCPIPCPU = cfg.Affinity["netstack"]
	m.Stack = net.NewStack(m.envs["netstack"], m.LibC, s, netCfg)

	m.Wrappers = GenerateWrappers(spec.DefaultImage(), comps)
	return m, nil
}

// Cycles reports the machine's elapsed virtual time: the makespan
// across its vCPUs, which on a single-core image is exactly the one
// CPU's counter.
func (m *Machine) Cycles() uint64 { return m.Clock.Makespan() }

// Env returns the runtime environment of one library ("app", "libc",
// ...); it panics on unknown names, which indicates a build bug.
func (m *Machine) Env(lib string) *rt.Env {
	e, ok := m.envs[lib]
	if !ok {
		panic(fmt.Sprintf("build: no environment for library %q", lib))
	}
	return e
}

// Compartments returns the machine's effective compartment list.
func (m *Machine) Compartments() []Compartment { return m.comps }

// EnableTracing attaches a crossing trace of up to capacity events to
// the machine's gate registry and returns the ring. Buffer-pool
// lifecycle events (buf-alloc, buf-ref, buf-release) and data-path
// boundary copies (buf-copy) land in the same ring.
func (m *Machine) EnableTracing(capacity int) *trace.Ring {
	ring := trace.NewRing(capacity)
	m.Registry.SetTracer(func(fromComp, toComp string) {
		ring.Emit(trace.Event{
			Cycles: m.Clock.Cycles(),
			CPU:    m.Clock.CurID(),
			Kind:   "crossing",
			From:   fromComp,
			To:     toComp,
		})
	})
	m.Pool.SetTracer(func(kind string, addr mem.Addr, n int) {
		ring.Emit(trace.Event{
			Cycles: m.Clock.Cycles(),
			CPU:    m.Clock.CurID(),
			Kind:   kind,
			Note:   fmt.Sprintf("%#x+%d", addr, n),
		})
	})
	m.Stack.SetCopyTracer(func(from, to string, n int) {
		ring.Emit(trace.Event{
			Cycles: m.Clock.Cycles(),
			CPU:    m.Clock.CurID(),
			Kind:   "buf-copy",
			From:   from,
			To:     to,
			Note:   fmt.Sprintf("%d bytes", n),
		})
	})
	m.Sup.SetTracer(func(kind, comp, note string) {
		ring.Emit(trace.Event{
			Cycles: m.Clock.Cycles(),
			CPU:    m.Clock.CurID(),
			Kind:   kind,
			From:   comp,
			Note:   note,
		})
	})
	m.Stack.SetEventTracer(func(kind, note string) {
		ring.Emit(trace.Event{
			Cycles: m.Clock.Cycles(),
			CPU:    m.Clock.CurID(),
			Kind:   kind,
			From:   "netstack",
			Note:   note,
		})
	})
	return ring
}

// Attribution computes the machine's cycle-attribution breakdown from
// the clock's per-vCPU ledgers: every cycle of capacity (makespan ×
// vCPUs) assigned to a (vCPU, component, compartment) row. It reads
// the live ledgers, never the bounded trace ring, so it stays exact
// when tracing has dropped events (or was never enabled).
func (m *Machine) Attribution() *metrics.Attribution {
	return metrics.Attribute(m.Clock, func(c clock.Component) string { return m.compOf[c] })
}

// MetricsSnapshot copies the live instruments — gate crossing counters
// and latency histograms from the meter, plus the plain-field counters
// kept on the NIC, shared pool and supervisor — into one deterministic
// export-ready snapshot.
func (m *Machine) MetricsSnapshot() *metrics.Snapshot {
	s := m.Metrics.Snapshot()
	backend := m.Config.Backend.String()
	mw := func(comp string) metrics.Label {
		return metrics.Label{Comp: comp, Backend: backend, CPU: -1}
	}
	if nic := m.Stack.NIC(); nic != nil {
		for q := 0; q < m.Stack.NumQueues(); q++ {
			l := metrics.Label{Comp: fmt.Sprintf("queue%d", q), Backend: backend, CPU: m.Stack.QueueCPU(q)}
			s.Add("nic_tx_frames", l, nic.QueueTx(q))
			s.Add("nic_rx_frames", l, nic.QueueRx(q))
			s.Add("nic_tx_coalesced", l, nic.QueueCoalescedTx(q))
			s.Add("nic_rx_coalesced", l, nic.QueueCoalescedRx(q))
		}
		s.Add("nic_doorbells", mw("nic"), nic.Doorbells())
		s.Add("nic_rx_polls", mw("nic"), nic.RxPolls())
		if w := nic.Wire(); w != nil {
			wl := mw("wire")
			s.Add("wire_dropped", wl, w.Dropped)
			s.Add("wire_corrupted", wl, w.Corrupted)
			s.Add("wire_duplicated", wl, w.Duplicated)
			s.Add("wire_reordered", wl, w.Reordered)
			s.Add("wire_flap_dropped", wl, w.FlapDropped)
		}
	}
	ns := m.Stack.Stats()
	nl := mw("netstack")
	s.Add("net_retransmits", nl, ns.Retransmits)
	s.Add("net_fast_retransmits", nl, ns.FastRetransmits)
	s.Add("net_checksum_drops", nl, ns.ChecksumDrops)
	s.Add("net_ooo_queued", nl, ns.OOOQueued)
	s.Add("net_zero_wnd_probes", nl, ns.ZeroWndProbes)
	s.Add("net_keepalive_probes", nl, ns.KeepaliveProbes)
	s.Add("net_deaths", nl, ns.NetDeaths)
	ps := m.Pool.Stats()
	pl := mw("pool")
	s.Add("pool_gets", pl, ps.Gets)
	s.Add("pool_refs", pl, ps.Refs)
	s.Add("pool_releases", pl, ps.Releases)
	s.Add("pool_recycles", pl, ps.Recycles)
	s.Add("pool_failed_gets", pl, ps.FailedGets)
	s.Add("pool_reclaims", pl, ps.Reclaims)
	ss := m.Sup.Stats()
	sl := mw("supervisor")
	s.Add("sup_traps", sl, ss.Traps)
	s.Add("sup_recoveries", sl, ss.Recoveries)
	s.Add("sup_retries", sl, ss.Retries)
	s.Add("sup_aborts", sl, ss.Aborts)
	s.Add("sup_degrades", sl, ss.Degrades)
	s.Add("sup_recovery_cycles", sl, ss.RecoveryCycles)
	s.Add("sup_sheds", sl, ss.Sheds)
	s.Add("sup_blocked", sl, ss.Blocked)
	s.Add("sup_deadline_traps", sl, ss.DeadlineTraps)
	s.Add("sup_breaker_fastfails", sl, ss.BreakerFastFails)
	s.Add("sup_breaker_opens", sl, ss.BreakerOpens)
	s.Add("sup_breaker_closes", sl, ss.BreakerCloses)
	s.Sort()
	return s
}

// InjectFaults arms a deterministic fault injector on this machine's
// gate registry: the injector fires at configured gate-call counts,
// simulating protection faults inside the callee compartment. The
// machine's shared pool backs the injector's leaked-buffer simulation.
func (m *Machine) InjectFaults(in *fault.Injector) {
	in.SetPool(m.Pool)
	m.Registry.SetInjector(in)
}
