package gate

import (
	"fmt"
	"sort"

	"flexos/internal/clock"
	"flexos/internal/fault"
)

// Registry is the runtime artifact the builder produces from a
// compartmentalization plan: the library -> compartment assignment and
// one gate per compartment pair. OS components call through it at
// every cross-library call site; the registry resolves the placeholder
// to a direct call or a domain crossing, exactly like the link-time
// gate instantiation of the paper.
type Registry struct {
	domains   map[string]*Domain // compartment -> domain
	libs      map[string]string  // library -> compartment
	direct    Gate
	cross     Gate
	pairCount map[[2]string]uint64
	tracer    func(fromComp, toComp string)
	observer  func(fromLib, toLib, fn string)
	injector  *fault.Injector
	meterClk  clock.Clock
	meter     func(fromComp, toComp string, cpu int, cycles uint64, frames int)
}

// SetTracer installs a callback invoked on every inter-compartment
// crossing (nil disables tracing).
func (r *Registry) SetTracer(fn func(fromComp, toComp string)) { r.tracer = fn }

// SetObserver installs a callback invoked on every named cross-library
// call, including intra-compartment ones — the dynamic-analysis tap
// the metadata generator records from (nil disables).
func (r *Registry) SetObserver(fn func(fromLib, toLib, fn string)) { r.observer = fn }

// SetMeter installs the metrics hook invoked after every
// inter-compartment crossing with the vCPU it started on and the
// measured cycle cost of the whole call (crossing plus callee work, as
// seen by that vCPU's counter). frames is 1 for a plain call and the
// batch size for one amortized CallBatch crossing. Unlike the trace
// ring, the meter's consumers keep *live counters* — they never drop
// under load — which is what the attribution path reads. nil disables
// metering.
func (r *Registry) SetMeter(clk clock.Clock, fn func(fromComp, toComp string, cpu int, cycles uint64, frames int)) {
	r.meterClk, r.meter = clk, fn
}

// SetInjector installs a deterministic fault injector fired at every
// call entry, direct or crossing (nil disables). An injected trap on a
// crossing is contained by the isolating gate; on a direct call it
// unwinds the image — which is the point of the blast-radius
// comparison.
func (r *Registry) SetInjector(in *fault.Injector) { r.injector = in }

// NewRegistry creates a registry using direct for intra-compartment
// calls and cross for inter-compartment calls.
func NewRegistry(direct, cross Gate) *Registry {
	return &Registry{
		domains:   make(map[string]*Domain),
		libs:      make(map[string]string),
		direct:    direct,
		cross:     cross,
		pairCount: make(map[[2]string]uint64),
	}
}

// AddCompartment registers a compartment's protection domain.
func (r *Registry) AddCompartment(d *Domain) { r.domains[d.Name] = d }

// Assign places a library into a compartment.
func (r *Registry) Assign(lib, compartment string) error {
	if _, ok := r.domains[compartment]; !ok {
		return fmt.Errorf("gate: unknown compartment %q", compartment)
	}
	r.libs[lib] = compartment
	return nil
}

// CompartmentOf reports the compartment a library lives in.
func (r *Registry) CompartmentOf(lib string) (string, bool) {
	c, ok := r.libs[lib]
	return c, ok
}

// Domain returns a compartment's protection domain.
func (r *Registry) Domain(compartment string) (*Domain, bool) {
	d, ok := r.domains[compartment]
	return d, ok
}

// Libraries lists the assigned libraries, sorted.
func (r *Registry) Libraries() []string {
	out := make([]string, 0, len(r.libs))
	for l := range r.libs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// SameCompartment reports whether two libraries share a compartment.
func (r *Registry) SameCompartment(a, b string) bool {
	ca, okA := r.libs[a]
	cb, okB := r.libs[b]
	return okA && okB && ca == cb
}

// SharesByReference reports whether payload buffers attached to a call
// from library a to library b reach the callee without being copied:
// either both live in the same compartment, or the crossing backend's
// transfer policy is by-reference.
func (r *Registry) SharesByReference(a, b string) bool {
	if r.SameCompartment(a, b) {
		return true
	}
	return r.cross.Backend().Transfer() == TransferShare
}

// Call routes a cross-library call: the uk_gate placeholder at run
// time. fromLib is the calling library, toLib the callee; argWords the
// number of 8-byte argument words the signature carries (one scalar
// return word is assumed).
func (r *Registry) Call(fromLib, toLib string, argWords int, fn func() error) error {
	return r.CallWithFrame(fromLib, toLib, "", CallFrame{ArgWords: argWords, RetWords: 1}, fn)
}

// CallNamed is Call with the callee function named, feeding the
// observer (used to generate draft metadata from observed behaviour).
func (r *Registry) CallNamed(fromLib, toLib, fnName string, argWords int, fn func() error) error {
	return r.CallWithFrame(fromLib, toLib, fnName, CallFrame{ArgWords: argWords, RetWords: 1}, fn)
}

// CallWithFrame is the full-ABI call site: the frame carries argument
// and return word counts plus any payload buffers attached by
// descriptor (the zero-copy data path).
func (r *Registry) CallWithFrame(fromLib, toLib, fnName string, frame CallFrame, fn func() error) error {
	cf, ok := r.libs[fromLib]
	if !ok {
		return fmt.Errorf("gate: caller library %q not assigned", fromLib)
	}
	ct, ok := r.libs[toLib]
	if !ok {
		return fmt.Errorf("gate: callee library %q not assigned", toLib)
	}
	if r.observer != nil && fnName != "" {
		r.observer(fromLib, toLib, fnName)
	}
	inner := fn
	if r.injector != nil {
		// The injection point sits on the callee side of the gate:
		// armed faults fire at call entry, before the callee mutates
		// state, inside whatever trap boundary the gate provides.
		inner = func() error {
			r.injector.OnCall(toLib, ct, fnName)
			return fn()
		}
	}
	if cf == ct {
		return r.direct.Call(r.domains[cf], r.domains[ct], frame, inner)
	}
	r.pairCount[[2]string{cf, ct}]++
	if r.tracer != nil {
		r.tracer(cf, ct)
	}
	if r.meter != nil {
		cpu, start := r.meterClk.CurID(), r.meterClk.Cycles()
		err := r.cross.Call(r.domains[cf], r.domains[ct], frame, inner)
		r.meter(cf, ct, cpu, r.meterClk.Cycles()-start, 1)
		return err
	}
	return r.cross.Call(r.domains[cf], r.domains[ct], frame, inner)
}

// CallBatch routes N cross-library calls to the same callee through
// one crossing where the backend supports it. Same-compartment batches
// and non-amortizing backends (direct, CHERI) degenerate to a loop of
// single calls; the MPK and VM-RPC gates carry the whole batch through
// one domain switch. The returned slice has one entry per frame (nil
// for success) — per-frame semantics (observer, injector, trap
// containment) are identical to N separate calls.
func (r *Registry) CallBatch(fromLib, toLib, fnName string, frames []CallFrame, fns []func() error) []error {
	errs := make([]error, len(frames))
	fill := func(err error) []error {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	cf, ok := r.libs[fromLib]
	if !ok {
		return fill(fmt.Errorf("gate: caller library %q not assigned", fromLib))
	}
	ct, ok := r.libs[toLib]
	if !ok {
		return fill(fmt.Errorf("gate: callee library %q not assigned", toLib))
	}
	inners := make([]func() error, len(fns))
	for i, fn := range fns {
		if r.observer != nil && fnName != "" {
			r.observer(fromLib, toLib, fnName)
		}
		inner := fn
		if r.injector != nil {
			inner = func() error {
				r.injector.OnCall(toLib, ct, fnName)
				return fn()
			}
		}
		inners[i] = inner
	}
	if cf == ct {
		for i := range frames {
			errs[i] = r.direct.Call(r.domains[cf], r.domains[ct], frames[i], inners[i])
		}
		return errs
	}
	bg, amortized := r.cross.(BatchGate)
	if !amortized {
		for i := range frames {
			r.pairCount[[2]string{cf, ct}]++
			if r.tracer != nil {
				r.tracer(cf, ct)
			}
			if r.meter != nil {
				cpu, start := r.meterClk.CurID(), r.meterClk.Cycles()
				errs[i] = r.cross.Call(r.domains[cf], r.domains[ct], frames[i], inners[i])
				r.meter(cf, ct, cpu, r.meterClk.Cycles()-start, 1)
				continue
			}
			errs[i] = r.cross.Call(r.domains[cf], r.domains[ct], frames[i], inners[i])
		}
		return errs
	}
	// One physical crossing for the whole batch.
	r.pairCount[[2]string{cf, ct}]++
	if r.tracer != nil {
		r.tracer(cf, ct)
	}
	if r.meter != nil {
		cpu, start := r.meterClk.CurID(), r.meterClk.Cycles()
		errs = bg.CallBatch(r.domains[cf], r.domains[ct], frames, inners)
		r.meter(cf, ct, cpu, r.meterClk.Cycles()-start, len(frames))
		return errs
	}
	return bg.CallBatch(r.domains[cf], r.domains[ct], frames, inners)
}

// Crossings reports the number of inter-compartment crossings between
// the two compartments (directional).
func (r *Registry) Crossings(fromComp, toComp string) uint64 {
	return r.pairCount[[2]string{fromComp, toComp}]
}

// TotalCrossings reports all inter-compartment crossings.
func (r *Registry) TotalCrossings() uint64 {
	var n uint64
	for _, c := range r.pairCount {
		n += c
	}
	return n
}

// CrossStalled reports the cycles callers spent serialized behind the
// cross gate — nonzero only for backends with a single-threaded callee
// (VM-RPC, where one VMM endpoint services every vCPU's calls in
// turn). It is the SMP experiment's measure of where RPC isolation
// stops scaling.
func (r *Registry) CrossStalled() uint64 {
	if g, ok := r.cross.(interface{ Stalled() uint64 }); ok {
		return g.Stalled()
	}
	return 0
}

// CrossingMatrix returns a copy of the per-pair crossing counters.
func (r *Registry) CrossingMatrix() map[[2]string]uint64 {
	out := make(map[[2]string]uint64, len(r.pairCount))
	for k, v := range r.pairCount {
		out[k] = v
	}
	return out
}
