package gate

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/mem"
	"flexos/internal/mpk"
)

func TestBackendString(t *testing.T) {
	cases := map[Backend]string{
		FuncCall: "funccall", MPKShared: "mpk-shared",
		MPKSwitched: "mpk-switched", VMRPC: "vm-rpc",
	}
	for b, want := range cases {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{
		"funccall": FuncCall, "none": FuncCall,
		"mpk": MPKShared, "erim": MPKShared,
		"hodor": MPKSwitched, "mpk-switched": MPKSwitched,
		"xen": VMRPC, "vm-rpc": VMRPC, "ept": VMRPC,
	} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

func TestFuncGate(t *testing.T) {
	cpu := clock.New()
	g := NewFuncCall(cpu)
	ran := false
	err := g.Call(NewDomain("a", 1), NewDomain("b", 2), CallFrame{ArgWords: 3, RetWords: 1}, func() error {
		ran = true
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("call failed: %v", err)
	}
	if cpu.Component(clock.CompGate) != clock.CostCall {
		t.Fatalf("cost = %d, want %d", cpu.Component(clock.CompGate), clock.CostCall)
	}
	if g.Crossings() != 1 {
		t.Fatal("crossing not counted")
	}
}

func newMPKWorld(t *testing.T) (*mpk.Unit, *mem.Arena, *clock.CPU) {
	t.Helper()
	a := mem.NewArena(16 * mem.PageSize)
	cpu := clock.New()
	return mpk.New(a, cpu), a, cpu
}

func TestMPKGateSwitchesDomains(t *testing.T) {
	u, a, cpu := newMPKWorld(t)
	mustNoErr(t, a.SetKeyRange(mem.PageSize, mem.PageSize, 1))
	mustNoErr(t, a.SetKeyRange(2*mem.PageSize, mem.PageSize, 2))
	app := NewDomain("app", 1)
	net := NewDomain("net", 2)
	mustNoErr(t, u.WritePKRU(app.PKRU))
	cpu.Reset()

	g := NewMPKShared(u, cpu)
	err := g.Call(app, net, CallFrame{ArgWords: 2, RetWords: 1}, func() error {
		// Inside the gate we are in net's domain: net memory is
		// accessible, app memory is not.
		if _, err := u.Load(2*mem.PageSize, 8); err != nil {
			t.Errorf("callee cannot read own memory: %v", err)
		}
		if _, err := u.Load(mem.PageSize, 8); err == nil {
			t.Error("callee can read caller's private memory")
		}
		return nil
	})
	mustNoErr(t, err)
	// After return we are back in app's domain.
	if u.PKRU() != app.PKRU {
		t.Fatalf("PKRU not restored: %v", u.PKRU())
	}
	// Cost: 2 WRPKRU + 2 register clears.
	want := uint64(2*clock.CostWRPKRU + 2*clock.CostRegisterClear)
	if got := cpu.Component(clock.CompGate); got != want {
		t.Fatalf("shared gate cost = %d, want %d", got, want)
	}
}

func TestMPKSwitchedCostsMore(t *testing.T) {
	u, _, cpu := newMPKWorld(t)
	app, net := NewDomain("app", 1), NewDomain("net", 2)
	shared := NewMPKShared(u, cpu)
	mustNoErr(t, shared.Call(app, net, CallFrame{ArgWords: 4, RetWords: 1}, func() error { return nil }))
	sharedCost := cpu.Cycles()

	cpu.Reset()
	switched := NewMPKSwitched(u, cpu)
	mustNoErr(t, switched.Call(app, net, CallFrame{ArgWords: 4, RetWords: 1}, func() error { return nil }))
	switchedCost := cpu.Cycles()

	if switchedCost <= sharedCost {
		t.Fatalf("switched (%d) should cost more than shared (%d)", switchedCost, sharedCost)
	}
	if switched.Backend() != MPKSwitched || shared.Backend() != MPKShared {
		t.Fatal("backend tags wrong")
	}
}

func TestMPKGatePropagatesError(t *testing.T) {
	u, _, cpu := newMPKWorld(t)
	g := NewMPKShared(u, cpu)
	boom := errors.New("boom")
	err := g.Call(NewDomain("a", 1), NewDomain("b", 2), CallFrame{RetWords: 1}, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if u.PKRU() != NewDomain("a", 1).PKRU {
		t.Fatal("PKRU not restored after callee error")
	}
}

func TestMPKGateSealingViolation(t *testing.T) {
	u, _, cpu := newMPKWorld(t)
	u.SetPolicy(mpk.SealStatic)
	a, b := NewDomain("a", 1), NewDomain("b", 2)
	u.RegisterDomain(a.PKRU) // b is NOT registered
	g := NewMPKShared(u, cpu)
	if err := g.Call(a, b, CallFrame{RetWords: 1}, func() error { return nil }); err == nil {
		t.Fatal("unregistered target domain accepted")
	}
}

func TestVMRPCGate(t *testing.T) {
	cpu := clock.New()
	var notifications [][2]string
	g := NewVMRPC(cpu, func(from, to *Domain) {
		notifications = append(notifications, [2]string{from.Name, to.Name})
	})
	a, b := NewDomain("a"), NewDomain("b")
	mustNoErr(t, g.Call(a, b, CallFrame{ArgWords: 2, RetWords: 1}, func() error { return nil }))
	if len(notifications) != 2 {
		t.Fatalf("notifications = %v", notifications)
	}
	if notifications[0] != [2]string{"a", "b"} || notifications[1] != [2]string{"b", "a"} {
		t.Fatalf("notification order wrong: %v", notifications)
	}
	if cpu.Component(clock.CompVMM) < 2*clock.CostVMNotify {
		t.Fatal("VM RPC undercharged")
	}
}

func TestCrossingCostOrdering(t *testing.T) {
	// The design-space premise: funccall < mpk-shared < mpk-switched
	// << vm-rpc.
	f, s, w, v := CrossingCost(FuncCall), CrossingCost(MPKShared),
		CrossingCost(MPKSwitched), CrossingCost(VMRPC)
	if !(f < s && s < w && w < v) {
		t.Fatalf("cost ordering broken: %d %d %d %d", f, s, w, v)
	}
	if v < 20*s {
		t.Fatalf("VM RPC (%d) should dwarf MPK (%d)", v, s)
	}
}

func TestRegistryRouting(t *testing.T) {
	u, _, cpu := newMPKWorld(t)
	r := NewRegistry(NewFuncCall(cpu), NewMPKShared(u, cpu))
	c1, c2 := NewDomain("comp1", 1), NewDomain("comp2", 2)
	r.AddCompartment(c1)
	r.AddCompartment(c2)
	mustNoErr(t, r.Assign("app", "comp1"))
	mustNoErr(t, r.Assign("libc", "comp1"))
	mustNoErr(t, r.Assign("netstack", "comp2"))

	if !r.SameCompartment("app", "libc") || r.SameCompartment("app", "netstack") {
		t.Fatal("SameCompartment wrong")
	}

	// Intra-compartment: direct call, no crossings.
	mustNoErr(t, r.Call("app", "libc", 1, func() error { return nil }))
	if r.TotalCrossings() != 0 {
		t.Fatal("intra-compartment call counted as crossing")
	}

	// Inter-compartment: crossing counted per pair.
	mustNoErr(t, r.Call("app", "netstack", 2, func() error { return nil }))
	mustNoErr(t, r.Call("netstack", "app", 1, func() error { return nil }))
	if r.Crossings("comp1", "comp2") != 1 || r.Crossings("comp2", "comp1") != 1 {
		t.Fatalf("crossing matrix = %v", r.CrossingMatrix())
	}
	if r.TotalCrossings() != 2 {
		t.Fatal("TotalCrossings wrong")
	}

	// Unknown libraries are errors.
	if err := r.Call("ghost", "app", 0, func() error { return nil }); err == nil {
		t.Fatal("unknown caller accepted")
	}
	if err := r.Call("app", "ghost", 0, func() error { return nil }); err == nil {
		t.Fatal("unknown callee accepted")
	}
	if err := r.Assign("x", "ghost-comp"); err == nil {
		t.Fatal("unknown compartment accepted")
	}

	libs := r.Libraries()
	if len(libs) != 3 || libs[0] != "app" {
		t.Fatalf("Libraries = %v", libs)
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
