package gate

import (
	"strings"
	"testing"

	"flexos/internal/cheri"
	"flexos/internal/clock"
	"flexos/internal/mem"
	"flexos/internal/mpk"
)

// declaredBackends enumerates every Backend constant. A new backend
// added after CHERI is picked up automatically as long as the
// constants stay contiguous: the probe walks until String() falls
// through to the "Backend(n)" default.
func declaredBackends(t *testing.T) []Backend {
	t.Helper()
	var out []Backend
	for b := FuncCall; ; b++ {
		if strings.HasPrefix(b.String(), "Backend(") {
			break
		}
		out = append(out, b)
	}
	if len(out) < 5 {
		t.Fatalf("expected at least 5 declared backends, found %d", len(out))
	}
	return out
}

// TestParseBackendRoundTrips guards the string surface: every declared
// backend's String() must parse back to the same backend, so config
// files written by FormatConfig always load.
func TestParseBackendRoundTrips(t *testing.T) {
	for _, b := range declaredBackends(t) {
		got, err := ParseBackend(b.String())
		if err != nil {
			t.Errorf("ParseBackend(%q) failed: %v", b.String(), err)
			continue
		}
		if got != b {
			t.Errorf("ParseBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
}

// TestParseBackendTable pins the alias surface and the unknown-value
// behaviour of both directions of the string conversion.
func TestParseBackendTable(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"funccall", FuncCall, true},
		{"none", FuncCall, true},
		{"mpk-shared", MPKShared, true},
		{"mpk", MPKShared, true},
		{"erim", MPKShared, true},
		{"mpk-switched", MPKSwitched, true},
		{"hodor", MPKSwitched, true},
		{"vm-rpc", VMRPC, true},
		{"vm", VMRPC, true},
		{"ept", VMRPC, true},
		{"xen", VMRPC, true},
		{"cheri", CHERI, true},
		{"caps", CHERI, true},
		{"capabilities", CHERI, true},
		{"", 0, false},
		{"sgx", 0, false},
		{"MPK", 0, false}, // aliases are case-sensitive
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if s := Backend(99).String(); !strings.HasPrefix(s, "Backend(") {
		t.Errorf("Backend(99).String() = %q", s)
	}
}

// TestTransferPolicyPerBackend pins the copy-vs-share axis: backends
// whose compartments can reach the key-0 window pass buffers by
// reference, the rest marshal payload bytes.
func TestTransferPolicyPerBackend(t *testing.T) {
	want := map[Backend]TransferPolicy{
		FuncCall:    TransferShare,
		MPKShared:   TransferShare,
		MPKSwitched: TransferCopy,
		VMRPC:       TransferCopy,
		CHERI:       TransferShare,
	}
	for _, b := range declaredBackends(t) {
		if got := b.Transfer(); got != want[b] {
			t.Errorf("%v.Transfer() = %v, want %v", b, got, want[b])
		}
	}
}

// testGates builds one real gate per backend over a shared arena and
// clock, with the CHERI entry capabilities both test domains need.
func testGates(t *testing.T, cpu *clock.CPU, a, b *Domain) map[Backend]Gate {
	t.Helper()
	arena := mem.NewArena(16 * mem.PageSize)

	cm := cheri.New(arena, cpu)
	cg := NewCHERI(cm, cpu)
	root, err := cm.Root(mem.PageSize, mem.PageSize, cheri.PermRead|cheri.PermWrite|cheri.PermExecute)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Domain{a, b} {
		otype := cm.AllocOType()
		code, err := cm.Seal(root, otype)
		if err != nil {
			t.Fatal(err)
		}
		data, err := cm.Seal(root, otype)
		if err != nil {
			t.Fatal(err)
		}
		if err := cg.RegisterEntry(d.Name, code, data); err != nil {
			t.Fatal(err)
		}
	}

	return map[Backend]Gate{
		FuncCall:    NewFuncCall(cpu),
		MPKShared:   NewMPKShared(mpk.New(arena, cpu), cpu),
		MPKSwitched: NewMPKSwitched(mpk.New(arena, cpu), cpu),
		VMRPC:       NewVMRPC(cpu, nil),
		CHERI:       cg,
	}
}

// TestCrossingCostMatchesGateCharge keeps the explorer's static cost
// table honest: for every backend, an empty-frame Gate.Call through the
// real gate must charge exactly CrossingCost(b) — any per-word or
// fixed-cost drift between the estimator and the implementation shows
// up here.
func TestCrossingCostMatchesGateCharge(t *testing.T) {
	cpu := clock.New()
	a, b := NewDomain("a", 1), NewDomain("b", 2)
	gates := testGates(t, cpu, a, b)
	for _, backend := range declaredBackends(t) {
		g, ok := gates[backend]
		if !ok {
			t.Errorf("no gate under test for backend %v", backend)
			continue
		}
		cpu.Reset()
		if err := g.Call(a, b, CallFrame{}, func() error { return nil }); err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if got, want := cpu.Cycles(), CrossingCost(backend); got != want {
			t.Errorf("%v: empty-frame Gate.Call charged %d cycles, CrossingCost reports %d",
				backend, got, want)
		}
	}
}

// TestBatchCrossingCostMatchesGateCharge extends the consistency
// check to the batched path: for every backend, carrying N empty
// frames must charge exactly BatchCrossingCost(b, N) — one crossing
// plus N dispatches where the gate implements BatchGate, N full
// crossings where Registry.CallBatch would fall back to a loop. Drift
// between the estimator and the batch implementation (a forgotten
// dispatch charge, a double-paid crossing) shows up here.
func TestBatchCrossingCostMatchesGateCharge(t *testing.T) {
	const depth = 8
	cpu := clock.New()
	a, b := NewDomain("a", 1), NewDomain("b", 2)
	gates := testGates(t, cpu, a, b)
	frames := make([]CallFrame, depth)
	fns := make([]func() error, depth)
	ran := 0
	for i := range fns {
		fns[i] = func() error { ran++; return nil }
	}
	for _, backend := range declaredBackends(t) {
		g, ok := gates[backend]
		if !ok {
			t.Errorf("no gate under test for backend %v", backend)
			continue
		}
		cpu.Reset()
		ran = 0
		if bg, isBatch := g.(BatchGate); isBatch {
			for i, err := range bg.CallBatch(a, b, frames, fns) {
				if err != nil {
					t.Fatalf("%v: frame %d: %v", backend, i, err)
				}
			}
		} else {
			// The Registry falls back to this loop for gates without
			// native batch support.
			for _, fn := range fns {
				if err := g.Call(a, b, CallFrame{}, fn); err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
			}
		}
		if ran != depth {
			t.Errorf("%v: %d of %d frames ran", backend, ran, depth)
		}
		if got, want := cpu.Cycles(), BatchCrossingCost(backend, depth); got != want {
			t.Errorf("%v: %d-frame CallBatch charged %d cycles, BatchCrossingCost reports %d",
				backend, depth, got, want)
		}
	}
}

// TestBatchCrossingCostDegenerateCases pins the estimator's edges: a
// non-positive batch is free, and from depth 2 up — the minimum the
// config layer accepts — a batch never costs more than the same calls
// made one at a time, so the planner never ranks batching as a
// pessimization. (Depth 1 would lose the dispatch overhead on the
// amortizing backends, which is exactly why `batch <comp> 1` is
// elided back to the scalar path.)
func TestBatchCrossingCostDegenerateCases(t *testing.T) {
	for _, b := range declaredBackends(t) {
		if got := BatchCrossingCost(b, 0); got != 0 {
			t.Errorf("BatchCrossingCost(%v, 0) = %d, want 0", b, got)
		}
		if got := BatchCrossingCost(b, -3); got != 0 {
			t.Errorf("BatchCrossingCost(%v, -3) = %d, want 0", b, got)
		}
		for n := 2; n <= 64; n *= 2 {
			batched := BatchCrossingCost(b, n)
			scalar := uint64(n) * CrossingCost(b)
			if batched > scalar {
				t.Errorf("BatchCrossingCost(%v, %d) = %d exceeds %d scalar calls (%d)",
					b, n, batched, n, scalar)
			}
		}
	}
}

// TestCrossingCostCoversAllBackends guards the estimator against the
// silent `default: 0` in CrossingCost: a backend the cost table does
// not know would make the explorer rank every compartmentalization as
// free.
func TestCrossingCostCoversAllBackends(t *testing.T) {
	for _, b := range declaredBackends(t) {
		if CrossingCost(b) == 0 {
			t.Errorf("CrossingCost(%v) = 0; the cost table does not cover it", b)
		}
	}
}
