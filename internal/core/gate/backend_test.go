package gate

import (
	"strings"
	"testing"
)

// declaredBackends enumerates every Backend constant. A new backend
// added after CHERI is picked up automatically as long as the
// constants stay contiguous: the probe walks until String() falls
// through to the "Backend(n)" default.
func declaredBackends(t *testing.T) []Backend {
	t.Helper()
	var out []Backend
	for b := FuncCall; ; b++ {
		if strings.HasPrefix(b.String(), "Backend(") {
			break
		}
		out = append(out, b)
	}
	if len(out) < 5 {
		t.Fatalf("expected at least 5 declared backends, found %d", len(out))
	}
	return out
}

// TestParseBackendRoundTrips guards the string surface: every declared
// backend's String() must parse back to the same backend, so config
// files written by FormatConfig always load.
func TestParseBackendRoundTrips(t *testing.T) {
	for _, b := range declaredBackends(t) {
		got, err := ParseBackend(b.String())
		if err != nil {
			t.Errorf("ParseBackend(%q) failed: %v", b.String(), err)
			continue
		}
		if got != b {
			t.Errorf("ParseBackend(%q) = %v, want %v", b.String(), got, b)
		}
	}
}

// TestCrossingCostCoversAllBackends guards the estimator against the
// silent `default: 0` in CrossingCost: a backend the cost table does
// not know would make the explorer rank every compartmentalization as
// free.
func TestCrossingCostCoversAllBackends(t *testing.T) {
	for _, b := range declaredBackends(t) {
		if CrossingCost(b) == 0 {
			t.Errorf("CrossingCost(%v) = 0; the cost table does not cover it", b)
		}
	}
}
