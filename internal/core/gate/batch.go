package gate

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/fault"
)

// Batched gate calls: the crossing-amortization ABI.
//
// A crossing's fixed cost (WRPKRU pair, VM notification round trip) is
// the dominant term of every isolating image's overhead, and it is paid
// per call. CallBatch carries N frames through ONE crossing: the gate
// enters the callee domain once, dispatches each frame for a small
// fixed cost, and returns once. Direct calls and CHERI gain nothing
// from batching (their per-call cost is already a handful of cycles),
// so they simply do not implement BatchGate and the registry loops;
// the MPK and VM-RPC gates amortize.
//
// Isolation semantics stay per-frame: each frame runs inside its own
// trap boundary (one trapped frame aborts only that frame), deadline
// checks apply at each frame's dispatch, and the supervisor layered
// above applies admission control and breaker feedback frame by frame.

// BatchGate is implemented by gates whose crossing cost can be
// amortized over several frames. CallBatch runs fns[i] under frames[i]
// in the `to` domain, paying the domain crossing once; the returned
// slice has one entry per frame (nil for success). frames and fns must
// have equal length.
type BatchGate interface {
	Gate
	CallBatch(from, to *Domain, frames []CallFrame, fns []func() error) []error
}

// BatchCrossingCost reports the fixed cycle cost of carrying n frames
// across a backend's boundary: one crossing plus n dispatches for the
// amortizing backends, n full crossings for the rest. The static
// counterpart of CallBatch, used by the explorer and pinned against
// the real gates by the consistency test.
func BatchCrossingCost(b Backend, n int) uint64 {
	if n <= 0 {
		return 0
	}
	switch b {
	case MPKShared, MPKSwitched, VMRPC:
		return CrossingCost(b) + uint64(n)*clock.CostBatchDispatch
	default:
		// Direct calls and CHERI degenerate to a loop.
		return uint64(n) * CrossingCost(b)
	}
}

// batchFrameDeadline refuses one frame's dispatch inside an
// already-entered batch. The crossing itself is paid by then; what a
// deadline can still veto is running the frame's work, so the check is
// against the dispatch cost alone. Refusal charges the same cheap
// rejection path as a gate-entry refusal and yields the same typed
// KindDeadline trap, scoped to this frame.
func batchFrameDeadline(cpu clock.Clock, from, to *Domain, frame CallFrame) error {
	if frame.Deadline == 0 {
		return nil
	}
	now := cpu.Cycles()
	if now+clock.CostBatchDispatch <= frame.Deadline {
		return nil
	}
	cpu.Charge(clock.CompGate, clock.CostDeadlineRefuse)
	pc := from.Name + "->" + to.Name
	return fault.Classify(to.Name, pc,
		&fault.DeadlineExceeded{PC: pc, Deadline: frame.Deadline, Now: now})
}

// CallBatch carries the whole batch through one PKRU round trip. Entry
// marshals every frame's words at once (switched stacks copy the summed
// entry+payload words in one go); each frame then dispatches inside its
// own trap boundary; the return path restores the caller domain once.
func (g *mpkGate) CallBatch(from, to *Domain, frames []CallFrame, fns []func() error) []error {
	g.count++
	errs := make([]error, len(frames))
	// Frames whose descriptors the callee could not reach are refused
	// before the crossing, exactly like the single-call path; the rest
	// of the batch still crosses.
	live := make([]bool, len(frames))
	words, any := 0, false
	for i, f := range frames {
		if !g.switched {
			if err := g.checkSharedBufs(f); err != nil {
				errs[i] = fmt.Errorf("gate %s->%s: %w", from.Name, to.Name, err)
				continue
			}
		}
		live[i] = true
		any = true
		words += f.EntryWords() + f.PayloadWords()
	}
	if !any {
		return errs
	}
	pc := from.Name + "->" + to.Name
	g.clk.Charge(clock.CompGate, clock.CostRegisterClear)
	if g.switched {
		g.clk.Charge(clock.CompGate,
			clock.CostStackSwitch+uint64(words)*clock.CostParamCopyPerWord)
	}
	if err := g.unit.WritePKRU(to.PKRU); err != nil {
		trap := &fault.Trap{Comp: to.Name, Kind: fault.KindSealedPKRU, PC: pc,
			Cause: fmt.Errorf("gate %s->%s: %w", from.Name, to.Name, err)}
		for i := range frames {
			if live[i] {
				errs[i] = trap
			}
		}
		return errs
	}
	retWords := 0
	for i, fn := range fns {
		if !live[i] {
			continue
		}
		// Per-frame deadline: earlier frames' work advances the clock,
		// so a late frame in the batch can still be refused here.
		if err := batchFrameDeadline(g.clk, from, to, frames[i]); err != nil {
			errs[i] = err
			continue
		}
		g.clk.Charge(clock.CompGate, clock.CostBatchDispatch)
		// Each frame gets its own trap boundary: one trapped frame
		// aborts only itself, the rest of the batch completes.
		errs[i] = fault.Contain(to.Name, pc, fn)
		retWords += frames[i].RetWords
	}
	g.clk.Charge(clock.CompGate, clock.CostRegisterClear)
	if g.switched {
		g.clk.Charge(clock.CompGate,
			clock.CostStackSwitch+uint64(retWords)*clock.CostParamCopyPerWord)
	}
	if err := g.unit.WritePKRU(from.PKRU); err != nil {
		trap := &fault.Trap{Comp: to.Name, Kind: fault.KindSealedPKRU, PC: pc,
			Cause: fmt.Errorf("gate %s<-%s return: %w", from.Name, to.Name, err)}
		for i := range frames {
			if live[i] && errs[i] == nil {
				errs[i] = trap
			}
		}
	}
	return errs
}

// CallBatch marshals every frame's request into the shared ring under
// one notification pair: one VM exit carries N requests over, one
// carries N responses back. This is where batching pays the most —
// CostVMNotify dwarfs everything else in the RPC crossing.
func (g *rpcGate) CallBatch(from, to *Domain, frames []CallFrame, fns []func() error) []error {
	g.count++
	errs := make([]error, len(frames))
	words := 0
	for _, f := range frames {
		words += f.EntryWords() + f.PayloadWords()
	}
	g.clk.Charge(clock.CompVMM, clock.CostVMNotify+clock.CostVMRPCFixed+
		uint64(words)*clock.CostParamCopyPerWord)
	if g.notify != nil {
		g.notify(from, to)
	}
	pc := from.Name + "->" + to.Name
	retWords := 0
	for i, fn := range fns {
		if err := batchFrameDeadline(g.clk, from, to, frames[i]); err != nil {
			errs[i] = err
			continue
		}
		g.clk.Charge(clock.CompVMM, clock.CostBatchDispatch)
		errs[i] = fault.Contain(to.Name, pc, fn)
		retWords += frames[i].RetWords
	}
	g.clk.Charge(clock.CompVMM, clock.CostVMNotify+
		uint64(retWords)*clock.CostParamCopyPerWord)
	if g.notify != nil {
		g.notify(to, from)
	}
	return errs
}
