package gate

import (
	"fmt"

	"flexos/internal/cheri"
	"flexos/internal/clock"
	"flexos/internal/fault"
)

// cheriGate implements compartment crossings on a capability machine:
// each compartment publishes a sealed code/data capability pair, and a
// crossing is a CInvoke of the target's pair (plus register hygiene),
// with the return path invoking the caller's pair. There is no PKRU
// and no 16-domain limit — the heterogeneity the paper's gate
// abstraction exists to absorb.
type cheriGate struct {
	m       *cheri.Machine
	cpu     clock.Clock
	entries map[string][2]cheri.Capability // domain -> sealed {code, data}
	count   uint64
}

// NewCHERI returns a capability-backend gate over machine m.
// Compartments must register their sealed entry pairs before crossing.
func NewCHERI(m *cheri.Machine, cpu clock.Clock) *CHERIGate {
	return &CHERIGate{cheriGate{m: m, cpu: cpu, entries: make(map[string][2]cheri.Capability)}}
}

// CHERIGate is the exported capability gate (it needs a registration
// method beyond the Gate interface).
type CHERIGate struct{ cheriGate }

var _ Gate = (*CHERIGate)(nil)

// RegisterEntry publishes a domain's sealed code/data pair.
func (g *CHERIGate) RegisterEntry(domain string, code, data cheri.Capability) error {
	if !code.Sealed() || !data.Sealed() {
		return fmt.Errorf("gate: entry pair for %q must be sealed", domain)
	}
	g.entries[domain] = [2]cheri.Capability{code, data}
	return nil
}

// Backend implements Gate.
func (g *CHERIGate) Backend() Backend { return CHERI }

// Crossings implements Gate.
func (g *CHERIGate) Crossings() uint64 { return g.count }

// Call implements Gate: CInvoke into the target domain, run fn,
// CInvoke back. Payload buffers cross by reference — the callee
// receives (bounded) capabilities for them, so only the descriptor
// words are marshalled.
func (g *CHERIGate) Call(from, to *Domain, frame CallFrame, fn func() error) error {
	g.count++
	if err := deadlineCheck(g.cpu, CHERI, from, to, frame); err != nil {
		return err
	}
	g.cpu.Charge(clock.CompGate, clock.CostRegisterClear+
		uint64(frame.EntryWords())*clock.CostParamCopyPerWord)
	pc := from.Name + "->" + to.Name
	pair, ok := g.entries[to.Name]
	if !ok {
		return fmt.Errorf("gate: no sealed entry pair for domain %q", to.Name)
	}
	if _, _, err := g.m.Invoke(pair[0], pair[1]); err != nil {
		return fault.Classify(to.Name, pc, fmt.Errorf("gate %s->%s: %w", from.Name, to.Name, err))
	}
	// The callee runs behind a trap boundary: capability bounds/tag
	// violations (and injected corruption) in the target compartment
	// come back as typed fault.Trap errors, and the return CInvoke
	// below still reinstalls the caller's domain.
	callErr := fault.Contain(to.Name, pc, fn)
	g.cpu.Charge(clock.CompGate, clock.CostRegisterClear)
	ret, ok := g.entries[from.Name]
	if !ok {
		return fmt.Errorf("gate: no sealed entry pair for caller domain %q", from.Name)
	}
	if _, _, err := g.m.Invoke(ret[0], ret[1]); err != nil {
		return fault.Classify(to.Name, pc, fmt.Errorf("gate %s<-%s return: %w", from.Name, to.Name, err))
	}
	return callErr
}
