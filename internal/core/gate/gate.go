// Package gate implements FlexOS's call gates.
//
// Compartments are separated by gates, made up of the API each
// compartment exposes. In the ported source, every cross-micro-library
// call site is a placeholder (uk_gate_r(rc, listen, sockfd, 5)); at
// link time the builder replaces each placeholder with either a direct
// function call (both libraries in the same compartment) or the
// crossing code of the configured isolation backend:
//
//   - FuncCall: plain call, no protection-domain switch.
//   - MPKShared: ERIM-like. Heap/static memory are isolated per key,
//     stacks live in a domain shared by all compartments; crossing is
//     two WRPKRUs plus register hygiene.
//   - MPKSwitched: Hodor-like. Heap, static and stacks are all
//     isolated; crossing additionally switches to the target domain's
//     per-thread stack and copies parameters across.
//   - VMRPC: Xen-like. Each compartment is its own VM; crossing is an
//     RPC over inter-VM notifications with arguments marshalled
//     through a shared window.
//   - CHERI: capability machine. Each compartment publishes a sealed
//     code/data capability pair; a crossing is a CInvoke, with no PKRU
//     and no 16-domain limit (see cheri.go).
//
// Gates charge their cost to the calling machine's virtual CPU and,
// for the MPK backends, actually rewrite the simulated PKRU so that
// out-of-compartment accesses fault inside the callee.
package gate

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/mpk"
)

// Backend identifies an isolation mechanism for compartment crossings.
type Backend int

// Supported isolation backends.
const (
	FuncCall Backend = iota
	MPKShared
	MPKSwitched
	VMRPC
	CHERI
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case FuncCall:
		return "funccall"
	case MPKShared:
		return "mpk-shared"
	case MPKSwitched:
		return "mpk-switched"
	case VMRPC:
		return "vm-rpc"
	case CHERI:
		return "cheri"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// TransferPolicy says how a backend moves payload buffers across a
// crossing. Share-policy backends pass BufRef descriptors by reference
// (the callee reads the payload in place through the key-0 shared
// window); copy-policy backends have no shared mapping to lean on and
// must marshal payload bytes through the crossing.
type TransferPolicy int

const (
	// TransferShare passes buffers by reference: only the descriptor
	// words cross the boundary.
	TransferShare TransferPolicy = iota
	// TransferCopy marshals payload bytes across the boundary; the
	// gate charges per payload word.
	TransferCopy
)

// String implements fmt.Stringer.
func (p TransferPolicy) String() string {
	switch p {
	case TransferShare:
		return "share"
	case TransferCopy:
		return "copy"
	default:
		return fmt.Sprintf("TransferPolicy(%d)", int(p))
	}
}

// Transfer reports the backend's buffer transfer policy. Direct calls,
// MPK-shared and CHERI leave payloads in place (the callee can reach
// the shared window); MPK-switched moves to a private stack and copies
// parameters, and VM RPC has no shared address space at all, so both
// retain copy semantics.
func (b Backend) Transfer() TransferPolicy {
	switch b {
	case MPKSwitched, VMRPC:
		return TransferCopy
	default:
		return TransferShare
	}
}

// ParseBackend converts a config string to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "funccall", "none":
		return FuncCall, nil
	case "mpk-shared", "mpk", "erim":
		return MPKShared, nil
	case "mpk-switched", "hodor":
		return MPKSwitched, nil
	case "vm-rpc", "vm", "ept", "xen":
		return VMRPC, nil
	case "cheri", "caps", "capabilities":
		return CHERI, nil
	default:
		return 0, fmt.Errorf("gate: unknown backend %q", s)
	}
}

// Domain is one protection domain (one compartment's hardware view).
type Domain struct {
	// Name is the compartment name (for diagnostics).
	Name string
	// Keys are the protection keys owned by the compartment.
	Keys []mem.Key
	// PKRU is the register value installed while the compartment runs.
	PKRU mpk.PKRU
}

// NewDomain builds a domain owning the given keys; its PKRU allows
// those keys plus the shared key 0.
func NewDomain(name string, keys ...mem.Key) *Domain {
	return &Domain{Name: name, Keys: keys, PKRU: mpk.DomainPKRU(keys...)}
}

// CallFrame describes what crosses the boundary on one gate call: the
// scalar argument words, the scalar return words, and any payload
// buffers attached as shared-window descriptors. On share-policy
// backends only the descriptor words (BufRefWords each) are charged;
// on copy-policy backends the gate additionally charges the payload
// bytes, rounded up to words — that asymmetry is the copy-vs-share
// axis the DataPath knob explores.
type CallFrame struct {
	ArgWords int
	RetWords int
	Bufs     []mem.BufRef
	// Deadline is an absolute virtual-clock deadline (in cycles; 0
	// means none). Isolating gates refuse entry with a KindDeadline
	// trap when the crossing's fixed cost can no longer fit before the
	// deadline; nested calls inherit the caller's deadline through the
	// runtime (rt.Env stamps it from the current thread), so the
	// budget is naturally decremented by every crossing and every
	// cycle of callee work charged to the shared clock. The direct
	// (funccall) gate ignores deadlines, exactly as it has no trap
	// boundary: an uncompartmentalized image has no enforcement point.
	Deadline uint64
}

// deadlineCheck refuses a crossing whose fixed cost cannot complete
// within the frame's deadline, returning a KindDeadline trap via
// fault.Classify. Gates call it on entry, before charging any
// crossing cost: refusing late work must stay far cheaper than doing
// it.
func deadlineCheck(clk clock.Clock, b Backend, from, to *Domain, frame CallFrame) error {
	if frame.Deadline == 0 {
		return nil
	}
	now := clk.Cycles()
	if now+CrossingCost(b) <= frame.Deadline {
		return nil
	}
	clk.Charge(clock.CompGate, clock.CostDeadlineRefuse)
	pc := from.Name + "->" + to.Name
	return fault.Classify(to.Name, pc,
		&fault.DeadlineExceeded{PC: pc, Deadline: frame.Deadline, Now: now})
}

// EntryWords is the number of scalar words marshalled on entry: the
// arguments plus one descriptor (address + length/capacity word) per
// attached buffer.
func (f CallFrame) EntryWords() int {
	return f.ArgWords + mem.BufRefWords*len(f.Bufs)
}

// PayloadWords is the payload size of the attached buffers in 8-byte
// words; copy-policy gates charge these on top of the entry words.
func (f CallFrame) PayloadWords() int {
	w := 0
	for _, b := range f.Bufs {
		w += (b.Len + 7) / 8
	}
	return w
}

// Gate is one crossing mechanism between two domains.
type Gate interface {
	// Backend reports which mechanism this gate implements.
	Backend() Backend
	// Call runs fn in the context of the `to` domain. The frame
	// describes the argument and return words crossing the boundary
	// and any payload buffers attached by descriptor. The error is
	// fn's error; gate-internal failures (PKRU sealing violations,
	// descriptors outside the shared window) are also reported.
	Call(from, to *Domain, frame CallFrame, fn func() error) error
	// Crossings reports how many domain crossings the gate performed
	// (a call and its return are one crossing pair, counted once).
	Crossings() uint64
}

// funcGate is the direct-call gate used within a compartment.
type funcGate struct {
	clk   clock.Clock
	count uint64
}

// NewFuncCall returns the direct-call gate.
func NewFuncCall(clk clock.Clock) Gate { return &funcGate{clk: clk} }

func (g *funcGate) Backend() Backend { return FuncCall }
func (g *funcGate) Crossings() uint64 {
	return g.count
}

func (g *funcGate) Call(from, to *Domain, frame CallFrame, fn func() error) error {
	g.count++
	g.clk.Charge(clock.CompGate, clock.CostCall)
	// Deliberately no trap boundary: a direct call offers no
	// protection-domain switch, so a fault raised in the callee unwinds
	// the whole image — the blast-radius contrast with isolating gates.
	return fn()
}

// mpkGate implements both MPK variants.
type mpkGate struct {
	unit     *mpk.Unit
	clk      clock.Clock
	switched bool
	count    uint64
}

// NewMPKShared returns the ERIM-like shared-stack gate.
func NewMPKShared(u *mpk.Unit, clk clock.Clock) Gate {
	return &mpkGate{unit: u, clk: clk}
}

// NewMPKSwitched returns the Hodor-like switched-stack gate.
func NewMPKSwitched(u *mpk.Unit, clk clock.Clock) Gate {
	return &mpkGate{unit: u, clk: clk, switched: true}
}

func (g *mpkGate) Backend() Backend {
	if g.switched {
		return MPKSwitched
	}
	return MPKShared
}

func (g *mpkGate) Crossings() uint64 { return g.count }

// checkSharedBufs verifies that every descriptor in the frame points
// into key-0 pages: a by-reference buffer the callee cannot map would
// fault on first touch, so the gate rejects it up front.
func (g *mpkGate) checkSharedBufs(frame CallFrame) error {
	arena := g.unit.Arena()
	for _, b := range frame.Bufs {
		if !b.Valid() || !arena.CheckKey(b.Addr, max(b.Len, 1), mem.KeyShared) {
			return fmt.Errorf("buffer %#x+%d outside the shared window", uint64(b.Addr), b.Len)
		}
	}
	return nil
}

func (g *mpkGate) Call(from, to *Domain, frame CallFrame, fn func() error) error {
	g.count++
	if err := deadlineCheck(g.clk, g.Backend(), from, to, frame); err != nil {
		return err
	}
	if !g.switched {
		// By-reference transfer: descriptors must land in the shared
		// window or the callee's loads would fault.
		if err := g.checkSharedBufs(frame); err != nil {
			return fmt.Errorf("gate %s->%s: %w", from.Name, to.Name, err)
		}
	}
	// Entry: clear caller-saved registers, switch PKRU, optionally
	// switch stacks and copy parameters (and, with copy transfer
	// semantics, payload bytes) across.
	g.clk.Charge(clock.CompGate, clock.CostRegisterClear)
	if g.switched {
		words := frame.EntryWords() + frame.PayloadWords()
		g.clk.Charge(clock.CompGate,
			clock.CostStackSwitch+uint64(words)*clock.CostParamCopyPerWord)
	}
	pc := from.Name + "->" + to.Name
	if err := g.unit.WritePKRU(to.PKRU); err != nil {
		// A sealed-WRPKRU rejection is a protection fault in its own
		// right: attempted entry with an unregistered register value.
		return &fault.Trap{Comp: to.Name, Kind: fault.KindSealedPKRU, PC: pc,
			Cause: fmt.Errorf("gate %s->%s: %w", from.Name, to.Name, err)}
	}
	// The callee runs inside a trap boundary: protection faults raised
	// in its domain (pkey faults, ASAN violations, injected corruption)
	// come back as typed fault.Trap errors, and the return path below
	// still restores the caller's PKRU.
	callErr := fault.Contain(to.Name, pc, fn)
	// Return path: restore caller domain (and stack), copying the
	// declared return words back.
	g.clk.Charge(clock.CompGate, clock.CostRegisterClear)
	if g.switched {
		g.clk.Charge(clock.CompGate,
			clock.CostStackSwitch+uint64(frame.RetWords)*clock.CostParamCopyPerWord)
	}
	if err := g.unit.WritePKRU(from.PKRU); err != nil {
		return &fault.Trap{Comp: to.Name, Kind: fault.KindSealedPKRU, PC: pc,
			Cause: fmt.Errorf("gate %s<-%s return: %w", from.Name, to.Name, err)}
	}
	return callErr
}

// rpcGate is the VM/EPT backend: the crossing is an RPC over an
// inter-VM notification, with arguments marshalled through the shared
// window. Compartments do not share an address space; isolation is
// enforced by construction (the callee VM simply has no mapping of the
// caller's private memory), so no PKRU is involved.
type rpcGate struct {
	clk   clock.Clock
	count uint64
	// notify, when non-nil, is invoked for each crossing so the vmm
	// substrate can deliver the event on the peer's event channel.
	notify func(from, to *Domain)
	// busyUntil is the cycle at which the callee VM's single vCPU and
	// the hypervisor event channel finish the previous RPC. Each
	// compartment-VM serves RPCs serially, so a second caller vCPU
	// arriving earlier stalls until then — the structural reason VM-RPC
	// does not scale with SMP callers where MPK gates do. On a
	// single-vCPU machine the caller's clock is already past busyUntil
	// when the next call starts, so the stall is always zero.
	busyUntil uint64
	stalled   uint64
}

// NewVMRPC returns the VM-based RPC gate. notify may be nil.
func NewVMRPC(clk clock.Clock, notify func(from, to *Domain)) Gate {
	return &rpcGate{clk: clk, notify: notify}
}

func (g *rpcGate) Backend() Backend  { return VMRPC }
func (g *rpcGate) Crossings() uint64 { return g.count }

func (g *rpcGate) Call(from, to *Domain, frame CallFrame, fn func() error) error {
	g.count++
	if err := deadlineCheck(g.clk, VMRPC, from, to, frame); err != nil {
		return err
	}
	// Request: marshal descriptor + args — and, since the VMs share no
	// address space, the payload bytes themselves — into the shared
	// ring, notify the callee VM, callee is scheduled.
	if now := g.clk.Cycles(); g.busyUntil > now {
		// The callee VM is still serving another vCPU's RPC: stall.
		g.stalled += g.busyUntil - now
		g.clk.Charge(clock.CompVMM, g.busyUntil-now)
	}
	words := frame.EntryWords() + frame.PayloadWords()
	g.clk.Charge(clock.CompVMM, clock.CostVMNotify+clock.CostVMRPCFixed+
		uint64(words)*clock.CostParamCopyPerWord)
	if g.notify != nil {
		g.notify(from, to)
	}
	// The callee VM's work runs inside a trap boundary: a protection
	// fault in the callee costs that VM, not the caller — the caller
	// sees a typed error on its response ring.
	callErr := fault.Contain(to.Name, from.Name+"->"+to.Name, fn)
	// Response: notification back to the caller VM, return words
	// marshalled through the ring.
	g.clk.Charge(clock.CompVMM, clock.CostVMNotify+
		uint64(frame.RetWords)*clock.CostParamCopyPerWord)
	if g.notify != nil {
		g.notify(to, from)
	}
	g.busyUntil = g.clk.Cycles()
	return callErr
}

// Stalled reports the cycles callers spent waiting for the callee VM
// to finish earlier RPCs (always zero on a single-vCPU machine).
func (g *rpcGate) Stalled() uint64 { return g.stalled }

// CrossingCost reports the fixed cycle cost of one call+return through
// a backend's gate (excluding per-argument copies). The explorer uses
// it to rank configurations without running them.
func CrossingCost(b Backend) uint64 {
	switch b {
	case FuncCall:
		return clock.CostCall
	case MPKShared:
		return 2*clock.CostWRPKRU + 2*clock.CostRegisterClear
	case MPKSwitched:
		return 2*clock.CostWRPKRU + 2*clock.CostRegisterClear + 2*clock.CostStackSwitch
	case VMRPC:
		return 2*clock.CostVMNotify + clock.CostVMRPCFixed
	case CHERI:
		return 2*clock.CostCInvoke + 2*clock.CostRegisterClear
	default:
		return 0
	}
}
