package rt

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/mem"
)

func supPool(t *testing.T) *mem.SharedPool {
	t.Helper()
	a := mem.NewArena(1 << 20)
	h, err := mem.NewHeap(a, 4096, 1<<20-4096, mem.KeyShared)
	if err != nil {
		t.Fatal(err)
	}
	return mem.NewSharedPool(h)
}

func nwTrap() *fault.Trap {
	return &fault.Trap{Comp: "nw", Kind: fault.KindMPK, PC: "netstack:recv", Addr: 0x5000}
}

func TestSuperviseCleanCall(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	calls := 0
	if err := s.Supervise("nw", func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if st := s.Stats(); st != (SupervisorStats{}) {
		t.Fatalf("clean call touched stats: %+v", st)
	}
}

func TestSuperviseAbortByDefault(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	tr := nwTrap()
	calls := 0
	err := s.Supervise("nw", func() error { calls++; return tr })
	if got, ok := fault.As(err); !ok || got != tr {
		t.Fatalf("err = %v, want the trap propagated", err)
	}
	if calls != 1 {
		t.Fatalf("abort policy replayed the call: %d", calls)
	}
	st := s.Stats()
	if st.Traps != 1 || st.Aborts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSuperviseRestartRecovers(t *testing.T) {
	pool := supPool(t)
	cpu := clock.New()
	s := NewSupervisor(cpu, pool)
	s.SetPolicy("nw", fault.PolicyRestart)
	attempt := 0
	err := s.Supervise("nw", func() error {
		attempt++
		if attempt == 1 {
			// The trapped attempt strands two in-flight buffers, as a
			// crashed compartment would.
			for i := 0; i < 2; i++ {
				if _, err := pool.Get(256); err != nil {
					t.Fatal(err)
				}
			}
			return nwTrap()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restart did not recover: %v", err)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2", attempt)
	}
	st := s.Stats()
	if st.Traps != 1 || st.Retries != 1 || st.Recoveries != 1 || st.Aborts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ReclaimedBufs != 2 {
		t.Fatalf("ReclaimedBufs = %d, want 2", st.ReclaimedBufs)
	}
	if pool.Outstanding() != 0 {
		t.Fatalf("pool leaked %d buffers after recovery", pool.Outstanding())
	}
	if st.RecoveryCycles == 0 {
		t.Fatal("recovery charged no virtual time")
	}
}

func TestSuperviseRestartPreservesPreCallBuffers(t *testing.T) {
	pool := supPool(t)
	s := NewSupervisor(clock.New(), pool)
	s.SetPolicy("nw", fault.PolicyRestart)
	// A buffer allocated before the supervised call — e.g. protocol
	// state owned by the caller — must survive the teardown.
	pre, err := pool.Get(256)
	if err != nil {
		t.Fatal(err)
	}
	attempt := 0
	err = s.Supervise("nw", func() error {
		attempt++
		if attempt == 1 {
			return nwTrap()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Owns(pre.Addr) {
		t.Fatal("teardown reclaimed a pre-call buffer")
	}
}

func TestSuperviseRestartExhaustion(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyRestart)
	calls := 0
	err := s.Supervise("nw", func() error { calls++; return nwTrap() })
	if _, ok := fault.As(err); !ok {
		t.Fatalf("exhausted restart returned %v, want trap", err)
	}
	if calls != 1+maxRestartAttempts {
		t.Fatalf("calls = %d, want %d", calls, 1+maxRestartAttempts)
	}
	st := s.Stats()
	if st.Retries != maxRestartAttempts || st.Recoveries != 0 || st.Aborts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSuperviseDegradeFailsFast(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyDegrade)
	calls := 0
	err := s.Supervise("nw", func() error { calls++; return nwTrap() })
	var de *fault.DegradedError
	if !errors.As(err, &de) || de.Comp != "nw" {
		t.Fatalf("err = %v, want DegradedError", err)
	}
	if _, down := s.Degraded("nw"); !down {
		t.Fatal("compartment not marked degraded")
	}
	// Later calls fail fast without crossing into the compartment.
	err = s.Supervise("nw", func() error { calls++; return nil })
	if !errors.As(err, &de) {
		t.Fatalf("second call = %v, want DegradedError", err)
	}
	if calls != 1 {
		t.Fatalf("degraded compartment was entered: calls = %d", calls)
	}
	if st := s.Stats(); st.Degrades != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSuperviseForeignTrapPassesThrough(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyRestart)
	// A trap attributed to a deeper compartment was already handled by
	// the nested Supervise closer to the fault: it must pass through
	// without a restart here.
	deep := &fault.Trap{Comp: "lc", Kind: fault.KindASAN}
	calls := 0
	err := s.Supervise("nw", func() error { calls++; return deep })
	if got, ok := fault.As(err); !ok || got != deep {
		t.Fatalf("err = %v, want foreign trap unchanged", err)
	}
	if calls != 1 || s.Stats().Traps != 0 {
		t.Fatalf("foreign trap triggered policy: calls=%d stats=%+v", calls, s.Stats())
	}
}

func TestSupervisePlainErrorPassesThrough(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyRestart)
	plain := errors.New("connection reset")
	err := s.Supervise("nw", func() error { return plain })
	if err != plain {
		t.Fatalf("err = %v, want plain error unchanged", err)
	}
}

func TestTeardownResetsDrainedHeapOnly(t *testing.T) {
	a := mem.NewArena(1 << 20)
	drained, err := mem.NewHeap(a, 4096, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	live, err := mem.NewHeap(a, 4096+64<<10, 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fragment the drained heap, then free everything: it is eligible
	// for a pristine reset. The live heap keeps an allocation — protocol
	// state surviving callers still reference — and must be left alone.
	p1, _ := drained.Alloc(256)
	p2, _ := drained.Alloc(256)
	if err := drained.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := drained.Free(p2); err != nil {
		t.Fatal(err)
	}
	keep, _ := live.Alloc(256)

	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyRestart)
	s.RegisterHeap("nw", drained)
	s.RegisterHeap("nw", live)
	attempt := 0
	err = s.Supervise("nw", func() error {
		attempt++
		if attempt == 1 {
			return nwTrap()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if drained.FreeSpans() != 1 {
		t.Fatalf("drained heap not reset: %d spans", drained.FreeSpans())
	}
	if live.Stats().LiveBytes == 0 || live.SizeOf(keep) == 0 {
		t.Fatal("restart reset a heap with live allocations")
	}
}

func TestSupervisorTracerSeesLifecycle(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetPolicy("nw", fault.PolicyRestart)
	var kinds []string
	s.SetTracer(func(kind, comp, note string) {
		if comp == "nw" {
			kinds = append(kinds, kind)
		}
	})
	attempt := 0
	_ = s.Supervise("nw", func() error {
		attempt++
		if attempt == 1 {
			return nwTrap()
		}
		return nil
	})
	want := []string{"fault", "recover"}
	if len(kinds) != len(want) || kinds[0] != want[0] || kinds[1] != want[1] {
		t.Fatalf("tracer events = %v, want %v", kinds, want)
	}
}
