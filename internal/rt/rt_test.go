package rt

import (
	"testing"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
)

func newEnv(t *testing.T, local bool, split bool) (*Env, *gate.Registry, *clock.CPU) {
	t.Helper()
	cpu := clock.New()
	arena := mem.NewArena(2 << 20)
	heap, err := mem.NewHeap(arena, mem.PageSize, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := gate.NewRegistry(gate.NewFuncCall(cpu), gate.NewFuncCall(cpu))
	reg.AddCompartment(gate.NewDomain("c0"))
	reg.AddCompartment(gate.NewDomain("c1"))
	allocComp := "c0"
	if split {
		allocComp = "c1"
	}
	if err := reg.Assign("netstack", "c0"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Assign("alloc", allocComp); err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Lib: "netstack", Comp: clock.CompNet, CPU: cpu,
		Gates: reg, Arena: arena, Alloc: heap, AllocLocal: local,
	}
	return env, reg, cpu
}

func TestChargeAttributesToComponent(t *testing.T) {
	env, _, cpu := newEnv(t, true, false)
	env.Charge(123)
	if cpu.Component(clock.CompNet) != 123 {
		t.Fatalf("charge = %d", cpu.Component(clock.CompNet))
	}
}

func TestLocalAllocSkipsGate(t *testing.T) {
	env, reg, cpu := newEnv(t, true, true)
	p, err := env.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Free(p); err != nil {
		t.Fatal(err)
	}
	if reg.TotalCrossings() != 0 {
		t.Fatal("local allocator crossed a gate")
	}
	want := uint64(clock.CostMalloc + clock.CostFree)
	if got := cpu.Component(clock.CompAlloc); got != want {
		t.Fatalf("alloc charge = %d, want %d", got, want)
	}
}

func TestGlobalAllocRoutesThroughGate(t *testing.T) {
	env, reg, _ := newEnv(t, false, true)
	p, err := env.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := reg.Crossings("c0", "c1"); got != 2 {
		t.Fatalf("crossings = %d, want 2 (malloc + free)", got)
	}
}

func TestCallRoutesFromOwnLib(t *testing.T) {
	env, reg, _ := newEnv(t, true, true)
	called := false
	if err := env.Call("alloc", 1, func() error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !called || reg.Crossings("c0", "c1") != 1 {
		t.Fatal("call not routed across compartments")
	}
}

func TestBytesBoundsChecked(t *testing.T) {
	env, _, _ := newEnv(t, true, false)
	if _, err := env.Bytes(0, 8); err == nil {
		t.Fatal("zero page readable")
	}
	p, err := env.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Bytes(p, 16)
	if err != nil || len(b) != 16 {
		t.Fatalf("Bytes = %v, %v", len(b), err)
	}
}
