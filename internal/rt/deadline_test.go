package rt

import (
	"testing"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// deadlineEnv builds an env whose netstack->alloc crossings go through
// a VM-RPC gate (deadline-enforcing) while a thread accessor supplies
// the deadline that route() stamps onto every frame.
func deadlineEnv(t *testing.T) (*Env, *sched.Thread, *clock.CPU) {
	t.Helper()
	cpu := clock.New()
	arena := mem.NewArena(2 << 20)
	heap, err := mem.NewHeap(arena, mem.PageSize, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := gate.NewRegistry(gate.NewFuncCall(cpu), gate.NewVMRPC(cpu, nil))
	reg.AddCompartment(gate.NewDomain("c0"))
	reg.AddCompartment(gate.NewDomain("c1"))
	if err := reg.Assign("netstack", "c0"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Assign("alloc", "c1"); err != nil {
		t.Fatal(err)
	}
	th := &sched.Thread{Name: "req"}
	env := &Env{
		Lib: "netstack", Comp: clock.CompNet, CPU: cpu,
		Gates: reg, Arena: arena, Alloc: heap,
		Cur: func() *sched.Thread { return th },
	}
	return env, th, cpu
}

func TestWithDeadlineTightestWins(t *testing.T) {
	env, th, _ := deadlineEnv(t)
	err := env.WithDeadline(th, 100, func() error {
		if th.Deadline != 100 {
			t.Fatalf("outer deadline = %d", th.Deadline)
		}
		// A looser nested deadline must not widen the budget.
		env.WithDeadline(th, 500, func() error {
			if th.Deadline != 100 {
				t.Errorf("loose nested deadline widened budget to %d", th.Deadline)
			}
			return nil
		})
		// A tighter one narrows it, and is restored after.
		env.WithDeadline(th, 50, func() error {
			if th.Deadline != 50 {
				t.Errorf("tight nested deadline = %d", th.Deadline)
			}
			return nil
		})
		if th.Deadline != 100 {
			t.Errorf("deadline after nested scope = %d, want 100", th.Deadline)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if th.Deadline != 0 {
		t.Fatalf("deadline after outer scope = %d, want 0", th.Deadline)
	}
}

func TestWithDeadlineRestoresOnPanic(t *testing.T) {
	env, th, _ := deadlineEnv(t)
	func() {
		defer func() { recover() }()
		env.WithDeadline(th, 100, func() error { panic("unwind") })
	}()
	if th.Deadline != 0 {
		t.Fatalf("deadline after panic unwind = %d, want 0", th.Deadline)
	}
}

func TestBudgetRefusesExpensiveCrossing(t *testing.T) {
	env, th, cpu := deadlineEnv(t)

	// A budget smaller than the VM-RPC crossing cost: the gate refuses
	// entry with a KindDeadline trap before charging the crossing —
	// refusing late work must stay far cheaper than doing it.
	ran := false
	before := cpu.Cycles()
	err := env.WithBudget(th, 10, func() error {
		return env.CallFn("alloc", "malloc", 1, func() error { ran = true; return nil })
	})
	tr, ok := fault.As(err)
	if !ok || tr.Kind != fault.KindDeadline {
		t.Fatalf("err = %v, want KindDeadline trap", err)
	}
	if ran {
		t.Fatal("refused crossing still ran the callee")
	}
	if got := cpu.Cycles() - before; got != clock.CostDeadlineRefuse {
		t.Fatalf("refusal charged %d cycles, want CostDeadlineRefuse (%d)",
			got, clock.CostDeadlineRefuse)
	}

	// An ample budget admits the same crossing.
	ran = false
	if err := env.WithBudget(th, 1_000_000, func() error {
		return env.CallFn("alloc", "malloc", 1, func() error { ran = true; return nil })
	}); err != nil || !ran {
		t.Fatalf("ample budget: err = %v, ran = %v", err, ran)
	}
}

func TestDeadlinePropagatesToNestedCrossings(t *testing.T) {
	env, th, cpu := deadlineEnv(t)

	// The budget is wide enough for the first crossing; the callee then
	// burns it all, so a nested crossing issued from inside inherits
	// the same absolute deadline and is refused.
	var nestedErr error
	nested := false
	err := env.WithBudget(th, 200_000, func() error {
		return env.CallFn("alloc", "malloc", 1, func() error {
			cpu.Charge(clock.CompAlloc, 300_000)
			nestedErr = env.CallFn("alloc", "free", 1, func() error { nested = true; return nil })
			return nil
		})
	})
	if err != nil {
		t.Fatalf("outer call: %v", err)
	}
	if nested {
		t.Fatal("nested crossing admitted past the exhausted budget")
	}
	if tr, ok := fault.As(nestedErr); !ok || tr.Kind != fault.KindDeadline {
		t.Fatalf("nested err = %v, want KindDeadline trap", nestedErr)
	}
}

func TestDirectGateIgnoresDeadline(t *testing.T) {
	// The funccall gate has no enforcement point, exactly as it has no
	// trap boundary: an uncompartmentalized image cannot shed.
	env, th, _ := deadlineEnv(t)
	ran := false
	// netstack->netstack stays on the direct gate.
	if err := env.WithBudget(th, 1, func() error {
		return env.CallFn("netstack", "input", 1, func() error { ran = true; return nil })
	}); err != nil || !ran {
		t.Fatalf("direct gate: err = %v, ran = %v", err, ran)
	}
}
