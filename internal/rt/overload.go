package rt

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/sched"
)

// Overload control: bounded admission queues and circuit breakers in
// front of isolating gates.
//
// The fault machinery in supervisor.go contains *memory* damage; this
// file contains *load* damage. A compartment behind an expensive gate
// (VM-RPC, MPK-switched) is a queueing system: when offered load
// exceeds its service rate, every queued call still pays the full
// crossing and service cost, so goodput collapses past saturation.
// The supervisor therefore rejects excess load before the gate — a
// shed costs ~100 cycles where a wasted VM-RPC crossing costs
// thousands — and, when a compartment keeps failing, opens a circuit
// breaker that fails calls fast until a half-open probe proves the
// compartment serves again.

// OverloadSpec configures one compartment's admission queue
// (configfile directive "overload <comp> <depth> <policy>").
type OverloadSpec struct {
	// Depth bounds calls resident in the compartment (in-flight,
	// including callers parked inside it). 0 means unbounded, which is
	// only meaningful with ShedPolicyDeadline: admission then sheds on
	// budget expiry alone.
	Depth int
	// Policy says what happens to a call that cannot be admitted.
	Policy fault.ShedPolicy
}

// BreakerSpec configures one compartment's circuit breaker
// (configfile directive "breaker <comp> <threshold> <window> <cooldown>").
type BreakerSpec struct {
	// Threshold is the failure count (sheds + traps) within one window
	// that opens the breaker.
	Threshold int
	// Window is the tumbling call-count window over which failures are
	// counted.
	Window int
	// Cooldown is how many virtual cycles the breaker stays open
	// before a half-open probe is admitted.
	Cooldown uint64
}

// Circuit breaker states. Closed admits everything; open fails
// everything fast; half-open admits exactly one probe whose outcome
// decides between them.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

type breakerState struct {
	state    int
	calls    int    // calls observed in the current tumbling window
	fails    int    // failures (sheds + traps) in the current window
	openedAt uint64 // virtual cycle of the last open transition
	probing  bool   // a half-open probe is in flight
}

// SetOverload configures comp's admission queue. A zero-depth spec
// with a non-deadline policy disables admission control for comp.
func (s *Supervisor) SetOverload(comp string, spec OverloadSpec) {
	if spec.Depth <= 0 && spec.Policy != fault.ShedPolicyDeadline {
		delete(s.overload, comp)
		return
	}
	s.overload[comp] = spec
}

// Overload reports comp's admission spec, if configured.
func (s *Supervisor) Overload(comp string) (OverloadSpec, bool) {
	spec, ok := s.overload[comp]
	return spec, ok
}

// SetBreaker configures comp's circuit breaker. A zero threshold
// removes it.
func (s *Supervisor) SetBreaker(comp string, spec BreakerSpec) {
	if spec.Threshold <= 0 {
		delete(s.breakers, comp)
		delete(s.brk, comp)
		return
	}
	s.breakers[comp] = spec
}

// Breaker reports comp's breaker spec, if configured.
func (s *Supervisor) Breaker(comp string) (BreakerSpec, bool) {
	spec, ok := s.breakers[comp]
	return spec, ok
}

// BreakerState reports comp's breaker state as "closed", "open" or
// "half-open" ("" when no breaker is configured).
func (s *Supervisor) BreakerState(comp string) string {
	if _, ok := s.breakers[comp]; !ok {
		return ""
	}
	b := s.brk[comp]
	if b == nil {
		return "closed"
	}
	switch b.state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// SetThreadSource wires the scheduler's current-thread accessor, which
// the block admission policy needs to park callers.
func (s *Supervisor) SetThreadSource(fn func() *sched.Thread) { s.curThread = fn }

// SetOnShed installs an observer invoked (synchronously, before the
// ShedError returns) for every shed. The callback must not block; a
// panic inside it is converted to a typed KindSched trap rather than
// unwinding the caller's thread.
func (s *Supervisor) SetOnShed(fn func(comp string)) { s.onShed = fn }

// InFlight reports how many calls are currently resident in comp.
func (s *Supervisor) InFlight(comp string) int { return s.inFlight[comp] }

// admit applies comp's circuit breaker and admission policy to one
// crossing carrying the given absolute deadline (0 = none). On
// success it returns the release function the caller must defer; on
// rejection it returns the typed error to propagate.
func (s *Supervisor) admit(toComp string, deadline uint64) (func(), error) {
	if err := s.breakerAdmit(toComp); err != nil {
		return nil, err
	}
	spec, hasSpec := s.overload[toComp]
	if hasSpec {
		switch spec.Policy {
		case fault.ShedPolicyShed:
			if spec.Depth > 0 && s.inFlight[toComp] >= spec.Depth {
				return nil, s.shed(toComp, spec.Depth)
			}
		case fault.ShedPolicyBlock:
			for spec.Depth > 0 && s.inFlight[toComp] >= spec.Depth {
				t := s.current()
				if t == nil {
					// No thread context to park (tests driving the
					// supervisor directly): admit rather than wedge.
					break
				}
				s.stats.Blocked++
				s.trace("overload", toComp, "waiting for admission slot")
				s.waitq(toComp).Wait(t)
			}
		case fault.ShedPolicyDeadline:
			if deadline != 0 && s.cpu.Cycles() >= deadline {
				return nil, s.shed(toComp, 0)
			}
			if spec.Depth > 0 && s.inFlight[toComp] >= spec.Depth {
				return nil, s.shed(toComp, spec.Depth)
			}
		}
		s.inFlight[toComp]++
	}
	return func() {
		// Runs unconditionally (deferred by SuperviseCall): the slot
		// frees and a block-policy waiter wakes even when the call
		// panicked past the trap boundary — otherwise a simulator bug
		// would masquerade as an admission deadlock, the same shape the
		// scheduler kill path guards against.
		if hasSpec {
			s.inFlight[toComp]--
			if q := s.admitQ[toComp]; q != nil {
				q.Signal()
			}
		}
		// A half-open probe that never reported an outcome (the call
		// unwound without reaching breaker feedback) releases its probe
		// slot so the breaker cannot wedge half-open forever.
		if b := s.brk[toComp]; b != nil && b.state == brHalfOpen {
			b.probing = false
		}
	}, nil
}

func (s *Supervisor) current() *sched.Thread {
	if s.curThread == nil {
		return nil
	}
	return s.curThread()
}

func (s *Supervisor) waitq(comp string) *sched.WaitQueue {
	q := s.admitQ[comp]
	if q == nil {
		q = new(sched.WaitQueue)
		s.admitQ[comp] = q
	}
	return q
}

// shed rejects one call before the gate: cheap by construction.
// depth 0 marks a deadline-expiry shed rather than a full queue.
func (s *Supervisor) shed(toComp string, depth int) error {
	s.stats.Sheds++
	s.cpu.Charge(clock.CompFault, clock.CostOverloadShed)
	if depth > 0 {
		s.trace("shed", toComp, fmt.Sprintf("admission queue full (depth %d)", depth))
	} else {
		s.trace("shed", toComp, "frame deadline already expired")
	}
	s.breakerFail(toComp)
	if s.onShed != nil {
		if err := s.runOnShed(toComp); err != nil {
			return err
		}
	}
	return &fault.ShedError{Comp: toComp, Depth: depth}
}

// runOnShed invokes the shed observer behind a recover: a panicking
// callback surfaces as a typed trap delivered to the caller instead of
// unwinding the thread (where it would read as a crash or, worse,
// strand admission waiters in a fake deadlock).
func (s *Supervisor) runOnShed(comp string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*fault.Trap); ok {
				if t.Comp == "" {
					t.Comp = comp
				}
				err = t
				return
			}
			err = &fault.Trap{Comp: comp, Kind: fault.KindSched,
				PC: "supervisor/on-shed", Cause: fmt.Errorf("shed callback panic: %v", r)}
		}
	}()
	s.onShed(comp)
	return nil
}

// breakerAdmit gates one crossing on comp's breaker state.
func (s *Supervisor) breakerAdmit(toComp string) error {
	spec, ok := s.breakers[toComp]
	if !ok {
		return nil
	}
	b := s.brk[toComp]
	if b == nil {
		b = &breakerState{}
		s.brk[toComp] = b
	}
	if b.state == brOpen && s.cpu.Cycles() >= b.openedAt+spec.Cooldown {
		// Cooldown elapsed: transition to half-open and let exactly one
		// probe through.
		b.state = brHalfOpen
		b.probing = false
	}
	switch b.state {
	case brClosed:
		return nil
	case brHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	// Open, or half-open with the probe slot taken: fail fast, cheaper
	// even than a shed — one state load, one branch.
	s.stats.BreakerFastFails++
	s.cpu.Charge(clock.CompFault, clock.CostBreakerFastFail)
	return &fault.BreakerOpenError{Comp: toComp}
}

// breakerOK records a successful crossing into comp. A half-open
// probe's success closes the breaker.
func (s *Supervisor) breakerOK(toComp string) {
	spec, ok := s.breakers[toComp]
	if !ok {
		return
	}
	b := s.brk[toComp]
	if b == nil {
		return
	}
	switch b.state {
	case brHalfOpen:
		b.state = brClosed
		b.probing = false
		b.calls, b.fails = 0, 0
		s.stats.BreakerCloses++
		s.trace("breaker-close", toComp, "half-open probe succeeded")
	case brClosed:
		s.windowTick(b, spec)
	}
}

// breakerFail records one failure (shed or trap) against comp. A
// half-open probe's failure re-opens for another cooldown; enough
// failures in a closed window open the breaker.
func (s *Supervisor) breakerFail(toComp string) {
	spec, ok := s.breakers[toComp]
	if !ok {
		return
	}
	b := s.brk[toComp]
	if b == nil {
		b = &breakerState{}
		s.brk[toComp] = b
	}
	switch b.state {
	case brHalfOpen:
		b.state = brOpen
		b.openedAt = s.cpu.Cycles()
		b.probing = false
		s.stats.BreakerOpens++
		s.trace("breaker-open", toComp, "half-open probe failed")
	case brClosed:
		b.fails++
		if b.fails >= spec.Threshold {
			b.state = brOpen
			b.openedAt = s.cpu.Cycles()
			b.calls, b.fails = 0, 0
			s.stats.BreakerOpens++
			s.trace("breaker-open", toComp,
				fmt.Sprintf("%d failures within window of %d calls", spec.Threshold, spec.Window))
			return
		}
		s.windowTick(b, spec)
	}
}

// windowTick advances comp's tumbling failure-counting window.
func (s *Supervisor) windowTick(b *breakerState, spec BreakerSpec) {
	b.calls++
	if spec.Window > 0 && b.calls >= spec.Window {
		b.calls, b.fails = 0, 0
	}
}
