// Package rt defines the per-library runtime environment of a FlexOS
// image.
//
// When the builder instantiates an image it hands every micro-library
// an Env carrying the library's identity, the machine's virtual CPU,
// the gate registry (through which every cross-library call is
// routed), the library's memory allocator (global or per-compartment)
// and its software-hardening surface. OS components are written
// against Env only, which is what makes the same component code run
// under any compartmentalization — the FlexOS porting model.
package rt

import (
	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/sched"
	"flexos/internal/sh"
)

// Env is one library's view of the image it was linked into.
type Env struct {
	// Lib is the library name used in gate routing (e.g. "netstack").
	Lib string
	// Comp is the cycle-attribution component for this library.
	Comp clock.Component
	// CPU is the machine's virtual processor.
	CPU clock.Clock
	// Gates routes cross-library calls.
	Gates *gate.Registry
	// Arena is the machine's physical memory.
	Arena *mem.Arena
	// Alloc is the allocator backing this library's compartment.
	Alloc mem.Allocator
	// Shared is the machine's shared-window allocator (key 0, mapped
	// in every compartment at the same address). Data annotated as
	// shared during porting — buffers passed across micro-library
	// boundaries — is allocated here.
	Shared mem.Allocator
	// AllocLocal marks the allocator as linked into this library's own
	// compartment (per-compartment or per-library ukalloc instance):
	// allocation calls are then direct, with no gate crossing. A
	// global allocator is reached through the "alloc" library's gate.
	AllocLocal bool
	// Pool is the machine's shared-window buffer pool, backing the
	// zero-copy data path. Nil when the image was built without one
	// (tests building envs by hand); callers fall back to Malloc paths.
	Pool *mem.SharedPool
	// Hard is the library's hardening surface (nil-safe).
	Hard *sh.Hardener
	// Sup, when non-nil, applies per-compartment fault policy to every
	// routed call: traps raised by the callee compartment are handled
	// (abort/restart/degrade) before the error reaches this library.
	Sup *Supervisor
	// Cur, when non-nil, reports the scheduler's currently-running
	// thread. Routed calls inherit that thread's Deadline onto their
	// gate frame, which is how a budget set at the top of a request
	// (WithBudget) propagates through nested cross-compartment calls.
	Cur func() *sched.Thread
	// Batching maps compartment name -> configured batch depth (the
	// `batch <comp> <depth>` configfile directive): calls crossing into
	// that compartment may be vectored up to depth frames per crossing.
	// Absent entries (and any image without the directive) mean depth 1,
	// i.e. no batching.
	Batching map[string]int
}

// Charge attributes cycles to this library.
func (e *Env) Charge(cycles uint64) { e.CPU.Charge(e.Comp, cycles) }

// Call routes a call from this library to a function in lib `to`,
// through the gate the builder instantiated for the pair.
func (e *Env) Call(to string, argWords int, fn func() error) error {
	return e.route(to, "", gate.CallFrame{ArgWords: argWords, RetWords: 1}, fn)
}

// CallFn is Call with the callee function named, so that dynamic
// metadata generation can record the call edge.
func (e *Env) CallFn(to, fnName string, argWords int, fn func() error) error {
	return e.route(to, fnName, gate.CallFrame{ArgWords: argWords, RetWords: 1}, fn)
}

// CallFrame routes a call carrying a full gate frame — argument and
// return word counts plus payload buffers attached by descriptor.
func (e *Env) CallFrame(to, fnName string, frame gate.CallFrame, fn func() error) error {
	return e.route(to, fnName, frame, fn)
}

// route dispatches through the gate registry, under the machine's
// fault supervisor when one is attached: the supervisor applies the
// callee compartment's admission policy before the gate and its fault
// policy to any trap the call raises. The frame inherits the current
// thread's deadline, so nested calls stay under the original budget.
func (e *Env) route(to, fnName string, frame gate.CallFrame, fn func() error) error {
	if frame.Deadline == 0 {
		frame.Deadline = e.currentDeadline()
	}
	if e.Sup == nil {
		return e.Gates.CallWithFrame(e.Lib, to, fnName, frame, fn)
	}
	toComp, _ := e.Gates.CompartmentOf(to)
	fromComp, _ := e.Gates.CompartmentOf(e.Lib)
	return e.Sup.SuperviseCall(toComp, frame.Deadline, fromComp != toComp, func() error {
		return e.Gates.CallWithFrame(e.Lib, to, fnName, frame, fn)
	})
}

// BatchDepth reports how many frames a call from this library into lib
// `to` may carry per crossing: the `batch` directive's depth for the
// callee's compartment, 1 (no batching) when unconfigured. Callers use
// it to size their vectored operations, so an image built without the
// directive runs the exact unbatched code path.
func (e *Env) BatchDepth(to string) int {
	if len(e.Batching) == 0 {
		return 1
	}
	comp, ok := e.Gates.CompartmentOf(to)
	if !ok {
		return 1
	}
	if d := e.Batching[comp]; d > 1 {
		return d
	}
	return 1
}

// BatchCall is one frame of a vectored gate call: the gate frame and
// the function it dispatches to in the callee.
type BatchCall struct {
	Frame gate.CallFrame
	Fn    func() error
}

// CallBatch routes N calls to functions in lib `to` through one
// crossing where the backend amortizes (MPK, VM-RPC; direct and CHERI
// loop). Supervision — admission, breakers, fault policy — applies per
// frame: the returned slice has one entry per call, and a shed, broken
// or trapped frame fails alone while the rest of the batch completes.
func (e *Env) CallBatch(to, fnName string, calls []BatchCall) []error {
	frames := make([]gate.CallFrame, len(calls))
	fns := make([]func() error, len(calls))
	deadlines := make([]uint64, len(calls))
	for i, c := range calls {
		if c.Frame.Deadline == 0 {
			c.Frame.Deadline = e.currentDeadline()
		}
		frames[i], fns[i], deadlines[i] = c.Frame, c.Fn, c.Frame.Deadline
	}
	if e.Sup == nil {
		return e.Gates.CallBatch(e.Lib, to, fnName, frames, fns)
	}
	toComp, _ := e.Gates.CompartmentOf(to)
	fromComp, _ := e.Gates.CompartmentOf(e.Lib)
	return e.Sup.SuperviseBatch(toComp, deadlines, fromComp != toComp,
		func(admitted []int) []error {
			if len(admitted) == len(frames) {
				return e.Gates.CallBatch(e.Lib, to, fnName, frames, fns)
			}
			subFrames := make([]gate.CallFrame, len(admitted))
			subFns := make([]func() error, len(admitted))
			for j, i := range admitted {
				subFrames[j], subFns[j] = frames[i], fns[i]
			}
			return e.Gates.CallBatch(e.Lib, to, fnName, subFrames, subFns)
		},
		func(i int) error {
			return e.Gates.CallWithFrame(e.Lib, to, fnName, frames[i], fns[i])
		})
}

// currentDeadline reports the running thread's deadline (0 if no
// thread accessor is wired or no deadline is set).
func (e *Env) currentDeadline() uint64 {
	if e.Cur == nil {
		return 0
	}
	if t := e.Cur(); t != nil {
		return t.Deadline
	}
	return 0
}

// WithBudget runs fn with thread t's deadline tightened to at most
// budget cycles from now. Every gate call fn issues (directly or
// nested) carries the resulting absolute deadline; isolating gates
// refuse crossings past it with a KindDeadline trap.
func (e *Env) WithBudget(t *sched.Thread, budget uint64, fn func() error) error {
	return e.WithDeadline(t, e.CPU.Cycles()+budget, fn)
}

// WithDeadline runs fn with thread t's absolute deadline set; the
// tightest of the new and any enclosing deadline wins, and the
// previous deadline is restored on return (including panic unwind).
// A nil thread runs fn without a deadline.
func (e *Env) WithDeadline(t *sched.Thread, deadline uint64, fn func() error) error {
	if t == nil {
		return fn()
	}
	prev := t.Deadline
	if prev != 0 && prev < deadline {
		deadline = prev
	}
	t.Deadline = deadline
	defer func() { t.Deadline = prev }()
	return fn()
}

// SharesBufs reports whether buffers attached to a call from this
// library to lib `to` reach the callee by reference (same compartment,
// or a share-policy backend). When false, callers should stay on the
// scalar ABI: attaching buffers to a copy-policy gate charges the full
// payload at the crossing.
func (e *Env) SharesBufs(to string) bool {
	return e.Gates.SharesByReference(e.Lib, to)
}

// Malloc allocates n bytes. With a local allocator the call is direct;
// with a global allocator it routes through the "alloc" library's gate
// (which may cross a compartment boundary).
func (e *Env) Malloc(n int) (mem.Addr, error) {
	if e.AllocLocal {
		e.CPU.Charge(clock.CompAlloc, clock.CostMalloc)
		return e.Alloc.Alloc(n)
	}
	var addr mem.Addr
	err := e.CallFn("alloc", "malloc", 1, func() error {
		e.CPU.Charge(clock.CompAlloc, clock.CostMalloc)
		var err error
		addr, err = e.Alloc.Alloc(n)
		return err
	})
	return addr, err
}

// Free releases an allocation (see Malloc for routing).
func (e *Env) Free(addr mem.Addr) error {
	if e.AllocLocal {
		e.CPU.Charge(clock.CompAlloc, clock.CostFree)
		return e.Alloc.Free(addr)
	}
	return e.CallFn("alloc", "free", 1, func() error {
		e.CPU.Charge(clock.CompAlloc, clock.CostFree)
		return e.Alloc.Free(addr)
	})
}

// MallocShared allocates from the shared window: memory every
// compartment can reach, used for data the porting process annotates
// as shared. The window is mapped locally everywhere, so no gate is
// crossed.
func (e *Env) MallocShared(n int) (mem.Addr, error) {
	if e.Shared == nil {
		return e.Malloc(n)
	}
	e.CPU.Charge(clock.CompAlloc, clock.CostMalloc)
	return e.Shared.Alloc(n)
}

// FreeShared releases a shared-window allocation.
func (e *Env) FreeShared(addr mem.Addr) error {
	if e.Shared == nil {
		return e.Free(addr)
	}
	e.CPU.Charge(clock.CompAlloc, clock.CostFree)
	return e.Shared.Free(addr)
}

// PoolGet allocates a ref-counted buffer from the shared pool, charged
// like MallocShared (the pool lives in the shared window, so no gate is
// crossed). Used for buffers whose descriptors travel across library
// boundaries: app recv/send buffers and the like.
func (e *Env) PoolGet(n int) (mem.BufRef, error) {
	e.CPU.Charge(clock.CompAlloc, clock.CostMalloc)
	return e.Pool.Get(n)
}

// PoolRelease drops this library's reference on a PoolGet buffer,
// charged like FreeShared. The slab recycles once the last reference
// (including any pins) is gone.
func (e *Env) PoolRelease(b mem.BufRef) error {
	e.CPU.Charge(clock.CompAlloc, clock.CostFree)
	_, err := e.Pool.Release(b)
	return err
}

// PoolGetOwned allocates a pool buffer charged exactly like Malloc
// would have been: through the "alloc" gate when the allocator is
// global, plus the ASAN malloc surcharge when this library's heap is
// instrumented. It exists so the netstack can move its rx/tx buffers
// from the private heap into the shared pool without shifting a single
// cycle of allocation cost between configurations.
func (e *Env) PoolGetOwned(n int) (mem.BufRef, error) {
	alloc := func() (mem.BufRef, error) {
		e.CPU.Charge(clock.CompAlloc, clock.CostMalloc)
		if _, ok := e.Alloc.(*sh.Allocator); ok {
			e.CPU.Charge(clock.CompSH, clock.CostASANMallocExtra)
		}
		return e.Pool.Get(n)
	}
	if e.AllocLocal {
		return alloc()
	}
	var b mem.BufRef
	err := e.CallFn("alloc", "malloc", 1, func() error {
		var err error
		b, err = alloc()
		return err
	})
	return b, err
}

// PoolReleaseOwned releases a PoolGetOwned buffer with Free's charging
// (alloc-gate routing and ASAN free surcharge included).
func (e *Env) PoolReleaseOwned(b mem.BufRef) error {
	release := func() error {
		e.CPU.Charge(clock.CompAlloc, clock.CostFree)
		if _, ok := e.Alloc.(*sh.Allocator); ok {
			e.CPU.Charge(clock.CompSH, clock.CostASANFreeExtra)
		}
		_, err := e.Pool.Release(b)
		return err
	}
	if e.AllocLocal {
		return release()
	}
	return e.CallFn("alloc", "free", 1, release)
}

// Bytes returns the raw backing bytes of an arena range. Access
// checking against the hardening profile is the caller's duty (use
// Hard.OnAccess); MPK-level checks happen in the gates/mpk layer.
func (e *Env) Bytes(addr mem.Addr, n int) ([]byte, error) {
	return e.Arena.Bytes(addr, n)
}
