package rt

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/fault"
)

// TestBatchShedRejectsOnlyExcessFrames pins the batch x admission
// interplay: a 4-frame batch into a depth-2 shed queue admits exactly
// two frames, and each rejected frame carries its own typed ShedError
// and pays its own CostOverloadShed — exactly as if the four frames
// had been four separate calls.
func TestBatchShedRejectsOnlyExcessFrames(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetOverload("nw", OverloadSpec{Depth: 2, Policy: fault.ShedPolicyShed})

	var sawAdmitted []int
	before := cpu.Component(clock.CompFault)
	errs := s.SuperviseBatch("nw", make([]uint64, 4), true,
		func(admitted []int) []error {
			sawAdmitted = append([]int(nil), admitted...)
			return make([]error, len(admitted))
		},
		func(i int) error { t.Fatalf("retry(%d) called on clean batch", i); return nil })

	if len(sawAdmitted) != 2 || sawAdmitted[0] != 0 || sawAdmitted[1] != 1 {
		t.Fatalf("admitted frames = %v, want [0 1]", sawAdmitted)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("admitted frames errored: %v, %v", errs[0], errs[1])
	}
	for _, i := range []int{2, 3} {
		var se *fault.ShedError
		if !errors.As(errs[i], &se) || se.Comp != "nw" || se.Depth != 2 {
			t.Fatalf("frame %d: err = %v, want ShedError{nw, 2}", i, errs[i])
		}
	}
	if got := cpu.Component(clock.CompFault) - before; got != 2*clock.CostOverloadShed {
		t.Fatalf("shed frames charged %d cycles, want 2*CostOverloadShed (%d)",
			got, 2*clock.CostOverloadShed)
	}
	if st := s.Stats(); st.Sheds != 2 {
		t.Fatalf("Sheds = %d, want 2", st.Sheds)
	}
	if got := s.InFlight("nw"); got != 0 {
		t.Fatalf("InFlight after batch = %d, want 0", got)
	}
}

// TestBatchBreakerOpenFailsEveryFrameFast pins the batch x breaker
// interplay: against an open breaker no frame crosses — the batch
// closure never runs — and each frame fails with its own typed
// BreakerOpenError at the per-call fast-fail cost.
func TestBatchBreakerOpenFailsEveryFrameFast(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetBreaker("nw", BreakerSpec{Threshold: 1, Window: 4, Cooldown: 1 << 40})

	// One trapped call opens the threshold-1 breaker.
	trap := &fault.Trap{Comp: "nw", Kind: fault.KindMPK, PC: "core->nw"}
	if err := s.Supervise("nw", func() error { return trap }); err == nil {
		t.Fatal("trapped call returned nil")
	}
	if got := s.BreakerState("nw"); got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}

	before := cpu.Component(clock.CompFault)
	errs := s.SuperviseBatch("nw", make([]uint64, 3), true,
		func(admitted []int) []error {
			t.Fatalf("batch crossed an open breaker (admitted %v)", admitted)
			return nil
		},
		func(i int) error { t.Fatalf("retry(%d) called", i); return nil })

	for i, err := range errs {
		var be *fault.BreakerOpenError
		if !errors.As(err, &be) || be.Comp != "nw" {
			t.Fatalf("frame %d: err = %v, want BreakerOpenError{nw}", i, err)
		}
	}
	if got := cpu.Component(clock.CompFault) - before; got != 3*clock.CostBreakerFastFail {
		t.Fatalf("fast-fails charged %d cycles, want 3*CostBreakerFastFail (%d)",
			got, 3*clock.CostBreakerFastFail)
	}
	if st := s.Stats(); st.BreakerFastFails != 3 {
		t.Fatalf("BreakerFastFails = %d, want 3", st.BreakerFastFails)
	}
}

// TestBatchTrapContainsToOneFrame pins per-frame containment under the
// default abort policy: one trapped frame inside a batch propagates its
// own trap while its neighbours settle clean.
func TestBatchTrapContainsToOneFrame(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)

	trap := &fault.Trap{Comp: "nw", Kind: fault.KindMPK, PC: "core->nw"}
	errs := s.SuperviseBatch("nw", make([]uint64, 3), true,
		func(admitted []int) []error {
			if len(admitted) != 3 {
				t.Fatalf("admitted = %v, want all 3 frames", admitted)
			}
			return []error{nil, trap, nil}
		},
		func(i int) error { t.Fatalf("retry(%d) called under abort policy", i); return nil })

	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("clean frames errored: %v, %v", errs[0], errs[2])
	}
	if tr, ok := fault.As(errs[1]); !ok || tr != trap {
		t.Fatalf("trapped frame: err = %v, want the injected trap", errs[1])
	}
	if st := s.Stats(); st.Traps != 1 || st.Aborts != 1 {
		t.Fatalf("Traps/Aborts = %d/%d, want 1/1", st.Traps, st.Aborts)
	}
}

// TestBatchRestartRetriesOneFrameSolo pins the restart policy inside a
// batch: only the trapped frame is replayed — solo, through retry —
// and a clean replay counts as a recovery without disturbing the other
// frames' results.
func TestBatchRestartRetriesOneFrameSolo(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetPolicy("nw", fault.PolicyRestart)

	trap := &fault.Trap{Comp: "nw", Kind: fault.KindMPK, PC: "core->nw"}
	var retried []int
	errs := s.SuperviseBatch("nw", make([]uint64, 3), true,
		func(admitted []int) []error { return []error{nil, trap, nil} },
		func(i int) error { retried = append(retried, i); return nil })

	if len(retried) != 1 || retried[0] != 1 {
		t.Fatalf("retried frames = %v, want [1]", retried)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("frame %d: err = %v after recovery, want nil", i, err)
		}
	}
	if st := s.Stats(); st.Traps != 1 || st.Retries != 1 || st.Recoveries != 1 {
		t.Fatalf("Traps/Retries/Recoveries = %d/%d/%d, want 1/1/1",
			st.Traps, st.Retries, st.Recoveries)
	}
}

// TestBatchDeadlineExpiryShedsOneFrame pins the batch x deadline-policy
// interplay: an already-expired frame deadline sheds that frame before
// the crossing while its live and undeadlined neighbours still cross.
func TestBatchDeadlineExpiryShedsOneFrame(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetOverload("nw", OverloadSpec{Depth: 0, Policy: fault.ShedPolicyDeadline})
	cpu.Charge(clock.CompApp, 100)

	var sawAdmitted []int
	errs := s.SuperviseBatch("nw", []uint64{0, 50, 10_000}, true,
		func(admitted []int) []error {
			sawAdmitted = append([]int(nil), admitted...)
			return make([]error, len(admitted))
		},
		func(i int) error { t.Fatalf("retry(%d) called", i); return nil })

	if len(sawAdmitted) != 2 || sawAdmitted[0] != 0 || sawAdmitted[1] != 2 {
		t.Fatalf("admitted frames = %v, want [0 2]", sawAdmitted)
	}
	var se *fault.ShedError
	if !errors.As(errs[1], &se) || se.Depth != 0 {
		t.Fatalf("expired frame: err = %v, want deadline ShedError", errs[1])
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("live frames errored: %v, %v", errs[0], errs[2])
	}
}

// TestBatchDegradedFailsWholeBatch pins the cheapest rejection of all:
// a degraded compartment fails every frame with its DegradedError
// before admission, breakers, or the gate see the batch.
func TestBatchDegradedFailsWholeBatch(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetPolicy("nw", fault.PolicyDegrade)

	trap := &fault.Trap{Comp: "nw", Kind: fault.KindMPK, PC: "core->nw"}
	if err := s.Supervise("nw", func() error { return trap }); err == nil {
		t.Fatal("degrading call returned nil")
	}
	if _, down := s.Degraded("nw"); !down {
		t.Fatal("compartment not degraded")
	}

	errs := s.SuperviseBatch("nw", make([]uint64, 2), true,
		func(admitted []int) []error {
			t.Fatalf("batch crossed into a degraded compartment (admitted %v)", admitted)
			return nil
		},
		func(i int) error { t.Fatalf("retry(%d) called", i); return nil })
	for i, err := range errs {
		var de *fault.DegradedError
		if !errors.As(err, &de) || de.Comp != "nw" {
			t.Fatalf("frame %d: err = %v, want DegradedError{nw}", i, err)
		}
	}
}
