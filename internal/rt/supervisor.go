package rt

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// maxRestartAttempts bounds the supervisor's replay loop: a compartment
// that keeps trapping after this many restarts is aborted.
const maxRestartAttempts = 3

// SupervisorStats counts fault-containment activity on one machine.
type SupervisorStats struct {
	// Traps is how many typed traps reached the supervisor.
	Traps uint64
	// Recoveries is how many trapped calls completed after a restart.
	Recoveries uint64
	// Retries is how many replay attempts were made in total.
	Retries uint64
	// Aborts is how many traps were propagated to the caller.
	Aborts uint64
	// Degrades is how many compartments were taken out of service.
	Degrades uint64
	// ReclaimedBufs / ReclaimedRefs count pool buffers and references
	// force-released by restart teardown.
	ReclaimedBufs uint64
	ReclaimedRefs uint64
	// RecoveryCycles is the virtual time spent in teardown and backoff.
	RecoveryCycles uint64

	// Sheds is how many calls the admission queues rejected before any
	// gate crossing (overload.go).
	Sheds uint64
	// Blocked is how many times a caller parked waiting for an
	// admission slot under the block policy.
	Blocked uint64
	// DeadlineTraps is how many KindDeadline traps (gate refused a
	// crossing past its budget) reached the supervisor.
	DeadlineTraps uint64
	// BreakerFastFails is how many calls an open circuit breaker
	// failed without crossing.
	BreakerFastFails uint64
	// BreakerOpens / BreakerCloses count breaker state transitions.
	BreakerOpens  uint64
	BreakerCloses uint64
}

// Supervisor drives per-compartment fault policy on one machine. Every
// Env routes its gate calls through Supervise; when a call comes back
// with a fault.Trap raised by the callee compartment, the supervisor
// applies the compartment's configured policy: propagate (abort), tear
// down and replay (restart), or fail the compartment fast from then on
// (degrade). Teardown reuses the shared pool's leak accounting — the
// trapped call's in-flight buffers are force-released against a
// pre-call mark — and resets the compartment's drained private heaps.
type Supervisor struct {
	cpu      clock.Clock
	pool     *mem.SharedPool
	policies map[string]fault.Policy
	heaps    map[string][]*mem.Heap
	degraded map[string]*fault.Trap
	stats    SupervisorStats
	tracer   func(kind, comp, note string)

	// Overload-control state (overload.go): per-compartment admission
	// queues and circuit breakers in front of the gates.
	overload  map[string]OverloadSpec
	inFlight  map[string]int
	admitQ    map[string]*sched.WaitQueue
	breakers  map[string]BreakerSpec
	brk       map[string]*breakerState
	curThread func() *sched.Thread
	onShed    func(comp string)
}

// NewSupervisor creates a supervisor charging recovery work to cpu.
// pool may be nil (poolless images skip buffer teardown).
func NewSupervisor(cpu clock.Clock, pool *mem.SharedPool) *Supervisor {
	return &Supervisor{
		cpu:      cpu,
		pool:     pool,
		policies: make(map[string]fault.Policy),
		heaps:    make(map[string][]*mem.Heap),
		degraded: make(map[string]*fault.Trap),
		overload: make(map[string]OverloadSpec),
		inFlight: make(map[string]int),
		admitQ:   make(map[string]*sched.WaitQueue),
		breakers: make(map[string]BreakerSpec),
		brk:      make(map[string]*breakerState),
	}
}

// SetPolicy configures a compartment's reaction to its own traps.
func (s *Supervisor) SetPolicy(comp string, p fault.Policy) { s.policies[comp] = p }

// Policy reports a compartment's policy (PolicyAbort by default).
func (s *Supervisor) Policy(comp string) fault.Policy { return s.policies[comp] }

// RegisterHeap records a private heap owned exclusively by comp, a
// restart-teardown target.
func (s *Supervisor) RegisterHeap(comp string, h *mem.Heap) {
	s.heaps[comp] = append(s.heaps[comp], h)
}

// SetTracer installs a callback for fault lifecycle events; kinds are
// "fault", "recover", "degrade" and the overload-control kinds
// "overload", "shed", "deadline", "breaker-open" and "breaker-close"
// (nil disables).
func (s *Supervisor) SetTracer(fn func(kind, comp, note string)) { s.tracer = fn }

// Degraded reports whether comp was taken out of service, and the trap
// that did it.
func (s *Supervisor) Degraded(comp string) (*fault.Trap, bool) {
	t, ok := s.degraded[comp]
	return t, ok
}

// Stats returns a copy of the containment counters.
func (s *Supervisor) Stats() SupervisorStats { return s.stats }

func (s *Supervisor) trace(kind, comp, note string) {
	if s.tracer != nil {
		s.tracer(kind, comp, note)
	}
}

func (s *Supervisor) mark() mem.PoolMark {
	if s.pool == nil {
		return 0
	}
	return s.pool.Mark()
}

// Supervise runs one gate call into compartment toComp and applies
// toComp's fault policy to any trap the callee raised. Traps from
// deeper compartments (already handled by a nested Supervise closer to
// the fault) pass through untouched.
func (s *Supervisor) Supervise(toComp string, call func() error) error {
	return s.SuperviseCall(toComp, 0, true, call)
}

// SuperviseCall is Supervise with the routed frame's deadline and the
// crossing flag made explicit. Admission queues and circuit breakers
// sit in front of *isolating* gates, so intra-compartment calls
// (crossing=false) skip them — a compartment cannot shed calls from
// itself — while the fault-policy machinery still applies.
func (s *Supervisor) SuperviseCall(toComp string, deadline uint64, crossing bool, call func() error) error {
	if t, down := s.degraded[toComp]; down {
		return &fault.DegradedError{Comp: toComp, Cause: t}
	}
	if crossing {
		release, err := s.admit(toComp, deadline)
		if err != nil {
			return err
		}
		// The slot must free (and block-policy waiters wake) even if
		// the supervised call panics past the trap boundary — a leaked
		// slot would turn a simulator bug into a fake deadlock.
		defer release()
	}
	mark := s.mark()
	return s.settle(toComp, crossing, mark, call(), call)
}

// settle classifies one supervised call's outcome and applies toComp's
// fault policy: breaker feedback on success, the cheap rejection path
// for deadline misses, and the abort/restart/degrade machinery for
// traps. retry replays the call for the restart policy; mark bounds
// what teardown may reclaim. SuperviseCall settles every call through
// here, and SuperviseBatch settles each frame of a batch — which is
// what makes containment per-frame: one trapped frame reaches its own
// settle with its own retry, the rest of the batch settles clean.
func (s *Supervisor) settle(toComp string, crossing bool, mark mem.PoolMark, err error, retry func() error) error {
	t, ok := fault.As(err)
	if !ok || t.Comp != toComp {
		if crossing {
			s.breakerOK(toComp)
		}
		return err
	}
	if t.Kind == fault.KindDeadline {
		// A deadline miss is a load fault, not a memory fault: the gate
		// refused entry before the crossing, so there is nothing to tear
		// down — and nothing a replay could fix, since an absolute
		// deadline only recedes. Charge the cheap rejection path, feed
		// the breaker, propagate.
		s.stats.DeadlineTraps++
		s.cpu.Charge(clock.CompFault, clock.CostOverloadShed)
		s.trace("deadline", toComp, t.Error())
		if crossing {
			s.breakerFail(toComp)
		}
		return t
	}
	s.stats.Traps++
	s.cpu.Charge(clock.CompFault, clock.CostFaultTrap)
	s.trace("fault", toComp, t.Error())
	if crossing {
		s.breakerFail(toComp)
	}
	switch s.Policy(toComp) {
	case fault.PolicyRestart:
		for attempt := 1; attempt <= maxRestartAttempts; attempt++ {
			start := s.cpu.Cycles()
			s.teardown(toComp, mark)
			// Bounded exponential backoff before the replay.
			s.cpu.Charge(clock.CompFault, clock.CostFaultBackoff<<(attempt-1))
			s.stats.RecoveryCycles += s.cpu.Cycles() - start
			s.stats.Retries++
			s.trace("recover", toComp, fmt.Sprintf("restart attempt %d after %v", attempt, t.Kind))
			mark = s.mark()
			err = retry()
			if t2, again := fault.As(err); again && t2.Comp == toComp {
				if crossing {
					s.breakerFail(toComp)
				}
				if t2.Kind == fault.KindDeadline {
					// The replay ran out of budget: stop retrying.
					s.stats.DeadlineTraps++
					s.cpu.Charge(clock.CompFault, clock.CostOverloadShed)
					s.trace("deadline", toComp, t2.Error())
					return t2
				}
				s.stats.Traps++
				s.cpu.Charge(clock.CompFault, clock.CostFaultTrap)
				s.trace("fault", toComp, t2.Error())
				t = t2
				continue
			}
			s.stats.Recoveries++
			if crossing {
				s.breakerOK(toComp)
			}
			return err
		}
		s.stats.Aborts++
		return t
	case fault.PolicyDegrade:
		s.teardown(toComp, mark)
		s.degraded[toComp] = t
		s.stats.Degrades++
		s.trace("degrade", toComp, t.Kind.String())
		return &fault.DegradedError{Comp: toComp, Cause: t}
	default: // PolicyAbort
		s.stats.Aborts++
		return t
	}
}

// SuperviseBatch applies the supervisor's whole surface — degradation,
// admission queues, circuit breakers, fault policy — *per frame* around
// one batched gate crossing into toComp. deadlines carries one entry
// per frame (0 = none); runBatch receives the indices of the admitted
// frames and must return one error per admitted frame, in order; retry
// replays a single frame solo (the restart policy re-crosses for just
// that frame). The returned slice has one entry per original frame:
// frames the admission queue or breaker rejected carry their typed
// ShedError/BreakerOpenError (charged per-frame, exactly as if each had
// been a separate call), and every admitted frame's outcome is settled
// individually, so one trapped frame aborts or restarts alone.
func (s *Supervisor) SuperviseBatch(toComp string, deadlines []uint64, crossing bool,
	runBatch func(admitted []int) []error, retry func(i int) error) []error {
	errs := make([]error, len(deadlines))
	if t, down := s.degraded[toComp]; down {
		for i := range errs {
			errs[i] = &fault.DegradedError{Comp: toComp, Cause: t}
		}
		return errs
	}
	admitted := make([]int, 0, len(deadlines))
	var releases []func()
	if crossing {
		for i, dl := range deadlines {
			release, err := s.admit(toComp, dl)
			if err != nil {
				errs[i] = err
				continue
			}
			releases = append(releases, release)
			admitted = append(admitted, i)
		}
	} else {
		for i := range deadlines {
			admitted = append(admitted, i)
		}
	}
	// Slots release (and block-policy waiters wake) even if a frame
	// panics past its trap boundary, for the same reason SuperviseCall
	// defers its release.
	defer func() {
		for _, release := range releases {
			release()
		}
	}()
	if len(admitted) == 0 {
		return errs
	}
	batchErrs := runBatch(admitted)
	for j, i := range admitted {
		var err error
		if j < len(batchErrs) {
			err = batchErrs[j]
		}
		frame := i
		// Each frame settles against a mark taken now, after the batch
		// ran: teardown of one trapped frame must never reclaim buffers
		// that surviving frames of the same batch handed to their
		// callers.
		errs[i] = s.settle(toComp, crossing, s.mark(), err,
			func() error { return retry(frame) })
	}
	return errs
}

// teardown reclaims what the faulted call left behind in comp: pool
// buffers allocated during the call window are force-released (their
// owner is gone; the leak accounting must still read zero), and any
// fully-drained private heap of the compartment is reset to pristine.
// Heaps with live allocations that predate the fault are left intact —
// they back protocol state the surviving callers still reference.
func (s *Supervisor) teardown(comp string, mark mem.PoolMark) {
	if s.pool != nil {
		bufs, refs := s.pool.ReleaseSince(mark)
		s.stats.ReclaimedBufs += uint64(bufs)
		s.stats.ReclaimedRefs += uint64(refs)
		s.cpu.Charge(clock.CompFault, uint64(bufs)*clock.CostFaultReclaimBuf)
	}
	for _, h := range s.heaps[comp] {
		// The sweep walks the compartment's whole heap region.
		s.cpu.Charge(clock.CompFault, clock.FaultSweepCycles(h.Size()))
		if h.Stats().LiveBytes == 0 {
			h.Reset()
		}
	}
}
