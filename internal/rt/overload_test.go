package rt

import (
	"errors"
	"strings"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/fault"
	"flexos/internal/sched"
)

func TestAdmitShedPolicy(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetOverload("nw", OverloadSpec{Depth: 2, Policy: fault.ShedPolicyShed})

	rel1, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight("nw"); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	before := cpu.Component(clock.CompFault)
	_, err = s.admit("nw", 0)
	var se *fault.ShedError
	if !errors.As(err, &se) || se.Comp != "nw" || se.Depth != 2 {
		t.Fatalf("third admit: err = %v, want ShedError{nw, 2}", err)
	}
	if !fault.IsOverload(err) {
		t.Fatalf("ShedError not classified as overload: %v", err)
	}
	if got := cpu.Component(clock.CompFault) - before; got != clock.CostOverloadShed {
		t.Fatalf("shed charged %d cycles, want CostOverloadShed (%d)", got, clock.CostOverloadShed)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", st.Sheds)
	}
	if got := s.InFlight("nw"); got != 2 {
		t.Fatalf("rejected call changed InFlight: %d", got)
	}

	// Releasing a slot re-opens admission.
	rel1()
	if got := s.InFlight("nw"); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	rel3, err := s.admit("nw", 0)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()
	if got := s.InFlight("nw"); got != 0 {
		t.Fatalf("InFlight after all releases = %d, want 0", got)
	}
}

func TestAdmitDeadlinePolicy(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetOverload("lc", OverloadSpec{Depth: 0, Policy: fault.ShedPolicyDeadline})
	cpu.Charge(clock.CompApp, 100)

	// An already-expired frame deadline sheds before the gate; the
	// Depth field of the error is 0 to mark a deadline shed rather
	// than a full queue.
	_, err := s.admit("lc", 50)
	var se *fault.ShedError
	if !errors.As(err, &se) || se.Depth != 0 {
		t.Fatalf("expired deadline: err = %v, want deadline ShedError", err)
	}

	// A live deadline (and an undeadlined call) is admitted: depth 0
	// means the deadline policy bounds nothing but staleness. (The
	// shed above charged CostOverloadShed, so leave headroom.)
	rel, err := s.admit("lc", 10_000)
	if err != nil {
		t.Fatalf("live deadline rejected: %v", err)
	}
	rel()
	rel, err = s.admit("lc", 0)
	if err != nil {
		t.Fatalf("undeadlined call rejected: %v", err)
	}
	rel()

	// With a depth bound the policy also sheds on queue fullness.
	s.SetOverload("lc", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyDeadline})
	rel, err = s.admit("lc", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = s.admit("lc", 10_000)
	if !errors.As(err, &se) || se.Depth != 1 {
		t.Fatalf("full deadline queue: err = %v, want ShedError depth 1", err)
	}
}

func TestAdmitBlockPolicyWithoutThread(t *testing.T) {
	// Without a thread source there is nothing to park: the block
	// policy admits rather than wedging a direct caller.
	s := NewSupervisor(clock.New(), nil)
	s.SetOverload("nw", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyBlock})
	rel1, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.admit("nw", 0)
	if err != nil {
		t.Fatalf("block policy without thread context rejected: %v", err)
	}
	rel2()
	rel1()
	if st := s.Stats(); st.Blocked != 0 {
		t.Fatalf("Blocked = %d, want 0", st.Blocked)
	}
}

func TestAdmitBlockPolicyParksCaller(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	sc := sched.NewCScheduler()
	s.SetThreadSource(sc.Current)
	s.SetOverload("nw", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyBlock})

	var order []string
	sc.Spawn("a", cpu, func(th *sched.Thread) {
		err := s.SuperviseCall("nw", 0, true, func() error {
			order = append(order, "a-enter")
			// Hold the slot across a few reschedules so b observes a
			// full queue and parks.
			th.Yield()
			th.Yield()
			order = append(order, "a-exit")
			return nil
		})
		if err != nil {
			t.Errorf("a: %v", err)
		}
	})
	sc.Spawn("b", cpu, func(th *sched.Thread) {
		err := s.SuperviseCall("nw", 0, true, func() error {
			order = append(order, "b-enter")
			return nil
		})
		if err != nil {
			t.Errorf("b: %v", err)
		}
	})
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}

	want := []string{"a-enter", "a-exit", "b-enter"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if st := s.Stats(); st.Blocked == 0 || st.Sheds != 0 {
		t.Fatalf("stats = %+v, want Blocked > 0 and no sheds", st)
	}
	if got := s.InFlight("nw"); got != 0 {
		t.Fatalf("InFlight after run = %d, want 0", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	spec := BreakerSpec{Threshold: 2, Window: 8, Cooldown: 1000}
	s.SetBreaker("nw", spec)
	if got := s.BreakerState("nw"); got != "closed" {
		t.Fatalf("initial state = %q", got)
	}

	fail := func() error {
		return s.SuperviseCall("nw", 0, true, func() error { return nwTrap() })
	}
	// Threshold failures within the window open the breaker.
	for i := 0; i < spec.Threshold; i++ {
		if err := fail(); err == nil {
			t.Fatal("failing call returned nil")
		}
	}
	if got := s.BreakerState("nw"); got != "open" {
		t.Fatalf("state after %d fails = %q, want open", spec.Threshold, got)
	}

	// Open: calls fail fast without running the callee, cheaper even
	// than a shed.
	ran := false
	before := cpu.Component(clock.CompFault)
	err := s.SuperviseCall("nw", 0, true, func() error { ran = true; return nil })
	var be *fault.BreakerOpenError
	if !errors.As(err, &be) || be.Comp != "nw" {
		t.Fatalf("open breaker: err = %v, want BreakerOpenError", err)
	}
	if ran {
		t.Fatal("open breaker still ran the call")
	}
	if got := cpu.Component(clock.CompFault) - before; got != clock.CostBreakerFastFail {
		t.Fatalf("fast-fail charged %d cycles, want %d", got, clock.CostBreakerFastFail)
	}

	// After the cooldown one half-open probe is admitted; while it is
	// in flight everything else still fails fast.
	cpu.Charge(clock.CompApp, spec.Cooldown)
	rel, err := s.admit("nw", 0)
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if got := s.BreakerState("nw"); got != "half-open" {
		t.Fatalf("state during probe = %q, want half-open", got)
	}
	if _, err := s.admit("nw", 0); !errors.As(err, &be) {
		t.Fatalf("second call during probe: err = %v, want BreakerOpenError", err)
	}
	s.breakerOK("nw")
	rel()
	if got := s.BreakerState("nw"); got != "closed" {
		t.Fatalf("state after probe success = %q, want closed", got)
	}

	// A failing probe re-opens for another full cooldown.
	for i := 0; i < spec.Threshold; i++ {
		fail()
	}
	cpu.Charge(clock.CompApp, spec.Cooldown)
	if err := fail(); err == nil {
		t.Fatal("failing probe returned nil")
	}
	if got := s.BreakerState("nw"); got != "open" {
		t.Fatalf("state after probe failure = %q, want open", got)
	}

	st := s.Stats()
	if st.BreakerOpens != 3 || st.BreakerCloses != 1 || st.BreakerFastFails != 2 {
		t.Fatalf("stats = %+v, want 3 opens / 1 close / 2 fast-fails", st)
	}
}

func TestBreakerWindowReset(t *testing.T) {
	cpu := clock.New()
	s := NewSupervisor(cpu, nil)
	s.SetBreaker("nw", BreakerSpec{Threshold: 2, Window: 4, Cooldown: 1000})

	// One failure per window never accumulates to the threshold: the
	// tumbling window resets the failure count.
	for round := 0; round < 3; round++ {
		s.SuperviseCall("nw", 0, true, func() error { return nwTrap() })
		for i := 0; i < 3; i++ {
			if err := s.SuperviseCall("nw", 0, true, func() error { return nil }); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if got := s.BreakerState("nw"); got != "closed" {
		t.Fatalf("state = %q, want closed (window should reset fails)", got)
	}
	if st := s.Stats(); st.BreakerOpens != 0 {
		t.Fatalf("BreakerOpens = %d, want 0", st.BreakerOpens)
	}
}

// TestShedCallbackPanic pins the sched bugfix: a shed observer that
// panics must surface to the caller as a typed KindSched trap, not
// unwind the thread (where it would read as a simulator crash and
// strand block-policy waiters).
func TestShedCallbackPanic(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetOverload("nw", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyShed})
	s.SetOnShed(func(string) { panic("observer bug") })

	rel, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	_, err = s.admit("nw", 0)
	tr, ok := fault.As(err)
	if !ok {
		t.Fatalf("err = %v (%T), want a typed trap", err, err)
	}
	if tr.Comp != "nw" || tr.Kind != fault.KindSched || tr.PC != "supervisor/on-shed" {
		t.Fatalf("trap = %+v, want Comp nw / KindSched / PC supervisor/on-shed", tr)
	}
	if tr.Cause == nil || !strings.Contains(tr.Cause.Error(), "observer bug") {
		t.Fatalf("trap cause = %v, want the panic value preserved", tr.Cause)
	}
	// The shed itself still happened and was accounted.
	if st := s.Stats(); st.Sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", st.Sheds)
	}
}

func TestShedCallbackTrapPanicPassesThrough(t *testing.T) {
	// A callback that panics with an explicit *fault.Trap keeps its
	// own kind and PC; only a missing Comp is filled in.
	s := NewSupervisor(clock.New(), nil)
	s.SetOverload("nw", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyShed})
	s.SetOnShed(func(string) {
		panic(&fault.Trap{Kind: fault.KindMPK, PC: "observer:poke", Addr: 0x40})
	})

	rel, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	_, err = s.admit("nw", 0)
	tr, ok := fault.As(err)
	if !ok || tr.Kind != fault.KindMPK || tr.PC != "observer:poke" || tr.Comp != "nw" {
		t.Fatalf("err = %v, want the explicit trap with Comp filled in", err)
	}
}

func TestShedCallbackObservesComp(t *testing.T) {
	s := NewSupervisor(clock.New(), nil)
	s.SetOverload("nw", OverloadSpec{Depth: 1, Policy: fault.ShedPolicyShed})
	var seen []string
	s.SetOnShed(func(comp string) { seen = append(seen, comp) })

	rel, err := s.admit("nw", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	_, err = s.admit("nw", 0)
	var se *fault.ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ShedError after a clean callback", err)
	}
	if len(seen) != 1 || seen[0] != "nw" {
		t.Fatalf("observer saw %v, want [nw]", seen)
	}
}
