package sh

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// Profile selects which hardening techniques a compartment runs with.
// It corresponds to the per-compartment SH options of the FlexOS build
// system (KASAN/stack-protector/UBSAN under GCC, CFI/SafeStack under
// clang in the prototype).
type Profile struct {
	ASAN           bool
	CFI            bool
	StackProtector bool
	UBSan          bool
}

// None is the empty profile (no hardening).
var None Profile

// Full enables every supported technique.
var Full = Profile{ASAN: true, CFI: true, StackProtector: true, UBSan: true}

// Enabled reports whether any technique is active.
func (p Profile) Enabled() bool {
	return p.ASAN || p.CFI || p.StackProtector || p.UBSan
}

// String lists the enabled techniques.
func (p Profile) String() string {
	if !p.Enabled() {
		return "none"
	}
	s := ""
	add := func(on bool, name string) {
		if on {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(p.ASAN, "asan")
	add(p.CFI, "cfi")
	add(p.StackProtector, "ssp")
	add(p.UBSan, "ubsan")
	return s
}

// CFIError reports a forward-edge control-flow violation.
type CFIError struct {
	Site   string
	Target string
}

func (e *CFIError) Error() string {
	return fmt.Sprintf("sh/cfi: indirect call at %s to unexpected target %s", e.Site, e.Target)
}

// CFI holds the per-image forward-edge target sets, as a control-flow
// analysis of each library would compute them. The spec package uses
// the same analysis to rewrite Call(*) metadata into explicit call
// lists.
type CFI struct {
	targets map[string]map[string]bool
	checks  uint64
}

// NewCFI returns an empty target-set table.
func NewCFI() *CFI { return &CFI{targets: make(map[string]map[string]bool)} }

// AddTarget records that the indirect-call site may legitimately reach
// target.
func (c *CFI) AddTarget(site, target string) {
	m := c.targets[site]
	if m == nil {
		m = make(map[string]bool)
		c.targets[site] = m
	}
	m[target] = true
}

// Check validates one indirect call, charging its cost to the clock.
func (c *CFI) Check(cpu clock.Clock, site, target string) error {
	c.checks++
	cpu.Charge(clock.CompSH, clock.CostCFICheck)
	if !c.targets[site][target] {
		return &CFIError{Site: site, Target: target}
	}
	return nil
}

// Checks reports how many CFI checks have run.
func (c *CFI) Checks() uint64 { return c.checks }

// CanaryError reports a smashed stack canary.
type CanaryError struct{ Frame string }

func (e *CanaryError) Error() string {
	return fmt.Sprintf("sh/ssp: stack smashing detected in %s", e.Frame)
}

// Hardener is the per-compartment instrumentation surface. Components
// call its hooks on their memory operations, indirect calls and call
// frames; the hooks are no-ops (and cost nothing) for techniques the
// compartment's profile leaves off. A nil *Hardener is valid and inert,
// so un-compartmentalized code can call hooks unconditionally.
type Hardener struct {
	Comp    clock.Component
	profile Profile
	asan    *ASAN
	cfi     *CFI
	cpu     clock.Clock
}

// NewHardener builds the instrumentation surface for one compartment.
// asan and cfi may be nil when the profile leaves them off.
func NewHardener(comp clock.Component, p Profile, asan *ASAN, cfi *CFI, cpu clock.Clock) *Hardener {
	return &Hardener{Comp: comp, profile: p, asan: asan, cfi: cfi, cpu: cpu}
}

// Profile reports the hardener's profile (zero for nil).
func (h *Hardener) Profile() Profile {
	if h == nil {
		return None
	}
	return h.profile
}

// OnAccess instruments one memory access of n bytes.
func (h *Hardener) OnAccess(addr mem.Addr, n int, write bool) error {
	if h == nil || !h.profile.ASAN || h.asan == nil {
		return nil
	}
	return h.asan.Check(h.Comp, addr, n, write)
}

// OnBulk charges the instrumentation surcharge of a bulk operation
// (memcpy/memset/memcmp) over n bytes, on top of the operation's base
// cost. ASAN's generic intrinsics validate interior bytes and UBSan
// checks the loop arithmetic, so instrumented bulk loops slow down by
// an order of magnitude — the mechanism behind LibC's 2.3x in Table 1.
func (h *Hardener) OnBulk(n int) {
	if h == nil || n <= 0 {
		return
	}
	chunks := uint64((n + clock.CostMemChunkSize - 1) / clock.CostMemChunkSize)
	var per uint64
	if h.profile.ASAN && h.asan != nil {
		per += clock.CostSHBulkASANChunk
	}
	if h.profile.UBSan {
		per += clock.CostSHBulkUBSanChunk
	}
	if per == 0 {
		return
	}
	h.cpu.Charge(clock.CompSH, chunks*per)
}

// OnTouch charges the shadow-check cost of touching n bytes without a
// functional check. It is used where instrumented code accesses memory
// the simulator keeps outside the arena (e.g. parsing a wire frame);
// accesses to arena memory should use OnAccess instead.
func (h *Hardener) OnTouch(n int) {
	if h == nil || !h.profile.ASAN || h.asan == nil {
		return
	}
	h.asan.checks++
	h.cpu.Charge(clock.CompSH, clock.ASANCheckCycles(n))
}

// OnIndirectCall instruments one forward edge.
func (h *Hardener) OnIndirectCall(site, target string) error {
	if h == nil || !h.profile.CFI || h.cfi == nil {
		return nil
	}
	return h.cfi.Check(h.cpu, site, target)
}

// OnFrame instruments one protected call frame (canary write+check).
// The canary value itself lives outside simulated memory; smashing is
// detected by the ASAN redzones, so OnFrame only models the cost.
func (h *Hardener) OnFrame() {
	if h == nil || !h.profile.StackProtector {
		return
	}
	h.cpu.Charge(clock.CompSH, clock.CostCanary)
}

// OnArith instruments one checked arithmetic/shift operation (UBSan).
func (h *Hardener) OnArith() {
	if h == nil || !h.profile.UBSan {
		return
	}
	h.cpu.Charge(clock.CompSH, 1)
}
