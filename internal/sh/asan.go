// Package sh implements FlexOS's software hardening (SH) mechanisms:
// an ASAN-style shadow-memory checker with redzones and a quarantine,
// CFI forward-edge target checking, and stack canaries.
//
// SH in FlexOS is modular: it is applied per compartment, not
// system-wide, and most techniques instrument the allocator — which is
// why the build system supports one allocator per compartment. A single
// global instrumented allocator makes the entire image pay the
// hardening tax (Fig. 4 of the paper measures exactly this).
//
// Everything here does real work against the simulated arena: redzones
// are poisoned in a real shadow map, checks catch real overflows and
// use-after-free in tests, and every check charges its cycle cost so
// hardened components slow down in proportion to their memory-op
// density (Table 1).
package sh

import (
	"errors"
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// Shadow poison codes.
const (
	shadowOK       = 0x00
	shadowRedzone  = 0xFA
	shadowFreed    = 0xFD
	shadowPoisoned = 0xF7
)

// Redzone is the number of guard bytes placed on each side of an
// instrumented allocation.
const Redzone = 32

// QuarantineSlots is how many freed allocations are held back before
// their memory is actually returned to the underlying heap.
const QuarantineSlots = 64

// Violation is an ASAN report: a memory-safety error caught by the
// shadow checker.
type Violation struct {
	Addr  mem.Addr
	Size  int
	Write bool
	Kind  string // "heap-buffer-overflow", "use-after-free", "use-of-poisoned"
}

func (v *Violation) Error() string {
	op := "READ"
	if v.Write {
		op = "WRITE"
	}
	return fmt.Sprintf("sh/asan: %s of size %d at %#x: %s", op, v.Size, v.Addr, v.Kind)
}

// ErrNotInstrumented is returned when freeing a pointer the
// instrumented allocator does not own.
var ErrNotInstrumented = errors.New("sh/asan: free of non-instrumented pointer")

// ASAN is the shadow-memory engine shared by the checker and the
// instrumented allocator. One byte of shadow covers one byte of arena
// (simpler than 1:8 compression; the check *cost* is still charged per
// 8-byte granule to model the real instrumentation).
type ASAN struct {
	arena  *mem.Arena
	cpu    clock.Clock
	shadow []byte
	checks uint64
	caught uint64
}

// NewASAN builds a shadow map covering the whole arena. The shadow is
// allocated lazily on first use: un-hardened images never pay for it.
// Memory starts addressable (unpoisoned), like un-instrumented
// globals.
func NewASAN(a *mem.Arena, cpu clock.Clock) *ASAN {
	return &ASAN{arena: a, cpu: cpu}
}

// ensureShadow materializes the shadow map.
func (s *ASAN) ensureShadow() {
	if s.shadow == nil {
		s.shadow = make([]byte, s.arena.Size())
	}
}

// Poison marks [addr, addr+n) with the given poison code.
func (s *ASAN) poison(addr mem.Addr, n int, code byte) {
	s.ensureShadow()
	for i := 0; i < n; i++ {
		s.shadow[int(addr)+i] = code
	}
}

// Unpoison marks [addr, addr+n) addressable.
func (s *ASAN) unpoison(addr mem.Addr, n int) { s.poison(addr, n, shadowOK) }

// Checks reports how many shadow checks have run.
func (s *ASAN) Checks() uint64 { return s.checks }

// Caught reports how many violations were detected.
func (s *ASAN) Caught() uint64 { return s.caught }

// Check validates an access of n bytes at addr against the shadow map,
// charging the per-granule check cost to comp. It returns a *Violation
// if any byte is poisoned.
func (s *ASAN) Check(comp clock.Component, addr mem.Addr, n int, write bool) error {
	s.checks++
	s.cpu.Charge(clock.CompSH, clock.ASANCheckCycles(n))
	if !s.arena.Contains(addr, n) {
		s.caught++
		return &Violation{Addr: addr, Size: n, Write: write, Kind: "wild-access"}
	}
	if s.shadow == nil {
		return nil // nothing ever poisoned
	}
	for i := 0; i < n; i++ {
		switch s.shadow[int(addr)+i] {
		case shadowOK:
		case shadowFreed:
			s.caught++
			return &Violation{Addr: addr + mem.Addr(i), Size: n, Write: write, Kind: "use-after-free"}
		case shadowRedzone:
			s.caught++
			return &Violation{Addr: addr + mem.Addr(i), Size: n, Write: write, Kind: "heap-buffer-overflow"}
		default:
			s.caught++
			return &Violation{Addr: addr + mem.Addr(i), Size: n, Write: write, Kind: "use-of-poisoned"}
		}
	}
	return nil
}

// qentry is a quarantined free.
type qentry struct {
	inner mem.Addr
	user  mem.Addr
	size  int
}

// Allocator is the ASAN-instrumented allocator: it brackets every
// allocation with poisoned redzones and delays reuse through a
// quarantine, exactly the malloc instrumentation whose cost the paper's
// Fig. 4 attributes to "SH global alloc" vs "SH local alloc".
type Allocator struct {
	inner      mem.Allocator
	asan       *ASAN
	cpu        clock.Clock
	live       map[mem.Addr]qentry // user addr -> record
	quarantine []qentry
}

var _ mem.Allocator = (*Allocator)(nil)

// NewAllocator wraps inner with ASAN instrumentation.
func NewAllocator(inner mem.Allocator, asan *ASAN, cpu clock.Clock) *Allocator {
	return &Allocator{inner: inner, asan: asan, cpu: cpu, live: make(map[mem.Addr]qentry)}
}

// Alloc reserves size bytes plus redzones, poisons the guards, and
// returns the interior pointer.
func (a *Allocator) Alloc(size int) (mem.Addr, error) {
	a.cpu.Charge(clock.CompSH, clock.CostASANMallocExtra)
	inner, err := a.inner.Alloc(size + 2*Redzone)
	if err != nil {
		return mem.NilAddr, err
	}
	user := inner + Redzone
	a.asan.poison(inner, Redzone, shadowRedzone)
	a.asan.unpoison(user, size)
	a.asan.poison(user+mem.Addr(size), Redzone, shadowRedzone)
	a.live[user] = qentry{inner: inner, user: user, size: size}
	return user, nil
}

// Free poisons the allocation as freed and quarantines it; the oldest
// quarantined block is released to the real heap when the quarantine
// is full.
func (a *Allocator) Free(addr mem.Addr) error {
	a.cpu.Charge(clock.CompSH, clock.CostASANFreeExtra)
	rec, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotInstrumented, addr)
	}
	delete(a.live, addr)
	a.asan.poison(rec.user, rec.size, shadowFreed)
	a.quarantine = append(a.quarantine, rec)
	if len(a.quarantine) > QuarantineSlots {
		old := a.quarantine[0]
		a.quarantine = a.quarantine[1:]
		// Returning to the heap makes the range addressable again.
		a.asan.unpoison(old.inner, old.size+2*Redzone)
		return a.inner.Free(old.inner)
	}
	return nil
}

// SizeOf reports the usable size of a live instrumented allocation.
func (a *Allocator) SizeOf(addr mem.Addr) uint64 {
	if rec, ok := a.live[addr]; ok {
		return uint64(rec.size)
	}
	return 0
}

// Quarantined reports the number of blocks currently quarantined.
func (a *Allocator) Quarantined() int { return len(a.quarantine) }

// Flush releases everything in quarantine back to the heap (used on
// teardown).
func (a *Allocator) Flush() error {
	for _, old := range a.quarantine {
		a.asan.unpoison(old.inner, old.size+2*Redzone)
		if err := a.inner.Free(old.inner); err != nil {
			return err
		}
	}
	a.quarantine = nil
	return nil
}
