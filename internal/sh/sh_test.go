package sh

import (
	"errors"
	"testing"
	"testing/quick"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

func newASANHeap(t *testing.T) (*ASAN, *Allocator, *clock.CPU) {
	t.Helper()
	a := mem.NewArena(64 * mem.PageSize)
	cpu := clock.New()
	h, err := mem.NewHeap(a, mem.PageSize, 62*mem.PageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	asan := NewASAN(a, cpu)
	return asan, NewAllocator(h, asan, cpu), cpu
}

func TestASANCleanAccess(t *testing.T) {
	asan, alloc, _ := newASANHeap(t)
	p, err := alloc.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := asan.Check(clock.CompApp, p, 100, true); err != nil {
		t.Fatalf("clean access reported: %v", err)
	}
	if err := asan.Check(clock.CompApp, p+50, 50, false); err != nil {
		t.Fatalf("clean partial access reported: %v", err)
	}
}

func TestASANHeapOverflow(t *testing.T) {
	asan, alloc, _ := newASANHeap(t)
	p, err := alloc.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// One byte past the end lands in the right redzone.
	err = asan.Check(clock.CompApp, p, 65, true)
	var v *Violation
	if !errors.As(err, &v) || v.Kind != "heap-buffer-overflow" {
		t.Fatalf("err = %v, want heap-buffer-overflow", err)
	}
	// Underflow hits the left redzone.
	err = asan.Check(clock.CompApp, p-1, 4, false)
	if !errors.As(err, &v) || v.Kind != "heap-buffer-overflow" {
		t.Fatalf("underflow err = %v", err)
	}
	if asan.Caught() != 2 {
		t.Fatalf("Caught = %d, want 2", asan.Caught())
	}
}

func TestASANUseAfterFree(t *testing.T) {
	asan, alloc, _ := newASANHeap(t)
	p, err := alloc.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	err = asan.Check(clock.CompApp, p, 8, false)
	var v *Violation
	if !errors.As(err, &v) || v.Kind != "use-after-free" {
		t.Fatalf("err = %v, want use-after-free", err)
	}
}

func TestASANQuarantineDelaysReuse(t *testing.T) {
	_, alloc, _ := newASANHeap(t)
	p, err := alloc.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	if alloc.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", alloc.Quarantined())
	}
	// The same address must not be handed out immediately.
	q, err := alloc.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Fatal("freed block reused immediately despite quarantine")
	}
}

func TestASANQuarantineEviction(t *testing.T) {
	_, alloc, _ := newASANHeap(t)
	var ptrs []mem.Addr
	for i := 0; i < QuarantineSlots+5; i++ {
		p, err := alloc.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if alloc.Quarantined() != QuarantineSlots {
		t.Fatalf("Quarantined = %d, want %d", alloc.Quarantined(), QuarantineSlots)
	}
	if err := alloc.Flush(); err != nil {
		t.Fatal(err)
	}
	if alloc.Quarantined() != 0 {
		t.Fatal("Flush left quarantine non-empty")
	}
}

func TestASANDoubleFree(t *testing.T) {
	_, alloc, _ := newASANHeap(t)
	p, _ := alloc.Alloc(16)
	if err := alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Free(p); !errors.Is(err, ErrNotInstrumented) {
		t.Fatalf("double free err = %v", err)
	}
}

func TestASANCostCharged(t *testing.T) {
	asan, alloc, cpu := newASANHeap(t)
	before := cpu.Component(clock.CompSH)
	p, _ := alloc.Alloc(64)
	if got := cpu.Component(clock.CompSH) - before; got < clock.CostASANMallocExtra {
		t.Fatalf("malloc charge = %d, want >= %d", got, clock.CostASANMallocExtra)
	}
	before = cpu.Component(clock.CompSH)
	_ = asan.Check(clock.CompApp, p, 64, false)
	want := clock.ASANCheckCycles(64)
	if got := cpu.Component(clock.CompSH) - before; got != want {
		t.Fatalf("check charge = %d, want %d", got, want)
	}
}

// Property: for any allocation size, in-bounds accesses pass and the
// first byte beyond either edge fails.
func TestASANBoundsProperty(t *testing.T) {
	asan, alloc, _ := newASANHeap(t)
	f := func(szRaw uint8) bool {
		size := 1 + int(szRaw)%512
		p, err := alloc.Alloc(size)
		if err != nil {
			return true // heap exhaustion is not a property failure
		}
		defer alloc.Free(p)
		in := asan.Check(clock.CompApp, p, size, true) == nil
		over := asan.Check(clock.CompApp, p+mem.Addr(size), 1, true) != nil
		under := asan.Check(clock.CompApp, p-1, 1, false) != nil
		return in && over && under
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCFI(t *testing.T) {
	cpu := clock.New()
	cfi := NewCFI()
	cfi.AddTarget("netdev.rx", "tcp.input")
	cfi.AddTarget("netdev.rx", "udp.input")
	if err := cfi.Check(cpu, "netdev.rx", "tcp.input"); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	err := cfi.Check(cpu, "netdev.rx", "shellcode")
	var ce *CFIError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CFIError", err)
	}
	if err := cfi.Check(cpu, "unknown.site", "tcp.input"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if cfi.Checks() != 3 {
		t.Fatalf("Checks = %d, want 3", cfi.Checks())
	}
	if cpu.Component(clock.CompSH) != 3*clock.CostCFICheck {
		t.Fatal("CFI cost not charged")
	}
}

func TestProfileString(t *testing.T) {
	if None.String() != "none" {
		t.Fatal(None.String())
	}
	p := Profile{ASAN: true, CFI: true}
	if p.String() != "asan+cfi" {
		t.Fatal(p.String())
	}
	if !Full.Enabled() || None.Enabled() {
		t.Fatal("Enabled wrong")
	}
}

func TestNilHardenerInert(t *testing.T) {
	var h *Hardener
	if err := h.OnAccess(0x1000, 8, true); err != nil {
		t.Fatal(err)
	}
	if err := h.OnIndirectCall("a", "b"); err != nil {
		t.Fatal(err)
	}
	h.OnFrame()
	h.OnArith()
	if h.Profile().Enabled() {
		t.Fatal("nil hardener reports enabled profile")
	}
}

func TestHardenerRoutesByProfile(t *testing.T) {
	asan, alloc, cpu := newASANHeap(t)
	cfi := NewCFI()
	cfi.AddTarget("s", "t")
	p, _ := alloc.Alloc(16)

	off := NewHardener(clock.CompNet, None, asan, cfi, cpu)
	before := cpu.Component(clock.CompSH)
	if err := off.OnAccess(p+20, 8, true); err != nil {
		t.Fatal("disabled ASAN still checks")
	}
	off.OnFrame()
	if cpu.Component(clock.CompSH) != before {
		t.Fatal("disabled profile charged cycles")
	}

	on := NewHardener(clock.CompNet, Full, asan, cfi, cpu)
	if err := on.OnAccess(p+14, 8, true); err == nil {
		t.Fatal("enabled ASAN missed overflow")
	}
	if err := on.OnIndirectCall("s", "t"); err != nil {
		t.Fatal(err)
	}
	if err := on.OnIndirectCall("s", "x"); err == nil {
		t.Fatal("CFI missed bad edge")
	}
	before = cpu.Component(clock.CompSH)
	on.OnFrame()
	on.OnArith()
	if cpu.Component(clock.CompSH) != before+clock.CostCanary+1 {
		t.Fatal("frame/arith cost wrong")
	}
}
