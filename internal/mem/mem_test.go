package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewArenaRoundsUp(t *testing.T) {
	a := NewArena(100)
	if a.Size() != 2*PageSize {
		t.Fatalf("Size = %d, want %d (min two pages)", a.Size(), 2*PageSize)
	}
	a = NewArena(3*PageSize + 1)
	if a.Size() != 4*PageSize {
		t.Fatalf("Size = %d, want %d", a.Size(), 4*PageSize)
	}
}

func TestArenaZeroPageInvalid(t *testing.T) {
	a := NewArena(8 * PageSize)
	if a.Contains(NilAddr, 1) {
		t.Fatal("address 0 must be invalid")
	}
	if _, err := a.Bytes(NilAddr, 8); err == nil {
		t.Fatal("Bytes(0) should fail")
	}
}

func TestArenaBounds(t *testing.T) {
	a := NewArena(4 * PageSize)
	if !a.Contains(PageSize, PageSize) {
		t.Fatal("valid range rejected")
	}
	if a.Contains(Addr(a.Size()-1), 2) {
		t.Fatal("overflowing range accepted")
	}
	if a.Contains(Addr(1), -1) {
		t.Fatal("negative length accepted")
	}
}

func TestSetKeyRange(t *testing.T) {
	a := NewArena(8 * PageSize)
	if err := a.SetKeyRange(PageSize, 2*PageSize, 3); err != nil {
		t.Fatal(err)
	}
	k, err := a.KeyAt(PageSize + 10)
	if err != nil || k != 3 {
		t.Fatalf("KeyAt = %d, %v; want 3", k, err)
	}
	if !a.CheckKey(PageSize, 2*PageSize, 3) {
		t.Fatal("CheckKey failed for tagged range")
	}
	if a.CheckKey(PageSize, 3*PageSize, 3) {
		t.Fatal("CheckKey passed for partially tagged range")
	}
	// Partial page overlap tags the whole page.
	if err := a.SetKeyRange(3*PageSize+100, 10, 5); err != nil {
		t.Fatal(err)
	}
	if k, _ := a.KeyAt(3 * PageSize); k != 5 {
		t.Fatalf("partial overlap did not tag page: key %d", k)
	}
	// Invalid key.
	if err := a.SetKeyRange(PageSize, PageSize, NumKeys); err == nil {
		t.Fatal("key 16 accepted")
	}
}

func TestKeysIn(t *testing.T) {
	a := NewArena(8 * PageSize)
	mustNoErr(t, a.SetKeyRange(PageSize, PageSize, 1))
	mustNoErr(t, a.SetKeyRange(2*PageSize, PageSize, 2))
	keys, err := a.KeysIn(PageSize, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("KeysIn = %v, want 2 keys", keys)
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func newTestHeap(t *testing.T, pages int) *Heap {
	t.Helper()
	a := NewArena((pages + 2) * PageSize)
	h, err := NewHeap(a, PageSize, pages*PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapAllocFree(t *testing.T) {
	h := newTestHeap(t, 4)
	p, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p == NilAddr {
		t.Fatal("nil address returned")
	}
	if got := h.SizeOf(p); got != 112 { // 100 rounded to 16
		t.Fatalf("SizeOf = %d, want 112", got)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free error = %v, want ErrBadFree", err)
	}
}

func TestHeapAlignment(t *testing.T) {
	h := newTestHeap(t, 4)
	for i := 0; i < 10; i++ {
		p, err := h.Alloc(1 + i*3)
		if err != nil {
			t.Fatal(err)
		}
		if p%allocAlign != 0 {
			t.Fatalf("allocation %#x not %d-aligned", p, allocAlign)
		}
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := newTestHeap(t, 1)
	if _, err := h.Alloc(2 * PageSize); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if h.Stats().Failed != 1 {
		t.Fatal("failed alloc not counted")
	}
	// Fill it exactly.
	p, err := h.Alloc(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(16); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("alloc from full heap succeeded")
	}
	mustNoErr(t, h.Free(p))
	if _, err := h.Alloc(PageSize); err != nil {
		t.Fatalf("realloc after free failed: %v", err)
	}
}

func TestHeapCoalescing(t *testing.T) {
	h := newTestHeap(t, 4)
	var ptrs []Addr
	for i := 0; i < 8; i++ {
		p, err := h.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free in an interleaved order; everything must coalesce back to
	// one span.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		mustNoErr(t, h.Free(ptrs[i]))
	}
	if h.FreeSpans() != 1 {
		t.Fatalf("FreeSpans = %d, want 1 after full coalescing", h.FreeSpans())
	}
	if h.FreeBytes() != h.Size() {
		t.Fatalf("FreeBytes = %d, want %d", h.FreeBytes(), h.Size())
	}
}

func TestHeapInvalidSizes(t *testing.T) {
	h := newTestHeap(t, 1)
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
}

func TestHeapStats(t *testing.T) {
	h := newTestHeap(t, 4)
	p1, _ := h.Alloc(100)
	p2, _ := h.Alloc(200)
	st := h.Stats()
	if st.Allocs != 2 || st.LiveBytes != 112+208 {
		t.Fatalf("stats = %+v", st)
	}
	mustNoErr(t, h.Free(p1))
	mustNoErr(t, h.Free(p2))
	st = h.Stats()
	if st.Frees != 2 || st.LiveBytes != 0 || st.PeakBytes != 320 {
		t.Fatalf("stats after free = %+v", st)
	}
}

func TestHeapKeyTagging(t *testing.T) {
	a := NewArena(8 * PageSize)
	h, err := NewHeap(a, PageSize, 2*PageSize, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := a.KeyAt(p); k != 7 {
		t.Fatalf("allocation page key = %d, want 7", k)
	}
}

func TestHeapUnalignedRegionRejected(t *testing.T) {
	a := NewArena(8 * PageSize)
	if _, err := NewHeap(a, PageSize+8, PageSize, 1); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if _, err := NewHeap(a, PageSize, PageSize+8, 1); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

// Property: after any sequence of allocs and frees, the free list is
// sorted, non-overlapping, non-adjacent, and free+live bytes equal the
// heap size.
func TestHeapInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena(34 * PageSize)
		h, err := NewHeap(a, PageSize, 32*PageSize, 1)
		if err != nil {
			return false
		}
		var live []Addr
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				p, err := h.Alloc(1 + rng.Intn(2000))
				if err == nil {
					live = append(live, p)
				}
			} else {
				i := rng.Intn(len(live))
				if h.Free(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[len(live)-1:]...)
				live = live[:len(live)-1]
			}
		}
		return heapInvariantsHold(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func heapInvariantsHold(h *Heap) bool {
	var freeBytes uint64
	for i, s := range h.free {
		if s.size == 0 {
			return false
		}
		if s.start < h.base || s.start+Addr(s.size) > h.limit {
			return false
		}
		if i > 0 {
			prev := h.free[i-1]
			if prev.start+Addr(prev.size) >= s.start {
				return false // overlapping or un-coalesced adjacency
			}
		}
		freeBytes += s.size
	}
	return freeBytes+h.stats.LiveBytes == h.Size()
}

func TestLayoutCarve(t *testing.T) {
	a := NewArena(16 * PageSize)
	l := NewLayout(a)
	b1, err := l.Carve(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != PageSize {
		t.Fatalf("first carve at %#x, want %#x", b1, PageSize)
	}
	b2, err := l.Carve(2*PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != 2*PageSize {
		t.Fatalf("second carve at %#x, want %#x", b2, 2*PageSize)
	}
	if !a.CheckKey(b2, 2*PageSize, 2) {
		t.Fatal("carved pages not tagged")
	}
	h, err := l.CarveHeap(PageSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(128); err != nil {
		t.Fatal(err)
	}
	// Exhaust.
	if _, err := l.Carve(a.Size(), 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}
