package mem

import (
	"fmt"
	"sort"
)

// BufRef is a descriptor for a payload buffer living in the key-0 shared
// window. Descriptors — not payload bytes — are what crosses compartment
// boundaries on share-policy gates: two words (address and length/capacity)
// per buffer. Len is the number of meaningful bytes; Cap is the size of the
// underlying slab, so a consumer may write up to Cap bytes in place.
type BufRef struct {
	Addr Addr
	Len  int
	Cap  int
}

// Valid reports whether b describes a plausible buffer. It does not prove
// that b is live in any particular pool; use SharedPool.Owns for that.
func (b BufRef) Valid() bool {
	return b.Addr != NilAddr && b.Len >= 0 && b.Cap >= b.Len
}

// Words is the descriptor size in 64-bit words as it appears in a gate
// frame: one word for the address, one packing Len and Cap.
const BufRefWords = 2

// PoolStats counts pool traffic since construction. Recycles counts Gets
// served from a free list instead of the underlying allocator; Reclaims
// counts buffers force-released by ReleaseSince (fault-recovery
// teardown, not normal lifecycle).
type PoolStats struct {
	Gets, Refs, Releases, Recycles, FailedGets, Reclaims uint64
}

// poolClasses are the slab size classes, chosen to cover the simulator's
// traffic: MTU-sized rx/tx buffers (2 KiB), small app buffers (256 B), and
// the common recv-buffer sweep sizes (16/64 KiB). Larger requests bypass
// the classes and are carved (and returned) directly.
var poolClasses = []int{256, 2 << 10, 16 << 10, 64 << 10}

type poolSlab struct {
	cap  int
	refs int
	seq  uint64 // allocation sequence number, for PoolMark windows
}

// SharedPool is a slab-style, ref-counted buffer pool over an allocator for
// the shared window. It is the backing store of the zero-copy data path:
// producers Get a buffer, hand its BufRef across compartments by reference,
// consumers may Ref it to pin it across a handoff, and the last Release
// recycles the slab onto a per-class free list. The pool does no cycle
// accounting itself — callers (rt.Env) charge the virtual clock — but it
// does leak accounting: Outstanding/OutstandingRefs must both be zero once
// a workload has drained.
type SharedPool struct {
	alloc  Allocator
	free   map[int][]Addr
	live   map[Addr]*poolSlab
	seq    uint64 // next allocation sequence number
	stats  PoolStats
	tracer func(kind string, addr Addr, n int)
}

// NewSharedPool builds a pool over a, which must allocate from shared
// (key-0) memory for descriptors to be passable by reference across MPK
// boundaries.
func NewSharedPool(a Allocator) *SharedPool {
	return &SharedPool{
		alloc: a,
		free:  make(map[int][]Addr),
		live:  make(map[Addr]*poolSlab),
	}
}

// SetTracer installs fn to observe buffer lifecycle events. Kinds are
// "buf-alloc", "buf-ref", and "buf-release"; n is the slab capacity.
func (p *SharedPool) SetTracer(fn func(kind string, addr Addr, n int)) { p.tracer = fn }

func (p *SharedPool) emit(kind string, addr Addr, n int) {
	if p.tracer != nil {
		p.tracer(kind, addr, n)
	}
}

func (p *SharedPool) classFor(n int) int {
	i := sort.SearchInts(poolClasses, n)
	if i < len(poolClasses) {
		return poolClasses[i]
	}
	return n // oversize: carve exactly, no free list
}

// Get allocates a buffer of at least n bytes and returns a descriptor with
// Len=n and one reference held by the caller.
func (p *SharedPool) Get(n int) (BufRef, error) {
	if n < 0 {
		return BufRef{}, fmt.Errorf("mem: pool get of %d bytes", n)
	}
	size := p.classFor(max(n, 1))
	var addr Addr
	if fl := p.free[size]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		p.free[size] = fl[:len(fl)-1]
		p.stats.Recycles++
	} else {
		var err error
		addr, err = p.alloc.Alloc(size)
		if err != nil {
			p.stats.FailedGets++
			return BufRef{}, err
		}
	}
	p.live[addr] = &poolSlab{cap: size, refs: 1, seq: p.seq}
	p.seq++
	p.stats.Gets++
	p.emit("buf-alloc", addr, size)
	return BufRef{Addr: addr, Len: n, Cap: size}, nil
}

// Ref takes an additional reference on b, pinning it across a handoff
// (e.g. while a descriptor sits in the tcpip thread's mailbox).
func (p *SharedPool) Ref(b BufRef) error {
	s, ok := p.live[b.Addr]
	if !ok {
		return fmt.Errorf("mem: ref of non-live buffer %#x", uint64(b.Addr))
	}
	s.refs++
	p.stats.Refs++
	p.emit("buf-ref", b.Addr, s.cap)
	return nil
}

// Release drops one reference on b. When the last reference goes, the slab
// is recycled onto its class free list (or returned to the allocator for
// oversize carves) and recycled=true is reported.
func (p *SharedPool) Release(b BufRef) (recycled bool, err error) {
	s, ok := p.live[b.Addr]
	if !ok {
		return false, fmt.Errorf("mem: release of non-live buffer %#x", uint64(b.Addr))
	}
	s.refs--
	p.stats.Releases++
	p.emit("buf-release", b.Addr, s.cap)
	if s.refs > 0 {
		return false, nil
	}
	delete(p.live, b.Addr)
	if p.classFor(s.cap) == s.cap && containsInt(poolClasses, s.cap) {
		p.free[s.cap] = append(p.free[s.cap], b.Addr)
	} else if err := p.alloc.Free(b.Addr); err != nil {
		return true, err
	}
	return true, nil
}

// PoolMark is a point in the pool's allocation sequence (see Mark).
type PoolMark uint64

// Mark snapshots the allocation sequence. Buffers allocated after a
// mark can be force-released with ReleaseSince — the supervisor's
// fault-recovery teardown takes a mark before every supervised gate
// call so that a trapped call's in-flight allocations can be reclaimed
// without touching buffers that predate the call.
func (p *SharedPool) Mark() PoolMark { return PoolMark(p.seq) }

// ReleaseSince force-releases every live buffer allocated at or after
// mark, regardless of its reference count, returning the buffer and
// reference counts reclaimed. The slabs recycle onto their class free
// lists, so Outstanding/OutstandingRefs drop accordingly — the leak
// accounting a recovered run must still pass.
func (p *SharedPool) ReleaseSince(mark PoolMark) (bufs, refs int) {
	var addrs []Addr
	for addr, s := range p.live {
		if s.seq >= uint64(mark) {
			addrs = append(addrs, addr)
		}
	}
	// Deterministic teardown order, independent of map iteration.
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		s := p.live[addr]
		bufs++
		refs += s.refs
		p.stats.Reclaims++
		p.emit("buf-release", addr, s.cap)
		delete(p.live, addr)
		if p.classFor(s.cap) == s.cap && containsInt(poolClasses, s.cap) {
			p.free[s.cap] = append(p.free[s.cap], addr)
		} else {
			// Oversize carve: hand it back to the allocator; an error
			// here would mean the pool's own bookkeeping is corrupt.
			_ = p.alloc.Free(addr)
		}
	}
	return bufs, refs
}

// Owns reports whether addr names a live pool buffer.
func (p *SharedPool) Owns(addr Addr) bool {
	_, ok := p.live[addr]
	return ok
}

// Outstanding is the number of live (not yet fully released) buffers.
func (p *SharedPool) Outstanding() int { return len(p.live) }

// OutstandingRefs is the total reference count across live buffers.
func (p *SharedPool) OutstandingRefs() int {
	n := 0
	for _, s := range p.live {
		n += s.refs
	}
	return n
}

// Stats returns traffic counters since construction.
func (p *SharedPool) Stats() PoolStats { return p.stats }

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
