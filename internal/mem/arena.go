// Package mem simulates the physical memory substrate of FlexOS.
//
// Memory is a single paged arena (the machine's RAM). Every page is
// tagged with a protection key, mirroring Intel MPK's page-granularity
// domains: the MPK backend places each compartment's static memory,
// heap, stack and TLS in its own key. The page table (the page->key
// mapping) belongs to the memory manager, which is why the paper notes
// the MM must be trusted under MPK — whoever can edit this table can
// move pages between domains.
//
// On top of the arena the package provides a first-fit Heap with
// coalescing free lists. FlexOS images can instantiate one heap per
// compartment (required by the VM backend, and the key to cheap
// software hardening in Fig. 4) or a single shared heap.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the page granularity of protection-key tagging.
const PageSize = 4096

// Addr is an address in the simulated physical arena.
type Addr uint64

// NilAddr is the null address; the first page is never allocatable so
// that NilAddr is always invalid, like a real zero page.
const NilAddr Addr = 0

// Key is a protection key. Intel MPK provides 16.
type Key uint8

// NumKeys is the number of protection keys available (Intel MPK).
const NumKeys = 16

// KeyShared is the conventional key for memory shared between all
// compartments (key 0 is "default" on Linux pkeys as well).
const KeyShared Key = 0

// Common arena errors.
var (
	ErrOutOfMemory = errors.New("mem: out of memory")
	ErrBadAddress  = errors.New("mem: address out of range")
	ErrBadFree     = errors.New("mem: free of unallocated address")
	ErrBadRange    = errors.New("mem: range not page aligned or out of bounds")
)

// Arena is the simulated physical memory plus its page table.
type Arena struct {
	data []byte
	keys []Key // one per page
}

// NewArena allocates an arena of the given size, rounded up to a whole
// number of pages. The first page is reserved (never handed out) so
// that address 0 stays invalid.
func NewArena(size int) *Arena {
	pages := (size + PageSize - 1) / PageSize
	if pages < 2 {
		pages = 2
	}
	return &Arena{
		data: make([]byte, pages*PageSize),
		keys: make([]Key, pages),
	}
}

// Size reports the arena size in bytes.
func (a *Arena) Size() int { return len(a.data) }

// Pages reports the number of pages in the arena.
func (a *Arena) Pages() int { return len(a.keys) }

// Contains reports whether [addr, addr+n) lies inside the arena.
func (a *Arena) Contains(addr Addr, n int) bool {
	if n < 0 {
		return false
	}
	end := uint64(addr) + uint64(n)
	return addr > 0 && end <= uint64(len(a.data))
}

// Bytes returns the backing slice for [addr, addr+n) without any
// protection check. Isolation-aware accesses must go through an
// mpk.View; Bytes is for trusted infrastructure (devices, loaders).
func (a *Arena) Bytes(addr Addr, n int) ([]byte, error) {
	if !a.Contains(addr, n) {
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrBadAddress, addr, n)
	}
	return a.data[addr : uint64(addr)+uint64(n)], nil
}

// KeyAt reports the protection key of the page containing addr.
func (a *Arena) KeyAt(addr Addr) (Key, error) {
	if !a.Contains(addr, 1) {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	return a.keys[int(addr)/PageSize], nil
}

// SetKeyRange tags all pages overlapping [addr, addr+n) with key.
// It is the simulated pkey_mprotect: only the memory manager (a trusted
// component under the MPK backend) may call it.
func (a *Arena) SetKeyRange(addr Addr, n int, key Key) error {
	if key >= NumKeys {
		return fmt.Errorf("mem: key %d out of range", key)
	}
	if n <= 0 || !a.Contains(addr, n) {
		return fmt.Errorf("%w: [%#x,+%d)", ErrBadRange, addr, n)
	}
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	for p := first; p <= last; p++ {
		a.keys[p] = key
	}
	return nil
}

// CheckKey verifies that every page in [addr, addr+n) carries exactly
// the given key. It is used by tests and by the builder's validation.
func (a *Arena) CheckKey(addr Addr, n int, key Key) bool {
	if !a.Contains(addr, n) {
		return false
	}
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	for p := first; p <= last; p++ {
		if a.keys[p] != key {
			return false
		}
	}
	return true
}

// KeysIn returns the set of keys present in [addr, addr+n).
func (a *Arena) KeysIn(addr Addr, n int) ([]Key, error) {
	if !a.Contains(addr, n) {
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrBadAddress, addr, n)
	}
	seen := [NumKeys]bool{}
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	var out []Key
	for p := first; p <= last; p++ {
		if !seen[a.keys[p]] {
			seen[a.keys[p]] = true
			out = append(out, a.keys[p])
		}
	}
	return out, nil
}
