package mem

import "testing"

func TestPoolReleaseSinceWindow(t *testing.T) {
	p, _ := poolArena(t)
	before, err := p.Get(100)
	if err != nil {
		t.Fatal(err)
	}
	mark := p.Mark()
	var inWindow []BufRef
	for i := 0; i < 3; i++ {
		b, err := p.Get(1500)
		if err != nil {
			t.Fatal(err)
		}
		inWindow = append(inWindow, b)
	}
	// Pin one of the in-window buffers twice: forced release must
	// reclaim every reference, not just one.
	if err := p.Ref(inWindow[0]); err != nil {
		t.Fatal(err)
	}

	bufs, refs := p.ReleaseSince(mark)
	if bufs != 3 || refs != 4 {
		t.Fatalf("ReleaseSince = (%d bufs, %d refs), want (3, 4)", bufs, refs)
	}
	// The pre-mark buffer survives the teardown untouched.
	if p.Outstanding() != 1 || !p.Owns(before.Addr) {
		t.Fatalf("pre-mark buffer lost: outstanding=%d", p.Outstanding())
	}
	if st := p.Stats(); st.Reclaims != 3 {
		t.Fatalf("Reclaims = %d, want 3", st.Reclaims)
	}
	// Reclaimed slabs land on the free list and are recycled by the
	// next Get of the class.
	b, err := p.Get(1500)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != inWindow[0].Addr && b.Addr != inWindow[1].Addr && b.Addr != inWindow[2].Addr {
		t.Fatalf("reclaimed slab not recycled: got %#x", uint64(b.Addr))
	}
	if _, err := p.Release(b); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Release(before); err != nil {
		t.Fatal(err)
	}
	if p.Outstanding() != 0 || p.OutstandingRefs() != 0 {
		t.Fatalf("leak after drain: out=%d refs=%d", p.Outstanding(), p.OutstandingRefs())
	}
}

func TestPoolReleaseSinceEmptyWindow(t *testing.T) {
	p, _ := poolArena(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatal(err)
	}
	if bufs, refs := p.ReleaseSince(p.Mark()); bufs != 0 || refs != 0 {
		t.Fatalf("empty window reclaimed (%d, %d)", bufs, refs)
	}
	if !p.Owns(b.Addr) {
		t.Fatal("pre-mark buffer force-released by empty window")
	}
}

func TestPoolReleaseSinceOversize(t *testing.T) {
	p, h := poolArena(t)
	free := h.FreeBytes()
	// 128 KiB exceeds the largest slab class: the carve bypasses the
	// free lists and ReleaseSince must hand it back to the allocator.
	if _, err := p.Get(128 << 10); err != nil {
		t.Fatal(err)
	}
	mark := p.Mark() // after the carve: it must NOT be in the window
	if bufs, _ := p.ReleaseSince(mark); bufs != 0 {
		t.Fatalf("post-carve mark reclaimed %d buffers", bufs)
	}
	// Now mark before a second carve and tear it down.
	mark = PoolMark(0)
	bufs, _ := p.ReleaseSince(mark)
	if bufs != 1 {
		t.Fatalf("reclaimed %d buffers, want 1", bufs)
	}
	if h.FreeBytes() != free {
		t.Fatalf("oversize carve not returned to heap: free %d, want %d", h.FreeBytes(), free)
	}
}

func TestHeapResetRestoresPristineState(t *testing.T) {
	a := NewArena(1 << 20)
	h, err := NewHeap(a, 4096, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	free := h.FreeBytes()
	// Fragment the heap: three allocations, free the outer two.
	p1, _ := h.Alloc(256)
	p2, _ := h.Alloc(256)
	p3, _ := h.Alloc(256)
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p3); err != nil {
		t.Fatal(err)
	}
	if h.FreeSpans() < 2 {
		t.Fatalf("FreeSpans = %d, expected fragmentation", h.FreeSpans())
	}
	if err := h.Free(p2); err != nil {
		t.Fatal(err)
	}
	h.Reset()
	if h.FreeSpans() != 1 || h.FreeBytes() != free {
		t.Fatalf("Reset left spans=%d free=%d, want 1 span, %d bytes",
			h.FreeSpans(), h.FreeBytes(), free)
	}
	if h.Stats().LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after Reset", h.Stats().LiveBytes)
	}
	// The heap is usable again from its base.
	q, err := h.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Fatalf("post-reset alloc at %#x, want heap base allocation %#x", uint64(q), uint64(p1))
	}
}
