package mem

import "testing"

func poolArena(t *testing.T) (*SharedPool, *Heap) {
	t.Helper()
	a := NewArena(1 << 20)
	h, err := NewHeap(a, 4096, 1<<20-4096, KeyShared)
	if err != nil {
		t.Fatalf("heap: %v", err)
	}
	return NewSharedPool(h), h
}

func TestPoolGetReleaseRecycles(t *testing.T) {
	p, _ := poolArena(t)
	b, err := p.Get(1500)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !b.Valid() || b.Len != 1500 || b.Cap != 2<<10 {
		t.Fatalf("bad descriptor: %+v", b)
	}
	if !p.Owns(b.Addr) || p.Outstanding() != 1 || p.OutstandingRefs() != 1 {
		t.Fatalf("accounting off after get: out=%d refs=%d", p.Outstanding(), p.OutstandingRefs())
	}
	recycled, err := p.Release(b)
	if err != nil || !recycled {
		t.Fatalf("release: recycled=%v err=%v", recycled, err)
	}
	if p.Outstanding() != 0 || p.OutstandingRefs() != 0 {
		t.Fatalf("leak after release: out=%d refs=%d", p.Outstanding(), p.OutstandingRefs())
	}
	b2, err := p.Get(800)
	if err != nil {
		t.Fatalf("get2: %v", err)
	}
	if b2.Addr != b.Addr {
		t.Fatalf("expected slab recycle, got %#x want %#x", uint64(b2.Addr), uint64(b.Addr))
	}
	if st := p.Stats(); st.Recycles != 1 || st.Gets != 2 || st.Releases != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := p.Release(b2); err != nil {
		t.Fatalf("release2: %v", err)
	}
}

func TestPoolRefPinsBuffer(t *testing.T) {
	p, _ := poolArena(t)
	b, err := p.Get(64)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := p.Ref(b); err != nil {
		t.Fatalf("ref: %v", err)
	}
	if p.OutstandingRefs() != 2 {
		t.Fatalf("refs=%d want 2", p.OutstandingRefs())
	}
	if recycled, _ := p.Release(b); recycled {
		t.Fatal("buffer recycled while pinned")
	}
	if !p.Owns(b.Addr) {
		t.Fatal("pinned buffer no longer live")
	}
	if recycled, _ := p.Release(b); !recycled {
		t.Fatal("final release did not recycle")
	}
	if err := p.Ref(b); err == nil {
		t.Fatal("ref of dead buffer succeeded")
	}
	if _, err := p.Release(b); err == nil {
		t.Fatal("release of dead buffer succeeded")
	}
}

func TestPoolOversizeReturnsToHeap(t *testing.T) {
	p, h := poolArena(t)
	before := h.Stats().LiveBytes
	b, err := p.Get(200 << 10) // above the largest class
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if b.Cap != 200<<10 {
		t.Fatalf("oversize cap=%d want exact carve", b.Cap)
	}
	if _, err := p.Release(b); err != nil {
		t.Fatalf("release: %v", err)
	}
	if h.Stats().LiveBytes != before {
		t.Fatalf("oversize slab not returned to heap: live=%d want %d", h.Stats().LiveBytes, before)
	}
}

func TestPoolTracerSeesLifecycle(t *testing.T) {
	p, _ := poolArena(t)
	var kinds []string
	p.SetTracer(func(kind string, _ Addr, _ int) { kinds = append(kinds, kind) })
	b, _ := p.Get(32)
	p.Ref(b)
	p.Release(b)
	p.Release(b)
	want := []string{"buf-alloc", "buf-ref", "buf-release", "buf-release"}
	if len(kinds) != len(want) {
		t.Fatalf("events: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %q want %q (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}
