package mem

import (
	"fmt"
	"sort"
)

// allocAlign is the alignment of every heap allocation.
const allocAlign = 16

// span is a free range [start, start+size).
type span struct {
	start Addr
	size  uint64
}

// HeapStats counts allocator activity; the harness uses them to verify
// where allocations happen (global vs per-compartment allocators).
type HeapStats struct {
	Allocs    uint64
	Frees     uint64
	Failed    uint64
	LiveBytes uint64
	PeakBytes uint64
}

// Heap is a first-fit allocator with free-span coalescing over a
// page-aligned region of an Arena. FlexOS instantiates one Heap per
// compartment when the build config asks for local allocators.
//
// Heap is not safe for concurrent use (the simulated kernel is
// cooperative and single-core).
type Heap struct {
	arena  *Arena
	base   Addr
	limit  Addr // exclusive
	key    Key
	free   []span // sorted by start, non-adjacent
	allocs map[Addr]uint64
	stats  HeapStats
}

// NewHeap creates a heap over [base, base+size), tags its pages with
// key, and returns it. The range must be page aligned.
func NewHeap(a *Arena, base Addr, size int, key Key) (*Heap, error) {
	if base%PageSize != 0 || size%PageSize != 0 || size <= 0 {
		return nil, fmt.Errorf("%w: heap [%#x,+%d)", ErrBadRange, base, size)
	}
	if err := a.SetKeyRange(base, size, key); err != nil {
		return nil, err
	}
	return &Heap{
		arena:  a,
		base:   base,
		limit:  base + Addr(size),
		key:    key,
		free:   []span{{start: base, size: uint64(size)}},
		allocs: make(map[Addr]uint64),
	}, nil
}

// Key reports the protection key of the heap's pages.
func (h *Heap) Key() Key { return h.key }

// Base reports the heap's first address.
func (h *Heap) Base() Addr { return h.base }

// Size reports the heap's total capacity in bytes.
func (h *Heap) Size() uint64 { return uint64(h.limit - h.base) }

// Stats returns a copy of the allocator counters.
func (h *Heap) Stats() HeapStats { return h.stats }

// Owns reports whether addr lies within the heap region.
func (h *Heap) Owns(addr Addr) bool { return addr >= h.base && addr < h.limit }

// SizeOf reports the size of a live allocation, or 0 if addr is not a
// live allocation start.
func (h *Heap) SizeOf(addr Addr) uint64 { return h.allocs[addr] }

// Alloc carves size bytes (rounded up to 16-byte alignment) out of the
// first free span that fits. It returns NilAddr with ErrOutOfMemory
// when no span fits.
func (h *Heap) Alloc(size int) (Addr, error) {
	if size <= 0 {
		return NilAddr, fmt.Errorf("mem: alloc of %d bytes", size)
	}
	need := (uint64(size) + allocAlign - 1) &^ (allocAlign - 1)
	for i := range h.free {
		if h.free[i].size < need {
			continue
		}
		addr := h.free[i].start
		h.free[i].start += Addr(need)
		h.free[i].size -= need
		if h.free[i].size == 0 {
			h.free = append(h.free[:i], h.free[i+1:]...)
		}
		h.allocs[addr] = need
		h.stats.Allocs++
		h.stats.LiveBytes += need
		if h.stats.LiveBytes > h.stats.PeakBytes {
			h.stats.PeakBytes = h.stats.LiveBytes
		}
		return addr, nil
	}
	h.stats.Failed++
	return NilAddr, fmt.Errorf("%w: %d bytes from heap key %d", ErrOutOfMemory, size, h.key)
}

// Free releases an allocation made by Alloc and coalesces it with
// adjacent free spans.
func (h *Heap) Free(addr Addr) error {
	size, ok := h.allocs[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(h.allocs, addr)
	h.stats.Frees++
	h.stats.LiveBytes -= size
	h.insertFree(span{start: addr, size: size})
	return nil
}

func (h *Heap) insertFree(s span) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].start >= s.start })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = s
	// Coalesce with successor then predecessor.
	if i+1 < len(h.free) && h.free[i].start+Addr(h.free[i].size) == h.free[i+1].start {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].start+Addr(h.free[i-1].size) == h.free[i].start {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// Reset drops every live allocation and restores the heap to its
// pristine single-span state, clearing fragmentation. The supervisor
// resets a faulted compartment's drained heap during fault recovery;
// outstanding addresses become invalid, exactly as after a compartment
// restart.
func (h *Heap) Reset() {
	h.allocs = make(map[Addr]uint64)
	h.stats.LiveBytes = 0
	h.free = []span{{start: h.base, size: uint64(h.limit - h.base)}}
}

// FreeBytes reports the total bytes in free spans.
func (h *Heap) FreeBytes() uint64 {
	var n uint64
	for _, s := range h.free {
		n += s.size
	}
	return n
}

// FreeSpans reports the number of discontiguous free spans (a
// fragmentation measure used by tests).
func (h *Heap) FreeSpans() int { return len(h.free) }

// Layout hands out page-aligned regions of an arena sequentially; the
// FlexOS builder uses it to place each compartment's heap, stacks and
// shared segments.
type Layout struct {
	arena *Arena
	next  Addr
}

// NewLayout starts carving after the reserved zero page.
func NewLayout(a *Arena) *Layout { return &Layout{arena: a, next: PageSize} }

// Carve reserves size bytes (rounded up to whole pages) tagged with key
// and returns the base address.
func (l *Layout) Carve(size int, key Key) (Addr, error) {
	pages := (size + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	n := pages * PageSize
	base := l.next
	if !l.arena.Contains(base, n) {
		return NilAddr, fmt.Errorf("%w: carve %d bytes", ErrOutOfMemory, size)
	}
	if err := l.arena.SetKeyRange(base, n, key); err != nil {
		return NilAddr, err
	}
	l.next = base + Addr(n)
	return base, nil
}

// CarveHeap carves a region and builds a Heap over it.
func (l *Layout) CarveHeap(size int, key Key) (*Heap, error) {
	pages := (size + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	base, err := l.Carve(pages*PageSize, key)
	if err != nil {
		return nil, err
	}
	return NewHeap(l.arena, base, pages*PageSize, key)
}

// Remaining reports the bytes not yet carved.
func (l *Layout) Remaining() int {
	return l.arena.Size() - int(l.next)
}
