package mem

// Allocator is the malloc/free surface every FlexOS component sees.
// Concrete implementations are *Heap (the plain first-fit allocator)
// and sh.ASANAllocator (the instrumented allocator with redzones and a
// quarantine). The builder decides, per compartment, which
// implementation backs the component — the paper's "separate memory
// allocator per compartment" requirement.
type Allocator interface {
	// Alloc returns the address of a new allocation of size bytes.
	Alloc(size int) (Addr, error)
	// Free releases a previous allocation.
	Free(addr Addr) error
	// SizeOf reports the usable size of a live allocation, 0 if addr
	// is not one.
	SizeOf(addr Addr) uint64
}

var _ Allocator = (*Heap)(nil)
