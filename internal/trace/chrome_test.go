package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenEvents is a fixed event stream covering both vCPU rows, empty
// and populated From/To, and a note payload.
func goldenEvents() []Event {
	return []Event{
		{Seq: 0, Cycles: 0, CPU: 0, Kind: "crossing", From: "comp0", To: "comp1"},
		{Seq: 1, Cycles: 2100, CPU: 1, Kind: "crossing", From: "comp1", To: "comp0"},
		{Seq: 2, Cycles: 4200, CPU: 0, Kind: "buf-alloc", Note: "0x1000+2048"},
		{Seq: 3, Cycles: 6301, CPU: 1, Kind: "shed", From: "comp1", Note: "depth 4"},
	}
}

// TestExportChromeGolden pins the exporter's byte-exact output: the
// timeline must be reproducible run-to-run for CI artifact diffing.
func TestExportChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestExportChromeGolden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestExportChromeDeterministic exports twice and requires identical
// bytes — the property the golden file rests on.
func TestExportChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := ExportChrome(&a, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	if err := ExportChrome(&b, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
}

func TestExportChromeValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, goldenEvents(), 2); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(goldenEvents()) {
		t.Fatalf("validated %d events, want %d", n, len(goldenEvents()))
	}
	// A vCPU beyond the declared count still gets a timeline row.
	var buf2 bytes.Buffer
	ev := goldenEvents()
	ev[0].CPU = 5
	if err := ExportChrome(&buf2, ev, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf2.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf2.Bytes(), []byte(`"name":"vCPU 5"`)) {
		t.Fatal("no thread row for late vCPU 5")
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"i","pid":0,"tid":0,"name":"x"}]}`,                                                         // no ts
		`{"traceEvents":[{"ph":"i","pid":0,"ts":1.0,"name":"x"}]}`,                                                        // no tid
		`{"traceEvents":[{"ph":"i","pid":0,"tid":0,"ts":2.0,"name":"a"},{"ph":"i","pid":0,"tid":0,"ts":1.0,"name":"b"}]}`, // ts backwards
	} {
		if _, err := ValidateChrome([]byte(bad)); err == nil {
			t.Fatalf("validated invalid document %q", bad)
		}
	}
}
