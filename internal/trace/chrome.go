package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flexos/internal/clock"
)

// ExportChrome writes the events as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto load directly — with one
// timeline row per vCPU. Metadata records name the process and the
// per-vCPU rows; every simulator event becomes a thread-scoped instant
// event on the vCPU it ran on, timestamped in microseconds of virtual
// time (the trace-event unit), with the raw cycle count, sequence
// number and event payload preserved in args.
//
// The output is byte-for-byte deterministic for a given event slice
// (pinned by the golden-file test): fields are emitted in a fixed
// order with fixed formatting, never through map iteration.
func ExportChrome(w io.Writer, events []Event, ncpu int) error {
	// Rows must exist for every vCPU that appears, even if the caller
	// under-reports ncpu.
	for _, e := range events {
		if e.CPU >= ncpu {
			ncpu = e.CPU + 1
		}
	}
	if ncpu < 1 {
		ncpu = 1
	}
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"flexos\"},\"traceEvents\":[\n")
	b.WriteString("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"flexos machine\"}}")
	for cpu := 0; cpu < ncpu; cpu++ {
		fmt.Fprintf(&b, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"vCPU %d\"}}", cpu, cpu)
	}
	for _, e := range events {
		name := e.Kind
		if e.From != "" || e.To != "" {
			name = fmt.Sprintf("%s %s->%s", e.Kind, e.From, e.To)
		}
		// Trace-event timestamps are microseconds; at 2.1 GHz one cycle
		// is ~0.000476 us, so keep 4 decimals to separate adjacent
		// events without accumulating float noise.
		ts := clock.Nanoseconds(e.Cycles) / 1e3
		fmt.Fprintf(&b,
			",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.4f,\"name\":%s,\"cat\":%s,"+
				"\"args\":{\"seq\":%d,\"cycles\":%d,\"from\":%s,\"to\":%s,\"note\":%s}}",
			e.CPU, ts, strconv.Quote(name), strconv.Quote(e.Kind),
			e.Seq, e.Cycles, strconv.Quote(e.From), strconv.Quote(e.To), strconv.Quote(e.Note))
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// chromeDoc mirrors the exported structure for validation.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string   `json:"ph"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	Ts   *float64 `json:"ts"`
	Name string   `json:"name"`
}

// ValidateChrome is the schema check CI gates on: the data must parse
// as a trace-event document whose every record carries the fields the
// chrome://tracing / Perfetto importers require (ph, pid, tid, a name,
// and — for non-metadata events — a non-decreasing numeric ts per
// vCPU row). It returns the number of non-metadata events.
func ValidateChrome(data []byte) (int, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: chrome export is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: chrome export has no traceEvents")
	}
	lastTs := map[int]float64{}
	n := 0
	for i, e := range doc.TraceEvents {
		if e.Ph == "" || e.Pid == nil || e.Tid == nil || e.Name == "" {
			return 0, fmt.Errorf("trace: event %d missing required field (ph/pid/tid/name): %+v", i, e)
		}
		if e.Ph == "M" {
			continue
		}
		if e.Ts == nil {
			return 0, fmt.Errorf("trace: event %d (%s) has no ts", i, e.Name)
		}
		if *e.Ts < lastTs[*e.Tid] {
			return 0, fmt.Errorf("trace: event %d (%s) ts %.4f goes backwards on tid %d", i, e.Name, *e.Ts, *e.Tid)
		}
		lastTs[*e.Tid] = *e.Ts
		n++
	}
	return n, nil
}
