// Package trace records simulator events — domain crossings,
// protection faults — into a fixed-size ring, timestamped in virtual
// cycles. The paper's goal is to let developers *inspect* points of
// the isolation design space; the trace is how a run explains where
// its crossings went (examples/iperf -trace prints it).
package trace

import "fmt"

// Event is one recorded occurrence.
type Event struct {
	Seq    uint64
	Cycles uint64
	// CPU is the vCPU the event occurred on (always 0 on a single-core
	// machine).
	CPU  int
	Kind string // "crossing", "pkfault", ...
	From string
	To   string
	Note string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("#%d @%dcy cpu%d %s %s->%s", e.Seq, e.Cycles, e.CPU, e.Kind, e.From, e.To)
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Ring is a fixed-capacity event buffer; when full, the oldest events
// are overwritten. The zero value is unusable; use NewRing.
type Ring struct {
	buf       []Event
	next      int
	seq       uint64
	full      bool
	dropped   uint64
	droppedBy map[string]uint64
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	return &Ring{buf: make([]Event, capacity), droppedBy: make(map[string]uint64)}
}

// Emit records an event, stamping its sequence number.
func (r *Ring) Emit(e Event) {
	e.Seq = r.seq
	r.seq++
	if r.full {
		r.dropped++
		r.droppedBy[r.buf[r.next].Kind]++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total reports how many events were ever emitted.
func (r *Ring) Total() uint64 { return r.seq }

// Dropped reports how many events were overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// DroppedKind reports how many events of one kind were overwritten.
// Overload events ("overload", "shed", "breaker-open") come in bursts
// precisely when the ring is busiest, so a flat total can hide that
// the interesting kind was the one squeezed out.
func (r *Ring) DroppedKind(kind string) uint64 { return r.droppedBy[kind] }

// DroppedByKind returns a copy of the per-kind drop counts. The values
// always sum to Dropped().
func (r *Ring) DroppedByKind() map[string]uint64 {
	out := make(map[string]uint64, len(r.droppedBy))
	for k, v := range r.droppedBy {
		out[k] = v
	}
	return out
}

// Events returns the held events in chronological order.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// CountKind reports how many held events have the given kind.
func (r *Ring) CountKind(kind string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
