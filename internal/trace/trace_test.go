package trace

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmitAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Kind: "crossing", From: fmt.Sprintf("c%d", i), To: "x"})
	}
	ev := r.Events()
	if len(ev) != 3 || r.Len() != 3 {
		t.Fatalf("Len = %d, events = %d", r.Len(), len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i) || e.From != fmt.Sprintf("c%d", i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: "k", Note: fmt.Sprintf("%d", i)})
	}
	ev := r.Events()
	if len(ev) != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", len(ev), r.Total(), r.Dropped())
	}
	if ev[0].Note != "6" || ev[3].Note != "9" {
		t.Fatalf("wrong window: %v", ev)
	}
	// Chronological order property under arbitrary emit counts.
	f := func(n uint8) bool {
		r := NewRing(8)
		for i := 0; i < int(n); i++ {
			r.Emit(Event{})
		}
		ev := r.Events()
		for i := 1; i < len(ev); i++ {
			if ev[i].Seq != ev[i-1].Seq+1 {
				return false
			}
		}
		return len(ev) <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountKindAndString(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: "crossing", From: "a", To: "b"})
	r.Emit(Event{Kind: "pkfault", From: "a", To: "b", Note: "write"})
	if r.CountKind("crossing") != 1 || r.CountKind("pkfault") != 1 || r.CountKind("x") != 0 {
		t.Fatal("CountKind wrong")
	}
	s := r.Events()[1].String()
	if !strings.Contains(s, "pkfault") || !strings.Contains(s, "(write)") {
		t.Fatalf("String = %q", s)
	}
}

func TestDroppedAccounting(t *testing.T) {
	r := NewRing(3)
	// Below capacity nothing is overwritten.
	for i := 0; i < 3; i++ {
		if r.Dropped() != 0 {
			t.Fatalf("dropped %d before wraparound", r.Dropped())
		}
		r.Emit(Event{Kind: "k"})
	}
	// Every further emit overwrites exactly one event, and the
	// invariant Total = Len + Dropped holds throughout.
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Kind: "k"})
		if r.Dropped() != uint64(i) {
			t.Fatalf("after %d overwrites: dropped = %d", i, r.Dropped())
		}
		if r.Total() != uint64(r.Len())+r.Dropped() {
			t.Fatalf("total %d != len %d + dropped %d", r.Total(), r.Len(), r.Dropped())
		}
	}
}

// TestDroppedByKind floods a small ring with a bursty mix (the
// overload pattern: many crossings punctuated by shed events) and
// checks the per-kind counters attribute every overwrite to the kind
// that was squeezed out, summing exactly to Dropped().
func TestDroppedByKind(t *testing.T) {
	r := NewRing(4)
	// 12 crossings interleaved with 4 sheds: the first 4 events fill
	// the ring, the next 12 each overwrite the oldest.
	for i := 0; i < 16; i++ {
		kind := "crossing"
		if i%4 == 3 {
			kind = "shed"
		}
		r.Emit(Event{Kind: kind})
	}
	by := r.DroppedByKind()
	var sum uint64
	for _, v := range by {
		sum += v
	}
	if sum != r.Dropped() {
		t.Fatalf("per-kind drops sum to %d, Dropped() = %d", sum, r.Dropped())
	}
	// The 12 oldest events (9 crossings, 3 sheds) were overwritten; the
	// newest 4 survive.
	if by["crossing"] != 9 || by["shed"] != 3 {
		t.Fatalf("drops by kind = %v, want crossing:9 shed:3", by)
	}
	if r.DroppedKind("crossing") != 9 || r.DroppedKind("nope") != 0 {
		t.Fatalf("DroppedKind wrong: %v", by)
	}
	// The returned map is a copy: mutating it must not corrupt the ring.
	by["crossing"] = 999
	if r.DroppedKind("crossing") != 9 {
		t.Fatal("DroppedByKind leaked internal state")
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if len(r.buf) != 256 {
		t.Fatal("default capacity wrong")
	}
}
