package clock

import "testing"

func TestMachineRouting(t *testing.T) {
	m := NewMachine(4)
	if m.NCPU() != 4 || m.CurID() != 0 {
		t.Fatalf("NCPU=%d CurID=%d, want 4/0", m.NCPU(), m.CurID())
	}
	m.Charge(CompApp, 100)
	m.CPU(2).MakeCurrent()
	m.Charge(CompNet, 300)
	if got := m.CPU(0).Cycles(); got != 100 {
		t.Errorf("cpu0 cycles = %d, want 100", got)
	}
	if got := m.CPU(2).Cycles(); got != 300 {
		t.Errorf("cpu2 cycles = %d, want 300", got)
	}
	if got := m.Cycles(); got != 300 {
		t.Errorf("current cycles = %d, want 300 (cpu2)", got)
	}
	if got := m.Makespan(); got != 300 {
		t.Errorf("makespan = %d, want 300", got)
	}
	if got := m.TotalCycles(); got != 400 {
		t.Errorf("total = %d, want 400", got)
	}
	by := m.ByComponent()
	if by[CompApp] != 100 || by[CompNet] != 300 {
		t.Errorf("ByComponent = %v", by)
	}
}

func TestMachineSteerRestores(t *testing.T) {
	m := NewMachine(2)
	restore := m.Steer(1)
	m.Charge(CompNet, 50)
	restore()
	if m.CurID() != 0 {
		t.Fatalf("CurID after restore = %d, want 0", m.CurID())
	}
	if m.CPU(1).Cycles() != 50 || m.CPU(0).Cycles() != 0 {
		t.Errorf("steered charge landed wrong: cpu0=%d cpu1=%d",
			m.CPU(0).Cycles(), m.CPU(1).Cycles())
	}
}

func TestAdvanceTo(t *testing.T) {
	m := NewMachine(2)
	m.CPU(0).Charge(CompApp, 1000)
	m.CPU(1).AdvanceTo(1000)
	if got := m.CPU(1).Cycles(); got != 1000 {
		t.Fatalf("cpu1 after AdvanceTo = %d, want 1000", got)
	}
	if got := m.CPU(1).Component(CompIdle); got != 1000 {
		t.Fatalf("cpu1 idle component = %d, want 1000", got)
	}
	m.CPU(1).AdvanceTo(500) // never rewinds
	if got := m.CPU(1).Cycles(); got != 1000 {
		t.Fatalf("cpu1 after backwards AdvanceTo = %d, want 1000", got)
	}
	// A standalone machine of one vCPU behaves like a plain CPU.
	if NewMachine(1).NCPU() != 1 {
		t.Fatal("NewMachine(1) is not single-core")
	}
}
