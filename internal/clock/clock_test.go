package clock

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var c CPU
	c.Charge(CompNet, 10)
	if got := c.Cycles(); got != 10 {
		t.Fatalf("Cycles() = %d, want 10", got)
	}
	if got := c.Component(CompNet); got != 10 {
		t.Fatalf("Component(net) = %d, want 10", got)
	}
}

func TestChargeAttribution(t *testing.T) {
	c := New()
	c.Charge(CompNet, 100)
	c.Charge(CompLibC, 50)
	c.Charge(CompNet, 25)
	if got := c.Cycles(); got != 175 {
		t.Fatalf("total = %d, want 175", got)
	}
	if got := c.Component(CompNet); got != 125 {
		t.Fatalf("net = %d, want 125", got)
	}
	by := c.ByComponent()
	if by[CompLibC] != 50 {
		t.Fatalf("libc = %d, want 50", by[CompLibC])
	}
	// The returned map must be a copy.
	by[CompLibC] = 9999
	if c.Component(CompLibC) != 50 {
		t.Fatal("ByComponent leaked internal map")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Charge(CompApp, 42)
	c.Reset()
	if c.Cycles() != 0 || c.Component(CompApp) != 0 {
		t.Fatal("Reset did not clear ledger")
	}
}

func TestElapsedAtFrequency(t *testing.T) {
	c := New()
	c.Charge(CompRest, Hz) // exactly one second of work
	if got := c.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed = %v, want 1s", got)
	}
}

func TestCyclesDurationRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := time.Duration(ms) * time.Millisecond
		back := CyclesToDuration(DurationToCycles(d))
		diff := (back - d).Abs()
		return diff <= 2*time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGbpsFor(t *testing.T) {
	// 1 Gb of payload in 1 second of cycles => 1 Gbps.
	bytes := uint64(1e9 / 8)
	if got := GbpsFor(bytes, Hz); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("GbpsFor = %v, want 1.0", got)
	}
	if got := GbpsFor(bytes, 0); got != 0 {
		t.Fatalf("GbpsFor with zero cycles = %v, want 0", got)
	}
	if got := MbpsFor(bytes, Hz); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("MbpsFor = %v, want 1000", got)
	}
}

func TestOpsPerSec(t *testing.T) {
	if got := OpsPerSec(1000, Hz); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("OpsPerSec = %v, want 1000", got)
	}
	if got := OpsPerSec(5, 0); got != 0 {
		t.Fatalf("OpsPerSec with zero cycles = %v, want 0", got)
	}
}

func TestNanoseconds(t *testing.T) {
	// 2.1 cycles = 1ns at 2.1GHz.
	if got := Nanoseconds(21); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Nanoseconds(21) = %v, want 10", got)
	}
}

func TestContextSwitchCalibration(t *testing.T) {
	// The paper reports 76.6ns (C) and 218.6ns (verified).
	c := Nanoseconds(CostCtxSwitch)
	v := Nanoseconds(CostVerifiedCtxSwitch)
	if math.Abs(c-76.6) > 1.0 {
		t.Errorf("C scheduler switch = %.1fns, want ~76.6ns", c)
	}
	if math.Abs(v-218.6) > 1.0 {
		t.Errorf("verified scheduler switch = %.1fns, want ~218.6ns", v)
	}
	if ratio := v / c; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("verified/C ratio = %.2f, want ~3x", ratio)
	}
}

func TestCopyCycles(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {16, 1}, {17, 2}, {1024, 64},
	}
	for _, tc := range cases {
		if got := CopyCycles(tc.n); got != tc.want {
			t.Errorf("CopyCycles(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestCostHelpersMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(a)+int(b)
		return CopyCycles(x) <= CopyCycles(y) &&
			ChecksumCycles(x) <= ChecksumCycles(y) &&
			ASANCheckCycles(x) <= ASANCheckCycles(y) &&
			RESPParseCycles(x) <= RESPParseCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringLedger(t *testing.T) {
	c := New()
	c.Charge(CompNet, 300)
	c.Charge(CompLibC, 700)
	s := c.String()
	if !strings.Contains(s, "libc") || !strings.Contains(s, "netstack") {
		t.Fatalf("String() missing components: %q", s)
	}
	// Largest consumer first.
	if strings.Index(s, "libc") > strings.Index(s, "netstack") {
		t.Fatalf("String() not sorted by cycles: %q", s)
	}
}
