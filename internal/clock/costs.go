package clock

// Calibrated cycle costs for the simulated Xeon Silver 4110.
//
// These constants are the single place where the simulator's cost model
// is defined. They were calibrated so that the harness reproduces the
// overhead *shape* reported in the paper (see EXPERIMENTS.md): MPK gates
// cost tens of cycles and are amortized by ~1 KiB payloads, VM RPC gates
// cost thousands and need ~32 KiB, ASAN-style hardening tracks a
// component's memory-op density, and the verified scheduler's contract
// checks triple the context-switch latency (76.6 ns -> 218.6 ns).
const (
	// CostCall is a plain intra-compartment function call (the gate
	// placeholder resolved to a direct call by the builder).
	CostCall = 2

	// CostWRPKRU is one write to the PKRU register. ERIM reports
	// 11-260 cycles depending on surrounding serialization; we use a
	// mid-range figure.
	CostWRPKRU = 60

	// CostRegisterClear is the register-hygiene work (clearing
	// caller-saved registers) performed by hardened MPK gates.
	CostRegisterClear = 30

	// CostStackSwitch is switching to the per-compartment stack in the
	// MPK switched-stack gate (Hodor-like), excluding parameter copy.
	CostStackSwitch = 90

	// CostParamCopyPerWord is copying one 8-byte parameter or shared
	// stack word to the target domain's stack.
	CostParamCopyPerWord = 2

	// CostVMNotify is raising an inter-VM event-channel notification
	// and scheduling the peer vCPU (VM exit + injection). Dominates the
	// EPT backend's crossing cost.
	CostVMNotify = 2500

	// CostVMRPCFixed is the remaining fixed per-RPC cost of the VM
	// backend (marshalling descriptor, shared-ring bookkeeping).
	CostVMRPCFixed = 500

	// CostMemPerByte is the per-byte cost of memcpy-style bulk copies.
	// ~16 bytes/cycle for warm AVX copies gives 0.0625; we charge in
	// integer cycles per 16-byte chunk instead (see ChargeCopy).
	CostMemChunk     = 1  // cycles per 16-byte chunk of bulk copy
	CostMemChunkSize = 16 // bytes per chunk

	// CostChecksumChunk is the per-chunk cost of the IP/TCP checksum.
	CostChecksumChunk     = 1
	CostChecksumChunkSize = 32

	// CostCrossCopyChunk is the per-16-byte cost of copying a payload
	// across a compartment boundary under copy transfer semantics
	// (Config.DataPath=copy). It is deliberately much more expensive
	// than CostMemChunk: a boundary copy runs against cold lines owned
	// by the other compartment and pays bounds/permission checks on
	// every chunk, where an intra-compartment memcpy streams warm AVX
	// copies. Charged to CompCopy so the copy-vs-share axis shows up
	// as its own component in bench output.
	CostCrossCopyChunk = 12

	// CostPacketFixed is the fixed per-packet processing cost of the
	// network stack (header parse/build, demux, timers).
	CostPacketFixed = 2000

	// CostXenPacketExtra is the additional per-packet platform cost on
	// the Xen port (the paper notes Unikraft is not optimized for Xen,
	// which is why the Xen baseline sits below KVM in Fig. 3).
	CostXenPacketExtra = 2200

	// CostSyscallish is the fixed cost of a socket-API entry
	// (recv/send) excluding gate crossings.
	CostSyscallish = 60

	// CostCtxSwitch is the C scheduler's context switch: 76.6 ns at
	// 2.1 GHz ~= 161 cycles.
	CostCtxSwitch = 161

	// CostVerifiedCtxSwitch is the verified (Dafny-ported) scheduler's
	// context switch: 218.6 ns at 2.1 GHz ~= 459 cycles. The extra
	// cycles are the executable pre/post-condition checks plus the
	// interrupt disable window in the glue code.
	CostVerifiedCtxSwitch = 459

	// CostSchedOp is a scheduler API operation (thread_add, wake,
	// block bookkeeping) excluding the switch itself.
	CostSchedOp = 30

	// CostVerifiedSchedOpExtra is the contract-check overhead added to
	// every verified-scheduler API entry.
	CostVerifiedSchedOpExtra = 40

	// CostIPI is sending one inter-processor interrupt: a cross-CPU
	// wake on the same machine pays it on the waking vCPU (APIC write
	// plus the remote reschedule interrupt's entry/exit, ~430 ns at
	// 2.1 GHz). Wakes that stay on one vCPU — every wake on a
	// single-core machine — cost nothing extra.
	CostIPI = 900

	// CostSteal is one work-stealing attempt that migrates a thread
	// from another vCPU's run queue: the victim-queue locking and the
	// cache-cold queue touch, charged to the thief.
	CostSteal = 120

	// CostSemOp is a semaphore up/down in LibC, excluding the
	// scheduler calls it makes for blocking/waking.
	CostSemOp = 25

	// CostMalloc / CostFree are the uninstrumented allocator's costs.
	CostMalloc = 45
	CostFree   = 30

	// CostASANMallocExtra / CostASANFreeExtra are redzone poisoning,
	// quarantine and bookkeeping added by the instrumented allocator.
	// With a single global allocator the *whole system* pays these on
	// every allocation — the paper's motivation for per-compartment
	// allocators (Fig. 4).
	CostASANMallocExtra = 150
	CostASANFreeExtra   = 100

	// CostASANCheck is one shadow-memory load+test, charged per
	// 8-byte-granule access check by hardened components.
	CostASANCheck = 2

	// CostASANCheckGranule is the bytes covered by one shadow check.
	CostASANCheckGranule = 8

	// CostSHBulkASANChunk is the extra per-16-byte-chunk cost of an
	// ASAN-instrumented bulk operation (memcpy and friends): the
	// generic shadow-memory intrinsics validate interior bytes, which
	// is why KASAN-style hardening hurts copy-dominated code (LibC)
	// an order of magnitude more than header-parsing code (Table 1).
	CostSHBulkASANChunk = 80

	// CostSHBulkUBSanChunk is the additional per-chunk cost of UBSan
	// bounds/overflow checks in instrumented bulk loops.
	CostSHBulkUBSanChunk = 8

	// CostCFICheck is one forward-edge target-set membership test.
	CostCFICheck = 6

	// CostCanary is stack-protector prologue+epilogue per protected
	// call frame.
	CostCanary = 4

	// CostCapCheck is one capability bounds/permission check on a
	// CHERI-style machine (folded into the load/store pipeline on real
	// hardware; charged explicitly here).
	CostCapCheck = 1

	// CostCInvoke is one CInvoke domain transition: unsealing a
	// code/data capability pair and installing the target domain's
	// capabilities. CHERI compartment switches are tens of cycles,
	// comparable to MPK's WRPKRU but with no domain-count limit.
	CostCInvoke = 50

	// CostPrecondCheck is one generated API-precondition check (the
	// paper's §5 wrappers: included for callers outside the callee's
	// trust domain, excluded otherwise).
	CostPrecondCheck = 15

	// CostFaultTrap is delivering one contained protection fault to the
	// caller's domain: decoding the fault, saving the trap record and
	// entering the supervisor — signal-delivery-ish, far above a gate
	// crossing but far below a VM notify pair.
	CostFaultTrap = 900

	// CostFaultSweepPage is scrubbing one 4 KiB page of a faulted
	// compartment's heap during restart teardown (walk, unmap-style
	// bookkeeping, free-list rebuild).
	CostFaultSweepPage = 40

	// CostFaultReclaimBuf is force-releasing one stranded pool buffer
	// during teardown (descriptor validation plus free-list insert).
	CostFaultReclaimBuf = 120

	// CostFaultBackoff is the base penalty before a replay attempt;
	// the supervisor doubles it per retry (bounded exponential backoff).
	CostFaultBackoff = 2000

	// CostDeadlineRefuse is an isolating gate refusing entry because
	// the crossing's fixed cost no longer fits the frame's deadline:
	// one clock read, one compare, one typed error — deliberately far
	// below CostFaultTrap, since nothing crossed and nothing needs
	// containment bookkeeping.
	CostDeadlineRefuse = 20

	// CostOverloadShed is the admission queue rejecting a call before
	// the gate: queue-depth check plus constructing the typed error.
	// Cheap rejection is the whole value of shedding — compare
	// CostFaultTrap (900) for work that crossed and then failed.
	CostOverloadShed = 120

	// CostBreakerFastFail is an open circuit breaker failing a call
	// fast: a state load and a branch, even cheaper than a shed
	// because no queue accounting is touched.
	CostBreakerFastFail = 40

	// CostBatchDispatch is dispatching one frame of an already-entered
	// batched gate call: reading the frame descriptor off the batch ring
	// and indirect-calling the target function. The whole point of
	// CallBatch is that N frames pay one CrossingCost plus N of these —
	// so it must stay far below every isolating backend's crossing cost
	// (compare CostWRPKRU=60, CostVMNotify=2500).
	CostBatchDispatch = 12

	// CostNICCoalescedPacket is the per-packet driver cost of the
	// second and later frames of a coalesced NIC batch (NAPI-style rx
	// polling, tx doorbell batching): descriptor-ring bookkeeping only,
	// with the interrupt/doorbell fixed cost already paid by the first
	// frame of the batch (compare the ~800-cycle full per-packet
	// platform cost in net.perPacketPlatformCycles).
	CostNICCoalescedPacket = 240

	// CostDictOpFixed is the Redis dict lookup/insert fixed cost.
	CostDictOpFixed = 120

	// CostRESPPerByte charges protocol parsing per input byte (RESP is
	// parsed byte-wise).
	CostRESPByteChunk     = 1
	CostRESPByteChunkSize = 4
)

// CopyCycles returns the cycle cost of bulk-copying n bytes.
func CopyCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + CostMemChunkSize - 1) / CostMemChunkSize
	return uint64(chunks * CostMemChunk)
}

// CrossCopyCycles returns the cycle cost of copying n bytes across a
// compartment boundary under copy transfer semantics.
func CrossCopyCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + CostMemChunkSize - 1) / CostMemChunkSize
	return uint64(chunks * CostCrossCopyChunk)
}

// ChecksumCycles returns the cycle cost of checksumming n bytes.
func ChecksumCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + CostChecksumChunkSize - 1) / CostChecksumChunkSize
	return uint64(chunks * CostChecksumChunk)
}

// ASANCheckCycles returns the shadow-check cost for touching n bytes.
func ASANCheckCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	granules := (n + CostASANCheckGranule - 1) / CostASANCheckGranule
	return uint64(granules * CostASANCheck)
}

// FaultSweepCycles returns the teardown cost of sweeping n bytes of a
// faulted compartment's heap (charged per 4 KiB page).
func FaultSweepCycles(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	pages := (n + 4095) / 4096
	return pages * CostFaultSweepPage
}

// RESPParseCycles returns the parse cost for n protocol bytes.
func RESPParseCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + CostRESPByteChunkSize - 1) / CostRESPByteChunkSize
	return uint64(chunks * CostRESPByteChunk)
}
