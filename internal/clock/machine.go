package clock

// Clock is the charging surface shared by a standalone CPU and a
// Machine of vCPUs. Components hold a Clock, not a concrete CPU, so
// the same gate/runtime/stack code runs unchanged on a single-core
// image and on an SMP machine: on a Machine, charges land on the vCPU
// the scheduler (or an interrupt Steer) made current.
type Clock interface {
	// Charge adds cycles attributed to comp on the current vCPU.
	Charge(comp Component, cycles uint64)
	// Cycles reports the current vCPU's counter ("now" for the code
	// that is executing).
	Cycles() uint64
	// NCPU reports the number of vCPUs in this time domain (1 for a
	// standalone CPU).
	NCPU() int
	// CurID reports the id of the vCPU charges currently land on.
	CurID() int
	// Steer directs subsequent charges to vCPU id until the returned
	// restore function runs — the receive-interrupt analogue (RSS
	// steering a flow's rx processing to its queue's vCPU). Standalone
	// CPUs have nowhere to steer and return a no-op.
	Steer(id int) func()
}

var (
	_ Clock = (*CPU)(nil)
	_ Clock = (*Machine)(nil)
)

// Machine is one simulated SMP machine: N vCPUs sharing a time domain.
// Exactly one vCPU is "current" at any instant — the one the
// deterministic interleaver resumed (or an interrupt was steered to) —
// and Charge/Cycles route to it. A machine of one vCPU behaves exactly
// like a standalone CPU.
type Machine struct {
	cpus []*CPU
	cur  *CPU
}

// NewMachine builds a machine of n vCPUs (n < 1 is clamped to 1), all
// counters zero, vCPU 0 current.
func NewMachine(n int) *Machine {
	if n < 1 {
		n = 1
	}
	m := &Machine{cpus: make([]*CPU, n)}
	for i := range m.cpus {
		m.cpus[i] = &CPU{byComp: make(map[Component]uint64), id: i, mach: m}
	}
	m.cur = m.cpus[0]
	return m
}

// CPU returns vCPU i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// CPUs returns the vCPU slice (do not mutate).
func (m *Machine) CPUs() []*CPU { return m.cpus }

// NCPU implements Clock.
func (m *Machine) NCPU() int { return len(m.cpus) }

// Cur reports the current vCPU.
func (m *Machine) Cur() *CPU { return m.cur }

// CurID implements Clock.
func (m *Machine) CurID() int { return m.cur.id }

// Charge implements Clock: cycles land on the current vCPU.
func (m *Machine) Charge(comp Component, cycles uint64) {
	m.cur.Charge(comp, cycles)
}

// Cycles implements Clock: the current vCPU's counter.
func (m *Machine) Cycles() uint64 { return m.cur.cycles }

// Steer implements Clock: charges go to vCPU id until restore runs.
func (m *Machine) Steer(id int) func() {
	prev := m.cur
	m.cur = m.cpus[id]
	return func() { m.cur = prev }
}

// Makespan is the machine's elapsed time: the maximum vCPU counter.
// With one vCPU it equals that vCPU's Cycles, so single-core
// measurements are unchanged by the SMP refactor.
func (m *Machine) Makespan() uint64 {
	var max uint64
	for _, c := range m.cpus {
		if c.cycles > max {
			max = c.cycles
		}
	}
	return max
}

// TotalCycles sums every vCPU's counter (aggregate work, not elapsed
// time).
func (m *Machine) TotalCycles() uint64 {
	var sum uint64
	for _, c := range m.cpus {
		sum += c.cycles
	}
	return sum
}

// ByComponent aggregates the per-component ledger across all vCPUs.
func (m *Machine) ByComponent() map[Component]uint64 {
	out := make(map[Component]uint64)
	for _, c := range m.cpus {
		for k, v := range c.byComp {
			out[k] += v
		}
	}
	return out
}

// Component reports the cycles attributed to comp across all vCPUs.
func (m *Machine) Component(comp Component) uint64 {
	var sum uint64
	for _, c := range m.cpus {
		sum += c.byComp[comp]
	}
	return sum
}

// Reset zeroes every vCPU and makes vCPU 0 current.
func (m *Machine) Reset() {
	for _, c := range m.cpus {
		c.Reset()
	}
	m.cur = m.cpus[0]
}
