// Package clock provides the virtual time base of the FlexOS simulator.
//
// Every component of the simulated OS charges cycles to a CPU as it does
// real work (copying bytes, computing checksums, switching protection
// domains, running sanitizer checks). Throughput and latency figures are
// derived from the virtual cycle counter, never from wall-clock time, so
// experiments are deterministic and hardware independent.
//
// The time base comes in two granularities. A standalone CPU is one
// virtual processor with its own cycle counter. A Machine is N vCPUs
// sharing one time domain: threads and interrupt work charge the vCPU
// they run on, and the scheduler's conservative discrete-event
// interleaver always resumes the runnable vCPU with the lowest cycle
// count (ties broken by ascending vCPU id), so an SMP run is
// bit-reproducible with no Go-level concurrency. A machine's elapsed
// time is its makespan — the maximum over its vCPU counters.
//
// The clock also keeps a per-component attribution of charged cycles.
// This is what makes Table 1 of the paper (software hardening applied to
// one micro-library at a time) reproducible: the share of total work a
// component performs is measured, not assumed.
package clock

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Component identifies a micro-library (or infrastructure facility) for
// cycle attribution. Components are free-form, but the canonical FlexOS
// decomposition uses the constants below.
type Component string

// Canonical components of the FlexOS image used throughout the
// evaluation. They mirror the micro-library granularity of the paper:
// the network stack, the scheduler, the standard C library, the memory
// allocator, the application itself and the rest of the kernel.
const (
	CompNet   Component = "netstack"
	CompSched Component = "scheduler"
	CompLibC  Component = "libc"
	CompAlloc Component = "alloc"
	CompApp   Component = "app"
	CompRest  Component = "rest"
	CompGate  Component = "gate"
	CompSH    Component = "sh"
	CompVMM   Component = "vmm"
	CompCopy  Component = "copy"
	CompFault Component = "fault"
	// CompIdle attributes the cycles an idle vCPU's counter is
	// fast-forwarded by when a cross-CPU wake arrives from a vCPU whose
	// clock is ahead: waiting, not work.
	CompIdle Component = "idle"
)

// Hz is the frequency of the simulated CPU. The paper's testbed is a
// Xeon Silver 4110 at 2.1 GHz.
const Hz = 2_100_000_000

// CPU is a virtual processor: a cycle counter plus a per-component
// breakdown of where those cycles went. The zero value is ready to use
// as a standalone single-core time domain; NewMachine builds vCPUs that
// share a Machine.
//
// CPU is not safe for concurrent use: the simulator runs on one
// goroutine even when it models several vCPUs — the scheduler's
// deterministic interleaver (lowest cycle count first, ties by vCPU id)
// stands in for hardware parallelism, which keeps runs reproducible.
type CPU struct {
	cycles  uint64
	byComp  map[Component]uint64
	stopped bool
	id      int
	mach    *Machine // nil for a standalone CPU
}

// New returns a standalone CPU with an empty ledger.
func New() *CPU { return &CPU{byComp: make(map[Component]uint64)} }

// Charge adds cycles to the counter, attributed to comp.
func (c *CPU) Charge(comp Component, cycles uint64) {
	if c.byComp == nil {
		c.byComp = make(map[Component]uint64)
	}
	c.cycles += cycles
	c.byComp[comp] += cycles
}

// Cycles reports the total number of cycles charged so far.
func (c *CPU) Cycles() uint64 { return c.cycles }

// ID reports the vCPU's index within its machine (0 for a standalone
// CPU).
func (c *CPU) ID() int { return c.id }

// Machine reports the machine this vCPU belongs to, nil for a
// standalone CPU.
func (c *CPU) Machine() *Machine { return c.mach }

// MakeCurrent directs the machine's subsequent charges to this vCPU.
// The scheduler calls it on every dispatch; standalone CPUs ignore it.
func (c *CPU) MakeCurrent() {
	if c.mach != nil {
		c.mach.cur = c
	}
}

// AdvanceTo fast-forwards an idle vCPU's counter to now, attributing
// the gap to CompIdle. The scheduler uses it when a cross-CPU wake
// targets a vCPU whose clock lags the waker: the woken thread cannot
// run before the IPI that made it runnable was sent. A counter already
// at or past now is untouched.
func (c *CPU) AdvanceTo(now uint64) {
	if now <= c.cycles {
		return
	}
	c.Charge(CompIdle, now-c.cycles)
}

// NCPU implements Clock (a standalone CPU is its own time domain).
func (c *CPU) NCPU() int { return 1 }

// CurID implements Clock: the vCPU charges currently land on.
func (c *CPU) CurID() int { return c.id }

// Steer implements Clock; a standalone CPU has nowhere to steer.
func (c *CPU) Steer(int) func() { return func() {} }

// ByComponent returns a copy of the per-component cycle ledger.
func (c *CPU) ByComponent() map[Component]uint64 {
	out := make(map[Component]uint64, len(c.byComp))
	for k, v := range c.byComp {
		out[k] = v
	}
	return out
}

// Component reports the cycles attributed to a single component.
func (c *CPU) Component(comp Component) uint64 { return c.byComp[comp] }

// Reset zeroes the counter and the ledger.
func (c *CPU) Reset() {
	c.cycles = 0
	c.byComp = make(map[Component]uint64)
}

// Elapsed converts the cycle counter to simulated time at Hz.
func (c *CPU) Elapsed() time.Duration {
	return CyclesToDuration(c.cycles)
}

// String formats the ledger, largest consumer first.
func (c *CPU) String() string {
	type row struct {
		comp Component
		cyc  uint64
	}
	rows := make([]row, 0, len(c.byComp))
	for k, v := range c.byComp {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cyc != rows[j].cyc {
			return rows[i].cyc > rows[j].cyc
		}
		return rows[i].comp < rows[j].comp
	})
	var b strings.Builder
	fmt.Fprintf(&b, "cpu: %d cycles (%v)", c.cycles, c.Elapsed())
	for _, r := range rows {
		fmt.Fprintf(&b, "\n  %-10s %12d (%5.1f%%)", r.comp, r.cyc,
			100*float64(r.cyc)/float64(max(c.cycles, 1)))
	}
	return b.String()
}

// CyclesToDuration converts cycles at Hz to a duration.
func CyclesToDuration(cycles uint64) time.Duration {
	// cycles / Hz seconds = cycles * 1e9 / Hz nanoseconds.
	// Use float to avoid overflow for large counts.
	return time.Duration(float64(cycles) * 1e9 / Hz)
}

// DurationToCycles converts a duration to cycles at Hz.
func DurationToCycles(d time.Duration) uint64 {
	return uint64(float64(d.Nanoseconds()) * Hz / 1e9)
}

// Nanoseconds reports the simulated time in nanoseconds for a cycle count.
func Nanoseconds(cycles uint64) float64 {
	return float64(cycles) * 1e9 / Hz
}

// GbpsFor reports throughput in gigabits per second for payload bytes
// moved in the given number of cycles.
func GbpsFor(bytes, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / Hz
	return float64(bytes) * 8 / seconds / 1e9
}

// MbpsFor reports throughput in megabits per second.
func MbpsFor(bytes, cycles uint64) float64 {
	return GbpsFor(bytes, cycles) * 1000
}

// OpsPerSec reports operation throughput for ops completed in cycles.
func OpsPerSec(ops, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / (float64(cycles) / Hz)
}
