package harness

import (
	"fmt"
	"testing"
)

// TestBlastRadiusMatrix is the acceptance check for the containment
// story: the same injected fault is fatal on the uncompartmentalized
// image, contained by an isolating backend under the default abort
// policy, and fully recovered — with zero pool leaks — under restart.
func TestBlastRadiusMatrix(t *testing.T) {
	res, err := BlastRadius()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(blastScenarios()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(blastScenarios()))
	}
	rows := map[string]BlastRow{}
	for _, r := range res.Rows {
		rows[fmt.Sprintf("%s/%s/%s", r.Workload, r.Image, r.Policy)] = r
	}
	for key, r := range rows {
		if r.Outcome == OutcomeNoTrap {
			t.Errorf("%s: injection never fired", key)
		}
	}

	for _, key := range []string{"iperf-tcp/direct/-", "redis-store/direct/-"} {
		r, ok := rows[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		if r.Outcome != OutcomeFatal {
			t.Errorf("%s: outcome %s, want %s (no trap boundary on the direct image)",
				key, r.Outcome, OutcomeFatal)
		}
	}

	restartRows := []string{
		"iperf-tcp/mpk-switched/restart",
		"iperf-tcp/vm-rpc/restart",
		"iperf-tcp/cheri/restart",
		"redis-store/mpk-switched/restart",
		"redis-store/vm-rpc/restart",
	}
	for _, key := range restartRows {
		r, ok := rows[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		if r.Outcome != OutcomeRecovered {
			t.Errorf("%s: outcome %s, want %s", key, r.Outcome, OutcomeRecovered)
		}
		if r.Traps == 0 || r.Retries == 0 || r.RecoveryNS <= 0 {
			t.Errorf("%s: traps=%d retries=%d recovery=%.0fns, want supervisor activity",
				key, r.Traps, r.Retries, r.RecoveryNS)
		}
		if r.LeakedBufs != 0 {
			t.Errorf("%s: %d pool buffers leaked after recovery", key, r.LeakedBufs)
		}
	}

	if r := rows["iperf-tcp/mpk-shared/abort"]; r.Outcome != OutcomeContained {
		t.Errorf("abort row outcome %s, want %s", r.Outcome, OutcomeContained)
	} else if r.LeakedBufs == 0 {
		// Abort does not run teardown: the stranded buffers stay
		// leaked, which is exactly what restart fixes.
		t.Error("abort row shows no leak; the restart comparison is vacuous")
	}
	if r := rows["iperf-tcp/mpk-shared/degrade"]; r.Outcome != OutcomeDegraded {
		t.Errorf("degrade row outcome %s, want %s", r.Outcome, OutcomeDegraded)
	}
}
