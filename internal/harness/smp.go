package harness

import (
	"fmt"

	"flexos/internal/app/iperf"
	"flexos/internal/app/redis"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/metrics"
	"flexos/internal/net"
	"flexos/internal/sched"
	"flexos/internal/trace"
)

// SmpRun is one parallel-iperf measurement on an n-vCPU machine:
// Streams connections spread across the NIC's RSS queues, one drain
// worker per connection on the queue's vCPU, elapsed time taken as the
// server machine's makespan (the furthest-ahead vCPU).
type SmpRun struct {
	VCPUs   int
	Streams int
	Bytes   uint64
	// Makespan is the server machine's elapsed virtual time.
	Makespan uint64
	Mbps     float64
	// PerCPU is each server vCPU's cycle counter at the end of the run
	// (the balance across them is the RSS spread).
	PerCPU []uint64
	// StreamBytes is each connection's byte total, accept order.
	StreamBytes []uint64
	// Steals and IPIs are scheduler-level SMP events (both machines).
	Steals uint64
	IPIs   uint64
	// RPCStalled is the cycles callers spent serialized behind the
	// server's cross gate — nonzero only on VM-RPC, where one VMM
	// endpoint services every vCPU in turn.
	RPCStalled uint64
	// Attr is the server machine's cycle-attribution breakdown: every
	// cycle of capacity (makespan × vCPUs) assigned to a (vCPU,
	// component, compartment) row, read from the live clock ledgers.
	Attr *metrics.Attribution
}

// RunIperfParallel runs a Streams-way parallel iperf transfer
// (totalBytes split evenly) over a world built from cfg and measures
// server-machine makespan throughput. SMP images use the direct socket
// architecture — per-worker socket calls on the worker's own vCPU, as
// in lwip's raw API — because a single pinned tcpip thread would
// serialize every stream behind one core.
func RunIperfParallel(cfg build.Config, streams, totalBytes, recvBuf int) (*SmpRun, error) {
	r, _, err := RunIperfParallelTraced(cfg, streams, totalBytes, recvBuf, 0)
	return r, err
}

// RunIperfParallelTraced is RunIperfParallel with an optional
// server-side crossing trace holding the last traceCap events (0
// disables tracing). The determinism test replays a run and compares
// the two event streams bit for bit.
func RunIperfParallelTraced(cfg build.Config, streams, totalBytes, recvBuf, traceCap int) (*SmpRun, *trace.Ring, error) {
	r, ring, _, err := runIperfParallelWorld(cfg, streams, totalBytes, recvBuf, traceCap)
	return r, ring, err
}

// runIperfParallelWorld is the world-returning core of
// RunIperfParallelTraced, shared with the observability entry points.
func runIperfParallelWorld(cfg build.Config, streams, totalBytes, recvBuf, traceCap int) (*SmpRun, *trace.Ring, *build.World, error) {
	if streams < 1 {
		streams = 1
	}
	cfg.Net.SocketMode = net.DirectMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var ring *trace.Ring
	if traceCap > 0 {
		ring = w.Server.EnableTracing(traceCap)
	}
	perStream := totalBytes / streams
	srv := iperf.NewMultiServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf, streams)
	var srvErr error
	w.Sched.Spawn("iperf-accept", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(w.Sched, th)
	})
	cliErrs := make([]error, streams)
	nCli := w.Client.Clock.NCPU()
	for i := 0; i < streams; i++ {
		cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 5001, perStream, 32<<10)
		i := i
		w.Sched.Spawn(fmt.Sprintf("iperf-client-%d", i), w.Client.Clock.CPU(i%nCli),
			func(th *sched.Thread) {
				cliErrs[i] = cli.Run(th)
			})
	}
	if err := w.Sched.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness smp iperf: %w", err)
	}
	if srvErr != nil {
		return nil, nil, nil, fmt.Errorf("harness smp iperf server: %w", srvErr)
	}
	for i, err := range cliErrs {
		if err != nil {
			return nil, nil, nil, fmt.Errorf("harness smp iperf client %d: %w", i, err)
		}
	}
	bytes, _, err := srv.Finish()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("harness smp iperf: %w", err)
	}
	if bytes != uint64(perStream*streams) {
		return nil, nil, nil, fmt.Errorf("harness smp iperf: received %d of %d bytes", bytes, perStream*streams)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, nil, nil, err
	}
	r := &SmpRun{
		VCPUs:       w.Server.Clock.NCPU(),
		Streams:     streams,
		Bytes:       bytes,
		Makespan:    w.Server.Cycles(),
		StreamBytes: srv.StreamBytes(),
		Steals:      w.Sched.Steals(),
		IPIs:        w.Sched.IPIs(),
		RPCStalled:  w.Server.Registry.CrossStalled(),
	}
	r.Mbps = clock.GbpsFor(bytes, r.Makespan) * 1000
	for _, cpu := range w.Server.Clock.CPUs() {
		r.PerCPU = append(r.PerCPU, cpu.Cycles())
	}
	r.Attr = w.Server.Attribution()
	return r, ring, w, nil
}

// SmpRedisRun is one multi-connection redis measurement on an n-vCPU
// machine: Conns clients sharded across the NIC's RSS queues, one
// serve worker per connection on the queue's vCPU, all sharing the
// server's store.
type SmpRedisRun struct {
	VCPUs int
	Conns int
	// Ops is the commands the server executed across all connections.
	Ops uint64
	// Makespan is the server machine's elapsed virtual time.
	Makespan uint64
	// KOpsPerSec is Ops over simulated seconds, in thousands.
	KOpsPerSec float64
	// PerCPU is each server vCPU's cycle counter at the end of the run.
	PerCPU []uint64
	Steals uint64
	IPIs   uint64
}

// RunRedisParallel runs Conns redis clients against one server, each
// issuing opsPerConn alternating SET/GET commands on its own key, and
// measures server-machine makespan throughput. Like RunIperfParallel
// it uses the direct socket architecture, and each connection's serve
// worker is spawned on the vCPU of the RSS queue the NIC steers the
// flow to, so independent connections execute commands on different
// cores against the shared store.
func RunRedisParallel(cfg build.Config, conns, opsPerConn, payloadBytes int) (*SmpRedisRun, error) {
	if conns < 1 {
		conns = 1
	}
	cfg.Net.SocketMode = net.DirectMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	srv := redis.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	srvErrs := make([]error, conns)
	var acceptErr error
	w.Sched.Spawn("redis-accept", w.Server.CPU, func(th *sched.Thread) {
		// The backlog must hold every connection: the clients all
		// connect before the accept loop drains the first handshake.
		var listener *net.Socket
		if acceptErr = w.Server.Env("app").CallFn("libc", "listen", 2, func() error {
			var err error
			listener, err = w.Server.LibC.Listen(w.Server.Stack, 6379, conns)
			return err
		}); acceptErr != nil {
			return
		}
		for i := 0; i < conns; i++ {
			conn, err := srv.Accept(th, listener)
			if err != nil {
				acceptErr = err
				return
			}
			i, conn := i, conn
			w.Sched.Spawn(fmt.Sprintf("redis-server-%d", i),
				w.Server.Stack.SpawnCPU(w.Server.Stack.QueueCPUOf(conn)),
				func(th *sched.Thread) {
					srvErrs[i] = srv.ServeConn(th, conn)
				})
		}
	})
	cliErrs := make([]error, conns)
	nCli := w.Client.Clock.NCPU()
	for i := 0; i < conns; i++ {
		i := i
		w.Sched.Spawn(fmt.Sprintf("redis-client-%d", i), w.Client.Clock.CPU(i%nCli),
			func(th *sched.Thread) {
				c := redis.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
					w.Server.Stack.IP(), 6379)
				if cliErrs[i] = c.Connect(th); cliErrs[i] != nil {
					return
				}
				key := fmt.Sprintf("key:%d", i)
				for op := 0; op < opsPerConn; op++ {
					if op%2 == 0 {
						cliErrs[i] = c.Set(th, key, payload)
					} else {
						_, _, cliErrs[i] = c.Get(th, key)
					}
					if cliErrs[i] != nil {
						return
					}
				}
				cliErrs[i] = c.Close(th)
			})
	}
	if err := w.Sched.Run(); err != nil {
		return nil, fmt.Errorf("harness smp redis: %w", err)
	}
	if acceptErr != nil {
		return nil, fmt.Errorf("harness smp redis accept: %w", acceptErr)
	}
	for i, err := range srvErrs {
		if err != nil {
			return nil, fmt.Errorf("harness smp redis server %d: %w", i, err)
		}
	}
	for i, err := range cliErrs {
		if err != nil {
			return nil, fmt.Errorf("harness smp redis client %d: %w", i, err)
		}
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, err
	}
	r := &SmpRedisRun{
		VCPUs:    w.Server.Clock.NCPU(),
		Conns:    conns,
		Ops:      srv.Commands,
		Makespan: w.Server.Cycles(),
		Steals:   w.Sched.Steals(),
		IPIs:     w.Sched.IPIs(),
	}
	if secs := clock.Nanoseconds(r.Makespan) / 1e9; secs > 0 {
		r.KOpsPerSec = float64(r.Ops) / secs / 1e3
	}
	for _, cpu := range w.Server.Clock.CPUs() {
		r.PerCPU = append(r.PerCPU, cpu.Cycles())
	}
	return r, nil
}

// SmpPoint is one (vCPU count, throughput) sample of an SMP series.
type SmpPoint struct {
	VCPUs int
	Mbps  float64
	// SpeedupX is throughput relative to the 1-vCPU point of the same
	// series.
	SpeedupX float64
	Steals   uint64
	IPIs     uint64
	// StallPct is the share of the machine's total capacity
	// (makespan x vCPUs) that callers spent serialized behind the cross
	// gate — the VM-RPC scaling limiter.
	StallPct float64
	// Attr is the run's attribution class split — what share of the
	// machine's capacity went to isolation crossings, library compute
	// and stalls — so each sweep point explains its own throughput.
	Attr metrics.Summary
}

// SmpSeries is one backend's vCPU sweep.
type SmpSeries struct {
	Label   string
	Backend gate.Backend
	Points  []SmpPoint
}

// SmpResult is the SMP scaling experiment: the same parallel iperf
// workload (8 streams, RSS-spread across per-vCPU NIC queues) as the
// machine grows from 1 to 8 vCPUs, per isolation backend. Direct and
// MPK gates are per-vCPU state and scale with the cores; the VM-RPC
// gate funnels every call through one VMM endpoint, and the sweep
// quantifies where that serializes.
type SmpResult struct {
	Streams int
	VCPUs   []int
	Series  []SmpSeries
}

// SmpVCPUs is the vCPU sweep (quick thins it for tests and CI smoke,
// keeping the 1/2/4 points the acceptance bars pin).
func SmpVCPUs(quick bool) []int {
	if quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// SmpStreams is the parallel-connection count (iperf -P 8).
const SmpStreams = 8

// smpConfigs are the swept images: the same NW-only plan under a free
// gate, the MPK-shared gate (per-vCPU PKRU), and the VM-RPC gate.
func smpConfigs() []build.Config {
	return []build.Config{
		{Name: "Direct NW-only", Compartments: build.NWOnly(),
			Backend: gate.FuncCall, Alloc: build.AllocPerCompartment},
		{Name: "MPK-Sha. NW-only", Compartments: build.NWOnly(),
			Backend: gate.MPKShared, Alloc: build.AllocPerCompartment},
		{Name: "VM RPC NW-only", Compartments: build.NWOnly(), Platform: net.Xen,
			Backend: gate.VMRPC, Alloc: build.AllocPerCompartment},
	}
}

// Smp runs the scaling sweep. quick thins the vCPU list.
func Smp(quick bool) (*SmpResult, error) {
	const (
		total   = 8 << 20
		recvBuf = 16 << 10
	)
	out := &SmpResult{Streams: SmpStreams, VCPUs: SmpVCPUs(quick)}
	for _, base := range smpConfigs() {
		s := SmpSeries{Label: base.Name, Backend: base.Backend}
		for _, n := range out.VCPUs {
			cfg := base
			if n > 1 {
				cfg.Smp = n
			}
			r, err := RunIperfParallel(cfg, SmpStreams, total, recvBuf)
			if err != nil {
				return nil, fmt.Errorf("smp %s @%d vcpus: %w", base.Name, n, err)
			}
			p := SmpPoint{
				VCPUs:  n,
				Mbps:   r.Mbps,
				Steals: r.Steals,
				IPIs:   r.IPIs,
				Attr:   r.Attr.Summary(),
			}
			if err := r.Attr.Check(); err != nil {
				return nil, fmt.Errorf("smp %s @%d vcpus: %w", base.Name, n, err)
			}
			if r.Makespan > 0 {
				p.StallPct = 100 * float64(r.RPCStalled) / float64(r.Makespan*uint64(n))
			}
			if len(s.Points) > 0 && s.Points[0].Mbps > 0 {
				p.SpeedupX = p.Mbps / s.Points[0].Mbps
			} else {
				p.SpeedupX = 1
			}
			s.Points = append(s.Points, p)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}
