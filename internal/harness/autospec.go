package harness

import (
	"flexos/internal/core/build"
	"flexos/internal/core/explore"
	"flexos/internal/core/spec"
)

// RecordRedisMetadata runs the Redis workload with the gate registry's
// observer tapped and returns the recorder plus the draft metadata it
// generates — the paper's §5 semi-automatic metadata generation, fed
// by a representative workload.
func RecordRedisMetadata(payloadBytes, ops int) (*spec.Recorder, string, error) {
	rec := spec.NewRecorder()
	_, err := runRedis(build.Config{Name: "autospec"}, OpGET, payloadBytes, ops,
		func(w *build.World) {
			w.Server.Registry.SetObserver(rec.Observe)
		})
	if err != nil {
		return nil, "", err
	}
	return rec, rec.RenderMetadata(), nil
}

// MeasureWorkload derives the explorer's workload profile from an
// observed baseline run instead of hand-tuned rates: per-operation
// cross-library call rates from the recorder, the per-operation
// baseline cost from the virtual clock. The SH taxes keep their
// calibrated defaults (they come from instrumentation density, which
// call counting cannot see).
func MeasureWorkload(payloadBytes, ops int) (explore.Workload, error) {
	rec := spec.NewRecorder()
	res, err := runRedis(build.Config{Name: "workload"}, OpGET, payloadBytes, ops,
		func(w *build.World) {
			w.Server.Registry.SetObserver(rec.Observe)
		})
	if err != nil {
		return explore.Workload{}, err
	}
	w := explore.DefaultWorkload()
	w.BaseCycles = float64(res.ServerCycles) / float64(res.Ops)
	rates := make(map[[2]string]float64)
	for _, e := range rec.Edges() {
		rates[[2]string{e.From, e.To}] += float64(rec.Count(e.From, e.To, e.Fn)) / float64(res.Ops)
	}
	w.CallRates = rates
	return w, nil
}
