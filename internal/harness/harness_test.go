package harness

import (
	"math"
	"strings"
	"testing"

	"flexos/internal/core/build"
	"flexos/internal/core/explore"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// The harness tests double as the acceptance suite for the paper's
// qualitative claims: they assert the *shape* of every figure.

func TestCtxSwitchMatchesPaper(t *testing.T) {
	r, err := CtxSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CNanos-r.PaperCNanos) > 2 {
		t.Errorf("C switch %.1f ns, paper %.1f", r.CNanos, r.PaperCNanos)
	}
	if math.Abs(r.VerifiedNanos-r.PaperVNanos) > 2 {
		t.Errorf("verified switch %.1f ns, paper %.1f", r.VerifiedNanos, r.PaperVNanos)
	}
	if out := FormatCtxSwitch(r); !strings.Contains(out, "218.6") {
		t.Error("format output missing value")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(true)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]Fig3Point{}
	for _, s := range r.Series {
		series[s.Label] = s.Points
	}
	base := series["KVM Baseline"]
	cheri := series["CHERI (KVM)"]
	sha := series["MPK-Sha. (KVM)"]
	sw := series["MPK-Sw. (KVM)"]
	xen := series["Xen Baseline"]
	vm := series["VM RPC (Xen)"]
	if base == nil || cheri == nil || sha == nil || sw == nil || xen == nil || vm == nil {
		t.Fatalf("missing series: %v", r.Series)
	}
	small, large := 0, len(base)-1

	// Small buffers: MPK 2-3x slower; switched below shared.
	if ratio := base[small].Mbps / sha[small].Mbps; ratio < 1.4 || ratio > 3.5 {
		t.Errorf("MPK shared small-buffer slowdown = %.2fx, want ~2x", ratio)
	}
	if ratio := base[small].Mbps / sw[small].Mbps; ratio < 2.0 || ratio > 4.0 {
		t.Errorf("MPK switched small-buffer slowdown = %.2fx, want ~3x", ratio)
	}
	if sha[small].Mbps < sw[small].Mbps {
		t.Error("shared-stack gate should beat switched-stack")
	}
	// The capability backend (extension) sits between the baseline and
	// MPK shared at small buffers (cheaper crossings) and converges.
	if cheri[small].Mbps < sha[small].Mbps || cheri[small].Mbps > base[small].Mbps {
		t.Errorf("CHERI at %dB = %.1f, want between MPK-shared (%.1f) and baseline (%.1f)",
			base[small].RecvBuf, cheri[small].Mbps, sha[small].Mbps, base[small].Mbps)
	}
	// Large buffers: MPK catches the baseline (within ~5%).
	if ratio := base[large].Mbps / sha[large].Mbps; ratio > 1.05 {
		t.Errorf("MPK shared did not catch up: %.2fx at %dB", ratio, base[large].RecvBuf)
	}
	// Xen baseline below KVM everywhere.
	for i := range base {
		if xen[i].Mbps >= base[i].Mbps {
			t.Errorf("Xen >= KVM at %dB", base[i].RecvBuf)
		}
	}
	// VM RPC: catastrophic at small buffers, near Xen baseline at the
	// largest.
	if ratio := xen[small].Mbps / vm[small].Mbps; ratio < 5 {
		t.Errorf("VM RPC small-buffer slowdown = %.2fx, want >>1", ratio)
	}
	if ratio := xen[large].Mbps / vm[large].Mbps; ratio > 1.15 {
		t.Errorf("VM RPC did not converge: %.2fx at %dB", ratio, base[large].RecvBuf)
	}
	if !strings.Contains(FormatFig3(r), "KVM Baseline") {
		t.Error("format output broken")
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]float64{}
	for _, row := range r.Rows {
		slow[row.Component] = r.BaselineGbps / row.COnlyGbps
	}
	// Paper's ordering: sched ~1%, netstack ~6%, rest ~18%, libc
	// ~2.3x, entire worst.
	if slow["Scheduler"] > 1.03 {
		t.Errorf("sched SH slowdown = %.2fx, want ~1.01x", slow["Scheduler"])
	}
	if slow["Network stack"] < 1.01 || slow["Network stack"] > 1.2 {
		t.Errorf("netstack SH slowdown = %.2fx, want ~1.06x", slow["Network stack"])
	}
	if slow["LibC"] < 1.8 || slow["LibC"] > 3.2 {
		t.Errorf("libc SH slowdown = %.2fx, want ~2.3x", slow["LibC"])
	}
	if slow["Entire system"] < slow["LibC"] {
		t.Errorf("entire (%.2fx) must exceed libc (%.2fx)", slow["Entire system"], slow["LibC"])
	}
	order := []string{"Scheduler", "Network stack", "Rest of the system", "LibC", "Entire system"}
	for i := 1; i < len(order); i++ {
		if slow[order[i]] < slow[order[i-1]] {
			t.Errorf("ordering broken: %s (%.2fx) < %s (%.2fx)",
				order[i], slow[order[i]], order[i-1], slow[order[i-1]])
		}
	}
	if !strings.Contains(FormatTable1(r), "LibC") {
		t.Error("format output broken")
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(160)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfg string, op RedisOp, payload int) float64 {
		for _, c := range r.Cells {
			if c.Config == cfg && c.Op == op && c.Payload == payload {
				return c.KReqS
			}
		}
		t.Fatalf("missing cell %s/%s/%d", cfg, op, payload)
		return 0
	}
	for _, payload := range Fig4Payloads {
		base := get("No SH", OpSET, payload)
		global := get("SH global alloc", OpSET, payload)
		local := get("SH local alloc", OpSET, payload)
		verified := get("Verified Sched", OpSET, payload)
		// Global allocator pays more than local (the Fig. 4 claim).
		if global >= local {
			t.Errorf("%dB: global alloc (%f) should be slower than local (%f)", payload, global, local)
		}
		if local >= base {
			t.Errorf("%dB: SH local (%f) should be slower than baseline (%f)", payload, local, base)
		}
		// Verified scheduler within 6% of baseline (paper's claim).
		if base/verified > 1.06 {
			t.Errorf("%dB: verified sched overhead %.2fx, want <= 1.06x", payload, base/verified)
		}
	}
	if !strings.Contains(FormatFig4(r), "SH global alloc") {
		t.Error("format output broken")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(160)
	if err != nil {
		t.Fatal(err)
	}
	get := func(model, stack string, payload int) float64 {
		for _, c := range r.Cells {
			if c.Model == model && c.Stack == stack && c.Payload == payload {
				return c.KReqS
			}
		}
		t.Fatalf("missing cell %s/%s/%d", model, stack, payload)
		return 0
	}
	for _, payload := range Fig4Payloads {
		base := get("No Isol.", "-", payload)
		nwSh := get("NW-only", "Sh.", payload)
		nwSw := get("NW-only", "Sw.", payload)
		threeSh := get("NW/Sched/Rest", "Sh.", payload)
		threeSw := get("NW/Sched/Rest", "Sw.", payload)
		mergedSh := get("NW+Sched/Rest", "Sh.", payload)

		// Isolation costs; more compartments cost more; switched
		// costs more than shared.
		if !(base > nwSh && nwSh > threeSh) {
			t.Errorf("%dB: ordering broken: base %f, nw %f, three %f", payload, base, nwSh, threeSh)
		}
		if nwSw >= nwSh || threeSw >= threeSh {
			t.Errorf("%dB: switched should cost more than shared", payload)
		}
		// The headline claim: merging NW+Sched does NOT help, because
		// semaphores live in LibC.
		if mergedSh > threeSh*1.02 {
			t.Errorf("%dB: merging nw+sched helped (%f vs %f), contradicting the paper", payload, mergedSh, threeSh)
		}
	}
	// Isolation overhead drops as the request size increases.
	rel := func(payload int) float64 {
		return get("No Isol.", "-", payload) / get("NW/Sched/Rest", "Sw.", payload)
	}
	if rel(500) >= rel(5) {
		t.Errorf("overhead did not drop with payload size: %.3f vs %.3f", rel(500), rel(5))
	}
	if !strings.Contains(FormatFig5(r), "NW-only") {
		t.Error("format output broken")
	}
}

func TestEstimatorOrderingMatchesMeasurement(t *testing.T) {
	// The explorer ranks candidates by estimated cost; running the
	// actual images must produce the same ordering, or the paper's
	// automated search would pick wrong points.
	libs := specDefaultImage(t)
	w := explore.DefaultWorkload()
	cands, err := explore.Explore(libs, gate.MPKShared, w)
	if err != nil {
		t.Fatal(err)
	}
	front := explore.ParetoFront(cands)
	if len(front) < 2 {
		t.Fatalf("front too small: %d", len(front))
	}
	ms, err := MeasureCandidates(front, OpGET, 50, 160)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Candidate.EstCycles > ms[i-1].Candidate.EstCycles &&
			ms[i].KReqPerSec > ms[i-1].KReqPerSec*1.02 {
			t.Errorf("estimator ordering violated: est %.0f > %.0f but measured %.1f > %.1f kreq/s",
				ms[i].Candidate.EstCycles, ms[i-1].Candidate.EstCycles,
				ms[i].KReqPerSec, ms[i-1].KReqPerSec)
		}
	}
}

func TestCandidateConfigRejectsUnknownLibraries(t *testing.T) {
	libs, err := spec.Parse("library ghost {\n[Memory access] Read(Own); Write(Own)\n[Call] -\n}")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := explore.Explore(libs, gate.MPKShared, explore.DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CandidateConfig(cands[0]); err == nil {
		t.Fatal("unknown library accepted")
	}
}

func specDefaultImage(t *testing.T) []*spec.Library {
	t.Helper()
	return spec.DefaultImage()
}

func TestRunIperfValidatesTransfer(t *testing.T) {
	if _, err := RunIperf(build.Config{Backend: gate.Backend(99)}, 1000, 100); err == nil {
		t.Fatal("bad backend accepted")
	}
}

func TestRunRedisUnknownOp(t *testing.T) {
	if _, err := RunRedis(build.Config{}, RedisOp("BOGUS"), 5, 8); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestRecordRedisMetadata(t *testing.T) {
	rec, rendered, err := RecordRedisMetadata(50, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The observed call graph must contain the architecture's key
	// edges: app->libc->netstack for data, netstack->libc semaphores,
	// libc->sched wait queues.
	for _, e := range [][3]string{
		{"app", "libc", "recv"},
		{"libc", "netstack", "recv"},
		{"netstack", "libc", "sem_up"},
		{"libc", "sched", "wake"},
	} {
		if rec.Count(e[0], e[1], e[2]) == 0 {
			t.Errorf("edge %v not observed", e)
		}
	}
	libs, err := spec.Parse(rendered)
	if err != nil {
		t.Fatalf("rendered metadata does not parse: %v", err)
	}
	if spec.HasErrors(spec.LintAll(libs)) {
		t.Fatalf("rendered metadata has lint errors")
	}
}

func TestMeasureWorkload(t *testing.T) {
	w, err := MeasureWorkload(50, 64)
	if err != nil {
		t.Fatal(err)
	}
	if w.BaseCycles <= 0 {
		t.Fatalf("BaseCycles = %f", w.BaseCycles)
	}
	// The measured rates must include the architecture's key pairs.
	for _, pair := range [][2]string{{"app", "libc"}, {"libc", "netstack"}, {"netstack", "libc"}} {
		if w.CallRates[pair] <= 0 {
			t.Errorf("no measured rate for %v", pair)
		}
	}
	// Exploring with the measured workload preserves the baseline
	// candidate's identity as cheapest among equal-security points.
	cands, err := explore.Explore(spec.DefaultImage(), gate.MPKShared, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 16 {
		t.Fatalf("candidates = %d", len(cands))
	}
	var unhardened *explore.Candidate
	for _, c := range cands {
		if c.HardenedLibs == 0 {
			unhardened = c
		}
	}
	for _, c := range cands {
		if c.HardenedLibs > 0 && c.EstCycles < unhardened.EstCycles {
			t.Errorf("hardened candidate cheaper than baseline under measured workload")
			break
		}
	}
}
