package harness

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"flexos/internal/app/iperf"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/net"
	"flexos/internal/sched"
)

// TestChaosnetRecovery pins the acceptance floor: the MPK-shared image
// at 1% per-direction frame loss must retain at least half of its
// lossless goodput — adaptive RTO plus fast retransmit turn most
// losses into a dup-ACK round trip instead of a multi-RTO stall.
func TestChaosnetRecovery(t *testing.T) {
	const (
		total   = 1 << 20
		recvBuf = 16 << 10
	)
	cfg := chaosnetConfigs()[1] // MPK-shared
	base, _, _, err := RunChaosnetIperf(cfg, total, recvBuf, 0, chaosnetSeed)
	if err != nil {
		t.Fatalf("lossless run: %v", err)
	}
	lossy, stats, wire, err := RunChaosnetIperf(cfg, total, recvBuf, 0.01, chaosnetSeed)
	if err != nil {
		t.Fatalf("lossy run: %v", err)
	}
	if wire.Dropped == 0 {
		t.Fatal("fault model dropped nothing at 1% loss")
	}
	if stats.Retransmits+stats.FastRetransmits == 0 {
		t.Fatal("no retransmissions repaired the loss")
	}
	retention := lossy.Gbps / base.Gbps * 100
	if retention < 50 {
		t.Fatalf("1%% loss retained only %.1f%% of lossless goodput (%.2f of %.2f Gb/s)",
			retention, lossy.Gbps, base.Gbps)
	}
	t.Logf("1%% loss: %.1f%% retention, %d rtx (%d fast), %d frames dropped",
		retention, stats.Retransmits, stats.FastRetransmits, wire.Dropped)
}

// TestChaosnetDeterminism replays the lossy sweep point on a 2-vCPU
// machine: the same seed must reproduce cycles, transport counters and
// wire counters bit-identically.
func TestChaosnetDeterminism(t *testing.T) {
	const (
		total   = 512 << 10
		recvBuf = 16 << 10
	)
	cfg := chaosnetConfigs()[1]
	cfg.Smp = 2
	run := func() (*IperfResult, net.Stats, net.Wire) {
		r, stats, wire, err := RunChaosnetIperf(cfg, total, recvBuf, 0.02, chaosnetSeed)
		if err != nil {
			t.Fatal(err)
		}
		return r, stats, *wire
	}
	a, as, aw := run()
	b, bs, bw := run()
	if a.ServerCycles != b.ServerCycles {
		t.Fatalf("cycle drift across replays: %d vs %d", a.ServerCycles, b.ServerCycles)
	}
	if as != bs {
		t.Fatalf("stats drift across replays:\n a: %+v\n b: %+v", as, bs)
	}
	if aw.Dropped != bw.Dropped || aw.Corrupted != bw.Corrupted ||
		aw.Duplicated != bw.Duplicated || aw.Reordered != bw.Reordered {
		t.Fatalf("wire counter drift across replays: %+v vs %+v", aw, bw)
	}
}

// TestChaosnetRestartRecoversNetDeath pins the containment tentpole: a
// permanent partition mid-transfer kills the server's connection with a
// typed NetTimeout, the nw compartment's `onfault restart` policy
// absorbs the trap (teardown + replay), and no pool buffers leak.
func TestChaosnetRestartRecoversNetDeath(t *testing.T) {
	const (
		total   = 2 << 20
		recvBuf = 16 << 10
	)
	cfg := build.Config{
		Name:         "mpk-switched",
		Compartments: build.NWOnly(),
		Backend:      gate.MPKSwitched,
		Alloc:        build.AllocPerCompartment,
		OnFault:      map[string]fault.Policy{"nw": fault.PolicyRestart},
	}
	cfg.Net.SocketMode = net.TCPIPThreadMode
	cfg.Net.RtxDelayTicks = 50
	cfg.Net.RtxLimit = 3
	cfg.Net.KeepaliveTicks = 20_000
	w, err := build.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The link dies for good shortly after the handshake and never
	// comes back: the transfer cannot finish, so the server's keepalive
	// (and the client's retransmission budget) must declare net death.
	w.Wire.ArmBoth(net.LinkFaults{Down: []net.DownWindow{{From: 300_000, To: math.MaxUint64}}})
	srv := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf)
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, total, 32<<10)
	var srvErr, cliErr error
	w.Sched.Spawn("iperf-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("iperf-client", w.Client.CPU, func(th *sched.Thread) {
		cliErr = cli.Run(th)
	})
	if err := w.Sched.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	if srvErr == nil && cliErr == nil {
		t.Fatal("transfer survived a permanent partition")
	}
	if n := w.Server.Stack.Stats().NetDeaths; n == 0 {
		t.Fatal("server stack recorded no net death")
	}
	stats := w.Server.Sup.Stats()
	if stats.Traps == 0 {
		t.Fatal("net death raised no trap at the gate boundary")
	}
	if stats.Recoveries == 0 {
		t.Fatalf("onfault restart settled no recovery: %+v", stats)
	}
	if n := w.Server.Pool.Outstanding(); n != 0 {
		t.Fatalf("net death leaked %d pool buffers", n)
	}
}

// TestChaosSoakLossy is the chaosnet arm of the chaos soak: randomized
// (seeded, so CI failures replay) drop/reorder/corrupt rates across the
// gate backends, every iteration requiring a byte-complete transfer
// and zero pool leaks. FLEXOS_SOAK_SEED pins the sequence and
// FLEXOS_LOSSY_SOAK_MS extends the wall-clock budget.
func TestChaosSoakLossy(t *testing.T) {
	seed := soakEnv("FLEXOS_SOAK_SEED", 1)
	budgetMS := soakEnv("FLEXOS_LOSSY_SOAK_MS", 400)
	r := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(time.Duration(budgetMS) * time.Millisecond)
	iters := 0
	for iters == 0 || time.Now().Before(deadline) {
		iters++
		lossySoakOnce(t, r, iters)
		if t.Failed() {
			t.Fatalf("seed %d iteration %d failed; rerun with FLEXOS_SOAK_SEED=%d", seed, iters, seed)
		}
	}
	t.Logf("lossy soak: %d iterations, seed %d", iters, seed)
}

func lossySoakOnce(t *testing.T, r *rand.Rand, iter int) {
	configs := chaosnetConfigs()
	cfg := configs[r.Intn(len(configs))]
	loss := []float64{0.001, 0.005, 0.01, 0.02}[r.Intn(4)]
	if r.Intn(2) == 1 {
		cfg.Link.Reorder = 0.01
	}
	if r.Intn(2) == 1 {
		cfg.Link.Corrupt = 0.002
	}
	total := (128 + r.Intn(256)) << 10
	res, _, wire, err := RunChaosnetIperf(cfg, total, 16<<10, loss, uint64(r.Int63())|1)
	if err != nil {
		t.Errorf("iter %d (%s, loss %v): %v", iter, cfg.Name, loss, err)
		return
	}
	if res.Bytes != uint64(total) {
		t.Errorf("iter %d: received %d bytes, want %d", iter, res.Bytes, total)
	}
	if wire.Dropped == 0 && wire.Reordered == 0 && wire.Corrupted == 0 {
		// Statistically possible on tiny transfers at 0.1%, but worth
		// noticing if it happens on every iteration.
		t.Logf("iter %d: fault model touched nothing (loss %v, %d bytes)", iter, loss, total)
	}
}

// TestChaosnetQuick smoke-tests the bench-facing sweep entry point.
func TestChaosnetQuick(t *testing.T) {
	r, err := Chaosnet(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 1 || len(r.Series[0].Points) != 2 {
		t.Fatalf("quick sweep shape: %d series, want 1 with 2 points", len(r.Series))
	}
	p0, p1 := r.Series[0].Points[0], r.Series[0].Points[1]
	if p0.RetentionPct != 100 {
		t.Fatalf("lossless point retention = %.1f%%, want 100", p0.RetentionPct)
	}
	if p1.WireDropped == 0 {
		t.Fatal("lossy point dropped nothing")
	}
	if p1.Gbps <= 0 || p1.RetentionPct <= 0 {
		t.Fatalf("lossy point unmeasured: %+v", p1)
	}
	if s := FormatChaosnet(r); s == "" {
		t.Fatal("FormatChaosnet produced nothing")
	}
}
