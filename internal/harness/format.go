package harness

import (
	"fmt"
	"strings"
)

// FormatFig3 renders the Fig. 3 sweep as an aligned text table,
// series as columns.
func FormatFig3(r *Fig3Result) string {
	var b strings.Builder
	b.WriteString("Figure 3: iperf throughput (Mb/s) vs recv buffer size\n")
	fmt.Fprintf(&b, "%-10s", "buf(B)")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteString("\n")
	if len(r.Series) == 0 {
		return b.String()
	}
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", r.Series[0].Points[i].RecvBuf)
		for _, s := range r.Series {
			fmt.Fprintf(&b, " %16.1f", s.Points[i].Mbps)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable1 renders Table 1 with measured and paper values.
func FormatTable1(r *Table1Result) string {
	var b strings.Builder
	b.WriteString("Table 1: iperf throughput with SH on various components\n")
	fmt.Fprintf(&b, "baseline (no SH): %.2f Gb/s (paper: 2.94 Gb/s)\n", r.BaselineGbps)
	fmt.Fprintf(&b, "%-20s %18s %18s %14s %14s\n",
		"Component C", "SH: all but C", "SH: C only", "paper all-but", "paper only")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %12.2f Gb/s %12.2f Gb/s %9.2f Gb/s %9.2f Gb/s\n",
			row.Component, row.AllButCGbps, row.COnlyGbps, row.PaperAllButC, row.PaperCOnly)
	}
	b.WriteString("slowdowns (x vs baseline, C only): ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s %.2fx  ", row.Component, r.BaselineGbps/row.COnlyGbps)
	}
	b.WriteString("\n")
	return b.String()
}

// FormatFig4 renders Fig. 4 grouped by payload and operation.
func FormatFig4(r *Fig4Result) string {
	var b strings.Builder
	b.WriteString("Figure 4: Redis throughput (kreq/s) under SH configs and the verified scheduler\n")
	// Collect config order as first seen.
	var configs []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Config] {
			seen[c.Config] = true
			configs = append(configs, c.Config)
		}
	}
	fmt.Fprintf(&b, "%-14s", "payload/op")
	for _, cfg := range configs {
		fmt.Fprintf(&b, " %16s", cfg)
	}
	b.WriteString("\n")
	for _, payload := range Fig4Payloads {
		for _, op := range []RedisOp{OpSET, OpGET} {
			fmt.Fprintf(&b, "%-14s", fmt.Sprintf("%dB %s", payload, op))
			for _, cfg := range configs {
				for _, c := range r.Cells {
					if c.Config == cfg && c.Op == op && c.Payload == payload {
						fmt.Fprintf(&b, " %16.1f", c.KReqS)
					}
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// FormatFig5 renders Fig. 5 grouped by model and gate flavor.
func FormatFig5(r *Fig5Result) string {
	var b strings.Builder
	b.WriteString("Figure 5: Redis GET throughput (kreq/s) with MPK isolation\n")
	var cols []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		key := c.Model + "/" + c.Stack
		if !seen[key] {
			seen[key] = true
			cols = append(cols, key)
		}
	}
	fmt.Fprintf(&b, "%-10s", "payload")
	for _, col := range cols {
		fmt.Fprintf(&b, " %18s", col)
	}
	b.WriteString("\n")
	for _, payload := range Fig4Payloads {
		fmt.Fprintf(&b, "%-10d", payload)
		for _, col := range cols {
			for _, c := range r.Cells {
				if c.Model+"/"+c.Stack == col && c.Payload == payload {
					fmt.Fprintf(&b, " %18.1f", c.KReqS)
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatCtxSwitch renders the latency microbenchmark.
func FormatCtxSwitch(r *CtxSwitchResult) string {
	return fmt.Sprintf(
		"Context switch latency\n  C scheduler:        %.1f ns (paper: %.1f ns)\n  Verified scheduler: %.1f ns (paper: %.1f ns)  (%.2fx)\n",
		r.CNanos, r.PaperCNanos, r.VerifiedNanos, r.PaperVNanos, r.VerifiedNanos/r.CNanos)
}

// FormatBlastRadius renders the fault-containment matrix.
func FormatBlastRadius(r *BlastRadiusResult) string {
	var b strings.Builder
	b.WriteString("Blast radius: injected compartment fault, per isolation backend\n")
	fmt.Fprintf(&b, "%-12s %-13s %-8s %-10s %6s %8s %12s %6s\n",
		"workload", "image", "policy", "outcome", "traps", "retries", "recovery", "leaks")
	for _, row := range r.Rows {
		recovery := "-"
		if row.RecoveryNS > 0 {
			recovery = fmt.Sprintf("%.0f ns", row.RecoveryNS)
		}
		fmt.Fprintf(&b, "%-12s %-13s %-8s %-10s %6d %8d %12s %6d\n",
			row.Workload, row.Image, row.Policy, row.Outcome,
			row.Traps, row.Retries, recovery, row.LeakedBufs)
	}
	return b.String()
}

// FormatBatching renders the crossing-amortization depth sweep.
func FormatBatching(r *BatchingResult) string {
	var b strings.Builder
	b.WriteString("Batching: gate-crossing amortization, iperf throughput per batch depth\n")
	fmt.Fprintf(&b, "%-16s %6s %12s %14s %10s %10s\n",
		"image", "depth", "Mb/s", "server cycles", "crossings", "speedup")
	for _, s := range r.Series {
		for _, p := range s.Points {
			speedup := "-"
			if p.Depth != r.Depths[0] {
				speedup = fmt.Sprintf("%.1f%%", p.SpeedupPct)
			}
			fmt.Fprintf(&b, "%-16s %6d %12.1f %14d %10d %10s\n",
				s.Label, p.Depth, p.Mbps, p.ServerCycles, p.Crossings, speedup)
		}
	}
	return b.String()
}

// FormatDataPath renders the copy-vs-shared data-path comparison.
func FormatDataPath(r *DataPathResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data path: shared descriptors vs boundary copies (%s)\n", r.Label)
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %10s\n",
		"buf(B)", "shared Mb/s", "copy Mb/s", "copy cycles", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10d %14.1f %14.1f %14d %9.1f%%\n",
			p.RecvBuf, p.SharedMbps, p.CopyMbps, p.CopyCycles, p.SpeedupPct)
	}
	return b.String()
}

// FormatSmp renders the SMP scaling sweep.
func FormatSmp(r *SmpResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SMP: %d-stream parallel iperf, throughput per vCPU count\n", r.Streams)
	fmt.Fprintf(&b, "%-18s %6s %12s %9s %8s %8s %10s %9s %8s\n",
		"image", "vcpus", "Mb/s", "speedup", "steals", "ipis", "rpc-stall", "crossing", "stall")
	for _, s := range r.Series {
		for _, p := range s.Points {
			speedup := "-"
			if p.VCPUs != r.VCPUs[0] {
				speedup = fmt.Sprintf("%.2fx", p.SpeedupX)
			}
			stall := "-"
			if p.StallPct > 0 {
				stall = fmt.Sprintf("%.1f%%", p.StallPct)
			}
			fmt.Fprintf(&b, "%-18s %6d %12.1f %9s %8d %8d %10s %8.1f%% %7.1f%%\n",
				s.Label, p.VCPUs, p.Mbps, speedup, p.Steals, p.IPIs, stall,
				p.Attr.CrossingPct, p.Attr.StallPct)
		}
	}
	return b.String()
}

// FormatChaosnet renders the lossy-link sweep.
func FormatChaosnet(r *ChaosnetResult) string {
	var b strings.Builder
	b.WriteString("Chaosnet: iperf goodput under adversarial frame loss\n")
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %12s %6s %9s %6s %9s\n",
		"image", "loss", "Gb/s", "retention", "recovery(Mc)", "rtx", "fast-rtx", "ooo", "dropped")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-18s %7.2f%% %10.3f %9.1f%% %12.2f %6d %9d %6d %9d\n",
				s.Label, p.Loss*100, p.Gbps, p.RetentionPct,
				float64(p.RecoveryCycles)/1e6, p.Retransmits, p.FastRetransmits,
				p.OOOQueued, p.WireDropped)
		}
	}
	return b.String()
}
