package harness

import (
	"fmt"
	"strings"

	"flexos/internal/core/build"
	"flexos/internal/core/explore"
	"flexos/internal/sh"
)

// CandidateConfig turns a design-space candidate (a variant choice
// plus its coloring) into a buildable image configuration: one
// compartment per color, SH profiles for the hardened variants, and
// the candidate's backend.
func CandidateConfig(c *explore.Candidate) (build.Config, error) {
	cfg := build.Config{
		Name:    "candidate",
		Backend: c.Backend,
		Alloc:   build.AllocPerLibrary,
	}
	known := map[string]bool{}
	for _, l := range build.DefaultLibraries {
		known[l] = true
	}
	for i, comp := range c.Plan.Compartments {
		bc := build.Compartment{Name: fmt.Sprintf("comp%d", i)}
		for _, variant := range comp {
			base := variant
			if p := strings.Index(variant, "+"); p >= 0 {
				base = variant[:p]
			}
			if !known[base] {
				return cfg, fmt.Errorf("harness: candidate library %q is not a default image library", base)
			}
			bc.Libraries = append(bc.Libraries, base)
			if base != variant {
				if cfg.SH == nil {
					cfg.SH = make(map[string]sh.Profile)
				}
				cfg.SH[base] = SHProfile
			}
		}
		cfg.Compartments = append(cfg.Compartments, bc)
	}
	return cfg, nil
}

// MeasuredCandidate pairs a candidate with its measured throughput.
type MeasuredCandidate struct {
	Candidate  *explore.Candidate
	KReqPerSec float64
	// Slowdown is measured against the first (baseline) candidate
	// handed to MeasureCandidates.
	Slowdown float64
}

// MeasureCandidates runs the Redis workload on every candidate and
// reports measured throughput — the ground truth the explorer's cost
// estimates approximate. The first result's throughput is the
// slowdown reference.
func MeasureCandidates(cands []*explore.Candidate, op RedisOp, payload, ops int) ([]MeasuredCandidate, error) {
	out := make([]MeasuredCandidate, 0, len(cands))
	var base float64
	for _, c := range cands {
		cfg, err := CandidateConfig(c)
		if err != nil {
			return nil, err
		}
		r, err := RunRedis(cfg, op, payload, ops)
		if err != nil {
			return nil, fmt.Errorf("measuring %s: %w", c.Describe(), err)
		}
		if base == 0 {
			base = r.KReqPerSec
		}
		out = append(out, MeasuredCandidate{
			Candidate:  c,
			KReqPerSec: r.KReqPerSec,
			Slowdown:   base / r.KReqPerSec,
		})
	}
	return out, nil
}
