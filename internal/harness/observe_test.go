package harness

import (
	"bytes"
	"testing"

	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/trace"
)

// TestAttributionConservation is the observability layer's core
// invariant, across every isolation backend at 1 and 4 vCPUs: the
// attribution assigns every cycle of machine capacity (makespan ×
// vCPUs) to exactly one (vCPU, component) row — per-vCPU sums equal
// the makespan (trailing idle included), and the total equals the
// machine's elapsed time times its vCPU count.
func TestAttributionConservation(t *testing.T) {
	backends := []gate.Backend{
		gate.FuncCall, gate.MPKShared, gate.MPKSwitched, gate.VMRPC, gate.CHERI,
	}
	for _, b := range backends {
		for _, smp := range []int{1, 4} {
			b, smp := b, smp
			t.Run(b.String()+"/"+string(rune('0'+smp))+"vcpu", func(t *testing.T) {
				cfg := build.Config{
					Name: "conservation", Compartments: build.NWOnly(),
					Backend: b, Alloc: build.AllocPerCompartment,
				}
				if smp > 1 {
					cfg.Smp = smp
				}
				r, _, w, err := runIperfParallelWorld(cfg, 4, 1<<20, 16<<10, 0)
				if err != nil {
					t.Fatal(err)
				}
				a := r.Attr
				if a == nil {
					t.Fatal("no attribution on SmpRun")
				}
				if a.VCPUs != smp {
					t.Fatalf("attribution covers %d vCPUs, want %d", a.VCPUs, smp)
				}
				if a.Makespan != w.Server.Clock.Makespan() {
					t.Fatalf("attribution makespan %d != clock elapsed %d",
						a.Makespan, w.Server.Clock.Makespan())
				}
				if err := a.Check(); err != nil {
					t.Fatalf("conservation: %v", err)
				}
				if got, want := a.Attributed(), a.Makespan*uint64(smp); got != want {
					t.Fatalf("attributed %d cycles, capacity is %d", got, want)
				}
				// A compartmentalized run must show crossing-class work.
				if by := a.ByClass(); by["crossing"] == 0 {
					t.Fatalf("no crossing-class cycles on backend %s: %v", b, by)
				}
			})
		}
	}
}

// TestAttributionSurvivesSaturatedRing pins the live-counter fix: with
// a trace ring far too small for the run (so it drops most events),
// the attribution and the metrics snapshot must still be exact — they
// read the clock ledgers and live gate counters, never the ring.
func TestAttributionSurvivesSaturatedRing(t *testing.T) {
	cfg := build.Config{
		Name: "saturated", Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment, Smp: 4,
	}
	const tinyRing = 8
	r, ring, w, err := runIperfParallelWorld(cfg, 4, 1<<20, 16<<10, tinyRing)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() == 0 {
		t.Fatalf("ring of %d held all %d events; the test needs saturation", tinyRing, ring.Total())
	}
	if err := r.Attr.Check(); err != nil {
		t.Fatalf("attribution lost cycles under a saturated ring: %v", err)
	}
	snap := w.Server.MetricsSnapshot()
	if got, want := snap.Counter("gate_crossings"), w.Server.Registry.TotalCrossings(); got != want {
		t.Fatalf("metered crossings %d != registry crossings %d (ring dropped %d)",
			got, want, ring.Dropped())
	}
	if snap.Counter("gate_frames") < snap.Counter("gate_crossings") {
		t.Fatalf("frames %d < crossings %d", snap.Counter("gate_frames"), snap.Counter("gate_crossings"))
	}
	// The same run untraced attributes identically: tracing is
	// observation, not perturbation.
	r2, _, _, err := runIperfParallelWorld(cfg, 4, 1<<20, 16<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Attr.Attributed() != r2.Attr.Attributed() || r.Attr.Makespan != r2.Attr.Makespan {
		t.Fatalf("traced run attributed %d cy (makespan %d), untraced %d cy (makespan %d)",
			r.Attr.Attributed(), r.Attr.Makespan, r2.Attr.Attributed(), r2.Attr.Makespan)
	}
}

// TestObserveForSmp exercises the binary-facing bundle: conservation
// holds, snapshots carry the live counters, and the trace exports to a
// valid Chrome trace-event document.
func TestObserveForSmp(t *testing.T) {
	obs, err := ObserveFor("smp", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(smpConfigs()) {
		t.Fatalf("observed %d images, want %d", len(obs), len(smpConfigs()))
	}
	for _, o := range obs {
		if err := o.Attr.Check(); err != nil {
			t.Fatalf("%s: %v", o.Label, err)
		}
		if o.Snapshot.Counter("gate_crossings") == 0 {
			t.Fatalf("%s: no live crossing counters in snapshot", o.Label)
		}
		var buf bytes.Buffer
		if err := trace.ExportChrome(&buf, o.Events, o.VCPUs); err != nil {
			t.Fatalf("%s: export: %v", o.Label, err)
		}
		if _, err := trace.ValidateChrome(buf.Bytes()); err != nil {
			t.Fatalf("%s: exported trace invalid: %v", o.Label, err)
		}
	}
}
