package harness

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"flexos/internal/app/iperf"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// TestOverloadMatrix is the acceptance check for the overload-control
// story: as offered load grows past saturation, the oblivious server's
// goodput collapses while the shedding server degrades gracefully on
// every isolating backend, the control plane demonstrably refuses work
// (admission sheds + gate deadline traps), and the circuit breaker
// opens under a hopeless budget and re-closes via its half-open probe
// without losing the transfer.
func TestOverloadMatrix(t *testing.T) {
	res, err := Overload()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]OverloadRow{}
	for _, r := range res.Rows {
		rows[fmt.Sprintf("%s/%s/%s/%d", r.Workload, r.Image, r.Mode, r.Load)] = r
	}
	get := func(key string) OverloadRow {
		t.Helper()
		r, ok := rows[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		return r
	}

	// The direct image has no enforcement points (funcGate has no trap
	// boundary and no deadline check), so it has no shed rows at all.
	for key := range rows {
		if r := rows[key]; r.Image == "direct" && r.Mode == "shed" {
			t.Errorf("%s: the direct image must not have a shed mode", key)
		}
	}

	for _, img := range []string{"mpk-switched", "vm-rpc"} {
		// Redis: at the deepest pipeline the oblivious server burns full
		// service cost on stale commands (Late grows, goodput drops below
		// the previous sweep point), while the shedding server answers
		// them -BUSY and keeps its goodput above the oblivious one.
		no16 := get("redis-get/" + img + "/noshed/16")
		no32 := get("redis-get/" + img + "/noshed/32")
		sh32 := get("redis-get/" + img + "/shed/32")
		if no32.Late == 0 {
			t.Errorf("redis %s noshed/32: no late commands; the sweep never saturates", img)
		}
		if no32.Goodput >= no16.Goodput {
			t.Errorf("redis %s noshed: goodput %0.1f at depth 32 >= %0.1f at depth 16; no collapse",
				img, no32.Goodput, no16.Goodput)
		}
		if sh32.Shed == 0 {
			t.Errorf("redis %s shed/32: nothing shed", img)
		}
		if sh32.Late != 0 {
			t.Errorf("redis %s shed/32: %d late commands served; enforcement leaked", img, sh32.Late)
		}
		if sh32.Goodput <= no32.Goodput {
			t.Errorf("redis %s depth 32: shed goodput %0.1f <= noshed %0.1f",
				img, sh32.Goodput, no32.Goodput)
		}

		// iperf: at the highest connection count the shedding server
		// keeps serving fresh data while the oblivious one collapses.
		no1 := get("iperf-tcp/" + img + "/noshed/1")
		no8 := get("iperf-tcp/" + img + "/noshed/8")
		sh8 := get("iperf-tcp/" + img + "/shed/8")
		if no8.Goodput >= no1.Goodput/2 {
			t.Errorf("iperf %s noshed: goodput %0.1f at 8 conns >= half of %0.1f unloaded; no collapse",
				img, no8.Goodput, no1.Goodput)
		}
		if sh8.Good == 0 {
			t.Errorf("iperf %s shed/8: zero goodput; shedding failed to protect fresh work", img)
		}
		if sh8.Shed == 0 {
			t.Errorf("iperf %s shed/8: nothing shed", img)
		}
		if sh8.Goodput <= no8.Goodput {
			t.Errorf("iperf %s 8 conns: shed goodput %0.1f <= noshed %0.1f",
				img, sh8.Goodput, no8.Goodput)
		}

		// The supervisor must have seen the refusals, not just the app.
		var planeActivity uint64
		for _, r := range res.Rows {
			if r.Image == img && r.Mode == "shed" {
				planeActivity += r.SupSheds + r.SupDeadlineTraps
			}
		}
		if planeActivity == 0 {
			t.Errorf("%s: no admission sheds or deadline traps reached the supervisor", img)
		}
	}

	// Breaker leg: trips open, re-closes via the half-open probe, and
	// the transfer still completes.
	d := res.Breaker
	if d.Opens == 0 || d.Closes == 0 {
		t.Errorf("breaker: opens=%d closes=%d, want both > 0", d.Opens, d.Closes)
	}
	if d.FastFails == 0 {
		t.Errorf("breaker: no fast-fails; the open state never refused a call")
	}
	if d.FinalState != "closed" {
		t.Errorf("breaker: final state %q, want closed", d.FinalState)
	}
	if !d.Completed {
		t.Errorf("breaker: the transfer did not complete")
	}
}

// TestOverloadBusyReplies checks the client's view of shedding: a shed
// command is answered -BUSY over the live connection, one reply per
// shed, instead of wedging or dropping the connection.
func TestOverloadBusyReplies(t *testing.T) {
	img := overloadImage{name: "mpk-switched", backend: gate.MPKSwitched}
	cal1, err := runRedisOverload(redisOverloadConfig(img, false), 0, false, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	cal32, err := runRedisOverload(redisOverloadConfig(img, false), 0, false, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	var marginal uint64
	if cal32.maxAge > cal1.maxAge {
		marginal = (cal32.maxAge - cal1.maxAge) / 31
	}
	budget := 2*cal1.maxAge + redisBudgetFactor*marginal
	m, err := runRedisOverload(redisOverloadConfig(img, true), budget, true, 32, redisOverloadOps)
	if err != nil {
		t.Fatal(err)
	}
	if m.shed == 0 {
		t.Fatal("no commands shed at depth 32")
	}
	if m.busy != m.shed {
		t.Fatalf("client saw %d -BUSY replies, server shed %d commands", m.busy, m.shed)
	}
}

// TestOverloadDeterminism pins the virtual-time property: the same
// image under the same offered load measures identically, field for
// field, across runs.
func TestOverloadDeterminism(t *testing.T) {
	img := overloadImage{name: "mpk-switched", backend: gate.MPKSwitched}
	const budget = 60_000
	a, err := runIperfOverload(iperfOverloadConfig(img, true), budget, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runIperfOverload(iperfOverloadConfig(img, true), budget, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.cycles != b.cycles || a.good != b.good || a.late != b.late ||
		a.sheds != b.sheds || a.recvs != b.recvs {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

// soakEnv reads an integer knob from the environment (the CI soak job
// turns these up; the default keeps `go test` fast).
func soakEnv(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// TestChaosSoak combines the fault injector with overload bursts on a
// restart+breaker image: every iteration randomizes (from a seeded
// source, so CI runs are reproducible) the injection point, the leak
// size, the service budget, and the breaker tuning, and requires the
// run to terminate with the transfer complete, zero pool leaks, and no
// scheduler deadlock. FLEXOS_SOAK_SEED pins the sequence and
// FLEXOS_SOAK_MS extends the wall-clock budget (the push-to-main CI
// job runs ~20s; the default is a quick smoke).
func TestChaosSoak(t *testing.T) {
	seed := soakEnv("FLEXOS_SOAK_SEED", 1)
	budgetMS := soakEnv("FLEXOS_SOAK_MS", 400)
	r := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(time.Duration(budgetMS) * time.Millisecond)
	iters := 0
	for iters == 0 || time.Now().Before(deadline) {
		iters++
		soakOnce(t, r, iters)
		if t.Failed() {
			t.Fatalf("seed %d iteration %d failed; rerun with FLEXOS_SOAK_SEED=%d", seed, iters, seed)
		}
	}
	t.Logf("chaos soak: %d iterations, seed %d", iters, seed)
}

// soakOnce is one randomized chaos round: an MPK-switched restart image
// with deadline-policy admission and a breaker on the network stack, a
// mid-transfer injected fault that strands pool buffers, and an
// overload-tight budget that keeps the shedding and recovery paths hot
// while the supervisor restarts the compartment under them.
func soakOnce(t *testing.T, r *rand.Rand, iter int) {
	img := overloadImage{name: "mpk-switched", backend: gate.MPKSwitched}
	cfg := iperfOverloadConfig(img, true)
	cfg.Net.SocketMode = net.TCPIPThreadMode
	cfg.OnFault = map[string]fault.Policy{"nw": fault.PolicyRestart}
	cfg.Breaker = map[string]rt.BreakerSpec{"nw": {
		Threshold: 2 + r.Intn(4),
		Window:    128 + r.Intn(256),
		Cooldown:  uint64(10_000 + r.Intn(60_000)),
	}}
	w, err := build.NewWorld(cfg)
	if err != nil {
		t.Fatalf("iter %d: %v", iter, err)
	}
	in := fault.NewInjector()
	in.Arm(fault.Injection{
		Lib:      "netstack",
		Fn:       "recv",
		After:    uint64(2 + r.Intn(12)),
		Kind:     fault.KindMPK,
		LeakBufs: r.Intn(3),
	})
	w.Server.InjectFaults(in)

	conns := 1 + r.Intn(2)
	budget := uint64(10_000 + r.Intn(120_000))
	srvs := make([]*iperf.Server, conns)
	var srvErr, cliErr error
	for i := 0; i < conns; i++ {
		s := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack,
			uint16(5001+i), iperfOverloadRecv)
		s.Budget = budget
		s.Enforce = true
		s.ProcFactor = iperfProcFactor
		srvs[i] = s
		w.Sched.Spawn(fmt.Sprintf("iperf-server-%d", i), w.Server.CPU, func(th *sched.Thread) {
			if err := s.RunOverload(th); err != nil && srvErr == nil {
				srvErr = err
			}
		})
		c := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), uint16(5001+i), iperfOverloadBytes, iperfOverloadWrite)
		w.Sched.Spawn(fmt.Sprintf("iperf-client-%d", i), w.Client.CPU, func(th *sched.Thread) {
			if err := c.Run(th); err != nil && cliErr == nil {
				cliErr = err
			}
		})
	}
	if err := w.Sched.Run(); err != nil {
		t.Errorf("iter %d: scheduler: %v", iter, err)
		return
	}
	if srvErr != nil || cliErr != nil {
		t.Errorf("iter %d: server err %v, client err %v", iter, srvErr, cliErr)
		return
	}
	if in.Fired() == 0 {
		t.Errorf("iter %d: injection never fired", iter)
	}
	var received uint64
	for _, s := range srvs {
		received += s.BytesReceived
	}
	if want := uint64(conns) * iperfOverloadBytes; received != want {
		t.Errorf("iter %d: received %d bytes, want %d", iter, received, want)
	}
	if err := checkPoolLeaks(w); err != nil {
		t.Errorf("iter %d: %v", iter, err)
	}
}
