package harness

import (
	"fmt"

	"flexos/internal/app/iperf"
	"flexos/internal/app/redis"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// The overload experiment drives each image past its saturation point
// and measures *goodput* — work completed within its service budget —
// as offered load grows. An isolated compartment behind an expensive
// gate is a queueing system: once offered load exceeds its service
// rate, an oblivious server burns full crossing + service cost on
// requests whose answers are already worthless, so goodput collapses.
// With the overload-control plane on (deadline propagation through the
// gates plus deadline-policy admission in the supervisor), stale work
// is shed before the crossing at ~1/10th the cost of serving it, and
// goodput plateaus instead. The direct image has no enforcement points
// — funcGate has no trap boundary and no deadline check — which is the
// flip side of the blast-radius result: no isolation, no control.
//
// All measurements are virtual-time and deterministic. Budgets are
// self-calibrated per image from the unloaded per-request cost, so the
// curves stay meaningful as gate cost constants evolve.

// OverloadRow is one (workload, image, mode, load) measurement.
type OverloadRow struct {
	Workload string  // "redis-get" or "iperf-tcp"
	Image    string  // backend label
	Mode     string  // "shed" (budgets enforced) or "noshed" (accounting only)
	Load     int     // offered-load knob: pipeline depth (redis), connections (iperf)
	Offered  uint64  // requests issued (redis) / bytes sent (iperf)
	Good     uint64  // served within budget
	Late     uint64  // served past budget
	Shed     uint64  // refused by the control plane, answered cheaply
	Goodput  float64 // good kreq/s (redis) / good Mb/s (iperf)

	// Supervisor-side view of the same run.
	SupSheds         uint64 // admission-queue sheds
	SupDeadlineTraps uint64 // gate deadline refusals
}

// BreakerDemo is the circuit-breaker leg: an iperf burst against a
// breaker-protected network stack under a deliberately hopeless budget.
// Repeated sheds trip the breaker open; the server's undeadlined
// recovery drain backs off through the cooldown, becomes the half-open
// probe, and re-closes the breaker — and the transfer still completes.
type BreakerDemo struct {
	Image      string
	Opens      uint64 // open transitions (threshold trips + failed probes)
	Closes     uint64 // successful half-open probes
	FastFails  uint64 // calls failed without crossing while open
	Sheds      uint64 // admission sheds that fed the breaker
	FinalState string // breaker state after the run
	Completed  bool   // the full transfer arrived despite the storm
}

// OverloadResult is the full goodput-vs-offered-load matrix.
type OverloadResult struct {
	Rows    []OverloadRow
	Breaker BreakerDemo
}

// Experiment scale. Budgets are multiples of the measured unloaded
// per-request cost: large enough that an unloaded image is comfortably
// inside them, small enough that deep pipelines / many connections
// push requests past them.
const (
	redisOverloadOps    = 128
	redisOverloadKeys   = 16
	redisBudgetFactor   = 4
	iperfOverloadBytes  = 96 << 10 // per connection
	iperfOverloadRecv   = 4 << 10
	iperfOverloadWrite  = 8 << 10
	iperfOverloadWindow = 16 << 10 // rcv window cap: bounds queueing
	iperfBudgetFactor   = 12
	iperfProcFactor     = 14
	// The breaker leg uses a budget below the unloaded service cost so
	// sheds are guaranteed, and a cooldown long enough to watch the
	// half-open cycle but short enough that the transfer finishes.
	breakerThreshold = 4
	breakerWindow    = 256
	breakerCooldown  = 40_000
)

var (
	redisOverloadBatches = []int{1, 4, 16, 32}
	iperfOverloadConns   = []int{1, 2, 4, 8}
)

// overloadImage is one backend column of the matrix.
type overloadImage struct {
	name    string
	backend gate.Backend
}

func overloadImages() []overloadImage {
	return []overloadImage{
		{name: "direct", backend: gate.FuncCall},
		{name: "mpk-switched", backend: gate.MPKSwitched},
		{name: "vm-rpc", backend: gate.VMRPC},
	}
}

// redisOverloadConfig builds the {libc | rest} image with the store's
// bulk path behind the gate; shed mode arms deadline-policy admission
// in front of it.
func redisOverloadConfig(img overloadImage, shed bool) build.Config {
	cfg := build.Config{
		Name:    img.name,
		Backend: img.backend,
		Alloc:   build.AllocPerCompartment,
	}
	if img.backend == gate.FuncCall {
		cfg.Compartments = build.SingleCompartment()
	} else {
		cfg.Compartments = lcIsolated()
		if shed {
			cfg.Overload = map[string]rt.OverloadSpec{"lc": {Policy: fault.ShedPolicyDeadline}}
		}
	}
	return cfg
}

// iperfOverloadConfig builds the {netstack | rest} image; shed mode
// arms deadline-policy admission in front of the stack.
func iperfOverloadConfig(img overloadImage, shed bool) build.Config {
	cfg := build.Config{
		Name:    img.name,
		Backend: img.backend,
		Alloc:   build.AllocPerCompartment,
	}
	cfg.Net.RecvBuf = iperfOverloadWindow
	if img.backend == gate.FuncCall {
		cfg.Compartments = build.SingleCompartment()
	} else {
		cfg.Compartments = build.NWOnly()
		if shed {
			cfg.Overload = map[string]rt.OverloadSpec{"nw": {Policy: fault.ShedPolicyDeadline}}
		}
	}
	return cfg
}

// redisOverloadMeasure is the raw outcome of one redis overload run.
type redisOverloadMeasure struct {
	cycles             uint64
	good, late, shed   uint64
	busy               uint64 // client-observed -BUSY replies
	maxAge             uint64 // worst command age seen by the server
	supSheds, supTraps uint64
}

// runRedisOverload runs ops pipelined GETs in batches of batch against
// a server with the given budget, measuring from after warmup. The
// client tolerates -BUSY replies — that is the point of shedding: the
// connection survives, only the stale requests are refused.
func runRedisOverload(cfg build.Config, budget uint64, enforce bool, batch, ops int) (*redisOverloadMeasure, error) {
	cfg.Net.SocketMode = net.TCPIPThreadMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	srv := redis.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	srv.Budget = budget
	srv.Enforce = enforce
	m := &redisOverloadMeasure{}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	var srvErr, cliErr error
	w.Sched.Spawn("redis-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("redis-client", w.Client.CPU, func(th *sched.Thread) {
		c := redis.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 6379)
		if cliErr = c.Connect(th); cliErr != nil {
			return
		}
		for i := 0; i < redisOverloadKeys; i++ {
			if cliErr = c.Set(th, fmt.Sprintf("key:%d", i), payload); cliErr != nil {
				return
			}
		}
		startCycles := w.Server.CPU.Cycles()
		startGood, startLate, startShed := srv.Good, srv.Late, srv.Shed
		srv.MaxAge = 0 // exclude warmup SETs from the age calibration
		stats0 := w.Server.Sup.Stats()
		issued := 0
		for issued < ops {
			b := batch
			if b > ops-issued {
				b = ops - issued
			}
			cmds := make([][][]byte, 0, b)
			for i := 0; i < b; i++ {
				key := []byte(fmt.Sprintf("key:%d", (issued+i)%redisOverloadKeys))
				cmds = append(cmds, [][]byte{[]byte("GET"), key})
			}
			replies, err := c.DoPipelined(th, cmds)
			if err != nil {
				cliErr = err
				return
			}
			for _, r := range replies {
				if len(r) > 0 && r[0] == '-' {
					m.busy++
				}
			}
			issued += b
		}
		m.cycles = w.Server.CPU.Cycles() - startCycles
		m.good = srv.Good - startGood
		m.late = srv.Late - startLate
		m.shed = srv.Shed - startShed
		m.maxAge = srv.MaxAge
		stats1 := w.Server.Sup.Stats()
		m.supSheds = stats1.Sheds - stats0.Sheds
		m.supTraps = stats1.DeadlineTraps - stats0.DeadlineTraps
		cliErr = c.Close(th)
	})
	if err := w.Sched.Run(); err != nil {
		return nil, fmt.Errorf("harness overload redis: %w", err)
	}
	if srvErr != nil {
		return nil, fmt.Errorf("harness overload redis server: %w", srvErr)
	}
	if cliErr != nil {
		return nil, fmt.Errorf("harness overload redis client: %w", cliErr)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, err
	}
	return m, nil
}

// iperfOverloadMeasure is the raw outcome of one iperf overload run.
type iperfOverloadMeasure struct {
	cycles             uint64
	received           uint64
	good, late         uint64
	sheds              uint64
	recvs              uint64
	supSheds, supTraps uint64
	stats              rt.SupervisorStats
	breakerState       string
}

// runIperfOverload runs conns concurrent transfers (one server drain
// thread and one client each, on ports 5001+i) with the given per-drain
// budget, all sharing the server CPU — offered load scales with conns.
func runIperfOverload(cfg build.Config, budget uint64, enforce bool, conns int) (*iperfOverloadMeasure, error) {
	cfg.Net.SocketMode = net.TCPIPThreadMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	srvs := make([]*iperf.Server, conns)
	var srvErr, cliErr error
	for i := 0; i < conns; i++ {
		s := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack,
			uint16(5001+i), iperfOverloadRecv)
		s.Budget = budget
		s.Enforce = enforce
		s.ProcFactor = iperfProcFactor
		srvs[i] = s
		w.Sched.Spawn(fmt.Sprintf("iperf-server-%d", i), w.Server.CPU, func(th *sched.Thread) {
			if err := s.RunOverload(th); err != nil && srvErr == nil {
				srvErr = err
			}
		})
		c := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), uint16(5001+i), iperfOverloadBytes, iperfOverloadWrite)
		w.Sched.Spawn(fmt.Sprintf("iperf-client-%d", i), w.Client.CPU, func(th *sched.Thread) {
			if err := c.Run(th); err != nil && cliErr == nil {
				cliErr = err
			}
		})
	}
	if err := w.Sched.Run(); err != nil {
		return nil, fmt.Errorf("harness overload iperf: %w", err)
	}
	if srvErr != nil {
		return nil, fmt.Errorf("harness overload iperf server: %w", srvErr)
	}
	if cliErr != nil {
		return nil, fmt.Errorf("harness overload iperf client: %w", cliErr)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, err
	}
	m := &iperfOverloadMeasure{cycles: w.Server.CPU.Cycles()}
	for _, s := range srvs {
		m.received += s.BytesReceived
		m.good += s.GoodBytes
		m.late += s.LateBytes
		m.sheds += s.Sheds
		m.recvs += s.Recvs
	}
	m.stats = w.Server.Sup.Stats()
	m.supSheds = m.stats.Sheds
	m.supTraps = m.stats.DeadlineTraps
	m.breakerState = w.Server.Sup.BreakerState("nw")
	return m, nil
}

// redisOverloadRows sweeps pipeline depth for one image.
func redisOverloadRows(img overloadImage) ([]OverloadRow, error) {
	// Self-calibrate from two probes that measure command *ages*
	// directly (completion minus wire arrival). Depth 1 gives the base
	// age of an unqueued request; depth 32 gives the worst age in a
	// deep batch, whose slope over the batch is the marginal queueing
	// cost per pipelined command. Budget = 2·base + factor·marginal:
	// shallow pipelines sit comfortably inside it, deep ones queue
	// their tail commands past it — which is the overload signal.
	cal1, err := runRedisOverload(redisOverloadConfig(img, false), 0, false, 1, 64)
	if err != nil {
		return nil, fmt.Errorf("calibration depth 1: %w", err)
	}
	cal32, err := runRedisOverload(redisOverloadConfig(img, false), 0, false, 32, 64)
	if err != nil {
		return nil, fmt.Errorf("calibration depth 32: %w", err)
	}
	var marginal uint64
	if cal32.maxAge > cal1.maxAge {
		marginal = (cal32.maxAge - cal1.maxAge) / 31
	}
	budget := 2*cal1.maxAge + redisBudgetFactor*marginal
	modes := []string{"noshed"}
	if img.backend != gate.FuncCall {
		modes = append(modes, "shed")
	}
	var rows []OverloadRow
	for _, mode := range modes {
		shed := mode == "shed"
		for _, batch := range redisOverloadBatches {
			m, err := runRedisOverload(redisOverloadConfig(img, shed), budget, shed,
				batch, redisOverloadOps)
			if err != nil {
				return nil, fmt.Errorf("batch %d %s: %w", batch, mode, err)
			}
			rows = append(rows, OverloadRow{
				Workload: "redis-get",
				Image:    img.name,
				Mode:     mode,
				Load:     batch,
				Offered:  redisOverloadOps,
				Good:     m.good,
				Late:     m.late,
				Shed:     m.shed,
				Goodput:  clock.OpsPerSec(m.good, m.cycles) / 1e3,
				SupSheds: m.supSheds, SupDeadlineTraps: m.supTraps,
			})
		}
	}
	return rows, nil
}

// iperfOverloadRows sweeps connection count for one image.
func iperfOverloadRows(img overloadImage) ([]OverloadRow, uint64, error) {
	cal, err := runIperfOverload(iperfOverloadConfig(img, false), 0, false, 1)
	if err != nil {
		return nil, 0, fmt.Errorf("calibration: %w", err)
	}
	if cal.recvs == 0 {
		return nil, 0, fmt.Errorf("calibration: no drains")
	}
	budget := iperfBudgetFactor * (cal.cycles / cal.recvs)
	modes := []string{"noshed"}
	if img.backend != gate.FuncCall {
		modes = append(modes, "shed")
	}
	var rows []OverloadRow
	for _, mode := range modes {
		shed := mode == "shed"
		for _, conns := range iperfOverloadConns {
			m, err := runIperfOverload(iperfOverloadConfig(img, shed), budget, shed, conns)
			if err != nil {
				return nil, 0, fmt.Errorf("conns %d %s: %w", conns, mode, err)
			}
			rows = append(rows, OverloadRow{
				Workload: "iperf-tcp",
				Image:    img.name,
				Mode:     mode,
				Load:     conns,
				Offered:  uint64(conns) * iperfOverloadBytes,
				Good:     m.good,
				Late:     m.late,
				Shed:     m.sheds,
				Goodput:  clock.GbpsFor(m.good, m.cycles) * 1e3,
				SupSheds: m.supSheds, SupDeadlineTraps: m.supTraps,
			})
		}
	}
	return rows, budget, nil
}

// runBreakerDemo runs the breaker leg on the MPK-switched iperf image:
// a budget below the unloaded drain cost guarantees sheds, the sheds
// trip the breaker, and the run must still complete — the recovery
// drain carries the half-open probe that closes it again.
func runBreakerDemo(calibratedBudget uint64) (*BreakerDemo, error) {
	img := overloadImage{name: "mpk-switched", backend: gate.MPKSwitched}
	cfg := iperfOverloadConfig(img, true)
	cfg.Breaker = map[string]rt.BreakerSpec{
		"nw": {Threshold: breakerThreshold, Window: breakerWindow, Cooldown: breakerCooldown},
	}
	// A fraction of the *unloaded* per-drain cost: even fresh data
	// cannot be served in budget, so the deadlined path sheds every
	// time it is tried.
	budget := calibratedBudget / (2 * iperfBudgetFactor)
	if budget == 0 {
		budget = 1
	}
	m, err := runIperfOverload(cfg, budget, true, 2)
	if err != nil {
		return nil, err
	}
	return &BreakerDemo{
		Image:      img.name,
		Opens:      m.stats.BreakerOpens,
		Closes:     m.stats.BreakerCloses,
		FastFails:  m.stats.BreakerFastFails,
		Sheds:      m.stats.Sheds,
		FinalState: m.breakerState,
		Completed:  m.received == 2*iperfOverloadBytes,
	}, nil
}

// Overload runs the full goodput-vs-offered-load matrix plus the
// circuit-breaker demonstration.
func Overload() (*OverloadResult, error) {
	res := &OverloadResult{}
	var mpkIperfBudget uint64
	for _, img := range overloadImages() {
		rows, err := redisOverloadRows(img)
		if err != nil {
			return nil, fmt.Errorf("harness overload redis/%s: %w", img.name, err)
		}
		res.Rows = append(res.Rows, rows...)
	}
	for _, img := range overloadImages() {
		rows, budget, err := iperfOverloadRows(img)
		if err != nil {
			return nil, fmt.Errorf("harness overload iperf/%s: %w", img.name, err)
		}
		if img.backend == gate.MPKSwitched {
			mpkIperfBudget = budget
		}
		res.Rows = append(res.Rows, rows...)
	}
	demo, err := runBreakerDemo(mpkIperfBudget)
	if err != nil {
		return nil, fmt.Errorf("harness overload breaker: %w", err)
	}
	res.Breaker = *demo
	return res, nil
}

// FormatOverload renders the matrix and the breaker leg.
func FormatOverload(r *OverloadResult) string {
	var b []byte
	line := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	line("Overload: goodput vs offered load, per isolation backend\n")
	line("%-10s %-13s %-7s %5s %8s %8s %8s %8s %10s %9s %7s\n",
		"workload", "image", "mode", "load", "offered", "good", "late", "shed",
		"goodput", "supsheds", "dtraps")
	unit := func(w string) string {
		if w == "redis-get" {
			return "kreq/s"
		}
		return "Mb/s"
	}
	for _, row := range r.Rows {
		line("%-10s %-13s %-7s %5d %8d %8d %8d %8d %7.1f %s %9d %7d\n",
			row.Workload, row.Image, row.Mode, row.Load, row.Offered,
			row.Good, row.Late, row.Shed, row.Goodput, unit(row.Workload),
			row.SupSheds, row.SupDeadlineTraps)
	}
	d := r.Breaker
	line("Breaker (%s iperf burst): opens %d, closes %d, fast-fails %d, sheds %d, final %s, completed %v\n",
		d.Image, d.Opens, d.Closes, d.FastFails, d.Sheds, d.FinalState, d.Completed)
	return string(b)
}
