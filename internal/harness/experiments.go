package harness

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/net"
	"flexos/internal/sched"
	"flexos/internal/sh"
)

// SHProfile is the hardening bundle of the paper's prototype under
// GCC: KASAN + stack protector + UBSAN.
var SHProfile = sh.Profile{ASAN: true, StackProtector: true, UBSan: true}

// shAll returns an SH map hardening the given libraries.
func shAll(libs ...string) map[string]sh.Profile {
	m := make(map[string]sh.Profile, len(libs))
	for _, l := range libs {
		m[l] = SHProfile
	}
	return m
}

// --- Fig. 3: iperf throughput across isolation mechanisms -----------

// Fig3Point is one (buffer size, throughput) sample.
type Fig3Point struct {
	RecvBuf int
	Mbps    float64
}

// Fig3Series is one curve of Fig. 3.
type Fig3Series struct {
	Label  string
	Points []Fig3Point
}

// Fig3Result regenerates Fig. 3: iperf throughput as the recv buffer
// grows from 2^6 to 2^20 bytes, for the KVM baseline, both MPK gates,
// software hardening of the network stack, the Xen baseline and the
// VM-RPC backend.
type Fig3Result struct {
	Series []Fig3Series
}

// fig3Configs are the six configurations of the paper's figure.
func fig3Configs() []build.Config {
	return []build.Config{
		{Name: "KVM Baseline"},
		{Name: "CHERI (KVM)", Compartments: build.NWOnly(),
			Backend: gate.CHERI, Alloc: build.AllocPerCompartment},
		{Name: "MPK-Sha. (KVM)", Compartments: build.NWOnly(),
			Backend: gate.MPKShared, Alloc: build.AllocPerCompartment},
		{Name: "MPK-Sw. (KVM)", Compartments: build.NWOnly(),
			Backend: gate.MPKSwitched, Alloc: build.AllocPerCompartment},
		{Name: "SH (KVM)", SH: shAll("netstack"), Alloc: build.AllocPerLibrary},
		{Name: "Xen Baseline", Platform: net.Xen},
		{Name: "VM RPC (Xen)", Compartments: build.NWOnly(), Platform: net.Xen,
			Backend: gate.VMRPC, Alloc: build.AllocPerCompartment},
	}
}

// Fig3Sizes is the recv-buffer sweep (2^6 .. 2^20).
func Fig3Sizes(quick bool) []int {
	var sizes []int
	step := 2
	if quick {
		step = 4
	}
	for p := 6; p <= 20; p += step {
		sizes = append(sizes, 1<<p)
	}
	return sizes
}

// Fig3 runs the sweep. quick thins the sweep for tests.
func Fig3(quick bool) (*Fig3Result, error) {
	sizes := Fig3Sizes(quick)
	out := &Fig3Result{}
	for _, cfg := range fig3Configs() {
		s := Fig3Series{Label: cfg.Name}
		for _, size := range sizes {
			total := 16 * size
			if total < 512<<10 {
				total = 512 << 10
			}
			if total > 8<<20 {
				total = 8 << 20
			}
			r, err := RunIperf(cfg, total, size)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s @%d: %w", cfg.Name, size, err)
			}
			s.Points = append(s.Points, Fig3Point{RecvBuf: size, Mbps: r.Gbps * 1000})
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// --- Table 1: iperf with SH on individual components ------------------

// Table1Row is one component's row: throughput with SH on everything
// but the component, and with SH on the component only.
type Table1Row struct {
	Component    string
	AllButCGbps  float64
	COnlyGbps    float64
	PaperAllButC float64 // Gb/s from the paper, for the report
	PaperCOnly   float64
}

// Table1Result regenerates Table 1.
type Table1Result struct {
	BaselineGbps float64
	Rows         []Table1Row
}

// table1Groups maps the paper's component rows to library sets ("rest
// of the system" includes iperf itself).
var table1Groups = []struct {
	name        string
	libs        []string
	paperAllBut float64
	paperOnly   float64
}{
	{"Scheduler", []string{"sched"}, 0.496, 2.90},
	{"Network stack", []string{"netstack"}, 0.631, 2.76},
	{"LibC", []string{"libc"}, 1.47, 1.25},
	{"Rest of the system", []string{"rest", "app", "alloc"}, 1.08, 2.50},
	{"Entire system", []string{"sched", "netstack", "libc", "rest", "app", "alloc"}, 2.94, 0.489},
}

// table1RecvBuf is the iperf recv-buffer size for Table 1 runs.
const table1RecvBuf = 8 << 10

// Table1 runs every row.
func Table1() (*Table1Result, error) {
	const total = 4 << 20
	run := func(shLibs []string) (float64, error) {
		cfg := build.Config{Name: "table1", Alloc: build.AllocPerLibrary, SH: shAll(shLibs...)}
		r, err := RunIperf(cfg, total, table1RecvBuf)
		if err != nil {
			return 0, err
		}
		return r.Gbps, nil
	}
	baseline, err := run(nil)
	if err != nil {
		return nil, err
	}
	all := map[string]bool{}
	for _, l := range build.DefaultLibraries {
		all[l] = true
	}
	out := &Table1Result{BaselineGbps: baseline}
	for _, g := range table1Groups {
		inGroup := map[string]bool{}
		for _, l := range g.libs {
			inGroup[l] = true
		}
		var complement []string
		for l := range all {
			if !inGroup[l] {
				complement = append(complement, l)
			}
		}
		allBut, err := run(complement)
		if err != nil {
			return nil, fmt.Errorf("table1 all-but-%s: %w", g.name, err)
		}
		only, err := run(g.libs)
		if err != nil {
			return nil, fmt.Errorf("table1 %s-only: %w", g.name, err)
		}
		out.Rows = append(out.Rows, Table1Row{
			Component:    g.name,
			AllButCGbps:  allBut,
			COnlyGbps:    only,
			PaperAllButC: g.paperAllBut,
			PaperCOnly:   g.paperOnly,
		})
	}
	return out, nil
}

// --- Fig. 4: Redis under SH configs and the verified scheduler -------

// Fig4Cell is one bar of Fig. 4.
type Fig4Cell struct {
	Config  string
	Op      RedisOp
	Payload int
	KReqS   float64
}

// Fig4Result regenerates Fig. 4.
type Fig4Result struct {
	Cells []Fig4Cell
}

// Fig4Payloads are the paper's payload sizes.
var Fig4Payloads = []int{5, 50, 500}

// fig4Configs are the four bar groups: no SH, SH on the network stack
// with a global allocator, the same with per-library allocators, and
// the verified scheduler.
func fig4Configs() []build.Config {
	return []build.Config{
		{Name: "No SH"},
		{Name: "SH global alloc", SH: shAll("netstack"), Alloc: build.AllocGlobal},
		{Name: "SH local alloc", SH: shAll("netstack"), Alloc: build.AllocPerLibrary},
		{Name: "Verified Sched", Sched: build.SchedVerified},
	}
}

// Fig4 runs SET and GET for every payload and config.
func Fig4(ops int) (*Fig4Result, error) {
	if ops <= 0 {
		ops = 300
	}
	out := &Fig4Result{}
	for _, cfg := range fig4Configs() {
		for _, payload := range Fig4Payloads {
			for _, op := range []RedisOp{OpSET, OpGET} {
				r, err := RunRedis(cfg, op, payload, ops)
				if err != nil {
					return nil, fmt.Errorf("fig4 %s %s/%dB: %w", cfg.Name, op, payload, err)
				}
				out.Cells = append(out.Cells, Fig4Cell{
					Config: cfg.Name, Op: op, Payload: payload, KReqS: r.KReqPerSec,
				})
			}
		}
	}
	return out, nil
}

// --- Fig. 5: Redis under MPK compartmentalization models --------------

// Fig5Cell is one bar of Fig. 5.
type Fig5Cell struct {
	Model   string // "No Isol." | "NW-only" | "NW/Sched/Rest" | "NW+Sched/Rest"
	Stack   string // "-" | "Sh." | "Sw."
	Payload int
	KReqS   float64
}

// Fig5Result regenerates Fig. 5.
type Fig5Result struct {
	Cells []Fig5Cell
}

// fig5Models are the paper's compartmentalization models.
var fig5Models = []struct {
	name  string
	comps []build.Compartment
}{
	{"NW-only", build.NWOnly()},
	{"NW/Sched/Rest", build.NWSchedRest()},
	{"NW+Sched/Rest", build.NWPlusSched()},
}

// Fig5 measures GET throughput under each model with both MPK gate
// flavors, plus the no-isolation baseline.
func Fig5(ops int) (*Fig5Result, error) {
	if ops <= 0 {
		ops = 300
	}
	out := &Fig5Result{}
	for _, payload := range Fig4Payloads {
		r, err := RunRedis(build.Config{Name: "No Isol."}, OpGET, payload, ops)
		if err != nil {
			return nil, fmt.Errorf("fig5 baseline/%dB: %w", payload, err)
		}
		out.Cells = append(out.Cells, Fig5Cell{Model: "No Isol.", Stack: "-", Payload: payload, KReqS: r.KReqPerSec})
		for _, m := range fig5Models {
			for _, variant := range []struct {
				label   string
				backend gate.Backend
			}{{"Sh.", gate.MPKShared}, {"Sw.", gate.MPKSwitched}} {
				cfg := build.Config{
					Name:         m.name + " " + variant.label,
					Compartments: m.comps,
					Backend:      variant.backend,
					Alloc:        build.AllocPerCompartment,
				}
				r, err := RunRedis(cfg, OpGET, payload, ops)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s/%dB: %w", cfg.Name, payload, err)
				}
				out.Cells = append(out.Cells, Fig5Cell{
					Model: m.name, Stack: variant.label, Payload: payload, KReqS: r.KReqPerSec,
				})
			}
		}
	}
	return out, nil
}

// --- §4: context-switch latency ---------------------------------------

// CtxSwitchResult regenerates the verified-scheduler latency numbers.
type CtxSwitchResult struct {
	CNanos        float64
	VerifiedNanos float64
	PaperCNanos   float64
	PaperVNanos   float64
}

// CtxSwitch measures per-switch latency of both schedulers with two
// yielding threads.
func CtxSwitch() (*CtxSwitchResult, error) {
	measure := func(s sched.Scheduler) (float64, error) {
		cpu := clock.New()
		const rounds = 2000
		body := func(th *sched.Thread) {
			for i := 0; i < rounds; i++ {
				th.Yield()
			}
		}
		s.Spawn("a", cpu, body)
		s.Spawn("b", cpu, body)
		if err := s.Run(); err != nil {
			return 0, err
		}
		return clock.Nanoseconds(s.ContextSwitches()*s.SwitchCost()) / float64(s.ContextSwitches()), nil
	}
	c, err := measure(sched.NewCScheduler())
	if err != nil {
		return nil, err
	}
	v, err := measure(sched.NewVerifiedScheduler())
	if err != nil {
		return nil, err
	}
	return &CtxSwitchResult{CNanos: c, VerifiedNanos: v, PaperCNanos: 76.6, PaperVNanos: 218.6}, nil
}

// --- Data path: descriptor passing vs boundary copies ----------------

// DataPathPoint compares one recv-buffer size under both data paths on
// the MPK-shared NW-only image.
type DataPathPoint struct {
	RecvBuf    int
	SharedMbps float64
	CopyMbps   float64
	// CopyCycles is the cycle total attributed to clock.CompCopy under
	// the copy data path (zero under shared, by construction).
	CopyCycles uint64
	// SpeedupPct is the shared-over-copy throughput gain in percent.
	SpeedupPct float64
}

// DataPathResult is the copy-vs-shared sweep.
type DataPathResult struct {
	Label  string
	Points []DataPathPoint
}

// DataPathSizes is the recv-buffer sweep of the data-path experiment.
func DataPathSizes(quick bool) []int {
	if quick {
		return []int{16 << 10}
	}
	return []int{4 << 10, 16 << 10, 64 << 10}
}

// DataPath measures the zero-copy win: the same MPK-shared NW-only
// image run with shared-window descriptors and with per-boundary
// copies, throughput attributed per component.
func DataPath(quick bool) (*DataPathResult, error) {
	base := build.Config{Name: "MPK-Sha. NW-only", Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment}
	out := &DataPathResult{Label: base.Name}
	for _, size := range DataPathSizes(quick) {
		total := 16 * size
		if total < 512<<10 {
			total = 512 << 10
		}
		if total > 8<<20 {
			total = 8 << 20
		}
		run := func(dp net.DataPath) (*IperfResult, error) {
			cfg := base
			cfg.DataPath = dp
			return RunIperf(cfg, total, size)
		}
		shared, err := run(net.DataPathShared)
		if err != nil {
			return nil, fmt.Errorf("datapath shared @%d: %w", size, err)
		}
		copied, err := run(net.DataPathCopy)
		if err != nil {
			return nil, fmt.Errorf("datapath copy @%d: %w", size, err)
		}
		p := DataPathPoint{
			RecvBuf:    size,
			SharedMbps: shared.Gbps * 1000,
			CopyMbps:   copied.Gbps * 1000,
			CopyCycles: copied.ByComponent[clock.CompCopy],
		}
		if p.CopyMbps > 0 {
			p.SpeedupPct = (p.SharedMbps/p.CopyMbps - 1) * 100
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// --- Batching: gate-crossing amortization -----------------------------

// BatchingPoint is one (depth, throughput) sample of a batching series.
type BatchingPoint struct {
	Depth        int
	Mbps         float64
	ServerCycles uint64
	Crossings    uint64
	ByComponent  map[clock.Component]uint64
	// SpeedupPct is the throughput gain over the depth-1 point of the
	// same series, in percent.
	SpeedupPct float64
}

// BatchingSeries is one backend's depth sweep.
type BatchingSeries struct {
	Label   string
	Backend gate.Backend
	Points  []BatchingPoint
}

// BatchingResult is the crossing-amortization sweep: iperf throughput
// as the batch depth grows, per isolation backend. Direct calls pay
// (nearly) nothing per crossing, so their curve is flat and bounds how
// much of each isolating backend's win is amortization rather than
// workload restructuring.
type BatchingResult struct {
	Depths []int
	Series []BatchingSeries
}

// BatchingDepths is the depth sweep of the batching experiment.
func BatchingDepths(quick bool) []int {
	if quick {
		return []int{1, 16}
	}
	return []int{1, 4, 16, 64}
}

// batchingConfigs are the swept images: the same NW-only plan under a
// free gate, the expensive MPK-switched gate, and the VM-RPC gate.
func batchingConfigs() []build.Config {
	return []build.Config{
		{Name: "Direct NW-only", Compartments: build.NWOnly(),
			Backend: gate.FuncCall, Alloc: build.AllocPerCompartment},
		{Name: "MPK-Sw. NW-only", Compartments: build.NWOnly(),
			Backend: gate.MPKSwitched, Alloc: build.AllocPerCompartment},
		{Name: "VM RPC NW-only", Compartments: build.NWOnly(), Platform: net.Xen,
			Backend: gate.VMRPC, Alloc: build.AllocPerCompartment},
	}
}

// Batching measures how batched gate calls, NIC coalescing and
// app-level pipelining amortize crossing cost: the same iperf transfer
// at each batch depth, per backend. Depth d sets the batch directive on
// both compartments — vectored socket calls cross into nw d frames at
// a time, and the core compartment's tx doorbell/rx budget coalesce
// the NIC path.
func Batching(quick bool) (*BatchingResult, error) {
	const (
		total   = 2 << 20
		recvBuf = 16 << 10
	)
	out := &BatchingResult{Depths: BatchingDepths(quick)}
	for _, base := range batchingConfigs() {
		s := BatchingSeries{Label: base.Name, Backend: base.Backend}
		for _, depth := range out.Depths {
			cfg := base
			if depth > 1 {
				cfg.Batch = map[string]int{"nw": depth, "core": depth}
			}
			r, err := RunIperf(cfg, total, recvBuf)
			if err != nil {
				return nil, fmt.Errorf("batching %s @%d: %w", base.Name, depth, err)
			}
			p := BatchingPoint{
				Depth:        depth,
				Mbps:         r.Gbps * 1000,
				ServerCycles: r.ServerCycles,
				Crossings:    r.Crossings,
				ByComponent:  r.ByComponent,
			}
			if len(s.Points) > 0 && s.Points[0].Mbps > 0 {
				p.SpeedupPct = (p.Mbps/s.Points[0].Mbps - 1) * 100
			}
			s.Points = append(s.Points, p)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}
