package harness

import (
	"reflect"
	"testing"

	"flexos/internal/core/explore"
)

// TestAutotuneQuick pins the sweep's shape and the acceptance
// criteria: at least 8 measured Pareto candidates across 3 backends,
// per-candidate predicted-vs-measured error, and a calibration that
// tightens the model against its own measurements.
func TestAutotuneQuick(t *testing.T) {
	r, err := Autotune(DefaultAutotuneOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Backends) < 3 {
		t.Fatalf("swept %d backends, want >= 3", len(r.Backends))
	}
	if len(r.Points) < 8 {
		t.Fatalf("measured %d candidates, want >= 8", len(r.Points))
	}
	if r.FrontSize < 1 || r.FrontSize > len(r.Points) {
		t.Fatalf("measured front size %d of %d points", r.FrontSize, len(r.Points))
	}
	for i, p := range r.Points {
		if p.Measured <= 0 || p.KReqPerSec <= 0 || p.Gbps <= 0 {
			t.Fatalf("point %d: empty measurement %+v", i, p)
		}
		if p.Predicted <= 0 || p.RelErrPct < 0 {
			t.Fatalf("point %d: no validation numbers %+v", i, p)
		}
		if sum := p.CrossingPct + p.ComputePct + p.StallPct; sum < 99.0 || sum > 101.0 {
			t.Fatalf("point %d: attribution shares sum to %.2f%%", i, sum)
		}
	}
	// The validation ranking is worst-first.
	for i := 1; i < len(r.ByError); i++ {
		if r.Points[r.ByError[i-1]].RelErrPct < r.Points[r.ByError[i]].RelErrPct {
			t.Fatal("ByError not sorted worst-first")
		}
	}
	// Calibration must improve the model on the very points it was
	// fitted from, and leave DefaultWorkload untouched.
	if r.PostMAEPct >= r.PreMAEPct {
		t.Fatalf("calibration did not tighten the fit: pre %.2f%% post %.2f%%", r.PreMAEPct, r.PostMAEPct)
	}
	if r.PostMAEPct > 10 {
		t.Fatalf("post-calibration MAE %.2f%%, want < 10%%", r.PostMAEPct)
	}
	if r.Calibrated.BaseCycles == explore.DefaultWorkload().BaseCycles {
		t.Fatal("calibrated workload did not move off the default")
	}
	if explore.DefaultWorkload().BaseCycles != 4000 {
		t.Fatal("DefaultWorkload mutated by calibration")
	}
}

// TestAutotuneMemoization pins the gate-cost-signature memo: the
// single-compartment anchor appears once per backend but boots once —
// without a crossing, the gate mechanism cannot affect the
// measurement, so all three share bit-identical numbers.
func TestAutotuneMemoization(t *testing.T) {
	r, err := Autotune(DefaultAutotuneOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoHits < 2 {
		t.Fatalf("memo hits = %d, want >= 2 (one anchor per extra backend)", r.MemoHits)
	}
	if r.UniqueRuns+r.MemoHits != len(r.Points) {
		t.Fatalf("boots %d + hits %d != points %d", r.UniqueRuns, r.MemoHits, len(r.Points))
	}
	var anchors []AutotunePoint
	for _, p := range r.Points {
		if p.Compartments == 1 {
			anchors = append(anchors, p)
		}
	}
	if len(anchors) != len(r.Backends) {
		t.Fatalf("%d single-compartment anchors, want one per backend (%d)", len(anchors), len(r.Backends))
	}
	for _, a := range anchors[1:] {
		if a.Measured != anchors[0].Measured || a.Gbps != anchors[0].Gbps || a.Crossings != anchors[0].Crossings {
			t.Fatalf("anchor measurements diverged across backends: %+v vs %+v", anchors[0], a)
		}
	}
}

// TestAutotuneDeterministic pins bit-identical replay and worker-count
// invariance: the full report must be equal for repeated runs and for
// any pool size.
func TestAutotuneDeterministic(t *testing.T) {
	opt := DefaultAutotuneOpts(true)
	opt.Workers = 2
	a, err := Autotune(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Autotune(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 7
	c, err := Autotune(opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Workers = a.Workers // the pool size is the only field allowed to differ
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different reports")
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("worker count changed the report")
	}
}
