// Package harness regenerates every table and figure of the paper's
// evaluation (§4): Fig. 3 (iperf throughput across isolation
// mechanisms), Table 1 (iperf under per-component software hardening),
// Fig. 4 (Redis under SH and the verified scheduler), Fig. 5 (Redis
// under MPK compartmentalization models) and the context-switch
// latency microbenchmark.
//
// All measurements are taken in virtual time on the server machine —
// deterministic, hardware independent, and calibrated so the *shape*
// of every paper result (who wins, by roughly what factor, where the
// crossovers fall) reproduces. Absolute Gb/s differ from the paper's
// Xeon testbed; EXPERIMENTS.md records both.
package harness

import (
	"fmt"

	"flexos/internal/app/iperf"
	"flexos/internal/app/redis"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/metrics"
	"flexos/internal/net"
	"flexos/internal/sched"
	"flexos/internal/trace"
)

// IperfResult is one iperf measurement.
type IperfResult struct {
	Label        string
	RecvBuf      int
	Bytes        uint64
	ServerCycles uint64
	Gbps         float64
	Crossings    uint64
	ByComponent  map[clock.Component]uint64
	// Attr is the server machine's full cycle-attribution breakdown,
	// computed from the live clock ledgers (never the trace ring), so
	// it conserves capacity exactly: Attr.Check() == nil.
	Attr *metrics.Attribution
}

// RunIperf runs one iperf transfer over a world built from cfg and
// measures server-side throughput.
func RunIperf(cfg build.Config, totalBytes, recvBuf int) (*IperfResult, error) {
	r, _, err := RunIperfTraced(cfg, totalBytes, recvBuf, 0)
	return r, err
}

// RunIperfTraced is RunIperf with an optional server-side crossing
// trace holding the last traceCap events (0 disables tracing).
func RunIperfTraced(cfg build.Config, totalBytes, recvBuf, traceCap int) (*IperfResult, *trace.Ring, error) {
	r, ring, _, err := runIperfWorld(cfg, totalBytes, recvBuf, traceCap)
	return r, ring, err
}

// runIperfWorld is the world-returning core of RunIperfTraced, shared
// with the observability entry points that need the built machines
// (metrics snapshots, registry counters) alongside the result.
func runIperfWorld(cfg build.Config, totalBytes, recvBuf, traceCap int) (*IperfResult, *trace.Ring, *build.World, error) {
	// The evaluation images use the socket API over the tcpip thread,
	// as Unikraft's lwip port does.
	cfg.Net.SocketMode = net.TCPIPThreadMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var ring *trace.Ring
	if traceCap > 0 {
		ring = w.Server.EnableTracing(traceCap)
	}
	srv := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf)
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, totalBytes, 32<<10)
	var srvErr, cliErr error
	w.Sched.Spawn("iperf-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("iperf-client", w.Client.CPU, func(th *sched.Thread) {
		cliErr = cli.Run(th)
	})
	if err := w.Sched.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness iperf: %w", err)
	}
	if srvErr != nil {
		return nil, nil, nil, fmt.Errorf("harness iperf server: %w", srvErr)
	}
	if cliErr != nil {
		return nil, nil, nil, fmt.Errorf("harness iperf client: %w", cliErr)
	}
	if srv.BytesReceived != uint64(totalBytes) {
		return nil, nil, nil, fmt.Errorf("harness iperf: received %d of %d bytes", srv.BytesReceived, totalBytes)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, nil, nil, err
	}
	cycles := w.Server.CPU.Cycles()
	return &IperfResult{
		Label:        cfg.Name,
		RecvBuf:      recvBuf,
		Bytes:        srv.BytesReceived,
		ServerCycles: cycles,
		Gbps:         clock.GbpsFor(srv.BytesReceived, cycles),
		Crossings:    w.Server.Registry.TotalCrossings(),
		ByComponent:  w.Server.CPU.ByComponent(),
		Attr:         w.Server.Attribution(),
	}, ring, w, nil
}

// checkPoolLeaks enforces the shared pool's zero-leak invariant on
// both machines after a run: every buffer handed out by BufAlloc or
// the stack's rx path must have been released, with no pins left.
func checkPoolLeaks(w *build.World) error {
	for _, m := range []struct {
		role string
		mach *build.Machine
	}{{"server", w.Server}, {"client", w.Client}} {
		p := m.mach.Pool
		if p == nil {
			continue
		}
		if bufs, refs := p.Outstanding(), p.OutstandingRefs(); bufs != 0 || refs != 0 {
			return fmt.Errorf("harness: %s pool leak: %d buffers, %d refs outstanding", m.role, bufs, refs)
		}
	}
	return nil
}

// RedisOp selects the measured Redis operation.
type RedisOp string

// Measured operations.
const (
	OpSET RedisOp = "SET"
	OpGET RedisOp = "GET"
)

// RedisResult is one Redis measurement.
type RedisResult struct {
	Label        string
	Op           RedisOp
	PayloadBytes int
	Ops          uint64
	ServerCycles uint64 // cycles spent on the measured ops only
	KReqPerSec   float64
	Crossings    uint64
	// ByComponent is the measured window's server-side cycle delta per
	// clock component — the same exclusion of warmup as ServerCycles.
	ByComponent map[clock.Component]uint64
}

// RedisPipeline is the pipelining depth of the benchmark client
// (redis-benchmark -P): requests are issued in batches and replies
// stream back through the server's output buffer, which is what pushes
// per-request cost into the range where isolation and hardening
// overheads are visible (the paper reports ~Mreq/s figures).
const RedisPipeline = 8

// RunRedis measures ops requests of the given kind against a server
// built from cfg. Warmup (connection setup plus priming SETs) is
// excluded exactly: the snapshot is taken while the server is parked
// between requests, which virtual time makes precise.
func RunRedis(cfg build.Config, op RedisOp, payloadBytes, ops int) (*RedisResult, error) {
	return runRedis(cfg, op, payloadBytes, ops, nil)
}

// RunRedisWithMode is RunRedis with an explicit socket mode (0 direct,
// 1 tcpip-thread), for the socket-architecture ablation.
func RunRedisWithMode(cfg build.Config, op RedisOp, payloadBytes, ops int, mode net.SocketMode) (*RedisResult, error) {
	return runRedisMode(cfg, op, payloadBytes, ops, mode, nil)
}

// runRedis implements RunRedis with an optional prep hook invoked on
// the built world before the workload starts (observers, tracers).
func runRedis(cfg build.Config, op RedisOp, payloadBytes, ops int, prep func(*build.World)) (*RedisResult, error) {
	return runRedisMode(cfg, op, payloadBytes, ops, net.TCPIPThreadMode, prep)
}

func runRedisMode(cfg build.Config, op RedisOp, payloadBytes, ops int, mode net.SocketMode, prep func(*build.World)) (*RedisResult, error) {
	cfg.Net.SocketMode = mode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if prep != nil {
		prep(w)
	}
	srv := redis.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	var srvErr, cliErr error
	res := &RedisResult{Label: cfg.Name, Op: op, PayloadBytes: payloadBytes, Ops: uint64(ops)}
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	w.Sched.Spawn("redis-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("redis-client", w.Client.CPU, func(th *sched.Thread) {
		c := redis.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 6379)
		if cliErr = c.Connect(th); cliErr != nil {
			return
		}
		// Warmup: prime the keyspace (and the connection).
		const keys = 16
		for i := 0; i < keys; i++ {
			if cliErr = c.Set(th, fmt.Sprintf("key:%d", i), payload); cliErr != nil {
				return
			}
		}
		startCycles := w.Server.CPU.Cycles()
		startCross := w.Server.Registry.TotalCrossings()
		startBy := w.Server.CPU.ByComponent()
		issued := 0
		for issued < ops {
			batch := RedisPipeline
			if batch > ops-issued {
				batch = ops - issued
			}
			cmds := make([][][]byte, 0, batch)
			for i := 0; i < batch; i++ {
				key := []byte(fmt.Sprintf("key:%d", (issued+i)%keys))
				switch op {
				case OpSET:
					cmds = append(cmds, [][]byte{[]byte("SET"), key, payload})
				case OpGET:
					cmds = append(cmds, [][]byte{[]byte("GET"), key})
				default:
					cliErr = fmt.Errorf("harness redis: unknown op %q", op)
					return
				}
			}
			replies, err := c.DoPipelined(th, cmds)
			if err != nil {
				cliErr = err
				return
			}
			for _, r := range replies {
				if len(r) == 0 || r[0] == '-' {
					cliErr = fmt.Errorf("harness redis: error reply %q", r)
					return
				}
			}
			issued += batch
		}
		res.ServerCycles = w.Server.CPU.Cycles() - startCycles
		res.Crossings = w.Server.Registry.TotalCrossings() - startCross
		res.ByComponent = componentDelta(startBy, w.Server.CPU.ByComponent())
		cliErr = c.Close(th)
	})
	if err := w.Sched.Run(); err != nil {
		return nil, fmt.Errorf("harness redis: %w", err)
	}
	if srvErr != nil {
		return nil, fmt.Errorf("harness redis server: %w", srvErr)
	}
	if cliErr != nil {
		return nil, fmt.Errorf("harness redis client: %w", cliErr)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, err
	}
	res.KReqPerSec = clock.OpsPerSec(res.Ops, res.ServerCycles) / 1e3
	return res, nil
}

// componentDelta subtracts two per-component cycle snapshots, keeping
// only the components that advanced during the window.
func componentDelta(start, end map[clock.Component]uint64) map[clock.Component]uint64 {
	out := make(map[clock.Component]uint64, len(end))
	for comp, v := range end {
		if d := v - start[comp]; d > 0 {
			out[comp] = d
		}
	}
	return out
}
