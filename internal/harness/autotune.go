package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"flexos/internal/core/explore"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
)

// --- Autotune: measured ranking of the explorer's Pareto front --------
//
// The explorer ranks the design space with a static cost model; the
// simulator can boot any of those configurations and attribute every
// cycle. Autotune connects the two: every candidate on the static
// Pareto front of every backend is synthesized into a build.Config,
// booted, and measured under the real workload (redis GET for cycles
// per operation, iperf for throughput). The output is a measured
// Pareto front, a model-validation report (predicted vs measured,
// ranked by error), and a calibration fitted from the measurements
// that rewrites the explorer's cost constants — the paper's "toolchain
// picks the configuration" promise, closed with ground truth.
//
// Determinism: the simulator runs entirely in virtual time and every
// candidate writes to its own result slot, so the sweep replays
// bit-identically for any worker count.

// AutotuneBackends are the crossing mechanisms whose Pareto fronts are
// measured — the three real isolation backends of the evaluation.
func AutotuneBackends() []gate.Backend {
	return []gate.Backend{gate.MPKShared, gate.MPKSwitched, gate.VMRPC}
}

// AutotuneOpts sizes the sweep.
type AutotuneOpts struct {
	// Ops is the number of measured redis GET requests per candidate.
	Ops int
	// Payload is the redis value size in bytes.
	Payload int
	// IperfBytes is the iperf transfer size per candidate.
	IperfBytes int
	// RecvBuf is the iperf server receive buffer.
	RecvBuf int
	// Workers sizes the measurement pool; 0 selects GOMAXPROCS.
	Workers int
	// TolerancePct flags candidates whose relative model error exceeds
	// it as mispredicted.
	TolerancePct float64
}

// DefaultAutotuneOpts returns the full-sweep (or -quick) sizing.
func DefaultAutotuneOpts(quick bool) AutotuneOpts {
	o := AutotuneOpts{
		Ops:          1500,
		Payload:      64,
		IperfBytes:   4 << 20,
		RecvBuf:      32 << 10,
		TolerancePct: 25,
	}
	if quick {
		o.Ops = 300
		o.IperfBytes = 512 << 10
	}
	return o
}

// AutotunePoint is one measured Pareto candidate.
type AutotunePoint struct {
	Backend      string   `json:"backend"`
	Libs         []string `json:"libs"`
	Compartments int      `json:"compartments"`
	Hardened     int      `json:"hardened"`
	Security     float64  `json:"security"`
	// Predicted is the static model's cycles/op; Measured the redis GET
	// cycles/op the simulator actually spent; RelErrPct the magnitude
	// of the relative error against the measurement.
	Predicted    float64 `json:"predicted_cycles_op"`
	Measured     float64 `json:"measured_cycles_op"`
	RelErrPct    float64 `json:"rel_err_pct"`
	Mispredicted bool    `json:"mispredicted"`
	// PostPredicted/PostRelErrPct restate the prediction under the
	// calibration fitted from this sweep's measurements.
	PostPredicted float64 `json:"post_predicted_cycles_op"`
	PostRelErrPct float64 `json:"post_rel_err_pct"`
	// Workload metrics of the measured run.
	KReqPerSec float64 `json:"kreq_per_sec"`
	Gbps       float64 `json:"gbps"`
	Crossings  uint64  `json:"crossings"`
	// Attribution columns from the iperf run's full cycle ledger.
	CrossingPct float64 `json:"crossing_pct"`
	ComputePct  float64 `json:"compute_pct"`
	StallPct    float64 `json:"stall_pct"`
	// MemoHit marks a point served by a twin configuration's run (same
	// gate-cost signature) instead of its own boot.
	MemoHit bool `json:"memo_hit"`
	// OnMeasuredFront marks membership of the measured Pareto front
	// across all backends.
	OnMeasuredFront bool `json:"on_measured_front"`

	breakdown explore.CostBreakdown
}

// AutotuneResult is the full measured-autotuning report.
type AutotuneResult struct {
	Backends []string `json:"backends"`
	// Points holds every measured candidate, per backend in front
	// order; ByError lists indices into Points ranked worst-first.
	Points  []AutotunePoint `json:"points"`
	ByError []int           `json:"by_error"`
	// UniqueRuns counts configurations actually booted; MemoHits the
	// candidates served from a twin's measurement.
	UniqueRuns int `json:"unique_runs"`
	MemoHits   int `json:"memo_hits"`
	Workers    int `json:"workers"`
	// Model validation before and after calibration: mean and max
	// relative error, and the number of flagged mispredictions.
	TolerancePct   float64 `json:"tolerance_pct"`
	PreMAEPct      float64 `json:"pre_mae_pct"`
	PreMaxErrPct   float64 `json:"pre_max_err_pct"`
	PostMAEPct     float64 `json:"post_mae_pct"`
	PostMaxErrPct  float64 `json:"post_max_err_pct"`
	Mispredictions int     `json:"mispredictions"`
	// Calibration is the fitted correction; Calibrated the explorer
	// workload it produces (DefaultWorkload itself is never mutated).
	Calibration explore.Calibration `json:"calibration"`
	Calibrated  explore.Workload    `json:"-"`
	// FrontSize is the measured Pareto front's cardinality.
	FrontSize int `json:"front_size"`
}

// gateSignature canonicalizes what determines a candidate's measured
// cost: the compartment partition, the hardened set, and the backend.
// A single-compartment candidate never crosses a gate, so its backend
// is irrelevant to the measurement and is dropped from the key — the
// all-hardened combination, on every backend's front, boots once.
func gateSignature(c *explore.Candidate) string {
	groups := make([]string, 0, len(c.Plan.Compartments))
	for _, comp := range c.Plan.Compartments {
		libs := append([]string(nil), comp...)
		sort.Strings(libs)
		groups = append(groups, strings.Join(libs, ","))
	}
	sort.Strings(groups)
	be := "-"
	if c.SeparatedPairs > 0 {
		be = c.Backend.String()
	}
	return be + "|" + strings.Join(groups, ";")
}

// autotuneRun is one unique boot's measurements, shared by every
// candidate with the same gate-cost signature.
type autotuneRun struct {
	once      sync.Once
	err       error
	measured  float64
	kreq      float64
	gbps      float64
	crossings uint64
	crossPct  float64
	compPct   float64
	stallPct  float64
}

// Autotune explores every backend's design space, measures its static
// Pareto front under the real workload, validates the cost model
// point by point and fits a calibration from the results.
func Autotune(opt AutotuneOpts) (*AutotuneResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := explore.DefaultWorkload()

	// Static fronts per backend, in deterministic front order.
	type job struct {
		cand *explore.Candidate
		sig  string
	}
	var jobs []job
	res := &AutotuneResult{Workers: workers, TolerancePct: opt.TolerancePct}
	for _, be := range AutotuneBackends() {
		res.Backends = append(res.Backends, be.String())
		cands, err := explore.Explore(spec.DefaultImage(), be, w)
		if err != nil {
			return nil, err
		}
		front := explore.ParetoFront(cands)
		onFront := make(map[*explore.Candidate]bool, len(front))
		for _, c := range front {
			onFront[c] = true
			jobs = append(jobs, job{cand: c, sig: gateSignature(c)})
		}
		// Anchor: the fully consolidated (single-compartment) candidates,
		// whether or not this backend's front kept them. They never cross
		// a gate, so their signature drops the backend and the three
		// backends' anchors collapse to one boot — the memoization the
		// sweep is built around, and a built-in check that a crossing-free
		// world measures identically whatever the gate mechanism is.
		for _, c := range cands {
			if c.SeparatedPairs == 0 && !onFront[c] {
				jobs = append(jobs, job{cand: c, sig: gateSignature(c)})
			}
		}
	}

	// Memoized measurement pool: workers pull job indices from a shared
	// counter and write to per-index slots; sync.Once collapses twin
	// signatures to one boot however the work interleaves.
	runs := make(map[string]*autotuneRun, len(jobs))
	for _, j := range jobs {
		if _, ok := runs[j.sig]; !ok {
			runs[j.sig] = &autotuneRun{}
		}
	}
	points := make([]AutotunePoint, len(jobs))
	firstOf := make(map[string]int, len(runs))
	for i, j := range jobs {
		if _, ok := firstOf[j.sig]; !ok {
			firstOf[j.sig] = i
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				run := runs[j.sig]
				run.once.Do(func() { measureAutotune(run, j.cand, opt) })
				c := j.cand
				names := make([]string, len(c.Libs))
				for k, l := range c.Libs {
					names[k] = l.VariantName()
				}
				points[i] = AutotunePoint{
					Backend:      c.Backend.String(),
					Libs:         names,
					Compartments: c.Plan.NumCompartments(),
					Hardened:     c.HardenedLibs,
					Security:     c.Security,
					Predicted:    c.EstCycles,
					Measured:     run.measured,
					KReqPerSec:   run.kreq,
					Gbps:         run.gbps,
					Crossings:    run.crossings,
					CrossingPct:  run.crossPct,
					ComputePct:   run.compPct,
					StallPct:     run.stallPct,
					MemoHit:      firstOf[j.sig] != i,
					breakdown:    explore.Breakdown(c, w),
				}
			}
		}()
	}
	wg.Wait()
	for _, r := range runs {
		if r.err != nil {
			return nil, r.err
		}
	}

	// Model validation: relative error against the measured truth.
	relErr := func(pred, meas float64) float64 {
		if meas == 0 {
			return 0
		}
		e := 100 * (pred - meas) / meas
		if e < 0 {
			e = -e
		}
		return e
	}
	for i := range points {
		p := &points[i]
		p.RelErrPct = relErr(p.Predicted, p.Measured)
		p.Mispredicted = p.RelErrPct > opt.TolerancePct
		if p.Mispredicted {
			res.Mispredictions++
		}
		if p.MemoHit {
			res.MemoHits++
		}
	}
	res.UniqueRuns = len(runs)

	// Calibrate on unique boots only, so twin candidates (identical
	// signature across backends) don't double-weight the fit.
	uniq := make([]int, 0, len(firstOf))
	for _, i := range firstOf {
		uniq = append(uniq, i)
	}
	sort.Ints(uniq) // fixed fit order: map iteration must not reorder the float sums
	pts := make([]explore.CalPoint, 0, len(uniq))
	for _, i := range uniq {
		pts = append(pts, explore.CalPoint{Breakdown: points[i].breakdown, Measured: points[i].Measured})
	}
	res.Calibration = explore.Calibrate(pts)
	res.Calibrated = res.Calibration.Apply(w)
	for i := range points {
		p := &points[i]
		b := p.breakdown
		p.PostPredicted = res.Calibration.Base +
			res.Calibration.CrossScale*b.Crossing + res.Calibration.SHScale*b.SHTax
		p.PostRelErrPct = relErr(p.PostPredicted, p.Measured)
		res.PreMAEPct += p.RelErrPct
		res.PostMAEPct += p.PostRelErrPct
		if p.RelErrPct > res.PreMaxErrPct {
			res.PreMaxErrPct = p.RelErrPct
		}
		if p.PostRelErrPct > res.PostMaxErrPct {
			res.PostMaxErrPct = p.PostRelErrPct
		}
	}
	if len(points) > 0 {
		res.PreMAEPct /= float64(len(points))
		res.PostMAEPct /= float64(len(points))
	}

	// Measured Pareto front across all backends: the skyline in
	// (measured cycles asc, security desc), exact ties kept.
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		if pa.Measured != pb.Measured {
			return pa.Measured < pb.Measured
		}
		return pa.Security > pb.Security
	})
	bestSec, bestSecCost := 0.0, 0.0
	seen := false
	for _, i := range order {
		p := &points[i]
		switch {
		case !seen || p.Security > bestSec:
			seen = true
			bestSec, bestSecCost = p.Security, p.Measured
			p.OnMeasuredFront = true
			res.FrontSize++
		case p.Security == bestSec && p.Measured == bestSecCost:
			p.OnMeasuredFront = true
			res.FrontSize++
		}
	}

	// Validation ranking, worst predictions first (ties by index so the
	// order is fully deterministic).
	res.ByError = make([]int, len(points))
	for i := range res.ByError {
		res.ByError[i] = i
	}
	sort.SliceStable(res.ByError, func(a, b int) bool {
		return points[res.ByError[a]].RelErrPct > points[res.ByError[b]].RelErrPct
	})
	res.Points = points
	return res, nil
}

// measureAutotune boots one candidate's configuration and fills the
// shared run entry: redis GET for cycles/op, iperf for throughput and
// the attribution columns.
func measureAutotune(run *autotuneRun, c *explore.Candidate, opt AutotuneOpts) {
	cfg, err := CandidateConfig(c)
	if err != nil {
		run.err = fmt.Errorf("autotune %s: %w", c.Describe(), err)
		return
	}
	cfg.Name = fmt.Sprintf("autotune-%s-c%d-h%d", c.Backend, c.Plan.NumCompartments(), c.HardenedLibs)
	r, err := RunRedis(cfg, OpGET, opt.Payload, opt.Ops)
	if err != nil {
		run.err = fmt.Errorf("autotune redis %s: %w", cfg.Name, err)
		return
	}
	run.measured = float64(r.ServerCycles) / float64(r.Ops)
	run.kreq = r.KReqPerSec
	ir, err := RunIperf(cfg, opt.IperfBytes, opt.RecvBuf)
	if err != nil {
		run.err = fmt.Errorf("autotune iperf %s: %w", cfg.Name, err)
		return
	}
	run.gbps = ir.Gbps
	run.crossings = r.Crossings
	sum := ir.Attr.Summary()
	run.crossPct = sum.CrossingPct
	run.compPct = sum.ComputePct
	run.stallPct = sum.StallPct
}

// FormatAutotune renders the measured-autotuning report.
func FormatAutotune(r *AutotuneResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Autotune: measured Pareto front over %s (%d points, %d boots, %d memo hits, %d workers)\n",
		strings.Join(r.Backends, "/"), len(r.Points), r.UniqueRuns, r.MemoHits, r.Workers)
	fmt.Fprintf(&b, "%-13s %5s %5s %5s %10s %10s %7s %9s %7s %6s %6s %6s %5s %6s\n",
		"backend", "comps", "hard", "sec", "pred(cy)", "meas(cy)", "err%", "kreq/s", "Gb/s",
		"cross%", "comp%", "stall%", "memo", "front")
	for _, p := range r.Points {
		flag := " "
		if p.Mispredicted {
			flag = "!"
		}
		memo, front := "", ""
		if p.MemoHit {
			memo = "hit"
		}
		if p.OnMeasuredFront {
			front = "*"
		}
		fmt.Fprintf(&b, "%-13s %5d %5d %5.1f %10.0f %10.0f %6.1f%s %9.1f %7.3f %5.1f%% %5.1f%% %5.1f%% %5s %6s\n",
			p.Backend, p.Compartments, p.Hardened, p.Security,
			p.Predicted, p.Measured, p.RelErrPct, flag,
			p.KReqPerSec, p.Gbps, p.CrossingPct, p.ComputePct, p.StallPct, memo, front)
	}
	fmt.Fprintf(&b, "model error: pre-calibration MAE %.1f%% (max %.1f%%), post %.1f%% (max %.1f%%), %d/%d beyond %.0f%%\n",
		r.PreMAEPct, r.PreMaxErrPct, r.PostMAEPct, r.PostMaxErrPct,
		r.Mispredictions, len(r.Points), r.TolerancePct)
	fmt.Fprintf(&b, "calibration: base %.0f cy, crossing x%.3f, sh-tax x%.3f (scalar=%v)\n",
		r.Calibration.Base, r.Calibration.CrossScale, r.Calibration.SHScale, r.Calibration.Scalar)
	worst := r.ByError
	if len(worst) > 3 {
		worst = worst[:3]
	}
	for _, i := range worst {
		p := r.Points[i]
		fmt.Fprintf(&b, "  worst: %-13s %d comps %d hard: pred %.0f vs meas %.0f (%.1f%% -> %.1f%% calibrated)\n",
			p.Backend, p.Compartments, p.Hardened, p.Predicted, p.Measured, p.RelErrPct, p.PostRelErrPct)
	}
	return b.String()
}
