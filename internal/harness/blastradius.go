package harness

import (
	"errors"
	"fmt"

	"flexos/internal/app/iperf"
	"flexos/internal/app/redis"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/net"
	"flexos/internal/sched"
)

// The blast-radius experiment injects a protection fault into a
// compartment mid-workload and reports how far the damage spreads
// under each isolation backend. On the uncompartmentalized baseline
// there is no trap boundary, so the fault unwinds the whole image
// (outcome "fatal"). Isolating backends convert the same fault into a
// typed trap delivered to the caller's domain: with the default abort
// policy the workload sees an error but the image survives
// ("contained"); with `onfault restart` the supervisor tears the
// faulted compartment's in-flight state down and replays the call
// ("recovered", with zero pool leaks); with `onfault degrade` the
// compartment is taken out of service ("degraded").

// Blast outcomes.
const (
	OutcomeFatal     = "fatal"
	OutcomeContained = "contained"
	OutcomeRecovered = "recovered"
	OutcomeDegraded  = "degraded"
	OutcomeNoTrap    = "no-trap" // the injection never fired: a harness bug
)

// BlastRow is one image's behaviour under an injected fault.
type BlastRow struct {
	Workload   string // "iperf-tcp" or "redis-store"
	Image      string // backend label
	Policy     string // configured onfault policy ("-" for the direct image)
	Outcome    string
	Traps      uint64  // traps delivered to the supervisor
	Retries    uint64  // restart replay attempts
	RecoveryNS float64 // virtual time spent in teardown + backoff
	LeakedBufs int     // server pool buffers outstanding after the run
	Detail     string  // the error the workload observed, if any
}

// BlastRadiusResult is the full containment matrix.
type BlastRadiusResult struct {
	Rows []BlastRow
}

// blastScenario describes one image + injection combination.
type blastScenario struct {
	workload string
	image    string
	backend  gate.Backend
	comps    []build.Compartment
	faultIn  string // compartment the policy applies to ("" = direct image)
	policy   fault.Policy
	inject   fault.Injection
}

// kindFor picks the trap flavour the backend would raise for a wild
// write inside the faulted compartment.
func kindFor(b gate.Backend) fault.Kind {
	switch b {
	case gate.MPKShared, gate.MPKSwitched:
		return fault.KindMPK
	case gate.CHERI:
		return fault.KindCHERI
	default:
		return fault.KindInjected
	}
}

// lcIsolated is the {libc | rest} model used by the Redis rows: the
// store's bulk value path crosses into the libc compartment on every
// memcpy, which is where the fault is injected.
func lcIsolated() []build.Compartment {
	return []build.Compartment{
		{Name: "lc", Libraries: []string{"libc"}},
		{Name: "core", Libraries: []string{"sched", "alloc", "netstack", "app", "rest"}},
	}
}

// blastScenarios builds the experiment matrix: the TCP stack under
// fault for iperf, the libc/store path under fault for Redis, across
// the direct image and every isolating backend.
func blastScenarios() []blastScenario {
	// The iperf injection fires at the server's 4th netstack recv entry
	// — mid-transfer — and strands two pool buffers, so restart
	// teardown has real work to do.
	iperfInj := func(k fault.Kind) fault.Injection {
		return fault.Injection{Lib: "netstack", Fn: "recv", After: 4, Kind: k, Addr: 0x5000, LeakBufs: 2}
	}
	// The Redis injection fires at the 10th libc memcpy entry: the
	// store's value copies and the stack's buffer moves both route
	// through it, so the fault lands mid-workload.
	redisInj := func(k fault.Kind) fault.Injection {
		return fault.Injection{Lib: "libc", Fn: "memcpy", After: 10, Kind: k, Addr: 0x5000, LeakBufs: 2}
	}
	return []blastScenario{
		{workload: "iperf-tcp", image: "direct", backend: gate.FuncCall,
			comps: build.SingleCompartment(), inject: iperfInj(fault.KindInjected)},
		{workload: "iperf-tcp", image: "mpk-shared", backend: gate.MPKShared,
			comps: build.NWOnly(), faultIn: "nw", policy: fault.PolicyAbort,
			inject: iperfInj(fault.KindMPK)},
		{workload: "iperf-tcp", image: "mpk-shared", backend: gate.MPKShared,
			comps: build.NWOnly(), faultIn: "nw", policy: fault.PolicyDegrade,
			inject: iperfInj(fault.KindMPK)},
		{workload: "iperf-tcp", image: "mpk-switched", backend: gate.MPKSwitched,
			comps: build.NWOnly(), faultIn: "nw", policy: fault.PolicyRestart,
			inject: iperfInj(fault.KindMPK)},
		{workload: "iperf-tcp", image: "vm-rpc", backend: gate.VMRPC,
			comps: build.NWOnly(), faultIn: "nw", policy: fault.PolicyRestart,
			inject: iperfInj(fault.KindInjected)},
		{workload: "iperf-tcp", image: "cheri", backend: gate.CHERI,
			comps: build.NWOnly(), faultIn: "nw", policy: fault.PolicyRestart,
			inject: iperfInj(fault.KindCHERI)},
		{workload: "redis-store", image: "direct", backend: gate.FuncCall,
			comps: build.SingleCompartment(), inject: redisInj(fault.KindInjected)},
		{workload: "redis-store", image: "mpk-switched", backend: gate.MPKSwitched,
			comps: lcIsolated(), faultIn: "lc", policy: fault.PolicyRestart,
			inject: redisInj(fault.KindMPK)},
		{workload: "redis-store", image: "vm-rpc", backend: gate.VMRPC,
			comps: lcIsolated(), faultIn: "lc", policy: fault.PolicyRestart,
			inject: redisInj(fault.KindInjected)},
	}
}

// BlastRadius runs the full containment matrix.
func BlastRadius() (*BlastRadiusResult, error) {
	res := &BlastRadiusResult{}
	for _, sc := range blastScenarios() {
		row, err := runBlast(sc)
		if err != nil {
			return nil, fmt.Errorf("harness blastradius %s/%s: %w", sc.workload, sc.image, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func blastConfig(sc blastScenario) build.Config {
	cfg := build.Config{
		Name:         sc.image,
		Compartments: sc.comps,
		Backend:      sc.backend,
		Alloc:        build.AllocPerCompartment,
	}
	if sc.faultIn != "" && sc.policy != fault.PolicyAbort {
		cfg.OnFault = map[string]fault.Policy{sc.faultIn: sc.policy}
	}
	return cfg
}

func runBlast(sc blastScenario) (*BlastRow, error) {
	switch sc.workload {
	case "iperf-tcp":
		return runBlastIperf(sc)
	case "redis-store":
		return runBlastRedis(sc)
	default:
		return nil, fmt.Errorf("unknown workload %q", sc.workload)
	}
}

// classifyBlast turns a finished (or dead) run into a row. done
// reports whether the workload completed its full transfer.
func classifyBlast(sc blastScenario, w *build.World, in *fault.Injector,
	runErr, appErr error, done bool) *BlastRow {
	stats := w.Server.Sup.Stats()
	row := &BlastRow{
		Workload:   sc.workload,
		Image:      sc.image,
		Policy:     "-",
		Traps:      stats.Traps,
		Retries:    stats.Retries,
		RecoveryNS: clock.Nanoseconds(stats.RecoveryCycles),
		LeakedBufs: w.Server.Pool.Outstanding(),
	}
	if sc.faultIn != "" {
		row.Policy = sc.policy.String()
	}
	var crash *sched.ThreadCrash
	switch {
	case in.Fired() == 0:
		row.Outcome = OutcomeNoTrap
	case errors.As(runErr, &crash):
		row.Outcome = OutcomeFatal
		row.Detail = crash.Error()
	case stats.Degrades > 0:
		row.Outcome = OutcomeDegraded
		if appErr != nil {
			row.Detail = appErr.Error()
		}
	case runErr == nil && appErr == nil && done:
		if stats.Recoveries > 0 {
			row.Outcome = OutcomeRecovered
		} else {
			// The fault trapped but the workload still finished — the
			// trap was absorbed before it reached the application.
			row.Outcome = OutcomeContained
		}
	default:
		row.Outcome = OutcomeContained
		if appErr != nil {
			row.Detail = appErr.Error()
		} else if runErr != nil {
			row.Detail = runErr.Error()
		}
	}
	return row
}

func runBlastIperf(sc blastScenario) (*BlastRow, error) {
	const (
		totalBytes = 256 << 10
		recvBuf    = 8 << 10
	)
	cfg := blastConfig(sc)
	cfg.Net.SocketMode = net.TCPIPThreadMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	in := fault.NewInjector()
	in.Arm(sc.inject)
	w.Server.InjectFaults(in)
	srv := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf)
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, totalBytes, 32<<10)
	var srvErr, cliErr error
	w.Sched.Spawn("iperf-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("iperf-client", w.Client.CPU, func(th *sched.Thread) {
		cliErr = cli.Run(th)
	})
	runErr := w.Sched.Run()
	appErr := srvErr
	if appErr == nil {
		appErr = cliErr
	}
	done := srv.BytesReceived == uint64(totalBytes)
	return classifyBlast(sc, w, in, runErr, appErr, done), nil
}

func runBlastRedis(sc blastScenario) (*BlastRow, error) {
	const (
		ops     = 40
		payload = 256
	)
	cfg := blastConfig(sc)
	cfg.Net.SocketMode = net.TCPIPThreadMode
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	in := fault.NewInjector()
	in.Arm(sc.inject)
	w.Server.InjectFaults(in)
	srv := redis.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 6379)
	var srvErr, cliErr error
	completed := 0
	value := make([]byte, payload)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	w.Sched.Spawn("redis-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("redis-client", w.Client.CPU, func(th *sched.Thread) {
		c := redis.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
			w.Server.Stack.IP(), 6379)
		if cliErr = c.Connect(th); cliErr != nil {
			return
		}
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("key:%d", i%8)
			if i%2 == 0 {
				cliErr = c.Set(th, key, value)
			} else {
				_, _, cliErr = c.Get(th, key)
			}
			if cliErr != nil {
				return
			}
			completed++
		}
		cliErr = c.Close(th)
	})
	runErr := w.Sched.Run()
	appErr := cliErr
	if appErr == nil {
		appErr = srvErr
	}
	return classifyBlast(sc, w, in, runErr, appErr, completed == ops), nil
}
