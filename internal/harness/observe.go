package harness

import (
	"fmt"

	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/metrics"
	"flexos/internal/trace"
)

// Observation bundles one instrumented run's full observability
// output: the cycle-attribution breakdown (from the live clock
// ledgers), the metrics snapshot (live gate/NIC/pool/supervisor
// counters), and the crossing trace for timeline export. The trace is
// bounded and may drop events under load; the attribution and
// snapshot never do — TestAttributionSurvivesSaturatedRing pins that.
type Observation struct {
	Label   string `json:"label"`
	Backend string `json:"backend"`
	VCPUs   int    `json:"vcpus"`
	// Attr conserves capacity exactly: Attr.Check() == nil.
	Attr     *metrics.Attribution `json:"attribution"`
	Snapshot *metrics.Snapshot    `json:"snapshot"`
	// Events is the retained tail of the crossing trace.
	Events []trace.Event `json:"-"`
	// TotalEvents / DroppedEvents report trace-ring pressure: Dropped
	// > 0 means the Chrome timeline is a suffix of the run, while the
	// attribution above still covers all of it.
	TotalEvents   uint64 `json:"trace_events_total"`
	DroppedEvents uint64 `json:"trace_events_dropped"`
}

// observeTraceCap bounds each observed run's crossing trace. Big
// enough for a useful timeline, small enough that a long run saturates
// it — which is fine, because nothing numeric is derived from it.
const observeTraceCap = 8192

// observationOf assembles the exported bundle from a finished world.
func observationOf(label string, cfg build.Config, w *build.World, ring *trace.Ring, attr *metrics.Attribution) Observation {
	o := Observation{
		Label:    label,
		Backend:  cfg.Backend.String(),
		VCPUs:    w.Server.Clock.NCPU(),
		Attr:     attr,
		Snapshot: w.Server.MetricsSnapshot(),
	}
	if ring != nil {
		o.Events = ring.Events()
		o.TotalEvents = ring.Total()
		o.DroppedEvents = ring.Dropped()
	}
	return o
}

// ObserveFor runs one instrumented, traced measurement per
// configuration of the named experiment and returns the observability
// bundles. "smp" observes the SMP sweep's three images at the sweep's
// largest vCPU count; every other experiment name observes the five
// isolation backends on the single-stream iperf workload. Each
// observation's attribution is conservation-checked before return.
func ObserveFor(exp string, quick bool) ([]Observation, error) {
	var out []Observation
	if exp == "smp" {
		const (
			total   = 8 << 20
			recvBuf = 16 << 10
		)
		vcpus := SmpVCPUs(quick)
		n := vcpus[len(vcpus)-1]
		for _, base := range smpConfigs() {
			cfg := base
			if n > 1 {
				cfg.Smp = n
			}
			r, ring, w, err := runIperfParallelWorld(cfg, SmpStreams, total, recvBuf, observeTraceCap)
			if err != nil {
				return nil, fmt.Errorf("observe smp %s: %w", base.Name, err)
			}
			o := observationOf(fmt.Sprintf("%s @%d vCPUs", base.Name, n), cfg, w, ring, r.Attr)
			if err := o.Attr.Check(); err != nil {
				return nil, fmt.Errorf("observe smp %s: %w", base.Name, err)
			}
			out = append(out, o)
		}
		return out, nil
	}
	// Default: the five backends over the NW-only plan, single stream.
	configs := []build.Config{
		{Name: "funccall NW-only", Compartments: build.NWOnly(),
			Backend: gate.FuncCall, Alloc: build.AllocPerCompartment},
		{Name: "mpk-shared NW-only", Compartments: build.NWOnly(),
			Backend: gate.MPKShared, Alloc: build.AllocPerCompartment},
		{Name: "mpk-switched NW-only", Compartments: build.NWOnly(),
			Backend: gate.MPKSwitched, Alloc: build.AllocPerCompartment},
		{Name: "vm-rpc NW-only", Compartments: build.NWOnly(),
			Backend: gate.VMRPC, Alloc: build.AllocPerCompartment},
		{Name: "cheri NW-only", Compartments: build.NWOnly(),
			Backend: gate.CHERI, Alloc: build.AllocPerCompartment},
	}
	total := 1 << 20
	if quick {
		total = 256 << 10
	}
	for _, cfg := range configs {
		r, ring, w, err := runIperfWorld(cfg, total, 16<<10, observeTraceCap)
		if err != nil {
			return nil, fmt.Errorf("observe %s: %w", cfg.Name, err)
		}
		o := observationOf(cfg.Name, cfg, w, ring, r.Attr)
		if err := o.Attr.Check(); err != nil {
			return nil, fmt.Errorf("observe %s: %w", cfg.Name, err)
		}
		out = append(out, o)
	}
	return out, nil
}
