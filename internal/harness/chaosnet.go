package harness

import (
	"fmt"

	"flexos/internal/app/iperf"
	"flexos/internal/app/retry"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/gate"
	"flexos/internal/net"
	"flexos/internal/sched"
)

// --- Chaosnet: goodput retention under adversarial link faults --------
//
// The robustness counterpart of Fig. 3: the same iperf transfer over
// the same isolation backends, but across a wire that drops frames at
// a swept rate. A transport with only a fixed retransmission timer
// pays one multi-RTO stall per loss; the hardened stack's adaptive
// RTO, fast retransmit and reassembly queue turn most losses into a
// dup-ACK round trip, so goodput degrades gracefully. Everything runs
// in virtual time on a seeded fault PRNG — the "chaos" replays
// bit-identically.

// ChaosnetPoint is one (loss rate, goodput) sample.
type ChaosnetPoint struct {
	// Loss is the per-frame, per-direction drop probability.
	Loss float64
	// Gbps is the achieved server-side goodput.
	Gbps float64
	// RetentionPct is goodput as a percentage of the same backend's
	// lossless run (100 at loss 0 by construction).
	RetentionPct float64
	// RecoveryCycles is the extra virtual time the lossy transfer took
	// over the lossless one — the total cost of detecting and repairing
	// every loss (0 at loss 0).
	RecoveryCycles uint64
	// Transport repair counters for the run.
	Retransmits     uint64
	FastRetransmits uint64
	OOOQueued       uint64
	// WireDropped is what the fault model actually removed.
	WireDropped uint64
}

// ChaosnetSeries is one backend's loss sweep.
type ChaosnetSeries struct {
	Label   string
	Backend gate.Backend
	Points  []ChaosnetPoint
}

// ChaosnetResult is the loss × backend sweep.
type ChaosnetResult struct {
	Losses []float64
	Series []ChaosnetSeries
}

// ChaosnetLosses is the swept per-direction frame-drop rates.
func ChaosnetLosses(quick bool) []float64 {
	if quick {
		return []float64{0, 0.01}
	}
	return []float64{0, 0.001, 0.01, 0.05}
}

// chaosnetConfigs are the swept images: the no-gate baseline and the
// two backends whose crossing costs bracket the rest.
func chaosnetConfigs() []build.Config {
	return []build.Config{
		{Name: "Direct NW-only", Compartments: build.NWOnly(),
			Backend: gate.FuncCall, Alloc: build.AllocPerCompartment},
		{Name: "MPK-Sha. NW-only", Compartments: build.NWOnly(),
			Backend: gate.MPKShared, Alloc: build.AllocPerCompartment},
		{Name: "VM RPC NW-only", Compartments: build.NWOnly(), Platform: net.Xen,
			Backend: gate.VMRPC, Alloc: build.AllocPerCompartment},
	}
}

// chaosnetSeed keeps every run of the sweep on one fault schedule.
const chaosnetSeed = 42

// RunChaosnetIperf runs one iperf transfer over a lossy wire and
// reports goodput plus the transport's repair counters. The client
// retries its connect with jittered exponential backoff — on a lossy
// link even the handshake can die for real.
func RunChaosnetIperf(cfg build.Config, totalBytes, recvBuf int, loss float64, seed uint64) (*IperfResult, net.Stats, *net.Wire, error) {
	cfg.Net.SocketMode = net.TCPIPThreadMode
	// Merge rather than overwrite: the lossy soak pre-sets reorder and
	// corruption rates on top of the swept drop rate.
	cfg.Link.Drop = loss
	cfg.Link.Seed = seed
	w, err := build.NewWorld(cfg)
	if err != nil {
		return nil, net.Stats{}, nil, err
	}
	srv := iperf.NewServer(w.Server.Env("app"), w.Server.LibC, w.Server.Stack, 5001, recvBuf)
	cli := iperf.NewClient(w.Client.Env("app"), w.Client.LibC, w.Client.Stack,
		w.Server.Stack.IP(), 5001, totalBytes, 32<<10)
	cli.Retry = retry.Policy{Attempts: 5, Seed: seed}
	var srvErr, cliErr error
	w.Sched.Spawn("iperf-server", w.Server.CPU, func(th *sched.Thread) {
		srvErr = srv.Run(th)
	})
	w.Sched.Spawn("iperf-client", w.Client.CPU, func(th *sched.Thread) {
		cliErr = cli.Run(th)
	})
	if err := w.Sched.Run(); err != nil {
		return nil, net.Stats{}, nil, fmt.Errorf("chaosnet iperf: %w", err)
	}
	if srvErr != nil {
		return nil, net.Stats{}, nil, fmt.Errorf("chaosnet iperf server: %w", srvErr)
	}
	if cliErr != nil {
		return nil, net.Stats{}, nil, fmt.Errorf("chaosnet iperf client: %w", cliErr)
	}
	if srv.BytesReceived != uint64(totalBytes) {
		return nil, net.Stats{}, nil, fmt.Errorf("chaosnet iperf: received %d of %d bytes", srv.BytesReceived, totalBytes)
	}
	if err := checkPoolLeaks(w); err != nil {
		return nil, net.Stats{}, nil, err
	}
	cycles := w.Server.CPU.Cycles()
	res := &IperfResult{
		Label:        cfg.Name,
		RecvBuf:      recvBuf,
		Bytes:        srv.BytesReceived,
		ServerCycles: cycles,
		Gbps:         clock.GbpsFor(srv.BytesReceived, cycles),
		Crossings:    w.Server.Registry.TotalCrossings(),
		ByComponent:  w.Server.CPU.ByComponent(),
		Attr:         w.Server.Attribution(),
	}
	// Both stacks repair losses; the client (sender) side carries the
	// retransmission story for a server-bound transfer, so sum the two.
	stats := w.Server.Stack.Stats()
	cs := w.Client.Stack.Stats()
	stats.Retransmits += cs.Retransmits
	stats.FastRetransmits += cs.FastRetransmits
	stats.ChecksumDrops += cs.ChecksumDrops
	stats.OOOQueued += cs.OOOQueued
	stats.ZeroWndProbes += cs.ZeroWndProbes
	stats.NetDeaths += cs.NetDeaths
	return res, stats, w.Wire, nil
}

// Chaosnet runs the loss × backend sweep. quick thins it for tests.
func Chaosnet(quick bool) (*ChaosnetResult, error) {
	const (
		total   = 2 << 20
		recvBuf = 16 << 10
	)
	losses := ChaosnetLosses(quick)
	configs := chaosnetConfigs()
	if quick {
		configs = configs[1:2] // MPK-shared carries the gate
	}
	out := &ChaosnetResult{Losses: losses}
	for _, cfg := range configs {
		s := ChaosnetSeries{Label: cfg.Name, Backend: cfg.Backend}
		var baseGbps float64
		var baseCycles uint64
		for _, loss := range losses {
			r, stats, wire, err := RunChaosnetIperf(cfg, total, recvBuf, loss, chaosnetSeed)
			if err != nil {
				return nil, fmt.Errorf("chaosnet %s @%.3f: %w", cfg.Name, loss, err)
			}
			p := ChaosnetPoint{
				Loss:            loss,
				Gbps:            r.Gbps,
				Retransmits:     stats.Retransmits,
				FastRetransmits: stats.FastRetransmits,
				OOOQueued:       stats.OOOQueued,
			}
			if wire != nil {
				p.WireDropped = wire.Dropped
			}
			if loss == 0 {
				baseGbps, baseCycles = r.Gbps, r.ServerCycles
			}
			if baseGbps > 0 {
				p.RetentionPct = r.Gbps / baseGbps * 100
			}
			if r.ServerCycles > baseCycles {
				p.RecoveryCycles = r.ServerCycles - baseCycles
			}
			s.Points = append(s.Points, p)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}
