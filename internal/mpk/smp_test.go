package mpk

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// TestPKRUPerVCPU is the cross-CPU isolation regression test: a domain
// switch on one vCPU must not change what any other vCPU may access.
// Two cores of one machine sit in different protection domains
// simultaneously; each is checked against its own register.
func TestPKRUPerVCPU(t *testing.T) {
	a := mem.NewArena(16 * mem.PageSize)
	m := clock.NewMachine(2)
	u := New(a, m)
	if err := a.SetKeyRange(mem.PageSize, mem.PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.SetKeyRange(2*mem.PageSize, mem.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	inKey2 := mem.Addr(mem.PageSize + 8)
	inKey3 := mem.Addr(2*mem.PageSize + 8)

	// vCPU 0 enters domain 2, vCPU 1 enters domain 3.
	m.CPU(0).MakeCurrent()
	if err := u.WritePKRU(DomainPKRU(2)); err != nil {
		t.Fatal(err)
	}
	m.CPU(1).MakeCurrent()
	if err := u.WritePKRU(DomainPKRU(3)); err != nil {
		t.Fatal(err)
	}

	// The switch on vCPU 1 did not leak into vCPU 0's register.
	if got := u.PKRUAt(0); got != DomainPKRU(2) {
		t.Fatalf("vCPU 0 PKRU = %v, want %v (leak from vCPU 1's switch)", got, DomainPKRU(2))
	}
	if got := u.PKRUAt(1); got != DomainPKRU(3) {
		t.Fatalf("vCPU 1 PKRU = %v, want %v", got, DomainPKRU(3))
	}

	// Each vCPU can touch its own domain and faults on the other's —
	// simultaneously, with no WRPKRU in between.
	m.CPU(0).MakeCurrent()
	if err := u.Store(inKey2, []byte{1}); err != nil {
		t.Fatalf("vCPU 0 store in own domain: %v", err)
	}
	var f *Fault
	if err := u.Store(inKey3, []byte{1}); !errors.As(err, &f) {
		t.Fatalf("vCPU 0 store in vCPU 1's domain = %v, want *Fault", err)
	}
	m.CPU(1).MakeCurrent()
	if err := u.Store(inKey3, []byte{1}); err != nil {
		t.Fatalf("vCPU 1 store in own domain: %v", err)
	}
	if err := u.Store(inKey2, []byte{1}); !errors.As(err, &f) {
		t.Fatalf("vCPU 1 store in vCPU 0's domain = %v, want *Fault", err)
	}
}
