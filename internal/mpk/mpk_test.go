package mpk

import (
	"errors"
	"testing"
	"testing/quick"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

func TestPKRUBits(t *testing.T) {
	p := PermitAll
	for k := mem.Key(0); k < mem.NumKeys; k++ {
		if !p.CanRead(k) || !p.CanWrite(k) {
			t.Fatalf("PermitAll denies key %d", k)
		}
	}
	p = DenyAll()
	if !p.CanRead(0) || !p.CanWrite(0) {
		t.Fatal("DenyAll must keep key 0 (shared) accessible")
	}
	for k := mem.Key(1); k < mem.NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Fatalf("DenyAll allows key %d", k)
		}
	}
}

func TestPKRUAllowDenyReadOnly(t *testing.T) {
	p := DenyAll().Allow(3).AllowRead(5)
	if !p.CanRead(3) || !p.CanWrite(3) {
		t.Fatal("Allow(3) incomplete")
	}
	if !p.CanRead(5) || p.CanWrite(5) {
		t.Fatal("AllowRead(5) wrong")
	}
	p = p.Deny(3)
	if p.CanRead(3) {
		t.Fatal("Deny(3) failed")
	}
}

func TestDomainPKRU(t *testing.T) {
	p := DomainPKRU(2, 4)
	for k := mem.Key(0); k < mem.NumKeys; k++ {
		want := k == 0 || k == 2 || k == 4
		if p.CanWrite(k) != want {
			t.Fatalf("DomainPKRU(2,4): key %d write = %v, want %v", k, p.CanWrite(k), want)
		}
	}
}

// Property: Allow then Deny round-trips to inaccessible; AllowRead
// implies readable and not writable, for any starting register.
func TestPKRUProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8) bool {
		p := PKRU(raw)
		k := mem.Key(kRaw % mem.NumKeys)
		a := p.Allow(k)
		r := p.AllowRead(k)
		d := p.Deny(k)
		return a.CanRead(k) && a.CanWrite(k) &&
			r.CanRead(k) && !r.CanWrite(k) &&
			!d.CanRead(k) && !d.CanWrite(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newUnit(t *testing.T) (*Unit, *mem.Arena, *clock.CPU) {
	t.Helper()
	a := mem.NewArena(16 * mem.PageSize)
	cpu := clock.New()
	return New(a, cpu), a, cpu
}

func TestLoadStoreWithinDomain(t *testing.T) {
	u, a, _ := newUnit(t)
	if err := a.SetKeyRange(mem.PageSize, mem.PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if err := u.WritePKRU(DomainPKRU(2)); err != nil {
		t.Fatal(err)
	}
	addr := mem.Addr(mem.PageSize + 64)
	if err := u.Store(addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := u.Load(addr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Load = %q", got)
	}
}

func TestCrossDomainFault(t *testing.T) {
	u, a, _ := newUnit(t)
	mustNoErr(t, a.SetKeyRange(mem.PageSize, mem.PageSize, 2))
	mustNoErr(t, a.SetKeyRange(2*mem.PageSize, mem.PageSize, 3))
	mustNoErr(t, u.WritePKRU(DomainPKRU(2)))

	// Write into the foreign domain faults.
	err := u.Store(mem.Addr(2*mem.PageSize+8), []byte{1})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Key != 3 || !f.Write {
		t.Fatalf("fault = %+v", f)
	}
	if u.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", u.Faults())
	}

	// Read also faults.
	if _, err := u.Load(mem.Addr(2*mem.PageSize), 4); err == nil {
		t.Fatal("cross-domain read allowed")
	}

	// Key 0 (shared) is always accessible.
	if err := u.Store(mem.Addr(3*mem.PageSize), []byte{1}); err != nil {
		t.Fatalf("shared write failed: %v", err)
	}
}

func TestReadOnlyDomain(t *testing.T) {
	// The verified scheduler expects others to read but not write its
	// memory (the paper's Requires example).
	u, a, _ := newUnit(t)
	mustNoErr(t, a.SetKeyRange(mem.PageSize, mem.PageSize, 4))
	mustNoErr(t, u.WritePKRU(DenyAll().AllowRead(4)))
	if _, err := u.Load(mem.PageSize, 8); err != nil {
		t.Fatalf("read-only read failed: %v", err)
	}
	if err := u.Store(mem.PageSize, []byte{1}); err == nil {
		t.Fatal("write through read-only key allowed")
	}
}

func TestAccessSpanningDomains(t *testing.T) {
	u, a, _ := newUnit(t)
	mustNoErr(t, a.SetKeyRange(mem.PageSize, mem.PageSize, 2))
	mustNoErr(t, a.SetKeyRange(2*mem.PageSize, mem.PageSize, 3))
	mustNoErr(t, u.WritePKRU(DomainPKRU(2)))
	// A load straddling the 2->3 boundary must fault.
	if _, err := u.Load(mem.Addr(2*mem.PageSize-4), 8); err == nil {
		t.Fatal("straddling load allowed")
	}
}

func TestCopyChecksBothSides(t *testing.T) {
	u, a, _ := newUnit(t)
	mustNoErr(t, a.SetKeyRange(mem.PageSize, mem.PageSize, 2))
	mustNoErr(t, a.SetKeyRange(2*mem.PageSize, mem.PageSize, 3))
	src, dst := mem.Addr(mem.PageSize), mem.Addr(2*mem.PageSize)
	mustNoErr(t, u.WritePKRU(DomainPKRU(2)))
	if err := u.Copy(dst, src, 16); err == nil {
		t.Fatal("copy into foreign domain allowed")
	}
	mustNoErr(t, u.WritePKRU(DomainPKRU(2, 3)))
	b, _ := a.Bytes(src, 3)
	copy(b, "abc")
	if err := u.Copy(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Bytes(dst, 3)
	if string(got) != "abc" {
		t.Fatalf("copy result %q", got)
	}
}

func TestWRPKRUCost(t *testing.T) {
	u, _, cpu := newUnit(t)
	mustNoErr(t, u.WritePKRU(DomainPKRU(1)))
	if got := cpu.Component(clock.CompGate); got != clock.CostWRPKRU {
		t.Fatalf("WRPKRU cost = %d, want %d", got, clock.CostWRPKRU)
	}
	if u.Writes() != 1 {
		t.Fatal("write not counted")
	}
}

func TestSealingPolicies(t *testing.T) {
	for _, pol := range []SealPolicy{SealStatic, SealRuntime, SealPageTable} {
		u, _, cpu := newUnit(t)
		u.SetPolicy(pol)
		good := DomainPKRU(1)
		u.RegisterDomain(good)
		if err := u.WritePKRU(good); err != nil {
			t.Fatalf("%v: registered value rejected: %v", pol, err)
		}
		evil := DomainPKRU(1, 2, 3)
		if err := u.WritePKRU(evil); err == nil {
			t.Fatalf("%v: unregistered PKRU accepted", pol)
		}
		if u.PKRU() != good {
			t.Fatalf("%v: register changed by rejected write", pol)
		}
		// Policies have ordered cost: static <= runtime <= pagetable.
		_ = cpu
	}
	// Cost ordering.
	costs := map[SealPolicy]uint64{}
	for _, pol := range []SealPolicy{SealStatic, SealRuntime, SealPageTable} {
		u, _, cpu := newUnit(t)
		u.SetPolicy(pol)
		mustNoErr(t, u.WritePKRU(PermitAll))
		costs[pol] = cpu.Component(clock.CompGate)
	}
	if !(costs[SealStatic] < costs[SealRuntime] && costs[SealRuntime] < costs[SealPageTable]) {
		t.Fatalf("sealing cost ordering wrong: %v", costs)
	}
}

func TestNoSealingWithoutRegistration(t *testing.T) {
	// Before any domain is registered, boot code may write PKRU freely.
	u, _, _ := newUnit(t)
	u.SetPolicy(SealStatic)
	if err := u.WritePKRU(DomainPKRU(5)); err != nil {
		t.Fatalf("boot-time PKRU write rejected: %v", err)
	}
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Addr: 0x2000, Key: 3, Write: true, PKRU: DenyAll()}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestBadLength(t *testing.T) {
	u, _, _ := newUnit(t)
	if _, err := u.Load(mem.PageSize, 0); err == nil {
		t.Fatal("zero-length load allowed")
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
