package mpk

import (
	"strings"
	"testing"

	"flexos/internal/mem"
)

// TestPKRUBitPatterns pins the exact register encoding: bit 2k is
// access-disable, bit 2k+1 is write-disable, matching the hardware
// layout the simulated WRPKRU loads.
func TestPKRUBitPatterns(t *testing.T) {
	tests := []struct {
		name string
		got  PKRU
		want PKRU
	}{
		{"permit-all", PermitAll, 0},
		{"deny-key1", PermitAll.Deny(1), 0b1100},
		{"deny-key3", PermitAll.Deny(3), 0b11000000},
		{"read-only-key1", PermitAll.Deny(1).AllowRead(1), 0b1000},
		{"allow-clears-both", PKRU(0b1100).Allow(1), 0},
		{"allow-read-sets-wd", DenyAll().AllowRead(2), DenyAll() &^ (0b01 << 4)},
		{"deny-idempotent", PermitAll.Deny(2).Deny(2), 0b110000},
		{"allow-idempotent", DenyAll().Allow(5).Allow(5), DenyAll() &^ (0b11 << 10)},
		{"domain-2-4", DomainPKRU(2, 4), DenyAll() &^ (0b11 << 4) &^ (0b11 << 8)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Fatalf("pkru = %#b, want %#b", uint32(tc.got), uint32(tc.want))
			}
		})
	}
}

// TestPKRUAccessTable drives CanRead/CanWrite through every AD/WD bit
// combination for one key.
func TestPKRUAccessTable(t *testing.T) {
	const k = mem.Key(3)
	tests := []struct {
		name     string
		p        PKRU
		read, wr bool
	}{
		{"clear", PermitAll, true, true},
		{"wd-only", PKRU(0b10 << (2 * k)), true, false},
		{"ad-only", PKRU(0b01 << (2 * k)), false, false},
		{"ad-wd", PKRU(0b11 << (2 * k)), false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.p.CanRead(k) != tc.read || tc.p.CanWrite(k) != tc.wr {
				t.Fatalf("CanRead=%v CanWrite=%v, want %v/%v",
					tc.p.CanRead(k), tc.p.CanWrite(k), tc.read, tc.wr)
			}
		})
	}
}

func TestPKRUString(t *testing.T) {
	tests := []struct {
		p    PKRU
		want []string
	}{
		{DenyAll(), []string{"0:rw"}},
		{DomainPKRU(2), []string{"0:rw", "2:rw"}},
		{DenyAll().AllowRead(4), []string{"0:rw", "4:ro"}},
	}
	for _, tc := range tests {
		s := tc.p.String()
		for _, w := range tc.want {
			if !strings.Contains(s, w) {
				t.Errorf("%v.String() = %q, missing %q", uint32(tc.p), s, w)
			}
		}
	}
}
