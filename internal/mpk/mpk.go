// Package mpk simulates Intel Memory Protection Keys.
//
// Real MPK tags each page with one of 16 keys (stored in the page
// table) and filters every load/store through the per-thread PKRU
// register: two bits per key, access-disable and write-disable. A
// single unprivileged instruction, WRPKRU, rewrites PKRU — which is
// both what makes domain switching cheap (tens of cycles, no syscall)
// and what makes the mechanism fragile: any compartment can execute
// WRPKRU, so the FlexOS MPK backend must prevent unauthorized writes
// via static analysis (ERIM), runtime checking (Hodor) or page-table
// sealing. All three policies are modelled here.
//
// The package works against the paged arena of internal/mem: the page
// table's key tags come from mem.Arena and every checked access
// consults the current PKRU, so an out-of-compartment access faults
// exactly where real hardware would raise a page fault with PK set.
package mpk

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// PKRU is the protection-key rights register: two bits per key,
// bit 2k = access-disable (AD), bit 2k+1 = write-disable (WD).
// The zero value permits everything, as on real hardware.
type PKRU uint32

// PermitAll is the PKRU value that allows access to every key.
const PermitAll PKRU = 0

// DenyAll disables access to every key except key 0, which FlexOS
// keeps for memory shared by all compartments.
func DenyAll() PKRU {
	var p PKRU
	for k := mem.Key(1); k < mem.NumKeys; k++ {
		p |= PKRU(0b11) << (2 * k)
	}
	return p
}

// CanRead reports whether PKRU permits reads of pages tagged k.
func (p PKRU) CanRead(k mem.Key) bool {
	return p&(1<<(2*k)) == 0
}

// CanWrite reports whether PKRU permits writes of pages tagged k.
func (p PKRU) CanWrite(k mem.Key) bool {
	return p&(0b11<<(2*k)) == 0
}

// Allow returns a copy of p with full access to key k.
func (p PKRU) Allow(k mem.Key) PKRU {
	return p &^ (0b11 << (2 * k))
}

// AllowRead returns a copy of p with read-only access to key k.
func (p PKRU) AllowRead(k mem.Key) PKRU {
	return (p &^ (0b11 << (2 * k))) | (0b10 << (2 * k))
}

// Deny returns a copy of p with no access to key k.
func (p PKRU) Deny(k mem.Key) PKRU {
	return p | (0b11 << (2 * k))
}

// DomainPKRU builds the PKRU for a compartment that may fully access
// the listed keys (plus the shared key 0) and nothing else.
func DomainPKRU(keys ...mem.Key) PKRU {
	p := DenyAll()
	for _, k := range keys {
		p = p.Allow(k)
	}
	return p
}

// String renders the register as the list of accessible keys.
func (p PKRU) String() string {
	s := "pkru{"
	first := true
	for k := mem.Key(0); k < mem.NumKeys; k++ {
		if !p.CanRead(k) {
			continue
		}
		if !first {
			s += ","
		}
		first = false
		mode := "rw"
		if !p.CanWrite(k) {
			mode = "ro"
		}
		s += fmt.Sprintf("%d:%s", k, mode)
	}
	return s + "}"
}

// Fault describes a protection-key violation: the simulated equivalent
// of a page fault with the PK error-code bit set.
type Fault struct {
	Addr  mem.Addr
	Key   mem.Key
	Write bool
	PKRU  PKRU
}

func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mpk: protection key fault: %s of %#x (key %d) with %v",
		op, f.Addr, f.Key, f.PKRU)
}

// SealPolicy selects how the backend prevents unauthorized PKRU writes.
type SealPolicy int

const (
	// SealStatic models ERIM-style binary inspection: WRPKRU is free at
	// run time because the binary was vetted ahead of time, but only
	// registered domain values may ever be loaded.
	SealStatic SealPolicy = iota
	// SealRuntime models Hodor-style runtime checking: every WRPKRU
	// pays an extra validation cost.
	SealRuntime
	// SealPageTable models page-table sealing: PKRU writes are
	// mediated by the (trusted) memory manager at higher cost.
	SealPageTable
)

// String implements fmt.Stringer.
func (s SealPolicy) String() string {
	switch s {
	case SealStatic:
		return "static"
	case SealRuntime:
		return "runtime"
	case SealPageTable:
		return "pagetable"
	default:
		return fmt.Sprintf("SealPolicy(%d)", int(s))
	}
}

// sealExtraCycles is the per-WRPKRU surcharge of each policy.
func (s SealPolicy) sealExtraCycles() uint64 {
	switch s {
	case SealRuntime:
		return 14
	case SealPageTable:
		return 120
	default:
		return 0
	}
}

// Unit is the simulated MPK hardware of one machine. PKRU is a
// per-thread register on real hardware; in the simulator, where each
// vCPU runs exactly one thread at a time, it is modelled per vCPU:
// pkru[i] is vCPU i's register, and WRPKRU/access checks always act on
// the register of the vCPU currently charging the clock. Two cores can
// therefore sit in different protection domains simultaneously — a
// domain switch on one vCPU must never change what another vCPU may
// touch.
type Unit struct {
	arena   *mem.Arena
	clk     clock.Clock
	pkru    []PKRU // indexed by vCPU id
	policy  SealPolicy
	sealed  map[PKRU]bool // registered values when sealing is active
	writes  uint64
	faults  uint64
	checked uint64
}

// New creates an MPK unit over the arena, charging gate costs to clk.
// Every vCPU's initial PKRU permits everything (the boot state).
func New(a *mem.Arena, clk clock.Clock) *Unit {
	return &Unit{arena: a, clk: clk, pkru: make([]PKRU, clk.NCPU()), sealed: make(map[PKRU]bool)}
}

// cur returns a pointer to the current vCPU's PKRU register.
func (u *Unit) cur() *PKRU { return &u.pkru[u.clk.CurID()] }

// SetPolicy selects the PKRU-integrity policy.
func (u *Unit) SetPolicy(p SealPolicy) { u.policy = p }

// Policy reports the active PKRU-integrity policy.
func (u *Unit) Policy() SealPolicy { return u.policy }

// RegisterDomain records a legitimate PKRU value; under SealStatic and
// SealPageTable only registered values may be written.
func (u *Unit) RegisterDomain(p PKRU) { u.sealed[p] = true }

// PKRU reports the current vCPU's register value.
func (u *Unit) PKRU() PKRU { return *u.cur() }

// PKRUAt reports vCPU i's register value (for cross-CPU isolation
// tests and debugging).
func (u *Unit) PKRUAt(i int) PKRU { return u.pkru[i] }

// Writes reports how many WRPKRU instructions have executed.
func (u *Unit) Writes() uint64 { return u.writes }

// Faults reports how many protection faults were raised.
func (u *Unit) Faults() uint64 { return u.faults }

// Checked reports how many access checks were performed.
func (u *Unit) Checked() uint64 { return u.checked }

// WritePKRU executes WRPKRU on the current vCPU: it charges the
// domain-switch cost (plus the sealing policy's surcharge) and
// installs the new value in that vCPU's register only. Under sealing
// policies, loading an unregistered value is an integrity violation
// and returns an error without changing the register.
func (u *Unit) WritePKRU(p PKRU) error {
	u.clk.Charge(clock.CompGate, clock.CostWRPKRU+u.policy.sealExtraCycles())
	u.writes++
	if u.policy != SealRuntime && len(u.sealed) > 0 && !u.sealed[p] {
		return fmt.Errorf("mpk: %v rejected by %v sealing", p, u.policy)
	}
	if u.policy == SealRuntime && len(u.sealed) > 0 && !u.sealed[p] {
		return fmt.Errorf("mpk: %v rejected by runtime check", p)
	}
	*u.cur() = p
	return nil
}

// check validates one access against the page table and the current
// vCPU's PKRU.
func (u *Unit) check(addr mem.Addr, n int, write bool) error {
	u.checked++
	if n <= 0 {
		return fmt.Errorf("mpk: bad access length %d", n)
	}
	pkru := *u.cur()
	first := addr &^ (mem.PageSize - 1)
	for page := first; page < addr+mem.Addr(n); page += mem.PageSize {
		k, err := u.arena.KeyAt(page)
		if err != nil {
			return err
		}
		ok := pkru.CanRead(k)
		if write {
			ok = pkru.CanWrite(k)
		}
		if !ok {
			u.faults++
			return &Fault{Addr: addr, Key: k, Write: write, PKRU: pkru}
		}
	}
	return nil
}

// Load returns the bytes at [addr, addr+n) after a read check.
// The returned slice aliases arena memory; callers copy if they keep it.
func (u *Unit) Load(addr mem.Addr, n int) ([]byte, error) {
	if err := u.check(addr, n, false); err != nil {
		return nil, err
	}
	return u.arena.Bytes(addr, n)
}

// Store writes data at addr after a write check.
func (u *Unit) Store(addr mem.Addr, data []byte) error {
	if err := u.check(addr, len(data), true); err != nil {
		return err
	}
	dst, err := u.arena.Bytes(addr, len(data))
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// Copy moves n bytes from src to dst with both sides checked.
func (u *Unit) Copy(dst, src mem.Addr, n int) error {
	if err := u.check(src, n, false); err != nil {
		return err
	}
	if err := u.check(dst, n, true); err != nil {
		return err
	}
	s, err := u.arena.Bytes(src, n)
	if err != nil {
		return err
	}
	d, err := u.arena.Bytes(dst, n)
	if err != nil {
		return err
	}
	copy(d, s)
	return nil
}

// Arena exposes the underlying arena for trusted infrastructure.
func (u *Unit) Arena() *mem.Arena { return u.arena }
