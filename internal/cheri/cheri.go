// Package cheri simulates a CHERI-style capability machine as an
// alternative isolation substrate.
//
// The paper motivates FlexOS's gate abstraction with exactly this
// hardware heterogeneity: protection keys on one machine, capabilities
// (CHERI) on another — the image should retarget at build time. Where
// MPK tags *pages* and filters accesses through the PKRU register,
// a capability machine tags *pointers*: every reference carries base,
// length and permissions, hardware enforces bounds and monotonicity
// (derived capabilities can only shrink), and compartment crossings
// invoke a sealed code/data capability pair (CInvoke) — no page table
// involved, no 16-domain limit.
package cheri

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// Perms is a capability's permission mask.
type Perms uint8

// Permission bits.
const (
	PermRead Perms = 1 << iota
	PermWrite
	PermExecute
)

// String renders "rwx"-style permissions.
func (p Perms) String() string {
	out := []byte("---")
	if p&PermRead != 0 {
		out[0] = 'r'
	}
	if p&PermWrite != 0 {
		out[1] = 'w'
	}
	if p&PermExecute != 0 {
		out[2] = 'x'
	}
	return string(out)
}

// Capability is a bounded, tagged reference. The zero value is
// untagged (invalid), like a cleared capability register.
type Capability struct {
	Base  mem.Addr
	Len   int
	Perms Perms

	tag    bool
	sealed bool
	otype  uint32
}

// Valid reports whether the capability's tag is set.
func (c Capability) Valid() bool { return c.tag }

// Sealed reports whether the capability is sealed (usable only via
// Invoke with its object type).
func (c Capability) Sealed() bool { return c.sealed }

// OType reports the seal's object type.
func (c Capability) OType() uint32 { return c.otype }

// String implements fmt.Stringer.
func (c Capability) String() string {
	state := "cap"
	if !c.tag {
		state = "untagged"
	} else if c.sealed {
		state = fmt.Sprintf("sealed(%d)", c.otype)
	}
	return fmt.Sprintf("%s[%#x,+%d,%v]", state, c.Base, c.Len, c.Perms)
}

// Fault is a capability violation: the simulated equivalent of a CHERI
// exception.
type Fault struct {
	Cap    Capability
	Op     string
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cheri: %s via %v: %s", f.Op, f.Cap, f.Detail)
}

// Machine is the capability hardware attached to an arena.
type Machine struct {
	arena     *mem.Arena
	cpu       clock.Clock
	nextOType uint32
	derefs    uint64
	faults    uint64
}

// New creates a capability machine over the arena.
func New(a *mem.Arena, cpu clock.Clock) *Machine {
	return &Machine{arena: a, cpu: cpu, nextOType: 1}
}

// Faults reports capability violations raised so far.
func (m *Machine) Faults() uint64 { return m.faults }

// Derefs reports checked dereferences.
func (m *Machine) Derefs() uint64 { return m.derefs }

// Root mints the all-powerful capability over a range — the boot-time
// almighty capability firmware hands to the loader; everything else is
// derived (and therefore smaller) from it.
func (m *Machine) Root(base mem.Addr, n int, perms Perms) (Capability, error) {
	if n <= 0 || !m.arena.Contains(base, n) {
		return Capability{}, fmt.Errorf("cheri: root over invalid range [%#x,+%d)", base, n)
	}
	return Capability{Base: base, Len: n, Perms: perms, tag: true}, nil
}

// Derive narrows a capability: the result must lie within the parent's
// bounds and may not add permissions (monotonicity). Deriving from an
// untagged or sealed capability faults.
func (m *Machine) Derive(c Capability, off, n int, perms Perms) (Capability, error) {
	if !c.tag {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "derive", Detail: "untagged source"}
	}
	if c.sealed {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "derive", Detail: "sealed source"}
	}
	if off < 0 || n <= 0 || off+n > c.Len {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "derive",
			Detail: fmt.Sprintf("bounds [%d,+%d) exceed parent length %d", off, n, c.Len)}
	}
	if perms&^c.Perms != 0 {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "derive", Detail: "permission amplification"}
	}
	return Capability{Base: c.Base + mem.Addr(off), Len: n, Perms: perms, tag: true}, nil
}

// check validates one dereference.
func (m *Machine) check(c Capability, off, n int, need Perms, op string) error {
	m.derefs++
	m.cpu.Charge(clock.CompGate, clock.CostCapCheck)
	switch {
	case !c.tag:
		m.faults++
		return &Fault{Cap: c, Op: op, Detail: "untagged capability"}
	case c.sealed:
		m.faults++
		return &Fault{Cap: c, Op: op, Detail: "sealed capability"}
	case off < 0 || n <= 0 || off+n > c.Len:
		m.faults++
		return &Fault{Cap: c, Op: op, Detail: fmt.Sprintf("out of bounds [%d,+%d) of %d", off, n, c.Len)}
	case need&^c.Perms != 0:
		m.faults++
		return &Fault{Cap: c, Op: op, Detail: fmt.Sprintf("needs %v, has %v", need, c.Perms)}
	}
	return nil
}

// Load reads n bytes at offset off through the capability.
func (m *Machine) Load(c Capability, off, n int) ([]byte, error) {
	if err := m.check(c, off, n, PermRead, "load"); err != nil {
		return nil, err
	}
	return m.arena.Bytes(c.Base+mem.Addr(off), n)
}

// Store writes data at offset off through the capability.
func (m *Machine) Store(c Capability, off int, data []byte) error {
	if err := m.check(c, off, len(data), PermWrite, "store"); err != nil {
		return err
	}
	dst, err := m.arena.Bytes(c.Base+mem.Addr(off), len(data))
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// AllocOType reserves a fresh object type for sealing.
func (m *Machine) AllocOType() uint32 {
	t := m.nextOType
	m.nextOType++
	return t
}

// Seal locks a capability under an object type; it can only be used
// again through Invoke with a matching pair.
func (m *Machine) Seal(c Capability, otype uint32) (Capability, error) {
	if !c.tag {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "seal", Detail: "untagged capability"}
	}
	if c.sealed {
		m.faults++
		return Capability{}, &Fault{Cap: c, Op: "seal", Detail: "already sealed"}
	}
	c.sealed = true
	c.otype = otype
	return c, nil
}

// Invoke is CInvoke: given a sealed code/data pair with matching
// object types, it unseals both — the hardware-enforced domain
// transition a CHERI gate is built from.
func (m *Machine) Invoke(code, data Capability) (Capability, Capability, error) {
	m.cpu.Charge(clock.CompGate, clock.CostCInvoke)
	if !code.tag || !data.tag {
		m.faults++
		return Capability{}, Capability{}, &Fault{Cap: code, Op: "cinvoke", Detail: "untagged pair"}
	}
	if !code.sealed || !data.sealed {
		m.faults++
		return Capability{}, Capability{}, &Fault{Cap: code, Op: "cinvoke", Detail: "unsealed pair"}
	}
	if code.otype != data.otype {
		m.faults++
		return Capability{}, Capability{}, &Fault{Cap: code, Op: "cinvoke",
			Detail: fmt.Sprintf("otype mismatch %d != %d", code.otype, data.otype)}
	}
	if code.Perms&PermExecute == 0 {
		m.faults++
		return Capability{}, Capability{}, &Fault{Cap: code, Op: "cinvoke", Detail: "code capability not executable"}
	}
	code.sealed, code.otype = false, 0
	data.sealed, data.otype = false, 0
	return code, data, nil
}
