package cheri

import (
	"errors"
	"testing"
	"testing/quick"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

func newMachine(t *testing.T) (*Machine, Capability) {
	t.Helper()
	a := mem.NewArena(16 * mem.PageSize)
	m := New(a, clock.New())
	root, err := m.Root(mem.PageSize, 8*mem.PageSize, PermRead|PermWrite|PermExecute)
	if err != nil {
		t.Fatal(err)
	}
	return m, root
}

func TestZeroCapabilityInvalid(t *testing.T) {
	m, _ := newMachine(t)
	var c Capability
	if c.Valid() {
		t.Fatal("zero capability tagged")
	}
	if _, err := m.Load(c, 0, 8); err == nil {
		t.Fatal("load through untagged capability succeeded")
	}
}

func TestLoadStoreWithinBounds(t *testing.T) {
	m, root := newMachine(t)
	if err := m.Store(root, 100, []byte("cheri")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(root, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cheri" {
		t.Fatalf("Load = %q", got)
	}
}

func TestBoundsViolationFaults(t *testing.T) {
	m, root := newMachine(t)
	small, err := m.Derive(root, 0, 64, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	var f *Fault
	if _, err := m.Load(small, 60, 8); !errors.As(err, &f) {
		t.Fatalf("out-of-bounds load err = %v", err)
	}
	if err := m.Store(small, -1, []byte{1}); err == nil {
		t.Fatal("negative offset allowed")
	}
	if m.Faults() < 2 {
		t.Fatalf("Faults = %d", m.Faults())
	}
}

func TestPermissionEnforcement(t *testing.T) {
	m, root := newMachine(t)
	ro, err := m.Derive(root, 0, 128, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(ro, 0, 8); err != nil {
		t.Fatalf("read through ro cap failed: %v", err)
	}
	if err := m.Store(ro, 0, []byte{1}); err == nil {
		t.Fatal("write through ro capability allowed")
	}
}

func TestMonotonicity(t *testing.T) {
	m, root := newMachine(t)
	ro, err := m.Derive(root, 0, 128, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	// Amplifying back to write must fault.
	if _, err := m.Derive(ro, 0, 64, PermRead|PermWrite); err == nil {
		t.Fatal("permission amplification allowed")
	}
	// Growing bounds must fault.
	if _, err := m.Derive(ro, 0, 256, PermRead); err == nil {
		t.Fatal("bounds growth allowed")
	}
}

// Property: any chain of valid derivations stays within the root's
// bounds and permissions.
func TestDerivationChainProperty(t *testing.T) {
	m, root := newMachine(t)
	f := func(offs, lens [4]uint16) bool {
		cur := root
		for i := 0; i < 4; i++ {
			off := int(offs[i]) % maxInt(cur.Len, 1)
			n := 1 + int(lens[i])%maxInt(cur.Len-off, 1)
			next, err := m.Derive(cur, off, n, cur.Perms)
			if err != nil {
				return false
			}
			if next.Base < cur.Base || int(next.Base)+next.Len > int(cur.Base)+cur.Len {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSealAndInvoke(t *testing.T) {
	m, root := newMachine(t)
	otype := m.AllocOType()
	code, err := m.Seal(root, otype)
	if err != nil {
		t.Fatal(err)
	}
	dataPlain, err := m.Derive(root, 0, 4096, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Seal(dataPlain, otype)
	if err != nil {
		t.Fatal(err)
	}
	// Sealed capabilities cannot be dereferenced or derived.
	if _, err := m.Load(data, 0, 8); err == nil {
		t.Fatal("load through sealed capability allowed")
	}
	if _, err := m.Derive(code, 0, 8, PermRead); err == nil {
		t.Fatal("derive from sealed capability allowed")
	}
	// CInvoke with a matching pair unseals.
	c2, d2, err := m.Invoke(code, data)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Sealed() || d2.Sealed() {
		t.Fatal("Invoke left pair sealed")
	}
	if _, err := m.Load(d2, 0, 8); err != nil {
		t.Fatalf("unsealed data unusable: %v", err)
	}
	// Mismatched otypes fault.
	other, _ := m.Seal(dataPlain, m.AllocOType())
	if _, _, err := m.Invoke(code, other); err == nil {
		t.Fatal("otype mismatch accepted")
	}
	// Non-executable code capability faults.
	noExec, _ := m.Seal(dataPlain, otype)
	if _, _, err := m.Invoke(noExec, data); err == nil {
		t.Fatal("non-executable code capability accepted")
	}
	// Unsealed pair faults.
	if _, _, err := m.Invoke(c2, d2); err == nil {
		t.Fatal("unsealed pair accepted")
	}
}

func TestDoubleSealRejected(t *testing.T) {
	m, root := newMachine(t)
	s, err := m.Seal(root, m.AllocOType())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(s, m.AllocOType()); err == nil {
		t.Fatal("double seal allowed")
	}
}

func TestRootValidation(t *testing.T) {
	m, _ := newMachine(t)
	if _, err := m.Root(0, 16, PermRead); err == nil {
		t.Fatal("root over zero page allowed")
	}
	if _, err := m.Root(mem.PageSize, -1, PermRead); err == nil {
		t.Fatal("negative root length allowed")
	}
}

func TestPermsString(t *testing.T) {
	if (PermRead | PermWrite).String() != "rw-" {
		t.Fatal((PermRead | PermWrite).String())
	}
	if (PermRead | PermExecute).String() != "r-x" {
		t.Fatal((PermRead | PermExecute).String())
	}
}

func TestCapChecksCharged(t *testing.T) {
	a := mem.NewArena(8 * mem.PageSize)
	cpu := clock.New()
	m := New(a, cpu)
	root, _ := m.Root(mem.PageSize, mem.PageSize, PermRead)
	_, _ = m.Load(root, 0, 8)
	if cpu.Component(clock.CompGate) != clock.CostCapCheck {
		t.Fatalf("charge = %d", cpu.Component(clock.CompGate))
	}
	if m.Derefs() != 1 {
		t.Fatal("deref not counted")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
