package net

import (
	"errors"
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/rt"
	"flexos/internal/sched"
	"flexos/internal/sh"
)

// Stats counts stack activity.
type Stats struct {
	SegsIn      uint64
	SegsOut     uint64
	BytesIn     uint64
	BytesOut    uint64
	Retransmits uint64
	DroppedIn   uint64
	DroppedOut  uint64
	RSTsOut     uint64
	// TxDoorbells counts doorbell flushes of the tx batch queue; the
	// frames of one doorbell cross the driver boundary together.
	TxDoorbells uint64
	// AcksElided counts pure acknowledgements that never became frames:
	// collapsed into a later cumulative ACK of the same rx burst, or
	// piggybacked on an outgoing data segment.
	AcksElided uint64
	// FastRetransmits counts segments resent on the third duplicate ACK,
	// before the retransmission timer fired (also counted in
	// Retransmits).
	FastRetransmits uint64
	// ChecksumDrops counts frames rejected by checksum validation —
	// injected bit corruption detected instead of delivered (also
	// counted in DroppedIn).
	ChecksumDrops uint64
	// OOOQueued counts out-of-order segments buffered in the reassembly
	// queue rather than dropped (reordered links stop costing an RTO per
	// swap).
	OOOQueued uint64
	// ZeroWndProbes counts window probes sent against a peer advertising
	// a zero window.
	ZeroWndProbes uint64
	// KeepaliveProbes counts keepalive probes sent on idle connections.
	KeepaliveProbes uint64
	// NetDeaths counts connections declared dead (retransmit exhaustion
	// or keepalive failure) and delivered as typed NetTimeout faults.
	NetDeaths uint64
}

// connKey demultiplexes established connections.
type connKey struct {
	localPort  uint16
	remoteIP   IPAddr
	remotePort uint16
}

// Config tunes a Stack.
type Config struct {
	// IP is the stack's address.
	IP IPAddr
	// Platform selects per-packet driver cost (KVM or Xen).
	Platform Platform
	// RecvBuf is the per-socket receive buffer capacity (default 64 KiB).
	RecvBuf int
	// MaxInflight caps unacknowledged bytes per connection
	// (default 64 KiB).
	MaxInflight int
	// RtxDelayTicks is the retransmission timeout in virtual timer
	// ticks (default 1000).
	RtxDelayTicks uint64
	// RtxLimit bounds consecutive retransmissions of the same data —
	// and consecutive zero-window probes answered without progress —
	// before the connection is reset (default 8).
	RtxLimit int
	// SocketMode selects direct execution or the tcpip-thread
	// (netconn) handoff for socket operations.
	SocketMode SocketMode
	// DelayedAck enables RFC 1122 delayed acknowledgements: ACK every
	// second data segment, or after DelAckTicks of silence. Off by
	// default (the paper's evaluation acks per segment).
	DelayedAck bool
	// DelAckTicks is the delayed-ack timeout in virtual timer ticks
	// (default 50).
	DelAckTicks uint64
	// DataPath selects copy or shared (descriptor-passing) payload
	// movement between compartments; see the DataPath type.
	DataPath DataPath
	// RestHard is the hardening surface of the "rest of the system"
	// library, which owns the NIC driver and platform code; the
	// builder wires it so that hardening "rest" instruments the
	// driver's per-packet work (Table 1's fourth row).
	RestHard *sh.Hardener
	// TxBatch is the tx doorbell depth (the `batch rest <depth>`
	// directive): outgoing frames queue until depth frames are pending,
	// a kick point fires, or the stack is about to block, then cross the
	// driver boundary together — the first frame of a doorbell pays the
	// full per-packet platform cost, the rest only ring bookkeeping.
	// <= 1 (the default) transmits every frame immediately.
	TxBatch int
	// RxBudget is the NAPI-style receive poll budget (the
	// `batch netstack <depth>` directive): frames arriving in one wire
	// batch are processed up to RxBudget per poll, with the interrupt
	// cost paid once per poll and pure ACKs held so each touched socket
	// acknowledges the whole burst once. <= 1 (the default) takes the
	// per-frame interrupt path.
	RxBudget int
	// NumQueues is the NIC's rx/tx queue count. RSS steers each flow
	// to one queue, whose interrupts land on that queue's vCPU; the
	// poll budget applies per queue. <= 1 (the default) is a
	// single-queue device.
	NumQueues int
	// QueueCPU maps queue id to the vCPU its interrupts are steered
	// to; missing entries default to queue i -> vCPU i mod NCPU.
	QueueCPU []int
	// TCPIPCPU is the vCPU the tcpip thread is pinned to (default 0).
	TCPIPCPU int
	// KeepaliveTicks enables keepalive probing: after KeepaliveTicks of
	// connection silence a probe goes out, and KeepaliveProbes unanswered
	// probes declare the peer dead (a typed NetTimeout fault). 0 (the
	// default) disables keepalive — an always-armed timer would perturb
	// idle-time accounting of fault-free runs.
	KeepaliveTicks uint64
	// KeepaliveProbes bounds unanswered keepalive probes before the
	// connection is declared dead (default 3 when keepalive is enabled).
	KeepaliveProbes int
}

// Stack is one machine's TCP/IP stack instance.
type Stack struct {
	env       *rt.Env
	sup       Support
	scheduler sched.Scheduler
	nic       *NIC
	ip        IPAddr
	platform  Platform

	listeners map[uint16]*Socket
	conns     map[connKey]*Socket
	udpSocks  map[uint16]*UDPSocket

	recvBuf     int
	maxInflight int
	rtxDelay    uint64
	rtxLimit    int
	keepalive   uint64
	kaLimit     int
	// eventTracer, when set, receives transport fault/recovery events
	// (fast-rtx, rto, zwp, keepalive, checksum-drop, net-death) as
	// instant events for the observability timeline.
	eventTracer func(kind, note string)

	restHard   *sh.Hardener
	mode       SocketMode
	tcpip      *tcpipState
	delayedAck bool
	delAckTick uint64
	dataPath   DataPath
	copyTracer func(from, to string, n int)

	// Crossing-amortization state (tx doorbell + rx coalescing).
	txBatch   int
	rxBudget  int
	txqs      [][][]byte // per-queue frames awaiting the next doorbell kick
	ackq      []*Socket  // sockets owing a pure ACK (intent, not frame)
	inRxBatch bool       // inside a NAPI poll: hold pure ACKs
	kicking   bool       // txKick re-entrancy guard

	// Multi-queue NIC state (RSS).
	numQueues int
	queueCPU  []int
	tcpipCPU  int

	nextEphemeral uint16
	isn           uint32
	stats         Stats
}

// NewStack builds a stack bound to env (library "netstack" of one
// machine) with LibC services sup and the machine's scheduler for
// timers.
func NewStack(env *rt.Env, sup Support, s sched.Scheduler, cfg Config) *Stack {
	if cfg.RecvBuf <= 0 {
		cfg.RecvBuf = 64 << 10
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64 << 10
	}
	if cfg.RtxDelayTicks == 0 {
		cfg.RtxDelayTicks = 1000
	}
	if cfg.RtxLimit == 0 {
		cfg.RtxLimit = 8
	}
	if cfg.DelAckTicks == 0 {
		cfg.DelAckTicks = 50
	}
	if cfg.NumQueues < 1 {
		cfg.NumQueues = 1
	}
	if cfg.KeepaliveTicks > 0 && cfg.KeepaliveProbes <= 0 {
		cfg.KeepaliveProbes = 3
	}
	ncpu := 1
	if env != nil && env.CPU != nil {
		ncpu = env.CPU.NCPU()
	}
	queueCPU := make([]int, cfg.NumQueues)
	for i := range queueCPU {
		queueCPU[i] = i % ncpu
		if i < len(cfg.QueueCPU) && cfg.QueueCPU[i] >= 0 && cfg.QueueCPU[i] < ncpu {
			queueCPU[i] = cfg.QueueCPU[i]
		}
	}
	return &Stack{
		env:           env,
		sup:           sup,
		scheduler:     s,
		ip:            cfg.IP,
		platform:      cfg.Platform,
		listeners:     make(map[uint16]*Socket),
		conns:         make(map[connKey]*Socket),
		udpSocks:      make(map[uint16]*UDPSocket),
		recvBuf:       cfg.RecvBuf,
		maxInflight:   cfg.MaxInflight,
		rtxDelay:      cfg.RtxDelayTicks,
		rtxLimit:      cfg.RtxLimit,
		keepalive:     cfg.KeepaliveTicks,
		kaLimit:       cfg.KeepaliveProbes,
		restHard:      cfg.RestHard,
		mode:          cfg.SocketMode,
		delayedAck:    cfg.DelayedAck,
		delAckTick:    cfg.DelAckTicks,
		dataPath:      cfg.DataPath,
		txBatch:       cfg.TxBatch,
		rxBudget:      cfg.RxBudget,
		txqs:          make([][][]byte, cfg.NumQueues),
		numQueues:     cfg.NumQueues,
		queueCPU:      queueCPU,
		tcpipCPU:      cfg.TCPIPCPU,
		nextEphemeral: 49152,
		isn:           1,
	}
}

// IP reports the stack's address.
func (st *Stack) IP() IPAddr { return st.ip }

// Stats returns a copy of the counters.
func (st *Stack) Stats() Stats { return st.stats }

// SetEventTracer installs a hook receiving transport fault/recovery
// events (kind, note) for the observability timeline's instant events.
func (st *Stack) SetEventTracer(fn func(kind, note string)) { st.eventTracer = fn }

// traceEvent emits one transport event to the tracer, if installed.
func (st *Stack) traceEvent(kind, note string) {
	if st.eventTracer != nil {
		st.eventTracer(kind, note)
	}
}

// Env exposes the stack's runtime environment (used by LibC shims to
// route gates correctly in tests).
func (st *Stack) Env() *rt.Env { return st.env }

func (st *Stack) attachNIC(n *NIC) { st.nic = n }

// NIC exposes the attached device (nil before Connect) — the
// observability layer snapshots its per-queue rx/tx/coalesce/doorbell
// counters.
func (st *Stack) NIC() *NIC { return st.nic }

// QueueCPU reports the vCPU that services ring q's interrupts.
func (st *Stack) QueueCPU(q int) int { return st.queueCPUFor(q) }

// transmitNow hands a frame to the NIC immediately; a stack with no
// link drops it (a real device would not be up yet).
func (st *Stack) transmitNow(frame []byte) {
	if st.nic == nil {
		st.stats.DroppedOut++
		return
	}
	st.nic.transmit(frame)
}

// transmit hands a frame to the NIC, through the tx doorbell queue
// when batching is configured: frames wait until the queue reaches the
// doorbell depth or a kick point fires (end of an rx poll, a timer, or
// the stack about to block — see semDown). Queued frames stay ordered;
// connection-control frames bypass the queue via sendFlags, which
// kicks it first to keep ordering.
func (st *Stack) transmit(frame []byte) {
	if st.txBatch <= 1 {
		st.transmitNow(frame)
		return
	}
	q := st.frameQueue(frame)
	st.txqs[q] = append(st.txqs[q], frame)
	if len(st.txqs[q]) >= st.txBatch {
		st.txKick()
	}
}

// txPending reports the number of frames waiting across all tx rings.
func (st *Stack) txPending() int {
	n := 0
	for _, q := range st.txqs {
		n += len(q)
	}
	return n
}

// txKick rings the tx doorbell: pending ack intents resolve to at most
// one cumulative ACK frame per socket, then every queued frame crosses
// the driver boundary in one batch. Re-entrant kicks (the inline
// delivery of a batch can land response frames that kick again) are
// absorbed by the outer kick's loop.
func (st *Stack) txKick() {
	if st.kicking {
		return
	}
	st.kicking = true
	defer func() { st.kicking = false }()
	for len(st.ackq) > 0 || st.txPending() > 0 {
		ackq := st.ackq
		st.ackq = nil
		for _, s := range ackq {
			if !s.ackQueued {
				continue // absorbed by a data segment or a collapse
			}
			s.ackQueued = false
			if s.state == stClosed {
				continue
			}
			_ = st.sendFlags(s, flagACK)
		}
		// Each tx ring is its own doorbell: the first frame of a ring's
		// batch pays the doorbell cost, the rest coalesce.
		for q := range st.txqs {
			frames := st.txqs[q]
			st.txqs[q] = nil
			if len(frames) == 0 {
				continue
			}
			if st.nic == nil {
				st.stats.DroppedOut += uint64(len(frames))
				continue
			}
			st.stats.TxDoorbells++
			st.nic.transmitBatch(frames)
		}
	}
}

// ackDefer reports whether a pure acknowledgement should become an
// intent rather than a frame: inside an rx poll (so the burst collapses
// to one cumulative ACK per socket) or whenever the tx doorbell is
// active (so a queued data segment can absorb it).
func (st *Stack) ackDefer() bool { return st.inRxBatch || st.txBatch > 1 }

// ackIntent records that s owes the peer a pure ACK; the next doorbell
// kick resolves it. A socket already owing one collapses — TCP ACKs
// are cumulative, so the later frame acknowledges everything.
func (st *Stack) ackIntent(s *Socket) {
	if s.ackQueued {
		st.stats.AcksElided++
		return
	}
	s.ackQueued = true
	st.ackq = append(st.ackq, s)
}

// ackCancel absorbs a pending ack intent into an outgoing data segment
// (which always carries Ack = rcvNxt): the piggyback path.
func (st *Stack) ackCancel(s *Socket) {
	if s.ackQueued {
		s.ackQueued = false
		st.stats.AcksElided++
	}
}

// sendAck emits a pure acknowledgement, deferring to the doorbell's
// ack intents when batching is active.
func (st *Stack) sendAck(s *Socket) {
	if st.ackDefer() {
		st.ackIntent(s)
		return
	}
	_ = st.sendFlags(s, flagACK)
}

// beginRxBatch / endRxBatch bracket one NAPI poll: pure ACKs are held
// for the duration and flushed (collapsed per socket) with one doorbell
// kick at the end.
func (st *Stack) beginRxBatch() { st.inRxBatch = true }
func (st *Stack) endRxBatch() {
	st.inRxBatch = false
	st.txKick()
}

// newSocket builds a socket with its LibC semaphores (created through
// the libc gate).
func (st *Stack) newSocket() *Socket {
	s := &Socket{stack: st, rcvWndCap: st.recvBuf}
	_ = st.env.CallFn("libc", "sem_init", 1, func() error {
		s.rcvSem = st.sup.NewSem(0)
		s.sndSem = st.sup.NewSem(0)
		s.acceptSem = st.sup.NewSem(0)
		s.connSem = st.sup.NewSem(0)
		return nil
	})
	s.lastAdvWnd = s.rcvWnd()
	return s
}

// Listen binds a listening socket to port.
func (st *Stack) Listen(port uint16, backlog int) (*Socket, error) {
	if _, ok := st.listeners[port]; ok {
		return nil, fmt.Errorf("%w: %d", ErrInUse, port)
	}
	if backlog <= 0 {
		backlog = 8
	}
	s := st.newSocket()
	s.state = stListen
	s.localIP = st.ip
	s.localPort = port
	s.backlog = backlog
	st.listeners[port] = s
	return s, nil
}

// Connect opens a connection to ip:port, blocking until established.
// In TCPIPThreadMode the operation runs on the tcpip thread.
func (st *Stack) Connect(t *sched.Thread, ip IPAddr, port uint16) (*Socket, error) {
	var s *Socket
	err := st.apimsg(t, func(cur *sched.Thread) error {
		var err error
		s, err = st.doConnect(cur, ip, port)
		return err
	})
	return s, err
}

func (st *Stack) doConnect(t *sched.Thread, ip IPAddr, port uint16) (*Socket, error) {
	local, err := st.allocPort()
	if err != nil {
		return nil, err
	}
	s := st.newSocket()
	s.state = stSynSent
	s.localIP = st.ip
	s.localPort = local
	s.remoteIP = ip
	s.remotePort = port
	s.iss = st.nextISN()
	s.sndUna = s.iss
	s.sndNxt = s.iss
	st.conns[connKey{s.localPort, ip, port}] = s
	if err := st.sendFlags(s, flagSYN); err != nil {
		return nil, err
	}
	for s.state == stSynSent {
		st.semDown(t, s.connSem)
	}
	if s.sockErr != nil {
		return nil, s.takeErr()
	}
	return s, nil
}

// ephemeralBase is the bottom of the IANA dynamic port range the
// stack hands out ephemeral source ports from.
const ephemeralBase = 49152

// allocPort hands out an ephemeral source port. The cursor wraps
// around the dynamic range, and ports currently held by a live TCP
// connection, a listener or a bound UDP socket are skipped — after a
// wraparound the naive cursor used to re-issue a port backing an
// active 4-tuple, aliasing two connections onto one demux key and
// misdelivering segments. Port 0 is never returned (it is the
// "unbound" sentinel to every caller). When every port of the range
// is held it reports ErrNoPorts instead of aliasing.
func (st *Stack) allocPort() (uint16, error) {
	const span = 1<<16 - ephemeralBase
	for i := 0; i < span; i++ {
		p := st.nextEphemeral
		st.nextEphemeral++
		if st.nextEphemeral == 0 {
			st.nextEphemeral = ephemeralBase
		}
		if p == 0 || p < ephemeralBase {
			// A cursor below the range (zero value, or a test poking it)
			// re-enters at the base rather than issuing reserved ports.
			st.nextEphemeral = ephemeralBase
			continue
		}
		if st.portInUse(p) {
			continue
		}
		return p, nil
	}
	return 0, ErrNoPorts
}

// portInUse reports whether any live endpoint holds p as its local
// port: an established/half-open TCP connection (any remote), a
// listener, or a bound UDP socket.
func (st *Stack) portInUse(p uint16) bool {
	if _, ok := st.listeners[p]; ok {
		return true
	}
	if _, ok := st.udpSocks[p]; ok {
		return true
	}
	for k := range st.conns {
		if k.localPort == p {
			return true
		}
	}
	return false
}

func (st *Stack) nextISN() uint32 {
	st.isn += 64000
	return st.isn
}

// --- Gate-routed LibC helpers -------------------------------------

// memcpy performs a bulk copy in LibC through the netstack->libc gate.
func (st *Stack) memcpy(dst, src mem.Addr, n int) error {
	return st.env.CallFn("libc", "memcpy", 3, func() error {
		return st.sup.Memcpy(dst, src, n)
	})
}

// memcpyIn is memcpy with the destination pool buffer's descriptor
// attached to the gate frame (the descriptor-passing ABI); on the
// legacy path it degrades to a plain memcpy.
func (st *Stack) memcpyIn(dst, src mem.Addr, n int, own rxOwn) error {
	if !own.pooled {
		return st.memcpy(dst, src, n)
	}
	frame := gate.CallFrame{ArgWords: 3, RetWords: 1, Bufs: []mem.BufRef{own.ref}}
	return st.env.CallFrame("libc", "memcpy", frame, func() error {
		return st.sup.Memcpy(dst, src, n)
	})
}

// semDown blocks on a LibC semaphore. The uncontended decrement works
// on the shared counter inline; only blocking crosses into LibC (and
// from there into the scheduler). A stack about to block first rings
// the tx doorbell: a frame the peer needs to make progress (data, a
// window update) must never sit in the queue while both ends park —
// and since delivery is inline, the kick itself may produce the wake
// this thread was about to sleep for, hence the second TryDown.
func (st *Stack) semDown(t *sched.Thread, sem Sem) {
	if sem.TryDown() {
		return
	}
	if st.txBatch > 1 || st.txPending() > 0 || len(st.ackq) > 0 {
		st.txKick()
		if sem.TryDown() {
			return
		}
	}
	_ = st.env.CallFn("libc", "sem_down", 2, func() error {
		sem.Down(t)
		return nil
	})
}

// semUp signals a LibC semaphore, crossing the gate only when a waiter
// must be woken.
func (st *Stack) semUp(sem Sem) {
	if !sem.HasWaiters() {
		sem.Up()
		return
	}
	_ = st.env.CallFn("libc", "sem_up", 1, func() error {
		sem.Up()
		return nil
	})
}

// --- Output path ---------------------------------------------------

// sendData transmits one data segment whose payload is copied (in
// LibC) from the arena buffer at src.
func (st *Stack) sendData(s *Socket, src mem.Addr, n int) error {
	// The TX mbuf holds headers + payload: a pool buffer on the shared
	// data path, a netstack-compartment allocation otherwise.
	own, err := st.allocRx(HdrLen + n)
	if err != nil {
		return err
	}
	mbuf := own.base
	defer func() { _ = st.releaseRx(own) }()
	if err := st.memcpyIn(mbuf+HdrLen, src, n, own); err != nil {
		return err
	}
	// Under copy semantics the payload was pulled across the app/libc
	// boundary into netstack memory.
	st.crossCopy("libc", st.env.Lib, n)
	payload, err := st.env.Bytes(mbuf+HdrLen, n)
	if err != nil {
		return err
	}
	frame := make([]byte, HdrLen+n)
	h := &header{
		SrcIP: s.localIP, DstIP: s.remoteIP,
		SrcPort: s.localPort, DstPort: s.remotePort,
		Seq: s.sndNxt, Ack: s.rcvNxt,
		Flags: flagACK | flagPSH,
		Wnd:   uint16(s.rcvWnd()),
	}
	if _, err := encodeFrame(frame, h, payload); err != nil {
		return err
	}
	st.chargeTx(len(frame), n)
	// Outgoing data piggybacks the acknowledgement: delayed-ack state
	// and any doorbell ack intent are absorbed by this segment's Ack.
	if s.delAckTimer != nil {
		s.delAckTimer.Stop()
		s.delAckTimer = nil
	}
	s.delAckPending = 0
	st.ackCancel(s)
	s.sndNxt += uint32(n)
	s.rtx = append(s.rtx, rtxSeg{seq: h.Seq, flags: h.Flags, frame: frame,
		sentAt: st.env.CPU.Cycles()})
	st.armRtx(s)
	st.stats.SegsOut++
	st.stats.BytesOut += uint64(n)
	st.transmit(frame)
	return nil
}

// sendFlags transmits a control segment (SYN/ACK/FIN/RST combinations,
// no payload).
func (st *Stack) sendFlags(s *Socket, flags uint8) error {
	h := &header{
		SrcIP: s.localIP, DstIP: s.remoteIP,
		SrcPort: s.localPort, DstPort: s.remotePort,
		Seq: s.sndNxt, Ack: s.rcvNxt,
		Flags: flags,
		Wnd:   uint16(s.rcvWnd()),
	}
	frame := make([]byte, HdrLen)
	if _, err := encodeFrame(frame, h, nil); err != nil {
		return err
	}
	st.chargeTx(len(frame), 0)
	s.lastAdvWnd = s.rcvWnd()
	st.stats.SegsOut++
	if flags&(flagFIN|flagSYN) != 0 {
		// SYN and FIN each consume a sequence number and are kept for
		// retransmission.
		s.rtx = append(s.rtx, rtxSeg{seq: h.Seq, flags: flags, frame: frame,
			sentAt: st.env.CPU.Cycles()})
		s.sndNxt++
		st.armRtx(s)
		// Handshake and teardown latency must not wait on a doorbell:
		// flush the queue (keeping frame order) and go out immediately.
		st.txKick()
		st.transmitNow(frame)
		return nil
	}
	st.transmit(frame)
	return nil
}

// chargeTx attributes the per-segment stack cost of building and
// checksumming a frame. Under copy semantics the finished frame is
// also copied out to the driver's tx ring in the rest compartment.
func (st *Stack) chargeTx(frameLen, payloadLen int) {
	st.env.Charge(clock.CostPacketFixed + clock.ChecksumCycles(frameLen))
	st.env.Hard.OnFrame()
	st.env.Hard.OnTouch(HdrLen)
	st.crossCopy(st.env.Lib, "rest", frameLen)
	_ = payloadLen
}

// rto is the socket's current retransmission timeout: the Jacobson
// estimate srtt + 4*rttvar once samples exist, floored at the
// configured RtxDelayTicks (which keeps fault-free timer schedules
// identical to the fixed-timeout stack — inline delivery yields RTT
// samples far below the floor) and capped so exhaustion is reached in
// bounded virtual time even on a high-RTT path.
func (st *Stack) rto(s *Socket) uint64 {
	if !s.rttValid {
		return st.rtxDelay
	}
	rto := s.srtt + 4*s.rttvar
	if rto < st.rtxDelay {
		rto = st.rtxDelay
	}
	if hi := st.rtxDelay << uint(st.rtxLimit); rto > hi {
		rto = hi
	}
	return rto
}

// rttSample feeds one measurement into the Jacobson/Karn estimator.
// Callers must not sample retransmitted segments (Karn's rule): an ACK
// for a retransmitted sequence range is ambiguous about which copy it
// acknowledges.
func (s *Socket) rttSample(m uint64) {
	if !s.rttValid {
		s.srtt = m
		s.rttvar = m / 2
		s.rttValid = true
		return
	}
	d := m - s.srtt
	if m < s.srtt {
		d = s.srtt - m
	}
	s.rttvar = (3*s.rttvar + d) / 4
	s.srtt = (7*s.srtt + m) / 8
}

// armRtx starts the retransmission timer if not running. The timeout
// adapts to the measured RTT (see rto) and doubles per consecutive
// expiry — Karn's backoff — until RtxLimit, where the connection is
// declared dead with a typed NetTimeout the containment layer can
// classify.
func (st *Stack) armRtx(s *Socket) {
	if s.rtxTimer != nil {
		return
	}
	count := 0
	start := st.env.CPU.Cycles()
	var fire func()
	fire = func() {
		if len(s.rtx) == 0 || s.sockErr != nil {
			s.rtxTimer = nil
			return
		}
		count++
		if count > st.rtxLimit {
			s.rtxTimer = nil
			st.netDeath(s, "netstack:rtx", st.rtxLimit, 0, st.env.CPU.Cycles()-start)
			return
		}
		st.traceEvent("net-rto", fmt.Sprintf("rtx %d port %d", count, s.localPort))
		// Inline delivery means a retransmitted frame can be ACKed — and
		// the rtx queue trimmed — before transmit returns, so the bound
		// is re-read every iteration and entries are addressed by index.
		for i := 0; i < len(s.rtx); i++ {
			r := &s.rtx[i]
			r.rtxed = true // Karn: never sample a retransmitted segment
			frame := r.frame
			st.stats.Retransmits++
			st.stats.SegsOut++
			st.chargeTx(len(frame), 0)
			st.transmit(frame)
		}
		// Retransmissions ride one doorbell; the timer context has no
		// blocking point to kick for them later.
		st.txKick()
		s.rtxTimer = st.scheduler.Timers().After(st.rto(s)<<uint(count), fire)
	}
	s.rtxTimer = st.scheduler.Timers().After(st.rto(s), fire)
}

// sendProbe emits a window/keepalive probe: one garbage byte below the
// peer's expected sequence number. The peer drops it as out-of-window
// and answers with a duplicate ACK carrying its current window — the
// liveness signal the prober is after — without any sequence-space
// side effects.
func (st *Stack) sendProbe(s *Socket) {
	h := &header{
		SrcIP: s.localIP, DstIP: s.remoteIP,
		SrcPort: s.localPort, DstPort: s.remotePort,
		Seq: s.sndUna - 1, Ack: s.rcvNxt,
		Flags: flagACK,
		Wnd:   uint16(s.rcvWnd()),
	}
	frame := make([]byte, HdrLen+1)
	if _, err := encodeFrame(frame, h, []byte{0}); err != nil {
		return
	}
	st.chargeTx(len(frame), 0)
	st.stats.SegsOut++
	// Probes run in timer context and must not strand in the doorbell.
	st.txKick()
	st.transmitNow(frame)
}

// armZwp starts the zero-window probe timer. It is armed only when the
// peer's advertised window is exactly zero and a sender is about to
// park on it — the one state where no ACK is owed to us and the
// window-update that reopens flow control can be lost forever — and
// disarmed by the first ACK advertising space (processAck). Fault-free
// runs cannot reach a full scheduler drain in this state (that would
// have been a flow-control deadlock before probes existed), so the
// timer changes nothing when the wire is clean.
//
// Probing is not indefinite: a peer whose window never reopens — its
// application is dead but its transport still answers — is as gone as
// one that stops ACKing, so after RtxLimit unanswered-by-progress
// probes the connection dies with the same typed NetTimeout as
// retransmission exhaustion. Without the cap a crashed receiver would
// keep the probe clock ticking forever and the scheduler could never
// drain.
func (st *Stack) armZwp(s *Socket) {
	if s.zwpTimer != nil || st.nic == nil {
		return
	}
	start := st.scheduler.Timers().Now()
	var fire func()
	fire = func() {
		if s.sockErr != nil || s.state == stClosed || s.sndWnd > 0 {
			s.zwpTimer = nil
			return
		}
		if s.zwpCount >= st.rtxLimit {
			s.zwpTimer = nil
			st.netDeath(s, "netstack:zwp", 0, s.zwpCount,
				st.scheduler.Timers().Now()-start)
			return
		}
		s.zwpCount++
		st.stats.ZeroWndProbes++
		st.traceEvent("net-zwp", fmt.Sprintf("probe %d port %d", s.zwpCount, s.localPort))
		st.sendProbe(s)
		backoff := s.zwpCount
		if backoff > 6 {
			backoff = 6
		}
		s.zwpTimer = st.scheduler.Timers().After(st.rto(s)<<uint(backoff), fire)
	}
	s.zwpCount = 0
	s.zwpTimer = st.scheduler.Timers().After(st.rto(s), fire)
}

// armKeepalive starts the idle-connection prober on an established
// socket. Configured off by default; when on, a connection silent for
// KeepaliveTicks is probed, and KeepaliveProbes unanswered probes
// declare the peer dead with a typed NetTimeout.
func (st *Stack) armKeepalive(s *Socket) {
	if st.keepalive == 0 || s.kaTimer != nil {
		return
	}
	var fire func()
	fire = func() {
		if s.sockErr != nil || s.state == stClosed {
			s.kaTimer = nil
			return
		}
		// Idle time is measured on the timer wheel's clock, not CPU
		// cycles: a fully parked machine burns no cycles, so a
		// cycle-based idle would never grow and the timer would re-arm
		// forever without ever probing.
		now := st.scheduler.Timers().Now()
		idle := now - s.lastActivity
		if idle < st.keepalive {
			// The connection spoke since the last check: probe budget
			// resets and the timer re-arms for the remaining idle window.
			s.kaProbes = 0
			s.kaTimer = st.scheduler.Timers().After(st.keepalive-idle, fire)
			return
		}
		s.kaProbes++
		if s.kaProbes > st.kaLimit {
			s.kaTimer = nil
			st.netDeath(s, "netstack:keepalive", 0, st.kaLimit, idle)
			return
		}
		st.stats.KeepaliveProbes++
		st.traceEvent("net-keepalive", fmt.Sprintf("probe %d port %d", s.kaProbes, s.localPort))
		st.sendProbe(s)
		s.kaTimer = st.scheduler.Timers().After(st.keepalive, fire)
	}
	s.lastActivity = st.scheduler.Timers().Now()
	s.kaTimer = st.scheduler.Timers().After(st.keepalive, fire)
}

// netDeath declares a connection dead and aborts it with the typed
// NetTimeout cause. The first socket-API call that observes the death
// returns the typed error, which an isolating gate's Contain/Classify
// boundary converts into a Trap{Kind: KindNetTimeout} — network death
// then settles against the owning compartment's onfault policy exactly
// like a memory fault.
func (st *Stack) netDeath(s *Socket, pc string, retransmits, probes int, elapsed uint64) {
	st.stats.NetDeaths++
	st.traceEvent("net-death", fmt.Sprintf("%s port %d", pc, s.localPort))
	st.abort(s, &fault.NetTimeout{PC: pc, Retransmits: retransmits, Probes: probes, Elapsed: elapsed})
}

// abort fails the connection and wakes every sleeper. Queued received
// data — in-order and reassembly queues both — is discarded: a reset
// connection has nothing left to read, and the rx buffers go back to
// their allocator (the pool's leak accounting counts them otherwise).
func (st *Stack) abort(s *Socket, err error) {
	s.sockErr = err
	s.state = stClosed
	for _, tm := range []**sched.Timer{&s.rtxTimer, &s.zwpTimer, &s.kaTimer, &s.delAckTimer} {
		if *tm != nil {
			(*tm).Stop()
			*tm = nil
		}
	}
	for _, sg := range s.rcvQ {
		_ = st.releaseRx(sg.own)
	}
	s.rcvQ = nil
	s.rcvQueued = 0
	st.releaseOOO(s)
	st.semUp(s.rcvSem)
	st.semUp(s.sndSem)
	st.semUp(s.connSem)
	delete(st.conns, connKey{s.localPort, s.remoteIP, s.remotePort})
}

// releaseOOO returns every buffered out-of-order segment to its
// allocator (connection teardown: the gaps will never fill).
func (st *Stack) releaseOOO(s *Socket) {
	for _, sg := range s.oooQ {
		_ = st.releaseRx(sg.own)
	}
	s.oooQ = nil
}

// --- Input path ----------------------------------------------------

// input is the receive-interrupt path: the driver DMAs the frame into
// an rx buffer, then the stack parses, verifies, demuxes and processes
// it. It runs inline on the receiving machine's CPU. The rx path is
// zero-copy: a data segment's buffer is handed to the socket and only
// released once the application has consumed the payload.
func (st *Stack) input(frame []byte) {
	// Driver rx buffer: filled by DMA (no CPU cycles). On the shared
	// data path it comes from the key-0 pool so its descriptor can
	// travel to the app edge by reference; otherwise it is allocated
	// from the netstack compartment's private allocator.
	own, err := st.allocRx(len(frame))
	if err != nil {
		st.stats.DroppedIn++
		return
	}
	fbuf := own.base
	retained := false
	defer func() {
		if !retained {
			_ = st.releaseRx(own)
		}
	}()
	dma, err := st.env.Bytes(fbuf, len(frame))
	if err != nil {
		st.stats.DroppedIn++
		return
	}
	copy(dma, frame)
	// Under copy semantics the driver hands the frame bytes from the
	// rest compartment's rx ring into netstack memory.
	st.crossCopy("rest", st.env.Lib, len(frame))

	st.env.Charge(clock.CostPacketFixed + clock.ChecksumCycles(len(frame)))
	st.env.Hard.OnFrame()
	if err := st.env.Hard.OnAccess(fbuf, min(len(frame), HdrLen), false); err != nil {
		st.stats.DroppedIn++
		return
	}
	h, payload, err := decodeFrame(dma)
	if err != nil {
		if errors.Is(err, ErrBadChecksum) {
			// Injected bit corruption: detected and dropped, never
			// delivered. The sender's retransmission resends clean bytes.
			st.stats.ChecksumDrops++
			st.traceEvent("net-checksum-drop", err.Error())
		}
		st.stats.DroppedIn++
		return
	}
	if h.DstIP != st.ip {
		st.stats.DroppedIn++
		return
	}
	st.stats.SegsIn++
	if h.Proto == protoUDP {
		retained = st.udpInput(h, own, len(payload))
		return
	}
	key := connKey{h.DstPort, h.SrcIP, h.SrcPort}
	if s, ok := st.conns[key]; ok {
		retained = st.process(s, h, len(payload), own)
		return
	}
	if h.has(flagSYN) && !h.has(flagACK) {
		if l, ok := st.listeners[h.DstPort]; ok {
			st.acceptSYN(l, h)
			return
		}
	}
	// No connection: answer with RST (unless it was an RST).
	if !h.has(flagRST) {
		st.sendRST(h)
	}
}

// acceptSYN creates a half-open socket from a listener.
func (st *Stack) acceptSYN(l *Socket, h *header) {
	if len(l.acceptQ) >= l.backlog {
		st.stats.DroppedIn++
		return
	}
	s := st.newSocket()
	s.state = stSynRcvd
	s.localIP = st.ip
	s.localPort = h.DstPort
	s.remoteIP = h.SrcIP
	s.remotePort = h.SrcPort
	s.rcvNxt = h.Seq + 1
	s.iss = st.nextISN()
	s.sndUna = s.iss
	s.sndNxt = s.iss
	s.sndWnd = int(h.Wnd)
	s.listener = l
	st.conns[connKey{s.localPort, s.remoteIP, s.remotePort}] = s
	if err := st.sendFlags(s, flagSYN|flagACK); err != nil {
		st.abort(s, err)
	}
}

// sendRST answers an unexpected segment.
func (st *Stack) sendRST(h *header) {
	st.stats.RSTsOut++
	rst := &header{
		SrcIP: st.ip, DstIP: h.SrcIP,
		SrcPort: h.DstPort, DstPort: h.SrcPort,
		Seq: h.Ack, Ack: h.Seq + uint32(h.PayloadLen),
		Flags: flagRST | flagACK,
	}
	frame := make([]byte, HdrLen)
	if _, err := encodeFrame(frame, rst, nil); err != nil {
		return
	}
	st.chargeTx(len(frame), 0)
	// A reset is a protocol error signal, not data: never doorbelled.
	st.txKick()
	st.transmitNow(frame)
}

// process advances an existing connection's state machine. The frame
// sits in the driver rx buffer `own`; process reports whether it
// took ownership of that buffer (zero-copy data acceptance).
func (st *Stack) process(s *Socket, h *header, payloadLen int, own rxOwn) bool {
	if h.has(flagRST) {
		st.abort(s, ErrConnReset)
		return false
	}
	// Any segment from the peer is proof of life for the keepalive
	// prober (timer-wheel clock; see armKeepalive).
	s.lastActivity = st.scheduler.Timers().Now()
	// ACK processing (sender side).
	if h.has(flagACK) {
		st.processAck(s, h, payloadLen)
	}
	switch s.state {
	case stSynSent:
		if h.has(flagSYN) && h.has(flagACK) && h.Ack == s.iss+1 {
			s.rcvNxt = h.Seq + 1
			s.sndUna = h.Ack
			s.sndWnd = int(h.Wnd)
			s.state = stEstablished
			st.armKeepalive(s)
			_ = st.sendFlags(s, flagACK)
			st.semUp(s.connSem)
		}
		return false
	case stSynRcvd:
		if h.has(flagACK) && h.Ack == s.iss+1 {
			s.state = stEstablished
			st.armKeepalive(s)
			if s.listener != nil {
				s.listener.acceptQ = append(s.listener.acceptQ, s)
				st.semUp(s.listener.acceptSem)
			}
		}
		// Fall through: the ACK may carry data.
	}

	// Data processing (receiver side).
	retained := false
	if payloadLen > 0 {
		retained = st.processData(s, h, payloadLen, own)
	}

	// FIN processing.
	if h.has(flagFIN) && h.Seq+uint32(payloadLen) == s.rcvNxt {
		s.rcvNxt++
		s.rcvEOF = true
		st.releaseOOO(s)
		if s.state == stEstablished {
			s.state = stCloseWait
		} else if s.state == stFinSent {
			s.state = stClosed
			delete(st.conns, connKey{s.localPort, s.remoteIP, s.remotePort})
		}
		_ = st.sendFlags(s, flagACK)
		st.semUp(s.rcvSem)
	}
	return retained
}

// processAck advances sndUna, trims the retransmission queue, feeds the
// RTT estimator, counts duplicate ACKs toward fast retransmit and wakes
// blocked senders.
func (st *Stack) processAck(s *Socket, h *header, payloadLen int) {
	prevWnd := s.sndWnd
	s.sndWnd = int(h.Wnd)
	// An ACK advertising space disarms the zero-window prober.
	if s.sndWnd > 0 && s.zwpTimer != nil {
		s.zwpTimer.Stop()
		s.zwpTimer = nil
	}
	switch {
	case seqLess(s.sndUna, h.Ack) && seqLEq(h.Ack, s.sndNxt):
		s.sndUna = h.Ack
		s.dupAcks = 0
		// Drop fully acknowledged segments; the newest one that was never
		// retransmitted yields an RTT sample (Karn's rule excludes
		// retransmitted ranges — the ACK is ambiguous about which copy it
		// answers).
		now := st.env.CPU.Cycles()
		keep := s.rtx[:0]
		for _, r := range s.rtx {
			segEnd := r.seq + uint32(len(r.frame)-HdrLen)
			if r.flags&(flagSYN|flagFIN) != 0 {
				segEnd++
			}
			if seqLess(s.sndUna, segEnd) {
				keep = append(keep, r)
				continue
			}
			if !r.rtxed {
				s.rttSample(now - r.sentAt)
			}
		}
		s.rtx = keep
		if len(s.rtx) == 0 && s.rtxTimer != nil {
			s.rtxTimer.Stop()
			s.rtxTimer = nil
		}
		if s.state == stFinSent && s.sndUna == s.sndNxt && s.rcvEOF {
			// Our FIN is acknowledged and the peer's FIN was already
			// received: the connection is fully closed.
			s.state = stClosed
			st.releaseOOO(s)
			delete(st.conns, connKey{s.localPort, s.remoteIP, s.remotePort})
		}
	case h.Ack == s.sndUna && payloadLen == 0 && len(s.rtx) > 0 &&
		int(h.Wnd) == prevWnd && prevWnd > 0 && !h.has(flagSYN) && !h.has(flagFIN):
		// A pure duplicate ACK: same cumulative point, no data, no window
		// news, data outstanding. Three in a row mean the peer keeps
		// receiving (it answers something) but the oldest segment is
		// missing — resend just that one now instead of waiting out the
		// RTO. Window updates and zero-window probe answers don't count.
		s.dupAcks++
		if s.dupAcks == 3 {
			s.dupAcks = 0
			r := &s.rtx[0]
			r.rtxed = true // Karn: the resent range must not be sampled
			st.stats.FastRetransmits++
			st.stats.Retransmits++
			st.stats.SegsOut++
			st.traceEvent("net-fast-rtx", fmt.Sprintf("seq %d port %d", r.seq, s.localPort))
			st.chargeTx(len(r.frame), 0)
			st.transmit(r.frame)
		}
	}
	// Window may have opened (or a duplicate ACK refreshed it).
	st.semUp(s.sndSem)
}

// oooCap bounds the per-socket out-of-order reassembly queue (segments
// held while a gap waits on retransmission). Past it, further
// out-of-order arrivals drop — the retransmission path still recovers.
const oooCap = 16

// processData accepts payload into the socket's receive queue,
// zero-copy: the socket takes ownership of the rx buffer and points at
// the payload inside it. In-order data queues directly (and pulls any
// newly contiguous reassembly segments behind it); ahead-of-sequence
// data parks in the bounded reassembly queue with a duplicate ACK
// signalling the gap, so a reordered link costs dup-ACKs instead of an
// RTO stall per swap. Stale or unbufferable segments drop with a
// duplicate ACK. It reports whether it retained the rx buffer.
func (st *Stack) processData(s *Socket, h *header, n int, own rxOwn) bool {
	if h.Seq != s.rcvNxt {
		if seqLess(s.rcvNxt, h.Seq) && len(s.oooQ) < oooCap &&
			int(h.Seq-s.rcvNxt)+n <= s.rcvWndCap && !s.oooHas(h.Seq) {
			// Ahead of sequence, within the buffer's reach, novel: hold it
			// for reassembly. The duplicate ACK still goes out — the
			// sender's fast-retransmit counter is how the gap gets filled
			// quickly.
			st.stats.OOOQueued++
			s.oooQ = append(s.oooQ, seg{own: own, addr: own.base + HdrLen, n: n,
				seq: h.Seq, at: st.env.CPU.Cycles()})
			_ = st.sendFlags(s, flagACK)
			return true
		}
		st.stats.DroppedIn++
		_ = st.sendFlags(s, flagACK) // duplicate ACK
		return false
	}
	if n > s.rcvWnd() {
		// Beyond our advertised window: drop.
		st.stats.DroppedIn++
		_ = st.sendFlags(s, flagACK)
		return false
	}
	// The arrival stamp is taken here, on the rx path, independent of
	// when the application thread gets scheduled: head-of-queue age is
	// the overload signal overload-aware servers budget against.
	s.rcvQ = append(s.rcvQ, seg{own: own, addr: own.base + HdrLen, n: n,
		seq: h.Seq, at: st.env.CPU.Cycles()})
	s.rcvQueued += n
	s.rcvNxt += uint32(n)
	st.stats.BytesIn += uint64(n)
	if len(s.oooQ) > 0 {
		st.oooDrain(s)
	}
	st.ackData(s)
	st.semUp(s.rcvSem)
	return true
}

// oooHas reports whether a reassembly segment with this sequence number
// is already queued (a duplicated out-of-order arrival).
func (s *Socket) oooHas(seq uint32) bool {
	for _, sg := range s.oooQ {
		if sg.seq == seq {
			return true
		}
	}
	return false
}

// oooDrain moves newly contiguous reassembly segments into the receive
// queue and discards entries the advancing cumulative point made stale.
func (st *Stack) oooDrain(s *Socket) {
	for {
		found := -1
		for i, sg := range s.oooQ {
			if sg.seq == s.rcvNxt {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		sg := s.oooQ[found]
		s.oooQ = append(s.oooQ[:found], s.oooQ[found+1:]...)
		s.rcvQ = append(s.rcvQ, sg)
		s.rcvQueued += sg.n
		s.rcvNxt += uint32(sg.n)
		st.stats.BytesIn += uint64(sg.n)
	}
	keep := s.oooQ[:0]
	for _, sg := range s.oooQ {
		if !seqLess(s.rcvNxt, sg.seq) {
			// At or behind the cumulative point: a retransmission beat it
			// here. Nothing left to reassemble from it.
			_ = st.releaseRx(sg.own)
			continue
		}
		keep = append(keep, sg)
	}
	s.oooQ = keep
}

// ackData acknowledges accepted payload: immediately by default, or
// every second segment / after a short timeout under delayed acks.
// Either way the acknowledgement goes through sendAck, so batching
// stacks coalesce it with the rest of the burst.
func (st *Stack) ackData(s *Socket) {
	if !st.delayedAck {
		st.sendAck(s)
		return
	}
	s.delAckPending++
	if s.delAckPending >= 2 {
		st.flushAck(s)
		return
	}
	if s.delAckTimer == nil {
		s.delAckTimer = st.scheduler.Timers().After(st.delAckTick, func() {
			s.delAckTimer = nil
			if s.delAckPending > 0 {
				st.flushAck(s)
				// Timer context: nothing downstream will kick for us.
				st.txKick()
			}
		})
	}
}

// flushAck resolves the pending acknowledgement. It used to always
// emit a standalone ACK frame; now it raises an ack intent whenever
// batching is active, so an outgoing data segment queued before the
// next doorbell kick carries the acknowledgement for free (piggyback)
// and only a socket with no outgoing data pays a frame of its own.
func (st *Stack) flushAck(s *Socket) {
	if s.delAckTimer != nil {
		s.delAckTimer.Stop()
		s.delAckTimer = nil
	}
	s.delAckPending = 0
	st.sendAck(s)
}
