package net

import (
	"errors"
	"testing"

	"flexos/internal/sched"
)

// TestAllocPortSkipsLiveConnection is the regression for the
// wraparound-aliasing bug: after the ephemeral cursor wraps, allocPort
// used to re-issue the local port of a live connection, so the next
// Connect aliased an active 4-tuple and its segments were misdelivered.
// Here we wrap the cursor straight onto a live connection's port and
// check the second connection comes up on a fresh port and still works.
func TestAllocPortSkipsLiveConnection(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		for i := 0; i < 2; i++ {
			conn, err := l.Accept(th)
			if err != nil {
				t.Error(err)
				return
			}
			buf := server.buf(t, 64, 0)
			n, err := conn.Recv(th, buf, 64)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := conn.Send(th, buf, n); err != nil {
				t.Error(err)
				return
			}
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn1, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		p1 := conn1.localPort
		if p1 == 0 {
			t.Error("first connection got local port 0")
			return
		}
		// Simulate the cursor wrapping back onto the live port.
		client.stack.nextEphemeral = p1
		conn2, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		if conn2.localPort == p1 {
			t.Errorf("allocPort re-issued live port %d", p1)
		}
		if conn2.localPort == 0 {
			t.Error("second connection got local port 0")
		}
		// Both connections must still carry traffic on their own tuples.
		for _, conn := range []*Socket{conn1, conn2} {
			out := client.buf(t, 16, 3)
			if _, err := conn.Send(th, out, 16); err != nil {
				t.Error(err)
				return
			}
			in := client.buf(t, 64, 0)
			if n, err := conn.Recv(th, in, 64); err != nil || n != 16 {
				t.Errorf("echo on port %d: n=%d err=%v", conn.localPort, n, err)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocPortWraparound checks the cursor wraps from the top of the
// port space back to the bottom of the dynamic range, never to 0.
func TestAllocPortWraparound(t *testing.T) {
	_, _, client, _ := world(t, Config{})
	st := client.stack
	st.nextEphemeral = 65535
	p, err := st.allocPort()
	if err != nil {
		t.Fatal(err)
	}
	if p != 65535 {
		t.Fatalf("got %d, want 65535", p)
	}
	p, err = st.allocPort()
	if err != nil {
		t.Fatal(err)
	}
	if p != ephemeralBase {
		t.Fatalf("after wraparound got %d, want %d", p, ephemeralBase)
	}
	// A cursor poked below the dynamic range (including the 0 that a
	// uint16 overflow used to produce) re-enters at the base.
	st.nextEphemeral = 0
	p, err = st.allocPort()
	if err != nil {
		t.Fatal(err)
	}
	if p != ephemeralBase {
		t.Fatalf("zero cursor got %d, want %d", p, ephemeralBase)
	}
}

// TestAllocPortSkipsListenersAndUDP checks every kind of live local
// endpoint blocks re-issue: TCP listeners and bound UDP sockets, not
// just connections.
func TestAllocPortSkipsListenersAndUDP(t *testing.T) {
	_, _, client, _ := world(t, Config{})
	st := client.stack
	if _, err := st.Listen(60000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.UDPBind(60001); err != nil {
		t.Fatal(err)
	}
	st.nextEphemeral = 60000
	p, err := st.allocPort()
	if err != nil {
		t.Fatal(err)
	}
	if p != 60002 {
		t.Fatalf("got %d, want 60002 (60000 is a listener, 60001 a UDP socket)", p)
	}
}

// TestAllocPortExhaustion checks a fully held dynamic range reports
// ErrNoPorts instead of looping forever or aliasing.
func TestAllocPortExhaustion(t *testing.T) {
	_, _, client, _ := world(t, Config{})
	st := client.stack
	for p := ephemeralBase; p < 1<<16; p++ {
		st.listeners[uint16(p)] = &Socket{}
	}
	if _, err := st.allocPort(); !errors.Is(err, ErrNoPorts) {
		t.Fatalf("got %v, want ErrNoPorts", err)
	}
}
