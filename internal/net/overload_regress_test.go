package net

import (
	"errors"
	"io"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// Regression tests for the two overload-plane wedges found while
// bringing up deadline propagation: a recv drain that traps must still
// advertise the reopened window, and a frame deadline must not leak
// across the wire into the receiver's input path.

// flakySup injects one Memcpy failure: arm counts down successful
// copies and the copy it reaches zero on fails instead.
type flakySup struct {
	testSup
	arm   int
	fails int
}

var errInjectedCopy = errors.New("injected memcpy failure")

func (f *flakySup) Memcpy(dst, src mem.Addr, n int) error {
	if f.arm > 0 {
		f.arm--
		if f.arm == 0 {
			f.fails++
			return errInjectedCopy
		}
	}
	return f.testSup.Memcpy(dst, src, n)
}

// TestRecvErrorStillAdvertisesWindow pins the socket.Recv fix: when
// the drain stops on an error partway through (the shape of a deadline
// trap on the nested netstack->libc memcpy crossing), the bytes
// already drained reopened receive window — and the window-update ACK
// must still go on the wire. Before the fix the early return skipped
// it: the sender kept believing a full window while the queue sat
// half-empty, and a stalled sender never woke.
func TestRecvErrorStillAdvertisesWindow(t *testing.T) {
	cfg := Config{RecvBuf: 4096, MaxInflight: 4096}
	sc := sched.NewCScheduler()
	flaky := &flakySup{}
	server := newMachineWith(t, sc, IP4(10, 0, 0, 1), cfg, func(a *mem.Arena) Support {
		flaky.testSup = testSup{arena: a}
		return flaky
	})
	client := newMachine(t, sc, IP4(10, 0, 0, 2), cfg)
	w := Connect(server.stack, client.stack)

	// Record every window the server advertises to the client.
	var adv []int
	w.ArmBoth(LinkFaults{DropFn: func(frame []byte) bool {
		if h, _, err := decodeFrame(frame); err == nil && h.SrcIP == server.stack.IP() {
			adv = append(adv, int(h.Wnd))
		}
		return false
	}})

	const port, total = 5001, 12_000
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	sc.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 2048, 0)
		// Let the client fill the receive queue so its sender is
		// squeezed against the advertised window.
		for conn.rcvQueued < 3000 {
			th.Yield()
		}
		// Fail the second chunk of the next drain: one full segment
		// copies out (reopening >= MSS of window), then the drain
		// errors with segments still queued.
		flaky.arm = 2
		advBefore := len(adv)
		n, err := conn.Recv(th, buf, 2048)
		if !errors.Is(err, errInjectedCopy) {
			t.Errorf("Recv err = %v, want injected failure", err)
		}
		if n < MSS {
			t.Errorf("Recv drained %d bytes before the error, want >= MSS", n)
		}
		received += n
		// The regression: the window-update ACK must have gone out
		// during the erroring Recv, advertising the drained bytes.
		if len(adv) == advBefore {
			t.Error("no frame advertised the reopened window after the failed drain")
		} else if got := adv[len(adv)-1]; got < MSS {
			t.Errorf("post-error advertised window = %d, want >= MSS", got)
		}
		// Normal service resumes; the failed segment is still queued
		// and drains on the next call.
		for {
			n, err := conn.Recv(th, buf, 2048)
			received += n
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	})
	sc.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 3)
		if n, err := conn.Send(th, out, total); err != nil || n != total {
			t.Errorf("Send = %d, %v", n, err)
		}
		_ = conn.Close(th)
	})
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if flaky.fails != 1 {
		t.Fatalf("injected %d failures, want 1", flaky.fails)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

// splitMachine builds a machine whose netstack sits in its own
// compartment behind a VM-RPC gate, the only fixture gate that
// enforces frame deadlines — so a deadline leaking into the input
// path's internal crossings would actually refuse them.
func splitMachine(t *testing.T, s *sched.CScheduler, ip IPAddr, cfg Config) *machine {
	t.Helper()
	cpu := clock.New()
	arena := mem.NewArena(4 << 20)
	heap, err := mem.NewHeap(arena, mem.PageSize, 3<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := gate.NewRegistry(gate.NewFuncCall(cpu), gate.NewVMRPC(cpu, nil))
	reg.AddCompartment(gate.NewDomain("nw"))
	reg.AddCompartment(gate.NewDomain("core"))
	if err := reg.Assign("netstack", "nw"); err != nil {
		t.Fatal(err)
	}
	for _, lib := range []string{"libc", "alloc", "app", "sched"} {
		if err := reg.Assign(lib, "core"); err != nil {
			t.Fatal(err)
		}
	}
	env := &rt.Env{
		Lib: "netstack", Comp: clock.CompNet, CPU: cpu,
		Gates: reg, Arena: arena, Alloc: heap,
		Cur: s.Current,
	}
	cfg.IP = ip
	m := &machine{cpu: cpu, arena: arena, heap: heap, env: env}
	m.stack = NewStack(env, testSup{arena: arena}, s, cfg)
	return m
}

// TestWireDeadlineDoesNotLeak pins the NIC.receive fix: frame delivery
// borrows whatever thread transmitted, but the receiving stack's input
// processing is interrupt work, not part of that caller's deadlined
// budget. Here the client thread carries a long-expired deadline while
// it sends into a server whose netstack->libc crossings enforce
// deadlines (VM-RPC). Before the fix the leaked deadline made the
// server's input path refuse its own sem-up crossings — the swallowed
// wake-up left the receiver parked and the transfer wedged in a
// deadlock.
func TestWireDeadlineDoesNotLeak(t *testing.T) {
	cfg := Config{RecvBuf: 8192, MaxInflight: 8192}
	sc := sched.NewCScheduler()
	server := splitMachine(t, sc, IP4(10, 0, 0, 1), cfg)
	client := newMachine(t, sc, IP4(10, 0, 0, 2), cfg)
	Connect(server.stack, client.stack)

	const port, total = 5001, 20_000
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	sc.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			n, err := conn.Recv(th, buf, 4096)
			received += n
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	})
	sc.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		// An absolute deadline of cycle 1 expired long ago. The client
		// image is uncompartmentalized (FuncCall gates, no enforcement),
		// so the client's own sends proceed — the only way this deadline
		// can bite is by leaking across the wire into the server.
		th.Deadline = 1
		out := client.buf(t, total, 7)
		if n, err := conn.Send(th, out, total); err != nil || n != total {
			t.Errorf("Send = %d, %v", n, err)
		}
		if th.Deadline != 1 {
			t.Errorf("thread deadline = %d after Send, want 1 (restored)", th.Deadline)
		}
		th.Deadline = 0
		_ = conn.Close(th)
	})
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}
