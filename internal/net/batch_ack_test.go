package net

import (
	"bytes"
	"io"
	"testing"

	"flexos/internal/sched"
)

// TestAckPiggybacksOnEchoData is the flushAck regression test: on an
// echo workload with the tx doorbell active, the acknowledgement for
// each received request must ride the echoed data segment instead of
// paying a frame — one NIC crossing per round trip in steady state,
// not two. flushAck used to emit a standalone ACK frame even when the
// reply was already queued behind the doorbell.
func TestAckPiggybacksOnEchoData(t *testing.T) {
	const port, rounds, reqSize = 5001, 8, 512

	run := func(txBatch int) (segsOut, acksElided uint64) {
		s, server, client, _ := world(t, Config{TxBatch: txBatch, RtxDelayTicks: 100000})
		l, err := server.stack.Listen(port, 4)
		if err != nil {
			t.Fatal(err)
		}
		s.Spawn("server", server.cpu, func(th *sched.Thread) {
			conn, err := l.Accept(th)
			if err != nil {
				t.Error(err)
				return
			}
			buf := server.buf(t, reqSize, 0)
			for {
				n, err := conn.Recv(th, buf, reqSize)
				if err == io.EOF {
					_ = conn.Close(th)
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				// The echo reply queues behind the doorbell before the
				// poll's ack intent resolves, so it must absorb the ACK.
				if _, err := conn.Send(th, buf, n); err != nil {
					t.Error(err)
					return
				}
			}
		})
		s.Spawn("client", client.cpu, func(th *sched.Thread) {
			conn, err := client.stack.Connect(th, server.stack.IP(), port)
			if err != nil {
				t.Error(err)
				return
			}
			out := client.buf(t, reqSize, 3)
			in := client.buf(t, reqSize, 0)
			want, _ := client.arena.Bytes(out, reqSize)
			for i := 0; i < rounds; i++ {
				if _, err := conn.Send(th, out, reqSize); err != nil {
					t.Error(err)
					return
				}
				got := 0
				for got < reqSize {
					n, err := conn.Recv(th, in, reqSize-got)
					if err != nil {
						t.Error(err)
						return
					}
					got += n
				}
				b, _ := client.arena.Bytes(in, reqSize)
				if !bytes.Equal(b[:reqSize], want[:reqSize]) {
					t.Errorf("round %d: echo corrupted", i)
					return
				}
			}
			_ = conn.Close(th)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		st := server.stack.Stats()
		return st.SegsOut, st.AcksElided
	}

	scalarSegs, _ := run(1)
	batchedSegs, elided := run(4)

	// Every round trip's request ACK must have been absorbed by the
	// echoed data segment.
	if elided < rounds {
		t.Fatalf("AcksElided = %d, want >= %d (one piggyback per round trip)", elided, rounds)
	}
	// The piggybacks are whole frames the scalar server paid: the
	// batched server emits one fewer segment per steady-state round
	// trip (the first trip overlaps the handshake, so allow one off).
	if scalarSegs < batchedSegs+rounds-1 {
		t.Fatalf("batched server sent %d segments vs %d scalar — piggyback saved < %d frames",
			batchedSegs, scalarSegs, rounds-1)
	}
	// Steady state is one data segment per round trip; everything else
	// (handshake, FIN exchange) is small constant overhead. A standalone
	// ACK sneaking back into the echo path would double this.
	if batchedSegs > rounds+4 {
		t.Fatalf("batched server sent %d segments for %d round trips, want <= %d (one crossing per data+ACK)",
			batchedSegs, rounds, rounds+4)
	}
}
