package net

import (
	"flexos/internal/clock"
	"flexos/internal/sched"
)

// Platform selects the virtualization platform the image runs on,
// which determines the fixed per-packet driver/plat cost. The paper's
// Fig. 3 shows the Xen port of Unikraft paying substantially more per
// packet than KVM ("Unikraft not being optimized for this
// hypervisor").
type Platform int

// Supported platforms.
const (
	KVM Platform = iota
	Xen
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == Xen {
		return "xen"
	}
	return "kvm"
}

// perPacketPlatformCycles is the driver+platform fixed cost charged to
// the "rest of the system" component for each packet sent or received.
func perPacketPlatformCycles(p Platform) uint64 {
	const kvmCost = 800
	if p == Xen {
		return kvmCost + clock.CostXenPacketExtra
	}
	return kvmCost
}

// NIC is one end of a virtual link. Delivery is synchronous: Transmit
// runs the peer stack's input path inline, charging the peer machine's
// CPU — the discrete-event analogue of the receive interrupt.
type NIC struct {
	stack *Stack
	peer  *NIC
	wire  *Wire
	txCnt uint64
	rxCnt uint64
	qTx   []uint64 // per-queue tx frame counts
	qRx   []uint64 // per-queue rx frame counts
	// Coalescing counters for the observability layer: frames charged
	// at the coalesced descriptor-ring cost rather than the full
	// per-packet platform cost, per queue and direction, plus the
	// doorbell and NAPI-poll counts that paid the full cost once per
	// batch. Live counters, never dropped — the attribution path reads
	// these, not the bounded trace ring.
	qCoalTx   []uint64
	qCoalRx   []uint64
	doorbells uint64
	rxPolls   uint64
}

// TxCount reports frames transmitted.
func (n *NIC) TxCount() uint64 { return n.txCnt }

// RxCount reports frames received (after filtering).
func (n *NIC) RxCount() uint64 { return n.rxCnt }

// QueueTx reports frames transmitted on ring q.
func (n *NIC) QueueTx(q int) uint64 {
	if q < 0 || q >= len(n.qTx) {
		return 0
	}
	return n.qTx[q]
}

// QueueRx reports frames received on ring q.
func (n *NIC) QueueRx(q int) uint64 {
	if q < 0 || q >= len(n.qRx) {
		return 0
	}
	return n.qRx[q]
}

// QueueCoalescedTx reports frames on ring q that coalesced behind a tx
// doorbell (charged CostNICCoalescedPacket instead of the full
// per-packet platform cost).
func (n *NIC) QueueCoalescedTx(q int) uint64 {
	if q < 0 || q >= len(n.qCoalTx) {
		return 0
	}
	return n.qCoalTx[q]
}

// QueueCoalescedRx reports frames on ring q that coalesced within a
// NAPI rx poll.
func (n *NIC) QueueCoalescedRx(q int) uint64 {
	if q < 0 || q >= len(n.qCoalRx) {
		return 0
	}
	return n.qCoalRx[q]
}

// Doorbells reports tx doorbell rings (one per transmitBatch).
func (n *NIC) Doorbells() uint64 { return n.doorbells }

// Wire returns the wire this NIC is attached to (nil before Connect).
func (n *NIC) Wire() *Wire { return n.wire }

// RxPolls reports NAPI rx polls (each paying one interrupt cost).
func (n *NIC) RxPolls() uint64 { return n.rxPolls }

// countTx / countRx bump the total and per-queue frame counters.
func (n *NIC) countTx(q int) {
	n.txCnt++
	n.qTx[q]++
}

func (n *NIC) countRx(q int) {
	n.rxCnt++
	n.qRx[q]++
}

// Dir selects one direction of a Wire: AtoB carries frames transmitted
// by the first stack handed to Connect, BtoA the reverse path.
type Dir int

// Wire directions.
const (
	AtoB Dir = iota
	BtoA
)

// DownWindow is one timed link flap: frames transmitted while the
// virtual clock is in [From, To) vanish in both payload and ACK
// directions the window is armed on — a partition, not a slowdown.
type DownWindow struct {
	From, To uint64
}

// LinkFaults is the adversarial policy for one direction of a Wire:
// independent per-frame drop/duplicate/reorder/bit-corruption
// probabilities driven by a seeded PRNG, a Gilbert–Elliott two-state
// burst-loss channel, timed link flaps on the virtual clock, and a
// deterministic per-frame predicate for tests (the successor of the
// old boolean Wire.Filter hook).
//
// Everything is deterministic: the PRNG is seeded xorshift64*, each
// enabled probability consumes exactly one roll per frame in a fixed
// order (burst, drop, corrupt, duplicate, reorder), and flap windows
// compare against the deterministic virtual clock — so the same seed
// replays the same fault pattern bit for bit, under smp N included.
type LinkFaults struct {
	// Seed seeds the direction's PRNG (any value is fine; it is mixed
	// through splitmix64 before use).
	Seed uint64
	// Drop, Dup, Reorder, Corrupt are independent per-frame
	// probabilities in [0, 1]. A zero rate consumes no randomness.
	Drop, Dup, Reorder, Corrupt float64
	// Gilbert–Elliott burst loss: the channel flips from its good state
	// to the bad state with probability BurstEnter per frame, back with
	// BurstExit, and while bad drops each frame with probability
	// BurstDrop. All three zero disables the channel.
	BurstEnter, BurstExit, BurstDrop float64
	// Down lists link-flap windows in virtual cycles.
	Down []DownWindow
	// DropFn is a deterministic per-frame predicate: returning true
	// drops the frame. Tests use it for surgical loss injection.
	DropFn func(frame []byte) bool
}

// active reports whether any fault mechanism is configured.
func (lf LinkFaults) active() bool {
	return lf.Drop > 0 || lf.Dup > 0 || lf.Reorder > 0 || lf.Corrupt > 0 ||
		lf.BurstEnter > 0 || lf.BurstExit > 0 || lf.BurstDrop > 0 ||
		len(lf.Down) > 0 || lf.DropFn != nil
}

// splitmix64 mixes a seed into a full-period nonzero PRNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// linkState is the per-direction runtime of a LinkFaults policy.
type linkState struct {
	cfg  LinkFaults
	rng  uint64 // xorshift64* state, never zero
	bad  bool   // Gilbert–Elliott bad (bursty) state
	held []byte // frame held back by a reorder, delivered after the next
}

// next steps the xorshift64* PRNG.
func (ls *linkState) next() uint64 {
	x := ls.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	ls.rng = x
	return x * 0x2545f4914f6cdd1d
}

// roll draws one uniform sample in [0, 1).
func (ls *linkState) roll() float64 {
	return float64(ls.next()>>11) / (1 << 53)
}

// Wire connects two NICs. Each direction may carry an armed LinkFaults
// policy; an unarmed direction passes every frame untouched and draws
// no randomness, so a fault-free wire behaves (and costs) exactly like
// one that predates the fault model.
type Wire struct {
	a, b   *NIC
	faults [2]*linkState
	// Fault counters, aggregated over both directions. Dropped counts
	// random, burst and DropFn losses; FlapDropped counts frames that
	// vanished inside a Down window; Corrupted/Duplicated/Reordered
	// count frames that were delivered mutated, twice, or out of order.
	Dropped     uint64
	Corrupted   uint64
	Duplicated  uint64
	Reordered   uint64
	FlapDropped uint64
}

// Arm installs a LinkFaults policy on one direction of the wire.
func (w *Wire) Arm(d Dir, lf LinkFaults) {
	if !lf.active() {
		w.faults[d] = nil
		return
	}
	w.faults[d] = &linkState{cfg: lf, rng: splitmix64(lf.Seed)}
}

// ArmBoth arms both directions with the same policy, deriving a
// distinct PRNG stream per direction from the one seed.
func (w *Wire) ArmBoth(lf LinkFaults) {
	w.Arm(AtoB, lf)
	lf.Seed++
	w.Arm(BtoA, lf)
}

// dirOf returns the transmit direction for the sending NIC.
func (w *Wire) dirOf(n *NIC) Dir {
	if n == w.a {
		return AtoB
	}
	return BtoA
}

// conduct passes one transmitted frame through the direction's fault
// policy and returns the wire-owned copies to deliver, in order (zero
// for a loss, two for a duplicate, current-then-held after a reorder).
// now is the sender's virtual clock, used for flap windows.
func (w *Wire) conduct(ls *linkState, now uint64, frame []byte) [][]byte {
	for _, win := range ls.cfg.Down {
		if now >= win.From && now < win.To {
			w.FlapDropped++
			return nil
		}
	}
	if ls.cfg.DropFn != nil && ls.cfg.DropFn(frame) {
		w.Dropped++
		return nil
	}
	// Gilbert–Elliott: one transition roll, then (in the bad state) one
	// loss roll. Enabled by any nonzero burst parameter so the stream of
	// PRNG draws is a pure function of the policy and the frame count.
	if ls.cfg.BurstEnter > 0 || ls.cfg.BurstExit > 0 || ls.cfg.BurstDrop > 0 {
		if ls.bad {
			if ls.roll() < ls.cfg.BurstExit {
				ls.bad = false
			}
		} else if ls.roll() < ls.cfg.BurstEnter {
			ls.bad = true
		}
		if ls.bad && ls.roll() < ls.cfg.BurstDrop {
			w.Dropped++
			return nil
		}
	}
	if ls.cfg.Drop > 0 && ls.roll() < ls.cfg.Drop {
		w.Dropped++
		return nil
	}
	wireCopy := make([]byte, len(frame))
	copy(wireCopy, frame)
	if ls.cfg.Corrupt > 0 && ls.roll() < ls.cfg.Corrupt {
		// Flip one PRNG-chosen bit of the copy; the sender's retransmit
		// buffer is untouched, so recovery resends clean bytes.
		byteIx := int(ls.next() % uint64(len(wireCopy)))
		bitIx := uint(ls.next() % 8)
		wireCopy[byteIx] ^= 1 << bitIx
		w.Corrupted++
	}
	out := []byte(nil)
	if held := ls.held; held != nil {
		ls.held = nil
		out = held
	}
	if ls.cfg.Dup > 0 && ls.roll() < ls.cfg.Dup {
		dup := make([]byte, len(wireCopy))
		copy(dup, wireCopy)
		w.Duplicated++
		if out != nil {
			return [][]byte{wireCopy, dup, out}
		}
		return [][]byte{wireCopy, dup}
	}
	if ls.cfg.Reorder > 0 && ls.held == nil && ls.roll() < ls.cfg.Reorder {
		// Hold this frame back; it rides behind the next frame that
		// transits this direction (a one-frame-deep reorder).
		ls.held = wireCopy
		w.Reordered++
		if out != nil {
			return [][]byte{out}
		}
		return nil
	}
	if out != nil {
		return [][]byte{wireCopy, out}
	}
	return [][]byte{wireCopy}
}

// Connect wires two stacks together and returns the wire.
func Connect(a, b *Stack) *Wire {
	w := &Wire{}
	na := &NIC{stack: a, wire: w, qTx: make([]uint64, a.numQueues), qRx: make([]uint64, a.numQueues),
		qCoalTx: make([]uint64, a.numQueues), qCoalRx: make([]uint64, a.numQueues)}
	nb := &NIC{stack: b, wire: w, qTx: make([]uint64, b.numQueues), qRx: make([]uint64, b.numQueues),
		qCoalTx: make([]uint64, b.numQueues), qCoalRx: make([]uint64, b.numQueues)}
	na.peer, nb.peer = nb, na
	w.a, w.b = na, nb
	a.attachNIC(na)
	b.attachNIC(nb)
	return w
}

// transmit moves one frame across the wire. The frame is copied (the
// wire owns nothing), filtered, and handed to the peer's input path.
func (n *NIC) transmit(frame []byte) {
	n.countTx(n.stack.frameQueue(frame))
	// TX driver cost on the sending machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	if ls := n.wire.faults[n.wire.dirOf(n)]; ls != nil {
		for _, f := range n.wire.conduct(ls, n.stack.env.CPU.Cycles(), frame) {
			n.peer.receive(f)
		}
		return
	}
	wireCopy := make([]byte, len(frame))
	copy(wireCopy, frame)
	n.peer.receive(wireCopy)
}

// chargePacket attributes the driver cost of one frame of a batch:
// the first frame pays the full per-packet platform cost (doorbell or
// interrupt included), later frames only the coalesced descriptor-ring
// cost. The Xen per-packet penalty models per-frame grant-table work,
// not the notification, so it stays per frame.
func (n *NIC) chargePacket(first bool, frameLen int) {
	cost := perPacketPlatformCycles(n.stack.platform)
	if !first {
		cost = clock.CostNICCoalescedPacket
		if n.stack.platform == Xen {
			cost += clock.CostXenPacketExtra
		}
	}
	n.stack.env.CPU.Charge(clock.CompRest, cost)
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(frameLen)
	n.stack.restHard.OnBulk(frameLen / 8)
}

// transmitBatch moves one tx doorbell's frames across the wire
// together: the doorbell cost is paid by the first frame, the rest
// coalesce. Delivery stays synchronous — the surviving frames reach
// the peer as one rx batch.
func (n *NIC) transmitBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	n.doorbells++
	ls := n.wire.faults[n.wire.dirOf(n)]
	delivered := make([][]byte, 0, len(frames))
	for i, frame := range frames {
		q := n.stack.frameQueue(frame)
		n.countTx(q)
		n.chargePacket(i == 0, len(frame))
		if i > 0 {
			n.qCoalTx[q]++
		}
		if ls != nil {
			delivered = append(delivered, n.wire.conduct(ls, n.stack.env.CPU.Cycles(), frame)...)
			continue
		}
		wireCopy := make([]byte, len(frame))
		copy(wireCopy, frame)
		delivered = append(delivered, wireCopy)
	}
	n.peer.receiveBatch(delivered)
}

// receiveBatch is the NAPI-style coalesced receive path: frames that
// arrived in one wire batch are polled in chunks of the receiving
// stack's rx budget. Each poll pays the interrupt cost once (later
// frames coalesce) and holds pure ACKs so every touched socket
// acknowledges the whole burst with one cumulative ACK. A receiver
// with no budget configured falls back to the per-frame path.
func (n *NIC) receiveBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	budget := n.stack.rxBudget
	if budget <= 1 {
		for _, frame := range frames {
			n.receive(frame)
		}
		return
	}
	// Same deadline quarantine as receive: input processing is the
	// interrupt analogue, never the transmitting caller's deadlined work.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	// RSS: demux the wire batch onto the rx rings, then poll each ring
	// on its own vCPU. With one queue this is the whole batch on ring 0
	// — the single-queue behavior, bit for bit.
	if n.stack.numQueues <= 1 {
		n.pollQueue(0, frames, budget)
	} else {
		perQ := make([][][]byte, n.stack.numQueues)
		for _, frame := range frames {
			q := n.stack.frameQueue(frame)
			perQ[q] = append(perQ[q], frame)
		}
		for q, qframes := range perQ {
			n.pollQueue(q, qframes, budget)
		}
	}
	if cur != nil {
		cur.Deadline = saved
	}
}

// pollQueue runs the NAPI polls of one rx ring, with the interrupt and
// all input processing steered to (and charged on) the queue's vCPU.
func (n *NIC) pollQueue(q int, frames [][]byte, budget int) {
	if len(frames) == 0 {
		return
	}
	restore := n.stack.env.CPU.Steer(n.stack.queueCPUFor(q))
	defer restore()
	for start := 0; start < len(frames); start += budget {
		end := start + budget
		if end > len(frames) {
			end = len(frames)
		}
		n.rxPolls++
		n.stack.beginRxBatch()
		for i := start; i < end; i++ {
			n.countRx(q)
			n.chargePacket(i == start, len(frames[i]))
			if i > start {
				n.qCoalRx[q]++
			}
			n.stack.input(frames[i])
		}
		n.stack.endRxBatch()
	}
}

// receive runs the receiving stack's input path inline.
func (n *NIC) receive(frame []byte) {
	q := n.stack.frameQueue(frame)
	n.countRx(q)
	// RX interrupt steering: the queue's vCPU takes the interrupt and
	// runs the input path (no-op on a single-queue device over a
	// standalone CPU).
	restore := n.stack.env.CPU.Steer(n.stack.queueCPUFor(q))
	defer restore()
	// RX driver cost on the receiving machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	// Delivery borrows whatever thread happened to transmit, but the
	// peer's input processing is the receive-interrupt analogue, not
	// part of that caller's deadlined work: a frame deadline must not
	// leak across the wire. If it did, a gate on the receiving machine
	// could refuse the input path's internal crossings — and a refused
	// semaphore wake-up (the ACK that reopens a stalled sender's flow
	// control, swallowed on the rx path) wedges the connection forever.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	n.stack.input(frame)
	if cur != nil {
		cur.Deadline = saved
	}
}
