package net

import (
	"flexos/internal/clock"
	"flexos/internal/sched"
)

// Platform selects the virtualization platform the image runs on,
// which determines the fixed per-packet driver/plat cost. The paper's
// Fig. 3 shows the Xen port of Unikraft paying substantially more per
// packet than KVM ("Unikraft not being optimized for this
// hypervisor").
type Platform int

// Supported platforms.
const (
	KVM Platform = iota
	Xen
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == Xen {
		return "xen"
	}
	return "kvm"
}

// perPacketPlatformCycles is the driver+platform fixed cost charged to
// the "rest of the system" component for each packet sent or received.
func perPacketPlatformCycles(p Platform) uint64 {
	const kvmCost = 800
	if p == Xen {
		return kvmCost + clock.CostXenPacketExtra
	}
	return kvmCost
}

// NIC is one end of a virtual link. Delivery is synchronous: Transmit
// runs the peer stack's input path inline, charging the peer machine's
// CPU — the discrete-event analogue of the receive interrupt.
type NIC struct {
	stack *Stack
	peer  *NIC
	wire  *Wire
	txCnt uint64
	rxCnt uint64
}

// TxCount reports frames transmitted.
func (n *NIC) TxCount() uint64 { return n.txCnt }

// RxCount reports frames received (after filtering).
func (n *NIC) RxCount() uint64 { return n.rxCnt }

// Wire connects two NICs. A Filter may drop or reorder-test frames
// (loss injection for retransmission tests); nil passes everything.
type Wire struct {
	a, b *NIC
	// Filter is consulted per frame; returning false drops it.
	Filter func(frame []byte) bool
	// Dropped counts filtered frames.
	Dropped uint64
}

// Connect wires two stacks together and returns the wire.
func Connect(a, b *Stack) *Wire {
	w := &Wire{}
	na := &NIC{stack: a, wire: w}
	nb := &NIC{stack: b, wire: w}
	na.peer, nb.peer = nb, na
	w.a, w.b = na, nb
	a.attachNIC(na)
	b.attachNIC(nb)
	return w
}

// transmit moves one frame across the wire. The frame is copied (the
// wire owns nothing), filtered, and handed to the peer's input path.
func (n *NIC) transmit(frame []byte) {
	n.txCnt++
	// TX driver cost on the sending machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	if n.wire.Filter != nil && !n.wire.Filter(frame) {
		n.wire.Dropped++
		return
	}
	wireCopy := make([]byte, len(frame))
	copy(wireCopy, frame)
	n.peer.receive(wireCopy)
}

// chargePacket attributes the driver cost of one frame of a batch:
// the first frame pays the full per-packet platform cost (doorbell or
// interrupt included), later frames only the coalesced descriptor-ring
// cost. The Xen per-packet penalty models per-frame grant-table work,
// not the notification, so it stays per frame.
func (n *NIC) chargePacket(first bool, frameLen int) {
	cost := perPacketPlatformCycles(n.stack.platform)
	if !first {
		cost = clock.CostNICCoalescedPacket
		if n.stack.platform == Xen {
			cost += clock.CostXenPacketExtra
		}
	}
	n.stack.env.CPU.Charge(clock.CompRest, cost)
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(frameLen)
	n.stack.restHard.OnBulk(frameLen / 8)
}

// transmitBatch moves one tx doorbell's frames across the wire
// together: the doorbell cost is paid by the first frame, the rest
// coalesce. Delivery stays synchronous — the surviving frames reach
// the peer as one rx batch.
func (n *NIC) transmitBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	delivered := make([][]byte, 0, len(frames))
	for i, frame := range frames {
		n.txCnt++
		n.chargePacket(i == 0, len(frame))
		if n.wire.Filter != nil && !n.wire.Filter(frame) {
			n.wire.Dropped++
			continue
		}
		wireCopy := make([]byte, len(frame))
		copy(wireCopy, frame)
		delivered = append(delivered, wireCopy)
	}
	n.peer.receiveBatch(delivered)
}

// receiveBatch is the NAPI-style coalesced receive path: frames that
// arrived in one wire batch are polled in chunks of the receiving
// stack's rx budget. Each poll pays the interrupt cost once (later
// frames coalesce) and holds pure ACKs so every touched socket
// acknowledges the whole burst with one cumulative ACK. A receiver
// with no budget configured falls back to the per-frame path.
func (n *NIC) receiveBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	budget := n.stack.rxBudget
	if budget <= 1 {
		for _, frame := range frames {
			n.receive(frame)
		}
		return
	}
	// Same deadline quarantine as receive: input processing is the
	// interrupt analogue, never the transmitting caller's deadlined work.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	for start := 0; start < len(frames); start += budget {
		end := start + budget
		if end > len(frames) {
			end = len(frames)
		}
		n.stack.beginRxBatch()
		for i := start; i < end; i++ {
			n.rxCnt++
			n.chargePacket(i == start, len(frames[i]))
			n.stack.input(frames[i])
		}
		n.stack.endRxBatch()
	}
	if cur != nil {
		cur.Deadline = saved
	}
}

// receive runs the receiving stack's input path inline.
func (n *NIC) receive(frame []byte) {
	n.rxCnt++
	// RX driver cost on the receiving machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	// Delivery borrows whatever thread happened to transmit, but the
	// peer's input processing is the receive-interrupt analogue, not
	// part of that caller's deadlined work: a frame deadline must not
	// leak across the wire. If it did, a gate on the receiving machine
	// could refuse the input path's internal crossings — and a refused
	// semaphore wake-up (the ACK that reopens a stalled sender's flow
	// control, swallowed on the rx path) wedges the connection forever.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	n.stack.input(frame)
	if cur != nil {
		cur.Deadline = saved
	}
}
