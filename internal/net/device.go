package net

import (
	"flexos/internal/clock"
	"flexos/internal/sched"
)

// Platform selects the virtualization platform the image runs on,
// which determines the fixed per-packet driver/plat cost. The paper's
// Fig. 3 shows the Xen port of Unikraft paying substantially more per
// packet than KVM ("Unikraft not being optimized for this
// hypervisor").
type Platform int

// Supported platforms.
const (
	KVM Platform = iota
	Xen
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == Xen {
		return "xen"
	}
	return "kvm"
}

// perPacketPlatformCycles is the driver+platform fixed cost charged to
// the "rest of the system" component for each packet sent or received.
func perPacketPlatformCycles(p Platform) uint64 {
	const kvmCost = 800
	if p == Xen {
		return kvmCost + clock.CostXenPacketExtra
	}
	return kvmCost
}

// NIC is one end of a virtual link. Delivery is synchronous: Transmit
// runs the peer stack's input path inline, charging the peer machine's
// CPU — the discrete-event analogue of the receive interrupt.
type NIC struct {
	stack *Stack
	peer  *NIC
	wire  *Wire
	txCnt uint64
	rxCnt uint64
	qTx   []uint64 // per-queue tx frame counts
	qRx   []uint64 // per-queue rx frame counts
	// Coalescing counters for the observability layer: frames charged
	// at the coalesced descriptor-ring cost rather than the full
	// per-packet platform cost, per queue and direction, plus the
	// doorbell and NAPI-poll counts that paid the full cost once per
	// batch. Live counters, never dropped — the attribution path reads
	// these, not the bounded trace ring.
	qCoalTx   []uint64
	qCoalRx   []uint64
	doorbells uint64
	rxPolls   uint64
}

// TxCount reports frames transmitted.
func (n *NIC) TxCount() uint64 { return n.txCnt }

// RxCount reports frames received (after filtering).
func (n *NIC) RxCount() uint64 { return n.rxCnt }

// QueueTx reports frames transmitted on ring q.
func (n *NIC) QueueTx(q int) uint64 {
	if q < 0 || q >= len(n.qTx) {
		return 0
	}
	return n.qTx[q]
}

// QueueRx reports frames received on ring q.
func (n *NIC) QueueRx(q int) uint64 {
	if q < 0 || q >= len(n.qRx) {
		return 0
	}
	return n.qRx[q]
}

// QueueCoalescedTx reports frames on ring q that coalesced behind a tx
// doorbell (charged CostNICCoalescedPacket instead of the full
// per-packet platform cost).
func (n *NIC) QueueCoalescedTx(q int) uint64 {
	if q < 0 || q >= len(n.qCoalTx) {
		return 0
	}
	return n.qCoalTx[q]
}

// QueueCoalescedRx reports frames on ring q that coalesced within a
// NAPI rx poll.
func (n *NIC) QueueCoalescedRx(q int) uint64 {
	if q < 0 || q >= len(n.qCoalRx) {
		return 0
	}
	return n.qCoalRx[q]
}

// Doorbells reports tx doorbell rings (one per transmitBatch).
func (n *NIC) Doorbells() uint64 { return n.doorbells }

// RxPolls reports NAPI rx polls (each paying one interrupt cost).
func (n *NIC) RxPolls() uint64 { return n.rxPolls }

// countTx / countRx bump the total and per-queue frame counters.
func (n *NIC) countTx(q int) {
	n.txCnt++
	n.qTx[q]++
}

func (n *NIC) countRx(q int) {
	n.rxCnt++
	n.qRx[q]++
}

// Wire connects two NICs. A Filter may drop or reorder-test frames
// (loss injection for retransmission tests); nil passes everything.
type Wire struct {
	a, b *NIC
	// Filter is consulted per frame; returning false drops it.
	Filter func(frame []byte) bool
	// Dropped counts filtered frames.
	Dropped uint64
}

// Connect wires two stacks together and returns the wire.
func Connect(a, b *Stack) *Wire {
	w := &Wire{}
	na := &NIC{stack: a, wire: w, qTx: make([]uint64, a.numQueues), qRx: make([]uint64, a.numQueues),
		qCoalTx: make([]uint64, a.numQueues), qCoalRx: make([]uint64, a.numQueues)}
	nb := &NIC{stack: b, wire: w, qTx: make([]uint64, b.numQueues), qRx: make([]uint64, b.numQueues),
		qCoalTx: make([]uint64, b.numQueues), qCoalRx: make([]uint64, b.numQueues)}
	na.peer, nb.peer = nb, na
	w.a, w.b = na, nb
	a.attachNIC(na)
	b.attachNIC(nb)
	return w
}

// transmit moves one frame across the wire. The frame is copied (the
// wire owns nothing), filtered, and handed to the peer's input path.
func (n *NIC) transmit(frame []byte) {
	n.countTx(n.stack.frameQueue(frame))
	// TX driver cost on the sending machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	if n.wire.Filter != nil && !n.wire.Filter(frame) {
		n.wire.Dropped++
		return
	}
	wireCopy := make([]byte, len(frame))
	copy(wireCopy, frame)
	n.peer.receive(wireCopy)
}

// chargePacket attributes the driver cost of one frame of a batch:
// the first frame pays the full per-packet platform cost (doorbell or
// interrupt included), later frames only the coalesced descriptor-ring
// cost. The Xen per-packet penalty models per-frame grant-table work,
// not the notification, so it stays per frame.
func (n *NIC) chargePacket(first bool, frameLen int) {
	cost := perPacketPlatformCycles(n.stack.platform)
	if !first {
		cost = clock.CostNICCoalescedPacket
		if n.stack.platform == Xen {
			cost += clock.CostXenPacketExtra
		}
	}
	n.stack.env.CPU.Charge(clock.CompRest, cost)
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(frameLen)
	n.stack.restHard.OnBulk(frameLen / 8)
}

// transmitBatch moves one tx doorbell's frames across the wire
// together: the doorbell cost is paid by the first frame, the rest
// coalesce. Delivery stays synchronous — the surviving frames reach
// the peer as one rx batch.
func (n *NIC) transmitBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	n.doorbells++
	delivered := make([][]byte, 0, len(frames))
	for i, frame := range frames {
		q := n.stack.frameQueue(frame)
		n.countTx(q)
		n.chargePacket(i == 0, len(frame))
		if i > 0 {
			n.qCoalTx[q]++
		}
		if n.wire.Filter != nil && !n.wire.Filter(frame) {
			n.wire.Dropped++
			continue
		}
		wireCopy := make([]byte, len(frame))
		copy(wireCopy, frame)
		delivered = append(delivered, wireCopy)
	}
	n.peer.receiveBatch(delivered)
}

// receiveBatch is the NAPI-style coalesced receive path: frames that
// arrived in one wire batch are polled in chunks of the receiving
// stack's rx budget. Each poll pays the interrupt cost once (later
// frames coalesce) and holds pure ACKs so every touched socket
// acknowledges the whole burst with one cumulative ACK. A receiver
// with no budget configured falls back to the per-frame path.
func (n *NIC) receiveBatch(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	budget := n.stack.rxBudget
	if budget <= 1 {
		for _, frame := range frames {
			n.receive(frame)
		}
		return
	}
	// Same deadline quarantine as receive: input processing is the
	// interrupt analogue, never the transmitting caller's deadlined work.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	// RSS: demux the wire batch onto the rx rings, then poll each ring
	// on its own vCPU. With one queue this is the whole batch on ring 0
	// — the single-queue behavior, bit for bit.
	if n.stack.numQueues <= 1 {
		n.pollQueue(0, frames, budget)
	} else {
		perQ := make([][][]byte, n.stack.numQueues)
		for _, frame := range frames {
			q := n.stack.frameQueue(frame)
			perQ[q] = append(perQ[q], frame)
		}
		for q, qframes := range perQ {
			n.pollQueue(q, qframes, budget)
		}
	}
	if cur != nil {
		cur.Deadline = saved
	}
}

// pollQueue runs the NAPI polls of one rx ring, with the interrupt and
// all input processing steered to (and charged on) the queue's vCPU.
func (n *NIC) pollQueue(q int, frames [][]byte, budget int) {
	if len(frames) == 0 {
		return
	}
	restore := n.stack.env.CPU.Steer(n.stack.queueCPUFor(q))
	defer restore()
	for start := 0; start < len(frames); start += budget {
		end := start + budget
		if end > len(frames) {
			end = len(frames)
		}
		n.rxPolls++
		n.stack.beginRxBatch()
		for i := start; i < end; i++ {
			n.countRx(q)
			n.chargePacket(i == start, len(frames[i]))
			if i > start {
				n.qCoalRx[q]++
			}
			n.stack.input(frames[i])
		}
		n.stack.endRxBatch()
	}
}

// receive runs the receiving stack's input path inline.
func (n *NIC) receive(frame []byte) {
	q := n.stack.frameQueue(frame)
	n.countRx(q)
	// RX interrupt steering: the queue's vCPU takes the interrupt and
	// runs the input path (no-op on a single-queue device over a
	// standalone CPU).
	restore := n.stack.env.CPU.Steer(n.stack.queueCPUFor(q))
	defer restore()
	// RX driver cost on the receiving machine.
	n.stack.env.CPU.Charge(clock.CompRest, perPacketPlatformCycles(n.stack.platform))
	n.stack.restHard.OnFrame()
	n.stack.restHard.OnTouch(len(frame))
	n.stack.restHard.OnBulk(len(frame) / 8)
	// Delivery borrows whatever thread happened to transmit, but the
	// peer's input processing is the receive-interrupt analogue, not
	// part of that caller's deadlined work: a frame deadline must not
	// leak across the wire. If it did, a gate on the receiving machine
	// could refuse the input path's internal crossings — and a refused
	// semaphore wake-up (the ACK that reopens a stalled sender's flow
	// control, swallowed on the rx path) wedges the connection forever.
	var cur *sched.Thread
	var saved uint64
	if n.stack.env.Cur != nil {
		if cur = n.stack.env.Cur(); cur != nil {
			saved, cur.Deadline = cur.Deadline, 0
		}
	}
	n.stack.input(frame)
	if cur != nil {
		cur.Deadline = saved
	}
}
