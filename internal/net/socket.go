package net

import (
	"errors"
	"fmt"
	"io"

	"flexos/internal/core/gate"
	"flexos/internal/fault"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// Sem is the semaphore surface the stack needs from LibC. The paper's
// Fig. 5 analysis depends on semaphores being *LibC* objects: every
// *contended* socket operation crosses from the network stack into
// LibC and from there into the scheduler. The counter itself lives in
// shared data (annotated shared during porting), so the uncontended
// fast paths — TryDown, and Up with no waiters — are inlined at the
// call site and cross nothing.
type Sem interface {
	// Down decrements, parking t while the count is zero.
	Down(t *sched.Thread)
	// TryDown decrements without blocking and reports success.
	TryDown() bool
	// Up increments and wakes one waiter.
	Up()
	// HasWaiters reports whether a thread is parked on the semaphore.
	HasWaiters() bool
}

// Support is the set of LibC services the network stack links against
// through call gates.
type Support interface {
	// Memcpy performs a bulk copy between arena buffers in LibC code
	// (instrumented when LibC is hardened).
	Memcpy(dst, src mem.Addr, n int) error
	// NewSem creates a counting semaphore with an initial count.
	NewSem(n int) Sem
}

// tcpState is the connection state machine.
type tcpState int

const (
	stClosed tcpState = iota
	stListen
	stSynSent
	stSynRcvd
	stEstablished
	stFinSent
	stCloseWait
)

// String implements fmt.Stringer.
func (s tcpState) String() string {
	switch s {
	case stClosed:
		return "closed"
	case stListen:
		return "listen"
	case stSynSent:
		return "syn-sent"
	case stSynRcvd:
		return "syn-rcvd"
	case stEstablished:
		return "established"
	case stFinSent:
		return "fin-sent"
	case stCloseWait:
		return "close-wait"
	default:
		return fmt.Sprintf("tcpState(%d)", int(s))
	}
}

// seg is one queued chunk of received payload. The stack is zero-copy
// on receive: the socket takes ownership of the driver rx buffer and
// the segment points at the payload within it; the buffer is released
// once the application has consumed it.
type seg struct {
	own  rxOwn    // rx buffer to release
	addr mem.Addr // payload start within the buffer
	off  int      // consumed prefix
	n    int      // total payload bytes
	seq  uint32   // first sequence number (reassembly queue ordering)
	at   uint64   // virtual cycle the payload arrived off the wire
}

// rtxSeg is an unacknowledged segment kept for retransmission as a
// wire-format copy, stamped for RTT estimation.
type rtxSeg struct {
	seq    uint32
	flags  uint8
	frame  []byte
	sentAt uint64 // virtual cycle of the original transmission
	rtxed  bool   // retransmitted at least once: Karn excludes it from RTT
}

// Socket is one TCP endpoint.
type Socket struct {
	stack *Stack
	state tcpState

	localIP    IPAddr
	localPort  uint16
	remoteIP   IPAddr
	remotePort uint16

	// Receive side.
	rcvQ       []seg
	rcvQueued  int
	rcvWndCap  int
	lastAdvWnd int
	rcvNxt     uint32
	rcvSem     Sem
	rcvEOF     bool
	// oooQ holds ahead-of-sequence segments awaiting reassembly (bounded
	// by oooCap); rcvQueued does not count them — the advertised window
	// covers in-order data only, so the duplicate ACKs a gap provokes
	// carry an unchanged window and register at the sender as such.
	oooQ []seg

	// Send side.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndWnd   int
	rtx      []rtxSeg
	rtxTimer *sched.Timer
	sndSem   Sem
	// dupAcks counts consecutive pure duplicate ACKs (fast retransmit
	// fires at 3).
	dupAcks int
	// Jacobson/Karn RTT estimator state (virtual cycles).
	srtt     uint64
	rttvar   uint64
	rttValid bool
	// Zero-window probe state: armed only while the peer advertises a
	// zero window and a sender is parked on it.
	zwpTimer *sched.Timer
	zwpCount int
	// Keepalive state (enabled by Config.KeepaliveTicks).
	kaTimer  *sched.Timer
	kaProbes int
	// lastActivity is the timer-wheel tick of the last frame heard from
	// the peer (not CPU cycles: a parked machine's cycle clock stands
	// still while the timer wheel keeps advancing).
	lastActivity uint64
	// deathReported marks that the typed NetTimeout was delivered to an
	// API caller once; later calls see a plain closed-connection error,
	// so a supervisor restart's replay settles clean (a recovery) while
	// the application's retry logic reconnects.
	deathReported bool

	// Listener side.
	acceptQ   []*Socket
	acceptSem Sem
	backlog   int
	listener  *Socket // for accepted sockets: the listener to notify

	// Connection establishment / teardown.
	connSem Sem
	sockErr error

	// Delayed-ack state.
	delAckPending int
	delAckTimer   *sched.Timer

	// ackQueued marks a pending pure-ACK intent on the stack's doorbell
	// queue (crossing amortization): resolved to one cumulative ACK at
	// the next kick, or absorbed by an outgoing data segment.
	ackQueued bool

	// lastDrainAt is the arrival stamp of the head segment consumed by
	// the most recent Recv (see LastRxArrival).
	lastDrainAt uint64
}

// State exposes the connection state name (for tests and diagnostics).
func (s *Socket) State() string { return s.state.String() }

// LocalPort reports the bound local port.
func (s *Socket) LocalPort() uint16 { return s.localPort }

// RemoteAddr reports the peer address.
func (s *Socket) RemoteAddr() (IPAddr, uint16) { return s.remoteIP, s.remotePort }

// Err reports a fatal socket error (reset), if any.
func (s *Socket) Err() error { return s.sockErr }

// takeErr returns the socket's fatal error for delivery to an API
// caller. A typed *fault.NetTimeout is delivered exactly once — the
// first call carries it upward so the owning compartment's gate can
// classify it into a containable trap; every later call sees a plain
// closed-connection error, which lets a supervisor restart's replay
// settle clean instead of re-trapping forever on the same dead socket.
func (s *Socket) takeErr() error {
	err := s.sockErr
	var nt *fault.NetTimeout
	if errors.As(err, &nt) {
		if s.deathReported {
			return fmt.Errorf("%w after net timeout", ErrConnClosed)
		}
		s.deathReported = true
	}
	return err
}

// HeadArrival reports the virtual cycle at which the oldest undrained
// payload arrived off the wire (0 when the receive queue is empty).
// Arrival stamps are written by the rx path and read by the
// application as shared data — like the semaphore counters, they are
// annotated shared during porting, so reading them crosses no gate.
// Overload-aware servers use the head age (now - HeadArrival) as their
// queueing-delay signal: in a cooperative image a request's service
// time is constant, so lateness accumulates in the socket queue, not
// in preemption.
func (s *Socket) HeadArrival() uint64 {
	if len(s.rcvQ) == 0 {
		return 0
	}
	return s.rcvQ[0].at
}

// LastRxArrival reports the arrival stamp of the head segment consumed
// by the most recent Recv — the moment the data a caller just read
// first hit the machine. 0 before the first successful drain.
func (s *Socket) LastRxArrival() uint64 { return s.lastDrainAt }

// inflight reports unacknowledged bytes.
func (s *Socket) inflight() int { return int(s.sndNxt - s.sndUna) }

// rcvWnd is the window to advertise, clamped to the 16-bit field.
func (s *Socket) rcvWnd() int {
	w := s.rcvWndCap - s.rcvQueued
	if w < 0 {
		w = 0
	}
	if w > 0xffff {
		w = 0xffff
	}
	return w
}

// Recv copies up to n bytes of received payload into the arena buffer
// at dst, blocking while no data is available. It returns io.EOF after
// the peer's FIN once the queue is drained.
func (s *Socket) Recv(t *sched.Thread, dst mem.Addr, n int) (int, error) {
	st := s.stack
	for {
		if s.sockErr != nil {
			return 0, s.takeErr()
		}
		if len(s.rcvQ) > 0 {
			break
		}
		if s.rcvEOF {
			return 0, io.EOF
		}
		st.semDown(t, s.rcvSem)
	}
	// Drain under a single netstack -> libc crossing: the per-segment
	// copies are LibC's memcpy (the instrumented hot loop of Table 1),
	// batched like lwip's netbuf copy helper so the gate cost is per
	// recv, not per segment. On the shared data path the crossing
	// carries the queued segments' descriptors, so libc copies out of
	// the pool buffers in place — the app-edge copy, the only one
	// between NIC and application.
	frame := gate.CallFrame{ArgWords: 3, RetWords: 1}
	if st.sharedRx() {
		rem := n
		for i := 0; i < len(s.rcvQ) && rem > 0; i++ {
			frame.Bufs = append(frame.Bufs, s.rcvQ[i].own.ref)
			rem -= s.rcvQ[i].n - s.rcvQ[i].off
		}
	}
	s.lastDrainAt = s.rcvQ[0].at
	copied := 0
	err := st.env.CallFrame("libc", "memcpy", frame, func() error {
		for copied < n && len(s.rcvQ) > 0 {
			sg := &s.rcvQ[0]
			chunk := sg.n - sg.off
			if chunk > n-copied {
				chunk = n - copied
			}
			if err := st.sup.Memcpy(dst+mem.Addr(copied), sg.addr+mem.Addr(sg.off), chunk); err != nil {
				return err
			}
			st.crossCopy(st.env.Lib, "libc", chunk)
			sg.off += chunk
			copied += chunk
			if sg.off == sg.n {
				if err := st.releaseRx(sg.own); err != nil {
					return err
				}
				s.rcvQ = s.rcvQ[1:]
			}
		}
		return nil
	})
	// The queued-byte accounting must follow the bytes even when the
	// drain stopped early — e.g. a deadline trap on the nested
	// netstack->libc memcpy crossing. The segments drained so far are
	// consistent (consumed prefixes advanced, fully-drained buffers
	// released); leaving rcvQueued inflated would permanently shrink
	// the advertised window after every trapped recv.
	s.rcvQueued -= copied
	// Advertise the opened window when it grew by at least one MSS
	// since the last advertisement (classic window-update rule). This
	// must run even when the drain returns an error: a deadline trap on
	// the drain's last segment would otherwise leave the peer believing
	// a zero window while the queue sits empty — the sender stalls on
	// flow control, the receiver parks waiting for data, and the
	// connection wedges silently.
	if s.state == stEstablished && s.rcvWnd()-s.lastAdvWnd >= MSS {
		st.sendAck(s)
	}
	return copied, err
}

// TryRecv is Recv without blocking: it drains whatever payload is
// already queued and returns 0 (with a nil error) when nothing is.
// The vectored recv path uses it for the frames after the first — one
// blocking call establishes that a burst arrived, the rest of the
// batch takes only what that burst already delivered.
func (s *Socket) TryRecv(t *sched.Thread, dst mem.Addr, n int) (int, error) {
	if s.sockErr != nil {
		return 0, s.takeErr()
	}
	if len(s.rcvQ) == 0 {
		if s.rcvEOF {
			return 0, io.EOF
		}
		return 0, nil
	}
	return s.Recv(t, dst, n)
}

// TryRecvRef is TryRecv with the destination described by a pool
// buffer descriptor (see RecvRef).
func (s *Socket) TryRecvRef(t *sched.Thread, b mem.BufRef) (int, error) {
	if s.sockErr != nil {
		return 0, s.takeErr()
	}
	if len(s.rcvQ) == 0 {
		if s.rcvEOF {
			return 0, io.EOF
		}
		return 0, nil
	}
	return s.RecvRef(t, b)
}

// RecvRef is Recv with the destination described by a pool buffer
// descriptor: the application pins b while it blocks, so the buffer
// cannot recycle under a concurrent free, and receives up to b.Len
// bytes into it. The pin costs nothing — the refcount is a shared-data
// counter, like the semaphore fast paths.
func (s *Socket) RecvRef(t *sched.Thread, b mem.BufRef) (int, error) {
	st := s.stack
	if p := st.env.Pool; p != nil && p.Owns(b.Addr) {
		if err := p.Ref(b); err != nil {
			return 0, err
		}
		defer func() { _, _ = p.Release(b) }()
	}
	return s.Recv(t, b.Addr, b.Len)
}

// Send transmits n bytes from the arena buffer at src, blocking on
// flow control, and returns when every byte has been handed to the
// wire (not necessarily acknowledged). In TCPIPThreadMode the
// transmission runs on the tcpip thread.
func (s *Socket) Send(t *sched.Thread, src mem.Addr, n int) (int, error) {
	var sent int
	err := s.stack.apimsg(t, func(cur *sched.Thread) error {
		var err error
		sent, err = s.doSend(cur, src, n)
		return err
	})
	return sent, err
}

func (s *Socket) doSend(t *sched.Thread, src mem.Addr, n int) (int, error) {
	st := s.stack
	sent := 0
	for sent < n {
		if s.sockErr != nil {
			return sent, s.takeErr()
		}
		if s.state != stEstablished && s.state != stCloseWait {
			return sent, ErrConnClosed
		}
		window := s.sndWnd
		if window > st.maxInflight {
			window = st.maxInflight
		}
		avail := window - s.inflight()
		if avail <= 0 {
			// A peer advertising a zero window may reopen it with an
			// ACK the drop model eats — probe so the reopened window is
			// rediscovered instead of deadlocking the parked sender.
			if s.sndWnd == 0 {
				st.armZwp(s)
			}
			st.semDown(t, s.sndSem)
			continue
		}
		chunk := n - sent
		if chunk > MSS {
			chunk = MSS
		}
		if chunk > avail {
			chunk = avail
		}
		if err := st.sendData(s, src+mem.Addr(sent), chunk); err != nil {
			return sent, err
		}
		sent += chunk
	}
	return sent, nil
}

// SendRef transmits the first n bytes of the pool buffer described by
// b. The descriptor is pinned across the tcpip-thread handoff, so the
// payload cannot recycle while the send request sits in the mailbox —
// the lifetime problem descriptor passing introduces and the refcount
// solves.
func (s *Socket) SendRef(t *sched.Thread, b mem.BufRef, n int) (int, error) {
	var sent int
	err := s.stack.apimsgPinned(t, b, func(cur *sched.Thread) error {
		var err error
		sent, err = s.doSend(cur, b.Addr, n)
		return err
	})
	return sent, err
}

// Close sends FIN and moves toward Closed. Queued received data stays
// readable. In TCPIPThreadMode the teardown runs on the tcpip thread.
func (s *Socket) Close(t *sched.Thread) error {
	return s.stack.apimsg(t, func(cur *sched.Thread) error {
		return s.doClose(cur)
	})
}

func (s *Socket) doClose(t *sched.Thread) error {
	st := s.stack
	switch s.state {
	case stEstablished:
		s.state = stFinSent
		return st.sendFlags(s, flagFIN|flagACK)
	case stCloseWait:
		s.state = stFinSent
		return st.sendFlags(s, flagFIN|flagACK)
	case stListen:
		s.state = stClosed
		delete(st.listeners, s.localPort)
		return nil
	case stClosed, stFinSent:
		return nil
	default:
		s.state = stClosed
		return nil
	}
}

// Accept blocks until a connection is established on the listener and
// returns it.
func (s *Socket) Accept(t *sched.Thread) (*Socket, error) {
	st := s.stack
	if s.state != stListen {
		return nil, ErrNotListening
	}
	for len(s.acceptQ) == 0 {
		st.semDown(t, s.acceptSem)
	}
	conn := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	return conn, nil
}
