package net

import (
	"fmt"

	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// MaxDatagram is the largest UDP payload on our virtual link.
const MaxDatagram = 1500 - IPHdrLen - UDPHdrLen

// datagram is one queued received datagram (zero-copy: the socket
// owns the rx buffer).
type datagram struct {
	own     rxOwn
	addr    mem.Addr
	n       int
	src     IPAddr
	srcPort uint16
}

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	stack     *Stack
	localPort uint16
	rcvQ      []datagram
	rcvQueued int
	rcvCap    int
	rcvSem    Sem
	closed    bool
	// Dropped counts datagrams discarded because the queue was full.
	Dropped uint64
}

// UDPBind binds a UDP socket to port; port 0 picks an ephemeral port.
func (st *Stack) UDPBind(port uint16) (*UDPSocket, error) {
	if port == 0 {
		// allocPort skips every in-use port (TCP and UDP alike) and
		// never returns 0, so one draw suffices.
		p, err := st.allocPort()
		if err != nil {
			return nil, fmt.Errorf("%w: no ephemeral udp port", err)
		}
		port = p
	}
	if _, ok := st.udpSocks[port]; ok {
		return nil, fmt.Errorf("%w: udp %d", ErrInUse, port)
	}
	u := &UDPSocket{stack: st, localPort: port, rcvCap: st.recvBuf}
	_ = st.env.CallFn("libc", "sem_init", 1, func() error {
		u.rcvSem = st.sup.NewSem(0)
		return nil
	})
	st.udpSocks[port] = u
	return u, nil
}

// LocalPort reports the bound port.
func (u *UDPSocket) LocalPort() uint16 { return u.localPort }

// Close unbinds the socket and wakes blocked readers. Undelivered
// datagrams are discarded and their rx buffers released, as a real
// socket buffer teardown would.
func (u *UDPSocket) Close() {
	if u.closed {
		return
	}
	u.closed = true
	for _, d := range u.rcvQ {
		_ = u.stack.releaseRx(d.own)
	}
	u.rcvQ = nil
	u.rcvQueued = 0
	delete(u.stack.udpSocks, u.localPort)
	u.stack.semUp(u.rcvSem)
}

// SendTo transmits one datagram of n bytes from the arena buffer at
// src. In TCPIPThreadMode the transmission runs on the tcpip thread.
func (u *UDPSocket) SendTo(t *sched.Thread, dst IPAddr, dstPort uint16, src mem.Addr, n int) error {
	return u.stack.apimsg(t, func(cur *sched.Thread) error {
		return u.doSendTo(dst, dstPort, src, n)
	})
}

func (u *UDPSocket) doSendTo(dst IPAddr, dstPort uint16, src mem.Addr, n int) error {
	st := u.stack
	if u.closed {
		return ErrConnClosed
	}
	if n < 0 || n > MaxDatagram {
		return fmt.Errorf("net: datagram of %d bytes (max %d)", n, MaxDatagram)
	}
	own, err := st.allocRx(UDPHdrTotal + max(n, 1))
	if err != nil {
		return err
	}
	mbuf := own.base
	defer func() { _ = st.releaseRx(own) }()
	var payload []byte
	if n > 0 {
		if err := st.memcpyIn(mbuf+UDPHdrTotal, src, n, own); err != nil {
			return err
		}
		st.crossCopy("libc", st.env.Lib, n)
		payload, err = st.env.Bytes(mbuf+UDPHdrTotal, n)
		if err != nil {
			return err
		}
	}
	frame := make([]byte, UDPHdrTotal+n)
	h := &header{
		Proto: protoUDP,
		SrcIP: st.ip, DstIP: dst,
		SrcPort: u.localPort, DstPort: dstPort,
	}
	if _, err := encodeUDPFrame(frame, h, payload); err != nil {
		return err
	}
	st.chargeTx(len(frame), n)
	st.stats.SegsOut++
	st.stats.BytesOut += uint64(n)
	st.transmit(frame)
	return nil
}

// RecvFrom blocks until a datagram arrives, copies up to n bytes into
// dst (in LibC) and returns the byte count and source address. A
// closed socket returns ErrConnClosed once its queue drains.
func (u *UDPSocket) RecvFrom(t *sched.Thread, dst mem.Addr, n int) (int, IPAddr, uint16, error) {
	st := u.stack
	for len(u.rcvQ) == 0 {
		if u.closed {
			return 0, 0, 0, ErrConnClosed
		}
		st.semDown(t, u.rcvSem)
	}
	d := u.rcvQ[0]
	u.rcvQ = u.rcvQ[1:]
	u.rcvQueued -= d.n
	copied := d.n
	if copied > n {
		copied = n // excess bytes of the datagram are discarded
	}
	var err error
	if copied > 0 {
		err = st.env.CallFrame("libc", "memcpy", udpDrainFrame(d), func() error {
			if err := st.sup.Memcpy(dst, d.addr, copied); err != nil {
				return err
			}
			st.crossCopy(st.env.Lib, "libc", copied)
			return nil
		})
	}
	if ferr := st.releaseRx(d.own); err == nil {
		err = ferr
	}
	return copied, d.src, d.srcPort, err
}

// udpDrainFrame builds the app-edge copy's gate frame, attaching the
// datagram's descriptor when it lives in the pool.
func udpDrainFrame(d datagram) gate.CallFrame {
	f := gate.CallFrame{ArgWords: 3, RetWords: 1}
	if d.own.pooled {
		f.Bufs = []mem.BufRef{d.own.ref}
	}
	return f
}

// Pending reports queued datagrams (tests).
func (u *UDPSocket) Pending() int { return len(u.rcvQ) }

// udpInput accepts one datagram for a bound socket; it reports whether
// it retained the rx buffer.
func (st *Stack) udpInput(h *header, own rxOwn, n int) bool {
	u, ok := st.udpSocks[h.DstPort]
	if !ok {
		st.stats.DroppedIn++
		return false
	}
	if u.rcvQueued+n > u.rcvCap {
		// No flow control in UDP: over-capacity datagrams are dropped,
		// as a real socket buffer would.
		u.Dropped++
		st.stats.DroppedIn++
		return false
	}
	u.rcvQ = append(u.rcvQ, datagram{
		own: own, addr: own.base + UDPHdrTotal, n: n,
		src: h.SrcIP, srcPort: h.SrcPort,
	})
	u.rcvQueued += n
	st.stats.BytesIn += uint64(n)
	st.semUp(u.rcvSem)
	return true
}
