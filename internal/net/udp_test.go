package net

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

func TestUDPEncodeDecodeRoundTrip(t *testing.T) {
	h := &header{
		Proto: protoUDP,
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 40000, DstPort: 5002,
	}
	payload := []byte("udp datagram payload")
	frame := make([]byte, UDPHdrTotal+len(payload))
	if _, err := encodeUDPFrame(frame, h, payload); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != protoUDP || got.SrcPort != 40000 || got.DstPort != 5002 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
	// Corruption is caught by the UDP checksum.
	frame[UDPHdrTotal] ^= 0xFF
	if _, _, err := decodeFrame(frame); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want checksum error", err)
	}
}

func TestUDPChecksumProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxDatagram {
			payload = payload[:MaxDatagram]
		}
		h := &header{Proto: protoUDP, SrcIP: IP4(1, 1, 1, 1), DstIP: IP4(2, 2, 2, 2), SrcPort: 5, DstPort: 6}
		frame := make([]byte, UDPHdrTotal+len(payload))
		if _, err := encodeUDPFrame(frame, h, payload); err != nil {
			return false
		}
		_, got, err := decodeFrame(frame)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPSendRecv(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port = 5002
	us, err := server.stack.UDPBind(port)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var gotSrc IPAddr
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		buf := server.buf(t, 256, 0)
		n, src, srcPort, err := us.RecvFrom(th, buf, 256)
		if err != nil {
			t.Error(err)
			return
		}
		b, _ := server.arena.Bytes(buf, n)
		got = append([]byte(nil), b...)
		gotSrc = src
		// Echo back.
		if err := us.SendTo(th, src, srcPort, buf, n); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 32, 0)
		b, _ := client.arena.Bytes(out, 32)
		copy(b, "ping-over-udp")
		if err := uc.SendTo(th, server.stack.IP(), port, out, 13); err != nil {
			t.Error(err)
			return
		}
		in := client.buf(t, 64, 0)
		n, _, _, err := uc.RecvFrom(th, in, 64)
		if err != nil || n != 13 {
			t.Errorf("echo recv = %d, %v", n, err)
			return
		}
		rb, _ := client.arena.Bytes(in, n)
		if string(rb) != "ping-over-udp" {
			t.Errorf("echo = %q", rb)
		}
		uc.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping-over-udp" || gotSrc != client.stack.IP() {
		t.Fatalf("server got %q from %v", got, gotSrc)
	}
}

func TestUDPBindConflictAndClose(t *testing.T) {
	_, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.stack.UDPBind(53); !errors.Is(err, ErrInUse) {
		t.Fatalf("err = %v", err)
	}
	u.Close()
	if _, err := server.stack.UDPBind(53); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Sending on a closed socket fails.
	if err := u.doSendTo(IP4(1, 2, 3, 4), 1, mem.PageSize, 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("closed send err = %v", err)
	}
}

func TestUDPRecvFromClosedSocket(t *testing.T) {
	s, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("reader", server.cpu, func(th *sched.Thread) {
		buf := server.buf(t, 64, 0)
		if _, _, _, err := u.RecvFrom(th, buf, 64); !errors.Is(err, ErrConnClosed) {
			t.Errorf("err = %v, want ErrConnClosed", err)
		}
	})
	s.Spawn("closer", server.cpu, func(th *sched.Thread) { u.Close() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPDropsWhenQueueFull(t *testing.T) {
	s, server, client, _ := world(t, Config{RecvBuf: 2048})
	u, err := server.stack.UDPBind(5002)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 1024, 0)
		// 4 KiB into a 2 KiB queue with no reader: some must drop.
		for i := 0; i < 4; i++ {
			if err := uc.SendTo(th, server.stack.IP(), 5002, out, 1024); err != nil {
				t.Error(err)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u.Dropped == 0 {
		t.Fatal("no datagrams dropped")
	}
	if u.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", u.Pending())
	}
}

func TestUDPToUnboundPortDropped(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 16, 0)
		if err := uc.SendTo(th, server.stack.IP(), 9, out, 16); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if server.stack.Stats().DroppedIn == 0 {
		t.Fatal("datagram to unbound port not dropped")
	}
}

func TestUDPOversizedDatagramRejected(t *testing.T) {
	_, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.doSendTo(IP4(1, 2, 3, 4), 1, mem.PageSize, MaxDatagram+1); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}
