package net

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flexos/internal/mem"
	"flexos/internal/sched"
)

func TestUDPEncodeDecodeRoundTrip(t *testing.T) {
	h := &header{
		Proto: protoUDP,
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 40000, DstPort: 5002,
	}
	payload := []byte("udp datagram payload")
	frame := make([]byte, UDPHdrTotal+len(payload))
	if _, err := encodeUDPFrame(frame, h, payload); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != protoUDP || got.SrcPort != 40000 || got.DstPort != 5002 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
	// Corruption is caught by the UDP checksum.
	frame[UDPHdrTotal] ^= 0xFF
	if _, _, err := decodeFrame(frame); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want checksum error", err)
	}
}

func TestUDPChecksumProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxDatagram {
			payload = payload[:MaxDatagram]
		}
		h := &header{Proto: protoUDP, SrcIP: IP4(1, 1, 1, 1), DstIP: IP4(2, 2, 2, 2), SrcPort: 5, DstPort: 6}
		frame := make([]byte, UDPHdrTotal+len(payload))
		if _, err := encodeUDPFrame(frame, h, payload); err != nil {
			return false
		}
		_, got, err := decodeFrame(frame)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPSendRecv(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port = 5002
	us, err := server.stack.UDPBind(port)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var gotSrc IPAddr
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		buf := server.buf(t, 256, 0)
		n, src, srcPort, err := us.RecvFrom(th, buf, 256)
		if err != nil {
			t.Error(err)
			return
		}
		b, _ := server.arena.Bytes(buf, n)
		got = append([]byte(nil), b...)
		gotSrc = src
		// Echo back.
		if err := us.SendTo(th, src, srcPort, buf, n); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 32, 0)
		b, _ := client.arena.Bytes(out, 32)
		copy(b, "ping-over-udp")
		if err := uc.SendTo(th, server.stack.IP(), port, out, 13); err != nil {
			t.Error(err)
			return
		}
		in := client.buf(t, 64, 0)
		n, _, _, err := uc.RecvFrom(th, in, 64)
		if err != nil || n != 13 {
			t.Errorf("echo recv = %d, %v", n, err)
			return
		}
		rb, _ := client.arena.Bytes(in, n)
		if string(rb) != "ping-over-udp" {
			t.Errorf("echo = %q", rb)
		}
		uc.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping-over-udp" || gotSrc != client.stack.IP() {
		t.Fatalf("server got %q from %v", got, gotSrc)
	}
}

func TestUDPBindConflictAndClose(t *testing.T) {
	_, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.stack.UDPBind(53); !errors.Is(err, ErrInUse) {
		t.Fatalf("err = %v", err)
	}
	u.Close()
	if _, err := server.stack.UDPBind(53); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Sending on a closed socket fails.
	if err := u.doSendTo(IP4(1, 2, 3, 4), 1, mem.PageSize, 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("closed send err = %v", err)
	}
}

func TestUDPRecvFromClosedSocket(t *testing.T) {
	s, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("reader", server.cpu, func(th *sched.Thread) {
		buf := server.buf(t, 64, 0)
		if _, _, _, err := u.RecvFrom(th, buf, 64); !errors.Is(err, ErrConnClosed) {
			t.Errorf("err = %v, want ErrConnClosed", err)
		}
	})
	s.Spawn("closer", server.cpu, func(th *sched.Thread) { u.Close() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPDropsWhenQueueFull(t *testing.T) {
	s, server, client, _ := world(t, Config{RecvBuf: 2048})
	u, err := server.stack.UDPBind(5002)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 1024, 0)
		// 4 KiB into a 2 KiB queue with no reader: some must drop.
		for i := 0; i < 4; i++ {
			if err := uc.SendTo(th, server.stack.IP(), 5002, out, 1024); err != nil {
				t.Error(err)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u.Dropped == 0 {
		t.Fatal("no datagrams dropped")
	}
	if u.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", u.Pending())
	}
}

func TestUDPToUnboundPortDropped(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 16, 0)
		if err := uc.SendTo(th, server.stack.IP(), 9, out, 16); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if server.stack.Stats().DroppedIn == 0 {
		t.Fatal("datagram to unbound port not dropped")
	}
}

func TestUDPOversizedDatagramRejected(t *testing.T) {
	_, server, _, _ := world(t, Config{})
	u, err := server.stack.UDPBind(53)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.doSendTo(IP4(1, 2, 3, 4), 1, mem.PageSize, MaxDatagram+1); err == nil {
		t.Fatal("oversized datagram accepted")
	}
}

// TestUDPCorruptionDetectedNotDelivered is the UDP counterpart of the
// TCP chaosnet checksum regression: bit flips on the wire must be
// caught by checksum validation and counted in ChecksumDrops, and a
// corrupted datagram must be dropped — UDP has no retransmission, so
// "dropped" means it never reaches the application, while every
// datagram that *is* delivered arrives bit-exact.
func TestUDPCorruptionDetectedNotDelivered(t *testing.T) {
	s, server, client, w := world(t, Config{})
	w.ArmBoth(LinkFaults{Seed: 11, Corrupt: 0.2})
	const (
		port  = 5002
		total = 40
		size  = 256
	)
	us, err := server.stack.UDPBind(port)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		buf := server.buf(t, size, 0)
		for {
			n, _, _, err := us.RecvFrom(th, buf, size)
			if err != nil {
				t.Error(err)
				return
			}
			if n == 1 {
				return // end-of-run sentinel, sent over a clean wire
			}
			if n != size {
				t.Errorf("truncated datagram: %d bytes", n)
				return
			}
			// Datagram k is filled with k+i%97 (the buf fixture's
			// pattern), so integrity is checkable from the first byte
			// without assuming ordering.
			b, _ := server.arena.Bytes(buf, n)
			fill := b[0]
			for i, c := range b {
				if c != fill+byte(i%97) {
					t.Fatalf("corrupted payload delivered: byte %d = %#x", i, c)
				}
			}
			delivered++
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		uc, err := client.stack.UDPBind(40000)
		if err != nil {
			t.Error(err)
			return
		}
		for k := 0; k < total; k++ {
			out := client.buf(t, size, byte(k))
			if err := uc.SendTo(th, server.stack.IP(), port, out, size); err != nil {
				t.Error(err)
				return
			}
		}
		// Disarm the wire so the sentinel is delivered reliably; UDP
		// never retransmits, so the server can only stop on a datagram
		// that is guaranteed to arrive.
		w.ArmBoth(LinkFaults{})
		end := client.buf(t, 1, 0)
		if err := uc.SendTo(th, server.stack.IP(), port, end, 1); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Corrupted == 0 {
		t.Fatal("fault model corrupted nothing at 20% rate")
	}
	drops := server.stack.Stats().ChecksumDrops
	if drops == 0 {
		t.Fatal("no corrupted datagram was caught by checksum validation")
	}
	if delivered+int(drops) != total {
		t.Fatalf("delivered %d + checksum-dropped %d != sent %d", delivered, drops, total)
	}
	if delivered == total {
		t.Fatal("every datagram delivered despite corruption")
	}
}
