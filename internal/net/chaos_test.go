package net

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"flexos/internal/fault"
	"flexos/internal/sched"
)

// chaosRun is one lossy-wire transfer: total bytes from client to
// server across a wire armed with lf, returning what arrived, what was
// sent, both stacks' stats, the wire counters and the two machines'
// final cycle counts.
type chaosRun struct {
	received, want             []byte
	serverStats, clientStats   Stats
	wire                       Wire
	serverCycles, clientCycles uint64
}

func runChaos(t *testing.T, cfg Config, lf LinkFaults, total int) *chaosRun {
	t.Helper()
	s, server, client, w := world(t, cfg)
	w.ArmBoth(lf)
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := &chaosRun{}
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			n, err := conn.Recv(th, buf, 4096)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := server.arena.Bytes(buf, n)
			out.received = append(out.received, b...)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		src := client.buf(t, total, 9)
		b, _ := client.arena.Bytes(src, total)
		out.want = append([]byte(nil), b...)
		if _, err := conn.Send(th, src, total); err != nil {
			t.Error(err)
		}
		_ = conn.Close(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out.serverStats = server.stack.Stats()
	out.clientStats = client.stack.Stats()
	out.wire = *w
	out.serverCycles = server.cpu.Cycles()
	out.clientCycles = client.cpu.Cycles()
	return out
}

// TestLossyLinkRecovers drives a transfer through a 2% random drop in
// both directions and requires a byte-perfect copy on the far side.
func TestLossyLinkRecovers(t *testing.T) {
	r := runChaos(t, Config{}, LinkFaults{Seed: 3, Drop: 0.02}, 60_000)
	if r.wire.Dropped == 0 {
		t.Fatal("fault model dropped nothing at 2% loss")
	}
	if r.clientStats.Retransmits == 0 {
		t.Fatal("no retransmissions repaired the loss")
	}
	if !bytes.Equal(r.received, r.want) {
		t.Fatalf("payload damaged: got %d bytes, want %d", len(r.received), len(r.want))
	}
}

// TestCorruptionDetectedNotDelivered pins the checksum satellite: a
// wire flipping bits must produce checksum drops and retransmissions,
// never corrupted payload at the application.
func TestCorruptionDetectedNotDelivered(t *testing.T) {
	r := runChaos(t, Config{}, LinkFaults{Seed: 5, Corrupt: 0.05}, 60_000)
	if r.wire.Corrupted == 0 {
		t.Fatal("fault model corrupted nothing at 5% rate")
	}
	drops := r.serverStats.ChecksumDrops + r.clientStats.ChecksumDrops
	if drops == 0 {
		t.Fatal("no corrupted frame was caught by checksum validation")
	}
	if !bytes.Equal(r.received, r.want) {
		t.Fatalf("corrupted payload delivered: got %d bytes, want %d", len(r.received), len(r.want))
	}
}

// TestDuplicatedFramesHarmless: duplicate delivery must be absorbed as
// stale segments, not delivered twice.
func TestDuplicatedFramesHarmless(t *testing.T) {
	r := runChaos(t, Config{}, LinkFaults{Seed: 3, Dup: 0.2}, 60_000)
	if r.wire.Duplicated == 0 {
		t.Fatal("fault model duplicated nothing at 20% rate")
	}
	if !bytes.Equal(r.received, r.want) {
		t.Fatalf("duplicates corrupted the stream: got %d bytes, want %d", len(r.received), len(r.want))
	}
}

// TestMildReorderNoRetransmit pins the reassembly-queue satellite: a
// mildly reordering (lossless) link is repaired by the receiver's
// out-of-order queue — no fast retransmit (at most two duplicate ACKs
// per swap) and no RTO fires.
func TestMildReorderNoRetransmit(t *testing.T) {
	r := runChaos(t, Config{}, LinkFaults{Seed: 5, Reorder: 0.05}, 60_000)
	if r.wire.Reordered == 0 {
		t.Fatal("fault model reordered nothing at 5% rate")
	}
	if n := r.serverStats.OOOQueued; n == 0 {
		t.Fatal("no reordered segment reached the reassembly queue")
	}
	if n := r.clientStats.FastRetransmits + r.serverStats.FastRetransmits; n != 0 {
		t.Fatalf("mild reordering triggered %d fast retransmits", n)
	}
	if n := r.clientStats.Retransmits + r.serverStats.Retransmits; n != 0 {
		t.Fatalf("mild reordering triggered %d RTO retransmits", n)
	}
	if !bytes.Equal(r.received, r.want) {
		t.Fatalf("reordering corrupted the stream: got %d bytes, want %d", len(r.received), len(r.want))
	}
}

// TestChaosReplayBitIdentical pins determinism with faults armed: the
// same seed must reproduce the same transfer cycle-for-cycle and
// counter-for-counter.
func TestChaosReplayBitIdentical(t *testing.T) {
	lf := LinkFaults{Seed: 77, Drop: 0.02, Dup: 0.01, Reorder: 0.01, Corrupt: 0.005}
	a := runChaos(t, Config{}, lf, 60_000)
	b := runChaos(t, Config{}, lf, 60_000)
	if a.serverCycles != b.serverCycles || a.clientCycles != b.clientCycles {
		t.Fatalf("cycle drift across replays: server %d vs %d, client %d vs %d",
			a.serverCycles, b.serverCycles, a.clientCycles, b.clientCycles)
	}
	if a.serverStats != b.serverStats || a.clientStats != b.clientStats {
		t.Fatalf("stats drift across replays:\n a: %+v / %+v\n b: %+v / %+v",
			a.serverStats, a.clientStats, b.serverStats, b.clientStats)
	}
	if a.wire.Dropped != b.wire.Dropped || a.wire.Corrupted != b.wire.Corrupted ||
		a.wire.Duplicated != b.wire.Duplicated || a.wire.Reordered != b.wire.Reordered {
		t.Fatalf("wire counter drift across replays: %+v vs %+v", a.wire, b.wire)
	}
	if !bytes.Equal(a.received, b.received) {
		t.Fatal("replays delivered different payloads")
	}
}

// TestNetDeathTypedCause pins the retransmit-exhaustion satellite: a
// connection that dies of rtx exhaustion must surface exactly one
// *fault.NetTimeout (so the gate can classify it into a containable
// KindNetTimeout trap), and plain ErrConnClosed afterwards (so a
// supervisor restart's replay settles clean).
func TestNetDeathTypedCause(t *testing.T) {
	// A small window makes the sender park on flow control: Send
	// returns once bytes are handed to the wire, so only a parked
	// sender is still around to observe the rtx death. Keepalive lets
	// the server notice its peer vanished and exit cleanly.
	cfg := Config{RecvBuf: 4096, MaxInflight: 4096,
		RtxDelayTicks: 10, RtxLimit: 3, KeepaliveTicks: 2_000}
	s, server, client, w := world(t, cfg)
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The wire goes down for good shortly after the handshake.
	var cut bool
	w.ArmBoth(LinkFaults{DropFn: func(frame []byte) bool { return cut }})
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			if _, err := conn.Recv(th, buf, 4096); err != nil {
				return
			}
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		cut = true
		src := client.buf(t, 40_000, 9)
		_, err = conn.Send(th, src, 40_000)
		if err == nil {
			t.Error("Send survived a dead wire")
			return
		}
		var nt *fault.NetTimeout
		if !errors.As(err, &nt) {
			t.Errorf("first error after net death = %v, want *fault.NetTimeout", err)
			return
		}
		if nt.Retransmits == 0 {
			t.Errorf("NetTimeout reports no retransmits: %+v", nt)
		}
		// The gate boundary turns the typed error into a containable trap
		// attributed to the owning compartment.
		var trap *fault.Trap
		if classified := fault.Classify("nw", "netstack:rtx", err); !errors.As(classified, &trap) {
			t.Errorf("Classify(%v) = %v, want *fault.Trap", err, classified)
		} else if trap.Kind != fault.KindNetTimeout {
			t.Errorf("Classify trap kind = %v, want KindNetTimeout", trap.Kind)
		}
		// Death is delivered once: the replayed call sees a plain closed
		// connection, not another trap.
		_, err = conn.Send(th, src, 1)
		if !errors.Is(err, ErrConnClosed) {
			t.Errorf("second error after net death = %v, want ErrConnClosed", err)
		}
		var again *fault.NetTimeout
		if errors.As(err, &again) {
			t.Errorf("second error still carries the typed NetTimeout: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := client.stack.Stats().NetDeaths; n != 1 {
		t.Fatalf("NetDeaths = %d, want 1", n)
	}
}

// TestZeroWindowDeathTypedCause: a peer whose transport keeps ACKing
// but whose application never drains — the receive window stays
// closed — is declared dead after RtxLimit persist probes, with the
// same typed NetTimeout as retransmission exhaustion. Regression for
// a scheduler livelock: before the cap, a crashed receiver kept the
// probe timer re-arming forever and the run never drained.
func TestZeroWindowDeathTypedCause(t *testing.T) {
	cfg := Config{RecvBuf: 2048, MaxInflight: 64 << 10,
		RtxDelayTicks: 10, RtxLimit: 3}
	s, server, client, _ := world(t, cfg)
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		// Accept and walk away: the tcpip machinery still ACKs and
		// advertises the shrinking window, but nothing ever reads.
		if _, err := l.Accept(th); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		const total = 20_000
		src := client.buf(t, total, 9)
		_, err = conn.Send(th, src, total)
		var nt *fault.NetTimeout
		if !errors.As(err, &nt) {
			t.Errorf("Send into a closed window = %v, want *fault.NetTimeout", err)
			return
		}
		if nt.Probes == 0 {
			t.Errorf("NetTimeout reports no probes: %+v", nt)
		}
		if nt.PC != "netstack:zwp" {
			t.Errorf("NetTimeout PC = %q, want netstack:zwp", nt.PC)
		}
		// One-shot delivery, like every other net death.
		if _, err := conn.Send(th, src, 1); !errors.Is(err, ErrConnClosed) {
			t.Errorf("second error after zwp death = %v, want ErrConnClosed", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := client.stack.Stats().ZeroWndProbes; n == 0 {
		t.Fatal("no zero-window probes recorded")
	}
	if n := client.stack.Stats().NetDeaths; n != 1 {
		t.Fatalf("client NetDeaths = %d, want 1", n)
	}
}

// TestKeepaliveKillsDeadPeer: with keepalive enabled an idle receiver
// whose peer vanished behind a link flap is declared dead instead of
// parking forever.
func TestKeepaliveKillsDeadPeer(t *testing.T) {
	cfg := Config{RtxDelayTicks: 10, RtxLimit: 3, KeepaliveTicks: 5_000}
	s, server, client, w := world(t, cfg)
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	var cut bool
	w.ArmBoth(LinkFaults{DropFn: func(frame []byte) bool { return cut }})
	var recvErr error
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		_, recvErr = conn.Recv(th, buf, 4096)
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		// The client goes silent and the wire dies under it; it never
		// sends, closes, or answers probes.
		cut = true
		_ = conn
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var nt *fault.NetTimeout
	if !errors.As(recvErr, &nt) {
		t.Fatalf("Recv after keepalive death = %v, want *fault.NetTimeout", recvErr)
	}
	if nt.Probes == 0 {
		t.Fatalf("NetTimeout reports no keepalive probes: %+v", nt)
	}
	if n := server.stack.Stats().KeepaliveProbes; n == 0 {
		t.Fatal("no keepalive probes recorded")
	}
}

// TestLinkFlapPartition: a timed down-window mid-transfer stalls the
// stream, and the transfer completes after the window lifts — loss of
// connectivity shorter than the rtx budget heals transparently.
func TestLinkFlapPartition(t *testing.T) {
	lf := LinkFaults{Seed: 1, Down: []DownWindow{{From: 40_000, To: 140_000}}}
	r := runChaos(t, Config{}, lf, 60_000)
	if r.wire.FlapDropped == 0 {
		t.Fatal("the down-window dropped nothing — transfer finished before the flap?")
	}
	if !bytes.Equal(r.received, r.want) {
		t.Fatalf("flap corrupted the stream: got %d bytes, want %d", len(r.received), len(r.want))
	}
}

// TestPermanentPartitionIsDeath: a down-window that never lifts
// exhausts retransmission and kills the sender's connection.
func TestPermanentPartitionIsDeath(t *testing.T) {
	// Small window + keepalive for the same reasons as
	// TestNetDeathTypedCause: the sender must park to see the death,
	// and the server must notice the silence to exit.
	cfg := Config{RecvBuf: 4096, MaxInflight: 4096,
		RtxDelayTicks: 10, RtxLimit: 3, KeepaliveTicks: 2_000}
	s, server, client, w := world(t, cfg)
	const port = 5001
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			if _, err := conn.Recv(th, buf, 4096); err != nil {
				return
			}
		}
	})
	var sendErr error
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		// Partition from now to forever, stamped on both machines'
		// clocks (each direction reads its own transmitter's clock).
		w.ArmBoth(LinkFaults{Seed: 1, Down: []DownWindow{{From: 0, To: math.MaxUint64}}})
		src := client.buf(t, 40_000, 9)
		_, sendErr = conn.Send(th, src, 40_000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var nt *fault.NetTimeout
	if !errors.As(sendErr, &nt) {
		t.Fatalf("Send through permanent partition = %v, want *fault.NetTimeout", sendErr)
	}
}
