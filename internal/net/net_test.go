package net

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// --- test fixtures --------------------------------------------------

type testSem struct {
	count int
	wq    sched.WaitQueue
}

func (s *testSem) Down(t *sched.Thread) {
	for s.count == 0 {
		s.wq.Wait(t)
	}
	s.count--
}

func (s *testSem) TryDown() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

func (s *testSem) Up() {
	s.count++
	s.wq.Signal()
}

func (s *testSem) HasWaiters() bool { return s.wq.Len() > 0 }

type testSup struct{ arena *mem.Arena }

func (ts testSup) Memcpy(dst, src mem.Addr, n int) error {
	s, err := ts.arena.Bytes(src, n)
	if err != nil {
		return err
	}
	d, err := ts.arena.Bytes(dst, n)
	if err != nil {
		return err
	}
	copy(d, s)
	return nil
}

func (ts testSup) NewSem(n int) Sem { return &testSem{count: n} }

type machine struct {
	cpu   *clock.CPU
	arena *mem.Arena
	heap  *mem.Heap
	env   *rt.Env
	stack *Stack
}

func newMachine(t *testing.T, s sched.Scheduler, ip IPAddr, cfg Config) *machine {
	t.Helper()
	return newMachineWith(t, s, ip, cfg, func(a *mem.Arena) Support {
		return testSup{arena: a}
	})
}

// newMachineWith is newMachine with the Support implementation chosen
// by the caller (fault-injecting sups for the overload regressions).
func newMachineWith(t *testing.T, s sched.Scheduler, ip IPAddr, cfg Config,
	mkSup func(*mem.Arena) Support) *machine {
	t.Helper()
	cpu := clock.New()
	arena := mem.NewArena(4 << 20)
	heap, err := mem.NewHeap(arena, mem.PageSize, 3<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := gate.NewRegistry(gate.NewFuncCall(cpu), gate.NewFuncCall(cpu))
	reg.AddCompartment(gate.NewDomain("all"))
	for _, lib := range []string{"netstack", "libc", "alloc", "app", "sched"} {
		if err := reg.Assign(lib, "all"); err != nil {
			t.Fatal(err)
		}
	}
	env := &rt.Env{
		Lib: "netstack", Comp: clock.CompNet, CPU: cpu,
		Gates: reg, Arena: arena, Alloc: heap,
	}
	cfg.IP = ip
	m := &machine{cpu: cpu, arena: arena, heap: heap, env: env}
	m.stack = NewStack(env, mkSup(arena), s, cfg)
	return m
}

// alloc carves an app buffer and optionally fills it with pattern.
func (m *machine) buf(t *testing.T, n int, fill byte) mem.Addr {
	t.Helper()
	addr, err := m.heap.Alloc(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.arena.Bytes(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = fill + byte(i%97)
	}
	return addr
}

// world builds a connected client/server pair on one scheduler.
func world(t *testing.T, cfg Config) (*sched.CScheduler, *machine, *machine, *Wire) {
	t.Helper()
	s := sched.NewCScheduler()
	server := newMachine(t, s, IP4(10, 0, 0, 1), cfg)
	client := newMachine(t, s, IP4(10, 0, 0, 2), cfg)
	w := Connect(server.stack, client.stack)
	return s, server, client, w
}

// --- protocol-level tests -------------------------------------------

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := &header{
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 49152, DstPort: 5001,
		Seq: 12345, Ack: 54321, Flags: flagACK | flagPSH, Wnd: 8192,
	}
	payload := []byte("hello flexos network stack")
	frame := make([]byte, HdrLen+len(payload))
	n, err := encodeFrame(frame, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != HdrLen+len(payload) {
		t.Fatalf("n = %d", n)
	}
	got, gotPayload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != h.SrcIP || got.DstPort != h.DstPort || got.Seq != h.Seq ||
		got.Ack != h.Ack || got.Flags != h.Flags || got.Wnd != h.Wnd {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	h := &header{SrcIP: IP4(1, 2, 3, 4), DstIP: IP4(5, 6, 7, 8), SrcPort: 1, DstPort: 2}
	payload := []byte("payload")
	frame := make([]byte, HdrLen+len(payload))
	if _, err := encodeFrame(frame, h, payload); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: TCP checksum must catch it.
	frame[HdrLen] ^= 0xFF
	if _, _, err := decodeFrame(frame); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want checksum error", err)
	}
	// Truncated frame.
	if _, _, err := decodeFrame(frame[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short frame err = %v", err)
	}
}

func TestEncodeRejectsSmallBuffer(t *testing.T) {
	h := &header{}
	if _, err := encodeFrame(make([]byte, 10), h, []byte("x")); err == nil {
		t.Fatal("small buffer accepted")
	}
}

func TestChecksumProperty(t *testing.T) {
	// Property: a frame round-trips for arbitrary payloads; flipping
	// any single payload byte breaks the checksum.
	f := func(payload []byte, flip uint8) bool {
		if len(payload) > MSS {
			payload = payload[:MSS]
		}
		h := &header{SrcIP: IP4(1, 1, 1, 1), DstIP: IP4(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Seq: 7}
		frame := make([]byte, HdrLen+len(payload))
		if _, err := encodeFrame(frame, h, payload); err != nil {
			return false
		}
		if _, _, err := decodeFrame(frame); err != nil {
			return false
		}
		if len(payload) == 0 {
			return true
		}
		idx := HdrLen + int(flip)%len(payload)
		frame[idx] ^= 0x01
		_, _, err := decodeFrame(frame)
		return errors.Is(err, ErrBadChecksum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIPAddrString(t *testing.T) {
	if got := IP4(10, 0, 0, 1).String(); got != "10.0.0.1" {
		t.Fatalf("String = %q", got)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLess(0xFFFFFFF0, 5) {
		t.Fatal("wraparound compare broken")
	}
	if seqLess(5, 0xFFFFFFF0) {
		t.Fatal("wraparound compare broken (reverse)")
	}
	if !seqLEq(7, 7) {
		t.Fatal("seqLEq broken")
	}
}

// --- end-to-end tests ------------------------------------------------

func TestHandshakeAndEcho(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port = 5001
	msg := []byte("ping over flexos tcp")
	var got []byte

	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 1024, 0)
		n, err := conn.Recv(th, buf, 1024)
		if err != nil {
			t.Error(err)
			return
		}
		b, _ := server.arena.Bytes(buf, n)
		got = append([]byte(nil), b...)
		// Echo back.
		if _, err := conn.Send(th, buf, n); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		if conn.State() != "established" {
			t.Errorf("client state = %s", conn.State())
		}
		out := client.buf(t, len(msg), 0)
		b, _ := client.arena.Bytes(out, len(msg))
		copy(b, msg)
		if _, err := conn.Send(th, out, len(msg)); err != nil {
			t.Error(err)
			return
		}
		in := client.buf(t, 1024, 0)
		n, err := conn.Recv(th, in, 1024)
		if err != nil {
			t.Error(err)
			return
		}
		rb, _ := client.arena.Bytes(in, n)
		if !bytes.Equal(rb, msg) {
			t.Errorf("echo mismatch: %q", rb)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("server got %q, want %q", got, msg)
	}
}

func TestBulkTransferSegmentsAndReassembles(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port, total = 5001, 10_000
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	received := make([]byte, 0, total)
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 1024, 0)
		for {
			n, err := conn.Recv(th, buf, 1024)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := server.arena.Bytes(buf, n)
			received = append(received, b...)
		}
	})
	var sentPattern []byte
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 7)
		b, _ := client.arena.Bytes(out, total)
		sentPattern = append([]byte(nil), b...)
		n, err := conn.Send(th, out, total)
		if err != nil || n != total {
			t.Errorf("Send = %d, %v", n, err)
		}
		if err := conn.Close(th); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, sentPattern) {
		t.Fatalf("reassembly mismatch: got %d bytes, want %d", len(received), total)
	}
	st := server.stack.Stats()
	if st.SegsIn < uint64(total/MSS) {
		t.Fatalf("SegsIn = %d, expected at least %d", st.SegsIn, total/MSS)
	}
	if server.heap.Stats().LiveBytes != uint64(0)+server.heap.Stats().LiveBytes {
		t.Log("heap stats accessible")
	}
}

func TestConnectToClosedPortResets(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		_, err := client.stack.Connect(th, server.stack.IP(), 9999)
		if !errors.Is(err, ErrConnReset) {
			t.Errorf("err = %v, want reset", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if server.stack.Stats().RSTsOut == 0 {
		t.Fatal("server sent no RST")
	}
}

func TestFlowControlBlocksSender(t *testing.T) {
	// Small receive buffer and inflight cap: the sender must block
	// until the receiver drains.
	s, server, client, _ := world(t, Config{RecvBuf: 4096, MaxInflight: 4096})
	const port, total = 5001, 40_000
	l, _ := server.stack.Listen(port, 4)
	var received int
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 2048, 0)
		for {
			// Drain slowly, yielding to force the sender to hit the
			// window limit.
			n, err := conn.Recv(th, buf, 2048)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			received += n
			th.Yield()
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 3)
		if n, err := conn.Send(th, out, total); err != nil || n != total {
			t.Errorf("Send = %d, %v", n, err)
		}
		_ = conn.Close(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	s, server, client, w := world(t, Config{RtxDelayTicks: 10})
	const port, total = 5001, 6000
	// Drop the first data segment once.
	dropped := false
	w.ArmBoth(LinkFaults{DropFn: func(frame []byte) bool {
		h, _, err := decodeFrame(frame)
		if err == nil && h.PayloadLen > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}})
	l, _ := server.stack.Listen(port, 4)
	var received []byte
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			n, err := conn.Recv(th, buf, 4096)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := server.arena.Bytes(buf, n)
			received = append(received, b...)
		}
	})
	var want []byte
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 9)
		b, _ := client.arena.Bytes(out, total)
		want = append([]byte(nil), b...)
		if _, err := conn.Send(th, out, total); err != nil {
			t.Error(err)
		}
		_ = conn.Close(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Fatal("filter never dropped a segment")
	}
	if client.stack.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if !bytes.Equal(received, want) {
		t.Fatalf("data corrupted by loss: got %d bytes, want %d", len(received), total)
	}
}

func TestEOFAfterClose(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port = 5001
	l, _ := server.stack.Listen(port, 4)
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 64, 0)
		n, err := conn.Recv(th, buf, 64)
		if err != nil || n != 5 {
			t.Errorf("first recv = %d, %v", n, err)
		}
		if _, err := conn.Recv(th, buf, 64); err != io.EOF {
			t.Errorf("after FIN err = %v, want io.EOF", err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 5, 1)
		if _, err := conn.Send(th, out, 5); err != nil {
			t.Error(err)
		}
		if err := conn.Close(th); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestListenPortInUse(t *testing.T) {
	_, server, _, _ := world(t, Config{})
	if _, err := server.stack.Listen(80, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := server.stack.Listen(80, 1); !errors.Is(err, ErrInUse) {
		t.Fatalf("err = %v, want ErrInUse", err)
	}
}

func TestXenCostsMoreThanKVM(t *testing.T) {
	run := func(p Platform) uint64 {
		s, server, client, _ := world(t, Config{Platform: p})
		const port, total = 5001, 20_000
		l, _ := server.stack.Listen(port, 4)
		s.Spawn("server", server.cpu, func(th *sched.Thread) {
			conn, err := l.Accept(th)
			if err != nil {
				t.Error(err)
				return
			}
			buf := server.buf(t, 4096, 0)
			for {
				if _, err := conn.Recv(th, buf, 4096); err != nil {
					return
				}
			}
		})
		s.Spawn("client", client.cpu, func(th *sched.Thread) {
			conn, err := client.stack.Connect(th, server.stack.IP(), port)
			if err != nil {
				t.Error(err)
				return
			}
			out := client.buf(t, total, 2)
			_, _ = conn.Send(th, out, total)
			_ = conn.Close(th)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return server.cpu.Cycles()
	}
	kvm, xen := run(KVM), run(Xen)
	if xen <= kvm {
		t.Fatalf("xen (%d) should cost more than kvm (%d)", xen, kvm)
	}
}

func TestMemoryReclaimedAfterTransfer(t *testing.T) {
	s, server, client, _ := world(t, Config{})
	const port, total = 5001, 8000
	l, _ := server.stack.Listen(port, 4)
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			if _, err := conn.Recv(th, buf, 4096); err != nil {
				return
			}
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 4)
		_, _ = conn.Send(th, out, total)
		_ = conn.Close(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// All rx mbufs must have been freed once consumed: live bytes on
	// the server heap should be only the app's 4096-byte recv buffer.
	live := server.heap.Stats().LiveBytes
	if live != 4096 {
		t.Fatalf("server live bytes = %d, want 4096 (recv buffer only)", live)
	}
}

func TestResetDuringEstablished(t *testing.T) {
	// A forged RST against an established connection aborts it: both
	// blocked readers and subsequent sends observe ErrConnReset.
	s, server, client, _ := world(t, Config{})
	const port = 5001
	l, _ := server.stack.Listen(port, 4)
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 256, 0)
		if _, err := conn.Recv(th, buf, 256); !errors.Is(err, ErrConnReset) {
			t.Errorf("recv err = %v, want reset", err)
		}
		if _, err := conn.Send(th, buf, 10); !errors.Is(err, ErrConnReset) {
			t.Errorf("send err = %v, want reset", err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		// Forge an RST from the client address against the server's
		// socket (the attacker-controlled-input scenario).
		localPort := conn.LocalPort()
		h := &header{
			SrcIP: client.stack.IP(), DstIP: server.stack.IP(),
			SrcPort: localPort, DstPort: port,
			Seq: 0, Flags: flagRST, Wnd: 0,
		}
		frame := make([]byte, HdrLen)
		if _, err := encodeFrame(frame, h, nil); err != nil {
			t.Error(err)
			return
		}
		server.stack.input(frame)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseListenerFreesPort(t *testing.T) {
	s, server, _, _ := world(t, Config{})
	l, err := server.stack.Listen(8080, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("closer", server.cpu, func(th *sched.Thread) {
		if err := l.Close(th); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := server.stack.Listen(8080, 2); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}
