package net

import (
	"flexos/internal/clock"
	"flexos/internal/mem"
	"flexos/internal/sched"
)

// SocketMode selects how application threads reach the stack.
type SocketMode int

// Socket modes.
const (
	// DirectMode runs socket operations on the calling thread (like
	// lwip's raw API).
	DirectMode SocketMode = iota
	// TCPIPThreadMode posts socket operations to a dedicated network
	// thread — lwip's tcpip_thread/netconn architecture, which is what
	// Unikraft's socket layer uses. Every Listen/Connect/Send/Close is
	// then a semaphore-mediated handoff costing two context switches
	// plus the LibC and scheduler crossings of the paper's Fig. 5
	// analysis; Recv and Accept still block app-side on the
	// connection's own semaphore (lwip's recvmbox).
	TCPIPThreadMode
)

// String implements fmt.Stringer.
func (m SocketMode) String() string {
	if m == TCPIPThreadMode {
		return "tcpip-thread"
	}
	return "direct"
}

// apiReq is one message on the tcpip thread's mailbox.
type apiReq struct {
	fn   func(cur *sched.Thread) error
	done Sem
	err  error
}

// tcpipState is the stack's mailbox and worker.
type tcpipState struct {
	reqs   []*apiReq
	reqSem Sem
	thread *sched.Thread
	served uint64
}

// StartTCPIP spawns the stack's tcpip thread as a daemon on the given
// scheduler. It must be called once, before workload threads run, and
// only in TCPIPThreadMode.
func (st *Stack) StartTCPIP(s sched.Scheduler) {
	if st.mode != TCPIPThreadMode || st.tcpip != nil {
		return
	}
	// The mailbox semaphore lives in shared data; creating it is plain
	// initialization, not a crossing.
	ts := &tcpipState{reqSem: st.sup.NewSem(0)}
	st.tcpip = ts
	// The tcpip thread is pinned to its configured vCPU (the `affinity
	// netstack <cpu>` directive): its mailbox state is per-CPU by
	// design, so work stealing must never migrate it.
	ts.thread = s.Spawn("tcpip:"+st.ip.String(), st.spawnCPU(st.tcpipCPU), func(t *sched.Thread) {
		for {
			st.semDown(t, ts.reqSem)
			if len(ts.reqs) == 0 {
				continue
			}
			r := ts.reqs[0]
			ts.reqs = ts.reqs[1:]
			st.env.Charge(clock.CostSchedOp) // message dequeue/dispatch
			r.err = r.fn(t)
			ts.served++
			st.semUp(r.done)
		}
	})
	ts.thread.Daemon = true
	ts.thread.Pinned = true
}

// TCPIPServed reports how many API messages the tcpip thread has
// processed (tests).
func (st *Stack) TCPIPServed() uint64 {
	if st.tcpip == nil {
		return 0
	}
	return st.tcpip.served
}

// apimsg runs fn on the tcpip thread (blocking the caller until done)
// in TCPIPThreadMode, or inline in DirectMode. fn receives the thread
// it executes on, so blocking operations inside it park the right
// thread. A nil caller thread (boot-time setup) always runs inline.
func (st *Stack) apimsg(t *sched.Thread, fn func(cur *sched.Thread) error) error {
	if st.mode != TCPIPThreadMode || st.tcpip == nil || t == nil {
		return fn(t)
	}
	r := &apiReq{fn: fn, done: st.sup.NewSem(0)}
	st.tcpip.reqs = append(st.tcpip.reqs, r)
	st.semUp(st.tcpip.reqSem)
	st.semDown(t, r.done)
	return r.err
}

// apimsgPinned is apimsg with a payload buffer pinned for the lifetime
// of the request: while the message waits in the mailbox and while the
// tcpip thread works on it, the descriptor's refcount keeps the pool
// from recycling the buffer under a concurrent release. Non-pool
// buffers (and stacks without a pool) pass through unpinned.
func (st *Stack) apimsgPinned(t *sched.Thread, pin mem.BufRef, fn func(cur *sched.Thread) error) error {
	if p := st.env.Pool; p != nil && pin.Valid() && p.Owns(pin.Addr) {
		if err := p.Ref(pin); err != nil {
			return err
		}
		defer func() { _, _ = p.Release(pin) }()
	}
	return st.apimsg(t, fn)
}
