package net

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"flexos/internal/sched"
)

// Robustness: the input path must survive arbitrary garbage frames —
// attacker-controlled input is the reason the paper isolates the
// network stack in the first place. No panics, no accepted state, no
// leaked rx buffers.

func TestInputSurvivesGarbage(t *testing.T) {
	s := sched.NewCScheduler()
	m := newMachine(t, s, IP4(10, 0, 0, 1), Config{})
	if _, err := m.stack.Listen(80, 4); err != nil {
		t.Fatal(err)
	}
	baseline := m.heap.Stats().LiveBytes
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := make([]byte, int(size)%2048)
		rng.Read(frame)
		m.stack.input(frame) // must not panic
		return m.heap.Stats().LiveBytes == baseline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInputSurvivesMutatedValidFrames(t *testing.T) {
	// Start from a structurally valid TCP frame and flip bytes: most
	// mutations die at the checksum; the rest must be handled without
	// panics or buffer leaks.
	s := sched.NewCScheduler()
	m := newMachine(t, s, IP4(10, 0, 0, 1), Config{})
	if _, err := m.stack.Listen(80, 4); err != nil {
		t.Fatal(err)
	}
	h := &header{
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 40000, DstPort: 80,
		Seq: 100, Flags: flagSYN, Wnd: 4096,
	}
	valid := make([]byte, HdrLen+32)
	if _, err := encodeFrame(valid, h, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	before := m.stack.Stats()
	baseline := m.heap.Stats().LiveBytes
	f := func(pos uint16, val byte) bool {
		frame := append([]byte(nil), valid...)
		frame[int(pos)%len(frame)] ^= val | 1
		m.stack.input(frame)
		return m.heap.Stats().LiveBytes == baseline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	after := m.stack.Stats()
	if after.DroppedIn == before.DroppedIn && after.SegsIn == before.SegsIn {
		t.Fatal("no frame was processed at all")
	}
}

func TestInputTruncationLadder(t *testing.T) {
	// Every truncation length of a valid frame must be rejected
	// cleanly.
	s := sched.NewCScheduler()
	m := newMachine(t, s, IP4(10, 0, 0, 1), Config{})
	h := &header{
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 40000, DstPort: 80, Seq: 1, Flags: flagSYN,
	}
	valid := make([]byte, HdrLen+8)
	if _, err := encodeFrame(valid, h, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	baseline := m.heap.Stats().LiveBytes
	for n := 0; n < len(valid); n++ {
		m.stack.input(valid[:n])
	}
	if m.heap.Stats().LiveBytes != baseline {
		t.Fatal("truncated frames leaked rx buffers")
	}
}

func TestInputLyingIPLength(t *testing.T) {
	// An IP total-length larger than the frame must be rejected before
	// any slicing.
	s := sched.NewCScheduler()
	m := newMachine(t, s, IP4(10, 0, 0, 1), Config{})
	h := &header{
		SrcIP: IP4(10, 0, 0, 2), DstIP: IP4(10, 0, 0, 1),
		SrcPort: 1, DstPort: 80, Flags: flagSYN,
	}
	frame := make([]byte, HdrLen)
	if _, err := encodeFrame(frame, h, nil); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint16(frame[EtherHdrLen+2:EtherHdrLen+4], 60000)
	dropped := m.stack.Stats().DroppedIn
	m.stack.input(frame)
	if m.stack.Stats().DroppedIn != dropped+1 {
		t.Fatal("lying IP length not dropped")
	}
}
