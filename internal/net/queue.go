package net

import (
	"encoding/binary"

	"flexos/internal/clock"
)

// Multi-queue NIC support: receive-side scaling (RSS) in the style of
// virtio-net/ixgbe multiqueue. The device exposes NumQueues rx/tx
// descriptor rings; a symmetric hash over the connection 4-tuple
// steers every flow to one queue, and each rx queue interrupts (and
// charges) its own vCPU, so the per-packet driver + stack input work
// of distinct flows lands on distinct cores. With one queue — the
// default, and always on a single-vCPU machine — the device degenerates
// to exactly the single-queue behavior.

// rssFold is the RSS hash: an additive fold of the 4-tuple, reduced
// modulo the queue count. Additive folding is symmetric (a flow hashes
// to the same queue in both directions, so a connection's rx and tx
// processing share cache state) and spreads the sequential ephemeral
// ports a client allocates round-robin across queues.
func rssFold(srcIP, dstIP uint32, srcPort, dstPort uint16, nq int) int {
	if nq <= 1 {
		return 0
	}
	sum := srcIP + dstIP + uint32(srcPort) + uint32(dstPort)
	return int(sum % uint32(nq))
}

// rssPeek extracts the steering 4-tuple from a raw frame without
// validating checksums: the hardware hashes header bytes as they
// arrive, long before the stack verifies the frame. Frames too short
// or non-IPv4 report !ok and steer to queue 0.
func rssPeek(frame []byte) (srcIP, dstIP uint32, srcPort, dstPort uint16, ok bool) {
	if len(frame) < EtherHdrLen+IPHdrLen+4 {
		return 0, 0, 0, 0, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return 0, 0, 0, 0, false
	}
	ip := frame[EtherHdrLen:]
	if ip[0] != 0x45 {
		return 0, 0, 0, 0, false
	}
	srcIP = binary.BigEndian.Uint32(ip[12:16])
	dstIP = binary.BigEndian.Uint32(ip[16:20])
	l4 := ip[IPHdrLen:]
	return srcIP, dstIP, binary.BigEndian.Uint16(l4[0:2]), binary.BigEndian.Uint16(l4[2:4]), true
}

// NumQueues reports the stack's NIC queue count.
func (st *Stack) NumQueues() int { return st.numQueues }

// queueCPUFor reports the vCPU id that queue q's interrupts are
// steered to.
func (st *Stack) queueCPUFor(q int) int {
	if q < 0 || q >= len(st.queueCPU) {
		return 0
	}
	return st.queueCPU[q]
}

// frameQueue classifies a raw frame onto a queue via RSS.
func (st *Stack) frameQueue(frame []byte) int {
	if st.numQueues <= 1 {
		return 0
	}
	srcIP, dstIP, sp, dp, ok := rssPeek(frame)
	if !ok {
		return 0
	}
	return rssFold(srcIP, dstIP, sp, dp, st.numQueues)
}

// QueueOf reports the NIC queue a connected socket's flow is steered
// to — the queue (and so the vCPU) on which its rx processing runs.
// Applications use it to place a connection's worker thread on the
// same vCPU its data arrives on.
func (st *Stack) QueueOf(s *Socket) int {
	if st.numQueues <= 1 {
		return 0
	}
	return rssFold(uint32(st.ip), uint32(s.remoteIP), s.localPort, s.remotePort, st.numQueues)
}

// QueueCPUOf reports the vCPU a connected socket's rx processing is
// steered to: queueCPUFor(QueueOf(s)).
func (st *Stack) QueueCPUOf(s *Socket) int { return st.queueCPUFor(st.QueueOf(s)) }

// spawnCPU resolves a vCPU id to the concrete vCPU threads are spawned
// on: vCPU id of the stack's machine, or the standalone CPU itself
// (which has no siblings to choose between).
func (st *Stack) spawnCPU(id int) *clock.CPU {
	switch c := st.env.CPU.(type) {
	case *clock.CPU:
		return c
	case *clock.Machine:
		if id < 0 || id >= c.NCPU() {
			id = 0
		}
		return c.CPU(id)
	default:
		return nil
	}
}

// SpawnCPU exposes spawnCPU for harnesses placing worker threads on a
// specific vCPU (e.g. the one a connection's queue interrupts).
func (st *Stack) SpawnCPU(id int) *clock.CPU { return st.spawnCPU(id) }
